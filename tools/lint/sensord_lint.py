#!/usr/bin/env python3
# Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
"""sensord_lint: project-invariant static analysis for the sensord tree.

Generic clang-tidy (see .clang-tidy) catches generic bugs; this checker
enforces the invariants that make the *simulator* trustworthy and that no
off-the-shelf tool can express:

  determinism-clock     No wall-clock or ambient-entropy source outside the
                        allowlisted sinks (tools/lint/determinism_allowlist).
                        Every run must replay bit-identically under a seed.
  determinism-unordered No iteration over std::unordered_{map,set,...} whose
                        loop body reaches a deterministic sink (OutlierEvent,
                        message Send/Transmit, exporter/file output).
                        Hash-iteration order is unspecified and would leak
                        into emitted events and golden files.
  thread-annotation     Any class or struct owning a std::mutex must annotate
                        every other non-atomic, non-const field with
                        GUARDED_BY(...) (src/util/thread_annotations.h), so
                        clang's -Wthread-safety analysis has a complete model.
  test-pairing          Every src/**/*.cc translation unit has a matching
                        tests/<name>_test.cc, modulo the explicit map in
                        tools/lint/test_pairing.map.
  header-hygiene        Every header under src/ compiles standalone
                        (self-containment), using the release preset's
                        compile_commands.json flags.

Violations are suppressed ONLY via the committed tools/lint/baseline.txt
(one violation key per line); stale baseline entries are themselves errors,
so the baseline can only shrink. The file is empty at merge and should stay
that way: fix the code, don't baseline it.

Exit codes: 0 clean, 1 violations, 2 usage/configuration error.

Usage:
  tools/lint/sensord_lint.py --compdb build/release/compile_commands.json
  tools/lint/sensord_lint.py --rules determinism,thread --scan path.cc ...
"""

import argparse
import bisect
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

RULE_DETERMINISM_CLOCK = "determinism-clock"
RULE_DETERMINISM_UNORDERED = "determinism-unordered"
RULE_THREAD_ANNOTATION = "thread-annotation"
RULE_TEST_PAIRING = "test-pairing"
RULE_HEADER_HYGIENE = "header-hygiene"

RULE_GROUPS = {
    "determinism": (RULE_DETERMINISM_CLOCK, RULE_DETERMINISM_UNORDERED),
    "thread": (RULE_THREAD_ANNOTATION,),
    "pairing": (RULE_TEST_PAIRING,),
    "headers": (RULE_HEADER_HYGIENE,),
}
DEFAULT_GROUPS = ("determinism", "thread", "pairing", "headers")

# Identifiers that read ambient time or entropy. Any appearance (token-exact,
# comments and strings stripped) is a violation outside the allowlist.
BANNED_ALWAYS = {
    # clocks
    "system_clock": "reads the wall clock; use event-queue virtual time",
    "steady_clock": "reads the host monotonic clock; use event-queue "
                    "virtual time (obs::MonotonicNowNs is the one sink)",
    "high_resolution_clock": "reads the host clock; use event-queue "
                             "virtual time",
    "clock_gettime": "reads the host clock; use event-queue virtual time",
    "gettimeofday": "reads the wall clock; use event-queue virtual time",
    "timespec_get": "reads the wall clock; use event-queue virtual time",
    "localtime": "reads the wall clock; use event-queue virtual time",
    "gmtime": "reads the wall clock; use event-queue virtual time",
    # entropy
    "random_device": "ambient entropy breaks seeded replay; seed a "
                     "sensord::Rng instead",
    "mt19937": "unseeded-by-default std engine; use sensord::Rng",
    "mt19937_64": "unseeded-by-default std engine; use sensord::Rng",
    "minstd_rand": "std engine; use sensord::Rng",
    "minstd_rand0": "std engine; use sensord::Rng",
    "default_random_engine": "implementation-defined engine; use "
                             "sensord::Rng",
    "ranlux24": "std engine; use sensord::Rng",
    "ranlux48": "std engine; use sensord::Rng",
    "knuth_b": "std engine; use sensord::Rng",
    "random_shuffle": "uses an unspecified global source; use an explicit "
                      "sensord::Rng",
    "srand": "global C RNG state; use sensord::Rng",
    "rand_r": "C RNG; use sensord::Rng",
    "drand48": "global C RNG state; use sensord::Rng",
    "lrand48": "global C RNG state; use sensord::Rng",
    "mrand48": "global C RNG state; use sensord::Rng",
}
# Flagged only in call position (followed by '(') and not as a member access
# (preceded by '.' or '->'): too many legitimate identifiers share the name.
BANNED_CALLS = {
    "time": "reads the wall clock; use event-queue virtual time",
    "clock": "reads the process clock; use event-queue virtual time",
    "rand": "global C RNG state; use sensord::Rng",
    "random": "global C RNG state; use sensord::Rng",
}

# A loop over an unordered container is a violation when its body reaches one
# of these sinks: event emission, message send, or serialized output.
SINK_EXACT = {
    "OutlierEvent", "Send", "Transmit", "Deliver", "Emit", "fprintf",
    "fwrite", "fputs", "printf", "sprintf", "snprintf",
    # Snapshot encoding: checkpoint bytes must be identical across runs of
    # the same seed (the replay tests compare them), so hash-order writes
    # are as bad as hash-order sends.
    "Serialize", "SaveState",
    # Flight-recorder / causal-trace emit paths: ring records and span lines
    # land in byte-compared JSONL artifacts, so feeding them from a
    # hash-ordered loop breaks same-seed dump identity.
    "Record", "Dump", "DumpAll", "EmitCausalSpan", "EmitDecisionRecord",
}
SINK_PREFIX = ("Write", "Export", "Append", "Put")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")
UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")


class Violation:
    def __init__(self, rule, path, line, symbol, message):
        self.rule = rule
        self.path = path  # repo-relative, '/'-separated
        self.line = line
        self.symbol = symbol
        self.message = message

    def key(self):
        # Line numbers are deliberately not part of the key so that baseline
        # entries (when they briefly exist) survive unrelated edits.
        return "%s:%s:%s" % (self.rule, self.path, self.symbol)

    def render(self):
        return "%s:%d: error: [%s] %s" % (self.path, self.line, self.rule,
                                          self.message)


def strip_comments_and_strings(text):
    """Blanks comments and string/char literal contents, preserving offsets.

    Newlines inside comments are kept so line numbers stay exact. Raw string
    literals are handled for the common R"( )" delimiters.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == "R" and nxt == '"' and (i == 0 or not (text[i - 1].isalnum()
                                                         or text[i - 1] == "_")):
            m = re.match(r'R"([^ ()\\\t\n]{0,16})\(', text[i:])
            if m is None:
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n - len(closer) if j == -1 else j
            end = j + len(closer)
            for k in range(i, end):
                if out[k] != "\n":
                    out[k] = " "
            i = end
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n - 1) + 1
        else:
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, relpath):
        self.relpath = relpath
        with open(os.path.join(root, relpath), encoding="utf-8",
                  errors="replace") as f:
            self.text = f.read()
        self.code = strip_comments_and_strings(self.text)
        self.line_starts = [0]
        for m in re.finditer(r"\n", self.text):
            self.line_starts.append(m.end())

    def line_of(self, offset):
        return bisect.bisect_right(self.line_starts, offset)


def _prev_nonspace(code, i):
    i -= 1
    while i >= 0 and code[i].isspace():
        i -= 1
    return code[i] if i >= 0 else ""


def _prev_two(code, i):
    """The two non-space characters preceding offset i, as a string."""
    chars = []
    i -= 1
    while i >= 0 and len(chars) < 2:
        if not code[i].isspace():
            chars.append(code[i])
        i -= 1
    return "".join(reversed(chars))


def _next_nonspace(code, i):
    while i < len(code) and code[i].isspace():
        i += 1
    return code[i] if i < len(code) else ""


def rule_determinism_clock(src, allowlist):
    if src.relpath in allowlist:
        return []
    out = []
    for m in IDENT_RE.finditer(src.code):
        name = m.group()
        if name in BANNED_ALWAYS:
            out.append(Violation(
                RULE_DETERMINISM_CLOCK, src.relpath, src.line_of(m.start()),
                name, "'%s': %s" % (name, BANNED_ALWAYS[name])))
        elif name in BANNED_CALLS:
            if _next_nonspace(src.code, m.end()) != "(":
                continue
            prev2 = _prev_two(src.code, m.start())
            if prev2.endswith(".") or prev2.endswith(">"):  # '.' or '->'
                continue  # member access: some_struct.time(...)
            out.append(Violation(
                RULE_DETERMINISM_CLOCK, src.relpath, src.line_of(m.start()),
                name, "'%s()': %s" % (name, BANNED_CALLS[name])))
    return out


def _match_forward(code, i, open_ch, close_ch):
    """Offset just past the delimiter closing code[i] (which must be open_ch)."""
    depth = 0
    n = len(code)
    while i < n:
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _unordered_names(code):
    """Names declared with an unordered_{map,set,...} type in this TU."""
    names = set()
    for m in UNORDERED_RE.finditer(code):
        i = m.end()
        while i < len(code) and code[i].isspace():
            i += 1
        if i >= len(code) or code[i] != "<":
            continue
        i = _match_forward(code, i, "<", ">")
        # Skip declarator decorations between the type and the name.
        while i < len(code) and (code[i].isspace() or code[i] in "&*"):
            i += 1
        ident = IDENT_RE.match(code, i)
        if ident and ident.group() not in ("const",):
            names.add(ident.group())
    return names


def _body_span(code, i):
    """(start, end) offsets of the statement/body starting at offset i."""
    while i < len(code) and code[i].isspace():
        i += 1
    if i < len(code) and code[i] == "{":
        return i, _match_forward(code, i, "{", "}")
    end = code.find(";", i)
    return i, (len(code) if end == -1 else end + 1)


def _body_has_sink(body):
    for t in IDENT_RE.finditer(body):
        name = t.group()
        if name in SINK_EXACT or name.startswith(SINK_PREFIX):
            return name
    return None


def rule_determinism_unordered(src):
    code = src.code
    names = _unordered_names(code)
    if not names:
        return []
    out = []
    for m in re.finditer(r"\bfor\s*\(", code):
        open_paren = m.end() - 1
        close = _match_forward(code, open_paren, "(", ")")
        header = code[open_paren + 1:close - 1]
        looped = None
        colon = re.search(r"(?<!:):(?!:)", header)
        if colon is not None:  # range-for: the looped expression is the rhs
            for t in IDENT_RE.finditer(header[colon.end():]):
                if t.group() in names:
                    looped = t.group()
                    break
        else:  # iterator loop: look for <name>.begin()/cbegin() in the init
            it = re.search(r"(\w+)\s*\.\s*c?begin\s*\(", header)
            if it is not None and it.group(1) in names:
                looped = it.group(1)
        if looped is None:
            continue
        body_start, body_end = _body_span(code, close)
        sink = _body_has_sink(code[body_start:body_end])
        if sink is not None:
            out.append(Violation(
                RULE_DETERMINISM_UNORDERED, src.relpath,
                src.line_of(m.start()), looped,
                "iteration over unordered container '%s' reaches "
                "deterministic sink '%s'; hash order is unspecified — "
                "use an ordered container or sort first" % (looped, sink)))
    return out


_CLASS_RE = re.compile(r"\b(class|struct)\b")
_SKIP_CHUNK_FIRST = {
    "public", "private", "protected", "using", "typedef", "friend",
    "static", "template", "enum", "explicit", "virtual", "operator",
    "constexpr", "inline",
}


def _class_bodies(code):
    """Yields (name, body_start, body_end) for each class/struct body."""
    for m in _CLASS_RE.finditer(code):
        prev = _prev_two(code, m.start())
        if prev.endswith("enum") or prev.endswith("m"):  # 'enum class/struct'
            # _prev_two only returns 2 chars; re-check with a wider window.
            window = code[max(0, m.start() - 8):m.start()]
            if re.search(r"\benum\s*$", window):
                continue
        i = m.end()
        name = "<anonymous>"
        ident = IDENT_RE.search(code, i)
        # Walk to the first '{' or ';' — a ';' first means forward declaration.
        brace = code.find("{", i)
        semi = code.find(";", i)
        if brace == -1 or (semi != -1 and semi < brace):
            continue
        if ident and ident.start() < brace:
            name = ident.group()
        # 'class Foo : public Bar<...> {' — the '{' found may belong to a
        # template argument? No: template args use <>, so the first '{' after
        # the class head is the body.
        yield name, brace, _match_forward(code, brace, "{", "}")


def _field_chunks(code, body_start, body_end):
    """Top-level declaration chunks of a class body (method bodies skipped)."""
    chunks = []
    i = body_start + 1
    depth = 0
    start = i
    while i < body_end - 1:
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                chunks.append((start, i + 1))
                start = i + 1
        elif c == ";" and depth == 0:
            chunks.append((start, i))
            start = i + 1
        i += 1
    chunks.append((start, body_end - 1))
    return chunks


def _chunk_is_function(chunk):
    """True if the chunk has a parenthesis outside template args and outside
    a GUARDED_BY-style annotation — i.e. it declares a function."""
    angle = 0
    i = 0
    while i < len(chunk):
        c = chunk[i]
        if c == "<":
            angle += 1
        elif c == ">":
            angle = max(0, angle - 1)
        elif c == "(" and angle == 0:
            return True
        i += 1
    return False


_ANNOTATION_RE = re.compile(
    r"\b(?:GUARDED_BY|PT_GUARDED_BY|ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\(")


def _field_name(chunk):
    cut = len(chunk)
    for stop in "={[":
        p = chunk.find(stop)
        if p != -1:
            cut = min(cut, p)
    idents = IDENT_RE.findall(chunk[:cut])
    return idents[-1] if idents else None


def rule_thread_annotation(src):
    code = src.code
    if "mutex" not in code:
        return []
    out = []
    for cls, body_start, body_end in _class_bodies(code):
        fields = []  # (offset, chunk text with annotations removed, raw)
        mutex_fields = []
        for cstart, cend in _field_chunks(code, body_start, body_end):
            chunk_text = code[cstart:cend]
            raw = chunk_text.strip()
            if not raw:
                continue
            cstart += len(chunk_text) - len(chunk_text.lstrip())
            # An access label glued to the next declaration ('private:
            # std::mutex mu_') is part of the same chunk: peel it off.
            label = re.match(r"(?:(?:public|private|protected)\s*:\s*)+", raw)
            if label is not None:
                cstart += label.end()
                raw = raw[label.end():]
                if not raw:
                    continue
            first = IDENT_RE.match(raw)
            if first is None or first.group() in _SKIP_CHUNK_FIRST:
                continue
            if "class" in raw.split() or "struct" in raw.split():
                continue  # nested type: visited by _class_bodies itself
            annotated = _ANNOTATION_RE.search(raw) is not None
            stripped = _ANNOTATION_RE.sub("SENSORD_LINT_ANNOT(", raw)
            # Remove the annotation's argument parens before fn detection.
            stripped = re.sub(r"SENSORD_LINT_ANNOT\([^)]*\)", "", stripped)
            if _chunk_is_function(stripped):
                continue
            name = _field_name(stripped)
            if name is None:
                continue
            tokens = set(IDENT_RE.findall(stripped))
            if "mutex" in tokens or "shared_mutex" in tokens or \
               "recursive_mutex" in tokens:
                mutex_fields.append(name)
            else:
                fields.append((cstart, name, annotated, stripped))
        if not mutex_fields:
            continue
        for offset, name, annotated, stripped in fields:
            if annotated:
                continue
            tokens = set(IDENT_RE.findall(stripped))
            if "atomic" in tokens:
                continue  # lock-free by design; reads race benignly
            if stripped.lstrip().startswith("const "):
                continue  # immutable after construction
            out.append(Violation(
                RULE_THREAD_ANNOTATION, src.relpath, src.line_of(offset),
                "%s::%s" % (cls, name),
                "field '%s' of mutex-owning %s '%s' lacks GUARDED_BY(...) "
                "(see src/util/thread_annotations.h); annotate it or make "
                "the lock-free design explicit with std::atomic" %
                (name, "class/struct", cls)))
    return out


def load_pairing_map(path):
    """Parses 'src/foo.cc tests/bar_test.cc' or 'src/foo.cc -' lines."""
    mapping = {}
    if not os.path.exists(path):
        return mapping
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise SystemExit(
                    "%s:%d: expected '<src path> <test path|->'" %
                    (path, lineno))
            mapping[parts[0]] = parts[1]
    return mapping


def rule_test_pairing(root, pairing_map):
    out = []
    sources = sorted(
        os.path.join(dirpath, f).replace(os.sep, "/")
        for dirpath, _, files in os.walk(os.path.join(root, "src"))
        for f in files if f.endswith(".cc"))
    for abs_src in sources:
        rel = os.path.relpath(abs_src, root).replace(os.sep, "/")
        mapped = pairing_map.get(rel)
        if mapped == "-":
            continue
        if mapped is not None:
            expected = mapped
        else:
            base = os.path.splitext(os.path.basename(rel))[0]
            expected = "tests/%s_test.cc" % base
        if not os.path.exists(os.path.join(root, expected)):
            out.append(Violation(
                RULE_TEST_PAIRING, rel, 1, os.path.basename(rel),
                "no %s — every src/ translation unit needs a unit test "
                "(or an entry in tools/lint/test_pairing.map)" % expected))
        if mapped is not None and \
           not os.path.exists(os.path.join(root, mapped)):
            out.append(Violation(
                RULE_TEST_PAIRING, rel, 1, "map:" + os.path.basename(rel),
                "test_pairing.map points at missing %s" % mapped))
    return out


def compile_flags_from_compdb(compdb_path, root):
    """(compiler, flags) from a src/ entry of compile_commands.json; flags
    keep include dirs, -std, -D — the bits header compilation needs."""
    with open(compdb_path, encoding="utf-8") as f:
        db = json.load(f)
    entry = None
    for e in db:
        if "/src/" in e["file"].replace(os.sep, "/"):
            entry = e
            break
    if entry is None and db:
        entry = db[0]
    if entry is None:
        raise SystemExit("sensord_lint: empty compilation database: %s"
                         % compdb_path)
    argv = entry.get("arguments") or shlex.split(entry["command"])
    compiler = argv[0]
    flags = []
    i = 1
    while i < len(argv):
        a = argv[i]
        if a in ("-I", "-isystem", "-D"):
            flags.extend([a, argv[i + 1]])
            i += 2
        elif a.startswith(("-I", "-isystem", "-D", "-std=")):
            flags.append(a)
            i += 1
        else:
            i += 1
    return compiler, flags


def default_header_flags(root):
    return "c++", ["-std=c++20", "-I", os.path.join(root, "src")]


def rule_header_hygiene(root, headers, compiler, flags, verbose=False):
    out = []
    with tempfile.TemporaryDirectory(prefix="sensord_lint_hdr") as tmp:
        probe = os.path.join(tmp, "probe.cc")
        for rel in headers:
            # src/ headers are probed the way the codebase includes them
            # (-I src); anything else by absolute path.
            include = rel[len("src/"):] if rel.startswith("src/") \
                else os.path.join(root, rel)
            with open(probe, "w", encoding="utf-8") as f:
                f.write('#include "%s"\n' % include)
                f.write('#include "%s"\n' % include)  # include-guard check
            cmd = [compiler, "-fsyntax-only", "-x", "c++"] + flags + [probe]
            proc = subprocess.run(cmd, capture_output=True, text=True)
            if verbose:
                print("  header-hygiene: %s %s" %
                      (rel, "ok" if proc.returncode == 0 else "FAIL"))
            if proc.returncode != 0:
                first = next((l for l in proc.stderr.splitlines()
                              if "error" in l), proc.stderr.strip()[:200])
                first = first.replace(probe, "<probe>")
                out.append(Violation(
                    RULE_HEADER_HYGIENE, rel, 1, os.path.basename(rel),
                    "header is not self-contained: %s" % first))
    return out


def run_clang_query(root, compdb_path, rules_dir, files):
    """Supplementary AST-exact rules, active only where clang-query exists."""
    import shutil
    binary = shutil.which("clang-query")
    if binary is None or compdb_path is None or not os.path.isdir(rules_dir):
        return [], False
    out = []
    rule_files = sorted(f for f in os.listdir(rules_dir)
                        if f.endswith(".clangquery"))
    for rf in rule_files:
        cmd = [binary, "-p", os.path.dirname(compdb_path),
               "-f", os.path.join(rules_dir, rf)] + files
        proc = subprocess.run(cmd, capture_output=True, text=True)
        for m in re.finditer(r"^(\S+?):(\d+):\d+: note: \"root\" binds here",
                             proc.stdout, re.M):
            rel = os.path.relpath(m.group(1), root).replace(os.sep, "/")
            out.append(Violation(
                "clang-query:" + rf[:-len(".clangquery")], rel,
                int(m.group(2)), "%s:%s" % (rf, m.group(2)),
                "AST matcher in tools/lint/rules/%s matched" % rf))
    return out, True


def load_list_file(path):
    entries = set()
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if line:
                entries.add(line)
    return entries


def gather_sources(root, scan_paths, suffixes):
    rels = []
    if scan_paths:
        for p in scan_paths:
            ap = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(ap):
                for dirpath, _, files in os.walk(ap):
                    for f in sorted(files):
                        if f.endswith(suffixes):
                            rels.append(os.path.relpath(
                                os.path.join(dirpath, f), root))
            elif ap.endswith(suffixes):
                rels.append(os.path.relpath(ap, root))
    else:
        for dirpath, _, files in os.walk(os.path.join(root, "src")):
            for f in sorted(files):
                if f.endswith(suffixes):
                    rels.append(os.path.relpath(
                        os.path.join(dirpath, f), root))
    return sorted(set(r.replace(os.sep, "/") for r in rels))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sensord_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json for header hygiene and "
                             "clang-query (default: build/release/... if "
                             "present)")
    parser.add_argument("--rules", default=",".join(DEFAULT_GROUPS),
                        help="comma list of rule groups: %s" %
                             ",".join(RULE_GROUPS))
    parser.add_argument("--baseline", default=None,
                        help="suppression file (default: "
                             "tools/lint/baseline.txt)")
    parser.add_argument("--scan", nargs="*", default=None, metavar="PATH",
                        help="restrict file-scanning rules to these "
                             "files/dirs (default: src/)")
    parser.add_argument("--no-clang-query", action="store_true",
                        help="skip the optional clang-query rules even if "
                             "the binary is available")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    root = os.path.abspath(root)

    groups = [g for g in args.rules.split(",") if g]
    for g in groups:
        if g not in RULE_GROUPS:
            print("sensord_lint: unknown rule group '%s' (known: %s)" %
                  (g, ", ".join(RULE_GROUPS)), file=sys.stderr)
            return 2
    active = set()
    for g in groups:
        active.update(RULE_GROUPS[g])

    compdb = args.compdb
    if compdb is None:
        candidate = os.path.join(root, "build", "release",
                                 "compile_commands.json")
        compdb = candidate if os.path.exists(candidate) else None
    if compdb is not None and not os.path.exists(compdb):
        print("sensord_lint: no such compilation database: %s" % compdb,
              file=sys.stderr)
        return 2

    baseline_path = args.baseline or os.path.join(root, "tools", "lint",
                                                  "baseline.txt")
    baseline = load_list_file(baseline_path)
    allowlist = load_list_file(
        os.path.join(root, "tools", "lint", "determinism_allowlist.txt"))

    violations = []

    scan_rules = active & {RULE_DETERMINISM_CLOCK,
                           RULE_DETERMINISM_UNORDERED,
                           RULE_THREAD_ANNOTATION}
    sources = []
    if scan_rules:
        sources = gather_sources(root, args.scan, (".cc", ".h", ".cpp"))
        for rel in sources:
            src = SourceFile(root, rel)
            if RULE_DETERMINISM_CLOCK in active:
                violations += rule_determinism_clock(src, allowlist)
            if RULE_DETERMINISM_UNORDERED in active:
                violations += rule_determinism_unordered(src)
            if RULE_THREAD_ANNOTATION in active:
                violations += rule_thread_annotation(src)

    if RULE_TEST_PAIRING in active:
        pairing_map = load_pairing_map(
            os.path.join(root, "tools", "lint", "test_pairing.map"))
        violations += rule_test_pairing(root, pairing_map)

    if RULE_HEADER_HYGIENE in active:
        headers = [r for r in gather_sources(root, args.scan, (".h",))]
        if compdb is not None:
            compiler, flags = compile_flags_from_compdb(compdb, root)
        else:
            compiler, flags = default_header_flags(root)
        violations += rule_header_hygiene(root, headers, compiler, flags,
                                          verbose=args.verbose)

    if not args.no_clang_query and scan_rules:
        cc_files = [os.path.join(root, r) for r in sources
                    if r.endswith(".cc")]
        query_violations, ran = run_clang_query(
            root, compdb, os.path.join(root, "tools", "lint", "rules"),
            cc_files)
        if ran:
            violations += query_violations
        elif args.verbose:
            print("sensord_lint: clang-query not available; AST rules "
                  "skipped (the token rules above still ran)")

    kept = []
    used_baseline = set()
    for v in violations:
        if v.key() in baseline:
            used_baseline.add(v.key())
        else:
            kept.append(v)
    stale = sorted(baseline - used_baseline)
    for entry in stale:
        print("%s:1: error: [stale-baseline] baseline entry no longer "
              "matches any violation; delete it: %s"
              % (os.path.relpath(baseline_path, root), entry))

    kept.sort(key=lambda v: (v.path, v.line, v.rule))
    for v in kept:
        print(v.render())

    checked = []
    if scan_rules:
        checked.append("%d files" % len(sources))
    if RULE_HEADER_HYGIENE in active:
        checked.append("headers standalone")
    if RULE_TEST_PAIRING in active:
        checked.append("test pairing")
    status = "clean" if not kept and not stale else \
             "%d violation(s)" % (len(kept) + len(stale))
    print("sensord_lint: %s [%s; baseline: %d entr%s]" %
          (status, ", ".join(checked) or "no rules", len(baseline),
           "y" if len(baseline) == 1 else "ies"))
    return 0 if not kept and not stale else 1


if __name__ == "__main__":
    sys.exit(main())
