#!/usr/bin/env python3
"""Joins sensord causal-trace and flight-recorder JSONL into a report.

The trace sink (src/obs/trace.h) emits three record shapes, distinguished by
key presence:

  * causal spans     — {"name", "node", "vt", "trace", "span", "parent"}
  * decision records — {"decision", "node", "level", "vt", "trace", "span",
                        "estimate", "threshold", "model_version",
                        "staleness_s", "degraded", "latency_s"}
  * plain spans      — {"name", "node", "vt", "begin_ns", "end_ns"}
                       (latency profiling; not part of any causal chain)

The flight-recorder sink (src/obs/flight_recorder.h) emits dump headers
({"flight", "node", "vt", "events", "evicted"}) followed by event lines
({"fr", "node", "vt", "a", "b", "value"}).

Report mode (default) prints, deterministically for a deterministic input:
  * one causal chain per decision record, leaf-to-deciding-node order,
  * a per-tier latency breakdown over the decision records,
  * a flight-dump summary when --flight is given.

Validate mode (--validate) is the CI gate: every line must parse, every
causal span's parent must exist within its trace, and every decision's span
must have been emitted. Exit 1 on the first class of violation found.

Outside --validate, malformed lines (truncated writes, corrupted dumps) are
counted and skipped, never fatal — a flight recorder's output is most
interesting exactly when the process died mid-write.
"""

import argparse
import json
import sys
from collections import OrderedDict


def classify(record):
    """Returns one of 'causal', 'decision', 'plain', 'flight_header',
    'flight_event', or 'unknown'."""
    if not isinstance(record, dict):
        return "unknown"
    if "decision" in record:
        return "decision"
    if "flight" in record:
        return "flight_header"
    if "fr" in record:
        return "flight_event"
    if "name" in record and "trace" in record and "span" in record:
        return "causal"
    if "name" in record:
        return "plain"
    return "unknown"


REQUIRED_KEYS = {
    "causal": ("name", "node", "vt", "trace", "span", "parent"),
    "decision": ("decision", "node", "level", "vt", "trace", "span",
                 "estimate", "threshold", "latency_s"),
    "flight_header": ("flight", "node", "vt", "events", "evicted"),
    "flight_event": ("fr", "node", "vt", "a", "b", "value"),
}


def parse_lines(path, strict, errors):
    """Yields (line_number, record) for each parseable line of `path`.

    In strict mode every defect is appended to `errors`; otherwise defects
    are skipped and only counted (errors receives nothing)."""
    skipped = 0
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            for lineno, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    if strict:
                        errors.append(f"{path}:{lineno}: malformed JSON")
                    skipped += 1
                    continue
                kind = classify(record)
                required = REQUIRED_KEYS.get(kind, ())
                missing = [k for k in required if k not in record]
                if kind == "unknown" or missing:
                    if strict:
                        what = ("unrecognized record shape" if kind == "unknown"
                                else f"{kind} record missing {missing}")
                        errors.append(f"{path}:{lineno}: {what}")
                    skipped += 1
                    continue
                yield lineno, kind, record
    except OSError as e:
        errors.append(f"{path}: {e}")
    if skipped and not strict:
        print(f"note: skipped {skipped} malformed line(s) in {path}")


class TraceIndex:
    """Causal spans keyed by (trace, span), decisions in file order."""

    def __init__(self):
        self.spans = {}       # (trace, span) -> record
        self.decisions = []   # file order
        self.plain_spans = 0

    def add(self, kind, record):
        if kind == "causal":
            self.spans[(record["trace"], record["span"])] = record
        elif kind == "decision":
            self.decisions.append(record)
        elif kind == "plain":
            self.plain_spans += 1

    def chain_for(self, trace, span):
        """Walks parent links from `span`; returns (chain_leaf_first,
        orphan_parent_or_None). Cycles (impossible from correct emitters,
        possible from corruption) terminate the walk."""
        chain = []
        seen = set()
        cursor = span
        orphan = None
        while cursor:
            if cursor in seen:
                break  # corrupted parent loop; report what we have
            seen.add(cursor)
            record = self.spans.get((trace, cursor))
            if record is None:
                orphan = cursor
                break
            chain.append(record)
            cursor = record["parent"]
        chain.reverse()
        return chain, orphan

    def orphan_spans(self):
        """Causal spans whose non-zero parent was never emitted."""
        out = []
        for (trace, _span), record in self.spans.items():
            parent = record["parent"]
            if parent and (trace, parent) not in self.spans:
                out.append(record)
        return out


def load_trace(path, strict, errors):
    index = TraceIndex()
    for _lineno, kind, record in parse_lines(path, strict, errors):
        index.add(kind, record)
    return index


def load_flight(path, strict, errors):
    """Returns a list of dumps: (header, [events])."""
    dumps = []
    for _lineno, kind, record in parse_lines(path, strict, errors):
        if kind == "flight_header":
            dumps.append((record, []))
        elif kind == "flight_event":
            if dumps:
                dumps[-1][1].append(record)
            elif strict:
                errors.append(f"{path}: flight event before any dump header")
    return dumps


def validate(args):
    errors = []
    index = load_trace(args.trace, strict=True, errors=errors)
    if args.flight:
        load_flight(args.flight, strict=True, errors=errors)
    for record in index.orphan_spans():
        errors.append(
            "orphan span: {name} at node {node} (trace {trace}) references "
            "missing parent {parent}".format(**record))
    for decision in index.decisions:
        if (decision["trace"], decision["span"]) not in index.spans:
            errors.append(
                "decision {decision} at node {node} has no emitted span "
                "{span} (trace {trace})".format(**decision))
    if errors:
        for e in errors:
            print(f"trace_report: {e}", file=sys.stderr)
        return 1
    n_files = 2 if args.flight else 1
    print(f"trace_report: OK ({n_files} file(s), {len(index.spans)} causal "
          f"span(s), {len(index.decisions)} decision(s), no orphans)")
    return 0


def format_chain(index, decision):
    chain, orphan = index.chain_for(decision["trace"], decision["span"])
    hops = " -> ".join(
        f"{r['name']}@n{r['node']}(vt={r['vt']:g})" for r in chain)
    if orphan is not None:
        hops = f"[orphan parent {orphan}] ... {hops}" if hops else \
            f"[orphan parent {orphan}]"
    return hops if hops else "(no spans)"


def report(args):
    errors = []
    index = load_trace(args.trace, strict=False, errors=errors)
    dumps = load_flight(args.flight, False, errors) if args.flight else []
    for e in errors:
        print(f"trace_report: {e}", file=sys.stderr)

    print(f"trace_report: {len(index.spans)} causal span(s), "
          f"{len(index.decisions)} decision(s), "
          f"{index.plain_spans} plain span(s)")

    # Per-decision causal chains, leaf to deciding node.
    shown = 0
    for decision in index.decisions:
        if args.max_chains >= 0 and shown >= args.max_chains:
            remaining = len(index.decisions) - shown
            print(f"  ... {remaining} more decision(s) "
                  f"(raise --max-chains to see them)")
            break
        shown += 1
        # Provenance keys beyond the required set default to 0 so a record
        # from an older emitter (or a torn write) still prints.
        full = {"model_version": 0, "staleness_s": 0.0, "degraded": 0}
        full.update(decision)
        print("decision {decision} node={node} level={level} vt={vt:g} "
              "estimate={estimate:g} threshold={threshold:g} "
              "model_version={model_version} staleness_s={staleness_s:g} "
              "degraded={degraded} latency_s={latency_s:g}".format(**full))
        print(f"  chain: {format_chain(index, decision)}")

    # Latency breakdown by tier (virtual seconds, ingest -> decision).
    by_level = OrderedDict()
    for decision in sorted(index.decisions, key=lambda d: d["level"]):
        by_level.setdefault(decision["level"], []).append(
            decision["latency_s"])
    if by_level:
        print("latency breakdown (virtual seconds, ingest -> decision):")
        print(f"  {'level':>5} {'count':>7} {'mean':>12} {'max':>12}")
        for level, values in by_level.items():
            mean = sum(values) / len(values)
            print(f"  {level:>5} {len(values):>7} {mean:>12.6g} "
                  f"{max(values):>12.6g}")

    orphans = index.orphan_spans()
    if orphans:
        print(f"WARNING: {len(orphans)} orphan span(s) — parent emitted "
              f"nowhere in this trace:")
        for record in orphans[:10]:
            print("  {name} at node {node} vt={vt:g} trace={trace} "
                  "missing parent {parent}".format(**record))

    for header, events in dumps:
        print("flight dump reason={flight} node={node} vt={vt:g} "
              "events={events} evicted={evicted}".format(**header))
        for e in events:
            print("  {fr:<11} vt={vt:<12g} a={a:<6} b={b:<6} "
                  "value={value:g}".format(**e))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Join sensord trace/flight JSONL into causal chains and "
                    "a latency breakdown.")
    parser.add_argument("trace", help="causal span + decision JSONL "
                                      "(SENSORD_TRACE_JSONL output)")
    parser.add_argument("--flight", help="flight-recorder dump JSONL "
                                         "(SENSORD_FLIGHT_JSONL output)")
    parser.add_argument("--validate", action="store_true",
                        help="strict CI gate: malformed lines, orphan spans "
                             "and span-less decisions are fatal")
    parser.add_argument("--max-chains", type=int, default=20,
                        help="decision chains to print in report mode "
                             "(-1 = all; default %(default)s)")
    args = parser.parse_args(argv)
    return validate(args) if args.validate else report(args)


if __name__ == "__main__":
    sys.exit(main())
