// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The fixed worker pool of the deterministic parallel engine (DESIGN.md
// §12). One pool lives inside a Simulator configured with threads > 1; each
// tick the Simulator hands it a batch of independent handler closures (one
// per distinct node), the pool runs them on its workers plus the calling
// thread, and Run() returns once every handler finished — a barrier.
//
// Determinism does not depend on which worker runs which handler or in what
// order they interleave: handlers touch only their own node's state and
// stage every ordered side effect into a per-item OpLog (util/staging.h)
// that the Simulator replays serially afterwards. The pool is therefore a
// plain work-claiming loop — an atomic cursor over the batch — with no
// ordering machinery of its own.

#ifndef SENSORD_NET_PARALLEL_H_
#define SENSORD_NET_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace sensord {

/// A fixed set of worker threads executing indexed batches on demand.
class WorkerPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in every
  /// batch, so `threads` is the total parallelism). Pre: threads >= 2.
  explicit WorkerPool(int threads);

  /// Joins every worker. Pre: no Run() in progress.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs task(0) .. task(count - 1), each exactly once, distributed over
  /// the workers and the calling thread; returns when all have finished.
  /// `task` must be safe to call concurrently for distinct indices. Only
  /// one Run() may be in flight at a time (the simulator's tick barrier).
  void Run(const std::function<void(size_t)>& task, size_t count);

  int threads() const { return threads_; }

 private:
  void WorkerMain();

  const int threads_;

  std::mutex mu_;
  std::condition_variable batch_ready_ GUARDED_BY(mu_);
  std::condition_variable batch_done_ GUARDED_BY(mu_);
  uint64_t generation_ GUARDED_BY(mu_) = 0;  // bumped per batch
  bool shutdown_ GUARDED_BY(mu_) = false;
  const std::function<void(size_t)>* task_ GUARDED_BY(mu_) = nullptr;
  size_t count_ GUARDED_BY(mu_) = 0;
  size_t finished_ GUARDED_BY(mu_) = 0;  // items completed in this batch
  size_t inflight_ GUARDED_BY(mu_) = 0;  // workers inside this batch

  std::atomic<size_t> cursor_{0};  // next unclaimed item of the batch

  // Spawned in the constructor, joined in the destructor, never touched
  // in between — those two run single-threaded by contract, so the
  // annotation documents "not shared" rather than a real lock protocol.
  std::vector<std::thread> workers_ GUARDED_BY(mu_);
};

}  // namespace sensord

#endif  // SENSORD_NET_PARALLEL_H_
