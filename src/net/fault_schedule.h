// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Deterministic fault injection for the sensor network simulator.
//
// The paper's experiments model unreliable radios with a single global loss
// probability; real deployments fail in richer ways — flaky individual
// links, duplicated and reordered frames, nodes that crash and later
// recover, and partitions that sever whole regions for a while (Branch et
// al., "In-Network Outlier Detection in Wireless Sensor Networks", treats
// exactly this class of fault as the central engineering problem). A
// FaultSchedule describes all of these as data, is driven entirely by the
// simulator's virtual clock, and draws every probabilistic decision from
// one seeded Rng — so a given (topology, workload, schedule, seed) tuple
// replays the exact same delivery order, byte for byte.
//
// Crash semantics come in two kinds (DESIGN.md §10). An *omission* crash is
// the classic fault: a down node neither transmits nor receives (messages
// addressed to it are dropped in flight) and its sensor produces no
// readings, but it keeps its memory — a mote whose radio and MCU brown out
// without flash loss. An *amnesia* crash additionally erases the node's
// volatile state at restart: the Simulator resets the node, restores its
// last checkpoint if one exists (core/snapshot.h), bumps its transport
// incarnation and runs the rejoin protocol. Partitions sever every link
// with exactly one endpoint inside the partitioned group.
//
// Orthogonally to message faults, per-node *sensor data* faults corrupt the
// reading stream at its source: stuck-at (the transducer freezes), dropout
// (NaN/Inf garbage) and spike (additive excursions). These exercise the
// ingest validation firewall (data/validate.h) rather than the transport.

#ifndef SENSORD_NET_FAULT_SCHEDULE_H_
#define SENSORD_NET_FAULT_SCHEDULE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/event_queue.h"
#include "net/message.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {

/// Stochastic misbehaviour of one directed link. All probabilities are
/// per physical transmission (retransmissions re-roll).
struct LinkFault {
  /// Probability the frame is lost in flight.
  double drop_probability = 0.0;

  /// Probability the frame is delivered twice (radio-level duplicate; the
  /// reliable transport suppresses these, raw consumers see both copies).
  double duplicate_probability = 0.0;

  /// Extra per-copy delivery delay, uniform in [0, jitter_max] seconds.
  /// Jitter larger than the send spacing reorders deliveries.
  double jitter_max = 0.0;

  /// Probability a copy is additionally held back `reorder_delay` seconds —
  /// a heavier tail than uniform jitter, guaranteeing reordering.
  double reorder_probability = 0.0;
  double reorder_delay = 0.0;
};

/// How a node crashes (see the header comment for semantics).
enum class CrashKind {
  kOmission,  ///< down for the interval; memory intact on recovery
  kAmnesia,   ///< volatile state erased at restart; recovers via checkpoint
};

/// How a sensor's reading stream is corrupted at the source during an
/// active fault window. Faults apply before any network involvement, so
/// they reach the node's ingest firewall exactly as a broken transducer
/// would.
enum class SensorDataFaultKind {
  kStuckAt,  ///< every coordinate frozen at `value`
  kDropout,  ///< coordinates replaced by NaN / +Inf garbage
  kSpike,    ///< `value` added to every coordinate
};

/// One sensor data fault window on one node.
struct SensorFault {
  SensorDataFaultKind kind = SensorDataFaultKind::kStuckAt;
  SimTime from = 0.0;
  SimTime until = std::numeric_limits<SimTime>::infinity();
  /// Fraction of readings in the window that are corrupted; 1.0 corrupts
  /// every reading without consuming randomness.
  double probability = 1.0;
  /// kStuckAt: the frozen coordinate value. kSpike: the added magnitude.
  /// Ignored by kDropout.
  double value = 0.0;
};

/// What the schedule decided for one physical transmission.
struct TransmissionPlan {
  /// True: the frame (all copies) is lost.
  bool drop = false;

  /// Extra delay of each delivered copy, added to the hop latency.
  /// One entry per copy; {0.0} is a plain single delivery.
  std::vector<double> extra_delays;
};

/// A deterministic, virtual-time-driven schedule of injected faults.
/// Configure before (or during) a run; the Simulator consults it on every
/// transmission, delivery and sensor reading.
class FaultSchedule {
 public:
  static constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();

  explicit FaultSchedule(uint64_t seed = 0xFA017B0D) : rng_(seed) {}

  /// Fault model applied to every link without a per-link override.
  void SetDefaultLinkFault(const LinkFault& fault) { default_fault_ = fault; }

  /// Fault model of the directed link from -> to.
  void SetLinkFault(NodeId from, NodeId to, const LinkFault& fault) {
    link_faults_[{from, to}] = fault;
  }

  /// Deterministically drops the next `count` physical transmissions on the
  /// directed link from -> to (before any probabilistic decision). The
  /// precise control the transport tests need.
  void DropNext(NodeId from, NodeId to, uint64_t count) {
    forced_drops_[{from, to}] += count;
  }

  /// Takes `node` down during the half-open interval [from, until): the
  /// node is already down for an event at exactly `from` and back up for an
  /// event at exactly `until`. Intervals may be open-ended (until =
  /// kForever) and multiple, possibly overlapping, intervals per node are
  /// allowed — the node is down whenever any interval covers the instant.
  /// kAmnesia additionally erases volatile state at restart (the crash
  /// listener, installed by the Simulator, schedules the restart).
  void CrashNode(NodeId node, SimTime from, SimTime until = kForever,
                 CrashKind kind = CrashKind::kOmission) {
    crashes_[node].push_back({from, until, kind});
    if (crash_listener_) crash_listener_(node, from, until, kind);
  }

  /// Observer invoked (synchronously) for every subsequent CrashNode call.
  /// The Simulator installs one to schedule amnesia restarts; set before
  /// configuring crashes.
  using CrashListener =
      std::function<void(NodeId, SimTime from, SimTime until, CrashKind)>;
  void SetCrashListener(CrashListener listener) {
    crash_listener_ = std::move(listener);
  }

  /// Corrupts `node`'s reading stream during [fault.from, fault.until).
  /// Multiple fault windows per node are allowed; at a given instant the
  /// earliest-added active window applies.
  void AddSensorFault(NodeId node, const SensorFault& fault) {
    sensor_faults_[node].push_back(fault);
  }

  /// True if any sensor fault window is configured for `node` (active or
  /// not) — lets the reading path skip the perturbation copy entirely for
  /// clean nodes.
  bool HasSensorFaults(NodeId node) const {
    return sensor_faults_.count(node) > 0;
  }

  /// Applies the active sensor fault window (if any) to `reading` in place.
  /// Returns true iff the reading was corrupted. Consumes randomness only
  /// when an active window has probability < 1.
  bool PerturbReading(NodeId node, SimTime t, Point* reading);

  /// Severs every link between `group` and the rest of the network during
  /// [from, until). Links inside the group (and outside it) stay up.
  void Partition(std::vector<NodeId> group, SimTime from,
                 SimTime until = kForever) {
    partitions_.push_back(
        PartitionSpec{from, until, {group.begin(), group.end()}});
  }

  /// True if `node` is not inside any crash interval at time `t`.
  bool IsNodeUp(NodeId node, SimTime t) const;

  /// True if neither endpoint is down and no active partition separates
  /// the endpoints at time `t`.
  bool IsLinkUp(NodeId from, NodeId to, SimTime t) const;

  /// Decides the fate of one physical transmission at time `t`. Advances
  /// the schedule's Rng only for the probabilistic knobs that are actually
  /// configured on the link, so an unconfigured schedule costs nothing and
  /// perturbs no randomness.
  TransmissionPlan DecideTransmission(NodeId from, NodeId to, SimTime t);

  /// Transmissions dropped by this schedule (forced, probabilistic, severed
  /// links), radio-level duplicates injected, and readings corrupted by
  /// sensor data faults, for assertions.
  uint64_t drops() const { return drops_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t sensor_perturbations() const { return sensor_perturbations_; }

 private:
  struct Interval {
    SimTime from;
    SimTime until;
    CrashKind kind;
    bool Contains(SimTime t) const { return t >= from && t < until; }
  };
  struct PartitionSpec {
    SimTime from;
    SimTime until;
    std::set<NodeId> group;
  };

  const LinkFault& FaultFor(NodeId from, NodeId to) const;

  LinkFault default_fault_;
  std::map<std::pair<NodeId, NodeId>, LinkFault> link_faults_;
  std::map<std::pair<NodeId, NodeId>, uint64_t> forced_drops_;
  std::map<NodeId, std::vector<Interval>> crashes_;
  std::map<NodeId, std::vector<SensorFault>> sensor_faults_;
  std::vector<PartitionSpec> partitions_;
  CrashListener crash_listener_;
  Rng rng_;
  uint64_t drops_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t sensor_perturbations_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_FAULT_SCHEDULE_H_
