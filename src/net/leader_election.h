// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Energy-aware leader rotation for the virtual-grid cells.
//
// Section 2: "At each cell ... there is one leader node ... The
// hierarchical decomposition of the sensor network, as well as the
// selection of the leaders ... can be achieved using any of the techniques
// proposed in the literature [17, 33, 47]. These techniques ensure the
// leadership role is rotated among the nodes of the network ... in an
// energy efficient manner."
//
// This class is the scheduling policy those protocols implement: given the
// cells of a tier and each node's consumed energy, it keeps the member with
// the most residual energy in the leader role, with hysteresis so that
// near-ties do not cause leadership flapping (every hand-off costs state
// transfer in a real deployment). The message-level election protocol
// itself is orthogonal to the detection algorithms (the paper treats it as
// a black box) and is not simulated.

#ifndef SENSORD_NET_LEADER_ELECTION_H_
#define SENSORD_NET_LEADER_ELECTION_H_

#include <functional>
#include <vector>

#include "net/message.h"
#include "util/status.h"

namespace sensord {

/// Knobs of the rotation policy.
struct LeaderElectionConfig {
  /// Energy budget every node starts with, in the simulator's units.
  double initial_energy = 1000.0;

  /// A challenger must have at least this fraction more residual energy
  /// than the incumbent to take over (anti-flapping).
  double hysteresis = 0.05;
};

/// Rotates cell leadership toward the members with the most residual
/// energy.
class LeaderElection {
 public:
  /// `cells[i]` lists the member nodes of cell i; the initial leader of
  /// each cell is its first member. Returns InvalidArgument if any cell is
  /// empty or the config is out of range.
  static StatusOr<LeaderElection> Create(
      std::vector<std::vector<NodeId>> cells, LeaderElectionConfig config);

  size_t NumCells() const { return cells_.size(); }

  /// Current leader of cell `cell`. Pre: cell < NumCells().
  NodeId LeaderOf(size_t cell) const { return leaders_[cell]; }

  /// Residual energy of `node` given its consumption.
  double Residual(double consumed) const {
    return config_.initial_energy - consumed;
  }

  /// Re-elects every cell using `consumed(node)` readings (e.g.
  /// Simulator::EnergyConsumed). Returns the indices of cells whose leader
  /// changed.
  std::vector<size_t> Rotate(
      const std::function<double(NodeId)>& consumed);

  /// Total leadership hand-offs so far.
  uint64_t handoffs() const { return handoffs_; }

 private:
  LeaderElection(std::vector<std::vector<NodeId>> cells,
                 LeaderElectionConfig config);

  LeaderElectionConfig config_;
  std::vector<std::vector<NodeId>> cells_;
  std::vector<NodeId> leaders_;
  uint64_t handoffs_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_LEADER_ELECTION_H_
