#include "net/event_queue.h"

#include <utility>

#include "util/check.h"

namespace sensord {

void EventQueue::ScheduleAt(SimTime t, std::function<void()> fn) {
  SENSORD_DCHECK_GE(t, now_);
  heap_.push(Event{t, next_seq_++, std::move(fn)});
}

void EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  SENSORD_DCHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::RunOne() {
  SENSORD_DCHECK(!heap_.empty());
  // Move the callback out before popping: the callback may schedule new
  // events and mutate the heap.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.fn();
}

uint64_t EventQueue::RunUntil(SimTime until) {
  uint64_t fired = 0;
  while (!heap_.empty() && heap_.top().time <= until) {
    RunOne();
    ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

uint64_t EventQueue::RunAll() {
  uint64_t fired = 0;
  while (!heap_.empty()) {
    RunOne();
    ++fired;
  }
  return fired;
}

}  // namespace sensord
