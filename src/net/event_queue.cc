#include "net/event_queue.h"

#include <utility>

#include "util/check.h"

namespace sensord {

// 4-ary implicit heap: half the depth of a binary heap and the four children
// share cache lines, which matters because sift operations dominate the
// queue's cost at simulation scale.
void EventQueue::SiftUp(size_t i) {
  HeapItem item = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 4;
    if (!Later(heap_[parent], item)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  HeapItem item = heap_[i];
  for (;;) {
    const size_t first = 4 * i + 1;
    if (first >= n) break;
    size_t best = first;
    const size_t end = first + 4 < n ? first + 4 : n;
    for (size_t c = first + 1; c < end; ++c) {
      if (Later(heap_[best], heap_[c])) best = c;
    }
    if (!Later(item, heap_[best])) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = item;
}

void EventQueue::ScheduleAt(SimTime t, std::function<void()> fn) {
  ScheduleAtTagged(t, EventKind::kOther, kNoEventNode, std::move(fn));
}

void EventQueue::ScheduleAtTagged(SimTime t, EventKind kind, uint32_t node,
                                  std::function<void()> fn) {
  SENSORD_DCHECK_GE(t, now_);
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(fn));
  }
  heap_.push_back(HeapItem{t, next_seq_++, slot, node, kind});
  SiftUp(heap_.size() - 1);
}

void EventQueue::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  SENSORD_DCHECK_GE(delay, 0.0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::RunOne() {
  SENSORD_DCHECK(!heap_.empty());
  const HeapItem top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  // Move the callback out before firing: the callback may schedule new
  // events, which can reuse or grow the slot pool.
  std::function<void()> fn = std::move(slots_[top.slot]);
  slots_[top.slot] = nullptr;
  free_slots_.push_back(top.slot);
  now_ = top.time;
  fn();
}

std::function<void()> EventQueue::PopFront() {
  SENSORD_DCHECK(!heap_.empty());
  const HeapItem top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
  std::function<void()> fn = std::move(slots_[top.slot]);
  slots_[top.slot] = nullptr;
  free_slots_.push_back(top.slot);
  now_ = top.time;
  return fn;
}

uint64_t EventQueue::RunUntil(SimTime until) {
  uint64_t fired = 0;
  while (!heap_.empty() && heap_.front().time <= until) {
    RunOne();
    ++fired;
  }
  if (now_ < until) now_ = until;
  return fired;
}

uint64_t EventQueue::RunAll() {
  uint64_t fired = 0;
  while (!heap_.empty()) {
    RunOne();
    ++fired;
  }
  return fired;
}

}  // namespace sensord
