// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Messages exchanged between simulated sensor nodes.
//
// The transport layer is application-agnostic: a message carries an opaque
// payload (std::any) plus the metadata the accounting layer needs — a kind
// tag for per-category statistics and a size, in numbers, under the paper's
// "16-bit architecture, 2 bytes per number" convention (Section 10.3). The
// detection algorithms in src/core define the payload structs and register
// their own kind values.

#ifndef SENSORD_NET_MESSAGE_H_
#define SENSORD_NET_MESSAGE_H_

#include <any>
#include <cstdint>
#include <string>

namespace sensord {

/// Identifier of a simulated node; assigned densely from 0 by the Simulator.
using NodeId = uint32_t;

/// Sentinel for "no node" (e.g. the root's parent).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Application-defined message category. Values below 100 are reserved for
/// the algorithms shipped with sensord (see core/protocol.h) and for the
/// transport layer; applications embedding the simulator may use 100+.
using MessageKind = uint16_t;

/// Transport-layer acknowledgement (see net/transport.h). Infrastructure:
/// consumed by the Simulator's receive path, never handed to a Node.
inline constexpr MessageKind kMsgTransportAck = 99;

/// A message in flight.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  MessageKind kind = 0;
  /// Payload size in numeric values; the stats layer converts to bytes.
  size_t size_numbers = 0;
  /// Transport sequence number on the (from, to) link; 0 for unreliable
  /// datagrams. Stamped by ReliableTransport on reliable sends and echoed
  /// back by acks (where it names the acked data message).
  uint64_t transport_seq = 0;
  /// Sender's incarnation epoch at send time (see ReliableTransport). Bumped
  /// when the sender restarts from an amnesia crash, so receivers can tell a
  /// restarted peer's reused seq numbers from stale duplicates. Echoed by
  /// acks alongside transport_seq. 0 until the sender's first restart.
  uint32_t transport_epoch = 0;
  /// Causal trace context (DESIGN.md §11): the trace this message belongs to
  /// and the span that caused its send, both 0 when untraced. Raw ids, not
  /// obs types, so net/ stays independent of the obs layer. Out-of-band
  /// metadata like transport_seq: not charged to size_numbers, and carried
  /// verbatim through transport retransmits (the transport retains the whole
  /// Message) so a retransmitted report still joins its original chain.
  uint64_t trace_id = 0;
  uint64_t trace_parent_span = 0;
  /// Opaque payload; receivers std::any_cast to the struct the kind implies.
  std::any payload;
};

}  // namespace sensord

#endif  // SENSORD_NET_MESSAGE_H_
