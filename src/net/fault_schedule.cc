#include "net/fault_schedule.h"

#include <limits>

#include "obs/metrics.h"

namespace sensord {
namespace {

struct FaultMetrics {
  obs::Counter* drops;             // transmissions killed by the schedule
  obs::Counter* duplicates;        // radio-level duplicate copies injected
  obs::Counter* sensor_perturbed;  // readings corrupted at the source
};

const FaultMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const FaultMetrics m{
      registry.GetCounter("net.fault.drops"),
      registry.GetCounter("net.fault.duplicates"),
      registry.GetCounter("net.fault.sensor_perturbed")};
  return m;
}

}  // namespace

bool FaultSchedule::IsNodeUp(NodeId node, SimTime t) const {
  const auto it = crashes_.find(node);
  if (it == crashes_.end()) return true;
  for (const Interval& iv : it->second) {
    if (iv.Contains(t)) return false;
  }
  return true;
}

bool FaultSchedule::IsLinkUp(NodeId from, NodeId to, SimTime t) const {
  if (!IsNodeUp(from, t) || !IsNodeUp(to, t)) return false;
  for (const PartitionSpec& p : partitions_) {
    if (t < p.from || t >= p.until) continue;
    if ((p.group.count(from) > 0) != (p.group.count(to) > 0)) return false;
  }
  return true;
}

bool FaultSchedule::PerturbReading(NodeId node, SimTime t, Point* reading) {
  const auto it = sensor_faults_.find(node);
  if (it == sensor_faults_.end()) return false;
  for (const SensorFault& fault : it->second) {
    if (t < fault.from || t >= fault.until) continue;
    // Randomness only when the window is actually probabilistic, mirroring
    // DecideTransmission's knob-gated draws.
    if (fault.probability < 1.0 && !rng_.Bernoulli(fault.probability)) {
      return false;  // this window decided; later windows do not re-roll
    }
    ++sensor_perturbations_;
    Metrics().sensor_perturbed->Increment();
    switch (fault.kind) {
      case SensorDataFaultKind::kStuckAt:
        for (double& c : *reading) c = fault.value;
        break;
      case SensorDataFaultKind::kDropout:
        // Alternate NaN and +Inf deterministically so both non-finite
        // classes hit the ingest firewall without consuming randomness.
        for (double& c : *reading) {
          c = (sensor_perturbations_ % 2 == 0)
                  ? std::numeric_limits<double>::infinity()
                  : std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case SensorDataFaultKind::kSpike:
        for (double& c : *reading) c += fault.value;
        break;
    }
    return true;
  }
  return false;
}

const LinkFault& FaultSchedule::FaultFor(NodeId from, NodeId to) const {
  const auto it = link_faults_.find({from, to});
  return it == link_faults_.end() ? default_fault_ : it->second;
}

TransmissionPlan FaultSchedule::DecideTransmission(NodeId from, NodeId to,
                                                   SimTime t) {
  TransmissionPlan plan;

  const auto forced = forced_drops_.find({from, to});
  if (forced != forced_drops_.end() && forced->second > 0) {
    --forced->second;
    plan.drop = true;
  }
  if (!plan.drop && !IsLinkUp(from, to, t)) plan.drop = true;

  const LinkFault& fault = FaultFor(from, to);
  // Each knob consumes randomness only when configured, so the decision
  // stream of a given configuration is stable even as unrelated links gain
  // fault models.
  if (!plan.drop && fault.drop_probability > 0.0 &&
      rng_.Bernoulli(fault.drop_probability)) {
    plan.drop = true;
  }
  if (plan.drop) {
    ++drops_;
    Metrics().drops->Increment();
    return plan;
  }

  size_t copies = 1;
  if (fault.duplicate_probability > 0.0 &&
      rng_.Bernoulli(fault.duplicate_probability)) {
    copies = 2;
    ++duplicates_;
    Metrics().duplicates->Increment();
  }
  plan.extra_delays.reserve(copies);
  for (size_t i = 0; i < copies; ++i) {
    double delay = 0.0;
    if (fault.jitter_max > 0.0) {
      delay += rng_.UniformDouble(0.0, fault.jitter_max);
    }
    if (fault.reorder_probability > 0.0 &&
        rng_.Bernoulli(fault.reorder_probability)) {
      delay += fault.reorder_delay;
    }
    plan.extra_delays.push_back(delay);
  }
  return plan;
}

}  // namespace sensord
