#include "net/parallel.h"

#include "util/check.h"

namespace sensord {

WorkerPool::WorkerPool(int threads) : threads_(threads) {
  SENSORD_CHECK_GE(threads, 2);
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 0; i < threads - 1; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::Run(const std::function<void(size_t)>& task, size_t count) {
  if (count == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    count_ = count;
    finished_ = 0;
    cursor_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  batch_ready_.notify_all();
  // The caller is a full participant: it claims items like any worker, so a
  // batch of one never pays a wakeup, and small batches finish in-line.
  size_t done = 0;
  for (;;) {
    const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    task(i);
    ++done;
  }
  std::unique_lock<std::mutex> lock(mu_);
  finished_ += done;
  // Wait until every item completed AND every worker that entered this batch
  // has checked out — a worker that read the batch state but lost the race
  // for items must not still be around when the next batch resets the
  // cursor, or it could claim the new batch's items with the old task.
  batch_done_.wait(lock,
                   [this]() { return finished_ == count_ && inflight_ == 0; });
  task_ = nullptr;
}

void WorkerPool::WorkerMain() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(size_t)>* task = nullptr;
    size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [&]() {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      task = task_;
      count = count_;
      ++inflight_;
    }
    size_t done = 0;
    for (;;) {
      const size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*task)(i);
      ++done;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      finished_ += done;
      --inflight_;
      if (finished_ == count_ && inflight_ == 0) batch_done_.notify_one();
    }
  }
}

}  // namespace sensord
