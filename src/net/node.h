// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The abstract simulated node.
//
// A Node is one process in the sensor network: a leaf sensor, a leader at
// some tier of the virtual-grid hierarchy (Section 2, Figure 1), or a
// baseline's sink. Nodes learn their place in the hierarchy (parent,
// children, level) from the Simulator during setup, receive messages via
// HandleMessage, and — for leaf sensors — receive their own physical
// measurements via OnReading, which models the sensing hardware rather than
// a radio and therefore costs no messages.

#ifndef SENSORD_NET_NODE_H_
#define SENSORD_NET_NODE_H_

#include <cstdint>
#include <vector>

#include "net/message.h"
#include "util/math_utils.h"

namespace sensord {

class Simulator;

/// Physical placement of a node on the 2-d deployment plane (Section 2).
struct NodePosition {
  double x = 0.0;
  double y = 0.0;
};

/// Base class of all simulated processes.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once after the topology is wired, before any event fires.
  /// Default: no-op.
  virtual void OnStart() {}

  /// Called when a message addressed to this node is delivered.
  virtual void HandleMessage(const Message& msg) = 0;

  /// Called when this node's own sensor produces a measurement. Only leaf
  /// sensors receive readings. Default: no-op.
  virtual void OnReading(const Point& value) { (void)value; }

  // Crash-recovery hooks (DESIGN.md §10). The Simulator checkpoints nodes
  // on a virtual-time cadence and drives amnesia restarts through
  // ResetVolatileState -> RestoreState -> OnRestart. The byte payloads are
  // opaque to net/: detector nodes frame them with core/snapshot.h.

  /// Serializes this node's volatile state for a checkpoint. Returning an
  /// empty vector (the default) means "nothing to checkpoint" and the
  /// node's previous checkpoint, if any, is kept.
  virtual std::vector<uint8_t> SaveState() const { return {}; }

  /// Restores state previously returned by SaveState(). Returns false if
  /// the bytes are unusable (corrupt, wrong version, mismatched config);
  /// the node then continues from its reset (cold) state. Default: false.
  virtual bool RestoreState(const std::vector<uint8_t>& bytes) {
    (void)bytes;
    return false;
  }

  /// Erases all volatile state, as an amnesia crash would. Called before
  /// RestoreState on every amnesia restart. Default: no-op (a stateless
  /// node has nothing to lose).
  virtual void ResetVolatileState() {}

  /// Called after an amnesia restart completes, with whether a checkpoint
  /// was restored and the node's new transport incarnation. Detector nodes
  /// use this to announce their rejoin to the parent. Default: no-op.
  virtual void OnRestart(bool restored_from_checkpoint, uint32_t incarnation) {
    (void)restored_from_checkpoint;
    (void)incarnation;
  }

  NodeId id() const { return id_; }

  /// 1-based tier in the hierarchy; 1 = leaf level, increasing upward.
  int level() const { return level_; }

  /// Parent leader, or kNoNode for the hierarchy root.
  NodeId parent() const { return parent_; }

  bool is_root() const { return parent_ == kNoNode; }
  bool is_leaf() const { return level_ == 1; }

  const std::vector<NodeId>& children() const { return children_; }

  const NodePosition& position() const { return position_; }

  /// The simulator this node is registered with; valid after registration.
  Simulator* sim() const { return sim_; }

 private:
  friend class Simulator;

  Simulator* sim_ = nullptr;
  NodeId id_ = kNoNode;
  int level_ = 1;
  NodeId parent_ = kNoNode;
  std::vector<NodeId> children_;
  NodePosition position_;
};

}  // namespace sensord

#endif  // SENSORD_NET_NODE_H_
