#include "net/transport.h"

#include <iterator>
#include <utility>

#include "net/network.h"
#include "obs/metrics.h"

#include "util/check.h"

namespace sensord {
namespace {

struct TransportMetrics {
  obs::Counter* retries;         // retransmissions performed
  obs::Counter* timeouts;        // ack timers that expired
  obs::Counter* dup_suppressed;  // duplicate deliveries absorbed
  obs::Counter* abandoned;       // messages given up after the retry budget
  obs::Counter* acks;            // acks transmitted
  obs::Counter* stale_epoch;     // messages from a superseded incarnation
  obs::Counter* flushed;         // pending sends flushed on restart
};

const TransportMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const TransportMetrics m{
      registry.GetCounter("net.retries"),
      registry.GetCounter("net.timeouts"),
      registry.GetCounter("net.dup_suppressed"),
      registry.GetCounter("net.abandoned"),
      registry.GetCounter("net.acks"),
      registry.GetCounter("recovery.stale_epoch_dropped"),
      registry.GetCounter("recovery.flushed_pending")};
  return m;
}

}  // namespace

void ReliableTransport::SendReliable(Message msg) {
  SENSORD_DCHECK_NE(msg.kind, kMsgTransportAck);
  const uint64_t seq = ++next_seq_[{msg.from, msg.to}];
  msg.transport_seq = seq;
  msg.transport_epoch = incarnation(msg.from);
  const PendingKey key{msg.from, msg.to, seq};
  Pending& entry = pending_[key];
  entry.msg = msg;
  entry.attempts = 1;
  entry.wait = options_.ack_timeout;
  sim_->Transmit(entry.msg);
  sim_->ScheduleAfter(entry.wait, [this, key]() { OnTimeout(key); });
}

bool ReliableTransport::AcceptData(const Message& msg) {
  SENSORD_DCHECK_GT(msg.transport_seq, 0u);
  LinkDedup& dedup = delivered_[{msg.from, msg.to}];
  if (msg.transport_epoch < dedup.epoch) {
    // Straggler from a superseded incarnation (a retransmit that was in
    // flight across the sender's restart). Not acked: an ack would settle a
    // pending entry of the *new* incarnation holding the same seq.
    ++stale_epoch_dropped_;
    Metrics().stale_epoch->Increment();
    return false;
  }
  if (msg.transport_epoch > dedup.epoch) {
    // The sender restarted and its seqs start over: old dedup state would
    // silently eat them (the correctness hole epochs exist to close).
    dedup.epoch = msg.transport_epoch;
    dedup.seqs.clear();
  }
  const bool first = dedup.seqs.insert(msg.transport_seq).second;

  // Ack every copy: a re-ack is exactly what repairs a lost ack. The epoch
  // echo lets the sender ignore acks for a previous incarnation's sends.
  Message ack;
  ack.from = msg.to;
  ack.to = msg.from;
  ack.kind = kMsgTransportAck;
  ack.size_numbers = 1;  // the sequence number
  ack.transport_seq = msg.transport_seq;
  ack.transport_epoch = msg.transport_epoch;
  ++acks_sent_;
  Metrics().acks->Increment();
  sim_->Transmit(ack);

  if (!first) {
    ++dup_suppressed_;
    Metrics().dup_suppressed->Increment();
  }
  return first;
}

void ReliableTransport::HandleAck(const Message& ack) {
  // The ack travels receiver -> sender, so the pending entry is keyed by
  // the reversed endpoints.
  const auto it = pending_.find(PendingKey{ack.to, ack.from, ack.transport_seq});
  if (it == pending_.end()) return;
  // An ack echoing an older epoch settles nothing: it names a message the
  // sender's previous incarnation sent, not the same-seq message the current
  // incarnation may have in flight.
  if (it->second.msg.transport_epoch != ack.transport_epoch) return;
  pending_.erase(it);
}

void ReliableTransport::OnNodeRestart(NodeId node) {
  ++incarnation_[node];

  // Sender side: in-flight messages of the previous incarnation are gone —
  // the node no longer remembers sending them — and seq counters restart.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (std::get<0>(it->first) == node) {
      ++flushed_pending_;
      Metrics().flushed->Increment();
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = next_seq_.begin(); it != next_seq_.end();) {
    it = it->first.first == node ? next_seq_.erase(it) : std::next(it);
  }

  // Receiver side: the dedup memory is volatile state. Peers' in-flight
  // retransmits will be re-delivered to the restarted node — at-least-once
  // delivery across a crash that lost the original, which is the correct
  // direction to err; their acks still carry the peer's epoch and settle
  // normally.
  for (auto it = delivered_.begin(); it != delivered_.end();) {
    it = it->first.second == node ? delivered_.erase(it) : std::next(it);
  }
}

void ReliableTransport::OnTimeout(const PendingKey& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;  // acked in the meantime
  ++timeouts_;
  Metrics().timeouts->Increment();

  Pending& entry = it->second;
  const NodeId sender = std::get<0>(key);
  if (entry.attempts > options_.max_retries ||
      !sim_->faults().IsNodeUp(sender, sim_->Now())) {
    // Budget exhausted (or the sender itself died): give up. The message
    // stays lost — graceful degradation in core/ is what copes from here.
    ++abandoned_;
    Metrics().abandoned->Increment();
    pending_.erase(it);
    return;
  }

  ++entry.attempts;
  entry.wait *= options_.backoff_factor;
  ++retries_;
  Metrics().retries->Increment();
  sim_->Transmit(entry.msg);
  sim_->ScheduleAfter(entry.wait, [this, key]() { OnTimeout(key); });
}

}  // namespace sensord
