#include "net/transport.h"

#include <utility>

#include "net/network.h"
#include "obs/metrics.h"

#include "util/check.h"

namespace sensord {
namespace {

struct TransportMetrics {
  obs::Counter* retries;         // retransmissions performed
  obs::Counter* timeouts;        // ack timers that expired
  obs::Counter* dup_suppressed;  // duplicate deliveries absorbed
  obs::Counter* abandoned;       // messages given up after the retry budget
  obs::Counter* acks;            // acks transmitted
};

const TransportMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const TransportMetrics m{registry.GetCounter("net.retries"),
                                  registry.GetCounter("net.timeouts"),
                                  registry.GetCounter("net.dup_suppressed"),
                                  registry.GetCounter("net.abandoned"),
                                  registry.GetCounter("net.acks")};
  return m;
}

}  // namespace

void ReliableTransport::SendReliable(Message msg) {
  SENSORD_DCHECK_NE(msg.kind, kMsgTransportAck);
  const uint64_t seq = ++next_seq_[{msg.from, msg.to}];
  msg.transport_seq = seq;
  const PendingKey key{msg.from, msg.to, seq};
  Pending& entry = pending_[key];
  entry.msg = msg;
  entry.attempts = 1;
  entry.wait = options_.ack_timeout;
  sim_->Transmit(entry.msg);
  sim_->ScheduleAfter(entry.wait, [this, key]() { OnTimeout(key); });
}

bool ReliableTransport::AcceptData(const Message& msg) {
  SENSORD_DCHECK_GT(msg.transport_seq, 0u);
  const bool first =
      delivered_[{msg.from, msg.to}].insert(msg.transport_seq).second;

  // Ack every copy: a re-ack is exactly what repairs a lost ack.
  Message ack;
  ack.from = msg.to;
  ack.to = msg.from;
  ack.kind = kMsgTransportAck;
  ack.size_numbers = 1;  // the sequence number
  ack.transport_seq = msg.transport_seq;
  ++acks_sent_;
  Metrics().acks->Increment();
  sim_->Transmit(ack);

  if (!first) {
    ++dup_suppressed_;
    Metrics().dup_suppressed->Increment();
  }
  return first;
}

void ReliableTransport::HandleAck(const Message& ack) {
  // The ack travels receiver -> sender, so the pending entry is keyed by
  // the reversed endpoints.
  pending_.erase(PendingKey{ack.to, ack.from, ack.transport_seq});
}

void ReliableTransport::OnTimeout(const PendingKey& key) {
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;  // acked in the meantime
  ++timeouts_;
  Metrics().timeouts->Increment();

  Pending& entry = it->second;
  const NodeId sender = std::get<0>(key);
  if (entry.attempts > options_.max_retries ||
      !sim_->faults().IsNodeUp(sender, sim_->Now())) {
    // Budget exhausted (or the sender itself died): give up. The message
    // stays lost — graceful degradation in core/ is what copes from here.
    ++abandoned_;
    Metrics().abandoned->Increment();
    pending_.erase(it);
    return;
  }

  ++entry.attempts;
  entry.wait *= options_.backoff_factor;
  ++retries_;
  Metrics().retries->Increment();
  sim_->Transmit(entry.msg);
  sim_->ScheduleAfter(entry.wait, [this, key]() { OnTimeout(key); });
}

}  // namespace sensord
