// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The sensor network simulator.
//
// Owns the nodes, the event queue and the traffic statistics; wires a
// HierarchyLayout into parent/child links; delivers messages with a
// configurable per-hop latency; and drives periodic sensor readings ("each
// sensor generates one reading every second" in the paper's Figure 11
// setup). Deterministic given the node implementations' seeds.

#ifndef SENSORD_NET_NETWORK_H_
#define SENSORD_NET_NETWORK_H_

#include <functional>
#include <memory>
#include <vector>

#include "net/event_queue.h"
#include "net/hierarchy.h"
#include "net/message.h"
#include "net/node.h"
#include "net/stats_collector.h"
#include "util/rng.h"
#include "util/status.h"

namespace sensord {

/// Tuning knobs of the simulated radio and sensing layer.
struct SimulatorOptions {
  /// One-hop message latency in seconds. Zero is allowed (messages deliver
  /// "immediately", still via the event queue, preserving causal order).
  double hop_latency = 0.001;

  /// Probability that a transmitted message is lost in flight (lossy radio
  /// model). Lost messages are counted as sent by the StatsCollector — the
  /// energy was spent — but never delivered. Default: reliable links.
  double drop_probability = 0.0;

  /// Seed of the loss process (only used when drop_probability > 0).
  uint64_t loss_seed = 0x10552026;

  /// Radio energy model, in abstract units. Transmitting dominates
  /// receiving on real motes; payload size adds a per-number term.
  double tx_cost_per_message = 1.0;
  double tx_cost_per_number = 0.02;
  double rx_cost_per_message = 0.5;
  double rx_cost_per_number = 0.01;
};

/// A running sensor-network simulation.
class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {});

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node and returns its id. Nodes are owned by the simulator.
  NodeId AddNode(std::unique_ptr<Node> node);

  /// Instantiates one node per slot of `layout` using `factory(slot, spec)`
  /// and wires parent/child/level/position links. Slot i becomes NodeId
  /// base+i where base is the current node count. Calls OnStart() on every
  /// new node afterwards. Returns the ids, indexed by slot.
  std::vector<NodeId> Instantiate(
      const HierarchyLayout& layout,
      const std::function<std::unique_ptr<Node>(int, const HierarchyNodeSpec&)>&
          factory);

  /// Sends `msg` from `msg.from` to `msg.to`; counted by the stats
  /// collector and delivered after one hop latency — unless the lossy-radio
  /// model drops it. Pre: both endpoints registered.
  void Send(Message msg);

  /// Messages dropped by the loss model so far.
  uint64_t MessagesDropped() const { return dropped_; }

  /// Radio energy spent by `node` so far (tx for every send, rx for every
  /// delivered message), under the options' energy model.
  double EnergyConsumed(NodeId node) const { return energy_[node]; }

  /// Total radio energy spent across the network.
  double TotalEnergyConsumed() const;

  /// Injects a sensor reading into a (leaf) node immediately. Not a message:
  /// sensing is local and free, per the paper's cost model.
  void DeliverReading(NodeId node, const Point& value);

  /// Schedules readings for `node` every `period` seconds starting at
  /// `start`, drawing each value from `source()` — until simulation time
  /// exceeds the horizon passed to RunUntil.
  void SchedulePeriodicReadings(NodeId node, SimTime start, SimTime period,
                                std::function<Point()> source);

  /// Schedules an arbitrary callback.
  void ScheduleAt(SimTime t, std::function<void()> fn);
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Runs the simulation until `until` (inclusive).
  void RunUntil(SimTime until);

  /// Runs until the event queue drains.
  void RunAll();

  SimTime Now() const { return queue_.Now(); }

  Node& node(NodeId id) { return *nodes_[id]; }
  const Node& node(NodeId id) const { return *nodes_[id]; }
  size_t NumNodes() const { return nodes_.size(); }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

 private:
  struct PeriodicSource {
    NodeId node;
    SimTime period;
    std::function<Point()> generate;
  };

  void PeriodicTick(size_t slot, SimTime t);

  SimulatorOptions options_;
  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PeriodicSource> periodic_;
  StatsCollector stats_;
  Rng loss_rng_;
  uint64_t dropped_ = 0;
  std::vector<double> energy_;  // per NodeId
  SimTime horizon_ = 0.0;       // periodic readings stop beyond this
};

}  // namespace sensord

#endif  // SENSORD_NET_NETWORK_H_
