// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The sensor network simulator.
//
// Owns the nodes, the event queue and the traffic statistics; wires a
// HierarchyLayout into parent/child links; delivers messages with a
// configurable per-hop latency; and drives periodic sensor readings ("each
// sensor generates one reading every second" in the paper's Figure 11
// setup). Deterministic given the node implementations' seeds.
//
// The radio pipeline of one application-level Send is:
//
//   Send -> [ReliableTransport: stamp seq, arm retransmit timer]   (optional)
//        -> Transmit: stats + tx energy, legacy loss model, FaultSchedule
//                     (forced drops, crashes, partitions, per-link
//                     drop/duplicate/jitter)
//        -> Deliver (per surviving copy, after hop latency + jitter):
//                     crashed-receiver check, rx energy,
//                     [transport: ack + dedup], Node::HandleMessage.
//
// Faults are configured on faults(); reliable delivery on
// SimulatorOptions::transport. Both are driven by the virtual-time event
// queue and seeded Rngs, so every run replays byte-identically.

#ifndef SENSORD_NET_NETWORK_H_
#define SENSORD_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/event_queue.h"
#include "net/fault_schedule.h"
#include "net/hierarchy.h"
#include "net/message.h"
#include "net/node.h"
#include "net/stats_collector.h"
#include "net/transport.h"
#include "util/rng.h"
#include "util/staging.h"
#include "util/status.h"

namespace sensord {

class WorkerPool;

/// Crash-recovery knobs (DESIGN.md §10).
struct RecoveryConfig {
  /// Virtual-time period, in seconds, between checkpoints of every node's
  /// volatile state (Node::SaveState) into the simulator's per-node flash.
  /// An amnesia restart restores the latest checkpoint. 0 (the default)
  /// disables checkpointing: amnesia restarts are cold.
  double checkpoint_interval = 0.0;
};

/// Tuning knobs of the simulated radio and sensing layer.
struct SimulatorOptions {
  /// One-hop message latency in seconds. Zero is allowed (messages deliver
  /// "immediately", still via the event queue, preserving causal order).
  double hop_latency = 0.001;

  /// Probability that a transmitted message is lost in flight (lossy radio
  /// model). Lost messages are counted as sent by the StatsCollector — the
  /// energy was spent — but never delivered. Default: reliable links.
  /// Richer per-link faults live on Simulator::faults().
  double drop_probability = 0.0;

  /// Seed of the loss process (only used when drop_probability > 0).
  uint64_t loss_seed = 0x10552026;

  /// Seed of the FaultSchedule's probabilistic decisions.
  uint64_t fault_seed = 0xFA017B0D;

  /// Ack/retransmit protocol (see net/transport.h). Off by default.
  TransportOptions transport;

  /// Checkpoint/restore behaviour for amnesia crashes. Off by default.
  RecoveryConfig recovery;

  /// Worker threads of the deterministic parallel engine (DESIGN.md §12).
  /// 1 runs the classic serial event loop. N > 1 shards each virtual tick's
  /// independent node handlers (message deliveries, periodic readings; one
  /// event per node per batch) across N threads, staging every ordered side
  /// effect and replaying it in event order at the tick barrier — the run's
  /// outputs (outlier history, trace/flight JSONL, metrics exports) are
  /// byte-identical to the 1-thread run. 0 (the default) reads the
  /// SENSORD_THREADS environment variable, falling back to 1.
  int threads = 0;

  /// Radio energy model, in abstract units. Transmitting dominates
  /// receiving on real motes; payload size adds a per-number term.
  double tx_cost_per_message = 1.0;
  double tx_cost_per_number = 0.02;
  double rx_cost_per_message = 0.5;
  double rx_cost_per_number = 0.01;
};

/// A running sensor-network simulation.
class Simulator {
 public:
  /// Also installs this simulator's event queue as the process-wide virtual
  /// clock for obs::TraceSpan stamps (last constructed simulator wins).
  explicit Simulator(SimulatorOptions options = {});

  /// Uninstalls the trace clock if this simulator still owns it.
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers a node and returns its id. Nodes are owned by the simulator.
  NodeId AddNode(std::unique_ptr<Node> node);

  /// Instantiates one node per slot of `layout` using `factory(slot, spec)`
  /// and wires parent/child/level/position links. Slot i becomes NodeId
  /// base+i where base is the current node count. Calls OnStart() on every
  /// new node afterwards. Returns the ids, indexed by slot.
  std::vector<NodeId> Instantiate(
      const HierarchyLayout& layout,
      const std::function<std::unique_ptr<Node>(int, const HierarchyNodeSpec&)>&
          factory);

  /// Sends `msg` from `msg.from` to `msg.to`. With the reliable transport
  /// enabled the message is acked, retransmitted on timeout, and delivered
  /// to the receiving node exactly once; otherwise it is a plain datagram
  /// subject to the loss model and fault schedule. A crashed sender's send
  /// is silently suppressed (a dead radio transmits nothing). Pre: both
  /// endpoints registered.
  void Send(Message msg);

  /// Messages dropped so far (loss model, fault schedule, or crashed
  /// receivers). Delegates to stats(): one source of truth.
  uint64_t MessagesDropped() const { return stats_.MessagesDropped(); }

  /// Radio energy spent by `node` so far (tx for every transmission
  /// including retries and acks, rx for every delivered copy), under the
  /// options' energy model.
  double EnergyConsumed(NodeId node) const { return energy_[node]; }

  /// Total radio energy spent across the network.
  double TotalEnergyConsumed() const;

  /// Injects a sensor reading into a (leaf) node immediately. Not a message:
  /// sensing is local and free, per the paper's cost model. No-op while the
  /// node is crashed (a dead mote senses nothing).
  void DeliverReading(NodeId node, const Point& value);

  /// Schedules readings for `node` every `period` seconds starting at
  /// `start`, drawing each value from `source()` — until simulation time
  /// exceeds the horizon passed to RunUntil. Ticks that fall inside a crash
  /// interval of the node are skipped (the schedule itself survives).
  void SchedulePeriodicReadings(NodeId node, SimTime start, SimTime period,
                                std::function<Point()> source);

  /// Schedules an arbitrary callback.
  void ScheduleAt(SimTime t, std::function<void()> fn);
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Runs the simulation until `until` (inclusive).
  void RunUntil(SimTime until);

  /// Runs until the event queue drains.
  void RunAll();

  /// The resolved worker-thread count (>= 1) this simulator runs with.
  int threads() const { return threads_; }

  SimTime Now() const { return queue_.Now(); }

  /// Pending events (for "the queue is not stuck" assertions).
  size_t PendingEvents() const { return queue_.Size(); }

  Node& node(NodeId id) { return *nodes_[id]; }
  const Node& node(NodeId id) const { return *nodes_[id]; }
  size_t NumNodes() const { return nodes_.size(); }

  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  /// The fault schedule consulted on every transmission and reading.
  FaultSchedule& faults() { return faults_; }
  const FaultSchedule& faults() const { return faults_; }

  /// The reliable transport (meaningful when options.transport.reliable).
  ReliableTransport& transport() { return *transport_; }
  const ReliableTransport& transport() const { return *transport_; }

  /// Checkpoints every live node's volatile state immediately, regardless
  /// of the configured cadence. Test hook; the periodic CheckpointTick is
  /// the production path.
  void CheckpointNow();

  /// True if `node` has a checkpoint in flash.
  bool HasCheckpoint(NodeId node) const { return flash_.count(node) > 0; }

  /// The node's transport incarnation epoch (0 = never restarted).
  uint32_t Incarnation(NodeId node) const {
    return transport_->incarnation(node);
  }

  /// Test hook: called for every physical message that reaches a live
  /// receiver (including acks and duplicate copies, before dedup), in
  /// delivery order. Lets determinism tests record the exact delivery
  /// sequence without touching node code.
  void SetDeliveryTapForTest(std::function<void(const Message&)> tap) {
    delivery_tap_ = std::move(tap);
  }

 private:
  friend class ReliableTransport;

  struct PeriodicSource {
    NodeId node;
    SimTime period;
    std::function<Point()> generate;
  };

  // One batched event of the parallel engine: the side effects its prep
  // phase staged (pre), the effects its handler staged from a worker thread
  // (handler_ops), the effects that follow the handler in program order
  // (post — the periodic tick's rescheduling), and the handler itself
  // (null when prep suppressed it: crashed receiver, transport duplicate,
  // infrastructure ack, horizon-expired tick).
  struct BatchItem {
    OpLog pre;
    OpLog handler_ops;
    OpLog post;
    std::function<void()> handler;
  };

  void PeriodicTick(size_t slot, SimTime t);

  /// One physical transmission attempt: accounting, loss model, fault
  /// schedule, then delivery scheduling for each surviving copy. Staged
  /// when a side-effect log is current (ack echoes during batch prep).
  void Transmit(const Message& msg);

  /// The unconditional body of Transmit.
  void TransmitNow(const Message& msg);

  /// The unconditional body of Send.
  void SendNow(Message msg);

  /// Arrival of one physical copy at the receiver.
  void Deliver(Message msg);

  /// The parallel drain loop: batches same-tick deliveries/readings to
  /// distinct nodes, preps them serially, runs their handlers on the worker
  /// pool, and replays each item's staged effects in event order. Equals
  /// the serial loop's behaviour bit for bit. `until` is ignored when
  /// `bounded` is false (RunAll). Returns the number of events fired.
  uint64_t RunStaged(SimTime until, bool bounded);

  /// Periodic checkpoint of every live node (recovery.checkpoint_interval).
  void CheckpointTick(SimTime t);

  /// Amnesia restart of `node`: transport epoch bump, volatile-state reset,
  /// checkpoint restore (if flash holds one), then Node::OnRestart. No-op
  /// if another crash interval still covers the restart instant.
  void RestartNode(NodeId node);

  SimulatorOptions options_;
  int threads_ = 1;
  EventQueue queue_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PeriodicSource> periodic_;
  StatsCollector stats_;
  FaultSchedule faults_;
  std::unique_ptr<ReliableTransport> transport_;
  Rng loss_rng_;
  std::vector<double> energy_;  // per NodeId
  SimTime horizon_ = 0.0;       // periodic readings stop beyond this
  std::function<void(const Message&)> delivery_tap_;
  // Simulated per-node flash: the latest checkpoint of each node's volatile
  // state (framed by the node, opaque here). Survives amnesia crashes.
  std::map<NodeId, std::vector<uint8_t>> flash_;

  // --- Parallel engine state (threads_ > 1 only) ---
  std::unique_ptr<WorkerPool> pool_;
  // The batch item whose event is currently in its prep phase; Deliver /
  // DeliverReading park the node handler here instead of calling it, and
  // PeriodicTick stages its reschedule into item->post. Null outside prep
  // (the classic serial paths call handlers directly).
  BatchItem* current_item_ = nullptr;
  std::vector<BatchItem> batch_items_;
  std::vector<std::function<void()>> batch_fns_;
  // node_mark_[n] == batch_epoch_ iff node n already has an event in the
  // batch being collected (two events to one node must stay ordered).
  std::vector<uint64_t> node_mark_;
  uint64_t batch_epoch_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_NETWORK_H_
