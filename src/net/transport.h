// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Reliable transport over the simulator's lossy radio: positive acks,
// timeout-driven retransmission with exponential backoff and a bounded
// retry budget, and idempotent (dedup-by-sequence-number) delivery.
//
// The paper assumes reliable links; its loss experiments (and ours, see
// bench/ablation_packet_loss.cc) show what silently breaks without them —
// D3 escalations vanish and MGDD replicas go stale. This layer restores
// at-least-once transmission and exactly-once *delivery to the node* under
// any FaultSchedule, at a measurable message cost: every retransmission and
// every ack is a real send, charged to the radio energy model and counted
// by the StatsCollector, so the accuracy-vs-overhead trade-off stays
// honest.
//
// The transport is infrastructure, not a node: it lives inside the
// Simulator (enabled via SimulatorOptions::transport.reliable), stamps
// outgoing messages with per-link sequence numbers, acks and deduplicates
// on the receive path before Node::HandleMessage runs, and drives its
// timers off the virtual-time EventQueue — everything stays deterministic.
// Acks themselves are unreliable datagrams (never acked, never
// retransmitted); a lost ack costs one duplicate data transmission, which
// the receiver suppresses and re-acks.
//
// Amnesia restarts add an *incarnation epoch* per node (DESIGN.md §10). A
// node that loses its volatile state restarts its per-link sequence
// counters from 1; without epochs, receivers whose dedup sets survived
// would silently eat the reused numbers — and the restarted receiver's own
// empty dedup sets would re-deliver late retransmits of messages it already
// consumed. OnNodeRestart() therefore bumps the node's epoch, flushes its
// sender state, and wipes its receiver dedup; every reliable message (and
// its ack echo) carries the sender's epoch, receivers track the highest
// epoch seen per link and drop — without acking — anything older.

#ifndef SENSORD_NET_TRANSPORT_H_
#define SENSORD_NET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>

#include "net/message.h"

namespace sensord {

class Simulator;

/// Knobs of the ack/retransmit protocol.
struct TransportOptions {
  /// Route Simulator::Send through the reliable transport. Off by default:
  /// the paper's algorithms tolerate loss by design, and unreliable
  /// datagrams are the baseline the ablations compare against.
  bool reliable = false;

  /// Seconds to wait for an ack before the first retransmission.
  double ack_timeout = 0.05;

  /// Each subsequent wait is the previous one times this factor.
  double backoff_factor = 2.0;

  /// Retransmissions attempted before the message is abandoned (so a
  /// message is transmitted at most 1 + max_retries times).
  int max_retries = 5;
};

/// Sender and receiver state of the reliable transport of one Simulator.
/// Owned by the Simulator; tests reach it via Simulator::transport().
class ReliableTransport {
 public:
  ReliableTransport(Simulator* sim, const TransportOptions& options)
      : sim_(sim), options_(options) {}

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Stamps `msg` with the next sequence number of its (from, to) link,
  /// transmits it, and arms the retransmission timer.
  void SendReliable(Message msg);

  /// Receive path of a data message carrying a sequence number: always
  /// (re-)acks, and returns true iff this is the first delivery — callers
  /// hand the message to the node only then.
  bool AcceptData(const Message& msg);

  /// Receive path of a kMsgTransportAck: settles the pending entry.
  void HandleAck(const Message& ack);

  /// Amnesia restart of `node`: bumps its incarnation epoch, abandons its
  /// in-flight sends, resets its per-link sequence counters, and wipes its
  /// receiver-side dedup state (the restarted node no longer remembers what
  /// it delivered — the epoch on subsequent acks is what keeps the peers'
  /// retransmits from being mis-deduped). Called by Simulator::RestartNode.
  void OnNodeRestart(NodeId node);

  /// The node's current incarnation epoch (0 = never restarted).
  uint32_t incarnation(NodeId node) const {
    const auto it = incarnation_.find(node);
    return it == incarnation_.end() ? 0 : it->second;
  }

  /// In-flight (sent, unacked, not yet abandoned) messages.
  size_t PendingCount() const { return pending_.size(); }

  /// Per-instance tallies (the obs counters net.retries / net.timeouts /
  /// net.dup_suppressed are process-cumulative mirrors of these).
  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t dup_suppressed() const { return dup_suppressed_; }
  uint64_t abandoned() const { return abandoned_; }
  uint64_t acks_sent() const { return acks_sent_; }
  uint64_t stale_epoch_dropped() const { return stale_epoch_dropped_; }
  uint64_t flushed_pending() const { return flushed_pending_; }

 private:
  // (sender, receiver, sequence number) of an unacked message.
  using PendingKey = std::tuple<NodeId, NodeId, uint64_t>;

  struct Pending {
    Message msg;
    int attempts = 1;      // transmissions so far
    double wait = 0.0;     // the timeout armed after the latest attempt
  };

  void OnTimeout(const PendingKey& key);

  // Receiver-side dedup of one directed link: sequence numbers already
  // delivered within the sender's current incarnation epoch. A higher epoch
  // on an incoming message supersedes (and clears) the set — the restarted
  // sender restarts its seqs from 1; a lower epoch is a stale straggler.
  struct LinkDedup {
    uint32_t epoch = 0;
    std::set<uint64_t> seqs;
  };

  Simulator* sim_;
  TransportOptions options_;
  std::map<std::pair<NodeId, NodeId>, uint64_t> next_seq_;
  std::map<PendingKey, Pending> pending_;
  // Sequence numbers are per-link monotone within an epoch and the retry
  // budget bounds how late a straggler can arrive, so the sets stay small
  // relative to the traffic; simulation runs are finite and this is exact.
  std::map<std::pair<NodeId, NodeId>, LinkDedup> delivered_;
  // Incarnation epochs of restarted nodes; absent = 0 = never restarted.
  std::map<NodeId, uint32_t> incarnation_;

  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t dup_suppressed_ = 0;
  uint64_t abandoned_ = 0;
  uint64_t acks_sent_ = 0;
  uint64_t stale_epoch_dropped_ = 0;
  uint64_t flushed_pending_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_TRANSPORT_H_
