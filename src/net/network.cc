#include "net/network.h"

#include <limits>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace sensord {
namespace {

double SimulatorVirtualNow(void* ctx) {
  return static_cast<Simulator*>(ctx)->Now();
}

}  // namespace

Simulator::Simulator(SimulatorOptions options)
    : options_(options),
      faults_(options.fault_seed),
      transport_(new ReliableTransport(this, options.transport)),
      loss_rng_(options.loss_seed) {
  obs::SetTraceVirtualClock(&SimulatorVirtualNow, this);
}

Simulator::~Simulator() { obs::ClearTraceVirtualClock(this); }

NodeId Simulator::AddNode(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->sim_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  energy_.push_back(0.0);
  return id;
}

double Simulator::TotalEnergyConsumed() const {
  double total = 0.0;
  for (double e : energy_) total += e;
  return total;
}

std::vector<NodeId> Simulator::Instantiate(
    const HierarchyLayout& layout,
    const std::function<std::unique_ptr<Node>(int, const HierarchyNodeSpec&)>&
        factory) {
  const NodeId base = static_cast<NodeId>(nodes_.size());
  std::vector<NodeId> ids;
  ids.reserve(layout.nodes.size());
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    const HierarchyNodeSpec& spec = layout.nodes[slot];
    std::unique_ptr<Node> node = factory(static_cast<int>(slot), spec);
    SENSORD_CHECK(node != nullptr);
    const NodeId id = AddNode(std::move(node));
    ids.push_back(id);
  }
  // Second pass: wire links now that every slot has an id.
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    const HierarchyNodeSpec& spec = layout.nodes[slot];
    Node& n = *nodes_[base + slot];
    n.level_ = spec.level;
    n.position_ = spec.position;
    n.parent_ = spec.parent_slot < 0
                    ? kNoNode
                    : base + static_cast<NodeId>(spec.parent_slot);
    n.children_.clear();
    for (int child : spec.child_slots) {
      n.children_.push_back(base + static_cast<NodeId>(child));
    }
  }
  for (NodeId id : ids) nodes_[id]->OnStart();
  return ids;
}

void Simulator::Send(Message msg) {
  SENSORD_CHECK_LT(msg.from, nodes_.size());
  SENSORD_CHECK_LT(msg.to, nodes_.size());
  if (!faults_.IsNodeUp(msg.from, Now())) return;  // dead radio: no send
  if (options_.transport.reliable && msg.kind != kMsgTransportAck) {
    transport_->SendReliable(std::move(msg));
    return;
  }
  Transmit(msg);
}

void Simulator::Transmit(const Message& msg) {
  stats_.RecordSend(msg);
  energy_[msg.from] += options_.tx_cost_per_message +
                       options_.tx_cost_per_number *
                           static_cast<double>(msg.size_numbers);
  // The legacy uniform loss model runs first and consumes loss_rng_ exactly
  // as it always has, so configurations that never touch the fault schedule
  // or transport replay the pre-transport message trace bit for bit.
  if (options_.drop_probability > 0.0 &&
      loss_rng_.Bernoulli(options_.drop_probability)) {
    stats_.RecordDrop();
    return;
  }
  const TransmissionPlan plan = faults_.DecideTransmission(msg.from, msg.to,
                                                          Now());
  if (plan.drop) {
    stats_.RecordDrop();
    return;
  }
  for (double extra : plan.extra_delays) {
    queue_.ScheduleAfter(options_.hop_latency + extra,
                         [this, m = msg]() mutable { Deliver(std::move(m)); });
  }
}

void Simulator::Deliver(const Message& msg) {
  if (!faults_.IsNodeUp(msg.to, Now())) {
    // The copy arrived at a crashed receiver: lost like any other drop.
    stats_.RecordDrop();
    return;
  }
  energy_[msg.to] += options_.rx_cost_per_message +
                     options_.rx_cost_per_number *
                         static_cast<double>(msg.size_numbers);
  if (delivery_tap_) delivery_tap_(msg);
  if (msg.kind == kMsgTransportAck) {
    transport_->HandleAck(msg);  // infrastructure; never reaches the node
    return;
  }
  if (msg.transport_seq != 0 && !transport_->AcceptData(msg)) {
    return;  // duplicate, suppressed (and re-acked) by the transport
  }
  nodes_[msg.to]->HandleMessage(msg);
}

void Simulator::DeliverReading(NodeId node, const Point& value) {
  SENSORD_DCHECK_LT(node, nodes_.size());
  if (!faults_.IsNodeUp(node, Now())) return;
  nodes_[node]->OnReading(value);
}

void Simulator::SchedulePeriodicReadings(NodeId node, SimTime start,
                                         SimTime period,
                                         std::function<Point()> source) {
  SENSORD_CHECK_LT(node, nodes_.size());
  SENSORD_CHECK_GT(period, 0.0);
  const size_t slot = periodic_.size();
  periodic_.push_back(PeriodicSource{node, period, std::move(source)});
  queue_.ScheduleAt(start, [this, slot, start]() { PeriodicTick(slot, start); });
}

void Simulator::PeriodicTick(size_t slot, SimTime t) {
  if (t > horizon_) return;
  PeriodicSource& src = periodic_[slot];
  // The generator always advances (keeps the data stream identical across
  // fault schedules); DeliverReading discards the value during a crash.
  DeliverReading(src.node, src.generate());
  const SimTime next = t + src.period;
  queue_.ScheduleAt(next, [this, slot, next]() { PeriodicTick(slot, next); });
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  queue_.ScheduleAt(t, std::move(fn));
}

void Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  queue_.ScheduleAfter(delay, std::move(fn));
}

void Simulator::RunUntil(SimTime until) {
  horizon_ = until;
  queue_.RunUntil(until);
}

void Simulator::RunAll() {
  horizon_ = std::numeric_limits<SimTime>::max();
  queue_.RunAll();
}

}  // namespace sensord
