#include "net/network.h"

#include <cstdlib>
#include <limits>
#include <utility>

#include "net/parallel.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sensord {
namespace {

double SimulatorVirtualNow(void* ctx) {
  return static_cast<Simulator*>(ctx)->Now();
}

// The worker-thread count: an explicit option wins; otherwise the
// SENSORD_THREADS environment variable (the knob scripts/bench.sh and the
// CI thread-parity gate use); otherwise the classic serial loop.
int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SENSORD_THREADS");
      env != nullptr && *env != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 256) return static_cast<int>(parsed);
  }
  return 1;
}

struct RecoveryMetrics {
  obs::Counter* checkpoints;       // node checkpoints written to flash
  obs::Counter* restarts;          // amnesia restarts executed
  obs::Counter* restored;          // restarts that restored a checkpoint
  obs::Counter* cold_restarts;     // restarts with no usable checkpoint
  obs::Histogram* checkpoint_bytes;
};

const RecoveryMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const RecoveryMetrics m{
      registry.GetCounter("recovery.checkpoints"),
      registry.GetCounter("recovery.restarts"),
      registry.GetCounter("recovery.restored_from_checkpoint"),
      registry.GetCounter("recovery.cold_restarts"),
      registry.GetHistogram("recovery.checkpoint_bytes",
                            obs::SizeBoundaries())};
  return m;
}

}  // namespace

Simulator::Simulator(SimulatorOptions options)
    : options_(options),
      threads_(ResolveThreads(options.threads)),
      faults_(options.fault_seed),
      transport_(new ReliableTransport(this, options.transport)),
      loss_rng_(options.loss_seed) {
  if (threads_ > 1) pool_.reset(new WorkerPool(threads_));
  obs::SetTraceVirtualClock(&SimulatorVirtualNow, this);
  // Amnesia crashes need a restart event at the interval's end; omission
  // crashes recover implicitly (IsNodeUp flips) and keep their memory.
  faults_.SetCrashListener(
      [this](NodeId node, SimTime from, SimTime until, CrashKind kind) {
        // The node's black box dumps at crash onset — the moment the fault
        // takes hold is exactly when its recent history matters. Dump() is a
        // no-op when the recorder is disabled, so goldens are unaffected.
        queue_.ScheduleAt(from, [this, node]() {
          obs::FlightRecorder::Dump(node, "crash", Now());
        });
        if (kind != CrashKind::kAmnesia) return;
        if (until == FaultSchedule::kForever) return;  // never comes back
        // Scheduled as soon as the crash is configured, so the restart
        // (FIFO at equal timestamps) runs before deliveries and readings
        // scheduled later for the same instant.
        queue_.ScheduleAt(until, [this, node]() { RestartNode(node); });
      });
  if (options_.recovery.checkpoint_interval > 0.0) {
    const SimTime interval = options_.recovery.checkpoint_interval;
    queue_.ScheduleAt(interval, [this, interval]() { CheckpointTick(interval); });
  }
}

Simulator::~Simulator() { obs::ClearTraceVirtualClock(this); }

NodeId Simulator::AddNode(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->sim_ = this;
  node->id_ = id;
  nodes_.push_back(std::move(node));
  energy_.push_back(0.0);
  return id;
}

double Simulator::TotalEnergyConsumed() const {
  double total = 0.0;
  for (double e : energy_) total += e;
  return total;
}

std::vector<NodeId> Simulator::Instantiate(
    const HierarchyLayout& layout,
    const std::function<std::unique_ptr<Node>(int, const HierarchyNodeSpec&)>&
        factory) {
  const NodeId base = static_cast<NodeId>(nodes_.size());
  std::vector<NodeId> ids;
  ids.reserve(layout.nodes.size());
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    const HierarchyNodeSpec& spec = layout.nodes[slot];
    std::unique_ptr<Node> node = factory(static_cast<int>(slot), spec);
    SENSORD_CHECK(node != nullptr);
    const NodeId id = AddNode(std::move(node));
    ids.push_back(id);
  }
  // Second pass: wire links now that every slot has an id.
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    const HierarchyNodeSpec& spec = layout.nodes[slot];
    Node& n = *nodes_[base + slot];
    n.level_ = spec.level;
    n.position_ = spec.position;
    n.parent_ = spec.parent_slot < 0
                    ? kNoNode
                    : base + static_cast<NodeId>(spec.parent_slot);
    n.children_.clear();
    for (int child : spec.child_slots) {
      n.children_.push_back(base + static_cast<NodeId>(child));
    }
  }
  for (NodeId id : ids) nodes_[id]->OnStart();
  return ids;
}

void Simulator::Send(Message msg) {
  SENSORD_CHECK_LT(msg.from, nodes_.size());
  SENSORD_CHECK_LT(msg.to, nodes_.size());
  // A send from a handler running on a worker thread is staged and executed
  // at the tick barrier in event order, so the transport's sequence stamps,
  // the loss process and the delivery schedule all consume their state
  // exactly as the serial loop would.
  if (OpLog* log = OpLog::Current()) {
    log->Push([this, m = std::move(msg)]() mutable { SendNow(std::move(m)); });
    return;
  }
  SendNow(std::move(msg));
}

void Simulator::SendNow(Message msg) {
  if (!faults_.IsNodeUp(msg.from, Now())) return;  // dead radio: no send
  if (options_.transport.reliable && msg.kind != kMsgTransportAck) {
    transport_->SendReliable(std::move(msg));
    return;
  }
  TransmitNow(msg);
}

void Simulator::Transmit(const Message& msg) {
  // Reached with a log current only from batch prep (the transport's ack
  // echo while a delivery is being prepped); the echo joins the item's
  // ordered effects.
  if (OpLog* log = OpLog::Current()) {
    log->Push([this, m = msg]() { TransmitNow(m); });
    return;
  }
  TransmitNow(msg);
}

void Simulator::TransmitNow(const Message& msg) {
  stats_.RecordSend(msg);
  obs::FlightRecorder::Record(msg.from, obs::FlightEventKind::kSend, Now(),
                              msg.to, msg.kind);
  energy_[msg.from] += options_.tx_cost_per_message +
                       options_.tx_cost_per_number *
                           static_cast<double>(msg.size_numbers);
  // The legacy uniform loss model runs first and consumes loss_rng_ exactly
  // as it always has, so configurations that never touch the fault schedule
  // or transport replay the pre-transport message trace bit for bit.
  if (options_.drop_probability > 0.0 &&
      loss_rng_.Bernoulli(options_.drop_probability)) {
    stats_.RecordDrop();
    obs::FlightRecorder::Record(msg.from, obs::FlightEventKind::kDrop, Now(),
                                msg.to, msg.kind);
    return;
  }
  const TransmissionPlan plan = faults_.DecideTransmission(msg.from, msg.to,
                                                          Now());
  if (plan.drop) {
    stats_.RecordDrop();
    obs::FlightRecorder::Record(msg.from, obs::FlightEventKind::kDrop, Now(),
                                msg.to, msg.kind);
    return;
  }
  for (double extra : plan.extra_delays) {
    const SimTime at = queue_.Now() + options_.hop_latency + extra;
    queue_.ScheduleAtTagged(at, EventQueue::EventKind::kDeliver, msg.to,
                            [this, m = msg]() mutable { Deliver(std::move(m)); });
  }
}

void Simulator::Deliver(Message msg) {
  if (!faults_.IsNodeUp(msg.to, Now())) {
    // The copy arrived at a crashed receiver: lost like any other drop.
    stats_.RecordDrop();
    obs::FlightRecorder::Record(msg.to, obs::FlightEventKind::kDrop, Now(),
                                msg.from, msg.kind);
    return;
  }
  // Energy is a floating-point accumulation, so its order is observable;
  // staged during batch prep to land between the previous item's handler
  // effects and this one's, exactly as the serial loop interleaves them.
  const double rx_cost = options_.rx_cost_per_message +
                         options_.rx_cost_per_number *
                             static_cast<double>(msg.size_numbers);
  RunOrStage([this, to = msg.to, rx_cost]() { energy_[to] += rx_cost; });
  if (delivery_tap_) delivery_tap_(msg);
  if (msg.kind == kMsgTransportAck) {
    obs::FlightRecorder::Record(msg.to, obs::FlightEventKind::kAck, Now(),
                                msg.from,
                                static_cast<int64_t>(msg.transport_seq));
    transport_->HandleAck(msg);  // infrastructure; never reaches the node
    return;
  }
  if (msg.transport_seq != 0 && !transport_->AcceptData(msg)) {
    return;  // duplicate, suppressed (and re-acked) by the transport
  }
  obs::FlightRecorder::Record(msg.to, obs::FlightEventKind::kDeliver, Now(),
                              msg.from, msg.kind);
  if (current_item_ != nullptr) {
    // Batch prep: park the handler for the worker pool instead of running
    // it; the message is owned by the closure.
    current_item_->handler = [this, m = std::move(msg)]() {
      nodes_[m.to]->HandleMessage(m);
    };
    return;
  }
  nodes_[msg.to]->HandleMessage(msg);
}

void Simulator::DeliverReading(NodeId node, const Point& value) {
  SENSORD_DCHECK_LT(node, nodes_.size());
  if (!faults_.IsNodeUp(node, Now())) return;
  if (faults_.HasSensorFaults(node)) {
    // Corrupt at the source: the node's ingest firewall sees exactly what a
    // broken transducer would emit. Clean nodes never pay for the copy.
    Point corrupted = value;
    faults_.PerturbReading(node, Now(), &corrupted);
    obs::FlightRecorder::Record(node, obs::FlightEventKind::kReading, Now(),
                                0, 0,
                                corrupted.empty() ? 0.0 : corrupted[0]);
    // Faulty-sensor readings never join a parallel batch (PerturbReading
    // consumes the fault schedule's rng, whose draw order must match the
    // serial loop), but the capture keeps this path uniform.
    if (current_item_ != nullptr) {
      current_item_->handler = [this, node, v = std::move(corrupted)]() {
        nodes_[node]->OnReading(v);
      };
      return;
    }
    nodes_[node]->OnReading(corrupted);
    return;
  }
  obs::FlightRecorder::Record(node, obs::FlightEventKind::kReading, Now(), 0,
                              0, value.empty() ? 0.0 : value[0]);
  if (current_item_ != nullptr) {
    current_item_->handler = [this, node, v = value]() {
      nodes_[node]->OnReading(v);
    };
    return;
  }
  nodes_[node]->OnReading(value);
}

void Simulator::CheckpointNow() {
  // NodeId order: deterministic and identical to the periodic path.
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (!faults_.IsNodeUp(id, Now())) continue;  // a dead mote writes nothing
    std::vector<uint8_t> bytes = nodes_[id]->SaveState();
    if (bytes.empty()) continue;  // stateless node; keep any prior snapshot
    Metrics().checkpoints->Increment();
    Metrics().checkpoint_bytes->Record(static_cast<double>(bytes.size()));
    obs::FlightRecorder::Record(id, obs::FlightEventKind::kCheckpoint, Now(),
                                0, 0, static_cast<double>(bytes.size()));
    flash_[id] = std::move(bytes);
  }
}

void Simulator::CheckpointTick(SimTime t) {
  if (t > horizon_) return;  // same guard as PeriodicTick: chain ends
  CheckpointNow();
  const SimTime next = t + options_.recovery.checkpoint_interval;
  queue_.ScheduleAt(next, [this, next]() { CheckpointTick(next); });
}

void Simulator::RestartNode(NodeId node) {
  SENSORD_DCHECK_LT(node, nodes_.size());
  // An overlapping crash interval may still cover this instant; the node
  // only boots when every interval has released it (a later restart event
  // fires at that interval's end).
  if (!faults_.IsNodeUp(node, Now())) return;
  Metrics().restarts->Increment();
  transport_->OnNodeRestart(node);
  Node& n = *nodes_[node];
  n.ResetVolatileState();
  bool restored = false;
  const auto it = flash_.find(node);
  if (it != flash_.end()) restored = n.RestoreState(it->second);
  if (restored) {
    Metrics().restored->Increment();
  } else {
    Metrics().cold_restarts->Increment();
  }
  obs::FlightRecorder::Record(node, obs::FlightEventKind::kRestart, Now(),
                              restored ? 1 : 0,
                              transport_->incarnation(node));
  // The window between dumps covers exactly the rejoin transition: whatever
  // the node did between crash onset (the "crash" dump) and coming back.
  obs::FlightRecorder::Dump(node, "rejoin", Now());
  n.OnRestart(restored, transport_->incarnation(node));
}

void Simulator::SchedulePeriodicReadings(NodeId node, SimTime start,
                                         SimTime period,
                                         std::function<Point()> source) {
  SENSORD_CHECK_LT(node, nodes_.size());
  SENSORD_CHECK_GT(period, 0.0);
  const size_t slot = periodic_.size();
  periodic_.push_back(PeriodicSource{node, period, std::move(source)});
  queue_.ScheduleAtTagged(start, EventQueue::EventKind::kReading, node,
                          [this, slot, start]() { PeriodicTick(slot, start); });
}

void Simulator::PeriodicTick(size_t slot, SimTime t) {
  if (t > horizon_) return;
  PeriodicSource& src = periodic_[slot];
  // The generator always advances (keeps the data stream identical across
  // fault schedules); DeliverReading discards the value during a crash.
  DeliverReading(src.node, src.generate());
  const SimTime next = t + src.period;
  const NodeId node = src.node;
  // In the serial loop the reschedule's queue position follows everything
  // OnReading scheduled; during batch prep it goes to the item's post log
  // so the replay assigns it the same position.
  auto reschedule = [this, slot, next, node]() {
    queue_.ScheduleAtTagged(next, EventQueue::EventKind::kReading, node,
                            [this, slot, next]() { PeriodicTick(slot, next); });
  };
  if (current_item_ != nullptr) {
    current_item_->post.Push(std::move(reschedule));
  } else {
    reschedule();
  }
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  // A schedule from a handler on a worker thread is staged so the event's
  // FIFO sequence number is assigned in event order at the tick barrier.
  if (OpLog* log = OpLog::Current()) {
    log->Push([this, t, f = std::move(fn)]() mutable {
      queue_.ScheduleAt(t, std::move(f));
    });
    return;
  }
  queue_.ScheduleAt(t, std::move(fn));
}

void Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  SENSORD_DCHECK_GE(delay, 0.0);
  ScheduleAt(queue_.Now() + delay, std::move(fn));
}

void Simulator::RunUntil(SimTime until) {
  horizon_ = until;
  if (threads_ > 1) {
    RunStaged(until, /*bounded=*/true);
    return;
  }
  queue_.RunUntil(until);
}

void Simulator::RunAll() {
  // horizon_ stays at the last RunUntil value: draining runs every one-shot
  // event (retransmission timers, scheduled restarts) to completion, while
  // the self-rescheduling tick chains (periodic readings, checkpoints) end
  // at the horizon instead of perpetuating the queue forever.
  if (threads_ > 1) {
    RunStaged(0.0, /*bounded=*/false);
    return;
  }
  queue_.RunAll();
}

uint64_t Simulator::RunStaged(SimTime until, bool bounded) {
  uint64_t fired = 0;
  while (!queue_.Empty()) {
    const SimTime t = queue_.NextTime();
    if (bounded && t > until) break;
    {
      // Untagged events (timers, restarts, checkpoints) and faulty-sensor
      // readings run serially, exactly like the classic loop.
      const EventQueue::EventKind kind = queue_.NextKind();
      if (kind == EventQueue::EventKind::kOther ||
          (kind == EventQueue::EventKind::kReading &&
           faults_.HasSensorFaults(queue_.NextNode()))) {
        queue_.RunOne();
        ++fired;
        continue;
      }
    }
    // Collect a maximal run of same-tick deliveries/readings to distinct
    // nodes. Events left behind (same node twice, a timer interleaved)
    // form their own later batch, preserving per-node order.
    ++batch_epoch_;
    batch_fns_.clear();
    if (node_mark_.size() < nodes_.size()) node_mark_.resize(nodes_.size(), 0);
    while (!queue_.Empty() && queue_.NextTime() == t) {
      const EventQueue::EventKind kind = queue_.NextKind();
      if (kind == EventQueue::EventKind::kOther) break;
      const uint32_t node = queue_.NextNode();
      if (kind == EventQueue::EventKind::kReading &&
          faults_.HasSensorFaults(node)) {
        break;
      }
      if (node_mark_[node] == batch_epoch_) break;
      node_mark_[node] = batch_epoch_;
      batch_fns_.push_back(queue_.PopFront());
    }
    const size_t n = batch_fns_.size();
    fired += n;
    batch_items_.clear();
    batch_items_.resize(n);
    // Prep, serially in event order: every effect up to the node handler —
    // crash checks, transport dedup and acks, flight records — runs or is
    // staged into item.pre; the handler itself is parked on the item.
    for (size_t i = 0; i < n; ++i) {
      current_item_ = &batch_items_[i];
      OpLog::SetCurrent(&batch_items_[i].pre);
      batch_fns_[i]();
      OpLog::SetCurrent(nullptr);
      current_item_ = nullptr;
    }
    // Handlers in parallel: each touches only its own node's state and
    // stages ordered effects into its item's log.
    const std::function<void(size_t)> run_item = [this](size_t i) {
      BatchItem& item = batch_items_[i];
      if (!item.handler) return;
      OpLog::SetCurrent(&item.handler_ops);
      item.handler();
      OpLog::SetCurrent(nullptr);
    };
    pool_->Run(run_item, n);
    // Merge, serially in event order: the serial loop's effect sequence for
    // event i is [prep effects, handler effects, reschedule], so replaying
    // the three logs per item reproduces it byte for byte.
    for (BatchItem& item : batch_items_) {
      item.pre.Replay();
      item.handler_ops.Replay();
      item.post.Replay();
    }
  }
  if (bounded) queue_.AdvanceTo(until);
  return fired;
}

}  // namespace sensord
