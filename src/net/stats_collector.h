// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Network accounting: message and byte counts, total and per message kind.
//
// Figure 11 of the paper plots messages per second against network size for
// D3, MGDD and the centralized approach; this collector is where those
// numbers come from. Bytes are derived from the per-message payload size in
// numbers under the configurable bytes-per-number convention (paper: 2).
//
// Every RecordSend is also mirrored into the global obs::MetricsRegistry as
// `net.messages.total`, `net.numbers.total`, and a per-kind counter
// `net.messages.<kind>`. The registry counters are process-cumulative: they
// keep counting across Reset() and across multiple simulators, which makes
// them suitable for run-level telemetry but not for per-experiment deltas —
// the per-instance accessors below remain the authoritative per-run numbers.

#ifndef SENSORD_NET_STATS_COLLECTOR_H_
#define SENSORD_NET_STATS_COLLECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>

#include "net/message.h"
#include "util/thread_annotations.h"

namespace sensord {

/// Mutable tally of network traffic. Owned by the Simulator; read by
/// experiments after (or during) a run. Internally synchronized so a
/// monitoring thread can snapshot the tallies while the simulation records
/// — the per-send lock is uncontended in the single-threaded simulator.
class StatsCollector {
 public:
  /// Records one transmitted message.
  void RecordSend(const Message& msg);

  /// Records one message lost in flight (loss model, fault schedule, or a
  /// crashed receiver). The single source of truth for drop accounting:
  /// Simulator::MessagesDropped() reads this tally, and the process-wide
  /// `net.messages.dropped` counter is mirrored from here — so the two can
  /// never disagree across Reset() or simulator re-registration.
  void RecordDrop();

  /// Messages recorded as dropped.
  uint64_t MessagesDropped() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  /// Total messages transmitted.
  uint64_t TotalMessages() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_messages_;
  }

  /// Messages of one kind.
  uint64_t MessagesOfKind(MessageKind kind) const;

  /// Total payload volume in numbers.
  uint64_t TotalNumbers() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_numbers_;
  }

  /// Total payload volume in bytes at `bytes_per_number` per value.
  uint64_t TotalBytes(uint64_t bytes_per_number) const {
    return TotalNumbers() * bytes_per_number;
  }

  /// Average message rate over a span of simulated seconds. Returns 0 for a
  /// non-positive span rather than dividing by zero (a zero-length window
  /// has, by convention, no traffic rate).
  double MessagesPerSecond(double elapsed) const {
    if (!(elapsed > 0.0)) return 0.0;
    return static_cast<double>(TotalMessages()) / elapsed;
  }

  /// Forgets all recorded traffic (e.g. to exclude warm-up from a
  /// measurement run).
  void Reset();

 private:
  // Kinds below this bound (all the shipped protocol + transport kinds) tally
  // into a flat array; rare application-defined kinds fall back to the map.
  static constexpr MessageKind kSmallKinds = 128;

  mutable std::mutex mu_;
  uint64_t total_messages_ GUARDED_BY(mu_) = 0;
  uint64_t total_numbers_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  std::array<uint64_t, kSmallKinds> by_small_kind_ GUARDED_BY(mu_) = {};
  std::map<MessageKind, uint64_t> by_large_kind_ GUARDED_BY(mu_);
};

}  // namespace sensord

#endif  // SENSORD_NET_STATS_COLLECTOR_H_
