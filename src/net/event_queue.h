// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The discrete-event core of the sensor network simulator.
//
// The paper evaluates on a simulator built on TAG's infrastructure; sensord
// ships its own equivalent (see DESIGN.md, Substitutions). Everything that
// happens in the simulated network — message deliveries, periodic sensor
// readings, timer-driven model pushes — is an event on this queue. Events at
// equal timestamps fire in scheduling order (FIFO tie-break), which keeps
// runs exactly reproducible.
//
// Layout: the heap orders small POD keys {time, seq, slot}; the callbacks
// live in a stable side pool indexed by slot, so heap sifts move 32-byte
// entries instead of std::function objects. Events may carry a tag (kind +
// node) so the Simulator's deterministic parallel engine (DESIGN.md §12) can
// peek at what fires next without popping it.

#ifndef SENSORD_NET_EVENT_QUEUE_H_
#define SENSORD_NET_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace sensord {

/// Simulated time, in seconds.
using SimTime = double;

/// A time-ordered queue of callbacks.
class EventQueue {
 public:
  /// Classification of a pending event, used by the parallel engine to
  /// decide which events are safe to group into one sharded tick. Untagged
  /// events default to kOther, which is always executed serially.
  enum class EventKind : uint8_t {
    kOther = 0,    // timers, checkpoints, restarts — run serially
    kDeliver = 1,  // message delivery to `node`
    kReading = 2,  // periodic sensor reading at `node`
  };

  /// Node id carried by untagged events.
  static constexpr uint32_t kNoEventNode = ~uint32_t{0};

  /// Schedules `fn` to run at absolute time `t`. Pre: t >= Now().
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t`, tagged for the parallel engine
  /// with the event class and the node whose handler it will run.
  void ScheduleAtTagged(SimTime t, EventKind kind, uint32_t node,
                        std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now. Pre: delay >= 0.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Current simulated time: the timestamp of the most recently fired event.
  SimTime Now() const { return now_; }

  /// True if no events remain.
  bool Empty() const { return heap_.empty(); }

  /// Number of pending events.
  size_t Size() const { return heap_.size(); }

  /// Timestamp / tag of the earliest pending event. Pre: !Empty().
  SimTime NextTime() const { return heap_.front().time; }
  EventKind NextKind() const { return heap_.front().kind; }
  uint32_t NextNode() const { return heap_.front().node; }

  /// Fires the earliest pending event. Pre: !Empty().
  void RunOne();

  /// Pops the earliest pending event and returns its callback without
  /// firing it, advancing the clock to its timestamp exactly as RunOne
  /// would. The parallel engine uses this to collect one tick's events into
  /// a batch before running them. Pre: !Empty().
  std::function<void()> PopFront();

  /// Fires events until the queue drains or simulated time would exceed
  /// `until`. Events scheduled exactly at `until` still run. Returns the
  /// number of events fired.
  uint64_t RunUntil(SimTime until);

  /// Fires events until the queue drains. Returns the number fired.
  uint64_t RunAll();

  /// Advances the clock to `t` without firing anything (no-op if t <= Now()).
  /// Used by drivers that drain events themselves and then settle the clock
  /// at the end of the run window, mirroring RunUntil's final advance.
  void AdvanceTo(SimTime t) {
    if (now_ < t) now_ = t;
  }

 private:
  struct HeapItem {
    SimTime time;
    uint64_t seq;   // FIFO tie-break for equal timestamps
    uint32_t slot;  // index into slots_
    uint32_t node;
    EventKind kind;
  };

  // Min-heap order: earlier time first, then lower seq.
  static bool Later(const HeapItem& a, const HeapItem& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  std::vector<HeapItem> heap_;
  std::vector<std::function<void()>> slots_;
  std::vector<uint32_t> free_slots_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_EVENT_QUEUE_H_
