// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The discrete-event core of the sensor network simulator.
//
// The paper evaluates on a simulator built on TAG's infrastructure; sensord
// ships its own equivalent (see DESIGN.md, Substitutions). Everything that
// happens in the simulated network — message deliveries, periodic sensor
// readings, timer-driven model pushes — is an event on this queue. Events at
// equal timestamps fire in scheduling order (FIFO tie-break), which keeps
// runs exactly reproducible.

#ifndef SENSORD_NET_EVENT_QUEUE_H_
#define SENSORD_NET_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sensord {

/// Simulated time, in seconds.
using SimTime = double;

/// A time-ordered queue of callbacks.
class EventQueue {
 public:
  /// Schedules `fn` to run at absolute time `t`. Pre: t >= Now().
  void ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now. Pre: delay >= 0.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  /// Current simulated time: the timestamp of the most recently fired event.
  SimTime Now() const { return now_; }

  /// True if no events remain.
  bool Empty() const { return heap_.empty(); }

  /// Number of pending events.
  size_t Size() const { return heap_.size(); }

  /// Fires the earliest pending event. Pre: !Empty().
  void RunOne();

  /// Fires events until the queue drains or simulated time would exceed
  /// `until`. Events scheduled exactly at `until` still run. Returns the
  /// number of events fired.
  uint64_t RunUntil(SimTime until);

  /// Fires events until the queue drains. Returns the number fired.
  uint64_t RunAll();

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_NET_EVENT_QUEUE_H_
