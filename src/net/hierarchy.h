// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The virtual-grid hierarchy of Section 2 (Figure 1).
//
// The network is organized in tiers: leaf sensors at tier 1, and one leader
// per group of `fanout` tier-k nodes at tier k+1, up to a single root
// responsible for the whole deployment. (In the paper leaders are elected
// among the sensors by any of the cited leader-election protocols; here the
// layout is computed directly — the election protocol is orthogonal to the
// detection algorithms and to message accounting between tiers.)
//
// BuildGridHierarchy also assigns plane positions: leaves on a square grid,
// leaders at the centroid of their cell, mirroring Figure 1's overlapping
// virtual grids.

#ifndef SENSORD_NET_HIERARCHY_H_
#define SENSORD_NET_HIERARCHY_H_

#include <cstddef>
#include <vector>

#include "net/message.h"
#include "net/node.h"
#include "util/status.h"

namespace sensord {

/// One node's place in a hierarchy layout. Index in HierarchyLayout::nodes
/// is the node's slot; the Simulator maps slots to NodeIds in order.
struct HierarchyNodeSpec {
  int level = 1;                ///< 1 = leaf tier
  int parent_slot = -1;         ///< -1 for the root
  std::vector<int> child_slots;
  NodePosition position;
};

/// A fully resolved hierarchy: nodes grouped by level, leaves first.
struct HierarchyLayout {
  std::vector<HierarchyNodeSpec> nodes;
  /// Slots per level; levels[0] is tier 1 (leaves).
  std::vector<std::vector<int>> slots_by_level;

  size_t NumNodes() const { return nodes.size(); }
  size_t NumLeaves() const {
    return slots_by_level.empty() ? 0 : slots_by_level[0].size();
  }
  int NumLevels() const { return static_cast<int>(slots_by_level.size()); }
};

/// Builds a balanced hierarchy over `num_leaves` leaf sensors with up to
/// `fanout` children per leader, adding tiers until a single root remains.
/// Returns InvalidArgument if num_leaves == 0 or fanout < 2.
///
/// Example: num_leaves = 32, fanout = 4 gives tiers of 32, 8, 2 and 1 nodes
/// — the four detection levels of the paper's accuracy experiments.
StatusOr<HierarchyLayout> BuildGridHierarchy(size_t num_leaves, size_t fanout);

}  // namespace sensord

#endif  // SENSORD_NET_HIERARCHY_H_
