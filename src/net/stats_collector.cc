#include "net/stats_collector.h"

namespace sensord {

void StatsCollector::RecordSend(const Message& msg) {
  ++total_messages_;
  total_numbers_ += msg.size_numbers;
  ++by_kind_[msg.kind];
}

uint64_t StatsCollector::MessagesOfKind(MessageKind kind) const {
  const auto it = by_kind_.find(kind);
  return it == by_kind_.end() ? 0 : it->second;
}

void StatsCollector::Reset() {
  total_messages_ = 0;
  total_numbers_ = 0;
  by_kind_.clear();
}

}  // namespace sensord
