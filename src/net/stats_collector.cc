#include "net/stats_collector.h"

#include <array>
#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace sensord {
namespace {

// Human-readable labels for the well-known kinds in core/protocol.h. The
// transport layer is application-agnostic, so the names are mirrored here
// rather than included — keep in sync with core/protocol.h.
const char* KindLabel(MessageKind kind) {
  switch (kind) {
    case 1: return "sample_value";
    case 2: return "outlier_report";
    case 3: return "global_model_update";
    case 4: return "raw_reading";
    case 5: return "query_request";
    case 6: return "query_response";
    case kMsgTransportAck: return "transport_ack";
    default: return nullptr;
  }
}

obs::Counter* KindCounter(MessageKind kind) {
  auto& registry = obs::MetricsRegistry::Global();
  // Fast path: the well-known protocol kinds resolve through a small cache
  // so steady-state sends skip the registry's name lookup entirely.
  constexpr MessageKind kCached = 8;
  static std::array<obs::Counter*, kCached> cache = [] {
    auto& reg = obs::MetricsRegistry::Global();
    std::array<obs::Counter*, kCached> out{};
    for (MessageKind k = 0; k < kCached; ++k) {
      const char* label = KindLabel(k);
      const std::string name = label != nullptr
                                   ? std::string("net.messages.") + label
                                   : "net.messages.kind_" + std::to_string(k);
      out[k] = reg.GetCounter(name);
    }
    return out;
  }();
  if (kind < kCached) return cache[kind];
  if (kind == kMsgTransportAck) {
    static obs::Counter* const ack_counter =
        obs::MetricsRegistry::Global().GetCounter("net.messages.transport_ack");
    return ack_counter;
  }
  return registry.GetCounter("net.messages.kind_" + std::to_string(kind));
}

struct NetMetrics {
  obs::Counter* messages_total;
  obs::Counter* numbers_total;
  obs::Counter* messages_dropped;
};

const NetMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const NetMetrics m{registry.GetCounter("net.messages.total"),
                            registry.GetCounter("net.numbers.total"),
                            registry.GetCounter("net.messages.dropped")};
  return m;
}

}  // namespace

void StatsCollector::RecordSend(const Message& msg) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++total_messages_;
    total_numbers_ += msg.size_numbers;
    if (msg.kind < kSmallKinds) {
      ++by_small_kind_[msg.kind];
    } else {
      ++by_large_kind_[msg.kind];
    }
  }
  // Mirror into the process-wide registry (cumulative across Reset()).
  // The registry counters are lock-free; no need to hold mu_ here.
  Metrics().messages_total->Increment();
  Metrics().numbers_total->Increment(msg.size_numbers);
  KindCounter(msg.kind)->Increment();
}

void StatsCollector::RecordDrop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
  }
  Metrics().messages_dropped->Increment();
}

uint64_t StatsCollector::MessagesOfKind(MessageKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (kind < kSmallKinds) return by_small_kind_[kind];
  const auto it = by_large_kind_.find(kind);
  return it == by_large_kind_.end() ? 0 : it->second;
}

void StatsCollector::Reset() {
  // Only the per-instance tallies reset; the registry mirrors are
  // process-cumulative by design (see header).
  const std::lock_guard<std::mutex> lock(mu_);
  total_messages_ = 0;
  total_numbers_ = 0;
  dropped_ = 0;
  by_small_kind_.fill(0);
  by_large_kind_.clear();
}

}  // namespace sensord
