#include "net/leader_election.h"

namespace sensord {

StatusOr<LeaderElection> LeaderElection::Create(
    std::vector<std::vector<NodeId>> cells, LeaderElectionConfig config) {
  if (cells.empty()) {
    return Status::InvalidArgument("need at least one cell");
  }
  for (const auto& cell : cells) {
    if (cell.empty()) {
      return Status::InvalidArgument("cells must be non-empty");
    }
  }
  if (!(config.initial_energy > 0.0)) {
    return Status::InvalidArgument("initial energy must be positive");
  }
  if (config.hysteresis < 0.0) {
    return Status::InvalidArgument("hysteresis must be non-negative");
  }
  return LeaderElection(std::move(cells), config);
}

LeaderElection::LeaderElection(std::vector<std::vector<NodeId>> cells,
                               LeaderElectionConfig config)
    : config_(config), cells_(std::move(cells)) {
  leaders_.reserve(cells_.size());
  for (const auto& cell : cells_) leaders_.push_back(cell.front());
}

std::vector<size_t> LeaderElection::Rotate(
    const std::function<double(NodeId)>& consumed) {
  std::vector<size_t> changed;
  for (size_t c = 0; c < cells_.size(); ++c) {
    const NodeId incumbent = leaders_[c];
    const double incumbent_residual = Residual(consumed(incumbent));

    NodeId best = incumbent;
    double best_residual = incumbent_residual;
    for (NodeId member : cells_[c]) {
      const double r = Residual(consumed(member));
      if (r > best_residual) {
        best = member;
        best_residual = r;
      }
    }
    if (best == incumbent) continue;
    // Hysteresis: hand off only for a materially better challenger. The
    // margin is relative to the remaining budget, so it tightens as nodes
    // drain (late-life balancing matters most).
    const double margin =
        config_.hysteresis * std::max(incumbent_residual, 0.0);
    if (best_residual > incumbent_residual + margin) {
      leaders_[c] = best;
      ++handoffs_;
      changed.push_back(c);
    }
  }
  return changed;
}

}  // namespace sensord
