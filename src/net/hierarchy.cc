#include "net/hierarchy.h"

#include <cmath>

namespace sensord {

StatusOr<HierarchyLayout> BuildGridHierarchy(size_t num_leaves,
                                             size_t fanout) {
  if (num_leaves == 0) {
    return Status::InvalidArgument("hierarchy requires at least one leaf");
  }
  if (fanout < 2) {
    return Status::InvalidArgument("hierarchy fanout must be >= 2");
  }

  HierarchyLayout layout;

  // Tier 1: leaves on a square grid over the unit deployment plane.
  const size_t side = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  std::vector<int> current;
  for (size_t i = 0; i < num_leaves; ++i) {
    HierarchyNodeSpec spec;
    spec.level = 1;
    spec.position.x =
        (static_cast<double>(i % side) + 0.5) / static_cast<double>(side);
    spec.position.y =
        (static_cast<double>(i / side) + 0.5) / static_cast<double>(side);
    current.push_back(static_cast<int>(layout.nodes.size()));
    layout.nodes.push_back(spec);
  }
  layout.slots_by_level.push_back(current);

  // Higher tiers: one leader per group of up to `fanout` consecutive nodes,
  // positioned at the centroid of its cell, until a single root remains.
  int level = 1;
  while (current.size() > 1) {
    ++level;
    std::vector<int> next;
    for (size_t g = 0; g < current.size(); g += fanout) {
      const size_t end = std::min(g + fanout, current.size());
      HierarchyNodeSpec leader;
      leader.level = level;
      double cx = 0.0, cy = 0.0;
      for (size_t i = g; i < end; ++i) {
        leader.child_slots.push_back(current[i]);
        cx += layout.nodes[static_cast<size_t>(current[i])].position.x;
        cy += layout.nodes[static_cast<size_t>(current[i])].position.y;
      }
      const double n = static_cast<double>(end - g);
      leader.position.x = cx / n;
      leader.position.y = cy / n;
      const int leader_slot = static_cast<int>(layout.nodes.size());
      for (int child : leader.child_slots) {
        layout.nodes[static_cast<size_t>(child)].parent_slot = leader_slot;
      }
      layout.nodes.push_back(leader);
      next.push_back(leader_slot);
    }
    layout.slots_by_level.push_back(next);
    current = next;
  }
  return layout;
}

}  // namespace sensord
