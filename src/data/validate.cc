#include "data/validate.h"

#include <cmath>

#include "obs/metrics.h"

namespace sensord {
namespace {

struct IngestMetrics {
  obs::Counter* accepted;
  obs::Counter* rejected_nonfinite;
  obs::Counter* rejected_range;
};

const IngestMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const IngestMetrics m{
      registry.GetCounter("ingest.accepted"),
      registry.GetCounter("ingest.rejected.nonfinite"),
      registry.GetCounter("ingest.rejected.range")};
  return m;
}

}  // namespace

IngestValidator::IngestValidator(const IngestPolicy& policy)
    : policy_(policy) {}

IngestVerdict IngestValidator::Check(const Point& reading) {
  if (policy_.reject_nonfinite) {
    for (double c : reading) {
      if (!std::isfinite(c)) {
        ++rejected_;
        Metrics().rejected_nonfinite->Increment();
        return IngestVerdict::kNonFinite;
      }
    }
  }
  for (double c : reading) {
    if (c < policy_.min_value || c > policy_.max_value) {
      ++rejected_;
      Metrics().rejected_range->Increment();
      return IngestVerdict::kOutOfRange;
    }
  }
  ++accepted_;
  Metrics().accepted->Increment();
  return IngestVerdict::kAccept;
}

}  // namespace sensord
