#include "data/trace_io.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace sensord {

Status WriteTraceCsv(const std::string& path,
                     const std::vector<Point>& trace) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# sensord trace: " << trace.size() << " readings\n";
  for (const Point& p : trace) {
    for (size_t i = 0; i < p.size(); ++i) {
      if (i) out << ',';
      out << p[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

StatusOr<std::vector<Point>> ReadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<Point> trace;
  std::string line;
  size_t arity = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Point p;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || errno == ERANGE) {
        return Status::IoError("bad number at " + path + ":" +
                               std::to_string(line_no));
      }
      p.push_back(v);
    }
    if (p.empty()) continue;
    if (arity == 0) {
      arity = p.size();
    } else if (p.size() != arity) {
      return Status::IoError("inconsistent arity at " + path + ":" +
                             std::to_string(line_no));
    }
    trace.push_back(std::move(p));
  }
  if (trace.empty()) {
    return Status::IoError("empty trace: " + path);
  }
  return trace;
}

StatusOr<ReplayStream> ReplayStream::Create(std::vector<Point> trace,
                                            bool wrap) {
  if (trace.empty()) {
    return Status::InvalidArgument("replay stream requires readings");
  }
  const size_t d = trace[0].size();
  if (d == 0) {
    return Status::InvalidArgument("replay stream requires d >= 1");
  }
  for (const Point& p : trace) {
    if (p.size() != d) {
      return Status::InvalidArgument("inconsistent trace dimensionality");
    }
  }
  return ReplayStream(std::move(trace), wrap);
}

Point ReplayStream::Next() {
  const Point& p = trace_[pos_];
  if (pos_ + 1 < trace_.size()) {
    ++pos_;
  } else if (wrap_) {
    pos_ = 0;
  }
  return p;
}

}  // namespace sensord
