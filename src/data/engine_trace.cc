#include "data/engine_trace.h"

#include <cmath>

#include "util/check.h"

namespace sensord {

EngineTraceGenerator::EngineTraceGenerator(EngineTraceOptions options, Rng rng)
    : options_(options), rng_(rng), level_(options.healthy_level) {
  SENSORD_CHECK_GT(options_.healthy_noise, 0.0);
  SENSORD_CHECK_GT(options_.mean_reversion, 0.0);
  SENSORD_CHECK_LT(options_.mean_reversion, 1.0);
  SENSORD_CHECK_LT(options_.value_floor, options_.value_ceiling);
  SENSORD_CHECK_GT(options_.mean_healthy_duration, 1.0);
  SENSORD_CHECK_GE(options_.mean_failure_duration,
                   static_cast<double>(options_.min_failure_duration));
  SENSORD_CHECK_GE(options_.min_failure_duration, 2u);
  SENSORD_CHECK_LE(options_.min_failure_depth, options_.max_failure_depth);
}

Point EngineTraceGenerator::Next() {
  // OU step: level reverts to the operating point with per-step innovation
  // sized so the long-run stddev equals healthy_noise.
  const double theta = options_.mean_reversion;
  const double innovation_sd =
      options_.healthy_noise * std::sqrt(theta * (2.0 - theta));
  level_ += theta * (options_.healthy_level - level_) +
            rng_.Gaussian(0.0, innovation_sd);

  double drop = 0.0;
  if (failure_remaining_ > 0) {
    // Smooth dive-and-recover excursion: a sine bump over the episode.
    const double progress =
        1.0 - static_cast<double>(failure_remaining_) /
                  static_cast<double>(failure_total_);
    drop = failure_depth_ * std::sin(progress * M_PI);
    --failure_remaining_;
  } else if (rng_.Bernoulli(1.0 / options_.mean_healthy_duration)) {
    // A new failure episode begins with the *next* reading. Durations are
    // min + exponential, so every dive is long enough to stay smooth.
    const double extra = options_.mean_failure_duration -
                         static_cast<double>(options_.min_failure_duration);
    failure_total_ =
        options_.min_failure_duration +
        static_cast<uint64_t>(-std::max(1.0, extra) *
                              std::log(1.0 - rng_.UniformDouble()));
    failure_remaining_ = failure_total_;
    failure_depth_ = rng_.UniformDouble(options_.min_failure_depth,
                                        options_.max_failure_depth);
  }

  const double value =
      Clamp(level_ - drop, options_.value_floor, options_.value_ceiling);
  return {value};
}

}  // namespace sensord
