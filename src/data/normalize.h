// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Domain normalization.
//
// The kernel machinery assumes readings in [0,1]^d (Section 4: "The recorded
// values must fall in the interval [0,1]^d. This requirement is not
// restrictive, since we can map the domain of the input values"). This is
// that map: an affine per-dimension rescale fitted on data or given a priori
// (sensor specs usually publish the physical range).

#ifndef SENSORD_DATA_NORMALIZE_H_
#define SENSORD_DATA_NORMALIZE_H_

#include <vector>

#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Per-dimension affine map onto [0,1]^d and back.
class Normalizer {
 public:
  /// Builds from explicit per-dimension [lo, hi] physical ranges.
  /// Pre: ranges non-empty, lo < hi per dimension.
  static StatusOr<Normalizer> FromRanges(std::vector<double> lo,
                                         std::vector<double> hi);

  /// Fits ranges to the min/max of a dataset, widened by `margin` fraction
  /// of the span on each side so near-boundary future readings stay in
  /// bounds. Pre: data non-empty, consistent dimensionality.
  static StatusOr<Normalizer> Fit(const std::vector<Point>& data,
                                  double margin = 0.05);

  size_t dimensions() const { return lo_.size(); }

  /// Maps a physical reading into [0,1]^d (clamping anything outside the
  /// fitted range onto the boundary).
  Point ToUnit(const Point& physical) const;

  /// Maps a normalized point back to physical coordinates.
  Point FromUnit(const Point& unit) const;

  /// Applies ToUnit to a whole trace.
  std::vector<Point> ToUnitTrace(const std::vector<Point>& trace) const;

 private:
  Normalizer(std::vector<double> lo, std::vector<double> hi);

  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace sensord

#endif  // SENSORD_DATA_NORMALIZE_H_
