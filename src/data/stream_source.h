// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The workload interface: an endless stream of d-dimensional readings.
//
// Every generator in src/data implements StreamSource, and every experiment
// feeds sensors by pulling from one StreamSource per sensor ("in all the
// experiments each sensor sees a different set of data", Section 10). The
// generators are deterministic functions of their Rng seed.

#ifndef SENSORD_DATA_STREAM_SOURCE_H_
#define SENSORD_DATA_STREAM_SOURCE_H_

#include <cstddef>
#include <vector>

#include "util/math_utils.h"

namespace sensord {

/// An unbounded source of sensor readings in [0,1]^d.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Dimensionality of produced readings.
  virtual size_t dimensions() const = 0;

  /// Produces the next reading. Always in [0,1]^d.
  virtual Point Next() = 0;

  /// Convenience: materializes the next `n` readings.
  std::vector<Point> Take(size_t n) {
    std::vector<Point> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }
};

}  // namespace sensord

#endif  // SENSORD_DATA_STREAM_SOURCE_H_
