#include "data/normalize.h"

#include <algorithm>

#include "util/check.h"

namespace sensord {

StatusOr<Normalizer> Normalizer::FromRanges(std::vector<double> lo,
                                            std::vector<double> hi) {
  if (lo.empty() || lo.size() != hi.size()) {
    return Status::InvalidArgument("normalizer needs matching lo/hi ranges");
  }
  for (size_t i = 0; i < lo.size(); ++i) {
    if (!(lo[i] < hi[i])) {
      return Status::InvalidArgument("normalizer requires lo < hi per dim");
    }
  }
  return Normalizer(std::move(lo), std::move(hi));
}

StatusOr<Normalizer> Normalizer::Fit(const std::vector<Point>& data,
                                     double margin) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit normalizer to empty data");
  }
  const size_t d = data[0].size();
  std::vector<double> lo(d), hi(d);
  for (size_t i = 0; i < d; ++i) lo[i] = hi[i] = data[0][i];
  for (const Point& p : data) {
    if (p.size() != d) {
      return Status::InvalidArgument("inconsistent dimensionality");
    }
    for (size_t i = 0; i < d; ++i) {
      lo[i] = std::min(lo[i], p[i]);
      hi[i] = std::max(hi[i], p[i]);
    }
  }
  for (size_t i = 0; i < d; ++i) {
    double span = hi[i] - lo[i];
    if (span <= 0.0) span = 1.0;  // constant dimension: any unit-width range
    lo[i] -= margin * span;
    hi[i] += margin * span;
  }
  return Normalizer(std::move(lo), std::move(hi));
}

Normalizer::Normalizer(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {}

Point Normalizer::ToUnit(const Point& physical) const {
  SENSORD_DCHECK_EQ(physical.size(), lo_.size());
  Point out(physical.size());
  for (size_t i = 0; i < physical.size(); ++i) {
    out[i] = Clamp((physical[i] - lo_[i]) / (hi_[i] - lo_[i]), 0.0, 1.0);
  }
  return out;
}

Point Normalizer::FromUnit(const Point& unit) const {
  SENSORD_DCHECK_EQ(unit.size(), lo_.size());
  Point out(unit.size());
  for (size_t i = 0; i < unit.size(); ++i) {
    out[i] = lo_[i] + unit[i] * (hi_[i] - lo_[i]);
  }
  return out;
}

std::vector<Point> Normalizer::ToUnitTrace(
    const std::vector<Point>& trace) const {
  std::vector<Point> out;
  out.reserve(trace.size());
  for (const Point& p : trace) out.push_back(ToUnit(p));
  return out;
}

}  // namespace sensord
