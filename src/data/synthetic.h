// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The paper's synthetic workload (Section 10, Datasets):
//
//   "Each dataset is a mixture of three Gaussian distributions with uniform
//    noise; the mean is selected at random from (0.3, 0.35, 0.45), and the
//    standard deviation is selected as 0.03 ... Subsequently, we add 0.5%
//    (of the dataset size) noise values, uniformly at random in the interval
//    [0.5, 1]."
//
// The noise values are the planted deviations the detectors should flag. In
// d >= 2 dimensions each dimension draws its own 3-component mixture, and a
// noise reading is uniform in [0.5, 1]^d jointly, so it is an outlier in the
// multi-dimensional space (the paper's engine example motivates exactly such
// joint outliers).

#ifndef SENSORD_DATA_SYNTHETIC_H_
#define SENSORD_DATA_SYNTHETIC_H_

#include <array>
#include <cstddef>
#include <vector>

#include "data/analytic.h"
#include "data/stream_source.h"
#include "util/rng.h"

namespace sensord {

/// Knobs of the synthetic mixture stream; defaults are the paper's.
struct SyntheticOptions {
  size_t dimensions = 1;
  /// Pool from which each component mean is drawn (with replacement).
  std::array<double, 3> mean_pool = {0.3, 0.35, 0.45};
  double component_stddev = 0.03;
  /// Fraction of readings replaced by uniform noise in [noise_lo, noise_hi].
  double noise_probability = 0.005;
  double noise_lo = 0.5;
  double noise_hi = 1.0;
};

/// Endless mixture-of-3-Gaussians stream with uniform noise.
class SyntheticMixtureStream : public StreamSource {
 public:
  /// Component means are drawn once per dimension at construction, from
  /// options.mean_pool, using `rng` — so differently seeded sensors see
  /// different (but overlapping) distributions, as in the paper's setup.
  SyntheticMixtureStream(SyntheticOptions options, Rng rng);

  size_t dimensions() const override { return options_.dimensions; }

  Point Next() override;

  /// The exact distribution this stream draws from (noise component
  /// included), for estimation-accuracy measurements.
  AnalyticDistribution TrueDistribution() const;

  /// The component means chosen for dimension `dim`.
  const std::array<double, 3>& ComponentMeans(size_t dim) const {
    return means_[dim];
  }

 private:
  SyntheticOptions options_;
  Rng rng_;
  std::vector<std::array<double, 3>> means_;  // per dimension
};

/// Knobs of the gapped bimodal stream; see GappedBimodalStream.
struct GappedBimodalOptions {
  size_t dimensions = 1;
  /// The two dense uniform bands (per coordinate).
  double band_a_lo = 0.28, band_a_hi = 0.42;
  double band_b_lo = 0.54, band_b_hi = 0.68;
  /// Rare readings landing inside the otherwise-empty gap.
  double gap_noise_probability = 0.005;
  double gap_lo = 0.44, gap_hi = 0.52;
};

/// Two dense uniform bands separated by an (almost) empty gap, plus rare
/// gap readings. This is the canonical *local-density* outlier workload: a
/// gap reading has a near-empty counting neighbourhood while its sampling
/// neighbourhood is dense and homogeneous, so it is exactly the kind of
/// deviation the MDEF criterion (Section 8) exists to catch — and that a
/// single global distance threshold handles poorly. Used by the MDEF-focused
/// tests and by the MGDD ablation bench.
class GappedBimodalStream : public StreamSource {
 public:
  GappedBimodalStream(GappedBimodalOptions options, Rng rng);

  size_t dimensions() const override { return options_.dimensions; }

  Point Next() override;

  /// True iff the previous reading produced by Next() was gap noise.
  bool LastWasGapNoise() const { return last_was_noise_; }

 private:
  GappedBimodalOptions options_;
  Rng rng_;
  bool last_was_noise_ = false;
};

}  // namespace sensord

#endif  // SENSORD_DATA_SYNTHETIC_H_
