// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The distribution-shift workload of Figure 6.
//
// "We consider Gaussian distributions and vary the underlying distribution
//  after every 4096 measurements (from mu = 0.3, sigma = 0.05 to mu = 0.5,
//  sigma = 0.05) to measure the latency with which the sensors adjust to the
//  changes in distribution." (Section 10.1)
//
// The stream alternates between the two phases forever; TruePhaseAt() tells
// the experiment which distribution generated a given reading so it can
// compute the JS divergence against the right truth.

#ifndef SENSORD_DATA_SHIFT_TRACE_H_
#define SENSORD_DATA_SHIFT_TRACE_H_

#include <cstdint>

#include "data/analytic.h"
#include "data/stream_source.h"
#include "util/rng.h"

namespace sensord {

/// Parameters of the alternating-Gaussian stream; defaults match Figure 6.
struct ShiftTraceOptions {
  double mean_a = 0.3;
  double mean_b = 0.5;
  double stddev = 0.05;
  /// Readings per phase before switching.
  uint64_t phase_length = 4096;
};

/// 1-d Gaussian stream whose mean alternates every phase_length readings.
class ShiftingGaussianStream : public StreamSource {
 public:
  ShiftingGaussianStream(ShiftTraceOptions options, Rng rng);

  size_t dimensions() const override { return 1; }

  Point Next() override;

  /// Index (0-based) of the next reading Next() would produce.
  uint64_t position() const { return position_; }

  /// True iff reading index `i` comes from phase A (mean_a).
  bool IsPhaseA(uint64_t i) const {
    return (i / options_.phase_length) % 2 == 0;
  }

  /// The exact distribution of reading index `i`.
  AnalyticDistribution TrueDistributionAt(uint64_t i) const;

  const ShiftTraceOptions& options() const { return options_; }

 private:
  ShiftTraceOptions options_;
  Rng rng_;
  uint64_t position_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_DATA_SHIFT_TRACE_H_
