// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Surrogate for the Pacific-Northwest weather traces ("Earth Climate and
// Weather, University of Washington") used in the paper.
//
// The original: two years of measurements of atmospheric pressure,
// dew-point, temperature, etc., 35 000 values per sensor; the paper streams
// pairs (pressure, dew-point). Figure 5 rows:
//   Pressure:  min 0.422, max 0.848, mean 0.677, median 0.681,
//              stddev 0.063, skew -0.399
//   Dew-point: min 0.113, max 0.282, mean 0.213, median 0.212,
//              stddev 0.027, skew -0.182
//
// The generator is a correlated 2-d process: slow synoptic oscillations
// (weather systems passing) plus AR(1) noise, with occasional storm fronts
// that depress pressure sharply — which produces the mild negative skew —
// and pull the dew-point along (shared weather forcing makes the two
// coordinates dependent, so 2-d outliers are meaningful). Statistics are
// validated against the Figure 5 rows by bench/fig05_dataset_stats.

#ifndef SENSORD_DATA_ENVIRONMENTAL_TRACE_H_
#define SENSORD_DATA_ENVIRONMENTAL_TRACE_H_

#include <cstdint>

#include "data/stream_source.h"
#include "util/rng.h"

namespace sensord {

/// Parameters of the surrogate weather stream. Defaults reproduce Figure 5.
struct EnvironmentalTraceOptions {
  // Pressure marginal.
  double pressure_base = 0.688;
  double pressure_synoptic_amp = 0.055;  ///< slow weather-system swing
  double pressure_noise = 0.025;         ///< long-run AR(1) stddev
  double pressure_min = 0.422;
  double pressure_max = 0.848;
  // Dew-point marginal.
  double dewpoint_base = 0.215;
  double dewpoint_synoptic_amp = 0.020;
  double dewpoint_noise = 0.012;
  double dewpoint_min = 0.113;
  double dewpoint_max = 0.282;
  // Shared dynamics.
  double synoptic_period = 2400.0;  ///< readings per weather-system cycle
  double mean_reversion = 0.03;     ///< AR(1) pull
  /// Expected readings between storm fronts, and front shape.
  double mean_calm_duration = 4000.0;
  double mean_storm_duration = 120.0;
  double storm_pressure_drop = 0.16;
  double storm_dewpoint_drop = 0.05;
};

/// Endless 2-d (pressure, dew-point) surrogate weather stream.
class EnvironmentalTraceGenerator : public StreamSource {
 public:
  EnvironmentalTraceGenerator(EnvironmentalTraceOptions options, Rng rng);

  explicit EnvironmentalTraceGenerator(Rng rng)
      : EnvironmentalTraceGenerator(EnvironmentalTraceOptions{}, rng) {}

  size_t dimensions() const override { return 2; }

  Point Next() override;

  /// True while a storm front is passing.
  bool InStorm() const { return storm_remaining_ > 0; }

 private:
  EnvironmentalTraceOptions options_;
  Rng rng_;
  uint64_t t_ = 0;
  double phase_;            // random initial synoptic phase per sensor
  double pressure_ar_ = 0.0;
  double dewpoint_ar_ = 0.0;
  uint64_t storm_remaining_ = 0;
  uint64_t storm_total_ = 0;
  double storm_strength_ = 0.0;
};

}  // namespace sensord

#endif  // SENSORD_DATA_ENVIRONMENTAL_TRACE_H_
