#include "data/analytic.h"

#include <cmath>

#include "util/check.h"

namespace sensord {
namespace {

// Standard normal CDF.
double Phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

// Mass of a (non-truncated) Gaussian over [lo, hi].
double GaussianMass(double mean, double stddev, double lo, double hi) {
  return Phi((hi - mean) / stddev) - Phi((lo - mean) / stddev);
}

double GaussianPdf(double mean, double stddev, double x) {
  const double z = (x - mean) / stddev;
  return std::exp(-0.5 * z * z) / (stddev * std::sqrt(2.0 * M_PI));
}

}  // namespace

MixtureComponent MixtureComponent::MakeGaussian(double weight, double mean,
                                                double stddev) {
  MixtureComponent c;
  c.kind = Kind::kGaussian;
  c.weight = weight;
  c.mean = mean;
  c.stddev = stddev;
  return c;
}

MixtureComponent MixtureComponent::MakeUniform(double weight, double lo,
                                               double hi) {
  MixtureComponent c;
  c.kind = Kind::kUniform;
  c.weight = weight;
  c.lo = lo;
  c.hi = hi;
  return c;
}

StatusOr<AnalyticDistribution> AnalyticDistribution::Create(
    std::vector<std::vector<MixtureComponent>> marginals) {
  if (marginals.empty()) {
    return Status::InvalidArgument("analytic distribution requires d >= 1");
  }
  for (const auto& marginal : marginals) {
    if (marginal.empty()) {
      return Status::InvalidArgument("each marginal needs >= 1 component");
    }
    for (const MixtureComponent& c : marginal) {
      if (!(c.weight > 0.0)) {
        return Status::InvalidArgument("component weights must be positive");
      }
      if (c.kind == MixtureComponent::Kind::kGaussian && !(c.stddev > 0.0)) {
        return Status::InvalidArgument("Gaussian stddev must be positive");
      }
      if (c.kind == MixtureComponent::Kind::kUniform && !(c.lo < c.hi)) {
        return Status::InvalidArgument("uniform component requires lo < hi");
      }
    }
  }
  return AnalyticDistribution(std::move(marginals));
}

AnalyticDistribution AnalyticDistribution::Gaussian1d(double mean,
                                                      double stddev) {
  auto result = Create({{MixtureComponent::MakeGaussian(1.0, mean, stddev)}});
  SENSORD_CHECK_OK(result);
  return std::move(result).value();
}

AnalyticDistribution::AnalyticDistribution(
    std::vector<std::vector<MixtureComponent>> marginals)
    : marginals_(std::move(marginals)) {
  weight_sum_.resize(marginals_.size());
  truncation_.resize(marginals_.size());
  for (size_t dim = 0; dim < marginals_.size(); ++dim) {
    double sum = 0.0;
    truncation_[dim].reserve(marginals_[dim].size());
    for (const MixtureComponent& c : marginals_[dim]) {
      sum += c.weight;
      if (c.kind == MixtureComponent::Kind::kGaussian) {
        // Clamping samples to [0,1] piles the tails onto the boundary; for
        // the means/stddevs used in experiments the tail mass is negligible,
        // so we model truncation-with-renormalization instead.
        truncation_[dim].push_back(GaussianMass(c.mean, c.stddev, 0.0, 1.0));
      } else {
        truncation_[dim].push_back(1.0);
      }
    }
    weight_sum_[dim] = sum;
  }
}

double AnalyticDistribution::MarginalMass(size_t dim, double lo,
                                          double hi) const {
  const double a = std::max(lo, 0.0);
  const double b = std::min(hi, 1.0);
  if (a >= b) return 0.0;
  double mass = 0.0;
  const auto& marginal = marginals_[dim];
  for (size_t i = 0; i < marginal.size(); ++i) {
    const MixtureComponent& c = marginal[i];
    double m;
    if (c.kind == MixtureComponent::Kind::kGaussian) {
      const double trunc = truncation_[dim][i];
      m = trunc > 0.0 ? GaussianMass(c.mean, c.stddev, a, b) / trunc : 0.0;
    } else {
      m = IntervalOverlap(c.lo, c.hi, a, b) / (c.hi - c.lo);
    }
    mass += c.weight * m;
  }
  return mass / weight_sum_[dim];
}

double AnalyticDistribution::MarginalPdf(size_t dim, double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  double density = 0.0;
  const auto& marginal = marginals_[dim];
  for (size_t i = 0; i < marginal.size(); ++i) {
    const MixtureComponent& c = marginal[i];
    double f;
    if (c.kind == MixtureComponent::Kind::kGaussian) {
      const double trunc = truncation_[dim][i];
      f = trunc > 0.0 ? GaussianPdf(c.mean, c.stddev, x) / trunc : 0.0;
    } else {
      f = (x >= c.lo && x <= c.hi) ? 1.0 / (c.hi - c.lo) : 0.0;
    }
    density += c.weight * f;
  }
  return density / weight_sum_[dim];
}

double AnalyticDistribution::BoxProbability(const Point& lo,
                                            const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), dimensions());
  SENSORD_DCHECK_EQ(hi.size(), dimensions());
  double mass = 1.0;
  for (size_t dim = 0; dim < dimensions() && mass > 0.0; ++dim) {
    mass *= MarginalMass(dim, lo[dim], hi[dim]);
  }
  return mass;
}

double AnalyticDistribution::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), dimensions());
  double density = 1.0;
  for (size_t dim = 0; dim < dimensions() && density > 0.0; ++dim) {
    density *= MarginalPdf(dim, p[dim]);
  }
  return density;
}

}  // namespace sensord
