#include "data/environmental_trace.h"

#include <cmath>

#include "util/check.h"

namespace sensord {

EnvironmentalTraceGenerator::EnvironmentalTraceGenerator(
    EnvironmentalTraceOptions options, Rng rng)
    : options_(options), rng_(rng) {
  SENSORD_CHECK_LT(options_.pressure_min, options_.pressure_max);
  SENSORD_CHECK_LT(options_.dewpoint_min, options_.dewpoint_max);
  SENSORD_CHECK_GT(options_.synoptic_period, 1.0);
  SENSORD_CHECK_GT(options_.mean_reversion, 0.0);
  SENSORD_CHECK_LT(options_.mean_reversion, 1.0);
  phase_ = rng_.UniformDouble(0.0, 2.0 * M_PI);
}

Point EnvironmentalTraceGenerator::Next() {
  const double theta = options_.mean_reversion;
  const double scale = std::sqrt(theta * (2.0 - theta));

  // Correlated AR(1) noise: the dew-point innovation shares a common weather
  // term with the pressure innovation.
  const double shared = rng_.Gaussian();
  const double own = rng_.Gaussian();
  pressure_ar_ += -theta * pressure_ar_ +
                  options_.pressure_noise * scale * shared;
  dewpoint_ar_ += -theta * dewpoint_ar_ +
                  options_.dewpoint_noise * scale * (0.6 * shared + 0.8 * own);

  // Slow synoptic swing: two incommensurate sinusoids so the trajectory
  // never exactly repeats.
  const double w = 2.0 * M_PI / options_.synoptic_period;
  const double tt = static_cast<double>(t_);
  const double synoptic =
      0.7 * std::sin(w * tt + phase_) + 0.3 * std::sin(0.37 * w * tt + 1.3 * phase_);
  ++t_;

  // Storm fronts: sharp correlated dips (left skew in both marginals).
  double storm = 0.0;
  if (storm_remaining_ > 0) {
    const double progress =
        1.0 - static_cast<double>(storm_remaining_) /
                  static_cast<double>(storm_total_);
    storm = storm_strength_ * std::sin(progress * M_PI);
    --storm_remaining_;
  } else if (rng_.Bernoulli(1.0 / options_.mean_calm_duration)) {
    storm_total_ = 2 + static_cast<uint64_t>(
                           -options_.mean_storm_duration *
                           std::log(1.0 - rng_.UniformDouble()));
    storm_remaining_ = storm_total_;
    storm_strength_ = rng_.UniformDouble(0.5, 1.0);
  }

  const double pressure =
      Clamp(options_.pressure_base +
                options_.pressure_synoptic_amp * synoptic + pressure_ar_ -
                storm * options_.storm_pressure_drop,
            options_.pressure_min, options_.pressure_max);
  const double dewpoint =
      Clamp(options_.dewpoint_base +
                options_.dewpoint_synoptic_amp * synoptic + dewpoint_ar_ -
                storm * options_.storm_dewpoint_drop,
            options_.dewpoint_min, options_.dewpoint_max);
  return {pressure, dewpoint};
}

}  // namespace sensord
