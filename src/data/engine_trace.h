// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Surrogate for the paper's proprietary engine dataset.
//
// The original: 15 sensors monitoring an engine every 5 minutes, June 1 to
// December 1 2002, 50 000 values per sensor, normalized to [0, 1]. Its
// Figure 5 row: min 0.020, max 0.427, mean 0.410, median 0.419, stddev
// 0.053, skew -6.844 — i.e. a smooth, strongly left-skewed stream that sits
// near 0.42 almost always and rarely plunges toward 0.02. The paper also
// notes "a major failure ... from October 28th to November 1st, where ...
// they reported deviating values".
//
// This generator reproduces that structure: an Ornstein-Uhlenbeck process
// around a healthy operating point, interrupted by rare failure episodes in
// which the value smoothly dives toward a per-episode failure depth and
// recovers. With default parameters the long-run statistics land on the
// Figure 5 row (validated by bench/fig05_dataset_stats) and the failure
// excursions are the genuine outliers the detectors should flag.

#ifndef SENSORD_DATA_ENGINE_TRACE_H_
#define SENSORD_DATA_ENGINE_TRACE_H_

#include <cstdint>

#include "data/stream_source.h"
#include "util/rng.h"

namespace sensord {

/// Parameters of the surrogate engine stream. Defaults reproduce Figure 5.
struct EngineTraceOptions {
  double healthy_level = 0.419;  ///< operating point (the dataset median)
  double healthy_noise = 0.006;  ///< long-run stddev of the healthy regime
  double mean_reversion = 0.05;  ///< OU pull toward the operating point
  double value_floor = 0.020;    ///< the dataset minimum
  double value_ceiling = 0.427;  ///< the dataset maximum
  /// Expected healthy readings between failure episodes.
  double mean_healthy_duration = 3800.0;
  /// Shortest possible failure episode (keeps the dive smooth) and the
  /// expected episode length, in readings.
  uint64_t min_failure_duration = 40;
  double mean_failure_duration = 150.0;
  /// Depth of a failure dive, drawn uniformly per episode. With the healthy
  /// level at 0.419 the deepest dives graze the dataset floor of 0.020.
  double min_failure_depth = 0.35;
  double max_failure_depth = 0.40;
};

/// Endless 1-d surrogate engine stream.
class EngineTraceGenerator : public StreamSource {
 public:
  EngineTraceGenerator(EngineTraceOptions options, Rng rng);

  /// Defaults + seed convenience.
  explicit EngineTraceGenerator(Rng rng)
      : EngineTraceGenerator(EngineTraceOptions{}, rng) {}

  size_t dimensions() const override { return 1; }

  Point Next() override;

  /// True while the generator is inside a failure episode — the labels used
  /// by examples to show detections lining up with real anomalies.
  bool InFailureEpisode() const { return failure_remaining_ > 0; }

 private:
  EngineTraceOptions options_;
  Rng rng_;
  double level_;              // current OU state
  uint64_t failure_remaining_ = 0;  // readings left in the current episode
  uint64_t failure_total_ = 0;      // total length of the current episode
  double failure_depth_ = 0.0;
};

}  // namespace sensord

#endif  // SENSORD_DATA_ENGINE_TRACE_H_
