#include "data/shift_trace.h"

#include "util/check.h"

namespace sensord {

ShiftingGaussianStream::ShiftingGaussianStream(ShiftTraceOptions options,
                                               Rng rng)
    : options_(options), rng_(rng) {
  SENSORD_CHECK_GT(options_.stddev, 0.0);
  SENSORD_CHECK_GT(options_.phase_length, 0u);
}

Point ShiftingGaussianStream::Next() {
  const double mean = IsPhaseA(position_) ? options_.mean_a : options_.mean_b;
  ++position_;
  return {Clamp(rng_.Gaussian(mean, options_.stddev), 0.0, 1.0)};
}

AnalyticDistribution ShiftingGaussianStream::TrueDistributionAt(
    uint64_t i) const {
  const double mean = IsPhaseA(i) ? options_.mean_a : options_.mean_b;
  return AnalyticDistribution::Gaussian1d(mean, options_.stddev);
}

}  // namespace sensord
