#include "data/shift_trace.h"

#include <cassert>

namespace sensord {

ShiftingGaussianStream::ShiftingGaussianStream(ShiftTraceOptions options,
                                               Rng rng)
    : options_(options), rng_(rng) {
  assert(options_.stddev > 0.0);
  assert(options_.phase_length > 0);
}

Point ShiftingGaussianStream::Next() {
  const double mean = IsPhaseA(position_) ? options_.mean_a : options_.mean_b;
  ++position_;
  return {Clamp(rng_.Gaussian(mean, options_.stddev), 0.0, 1.0)};
}

AnalyticDistribution ShiftingGaussianStream::TrueDistributionAt(
    uint64_t i) const {
  const double mean = IsPhaseA(i) ? options_.mean_a : options_.mean_b;
  return AnalyticDistribution::Gaussian1d(mean, options_.stddev);
}

}  // namespace sensord
