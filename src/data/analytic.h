// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Closed-form distributions implementing the estimator interface.
//
// The Figure 6 experiment measures the JS divergence between the kernel
// estimate and the *true* distribution that generated the stream; these
// classes are that truth. They are product distributions whose per-dimension
// marginals are mixtures of (clamped-to-[0,1]) Gaussian and uniform
// components, matching the synthetic generators in this directory.

#ifndef SENSORD_DATA_ANALYTIC_H_
#define SENSORD_DATA_ANALYTIC_H_

#include <cstddef>
#include <vector>

#include "stats/estimator.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// One mixture component of a 1-d marginal.
struct MixtureComponent {
  enum class Kind { kGaussian, kUniform };
  Kind kind = Kind::kGaussian;
  double weight = 1.0;  ///< relative weight; normalized across the marginal
  // Gaussian parameters (kind == kGaussian):
  double mean = 0.5;
  double stddev = 0.1;
  // Uniform parameters (kind == kUniform):
  double lo = 0.0;
  double hi = 1.0;

  static MixtureComponent MakeGaussian(double weight, double mean,
                                       double stddev);
  static MixtureComponent MakeUniform(double weight, double lo, double hi);
};

/// A product distribution over [0,1]^d: dimension i is an independent
/// mixture of Gaussian/uniform components. Gaussians are truncated to [0,1]
/// and renormalized, matching generators that clamp samples.
class AnalyticDistribution : public DistributionEstimator {
 public:
  /// Pre: one non-empty component list per dimension; positive weights;
  /// Gaussian stddevs > 0; uniform lo < hi.
  static StatusOr<AnalyticDistribution> Create(
      std::vector<std::vector<MixtureComponent>> marginals);

  /// Single Gaussian in 1-d — the Figure 6 workload distribution.
  static AnalyticDistribution Gaussian1d(double mean, double stddev);

  size_t dimensions() const override { return marginals_.size(); }
  double BoxProbability(const Point& lo, const Point& hi) const override;
  double Pdf(const Point& p) const override;

 private:
  explicit AnalyticDistribution(
      std::vector<std::vector<MixtureComponent>> marginals);

  // Mass of the marginal of dimension `dim` over [lo, hi] intersected with
  // [0, 1].
  double MarginalMass(size_t dim, double lo, double hi) const;
  double MarginalPdf(size_t dim, double x) const;

  std::vector<std::vector<MixtureComponent>> marginals_;
  std::vector<double> weight_sum_;       // per-dim total component weight
  std::vector<std::vector<double>> truncation_;  // per-component mass in [0,1]
};

}  // namespace sensord

#endif  // SENSORD_DATA_ANALYTIC_H_
