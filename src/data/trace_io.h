// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Trace persistence: CSV read/write of point sequences, plus a StreamSource
// that replays a stored trace. Lets users run sensord's detectors on their
// own sensor logs (the quickstart example shows the path) and lets
// experiments pin down exact inputs.

#ifndef SENSORD_DATA_TRACE_IO_H_
#define SENSORD_DATA_TRACE_IO_H_

#include <string>
#include <vector>

#include "data/stream_source.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Writes one point per line, coordinates comma-separated, '#' comments
/// allowed. Overwrites the file.
Status WriteTraceCsv(const std::string& path, const std::vector<Point>& trace);

/// Reads a CSV trace written by WriteTraceCsv (or any compatible file:
/// one reading per line, comma-separated coordinates, blank lines and
/// '#'-prefixed comments ignored). All rows must have equal arity.
StatusOr<std::vector<Point>> ReadTraceCsv(const std::string& path);

/// Replays a materialized trace; wraps around at the end (so detectors can
/// be driven for longer than the trace) unless `wrap` is false, in which
/// case Next() keeps returning the final point.
class ReplayStream : public StreamSource {
 public:
  /// Pre: trace non-empty with consistent dimensionality.
  static StatusOr<ReplayStream> Create(std::vector<Point> trace,
                                       bool wrap = true);

  size_t dimensions() const override { return trace_[0].size(); }

  Point Next() override;

  size_t size() const { return trace_.size(); }
  size_t position() const { return pos_; }

 private:
  ReplayStream(std::vector<Point> trace, bool wrap)
      : trace_(std::move(trace)), wrap_(wrap) {}

  std::vector<Point> trace_;
  bool wrap_;
  size_t pos_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_DATA_TRACE_IO_H_
