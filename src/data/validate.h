// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Ingest validation firewall: the first thing a reading meets at a node.
//
// The paper assumes readings normalized into [0,1]^d (Section 4); a real
// mote delivers NaN from a disconnected probe, +/-Inf from a saturated ADC,
// and frozen repeats from a stuck transducer. Feeding such values into the
// chain sample poisons the density model for a full window — far worse than
// dropping the reading — so every detector node screens its raw stream
// through an IngestValidator before the model sees it. Branch et al.
// ("In-Network Outlier Detection in Wireless Sensor Networks") motivate
// treating dirty ingest as a first-class fault alongside message loss.
//
// Stuck-at runs are a *model* judgement (a constant can be legitimate), so
// quarantine for them lives with the other model-divergence checks in
// core/faulty_sensor.h (StuckSensorDetector); this layer handles only the
// value-level checks that need no history beyond the previous reading.

#ifndef SENSORD_DATA_VALIDATE_H_
#define SENSORD_DATA_VALIDATE_H_

#include <cstdint>
#include <limits>

#include "util/math_utils.h"

namespace sensord {

/// What the firewall enforces. The defaults accept every finite reading, so
/// a validator with a default policy is behavior-neutral on clean data.
struct IngestPolicy {
  /// Reject readings containing NaN or +/-Inf coordinates.
  bool reject_nonfinite = true;
  /// Closed range every coordinate must lie in. The defaults are infinite
  /// (no range check); deployments with normalized streams set [0, 1].
  double min_value = -std::numeric_limits<double>::infinity();
  double max_value = std::numeric_limits<double>::infinity();
  /// Consecutive identical readings after which the stream is quarantined
  /// as stuck. 0 disables the check. Enforced by core's StuckSensorDetector,
  /// not by IngestValidator::Check — carried here so one policy struct
  /// configures the whole firewall.
  uint64_t stuck_run_threshold = 0;
};

/// Verdict for one reading.
enum class IngestVerdict {
  kAccept = 0,
  kNonFinite,   ///< some coordinate is NaN or +/-Inf
  kOutOfRange,  ///< some coordinate outside [min_value, max_value]
};

/// Stateless per-reading screen (the stuck check, which needs history, is
/// core/faulty_sensor.h's StuckSensorDetector). One instance per node;
/// Check() is O(d) with no allocation.
class IngestValidator {
 public:
  explicit IngestValidator(const IngestPolicy& policy);

  /// Screens one reading. Counts the verdict into the global ingest.*
  /// metrics and this instance's accepted()/rejected() tallies.
  IngestVerdict Check(const Point& reading);

  const IngestPolicy& policy() const { return policy_; }
  uint64_t accepted() const { return accepted_; }
  uint64_t rejected() const { return rejected_; }

 private:
  IngestPolicy policy_;
  uint64_t accepted_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_DATA_VALIDATE_H_
