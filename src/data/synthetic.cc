#include "data/synthetic.h"

#include "util/check.h"

namespace sensord {

SyntheticMixtureStream::SyntheticMixtureStream(SyntheticOptions options,
                                               Rng rng)
    : options_(options), rng_(rng) {
  SENSORD_CHECK_GE(options_.dimensions, 1u);
  SENSORD_CHECK_GT(options_.component_stddev, 0.0);
  SENSORD_CHECK_GE(options_.noise_probability, 0.0);
  SENSORD_CHECK_LE(options_.noise_probability, 1.0);
  SENSORD_CHECK_LT(options_.noise_lo, options_.noise_hi);
  means_.resize(options_.dimensions);
  for (auto& dim_means : means_) {
    for (double& m : dim_means) {
      m = options_.mean_pool[rng_.UniformUint64(options_.mean_pool.size())];
    }
  }
}

Point SyntheticMixtureStream::Next() {
  Point p(options_.dimensions);
  if (rng_.Bernoulli(options_.noise_probability)) {
    for (double& x : p) {
      x = rng_.UniformDouble(options_.noise_lo, options_.noise_hi);
    }
    return p;
  }
  for (size_t dim = 0; dim < options_.dimensions; ++dim) {
    const double mean = means_[dim][rng_.UniformUint64(3)];
    p[dim] = Clamp(rng_.Gaussian(mean, options_.component_stddev), 0.0, 1.0);
  }
  return p;
}

GappedBimodalStream::GappedBimodalStream(GappedBimodalOptions options,
                                         Rng rng)
    : options_(options), rng_(rng) {
  SENSORD_CHECK_GE(options_.dimensions, 1u);
  SENSORD_CHECK_LT(options_.band_a_lo, options_.band_a_hi);
  SENSORD_CHECK_LT(options_.band_b_lo, options_.band_b_hi);
  SENSORD_CHECK_LT(options_.band_a_hi, options_.gap_lo);
  SENSORD_CHECK_LT(options_.gap_hi, options_.band_b_lo);
}

Point GappedBimodalStream::Next() {
  Point p(options_.dimensions);
  last_was_noise_ = rng_.Bernoulli(options_.gap_noise_probability);
  for (double& x : p) {
    if (last_was_noise_) {
      x = rng_.UniformDouble(options_.gap_lo, options_.gap_hi);
    } else if (rng_.Bernoulli(0.5)) {
      x = rng_.UniformDouble(options_.band_a_lo, options_.band_a_hi);
    } else {
      x = rng_.UniformDouble(options_.band_b_lo, options_.band_b_hi);
    }
  }
  return p;
}

AnalyticDistribution SyntheticMixtureStream::TrueDistribution() const {
  std::vector<std::vector<MixtureComponent>> marginals(options_.dimensions);
  const double w_gauss = (1.0 - options_.noise_probability) / 3.0;
  for (size_t dim = 0; dim < options_.dimensions; ++dim) {
    for (double mean : means_[dim]) {
      marginals[dim].push_back(MixtureComponent::MakeGaussian(
          w_gauss, mean, options_.component_stddev));
    }
    if (options_.noise_probability > 0.0) {
      marginals[dim].push_back(MixtureComponent::MakeUniform(
          options_.noise_probability, options_.noise_lo, options_.noise_hi));
    }
  }
  auto result = AnalyticDistribution::Create(std::move(marginals));
  SENSORD_CHECK_OK(result);
  return std::move(result).value();
}

}  // namespace sensord
