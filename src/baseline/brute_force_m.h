// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// BruteForce-M (Section 10, Comparisons): the exact MDEF-based detector —
// "the aLOCI algorithm, which approximates the average neighborhood count
// and the standard deviation of neighborhood count based on an interval
// count over the measurements in the sliding window."
//
// Implementation: the shared ComputeMdef machinery (core/mdef.h) evaluated
// against the window's exact empirical distribution, so the kernel-based
// online detector and the ground truth use identical MDEF statistics and
// differ only in how they estimate mass.

#ifndef SENSORD_BASELINE_BRUTE_FORCE_M_H_
#define SENSORD_BASELINE_BRUTE_FORCE_M_H_

#include <vector>

#include "core/config.h"
#include "core/mdef.h"
#include "util/math_utils.h"

namespace sensord {

/// Exact MDEF evaluation of p against the window's empirical distribution.
/// Pre: window non-empty.
MdefResult BruteForceMdef(const std::vector<Point>& window, const Point& p,
                          const MdefConfig& config);

/// Exact isMDEFOutlier.
bool BruteForceIsMdefOutlier(const std::vector<Point>& window, const Point& p,
                             const MdefConfig& config);

/// All MDEF outliers of a window instance (indices into `window`).
std::vector<size_t> BruteForceAllMdefOutliers(const std::vector<Point>& window,
                                              const MdefConfig& config);

}  // namespace sensord

#endif  // SENSORD_BASELINE_BRUTE_FORCE_M_H_
