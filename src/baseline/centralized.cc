#include "baseline/centralized.h"

#include "core/protocol.h"

namespace sensord {

void CentralizedLeafNode::OnReading(const Point& value) {
  if (parent() == kNoNode) return;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRawReading;
  msg.size_numbers = value.size();
  msg.payload = MakeSampleValue(value);
  sim()->Send(std::move(msg));
}

CentralizedRelayNode::CentralizedRelayNode(size_t window_capacity,
                                           size_t dimensions)
    : window_capacity_(window_capacity), dimensions_(dimensions) {}

SlidingWindow& CentralizedRelayNode::EnsureWindow() const {
  if (!window_.has_value()) window_.emplace(window_capacity_, dimensions_);
  return *window_;
}

void CentralizedRelayNode::HandleMessage(const Message& msg) {
  if (msg.kind != kMsgRawReading) return;
  const auto& shared = std::any_cast<const SharedSampleValue&>(msg.payload);
  const SampleValuePayload& payload = *shared;
  if (parent() == kNoNode) {
    (void)EnsureWindow().Add(payload.value);
    return;
  }
  Message fwd;
  fwd.from = id();
  fwd.to = parent();
  fwd.kind = kMsgRawReading;
  fwd.size_numbers = payload.value.size();
  fwd.payload = shared;  // forward the shared handle, not a payload copy
  sim()->Send(std::move(fwd));
}

}  // namespace sensord
