#include "baseline/centralized.h"

#include "core/protocol.h"

namespace sensord {

void CentralizedLeafNode::OnReading(const Point& value) {
  if (parent() == kNoNode) return;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRawReading;
  msg.size_numbers = value.size();
  msg.payload = SampleValuePayload{value};
  sim()->Send(std::move(msg));
}

CentralizedRelayNode::CentralizedRelayNode(size_t window_capacity,
                                           size_t dimensions)
    : window_(window_capacity, dimensions) {}

void CentralizedRelayNode::HandleMessage(const Message& msg) {
  if (msg.kind != kMsgRawReading) return;
  const auto& payload = std::any_cast<const SampleValuePayload&>(msg.payload);
  if (parent() == kNoNode) {
    (void)window_.Add(payload.value);
    return;
  }
  Message fwd;
  fwd.from = id();
  fwd.to = parent();
  fwd.kind = kMsgRawReading;
  fwd.size_numbers = payload.value.size();
  fwd.payload = payload;
  sim()->Send(std::move(fwd));
}

}  // namespace sensord
