// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The centralized baseline of Figures 8.1/11: every sensor ships every raw
// reading up the hierarchy to the leader at the highest level, where all
// detection would happen. The paper uses it as the communication-cost yard-
// stick ("the D3 algorithm requires approximately two orders of magnitude
// fewer messages"); only its traffic matters here, so the root simply
// absorbs readings into a sliding window (on which any offline detector
// could run) and the interesting output is the Simulator's StatsCollector.

#ifndef SENSORD_BASELINE_CENTRALIZED_H_
#define SENSORD_BASELINE_CENTRALIZED_H_

#include <cstddef>
#include <optional>

#include "net/network.h"
#include "net/node.h"
#include "stream/sliding_window.h"

namespace sensord {

/// A leaf that forwards every raw reading to its parent.
class CentralizedLeafNode : public Node {
 public:
  void OnReading(const Point& value) override;
  void HandleMessage(const Message& msg) override { (void)msg; }
};

/// An interior node that relays every raw reading toward the root; the root
/// collects readings into a window of `window_capacity` values.
class CentralizedRelayNode : public Node {
 public:
  /// Pre: window_capacity >= 1, dimensions >= 1.
  CentralizedRelayNode(size_t window_capacity, size_t dimensions);

  void HandleMessage(const Message& msg) override;

  /// The pooled window at the root (relays keep it empty).
  const SlidingWindow& window() const { return EnsureWindow(); }

 private:
  // Only the root ever stores readings, so the O(window_capacity) ring is
  // materialized on first use — interior relays (the vast majority) never
  // pay for it.
  SlidingWindow& EnsureWindow() const;

  size_t window_capacity_;
  size_t dimensions_;
  mutable std::optional<SlidingWindow> window_;
};

}  // namespace sensord

#endif  // SENSORD_BASELINE_CENTRALIZED_H_
