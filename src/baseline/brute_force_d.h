// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// BruteForce-D (Section 10, Comparisons): the exact, offline distance-based
// outlier detector. "This algorithm accesses all |W| points in the sliding
// window, and for each one of them, computes its distance to all the other
// points, guaranteeing to find all the true outliers." Time O(d|W|^2).
//
// It defines ground truth for the precision/recall experiments; the
// evaluation harness also keeps an incremental equivalent (eval/
// ground_truth.h) whose answers must — and in tests do — match this one.

#ifndef SENSORD_BASELINE_BRUTE_FORCE_D_H_
#define SENSORD_BASELINE_BRUTE_FORCE_D_H_

#include <vector>

#include "core/config.h"
#include "util/math_utils.h"

namespace sensord {

/// Exact number of points of `window` within L-infinity distance
/// config.radius of p. The count includes p itself if p is in the window —
/// consistent with the estimator-side N(p, r), which integrates over the
/// whole window distribution.
double BruteForceNeighborCount(const std::vector<Point>& window,
                               const Point& p,
                               const DistanceOutlierConfig& config);

/// Exact IsOutlier: true iff fewer than config.neighbor_threshold window
/// points lie within config.radius of p.
bool BruteForceIsDistanceOutlier(const std::vector<Point>& window,
                                 const Point& p,
                                 const DistanceOutlierConfig& config);

/// All distance-based outliers of a window instance: indices i such that
/// window[i] is a (D, r)-outlier with respect to the window. O(d|W|^2).
std::vector<size_t> BruteForceAllDistanceOutliers(
    const std::vector<Point>& window, const DistanceOutlierConfig& config);

}  // namespace sensord

#endif  // SENSORD_BASELINE_BRUTE_FORCE_D_H_
