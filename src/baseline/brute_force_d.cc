#include "baseline/brute_force_d.h"

namespace sensord {

double BruteForceNeighborCount(const std::vector<Point>& window,
                               const Point& p,
                               const DistanceOutlierConfig& config) {
  double count = 0.0;
  for (const Point& q : window) {
    if (ChebyshevDistance(p, q) <= config.radius) count += 1.0;
  }
  return count;
}

bool BruteForceIsDistanceOutlier(const std::vector<Point>& window,
                                 const Point& p,
                                 const DistanceOutlierConfig& config) {
  return BruteForceNeighborCount(window, p, config) <
         config.neighbor_threshold;
}

std::vector<size_t> BruteForceAllDistanceOutliers(
    const std::vector<Point>& window, const DistanceOutlierConfig& config) {
  std::vector<size_t> outliers;
  for (size_t i = 0; i < window.size(); ++i) {
    if (BruteForceIsDistanceOutlier(window, window[i], config)) {
      outliers.push_back(i);
    }
  }
  return outliers;
}

}  // namespace sensord
