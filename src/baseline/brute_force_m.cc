#include "baseline/brute_force_m.h"

#include "stats/empirical.h"

#include "util/check.h"

namespace sensord {

MdefResult BruteForceMdef(const std::vector<Point>& window, const Point& p,
                          const MdefConfig& config) {
  SENSORD_CHECK(!window.empty());
  auto empirical = EmpiricalDistribution::Create(window);
  SENSORD_CHECK_OK(empirical);
  return ComputeMdef(*empirical, p, config);
}

bool BruteForceIsMdefOutlier(const std::vector<Point>& window, const Point& p,
                             const MdefConfig& config) {
  return BruteForceMdef(window, p, config).is_outlier;
}

std::vector<size_t> BruteForceAllMdefOutliers(const std::vector<Point>& window,
                                              const MdefConfig& config) {
  SENSORD_CHECK(!window.empty());
  auto empirical = EmpiricalDistribution::Create(window);
  SENSORD_CHECK_OK(empirical);
  std::vector<size_t> outliers;
  for (size_t i = 0; i < window.size(); ++i) {
    if (ComputeMdef(*empirical, window[i], config).is_outlier) {
      outliers.push_back(i);
    }
  }
  return outliers;
}

}  // namespace sensord
