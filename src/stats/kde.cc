#include "stats/kde.h"

#include <algorithm>

#include "core/snapshot.h"
#include "obs/metrics.h"
#include "stats/bandwidth.h"

#include "util/check.h"

namespace sensord {
namespace {

// Per-query cost telemetry: the paper's O(d|R|) box-query bound — and the
// O(log|R| + |R'|) 1-d fast path — made observable as the number of kernel
// terms actually evaluated per query.
struct KdeMetrics {
  obs::Counter* box_queries;
  obs::Histogram* terms_per_query;
};

const KdeMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const KdeMetrics m{
      registry.GetCounter("stats.kde.box_queries"),
      registry.GetHistogram("stats.kde.terms_per_query",
                            obs::SizeBoundaries())};
  return m;
}

}  // namespace

StatusOr<KernelDensityEstimator> KernelDensityEstimator::Create(
    std::vector<Point> sample, std::vector<double> bandwidths) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE requires a non-empty sample");
  }
  if (bandwidths.empty()) {
    return Status::InvalidArgument("KDE requires at least one bandwidth");
  }
  for (const Point& p : sample) {
    if (p.size() != bandwidths.size()) {
      return Status::InvalidArgument(
          "sample point dimensionality does not match bandwidth count");
    }
  }
  for (double b : bandwidths) {
    if (!(b > 0.0)) {
      return Status::InvalidArgument("bandwidths must be positive");
    }
  }
  return KernelDensityEstimator(std::move(sample), std::move(bandwidths));
}

StatusOr<KernelDensityEstimator>
KernelDensityEstimator::CreateWithScottBandwidths(
    std::vector<Point> sample, const std::vector<double>& stddevs) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE requires a non-empty sample");
  }
  return Create(std::move(sample), ScottBandwidths(stddevs, sample.size()));
}

KernelDensityEstimator::KernelDensityEstimator(std::vector<Point> sample,
                                               std::vector<double> bandwidths)
    : sample_(std::move(sample)), sample_size_(sample_.size()) {
  kernels_.reserve(bandwidths.size());
  for (double b : bandwidths) kernels_.emplace_back(b);
  if (kernels_.size() == 1) {
    std::sort(sample_.begin(), sample_.end(),
              [](const Point& a, const Point& b) { return a[0] < b[0]; });
    sorted_1d_.reserve(sample_.size());
    for (const Point& p : sample_) sorted_1d_.push_back(p[0]);
  }
}

std::vector<double> KernelDensityEstimator::bandwidths() const {
  std::vector<double> out;
  out.reserve(kernels_.size());
  for (const auto& k : kernels_) out.push_back(k.bandwidth());
  return out;
}

double KernelDensityEstimator::Interval1dProbability(double lo,
                                                     double hi) const {
  const EpanechnikovKernel& kernel = kernels_[0];
  const double b = kernel.bandwidth();
  // Kernels centred in [lo - B, hi + B] may contribute; kernels centred in
  // [lo + B, hi - B] have their full support inside the interval and
  // contribute exactly 1 each.
  const auto touch_begin =
      std::lower_bound(sorted_1d_.begin(), sorted_1d_.end(), lo - b);
  const auto touch_end =
      std::upper_bound(sorted_1d_.begin(), sorted_1d_.end(), hi + b);
  Metrics().terms_per_query->Record(
      static_cast<double>(touch_end - touch_begin));

  double mass = 0.0;
  auto partial_until = touch_end;
  auto partial_resume = touch_end;
  if (lo + b <= hi - b) {
    const auto full_begin =
        std::lower_bound(touch_begin, touch_end, lo + b);
    const auto full_end = std::upper_bound(full_begin, touch_end, hi - b);
    mass += static_cast<double>(full_end - full_begin);
    partial_until = full_begin;
    partial_resume = full_end;
  }
  for (auto it = touch_begin; it != partial_until; ++it) {
    mass += kernel.MassInInterval(*it, lo, hi);
  }
  for (auto it = partial_resume; it != touch_end; ++it) {
    mass += kernel.MassInInterval(*it, lo, hi);
  }
  return mass / static_cast<double>(sample_size_);
}

double KernelDensityEstimator::BoxProbability(const Point& lo,
                                              const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), dimensions());
  SENSORD_DCHECK_EQ(hi.size(), dimensions());
  Metrics().box_queries->Increment();
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) return 0.0;  // inverted box: empty
  }
  if (dimensions() == 1) return Interval1dProbability(lo[0], hi[0]);

  // Every kernel term is touched in d > 1 (the O(d|R|) general path).
  Metrics().terms_per_query->Record(static_cast<double>(sample_.size()));
  double total = 0.0;
  for (const Point& t : sample_) {
    double contrib = 1.0;
    for (size_t i = 0; i < kernels_.size() && contrib > 0.0; ++i) {
      contrib *= kernels_[i].MassInInterval(t[i], lo[i], hi[i]);
    }
    total += contrib;
  }
  return total / static_cast<double>(sample_size_);
}

void KernelDensityEstimator::BoxProbabilityBatch(
    const std::vector<Point>& lo, const std::vector<Point>& hi,
    std::vector<double>* out) const {
  const size_t queries = lo.size();
  SENSORD_DCHECK_EQ(hi.size(), queries);
  if (queries == 0) {
    out->clear();
    return;
  }
  if (dimensions() == 1) {
    // The sorted 1-d path only touches kernels intersecting each query;
    // batching could not reduce that further.
    out->resize(queries);
    for (size_t q = 0; q < queries; ++q) {
      (*out)[q] = BoxProbability(lo[q], hi[q]);
    }
    return;
  }

  const size_t d = dimensions();
  out->assign(queries, 0.0);
  // Mirror the per-query metrics exactly: one box_queries tick per box, and
  // the full |R| term count for every non-inverted box (the general path
  // touches every kernel term; the bounding-box reject below only skips
  // terms whose contribution is exactly zero).
  std::vector<char> live(queries, 1);
  Point batch_lo(d, 1.0), batch_hi(d, 0.0);
  size_t live_count = 0;
  for (size_t q = 0; q < queries; ++q) {
    SENSORD_DCHECK_EQ(lo[q].size(), d);
    SENSORD_DCHECK_EQ(hi[q].size(), d);
    Metrics().box_queries->Increment();
    for (size_t i = 0; i < d; ++i) {
      if (lo[q][i] > hi[q][i]) live[q] = 0;  // inverted box: empty
    }
    if (!live[q]) continue;
    Metrics().terms_per_query->Record(static_cast<double>(sample_.size()));
    ++live_count;
    for (size_t i = 0; i < d; ++i) {
      batch_lo[i] = std::min(batch_lo[i], lo[q][i]);
      batch_hi[i] = std::max(batch_hi[i], hi[q][i]);
    }
  }
  if (live_count == 0) return;

  for (const Point& t : sample_) {
    // One support test against the union of all boxes before any per-box
    // work: a kernel outside it adds exactly 0.0 everywhere.
    bool overlaps = true;
    for (size_t i = 0; i < d && overlaps; ++i) {
      const double b = kernels_[i].bandwidth();
      overlaps = t[i] + b > batch_lo[i] && t[i] - b < batch_hi[i];
    }
    if (!overlaps) continue;
    for (size_t q = 0; q < queries; ++q) {
      if (!live[q]) continue;
      double contrib = 1.0;
      for (size_t i = 0; i < d && contrib > 0.0; ++i) {
        contrib *= kernels_[i].MassInInterval(t[i], lo[q][i], hi[q][i]);
      }
      (*out)[q] += contrib;
    }
  }
  // Divide (not multiply by a reciprocal): bit-identical to BoxProbability.
  for (size_t q = 0; q < queries; ++q) {
    (*out)[q] /= static_cast<double>(sample_size_);
  }
}

double KernelDensityEstimator::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), dimensions());
  if (dimensions() == 1) {
    const double b = kernels_[0].bandwidth();
    const auto begin =
        std::lower_bound(sorted_1d_.begin(), sorted_1d_.end(), p[0] - b);
    const auto end =
        std::upper_bound(sorted_1d_.begin(), sorted_1d_.end(), p[0] + b);
    double total = 0.0;
    for (auto it = begin; it != end; ++it) {
      total += kernels_[0].Value(p[0] - *it);
    }
    return total / static_cast<double>(sample_size_);
  }
  double total = 0.0;
  for (const Point& t : sample_) {
    double contrib = 1.0;
    for (size_t i = 0; i < kernels_.size() && contrib > 0.0; ++i) {
      contrib *= kernels_[i].Value(p[i] - t[i]);
    }
    total += contrib;
  }
  return total / static_cast<double>(sample_size_);
}

void KernelDensityEstimator::Serialize(SnapshotWriter* writer) const {
  writer->PutDoubles(bandwidths());
  writer->PutU32(static_cast<uint32_t>(sample_.size()));
  for (const Point& p : sample_) writer->PutPoint(p);
}

StatusOr<KernelDensityEstimator> KernelDensityEstimator::Deserialize(
    SnapshotReader* reader) {
  std::vector<double> bandwidths = reader->TakeDoubles();
  const uint32_t n = reader->TakeU32();
  std::vector<Point> sample;
  sample.reserve(n);
  for (uint32_t i = 0; i < n; ++i) sample.push_back(reader->TakePoint());
  if (!reader->ok()) {
    return Status::InvalidArgument("KDE snapshot truncated");
  }
  return Create(std::move(sample), std::move(bandwidths));
}

size_t KernelDensityEstimator::MemoryBytes(size_t bytes_per_number) const {
  const size_t numbers = sample_size_ * dimensions() + dimensions();
  return numbers * bytes_per_number;
}

}  // namespace sensord
