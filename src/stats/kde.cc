#include "stats/kde.h"

#include <algorithm>
#include <limits>

#include "core/snapshot.h"
#include "obs/metrics.h"
#include "stats/bandwidth.h"

#include "util/check.h"

namespace sensord {
namespace {

// Per-query cost telemetry: the paper's O(d|R|) box-query bound — and the
// O(log|R| + |R'|) pruned paths — made observable as the number of kernel
// terms actually evaluated per query. terms_per_query records, for every
// box (batched or not), the primary-axis candidate count |R'|;
// batch_swept_terms counts the rows a batched sweep actually loads (the
// union candidate range), which is what the batching saves on top of
// per-box pruning.
struct KdeMetrics {
  obs::Counter* box_queries;
  obs::Histogram* terms_per_query;
  obs::Counter* batch_swept_terms;
};

const KdeMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const KdeMetrics m{
      registry.GetCounter("stats.kde.box_queries"),
      registry.GetHistogram("stats.kde.terms_per_query",
                            obs::SizeBoundaries()),
      registry.GetCounter("stats.kde.batch_swept_terms")};
  return m;
}

}  // namespace

StatusOr<KernelDensityEstimator> KernelDensityEstimator::Create(
    FlatPoints sample, std::vector<double> bandwidths) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE requires a non-empty sample");
  }
  if (bandwidths.empty()) {
    return Status::InvalidArgument("KDE requires at least one bandwidth");
  }
  if (sample.dimensions() != bandwidths.size()) {
    return Status::InvalidArgument(
        "sample point dimensionality does not match bandwidth count");
  }
  for (double b : bandwidths) {
    if (!(b > 0.0)) {
      return Status::InvalidArgument("bandwidths must be positive");
    }
  }
  return KernelDensityEstimator(std::move(sample), std::move(bandwidths));
}

StatusOr<KernelDensityEstimator> KernelDensityEstimator::Create(
    const std::vector<Point>& sample, std::vector<double> bandwidths) {
  for (const Point& p : sample) {
    if (p.size() != bandwidths.size()) {
      return Status::InvalidArgument(
          "sample point dimensionality does not match bandwidth count");
    }
  }
  return Create(FlatPoints::FromPoints(sample), std::move(bandwidths));
}

StatusOr<KernelDensityEstimator>
KernelDensityEstimator::CreateWithScottBandwidths(
    FlatPoints sample, const std::vector<double>& stddevs) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE requires a non-empty sample");
  }
  const size_t n = sample.size();
  return Create(std::move(sample), ScottBandwidths(stddevs, n));
}

StatusOr<KernelDensityEstimator>
KernelDensityEstimator::CreateWithScottBandwidths(
    const std::vector<Point>& sample, const std::vector<double>& stddevs) {
  if (sample.empty()) {
    return Status::InvalidArgument("KDE requires a non-empty sample");
  }
  return Create(sample, ScottBandwidths(stddevs, sample.size()));
}

KernelDensityEstimator::KernelDensityEstimator(FlatPoints sample,
                                               std::vector<double> bandwidths)
    : sample_(std::move(sample)), sample_size_(sample_.size()) {
  kernels_.reserve(bandwidths.size());
  for (double b : bandwidths) kernels_.emplace_back(b);
  Canonicalize();
}

void KernelDensityEstimator::Canonicalize() {
  const size_t d = kernels_.size();
  if (d == 1) {
    // 1-d canonical order is the plain sorted order; the flat buffer *is*
    // the sorted coordinate array the fast path binary-searches.
    std::vector<double>& coords = *sample_.mutable_data();
    std::sort(coords.begin(), coords.end());
    return;
  }
  // Primary axis: the axis where a sorted-order window [lo - B, hi + B]
  // prunes best, i.e. with the largest spread/bandwidth ratio. Ties go to
  // the smallest axis index (strict > below), so the choice — and with it
  // the canonical order and every downstream artifact — is deterministic.
  double best_ratio = -1.0;
  for (size_t i = 0; i < d; ++i) {
    double lo = sample_.At(0, i), hi = lo;
    for (size_t row = 1; row < sample_size_; ++row) {
      const double v = sample_.At(row, i);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double ratio = (hi - lo) / kernels_[i].bandwidth();
    if (ratio > best_ratio) {
      best_ratio = ratio;
      primary_axis_ = i;
    }
  }
  // Canonical order: primary-axis coordinate ascending, ties broken
  // lexicographically over all coordinates. Rows still tied after that are
  // coordinate-identical — interchangeable for every query — so the
  // unstable in-place heapsort yields a canonical order of observables.
  const FlatPoints& s = sample_;
  const size_t axis = primary_axis_;
  sample_.SortRows([&s, axis, d](size_t a, size_t b) {
    const double* ra = s.Row(a);
    const double* rb = s.Row(b);
    if (ra[axis] != rb[axis]) return ra[axis] < rb[axis];
    for (size_t i = 0; i < d; ++i) {
      if (ra[i] != rb[i]) return ra[i] < rb[i];
    }
    return false;
  });
}

std::vector<double> KernelDensityEstimator::bandwidths() const {
  std::vector<double> out;
  out.reserve(kernels_.size());
  for (const auto& k : kernels_) out.push_back(k.bandwidth());
  return out;
}

size_t KernelDensityEstimator::LowerBoundRow(double v) const {
  size_t lo = 0, hi = sample_size_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (sample_.At(mid, primary_axis_) < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t KernelDensityEstimator::UpperBoundRow(double v) const {
  size_t lo = 0, hi = sample_size_;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (sample_.At(mid, primary_axis_) <= v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> KernelDensityEstimator::CandidateRows(
    double axis_lo, double axis_hi) const {
  const double b = kernels_[primary_axis_].bandwidth();
  const size_t begin = LowerBoundRow(axis_lo - b);
  const size_t end = UpperBoundRow(axis_hi + b);
  return {begin, std::max(begin, end)};
}

double KernelDensityEstimator::Interval1dProbability(double lo,
                                                     double hi) const {
  const EpanechnikovKernel& kernel = kernels_[0];
  const double b = kernel.bandwidth();
  const std::vector<double>& sorted = sample_.data();
  // Kernels centred in [lo - B, hi + B] may contribute; kernels centred in
  // [lo + B, hi - B] have their full support inside the interval and
  // contribute exactly 1 each.
  const auto touch_begin =
      std::lower_bound(sorted.begin(), sorted.end(), lo - b);
  const auto touch_end =
      std::upper_bound(sorted.begin(), sorted.end(), hi + b);
  Metrics().terms_per_query->Record(
      static_cast<double>(touch_end - touch_begin));

  double mass = 0.0;
  auto partial_until = touch_end;
  auto partial_resume = touch_end;
  if (lo + b <= hi - b) {
    const auto full_begin =
        std::lower_bound(touch_begin, touch_end, lo + b);
    const auto full_end = std::upper_bound(full_begin, touch_end, hi - b);
    mass += static_cast<double>(full_end - full_begin);
    partial_until = full_begin;
    partial_resume = full_end;
  }
  for (auto it = touch_begin; it != partial_until; ++it) {
    mass += kernel.MassInInterval(*it, lo, hi);
  }
  for (auto it = partial_resume; it != touch_end; ++it) {
    mass += kernel.MassInInterval(*it, lo, hi);
  }
  return mass / static_cast<double>(sample_size_);
}

double KernelDensityEstimator::BoxProbability(const Point& lo,
                                              const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), dimensions());
  SENSORD_DCHECK_EQ(hi.size(), dimensions());
  Metrics().box_queries->Increment();
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] > hi[i]) return 0.0;  // inverted box: empty
  }
  if (dimensions() == 1) return Interval1dProbability(lo[0], hi[0]);

  // d > 1: only the canonical rows whose primary-axis coordinate falls in
  // [lo_a - B_a, hi_a + B_a] can have nonzero mass in the box; every other
  // row's primary-axis factor is exactly 0, so restricting the sweep keeps
  // the sum bit-identical to the full canonical-order sweep.
  const size_t d = dimensions();
  const auto [begin, end] =
      CandidateRows(lo[primary_axis_], hi[primary_axis_]);
  Metrics().terms_per_query->Record(static_cast<double>(end - begin));
  double total = 0.0;
  for (size_t row = begin; row < end; ++row) {
    const double* t = sample_.Row(row);
    double contrib = 1.0;
    for (size_t i = 0; i < d && contrib > 0.0; ++i) {
      contrib *= kernels_[i].MassInInterval(t[i], lo[i], hi[i]);
    }
    total += contrib;
  }
  return total / static_cast<double>(sample_size_);
}

void KernelDensityEstimator::BoxProbabilityBatch(
    const std::vector<Point>& lo, const std::vector<Point>& hi,
    std::vector<double>* out) const {
  const size_t queries = lo.size();
  SENSORD_DCHECK_EQ(hi.size(), queries);
  if (queries == 0) {
    out->clear();
    return;
  }
  if (dimensions() == 1) {
    // The sorted 1-d path only touches kernels intersecting each query;
    // batching could not reduce that further.
    out->resize(queries);
    for (size_t q = 0; q < queries; ++q) {
      (*out)[q] = BoxProbability(lo[q], hi[q]);
    }
    return;
  }

  const size_t d = dimensions();
  out->assign(queries, 0.0);
  // Union of the live boxes, seeded empty at ±infinity: the batch must not
  // assume the [0,1]^d domain, or out-of-domain boxes would widen the union
  // instead of leaving it empty (and a batch of them would sweep the whole
  // sample for an all-zero answer).
  std::vector<char> live(queries, 1);
  Point batch_lo(d, std::numeric_limits<double>::infinity());
  Point batch_hi(d, -std::numeric_limits<double>::infinity());
  size_t live_count = 0;
  for (size_t q = 0; q < queries; ++q) {
    SENSORD_DCHECK_EQ(lo[q].size(), d);
    SENSORD_DCHECK_EQ(hi[q].size(), d);
    Metrics().box_queries->Increment();
    for (size_t i = 0; i < d; ++i) {
      if (lo[q][i] > hi[q][i]) live[q] = 0;  // inverted box: empty
    }
    if (!live[q]) continue;
    // Metric parity with the per-query path: record this box's own
    // primary-axis candidate count, exactly what BoxProbability would.
    const auto [q_begin, q_end] =
        CandidateRows(lo[q][primary_axis_], hi[q][primary_axis_]);
    Metrics().terms_per_query->Record(static_cast<double>(q_end - q_begin));
    ++live_count;
    for (size_t i = 0; i < d; ++i) {
      batch_lo[i] = std::min(batch_lo[i], lo[q][i]);
      batch_hi[i] = std::max(batch_hi[i], hi[q][i]);
    }
  }
  if (live_count == 0) return;

  // One sweep over the union's candidate range; each row is loaded once and
  // support-tested against the union box before any per-box work. Skipped
  // rows (outside the range or failing the union test) add exactly 0.0 to
  // every box, so per-box accumulation order matches BoxProbability's
  // canonical-order sum bit for bit.
  const auto [sweep_begin, sweep_end] =
      CandidateRows(batch_lo[primary_axis_], batch_hi[primary_axis_]);
  Metrics().batch_swept_terms->Increment(
      static_cast<uint64_t>(sweep_end - sweep_begin));
  for (size_t row = sweep_begin; row < sweep_end; ++row) {
    const double* t = sample_.Row(row);
    bool overlaps = true;
    for (size_t i = 0; i < d && overlaps; ++i) {
      const double b = kernels_[i].bandwidth();
      overlaps = t[i] + b > batch_lo[i] && t[i] - b < batch_hi[i];
    }
    if (!overlaps) continue;
    for (size_t q = 0; q < queries; ++q) {
      if (!live[q]) continue;
      double contrib = 1.0;
      for (size_t i = 0; i < d && contrib > 0.0; ++i) {
        contrib *= kernels_[i].MassInInterval(t[i], lo[q][i], hi[q][i]);
      }
      (*out)[q] += contrib;
    }
  }
  // Divide (not multiply by a reciprocal): bit-identical to BoxProbability.
  for (size_t q = 0; q < queries; ++q) {
    (*out)[q] /= static_cast<double>(sample_size_);
  }
}

double KernelDensityEstimator::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), dimensions());
  if (dimensions() == 1) {
    const std::vector<double>& sorted = sample_.data();
    const double b = kernels_[0].bandwidth();
    const auto begin =
        std::lower_bound(sorted.begin(), sorted.end(), p[0] - b);
    const auto end = std::upper_bound(sorted.begin(), sorted.end(), p[0] + b);
    double total = 0.0;
    for (auto it = begin; it != end; ++it) {
      total += kernels_[0].Value(p[0] - *it);
    }
    return total / static_cast<double>(sample_size_);
  }
  // d > 1: rows outside the primary-axis support window have a zero kernel
  // factor on that axis, so the candidate restriction is bit-identical to
  // the full canonical-order sweep (same argument as BoxProbability).
  const size_t d = dimensions();
  const auto [begin, end] = CandidateRows(p[primary_axis_], p[primary_axis_]);
  double total = 0.0;
  for (size_t row = begin; row < end; ++row) {
    const double* t = sample_.Row(row);
    double contrib = 1.0;
    for (size_t i = 0; i < d && contrib > 0.0; ++i) {
      contrib *= kernels_[i].Value(p[i] - t[i]);
    }
    total += contrib;
  }
  return total / static_cast<double>(sample_size_);
}

void KernelDensityEstimator::Serialize(SnapshotWriter* writer) const {
  writer->PutDoubles(bandwidths());
  writer->PutU32(static_cast<uint32_t>(sample_size_));
  // Same bytes PutPoint() would emit per row, without materializing one.
  const uint32_t d = static_cast<uint32_t>(dimensions());
  for (size_t row = 0; row < sample_size_; ++row) {
    writer->PutU32(d);
    const double* t = sample_.Row(row);
    for (uint32_t i = 0; i < d; ++i) writer->PutDouble(t[i]);
  }
}

StatusOr<KernelDensityEstimator> KernelDensityEstimator::Deserialize(
    SnapshotReader* reader) {
  std::vector<double> bandwidths = reader->TakeDoubles();
  const uint32_t n = reader->TakeU32();
  FlatPoints sample(bandwidths.size());
  sample.Reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t point_dims = reader->TakeU32();
    if (!reader->ok()) break;
    if (point_dims != bandwidths.size()) {
      return Status::InvalidArgument(
          "sample point dimensionality does not match bandwidth count");
    }
    double* row = sample.AppendRow();
    for (uint32_t c = 0; c < point_dims; ++c) row[c] = reader->TakeDouble();
  }
  if (!reader->ok()) {
    return Status::InvalidArgument("KDE snapshot truncated");
  }
  return Create(std::move(sample), std::move(bandwidths));
}

size_t KernelDensityEstimator::MemoryBytes(size_t bytes_per_number) const {
  const size_t numbers = sample_size_ * dimensions() + dimensions();
  return numbers * bytes_per_number;
}

}  // namespace sensord
