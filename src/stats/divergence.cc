#include "stats/divergence.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace sensord {
namespace {

// Normalizes v to sum 1 in place; returns false if the sum is zero.
bool Normalize(std::vector<double>* v) {
  double sum = 0.0;
  for (double x : *v) sum += x;
  if (sum <= 0.0) return false;
  for (double& x : *v) x /= sum;
  return true;
}

}  // namespace

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  SENSORD_CHECK(!p.empty());
  SENSORD_CHECK_EQ(p.size(), q.size());
  double d = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return std::numeric_limits<double>::infinity();
    d += p[i] * std::log2(p[i] / q[i]);
  }
  return d;
}

double JsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  SENSORD_CHECK(!p.empty());
  SENSORD_CHECK_EQ(p.size(), q.size());
  std::vector<double> pn(p), qn(q);
  const bool ok_p = Normalize(&pn);
  const bool ok_q = Normalize(&qn);
  SENSORD_DCHECK(ok_p && ok_q && "JS divergence of an all-zero distribution");
  if (!ok_p || !ok_q) return 0.0;

  double d = 0.0;
  for (size_t i = 0; i < pn.size(); ++i) {
    const double m = 0.5 * (pn[i] + qn[i]);
    if (pn[i] > 0.0) d += 0.5 * pn[i] * std::log2(pn[i] / m);
    if (qn[i] > 0.0) d += 0.5 * qn[i] * std::log2(qn[i] / m);
  }
  // Numerical noise can push the result epsilon-negative.
  return d < 0.0 ? 0.0 : d;
}

std::vector<double> DiscretizeOnGrid(const DistributionEstimator& estimator,
                                     size_t cells_per_dim) {
  SENSORD_CHECK_GE(cells_per_dim, 1u);
  const size_t d = estimator.dimensions();
  size_t total = 1;
  for (size_t i = 0; i < d; ++i) total *= cells_per_dim;

  const double width = 1.0 / static_cast<double>(cells_per_dim);
  std::vector<double> mass(total);
  Point lo(d), hi(d);
  for (size_t c = 0; c < total; ++c) {
    size_t rest = c;
    for (size_t dim = d; dim-- > 0;) {
      const size_t b = rest % cells_per_dim;
      rest /= cells_per_dim;
      lo[dim] = static_cast<double>(b) * width;
      hi[dim] = lo[dim] + width;
    }
    mass[c] = estimator.BoxProbability(lo, hi);
  }
  Normalize(&mass);
  return mass;
}

StatusOr<double> JsDivergenceOnGrid(const DistributionEstimator& p,
                                    const DistributionEstimator& q,
                                    size_t cells_per_dim) {
  if (p.dimensions() != q.dimensions()) {
    return Status::InvalidArgument("estimator dimensionality mismatch");
  }
  if (cells_per_dim == 0) {
    return Status::InvalidArgument("grid must have at least one cell");
  }
  const std::vector<double> pg = DiscretizeOnGrid(p, cells_per_dim);
  const std::vector<double> qg = DiscretizeOnGrid(q, cells_per_dim);
  return JsDivergence(pg, qg);
}

}  // namespace sensord
