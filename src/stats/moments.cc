#include "stats/moments.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/math_utils.h"

#include "util/check.h"

namespace sensord {

std::string SummaryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "min=%.3f max=%.3f mean=%.3f median=%.3f stddev=%.3f "
                "skew=%.3f",
                min, max, mean, median, stddev, skew);
  return buf;
}

SummaryStats Summarize(const std::vector<double>& values) {
  SENSORD_CHECK(!values.empty());
  MomentsAccumulator acc;
  for (double v : values) acc.Add(v);
  SummaryStats s;
  s.min = acc.min();
  s.max = acc.max();
  s.mean = acc.mean();
  s.median = Median(values);
  s.stddev = acc.StdDev();
  s.skew = acc.Skewness();
  return s;
}

void MomentsAccumulator::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // One-pass update of central moments (Welford / Terriberry).
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double MomentsAccumulator::Variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double MomentsAccumulator::StdDev() const { return std::sqrt(Variance()); }

double MomentsAccumulator::Skewness() const {
  if (n_ < 3) return 0.0;
  const double var = Variance();
  if (var <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return (m3_ / n) / std::pow(var, 1.5);
}

}  // namespace sensord
