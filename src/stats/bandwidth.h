// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Bandwidth selection for the kernel estimator.
//
// The paper uses Scott's rule [Scott, 1992] adapted to the Epanechnikov
// kernel: per dimension i,
//   B_i = sqrt(5) * sigma_i * |R|^(-1 / (d + 4)),
// where sigma_i is the standard deviation of the window values in dimension
// i (supplied, in the online system, by the epsilon-approximate variance
// sketch). This is the single parameter the paper's estimator has to fit —
// its headline advantage over parametric model-fitting approaches.

#ifndef SENSORD_STATS_BANDWIDTH_H_
#define SENSORD_STATS_BANDWIDTH_H_

#include <cstddef>
#include <vector>

namespace sensord {

/// The smallest bandwidth ever returned. A zero standard deviation (a
/// constant stream) would otherwise degenerate the kernel into a Dirac spike
/// and break the closed-form integration.
inline constexpr double kMinBandwidth = 1e-4;

/// Scott's-rule bandwidth for one dimension of a d-dimensional sample of
/// size sample_size. Pre: sample_size > 0, d > 0, stddev >= 0.
double ScottBandwidth(double stddev, size_t sample_size, size_t dimensions);

/// Scott's-rule bandwidths for all dimensions at once.
/// Pre: sample_size > 0, stddevs non-empty.
std::vector<double> ScottBandwidths(const std::vector<double>& stddevs,
                                    size_t sample_size);

/// Robust spread estimate for bandwidth selection: min(stddev, IQR/1.349)
/// (Silverman's practical rule). On spiky or heavy-tailed data the IQR term
/// keeps the bandwidth matched to the dense bulk instead of being inflated
/// by rare excursions. Pre: iqr >= 0, stddev >= 0.
double RobustSpread(double stddev, double iqr);

}  // namespace sensord

#endif  // SENSORD_STATS_BANDWIDTH_H_
