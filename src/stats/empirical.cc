#include "stats/empirical.h"

#include <algorithm>

#include "util/check.h"

namespace sensord {

StatusOr<EmpiricalDistribution> EmpiricalDistribution::Create(
    std::vector<Point> data) {
  if (data.empty()) {
    return Status::InvalidArgument("empirical distribution requires data");
  }
  const size_t d = data[0].size();
  if (d == 0) {
    return Status::InvalidArgument("dimensionality must be >= 1");
  }
  for (const Point& p : data) {
    if (p.size() != d) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }
  return EmpiricalDistribution(std::move(data));
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<Point> data)
    : data_(std::move(data)), dimensions_(data_[0].size()) {
  if (dimensions_ == 1) {
    sorted_1d_.reserve(data_.size());
    for (const Point& p : data_) sorted_1d_.push_back(p[0]);
    std::sort(sorted_1d_.begin(), sorted_1d_.end());
  }
}

double EmpiricalDistribution::BoxProbability(const Point& lo,
                                             const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), dimensions_);
  SENSORD_DCHECK_EQ(hi.size(), dimensions_);
  for (size_t i = 0; i < dimensions_; ++i) {
    if (lo[i] > hi[i]) return 0.0;  // inverted box: empty
  }
  if (dimensions_ == 1) {
    const auto begin =
        std::lower_bound(sorted_1d_.begin(), sorted_1d_.end(), lo[0]);
    const auto end =
        std::upper_bound(sorted_1d_.begin(), sorted_1d_.end(), hi[0]);
    return static_cast<double>(end - begin) /
           static_cast<double>(sorted_1d_.size());
  }
  size_t count = 0;
  for (const Point& p : data_) {
    bool inside = true;
    for (size_t i = 0; i < dimensions_ && inside; ++i) {
      inside = p[i] >= lo[i] && p[i] <= hi[i];
    }
    if (inside) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(data_.size());
}

double EmpiricalDistribution::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), dimensions_);
  Point lo(p), hi(p);
  double volume = 1.0;
  for (size_t i = 0; i < dimensions_; ++i) {
    lo[i] -= kPdfHalfWidth;
    hi[i] += kPdfHalfWidth;
    volume *= 2.0 * kPdfHalfWidth;
  }
  return BoxProbability(lo, hi) / volume;
}

}  // namespace sensord
