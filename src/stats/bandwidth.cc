#include "stats/bandwidth.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sensord {

double ScottBandwidth(double stddev, size_t sample_size, size_t dimensions) {
  SENSORD_CHECK_GT(sample_size, 0u);
  SENSORD_CHECK_GT(dimensions, 0u);
  SENSORD_CHECK_GE(stddev, 0.0);
  const double exponent = -1.0 / (static_cast<double>(dimensions) + 4.0);
  const double b = std::sqrt(5.0) * stddev *
                   std::pow(static_cast<double>(sample_size), exponent);
  return std::max(b, kMinBandwidth);
}

double RobustSpread(double stddev, double iqr) {
  SENSORD_CHECK_GE(stddev, 0.0);
  SENSORD_CHECK_GE(iqr, 0.0);
  // The 1.349 factor makes IQR/1.349 estimate sigma for Gaussian data, so
  // on well-behaved data the two agree and min() changes nothing.
  const double robust = iqr / 1.349;
  if (robust <= 0.0) return stddev;  // degenerate IQR: fall back
  return std::min(stddev, robust);
}

std::vector<double> ScottBandwidths(const std::vector<double>& stddevs,
                                    size_t sample_size) {
  SENSORD_CHECK(!stddevs.empty());
  std::vector<double> out;
  out.reserve(stddevs.size());
  for (double s : stddevs) {
    out.push_back(ScottBandwidth(s, sample_size, stddevs.size()));
  }
  return out;
}

}  // namespace sensord
