// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The exact empirical distribution of a point set.
//
// Used as the reference distribution in estimation-accuracy experiments
// (Figure 6 measures the JS divergence between the kernel estimate and the
// distribution that actually generated the window) and by tests that check
// the KDE converges to the data. Not part of the sensor-side system: it
// stores every point.

#ifndef SENSORD_STATS_EMPIRICAL_H_
#define SENSORD_STATS_EMPIRICAL_H_

#include <vector>

#include "stats/estimator.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Exact empirical distribution: BoxProbability is the fraction of stored
/// points inside the box. Pdf smooths with a small fixed-width box so the
/// divergence grid machinery can treat it like any other estimator.
class EmpiricalDistribution : public DistributionEstimator {
 public:
  /// Pre: data non-empty with consistent dimensionality.
  static StatusOr<EmpiricalDistribution> Create(std::vector<Point> data);

  size_t dimensions() const override { return dimensions_; }

  double BoxProbability(const Point& lo, const Point& hi) const override;

  /// Density approximated as the mass of a +/- kPdfHalfWidth box around p,
  /// divided by the box volume.
  double Pdf(const Point& p) const override;

  size_t size() const { return data_.size(); }

  /// Half-width of the smoothing box used by Pdf().
  static constexpr double kPdfHalfWidth = 0.005;

 private:
  explicit EmpiricalDistribution(std::vector<Point> data);

  std::vector<Point> data_;
  std::vector<double> sorted_1d_;  // fast path when dimensions_ == 1
  size_t dimensions_;
};

}  // namespace sensord

#endif  // SENSORD_STATS_EMPIRICAL_H_
