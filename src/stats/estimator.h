// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The common interface of all distribution approximations in sensord.
//
// Everything the paper does with a data distribution — distance-based
// neighbourhood counts N(p, r) (Eq. 4), MDEF cell counts (Figure 3), range
// query answering (Section 9) and model-to-model divergences (Section 6) —
// reduces to probability mass of axis-aligned boxes. Kernel estimators,
// equi-depth histograms, exact empirical distributions and the analytic
// generator distributions all implement this one interface, so detection
// algorithms, baselines and divergence computations are estimator-agnostic.

#ifndef SENSORD_STATS_ESTIMATOR_H_
#define SENSORD_STATS_ESTIMATOR_H_

#include <cstddef>
#include <vector>

#include "util/math_utils.h"

namespace sensord {

/// A probability distribution over [0,1]^d that can integrate itself over
/// axis-aligned boxes and evaluate its density pointwise.
class DistributionEstimator {
 public:
  virtual ~DistributionEstimator() = default;

  /// Data dimensionality d.
  virtual size_t dimensions() const = 0;

  /// Probability mass of the box [lo, hi] (componentwise). Coordinates may
  /// extend beyond [0,1]; mass outside the support is zero. A box inverted
  /// in any dimension (lo[i] > hi[i]) is empty and has zero mass.
  /// Pre: lo.size() == hi.size() == dimensions().
  virtual double BoxProbability(const Point& lo, const Point& hi) const = 0;

  /// Probability mass of the L-infinity ball of radius r centred at p:
  /// the paper's P(p, r) = P[p - r, p + r] (Eq. 5).
  double BallProbability(const Point& p, double r) const {
    Point lo(p), hi(p);
    for (size_t i = 0; i < p.size(); ++i) {
      lo[i] -= r;
      hi[i] += r;
    }
    return BoxProbability(lo, hi);
  }

  /// Batched form of BoxProbability: out[q] = BoxProbability(lo[q], hi[q])
  /// for every q, with identical values and identical per-query metrics.
  /// The default is the plain query loop; estimators override it when a
  /// whole batch can be answered in one pass over their state (the KDE
  /// answers a batch in a single sweep of the union box's primary-axis
  /// candidate range — the cell scans of the MDEF
  /// detector and sliced range queries issue dozens of adjacent boxes at
  /// once). Pre: lo.size() == hi.size(), every box has dimensions() coords.
  virtual void BoxProbabilityBatch(const std::vector<Point>& lo,
                                   const std::vector<Point>& hi,
                                   std::vector<double>* out) const {
    out->resize(lo.size());
    for (size_t q = 0; q < lo.size(); ++q) {
      (*out)[q] = BoxProbability(lo[q], hi[q]);
    }
  }

  /// Density at point p.
  virtual double Pdf(const Point& p) const = 0;

  /// The paper's N(p, r) (Eq. 4): estimated number of window values within
  /// L-infinity distance r of p, given the window population size.
  double NeighborCount(const Point& p, double r, double window_count) const {
    return BallProbability(p, r) * window_count;
  }
};

}  // namespace sensord

#endif  // SENSORD_STATS_ESTIMATOR_H_
