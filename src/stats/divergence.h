// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Distribution distances (Section 6 of the paper).
//
// The KL divergence is undefined whenever the second model assigns zero
// probability where the first does not — which kernel estimators routinely
// do outside their sample's support. The paper therefore uses the
// Jensen-Shannon divergence, evaluated by discretizing both models on a
// finite grid b_1..b_k (Eq. 8). With base-2 logarithms JS ranges over
// [0, 1], matching the "distance ranges from 0 to 1" statement in
// Section 10.1. These distances drive the Figure 6 estimation-accuracy
// experiment, the MGDD "push the global model only when it changed"
// optimization (Section 8.1) and the faulty-sensor application (Section 9).

#ifndef SENSORD_STATS_DIVERGENCE_H_
#define SENSORD_STATS_DIVERGENCE_H_

#include <cstddef>
#include <vector>

#include "stats/estimator.h"
#include "util/status.h"

namespace sensord {

/// KL divergence D(p || q) between two discrete distributions, in bits.
/// Terms with p_i == 0 contribute zero. Returns +infinity if some p_i > 0
/// has q_i == 0 (the failure mode that motivates JS).
/// Pre: p.size() == q.size(), both non-empty and non-negative.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Jensen-Shannon divergence between two discrete distributions, in bits:
/// JS(p, q) = (D(p || m) + D(q || m)) / 2 with m = (p + q) / 2 (Eq. 7).
/// Symmetric, finite, and in [0, 1]. Inputs are normalized internally.
/// Pre: p.size() == q.size(), both non-empty, non-negative, not all zero.
double JsDivergence(const std::vector<double>& p, const std::vector<double>& q);

/// Discretizes an estimator on a regular grid over [0,1]^d with
/// `cells_per_dim` cells per dimension: returns the (normalized) mass of
/// each grid cell, row-major. Pre: cells_per_dim >= 1, d >= 1. For d >= 2
/// the grid has cells_per_dim^d cells; keep cells_per_dim modest.
std::vector<double> DiscretizeOnGrid(const DistributionEstimator& estimator,
                                     size_t cells_per_dim);

/// The paper's estimator-model distance (Eq. 7-8): discretize both models on
/// the same grid and return their JS divergence in bits.
/// Returns InvalidArgument on dimensionality mismatch or empty grids.
StatusOr<double> JsDivergenceOnGrid(const DistributionEstimator& p,
                                    const DistributionEstimator& q,
                                    size_t cells_per_dim);

}  // namespace sensord

#endif  // SENSORD_STATS_DIVERGENCE_H_
