// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The Epanechnikov kernel (Section 4 of the paper).
//
// The paper picks the Epanechnikov kernel "that is easy to integrate": its
// one-dimensional profile is a truncated parabola whose antiderivative is a
// cubic, so the probability mass a kernel contributes to an interval — and,
// by the product form, to any axis-aligned box — has a closed form. This is
// what makes O(d|R|) range queries (Theorem 2) possible.

#ifndef SENSORD_STATS_KERNEL_H_
#define SENSORD_STATS_KERNEL_H_

#include <cstddef>

namespace sensord {

/// One-dimensional Epanechnikov kernel with bandwidth B:
///   k_B(x) = (3 / (4 B)) (1 - (x/B)^2)   for |x| <= B, else 0.
/// Integrates to 1 over its support [-B, B].
class EpanechnikovKernel {
 public:
  /// Pre: bandwidth > 0.
  explicit EpanechnikovKernel(double bandwidth);

  double bandwidth() const { return bandwidth_; }

  /// Kernel value at offset x from the kernel centre.
  double Value(double x) const;

  /// Integral of the kernel over [a, b] (offsets from the kernel centre).
  /// Pre: a <= b. Handles limits outside the support by clipping.
  double IntegralOver(double a, double b) const;

  /// Integral of the kernel centred at `center` over the absolute interval
  /// [lo, hi]. Pre: lo <= hi.
  double MassInInterval(double center, double lo, double hi) const {
    return IntegralOver(lo - center, hi - center);
  }

 private:
  double bandwidth_;
  double inv_bandwidth_;
  double scale_;  // 3 / (4 B)
};

}  // namespace sensord

#endif  // SENSORD_STATS_KERNEL_H_
