// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Haar-wavelet synopsis estimator.
//
// The paper's related work weighs kernels against the two standard
// distribution synopses — histograms and wavelets — citing evidence that
// "kernels are as accurate as those two techniques" (Section 4, refs
// [23, 8]; wavelet synopses per Chakrabarti et al. [12] and Gilbert et al.
// [18]). The histogram comparator ships in stats/histogram.h; this is the
// wavelet one, used by the estimator-quality ablation bench.
//
// Construction: the data is binned onto a 2^levels equi-width grid over
// [0, 1], Haar-transformed, and only the `coefficients` largest-magnitude
// (normalized) coefficients are kept — that truncated set is the synopsis
// whose size MemoryBytes reports. Queries reconstruct cell masses from the
// kept coefficients (cached eagerly; the cache is derived state, not part
// of the synopsis budget). 1-d only, like the paper's histogram comparison.

#ifndef SENSORD_STATS_WAVELET_H_
#define SENSORD_STATS_WAVELET_H_

#include <cstddef>
#include <vector>

#include "stats/estimator.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Truncated Haar synopsis of a 1-d distribution over [0, 1].
class WaveletSynopsis : public DistributionEstimator {
 public:
  /// Builds a synopsis of at most `coefficients` kept Haar coefficients
  /// over a grid of 2^levels cells. Returns InvalidArgument if data is
  /// empty or not 1-d, coefficients == 0, or levels is outside [1, 20].
  static StatusOr<WaveletSynopsis> Build(const std::vector<Point>& data,
                                         size_t coefficients,
                                         size_t levels = 12);

  size_t dimensions() const override { return 1; }

  double BoxProbability(const Point& lo, const Point& hi) const override;

  double Pdf(const Point& p) const override;

  /// Number of coefficients actually kept (<= requested; small inputs may
  /// have fewer non-zero coefficients).
  size_t NumCoefficients() const { return kept_.size(); }

  /// Synopsis footprint: one (index, value) pair per kept coefficient.
  size_t MemoryBytes(size_t bytes_per_number) const {
    return kept_.size() * 2 * bytes_per_number;
  }

 private:
  struct Coefficient {
    uint32_t index;
    double value;
  };

  WaveletSynopsis() = default;

  size_t cells_ = 0;
  std::vector<Coefficient> kept_;
  // Cell masses reconstructed from kept_ (derived query cache).
  std::vector<double> cell_mass_;
  double cell_width_ = 0.0;
};

}  // namespace sensord

#endif  // SENSORD_STATS_WAVELET_H_
