// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Kernel density estimation over a (chain) sample — the heart of the paper.
//
// A sample R of the sliding window plus one Epanechnikov bandwidth per
// dimension defines the estimate (Eq. 1-3)
//   f(x) = (1/|R|) sum_{t in R} prod_i k_{B_i}(x_i - t_i),
// and, because the Epanechnikov profile integrates in closed form, the box
// mass P[lo, hi] is an exact O(d|R|) sum (Theorem 2). In one dimension the
// sample is kept sorted and a query only touches the kernels whose support
// intersects the query interval: O(log|R| + |R'|), the paper's refinement.
//
// This class generalizes that refinement to d > 1 (DESIGN.md §13). The
// sample lives in a flat row-major buffer (util/flat_points.h) held in a
// *canonical order*: sorted by a primary axis a — the axis with the largest
// spread/bandwidth ratio, i.e. the axis where sorting prunes best — with
// ties broken lexicographically over all coordinates. BoxProbability,
// BoxProbabilityBatch and Pdf binary-search the candidate row range
// [lo_a − B_a, hi_a + B_a] on that axis and evaluate only terms whose
// kernel support can intersect the query; every skipped term contributes
// exactly 0.0, so results are bit-identical to a full sweep over the same
// canonical order.
//
// The estimator is an immutable snapshot: the online system (core::
// DensityModel) rebuilds it cheaply from the current chain sample whenever
// it needs to answer queries, which keeps this class trivially thread-safe
// and exactly reproducible. The flat-buffer Create() overload plus
// ReleaseSampleStorage() let the rebuild path recycle one warm buffer and
// perform zero per-point heap allocations.

#ifndef SENSORD_STATS_KDE_H_
#define SENSORD_STATS_KDE_H_

#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

#include "stats/estimator.h"
#include "stats/kernel.h"
#include "util/flat_points.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

class SnapshotReader;
class SnapshotWriter;

/// Product-Epanechnikov kernel density estimator over [0,1]^d.
class KernelDensityEstimator : public DistributionEstimator {
 public:
  /// Builds an estimator from a flat sample and per-dimension bandwidths;
  /// the sample is re-sorted into canonical order in place. Returns
  /// InvalidArgument if the sample is empty, the dimensionalities are
  /// inconsistent, or any bandwidth is <= 0.
  static StatusOr<KernelDensityEstimator> Create(
      FlatPoints sample, std::vector<double> bandwidths);

  /// Convenience overload that flattens a Point vector first (allocates;
  /// hot rebuild paths should pass FlatPoints directly).
  static StatusOr<KernelDensityEstimator> Create(
      const std::vector<Point>& sample, std::vector<double> bandwidths);

  /// Disambiguates braced-list call sites (`Create({{0.5}}, {0.1})`), which
  /// would otherwise match both overloads above; list-initialization
  /// prefers an initializer_list parameter.
  static StatusOr<KernelDensityEstimator> Create(
      std::initializer_list<Point> sample, std::vector<double> bandwidths) {
    return Create(std::vector<Point>(sample), std::move(bandwidths));
  }

  /// Convenience: Scott's-rule bandwidths from per-dimension standard
  /// deviations (see stats/bandwidth.h), then Create().
  static StatusOr<KernelDensityEstimator> CreateWithScottBandwidths(
      FlatPoints sample, const std::vector<double>& stddevs);
  static StatusOr<KernelDensityEstimator> CreateWithScottBandwidths(
      const std::vector<Point>& sample, const std::vector<double>& stddevs);

  size_t dimensions() const override { return kernels_.size(); }

  /// Closed-form probability mass of the box [lo, hi]:
  /// O(log|R| + d|R'|), |R'| being the candidate rows whose primary-axis
  /// coordinate falls in [lo_a − B_a, hi_a + B_a].
  double BoxProbability(const Point& lo, const Point& hi) const override;

  /// One candidate-range sweep for the whole batch in d > 1: the union of
  /// the live boxes bounds one binary-searched row range, each row in it is
  /// loaded once and tested against the union box before any per-box work.
  /// Values and metrics are bit-identical to the per-query loop
  /// (contributions accumulate per box in canonical sample order, exactly
  /// as BoxProbability sums them, and terms_per_query records each box's
  /// own candidate count). In 1-d the per-query O(log|R| + |R'|) path is
  /// already optimal and is used unchanged.
  void BoxProbabilityBatch(const std::vector<Point>& lo,
                           const std::vector<Point>& hi,
                           std::vector<double>* out) const override;

  /// Density f(p). Same complexity as BoxProbability.
  double Pdf(const Point& p) const override;

  /// Number of kernels |R|.
  size_t sample_size() const { return sample_size_; }

  /// Per-dimension bandwidths B_i.
  std::vector<double> bandwidths() const;

  /// The sample in canonical order: flat row-major storage, rows sorted
  /// ascending by primary_axis() with lexicographic tie-breaks (in 1-d this
  /// degenerates to the plain sorted order).
  const FlatPoints& sample() const { return sample_; }

  /// The axis the canonical order sorts by and queries prune on: the axis
  /// maximizing (sample spread) / bandwidth, ties to the smallest index.
  /// Always 0 in 1-d.
  size_t primary_axis() const { return primary_axis_; }

  /// The half-open canonical row range whose kernels can overlap
  /// [axis_lo, axis_hi] on the primary axis, i.e. rows with coordinate in
  /// [axis_lo − B_a, axis_hi + B_a]. Rows outside it contribute exactly
  /// 0.0 to any box/pdf query over that primary-axis extent.
  std::pair<size_t, size_t> CandidateRows(double axis_lo,
                                          double axis_hi) const;

  /// Steals the flat sample storage so a rebuild path can recycle the heap
  /// buffer (core::DensityModel's scratch ping-pong). The estimator is left
  /// empty and must not be queried afterwards.
  FlatPoints ReleaseSampleStorage() && { return std::move(sample_); }

  /// Footprint under the paper's accounting: d numbers per sample point plus
  /// d bandwidths, at `bytes_per_number` bytes each.
  size_t MemoryBytes(size_t bytes_per_number) const;

  /// Appends the estimator's defining state (sample points and bandwidths)
  /// to `writer`, for checkpoint/restore (core/snapshot.h). The wire format
  /// is unchanged from the vector<Point> era — one u32 dimension prefix per
  /// point — so snapshots are portable across the flat-layout change in
  /// both directions.
  void Serialize(SnapshotWriter* writer) const;

  /// Rebuilds an estimator from state previously written by Serialize(),
  /// re-validating through Create() (which re-canonicalizes the order, so
  /// pre-flat-layout payloads restore to the identical estimator). Returns
  /// InvalidArgument if the reader fails or the decoded state does not
  /// satisfy Create()'s preconditions.
  static StatusOr<KernelDensityEstimator> Deserialize(SnapshotReader* reader);

 private:
  KernelDensityEstimator(FlatPoints sample, std::vector<double> bandwidths);

  // Picks primary_axis_ and sorts sample_ into canonical order.
  void Canonicalize();

  // First canonical row with primary-axis coordinate >= v (resp. > v).
  size_t LowerBoundRow(double v) const;
  size_t UpperBoundRow(double v) const;

  // 1-d fast path for BoxProbability.
  double Interval1dProbability(double lo, double hi) const;

  FlatPoints sample_;  // canonical order; in 1-d its data() is the sorted
                       // coordinate array the fast path binary-searches
  std::vector<EpanechnikovKernel> kernels_;
  size_t sample_size_;
  size_t primary_axis_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_STATS_KDE_H_
