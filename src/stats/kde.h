// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Kernel density estimation over a (chain) sample — the heart of the paper.
//
// A sample R of the sliding window plus one Epanechnikov bandwidth per
// dimension defines the estimate (Eq. 1-3)
//   f(x) = (1/|R|) sum_{t in R} prod_i k_{B_i}(x_i - t_i),
// and, because the Epanechnikov profile integrates in closed form, the box
// mass P[lo, hi] is an exact O(d|R|) sum (Theorem 2). In one dimension the
// sample is kept sorted and a query only touches the kernels whose support
// intersects the query interval: O(log|R| + |R'|), the paper's refinement.
//
// The estimator is an immutable snapshot: the online system (core::
// DensityModel) rebuilds it cheaply from the current chain sample whenever
// it needs to answer queries, which keeps this class trivially thread-safe
// and exactly reproducible.

#ifndef SENSORD_STATS_KDE_H_
#define SENSORD_STATS_KDE_H_

#include <cstddef>
#include <vector>

#include "stats/estimator.h"
#include "stats/kernel.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

class SnapshotReader;
class SnapshotWriter;

/// Product-Epanechnikov kernel density estimator over [0,1]^d.
class KernelDensityEstimator : public DistributionEstimator {
 public:
  /// Builds an estimator from a sample and per-dimension bandwidths.
  /// Returns InvalidArgument if the sample is empty, dimensionalities are
  /// inconsistent, or any bandwidth is <= 0.
  static StatusOr<KernelDensityEstimator> Create(
      std::vector<Point> sample, std::vector<double> bandwidths);

  /// Convenience: Scott's-rule bandwidths from per-dimension standard
  /// deviations (see stats/bandwidth.h), then Create().
  static StatusOr<KernelDensityEstimator> CreateWithScottBandwidths(
      std::vector<Point> sample, const std::vector<double>& stddevs);

  size_t dimensions() const override { return kernels_.size(); }

  /// Closed-form probability mass of the box [lo, hi]. O(d|R|) in general;
  /// O(log|R| + |R'|) when d == 1, |R'| being the kernels intersecting the
  /// query interval.
  double BoxProbability(const Point& lo, const Point& hi) const override;

  /// One sample sweep for the whole batch in d > 1: each kernel term is
  /// loaded once and its overlap tested against the batch's bounding box
  /// before any per-box work, so cell scans over a small neighbourhood skip
  /// most of the sample outright. Values and metrics are bit-identical to
  /// the per-query loop (contributions accumulate per box in sample order,
  /// exactly as BoxProbability sums them). In 1-d the per-query
  /// O(log|R| + |R'|) path is already optimal and is used unchanged.
  void BoxProbabilityBatch(const std::vector<Point>& lo,
                           const std::vector<Point>& hi,
                           std::vector<double>* out) const override;

  /// Density f(p). Same complexity as BoxProbability.
  double Pdf(const Point& p) const override;

  /// Number of kernels |R|.
  size_t sample_size() const { return sample_size_; }

  /// Per-dimension bandwidths B_i.
  std::vector<double> bandwidths() const;

  /// The sample points the estimator was built from (1-d estimators return
  /// them in sorted order).
  const std::vector<Point>& sample() const { return sample_; }

  /// Footprint under the paper's accounting: d numbers per sample point plus
  /// d bandwidths, at `bytes_per_number` bytes each.
  size_t MemoryBytes(size_t bytes_per_number) const;

  /// Appends the estimator's defining state (sample points and bandwidths)
  /// to `writer`, for checkpoint/restore (core/snapshot.h). The sorted 1-d
  /// index is derived and rebuilt on Deserialize.
  void Serialize(SnapshotWriter* writer) const;

  /// Rebuilds an estimator from state previously written by Serialize(),
  /// re-validating through Create(). Returns InvalidArgument if the reader
  /// fails or the decoded state does not satisfy Create()'s preconditions.
  static StatusOr<KernelDensityEstimator> Deserialize(SnapshotReader* reader);

 private:
  KernelDensityEstimator(std::vector<Point> sample,
                         std::vector<double> bandwidths);

  // 1-d fast path for BoxProbability.
  double Interval1dProbability(double lo, double hi) const;

  std::vector<Point> sample_;
  std::vector<double> sorted_1d_;  // sorted coordinates; only filled if d == 1
  std::vector<EpanechnikovKernel> kernels_;
  size_t sample_size_;
};

}  // namespace sensord

#endif  // SENSORD_STATS_KDE_H_
