#include "stats/wavelet.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sensord {

StatusOr<WaveletSynopsis> WaveletSynopsis::Build(
    const std::vector<Point>& data, size_t coefficients, size_t levels) {
  if (data.empty()) {
    return Status::InvalidArgument("wavelet synopsis requires data");
  }
  if (coefficients == 0) {
    return Status::InvalidArgument("need at least one coefficient");
  }
  if (levels < 1 || levels > 20) {
    return Status::InvalidArgument("levels must be in [1, 20]");
  }
  for (const Point& p : data) {
    if (p.size() != 1) {
      return Status::InvalidArgument("wavelet synopsis is 1-d only");
    }
  }

  const size_t n = size_t{1} << levels;
  std::vector<double> cells(n, 0.0);
  const double inv = 1.0 / static_cast<double>(data.size());
  for (const Point& p : data) {
    size_t c = static_cast<size_t>(Clamp(p[0], 0.0, 1.0) *
                                   static_cast<double>(n));
    cells[std::min(c, n - 1)] += inv;
  }

  // Forward Haar transform (average / half-difference convention):
  // work[0] ends as the overall average; the detail of a block of size
  // 2*stride at level j lands at index (n/size + i).
  std::vector<double> coef(cells);
  std::vector<double> scratch(n);
  for (size_t size = n; size > 1; size /= 2) {
    const size_t half = size / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = 0.5 * (coef[2 * i] + coef[2 * i + 1]);         // average
      scratch[half + i] = 0.5 * (coef[2 * i] - coef[2 * i + 1]);  // detail
    }
    std::copy(scratch.begin(), scratch.begin() + size, coef.begin());
  }
  // Layout now: coef[0] = average; details of the coarsest level at [1, 2),
  // next level at [2, 4), ..., finest at [n/2, n).

  // Keep the top-B coefficients by their L2 contribution |c| * sqrt(support)
  // (always keeping the overall average, which carries the total mass).
  std::vector<uint32_t> order;
  order.reserve(n - 1);
  for (uint32_t i = 1; i < n; ++i) {
    if (coef[i] != 0.0) order.push_back(i);
  }
  auto weight = [&](uint32_t idx) {
    // Index block [2^j, 2^{j+1}) is level j; each coefficient there spans
    // n / 2^j cells.
    size_t level_size = 1;
    while (level_size * 2 <= idx) level_size *= 2;
    const double support = static_cast<double>(n) /
                           static_cast<double>(level_size);
    return std::fabs(coef[idx]) * std::sqrt(support);
  };
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return weight(a) > weight(b);
  });
  if (order.size() > coefficients - 1) order.resize(coefficients - 1);

  WaveletSynopsis synopsis;
  synopsis.cells_ = n;
  synopsis.cell_width_ = 1.0 / static_cast<double>(n);
  synopsis.kept_.push_back({0, coef[0]});
  for (uint32_t idx : order) synopsis.kept_.push_back({idx, coef[idx]});

  // Reconstruct the cell cache by the inverse transform over the truncated
  // coefficient array.
  std::vector<double> sparse(n, 0.0);
  for (const Coefficient& c : synopsis.kept_) sparse[c.index] = c.value;
  std::vector<double> out(n);
  for (size_t size = 2; size <= n; size *= 2) {
    const size_t half = size / 2;
    for (size_t i = 0; i < half; ++i) {
      out[2 * i] = sparse[i] + sparse[half + i];
      out[2 * i + 1] = sparse[i] - sparse[half + i];
    }
    std::copy(out.begin(), out.begin() + size, sparse.begin());
  }

  // Truncation can produce small negative cell masses; clamp and
  // renormalize so the synopsis stays a distribution.
  double total = 0.0;
  for (double& m : sparse) {
    m = std::max(0.0, m);
    total += m;
  }
  if (total > 0.0) {
    for (double& m : sparse) m /= total;
  }
  synopsis.cell_mass_ = std::move(sparse);
  return synopsis;
}

double WaveletSynopsis::BoxProbability(const Point& lo,
                                       const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), 1u);
  SENSORD_DCHECK_EQ(hi.size(), 1u);
  const double a = Clamp(lo[0], 0.0, 1.0);
  const double b = Clamp(hi[0], 0.0, 1.0);
  if (a >= b) {
    // Point queries still see the containing cell's point mass fractionally;
    // a zero-width box carries no mass under a piecewise-uniform density.
    return 0.0;
  }
  const size_t first = std::min(
      static_cast<size_t>(a / cell_width_), cells_ - 1);
  const size_t last = std::min(
      static_cast<size_t>(b / cell_width_), cells_ - 1);
  double mass = 0.0;
  for (size_t c = first; c <= last; ++c) {
    const double cell_lo = static_cast<double>(c) * cell_width_;
    const double cover =
        IntervalOverlap(cell_lo, cell_lo + cell_width_, a, b) / cell_width_;
    mass += cell_mass_[c] * cover;
  }
  return mass;
}

double WaveletSynopsis::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), 1u);
  if (p[0] < 0.0 || p[0] > 1.0) return 0.0;
  const size_t c = std::min(static_cast<size_t>(p[0] / cell_width_),
                            cells_ - 1);
  return cell_mass_[c] / cell_width_;
}

}  // namespace sensord
