#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace sensord {

StatusOr<EquiDepthHistogram> EquiDepthHistogram::Build(
    const std::vector<Point>& data, size_t buckets) {
  if (data.empty()) {
    return Status::InvalidArgument("histogram requires non-empty data");
  }
  if (buckets == 0) {
    return Status::InvalidArgument("histogram requires at least one bucket");
  }
  const size_t d = data[0].size();
  if (d == 0) {
    return Status::InvalidArgument("histogram requires dimensionality >= 1");
  }
  for (const Point& p : data) {
    if (p.size() != d) {
      return Status::InvalidArgument("inconsistent point dimensionality");
    }
  }

  EquiDepthHistogram h;
  const size_t per_dim = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::pow(static_cast<double>(buckets),
                                1.0 / static_cast<double>(d)))));
  h.cells_per_dim_.assign(d, per_dim);
  h.edges_.resize(d);

  for (size_t dim = 0; dim < d; ++dim) {
    std::vector<double> coord;
    coord.reserve(data.size());
    for (const Point& p : data) coord.push_back(p[dim]);
    std::sort(coord.begin(), coord.end());
    std::vector<double>& e = h.edges_[dim];
    e.resize(per_dim + 1);
    for (size_t b = 0; b <= per_dim; ++b) {
      const double q =
          static_cast<double>(b) / static_cast<double>(per_dim);
      const double pos = q * static_cast<double>(coord.size() - 1);
      const size_t idx = static_cast<size_t>(pos);
      const size_t nxt = std::min(idx + 1, coord.size() - 1);
      const double frac = pos - static_cast<double>(idx);
      e[b] = coord[idx] * (1.0 - frac) + coord[nxt] * frac;
    }
    // Boundaries must be non-decreasing (duplicates may collapse edges).
    for (size_t b = 1; b <= per_dim; ++b) e[b] = std::max(e[b], e[b - 1]);
  }

  size_t total_cells = 1;
  for (size_t dim = 0; dim < d; ++dim) total_cells *= per_dim;
  std::vector<double> counts(total_cells, 0.0);

  for (const Point& p : data) {
    size_t cell = 0;
    for (size_t dim = 0; dim < d; ++dim) {
      cell = cell * per_dim + BucketOf(h.edges_[dim], per_dim, p[dim]);
    }
    counts[cell] += 1.0;
  }

  h.cell_probability_.resize(total_cells);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (size_t c = 0; c < total_cells; ++c) {
    h.cell_probability_[c] = counts[c] * inv_n;
  }
  return h;
}

size_t EquiDepthHistogram::BucketOf(const std::vector<double>& edges,
                                    size_t buckets, double x) {
  const auto it = std::lower_bound(edges.begin(), edges.end(), x);
  if (it == edges.end()) return buckets - 1;  // beyond the last edge
  const size_t idx = static_cast<size_t>(it - edges.begin());
  if (*it == x) {
    // x lands on an edge: take the first bucket starting there, so values
    // duplicated enough to collapse edges live in their point-mass bucket.
    return std::min(idx, buckets - 1);
  }
  return idx == 0 ? 0 : idx - 1;
}

double EquiDepthHistogram::IntervalFraction(double a, double b, double lo,
                                            double hi) {
  if (a == b) {
    // Point mass: inside iff the query interval covers the point.
    return (a >= lo && a <= hi) ? 1.0 : 0.0;
  }
  return IntervalOverlap(a, b, lo, hi) / (b - a);
}

double EquiDepthHistogram::BoxProbability(const Point& lo,
                                          const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), dimensions());
  SENSORD_DCHECK_EQ(hi.size(), dimensions());
  const size_t d = dimensions();
  // Per-dimension fractional coverage of each bucket, then a product over
  // the cell grid (row-major index arithmetic mirrors Build()).
  std::vector<std::vector<double>> frac(d);
  for (size_t dim = 0; dim < d; ++dim) {
    const std::vector<double>& e = edges_[dim];
    const size_t nb = cells_per_dim_[dim];
    frac[dim].resize(nb);
    for (size_t b = 0; b < nb; ++b) {
      frac[dim][b] = IntervalFraction(e[b], e[b + 1], lo[dim], hi[dim]);
    }
  }

  double total = 0.0;
  const size_t cells = cell_probability_.size();
  for (size_t c = 0; c < cells; ++c) {
    if (cell_probability_[c] == 0.0) continue;
    double cover = 1.0;
    size_t rest = c;
    for (size_t dim = d; dim-- > 0;) {
      const size_t b = rest % cells_per_dim_[dim];
      rest /= cells_per_dim_[dim];
      cover *= frac[dim][b];
      if (cover == 0.0) break;
    }
    total += cell_probability_[c] * cover;
  }
  return total;
}

double EquiDepthHistogram::Pdf(const Point& p) const {
  SENSORD_DCHECK_EQ(p.size(), dimensions());
  const size_t d = dimensions();
  size_t cell = 0;
  double volume = 1.0;
  for (size_t dim = 0; dim < d; ++dim) {
    const std::vector<double>& e = edges_[dim];
    const size_t nb = cells_per_dim_[dim];
    if (p[dim] < e.front() || p[dim] > e.back()) return 0.0;
    const size_t b = BucketOf(e, nb, p[dim]);
    cell = cell * nb + b;
    const double width = e[b + 1] - e[b];
    volume *= width;
  }
  if (volume <= 0.0) return 0.0;  // point-mass bucket: density is singular
  return cell_probability_[cell] / volume;
}

size_t EquiDepthHistogram::MemoryBytes(size_t bytes_per_number) const {
  size_t numbers = cell_probability_.size();
  for (const auto& e : edges_) numbers += e.size();
  return numbers * bytes_per_number;
}

}  // namespace sensord
