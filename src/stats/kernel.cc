#include "stats/kernel.h"

#include <algorithm>

#include "util/check.h"

namespace sensord {

EpanechnikovKernel::EpanechnikovKernel(double bandwidth)
    : bandwidth_(bandwidth),
      inv_bandwidth_(1.0 / bandwidth),
      scale_(0.75 / bandwidth) {
  SENSORD_CHECK_GT(bandwidth, 0.0);
}

double EpanechnikovKernel::Value(double x) const {
  const double u = x * inv_bandwidth_;
  if (u <= -1.0 || u >= 1.0) return 0.0;
  return scale_ * (1.0 - u * u);
}

double EpanechnikovKernel::IntegralOver(double a, double b) const {
  SENSORD_DCHECK_LE(a, b);
  // Antiderivative of the unit-bandwidth profile (3/4)(1 - u^2) is
  // F(u) = (3/4)(u - u^3/3); F(-1) = -1/2 and F(1) = 1/2.
  const double ua = std::clamp(a * inv_bandwidth_, -1.0, 1.0);
  const double ub = std::clamp(b * inv_bandwidth_, -1.0, 1.0);
  auto antideriv = [](double u) { return 0.75 * (u - u * u * u / 3.0); };
  return antideriv(ub) - antideriv(ua);
}

}  // namespace sensord
