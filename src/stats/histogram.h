// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Equi-depth histograms — the comparison estimator of Section 10.
//
// The paper benchmarks its kernel estimator against equi-depth histograms of
// |B| buckets computed with full access to all |W| window values (a setting
// that deliberately favours the histogram: it is an offline upper bound for
// any streaming histogram). In one dimension the bucket boundaries are the
// |B|-quantiles of the window. In d dimensions we partition each dimension
// at its ceil(|B|^(1/d)) marginal quantiles and count points per grid cell,
// preserving the same memory budget of about |B| stored numbers.
//
// Mass inside a bucket/cell is assumed uniform, except that zero-width
// buckets (heavy duplicates) act as point masses.

#ifndef SENSORD_STATS_HISTOGRAM_H_
#define SENSORD_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "stats/estimator.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Equi-depth (1-d) / marginal-quantile-grid (d >= 2) histogram estimator.
class EquiDepthHistogram : public DistributionEstimator {
 public:
  /// Builds a histogram of approximately `buckets` buckets over `data`.
  /// Returns InvalidArgument if data is empty, buckets == 0, or point
  /// dimensionalities are inconsistent.
  static StatusOr<EquiDepthHistogram> Build(const std::vector<Point>& data,
                                            size_t buckets);

  size_t dimensions() const override { return edges_.size(); }

  double BoxProbability(const Point& lo, const Point& hi) const override;

  double Pdf(const Point& p) const override;

  /// Number of cells actually allocated.
  size_t NumCells() const { return cell_probability_.size(); }

  /// Bucket boundaries of dimension `dim` (size = cells-per-dim + 1).
  const std::vector<double>& Edges(size_t dim) const { return edges_[dim]; }

  /// Footprint under the paper's accounting: all stored edges plus one
  /// probability per cell, at `bytes_per_number` bytes each.
  size_t MemoryBytes(size_t bytes_per_number) const;

 private:
  EquiDepthHistogram() = default;

  // Fractional overlap of [lo, hi] with the cell interval [a, b] under the
  // uniform-within-bucket assumption; point-mass semantics when a == b.
  static double IntervalFraction(double a, double b, double lo, double hi);

  // Bucket index containing x. Prefers the *first* bucket starting at x so
  // that heavy duplicates land in their collapsed (zero-width, point-mass)
  // bucket rather than in the wide trailing one.
  static size_t BucketOf(const std::vector<double>& edges, size_t buckets,
                         double x);

  std::vector<std::vector<double>> edges_;  // per-dim boundaries, ascending
  std::vector<double> cell_probability_;    // row-major over the cell grid
  std::vector<size_t> cells_per_dim_;
};

}  // namespace sensord

#endif  // SENSORD_STATS_HISTOGRAM_H_
