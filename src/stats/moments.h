// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Summary statistics: batch summaries (the paper's Figure 5 table reports
// min/max/mean/median/stddev/skew for each real dataset) and a single-pass
// accumulator used wherever a stream needs its first three moments online.

#ifndef SENSORD_STATS_MOMENTS_H_
#define SENSORD_STATS_MOMENTS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sensord {

/// The row format of the paper's Figure 5.
struct SummaryStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double skew = 0.0;    ///< third standardized moment; 0 if stddev == 0

  /// Fixed-width rendering used by the Figure 5 bench.
  std::string ToString() const;
};

/// Computes all Figure 5 statistics of a value sequence.
/// Pre: !values.empty().
SummaryStats Summarize(const std::vector<double>& values);

/// Single-pass (Welford-style) accumulator of count/min/max/mean/variance/
/// skewness. No median (that requires the values); use Summarize for the
/// full Figure 5 row.
class MomentsAccumulator {
 public:
  /// Feeds one value.
  void Add(double x);

  uint64_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return mean_; }

  /// Population variance; 0 with fewer than 2 values.
  double Variance() const;
  double StdDev() const;

  /// Third standardized moment; 0 if variance is 0 or count < 3.
  double Skewness() const;

 private:
  uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
  double m3_ = 0.0;  // sum of cubed deviations
};

}  // namespace sensord

#endif  // SENSORD_STATS_MOMENTS_H_
