#include "util/status.h"

namespace sensord {
namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kInternal:
      return "Internal";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace sensord
