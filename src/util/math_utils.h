// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Small numeric helpers shared across sensord: points in [0,1]^d, interval
// clipping, Chebyshev (L-infinity) distance — the metric under which the
// paper's box range query N(p, r) counts neighbours — and safe comparisons.

#ifndef SENSORD_UTIL_MATH_UTILS_H_
#define SENSORD_UTIL_MATH_UTILS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sensord {

/// A d-dimensional observation. All sensord values live in [0,1]^d after
/// normalization (the paper's domain assumption, Section 4).
using Point = std::vector<double>;

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

/// Chebyshev / L-infinity distance between two points of equal dimension.
///
/// The paper's neighbourhood count N(p, r) integrates the density over the
/// axis-aligned box [p - r, p + r] (Eq. 4-5), i.e. the L-infinity ball of
/// radius r; every distance-based component of sensord uses this metric so
/// that estimates and exact baselines count the same neighbours.
inline double ChebyshevDistance(const Point& a, const Point& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::fabs(a[i] - b[i]));
  }
  return d;
}

/// Euclidean (L2) distance; provided for applications that prefer it.
inline double EuclideanDistance(const Point& a, const Point& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return std::sqrt(s);
}

/// True iff every coordinate of p lies in [0, 1].
bool InUnitCube(const Point& p);

/// True iff |a - b| <= tol.
inline bool ApproxEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Overlap length of intervals [a1, b1] and [a2, b2]; 0 if disjoint.
inline double IntervalOverlap(double a1, double b1, double a2, double b2) {
  return std::max(0.0, std::min(b1, b2) - std::max(a1, a2));
}

/// Exact median of a (copied) vector. Pre: !v.empty(). Even-sized inputs
/// return the average of the two middle order statistics.
double Median(std::vector<double> v);

/// Exact q-quantile (linear interpolation between order statistics).
/// Pre: !v.empty(), 0 <= q <= 1.
double Quantile(std::vector<double> v, double q);

/// Quantile() for input already sorted ascending — no copy, no sort, no
/// allocation; bit-identical to Quantile() on the same multiset.
/// Pre: !v.empty(), v sorted ascending, 0 <= q <= 1.
double QuantileSorted(const std::vector<double>& v, double q);

/// log2 of x rounded up to an integer; Log2Ceil(1) == 0. Pre: x >= 1.
int Log2Ceil(size_t x);

}  // namespace sensord

#endif  // SENSORD_UTIL_MATH_UTILS_H_
