// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in sensord (chain sampling, probabilistic
// sample propagation, workload generators, the network simulator) draws from
// an explicitly seeded Rng so that experiments are exactly reproducible.
// Rng::Split() derives statistically independent child generators, letting a
// simulation hand one generator to each node without correlated streams.

#ifndef SENSORD_UTIL_RNG_H_
#define SENSORD_UTIL_RNG_H_

#include <cstdint>
#include <limits>

namespace sensord {

/// A small, fast, high-quality PRNG (xoshiro256**), explicitly seeded.
///
/// Not cryptographically secure; intended for simulation and sampling.
/// Copyable; copies continue the same stream independently from the copy
/// point, so prefer Split() when independence matters.
class Rng {
 public:
  /// Seeds the generator. Two Rngs with the same seed produce identical
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Pre: bound > 0. Unbiased (rejection).
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi]. Pre: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double UniformDouble();

  /// Uniform double in [lo, hi). Pre: lo < hi.
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  /// Pre: stddev >= 0.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent child generator. The parent's stream advances;
  /// the child's stream is decorrelated from both the parent and from other
  /// children split from it.
  Rng Split();

  /// Complete generator state, for checkpoint/restore (core/snapshot.h): the
  /// four xoshiro256** words plus the Marsaglia-polar spare deviate, so a
  /// restored generator continues the stream bit-for-bit.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State SaveState() const;

  /// Overwrites this generator with `state`. Pre: state.s is not all-zero
  /// (never produced by SaveState of a validly seeded Rng).
  void LoadState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sensord

#endif  // SENSORD_UTIL_RNG_H_
