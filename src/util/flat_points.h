// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// FlatPoints: a contiguous row-major buffer of d-dimensional points.
//
// `Point = std::vector<double>` makes every sample point its own heap
// allocation; a |R|-point sample is |R| pointer chases per query sweep and
// |R| allocations per estimator rebuild. FlatPoints stores the same data as
// one `std::vector<double>` of length rows * dimensions, so a sweep is a
// single linear scan and a rebuild into a warm buffer performs zero
// per-point allocations (Reset() keeps capacity). Rows are addressed by
// index; PointView is a cheap non-owning accessor for code that wants
// point-shaped reads without materializing a Point.
//
// The container is dumb on purpose: it owns layout, not meaning. Ordering
// policy (the KDE's canonical sort) lives with the caller, which drives
// SortRows() with its own comparator; SortRows is an in-place heapsort over
// row swaps — deterministic for a deterministic comparator, zero
// allocations, no stability guarantee (callers needing a canonical order
// must use a comparator whose ties are interchangeable rows).

#ifndef SENSORD_UTIL_FLAT_POINTS_H_
#define SENSORD_UTIL_FLAT_POINTS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/check.h"
#include "util/math_utils.h"

namespace sensord {

/// Non-owning view of one row of a FlatPoints buffer (or any contiguous
/// coordinate array). Valid only while the underlying storage is.
class PointView {
 public:
  PointView(const double* coords, size_t dimensions)
      : coords_(coords), dimensions_(dimensions) {}

  size_t size() const { return dimensions_; }
  const double* data() const { return coords_; }
  double operator[](size_t i) const {
    SENSORD_DCHECK_LT(i, dimensions_);
    return coords_[i];
  }
  const double* begin() const { return coords_; }
  const double* end() const { return coords_ + dimensions_; }

  /// Materializes the row as an owning Point (allocates).
  Point ToPoint() const { return Point(coords_, coords_ + dimensions_); }

 private:
  const double* coords_;
  size_t dimensions_;
};

/// Row-major matrix of `size()` points by `dimensions()` coordinates in one
/// contiguous double buffer.
class FlatPoints {
 public:
  FlatPoints() = default;
  explicit FlatPoints(size_t dimensions) : dimensions_(dimensions) {}

  /// Builds a flat copy of `points`. Pre: every point has the same
  /// dimensionality (that of the first; an empty input yields dimensions 0).
  static FlatPoints FromPoints(const std::vector<Point>& points);

  /// Drops all rows and sets the stride, keeping the existing heap
  /// capacity — the warm-buffer entry point for zero-allocation refills.
  void Reset(size_t dimensions) {
    dimensions_ = dimensions;
    coords_.clear();
  }

  /// Reserves capacity for `rows` rows at the current stride.
  void Reserve(size_t rows) { coords_.reserve(rows * dimensions_); }

  size_t dimensions() const { return dimensions_; }
  size_t size() const {
    return dimensions_ == 0 ? 0 : coords_.size() / dimensions_;
  }
  bool empty() const { return coords_.empty(); }

  /// Appends one row. Pre: p.size() == dimensions().
  void Append(const Point& p) {
    SENSORD_DCHECK_EQ(p.size(), dimensions_);
    coords_.insert(coords_.end(), p.begin(), p.end());
  }

  /// Appends an uninitialized row and returns a pointer to its
  /// `dimensions()` coordinates for the caller to fill.
  double* AppendRow() {
    const size_t offset = coords_.size();
    coords_.resize(offset + dimensions_);
    return coords_.data() + offset;
  }

  double At(size_t row, size_t i) const {
    SENSORD_DCHECK_LT(i, dimensions_);
    return coords_[row * dimensions_ + i];
  }
  const double* Row(size_t row) const {
    SENSORD_DCHECK_LT(row, size());
    return coords_.data() + row * dimensions_;
  }
  PointView View(size_t row) const {
    return PointView(Row(row), dimensions_);
  }
  Point ToPoint(size_t row) const { return View(row).ToPoint(); }

  /// Materializes every row as an owning Point (allocates; test/debug aid).
  std::vector<Point> ToPoints() const;

  /// The raw coordinate buffer, row-major.
  const std::vector<double>& data() const { return coords_; }

  /// Mutable access to the raw buffer for in-place reordering (e.g.
  /// std::sort of a 1-d sample). The caller must keep the length a multiple
  /// of dimensions() and may only permute coordinates within/between rows.
  std::vector<double>* mutable_data() { return &coords_; }

  void SwapRows(size_t a, size_t b) {
    double* ra = coords_.data() + a * dimensions_;
    double* rb = coords_.data() + b * dimensions_;
    for (size_t i = 0; i < dimensions_; ++i) std::swap(ra[i], rb[i]);
  }

  /// In-place heapsort of the rows under `less(row_a, row_b)` (a strict weak
  /// order over *current* row indices). Deterministic for a deterministic
  /// comparator and allocation-free; not stable — rows that compare
  /// equivalent may land in any relative order, so comparators defining a
  /// canonical order must make ties fully interchangeable.
  template <typename LessRows>
  void SortRows(LessRows less) {
    const size_t n = size();
    if (n < 2) return;
    for (size_t start = n / 2; start-- > 0;) SiftDown(start, n, less);
    for (size_t end = n - 1; end > 0; --end) {
      SwapRows(0, end);
      SiftDown(0, end, less);
    }
  }

  friend bool operator==(const FlatPoints& a, const FlatPoints& b) {
    return a.dimensions_ == b.dimensions_ && a.coords_ == b.coords_;
  }
  friend bool operator!=(const FlatPoints& a, const FlatPoints& b) {
    return !(a == b);
  }

 private:
  template <typename LessRows>
  void SiftDown(size_t root, size_t end, LessRows& less) {
    while (true) {
      size_t child = 2 * root + 1;
      if (child >= end) return;
      if (child + 1 < end && less(child, child + 1)) ++child;
      if (!less(root, child)) return;
      SwapRows(root, child);
      root = child;
    }
  }

  std::vector<double> coords_;
  size_t dimensions_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_UTIL_FLAT_POINTS_H_
