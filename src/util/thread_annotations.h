// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Clang thread-safety analysis annotations (-Wthread-safety).
//
// Under clang, GUARDED_BY(mu) on a field makes every unsynchronized access a
// compile error once the analysis is enabled; the SENSORD_THREAD_SAFETY
// CMake toggle promotes the warnings to errors, and scripts/ci.sh runs that
// configuration whenever a clang toolchain is available. Under other
// compilers the macros expand to nothing, so annotated code builds
// everywhere.
//
// The companion static rule (tools/lint/sensord_lint.py, thread-annotation)
// is compiler-independent: any class that owns a std::mutex must annotate
// every other non-atomic, non-const field, so the analysis model can never
// silently decay as fields are added.
//
// Annotation cheat sheet:
//   GUARDED_BY(mu)   field: reads/writes require holding mu
//   PT_GUARDED_BY(mu) pointer field: the pointee is protected by mu
//   REQUIRES(mu)     function: caller must hold mu
//   EXCLUDES(mu)     function: caller must NOT hold mu (it locks internally)
//   ACQUIRE/RELEASE  lock-management functions themselves

#ifndef SENSORD_UTIL_THREAD_ANNOTATIONS_H_
#define SENSORD_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define SENSORD_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SENSORD_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define GUARDED_BY(x) SENSORD_THREAD_ANNOTATION__(guarded_by(x))
#define PT_GUARDED_BY(x) SENSORD_THREAD_ANNOTATION__(pt_guarded_by(x))

#define REQUIRES(...) \
  SENSORD_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  SENSORD_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) SENSORD_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

#define ACQUIRE(...) \
  SENSORD_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  SENSORD_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

#define ACQUIRED_BEFORE(...) \
  SENSORD_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  SENSORD_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

#define CAPABILITY(x) SENSORD_THREAD_ANNOTATION__(capability(x))
#define SCOPED_CAPABILITY SENSORD_THREAD_ANNOTATION__(scoped_lockable)
#define RETURN_CAPABILITY(x) SENSORD_THREAD_ANNOTATION__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  SENSORD_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SENSORD_UTIL_THREAD_ANNOTATIONS_H_
