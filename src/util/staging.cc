#include "util/staging.h"

namespace sensord {
namespace {

thread_local OpLog* tls_current_log = nullptr;

}  // namespace

OpLog* OpLog::Current() { return tls_current_log; }

void OpLog::SetCurrent(OpLog* log) { tls_current_log = log; }

}  // namespace sensord
