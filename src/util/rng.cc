#include "util/rng.h"

#include <cmath>

namespace sensord {
namespace {

// SplitMix64: expands a single seed word into well-distributed state words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro256** requires non-zero state; SplitMix64 of any seed provides it
  // with overwhelming probability, but guard the pathological case anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * mul;
  has_cached_gaussian_ = true;
  return u * mul;
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::LoadState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;  // never from SaveState
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

Rng Rng::Split() {
  // Mix two fresh outputs into a child seed; advancing the parent guarantees
  // successive Split() calls yield distinct children.
  const uint64_t a = NextUint64();
  const uint64_t b = NextUint64();
  return Rng(a ^ Rotl(b, 31) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace sensord
