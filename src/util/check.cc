#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace sensord {
namespace internal {

void CheckFailed(const char* file, int line, const std::string& message) {
  // Plain stderr rather than the logging layer: a failed invariant must
  // reach the operator even if logging itself is misconfigured or the
  // failure happens during static initialization.
  std::fprintf(stderr, "CHECK failure at %s:%d: %s\n", file, line,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace sensord
