#include "util/flat_points.h"

namespace sensord {

FlatPoints FlatPoints::FromPoints(const std::vector<Point>& points) {
  FlatPoints out(points.empty() ? 0 : points.front().size());
  out.Reserve(points.size());
  for (const Point& p : points) out.Append(p);
  return out;
}

std::vector<Point> FlatPoints::ToPoints() const {
  std::vector<Point> out;
  out.reserve(size());
  for (size_t row = 0; row < size(); ++row) out.push_back(ToPoint(row));
  return out;
}

}  // namespace sensord
