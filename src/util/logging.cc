#include "util/logging.h"

#include <atomic>
#include <cstdio>

namespace sensord {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::string* g_test_sink = nullptr;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }
void SetLogSinkForTest(std::string* sink) { g_test_sink = sink; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    if (g_test_sink != nullptr) {
      g_test_sink->append(stream_.str());
      g_test_sink->push_back('\n');
    } else {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
    }
  }
  (void)level_;
}

}  // namespace internal
}  // namespace sensord
