#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/thread_annotations.h"

namespace sensord {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Destination of finished log lines. The mutex serializes sink swaps
// against emission, so concurrent loggers never interleave within a line
// and a test sink can be detached without racing an in-flight message.
struct LogSink {
  std::mutex mu;
  std::string* test_sink GUARDED_BY(mu) = nullptr;
};

LogSink& Sink() {
  // Leaked: loggers in static destructors must still find a live sink.
  static LogSink* sink = new LogSink();
  return *sink;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSinkForTest(std::string* sink) {
  const std::lock_guard<std::mutex> lock(Sink().mu);
  Sink().test_sink = sink;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    const std::lock_guard<std::mutex> lock(Sink().mu);
    if (Sink().test_sink != nullptr) {
      Sink().test_sink->append(stream_.str());
      Sink().test_sink->push_back('\n');
    } else {
      std::fprintf(stderr, "%s\n", stream_.str().c_str());
    }
  }
  (void)level_;
}

}  // namespace internal
}  // namespace sensord
