// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Runtime invariant checks, RocksDB/Abseil-style.
//
// Policy (see README "Building with sanitizers & running lint"):
//  * SENSORD_CHECK*  — always on, in every build type. Use for cheap
//    preconditions whose violation means the process must not continue:
//    constructor arguments, API contracts at subsystem boundaries, and
//    "this Status can never fail here" assertions. A failure prints the
//    expression (and operand values for the comparison forms) with its
//    file:line and aborts, so the bug is caught at the line it happened.
//  * SENSORD_DCHECK* — compiled out of Release (NDEBUG) builds, like
//    assert. Use on hot paths: per-element index checks, per-event queue
//    invariants, per-observation dimension checks. The asan-ubsan and tsan
//    presets build Debug, so sanitizer runs exercise every DCHECK.
//
// All macros evaluate their operands exactly once (never zero times when
// active), and the compiled-out DCHECK forms still type-check their
// arguments, so a DCHECK-only expression cannot rot silently.

#ifndef SENSORD_UTIL_CHECK_H_
#define SENSORD_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace sensord {
namespace internal {

/// Prints "CHECK failure at file:line: message" to stderr and aborts.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

/// Renders one operand of a failed comparison check for the error message.
template <typename T>
std::string CheckOpValue(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

/// Renders a failed Status or StatusOr for SENSORD_CHECK_OK's message.
template <typename T>
std::string CheckOkToString(const T& status_like) {
  if constexpr (requires { status_like.ToString(); }) {
    return status_like.ToString();
  } else {
    return status_like.status().ToString();
  }
}

}  // namespace internal
}  // namespace sensord

/// Always-on invariant: aborts with the stringified condition on failure.
#define SENSORD_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::sensord::internal::CheckFailed(                                   \
          __FILE__, __LINE__, "SENSORD_CHECK(" #cond ") failed");         \
    }                                                                     \
  } while (false)

/// Always-on: `expr` must be an OK Status (or StatusOr). Prints the status
/// on failure. Works with any type exposing ok() and ToString().
#define SENSORD_CHECK_OK(expr)                                            \
  do {                                                                    \
    const auto& _sensord_check_status = (expr);                           \
    if (!_sensord_check_status.ok()) {                                    \
      ::sensord::internal::CheckFailed(                                   \
          __FILE__, __LINE__,                                             \
          std::string("SENSORD_CHECK_OK(" #expr ") failed: ") +           \
              ::sensord::internal::CheckOkToString(_sensord_check_status)); \
    }                                                                     \
  } while (false)

// Comparison form: evaluates each operand once and prints both values on
// failure, e.g. "SENSORD_CHECK_LT(i, size()) failed: 7 vs. 5".
#define SENSORD_INTERNAL_CHECK_OP(name, op, a, b)                         \
  do {                                                                    \
    const auto& _sensord_lhs = (a);                                       \
    const auto& _sensord_rhs = (b);                                       \
    if (!(_sensord_lhs op _sensord_rhs)) {                                \
      ::sensord::internal::CheckFailed(                                   \
          __FILE__, __LINE__,                                             \
          std::string(name "(" #a ", " #b ") failed: ") +                 \
              ::sensord::internal::CheckOpValue(_sensord_lhs) + " vs. " + \
              ::sensord::internal::CheckOpValue(_sensord_rhs));           \
    }                                                                     \
  } while (false)

#define SENSORD_CHECK_EQ(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_EQ", ==, a, b)
#define SENSORD_CHECK_NE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_NE", !=, a, b)
#define SENSORD_CHECK_LE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_LE", <=, a, b)
#define SENSORD_CHECK_LT(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_LT", <, a, b)
#define SENSORD_CHECK_GE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_GE", >=, a, b)
#define SENSORD_CHECK_GT(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_CHECK_GT", >, a, b)

// Debug-only variants. SENSORD_DCHECK_IS_ON() lets tests and slow invariant
// sweeps compile conditionally.
#if defined(NDEBUG) && !defined(SENSORD_DCHECK_ALWAYS_ON)

#define SENSORD_DCHECK_IS_ON() 0

// The operands stay inside an `if (false)` so they are type-checked but
// never evaluated; side effects in DCHECK arguments are a bug anyway.
#define SENSORD_DCHECK(cond) \
  do {                       \
    if (false) {             \
      (void)(cond);          \
    }                        \
  } while (false)
#define SENSORD_INTERNAL_DCHECK_NOP(a, b) \
  do {                                    \
    if (false) {                          \
      (void)(a);                          \
      (void)(b);                          \
    }                                     \
  } while (false)
#define SENSORD_DCHECK_OK(expr)     \
  do {                              \
    if (false) {                    \
      (void)(expr).ok();            \
    }                               \
  } while (false)
#define SENSORD_DCHECK_EQ(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)
#define SENSORD_DCHECK_NE(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)
#define SENSORD_DCHECK_LE(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)
#define SENSORD_DCHECK_LT(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)
#define SENSORD_DCHECK_GE(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)
#define SENSORD_DCHECK_GT(a, b) SENSORD_INTERNAL_DCHECK_NOP(a, b)

#else  // !NDEBUG || SENSORD_DCHECK_ALWAYS_ON

#define SENSORD_DCHECK_IS_ON() 1

#define SENSORD_DCHECK(cond) SENSORD_CHECK(cond)
#define SENSORD_DCHECK_OK(expr) SENSORD_CHECK_OK(expr)
#define SENSORD_DCHECK_EQ(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_EQ", ==, a, b)
#define SENSORD_DCHECK_NE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_NE", !=, a, b)
#define SENSORD_DCHECK_LE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_LE", <=, a, b)
#define SENSORD_DCHECK_LT(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_LT", <, a, b)
#define SENSORD_DCHECK_GE(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_GE", >=, a, b)
#define SENSORD_DCHECK_GT(a, b) \
  SENSORD_INTERNAL_CHECK_OP("SENSORD_DCHECK_GT", >, a, b)

#endif  // NDEBUG && !SENSORD_DCHECK_ALWAYS_ON

#endif  // SENSORD_UTIL_CHECK_H_
