// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Side-effect staging for the deterministic parallel engine (DESIGN.md §12).
//
// When the Simulator shards one virtual tick's node handlers across a worker
// pool, every side effect whose *order* is observable — message sends,
// event-queue insertions, trace/flight JSONL emission, floating-point metric
// accumulation, outlier-observer callbacks — must not execute on the worker
// thread that happens to run the handler. Instead the handler appends the
// effect, as a closure, to the OpLog of the batch item it belongs to; after
// the tick barrier the engine replays every item's log in event-sequence
// order on the driver thread. An N-thread run therefore performs exactly the
// side-effect sequence of the 1-thread run, byte for byte.
//
// The mechanism is a thread-local "current log" pointer:
//
//   * Outside the parallel engine the pointer is null and every
//     instrumentation point executes its effect inline — the classic serial
//     simulator pays one thread-local load and a branch.
//   * The engine points it at a batch item's log around the item's prep and
//     handler phases; the interception points in net/, obs/ and core/ then
//     divert into the log. Each log is touched by exactly one thread at a
//     time, so the OpLog itself needs no lock.
//
// Effects that commute exactly — integer counter increments, per-link dedup
// bookkeeping — are NOT staged; staging is for ordered streams (JSONL
// sinks, rng consumers, the event queue) and non-associative accumulation
// (floating-point sums).

#ifndef SENSORD_UTIL_STAGING_H_
#define SENSORD_UTIL_STAGING_H_

#include <functional>
#include <utility>
#include <vector>

namespace sensord {

/// An ordered list of deferred side effects, recorded by one thread and
/// replayed later on the driver thread.
class OpLog {
 public:
  /// Appends one effect.
  void Push(std::function<void()> op) { ops_.push_back(std::move(op)); }

  /// Runs every recorded effect in append order, then clears the log.
  /// Pre: no log is current on this thread (effects execute for real).
  void Replay() {
    for (auto& op : ops_) op();
    ops_.clear();
  }

  bool Empty() const { return ops_.empty(); }
  size_t Size() const { return ops_.size(); }
  void Clear() { ops_.clear(); }

  /// The log side effects on the calling thread divert into, or null when
  /// effects execute inline (the serial default).
  static OpLog* Current();

  /// Installs `log` as the calling thread's current log (null restores
  /// inline execution). The engine brackets prep/handler phases with this.
  static void SetCurrent(OpLog* log);

 private:
  std::vector<std::function<void()>> ops_;
};

/// Executes `fn` inline when no log is current, otherwise stages it. The
/// single idiom every interception point uses; `fn` must own (capture by
/// value) everything it touches, since replay happens after the caller's
/// frame is gone.
template <typename Fn>
inline void RunOrStage(Fn&& fn) {
  if (OpLog* log = OpLog::Current()) {
    log->Push(std::forward<Fn>(fn));
  } else {
    fn();
  }
}

}  // namespace sensord

#endif  // SENSORD_UTIL_STAGING_H_
