// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// RocksDB-style Status / StatusOr error handling. Fallible operations in
// sensord return a Status (or StatusOr<T>) rather than throwing: sensors are
// long-running unattended processes and every failure must be an explicit,
// inspectable value on the caller's path.

#ifndef SENSORD_UTIL_STATUS_H_
#define SENSORD_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace sensord {

/// Result of a fallible operation.
///
/// A Status is either OK or carries a code and a human-readable message.
/// Statuses are cheap to copy (the message is only allocated on error).
/// [[nodiscard]]: ignoring a returned Status silently drops a failure —
/// callers must handle it, propagate it, or deliberately `(void)` it.
class [[nodiscard]] Status {
 public:
  /// Error taxonomy. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,  ///< caller passed a value outside the documented domain
    kNotFound,         ///< a named entity (node, file, column) does not exist
    kOutOfRange,       ///< index/time outside the current window or domain
    kFailedPrecondition,  ///< object not in a state that permits the call
    kIoError,          ///< trace file or OS-level I/O failure
    kInternal,         ///< invariant violation: a bug in sensord itself
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  Code code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>" — for logs and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit: enables `return value;`).
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status (implicit: enables `return status;`).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SENSORD_CHECK(!status_.ok() &&
                  "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok(). Accessing the value of an errored StatusOr is a program bug.
  const T& value() const& {
    SENSORD_DCHECK(ok());
    return *value_;
  }
  T& value() & {
    SENSORD_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    SENSORD_DCHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller: `SENSORD_RETURN_IF_ERROR(DoX());`
#define SENSORD_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::sensord::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace sensord

#endif  // SENSORD_UTIL_STATUS_H_
