// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Minimal leveled logging. The benches and examples use this to narrate
// experiment progress; the library core stays silent below kWarning.

#ifndef SENSORD_UTIL_LOGGING_H_
#define SENSORD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sensord {

/// Severity of a log line. kDebug lines are compiled in but filtered at
/// runtime by the global threshold.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that reaches stderr. Default: kInfo.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

/// Redirects finished log lines into `*sink` (appended, one '\n'-terminated
/// line per message) instead of stderr. Pass nullptr to restore stderr.
/// Emission and sink swaps are mutex-serialized, so lines never interleave;
/// the sink object itself must outlive the redirection.
void SetLogSinkForTest(std::string* sink);

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
///
/// Tag() and Node() extend the standard "[LEVEL file:line]" prefix with a
/// component name and a simulated-node id, so interleaved per-node output
/// stays attributable: SENSORD_LOG(Info).Tag("d3").Node(id()) << ...
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// Appends "[component] " to the line's prefix.
  LogMessage& Tag(const char* component) {
    if (enabled_) stream_ << "[" << component << "] ";
    return *this;
  }

  /// Appends "[node N] " to the line's prefix.
  LogMessage& Node(long long id) {
    if (enabled_) stream_ << "[node " << id << "] ";
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SENSORD_LOG(level)                                            \
  ::sensord::internal::LogMessage(::sensord::LogLevel::k##level,      \
                                  __FILE__, __LINE__)

}  // namespace sensord

#endif  // SENSORD_UTIL_LOGGING_H_
