// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Minimal leveled logging. The benches and examples use this to narrate
// experiment progress; the library core stays silent below kWarning.

#ifndef SENSORD_UTIL_LOGGING_H_
#define SENSORD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sensord {

/// Severity of a log line. kDebug lines are compiled in but filtered at
/// runtime by the global threshold.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that reaches stderr. Default: kInfo.
void SetLogLevel(LogLevel level);

/// Current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SENSORD_LOG(level)                                            \
  ::sensord::internal::LogMessage(::sensord::LogLevel::k##level,      \
                                  __FILE__, __LINE__)

}  // namespace sensord

#endif  // SENSORD_UTIL_LOGGING_H_
