#include "util/math_utils.h"

#include "util/check.h"

namespace sensord {

bool InUnitCube(const Point& p) {
  for (double x : p) {
    if (!(x >= 0.0 && x <= 1.0)) return false;
  }
  return true;
}

double Median(std::vector<double> v) {
  SENSORD_CHECK(!v.empty());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  const double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(std::vector<double> v, double q) {
  SENSORD_CHECK(!v.empty());
  std::sort(v.begin(), v.end());
  return QuantileSorted(v, q);
}

double QuantileSorted(const std::vector<double>& v, double q) {
  SENSORD_CHECK(!v.empty());
  SENSORD_CHECK_GE(q, 0.0);
  SENSORD_CHECK_LE(q, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

int Log2Ceil(size_t x) {
  SENSORD_CHECK_GE(x, 1u);
  int bits = 0;
  size_t v = 1;
  while (v < x) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace sensord
