// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Umbrella header: includes the whole public API. Convenient for
// applications; larger builds may prefer including the specific module
// headers (each is self-contained and documented).

#ifndef SENSORD_SENSORD_H_
#define SENSORD_SENSORD_H_

// Utilities.
#include "util/logging.h"    // IWYU pragma: export
#include "util/math_utils.h" // IWYU pragma: export
#include "util/rng.h"        // IWYU pragma: export
#include "util/status.h"     // IWYU pragma: export

// Streaming substrate.
#include "stream/chain_sample.h"    // IWYU pragma: export
#include "stream/sliding_window.h"  // IWYU pragma: export
#include "stream/variance_sketch.h" // IWYU pragma: export

// Non-parametric estimation.
#include "stats/bandwidth.h"  // IWYU pragma: export
#include "stats/divergence.h" // IWYU pragma: export
#include "stats/empirical.h"  // IWYU pragma: export
#include "stats/estimator.h"  // IWYU pragma: export
#include "stats/histogram.h"  // IWYU pragma: export
#include "stats/kde.h"        // IWYU pragma: export
#include "stats/kernel.h"     // IWYU pragma: export
#include "stats/moments.h"    // IWYU pragma: export
#include "stats/wavelet.h"    // IWYU pragma: export

// Sensor-network simulator.
#include "net/event_queue.h"     // IWYU pragma: export
#include "net/fault_schedule.h"  // IWYU pragma: export
#include "net/hierarchy.h"       // IWYU pragma: export
#include "net/leader_election.h" // IWYU pragma: export
#include "net/message.h"         // IWYU pragma: export
#include "net/network.h"         // IWYU pragma: export
#include "net/node.h"            // IWYU pragma: export
#include "net/stats_collector.h" // IWYU pragma: export
#include "net/transport.h"       // IWYU pragma: export

// The paper's algorithms and applications.
#include "core/config.h"           // IWYU pragma: export
#include "core/d3.h"               // IWYU pragma: export
#include "core/density_model.h"    // IWYU pragma: export
#include "core/distance_outlier.h" // IWYU pragma: export
#include "core/faulty_sensor.h"    // IWYU pragma: export
#include "core/mdef.h"             // IWYU pragma: export
#include "core/mgdd.h"             // IWYU pragma: export
#include "core/outlier_observer.h" // IWYU pragma: export
#include "core/protocol.h"         // IWYU pragma: export
#include "core/query_processing.h" // IWYU pragma: export
#include "core/range_query.h"      // IWYU pragma: export

// Baselines and ground truth.
#include "baseline/brute_force_d.h" // IWYU pragma: export
#include "baseline/brute_force_m.h" // IWYU pragma: export
#include "baseline/centralized.h"   // IWYU pragma: export

// Workloads and trace I/O.
#include "data/analytic.h"            // IWYU pragma: export
#include "data/engine_trace.h"        // IWYU pragma: export
#include "data/environmental_trace.h" // IWYU pragma: export
#include "data/normalize.h"           // IWYU pragma: export
#include "data/shift_trace.h"         // IWYU pragma: export
#include "data/stream_source.h"       // IWYU pragma: export
#include "data/synthetic.h"           // IWYU pragma: export
#include "data/trace_io.h"            // IWYU pragma: export

// Evaluation harness.
#include "eval/box_counter.h"  // IWYU pragma: export
#include "eval/experiment.h"   // IWYU pragma: export
#include "eval/ground_truth.h" // IWYU pragma: export
#include "eval/scoring.h"      // IWYU pragma: export

#endif  // SENSORD_SENSORD_H_
