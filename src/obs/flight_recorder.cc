#include "obs/flight_recorder.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <vector>

#include "util/staging.h"
#include "util/thread_annotations.h"

namespace sensord::obs {

namespace internal {
std::atomic<bool> g_flight_enabled{false};
}  // namespace internal

namespace {

// One node's ring: a fixed vector written modulo capacity. `total` counts
// every event ever recorded since the last dump/clear, so dumps can report
// how many events the ring evicted.
struct Ring {
  std::vector<FlightEvent> slots;
  uint64_t total = 0;  // events recorded since the last dump
};

// Rings, capacity, and the dump sink change together; one mutex guards them
// all (the trace-sink model: hot-path gate is the atomic, everything else
// locks).
struct RecorderState {
  std::mutex mu;
  size_t capacity GUARDED_BY(mu) = 64;
  std::map<int64_t, Ring> rings GUARDED_BY(mu);
  FILE* sink GUARDED_BY(mu) = nullptr;
};

RecorderState& State() {
  // Leaked: dumps from static destructors must still find live state.
  static RecorderState* state = new RecorderState();
  return *state;
}

// Writes one event line. The caller holds the state mutex and has checked
// the sink. Values are %.9g — same rendering as the span sink, so two
// same-seed runs print identical bytes.
void WriteEventLine(FILE* sink, int64_t node, const FlightEvent& e) {
  std::fprintf(sink,
               "{\"fr\":\"%s\",\"node\":%lld,\"vt\":%.9g,\"a\":%lld,"
               "\"b\":%lld,\"value\":%.9g}\n",
               FlightEventKindName(e.kind), static_cast<long long>(node),
               e.vt, static_cast<long long>(e.a), static_cast<long long>(e.b),
               e.value);
}

// Dumps one ring. The caller holds the state mutex.
void DumpRingLocked(RecorderState& state, int64_t node, Ring& ring,
                    const char* reason, double vt) {
  if (state.sink == nullptr || ring.total == 0) return;
  const size_t kept =
      ring.total < ring.slots.size() ? static_cast<size_t>(ring.total)
                                     : ring.slots.size();
  std::fprintf(state.sink,
               "{\"flight\":\"%s\",\"node\":%lld,\"vt\":%.9g,\"events\":%zu,"
               "\"evicted\":%llu}\n",
               reason, static_cast<long long>(node), vt, kept,
               static_cast<unsigned long long>(ring.total - kept));
  // Oldest first: the ring's write cursor is total % capacity, so the
  // oldest retained slot sits right at the cursor once the ring has lapped.
  const size_t start =
      ring.total < ring.slots.size()
          ? 0
          : static_cast<size_t>(ring.total % ring.slots.size());
  for (size_t i = 0; i < kept; ++i) {
    WriteEventLine(state.sink, node,
                   ring.slots[(start + i) % ring.slots.size()]);
  }
  ring.total = 0;
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kReading: return "reading";
    case FlightEventKind::kSend: return "send";
    case FlightEventKind::kDeliver: return "deliver";
    case FlightEventKind::kDrop: return "drop";
    case FlightEventKind::kAck: return "ack";
    case FlightEventKind::kCheckpoint: return "checkpoint";
    case FlightEventKind::kRestart: return "restart";
    case FlightEventKind::kQuarantine: return "quarantine";
    case FlightEventKind::kRejoin: return "rejoin";
  }
  return "unknown";
}

void FlightRecorder::Enable(size_t capacity_per_node) {
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.capacity = capacity_per_node < 1 ? 1 : capacity_per_node;
  state.rings.clear();
  internal::g_flight_enabled.store(true, std::memory_order_release);
}

void FlightRecorder::Disable() {
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  internal::g_flight_enabled.store(false, std::memory_order_release);
  state.rings.clear();
}

Status FlightRecorder::OpenDumpSink(const std::string& path) {
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.sink != nullptr) {
    std::fclose(state.sink);
    state.sink = nullptr;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open flight dump sink: " + path);
  }
  state.sink = f;
  return Status::Ok();
}

void FlightRecorder::CloseDumpSink() {
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.sink != nullptr) {
    std::fclose(state.sink);
    state.sink = nullptr;
  }
}

void FlightRecorder::RecordSlow(int64_t node, FlightEventKind kind, double vt,
                                int64_t a, int64_t b, double value) {
  // Ring contents are an ordered history; under the parallel engine a
  // record made on a worker thread is staged and replayed in event order
  // (util/staging.h — replay re-enters with no log current).
  if (OpLog* log = OpLog::Current()) {
    log->Push([node, kind, vt, a, b, value]() {
      RecordSlow(node, kind, vt, a, b, value);
    });
    return;
  }
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  // Enable() may have lost a race with the gate check; re-check under the
  // lock so a ring is never touched after Disable() cleared it.
  if (!internal::g_flight_enabled.load(std::memory_order_relaxed)) return;
  Ring& ring = state.rings[node];
  if (ring.slots.size() != state.capacity) {
    ring.slots.assign(state.capacity, FlightEvent{});
    ring.total = 0;
  }
  ring.slots[static_cast<size_t>(ring.total % ring.slots.size())] =
      FlightEvent{vt, kind, a, b, value};
  ++ring.total;
}

void FlightRecorder::Dump(int64_t node, const char* reason, double vt) {
  if (!Enabled()) return;
  // Dumps write JSONL whose position among other staged emissions is
  // observable; `reason` is a string literal by contract, safe to capture.
  if (OpLog* log = OpLog::Current()) {
    log->Push([node, reason, vt]() { Dump(node, reason, vt); });
    return;
  }
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.rings.find(node);
  if (it == state.rings.end()) return;
  DumpRingLocked(state, node, it->second, reason, vt);
}

void FlightRecorder::DumpAll(const char* reason) {
  if (!Enabled()) return;
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  // std::map: ascending node id, deterministic dump order.
  for (auto& [node, ring] : state.rings) {
    DumpRingLocked(state, node, ring, reason, 0.0);
  }
}

size_t FlightRecorder::BufferedEventsForTest(int64_t node) {
  RecorderState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.rings.find(node);
  if (it == state.rings.end()) return 0;
  const Ring& ring = it->second;
  return ring.total < ring.slots.size() ? static_cast<size_t>(ring.total)
                                        : ring.slots.size();
}

}  // namespace sensord::obs
