// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The sensord metrics layer: monotonic counters, gauges and fixed-boundary
// histograms, registered by dotted name (`subsystem.object.metric`) in a
// process-wide MetricsRegistry.
//
// The paper's evaluation (Sections 9-10) is entirely about quantities a
// running system must be able to report — messages per tier, sample
// propagation volume, per-update latency — so the hot paths in stream/,
// core/ and net/ feed these metrics unconditionally. The design budget is a
// few nanoseconds per event: updates are single relaxed atomic operations
// (lock-free; no locks, no allocation), and call sites cache the metric
// pointer in a function-local static so the registry lookup happens once per
// process. Registration takes a mutex; it is off the hot path by
// construction.
//
// Snapshots (and the exporters built on them, see obs/exporters.h) read the
// atomics without stopping writers, so a long simulation can be observed
// mid-run.

#ifndef SENSORD_OBS_METRICS_H_
#define SENSORD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace sensord::obs {

/// Adds `delta` to an atomic double with relaxed CAS (fetch_add for
/// floating-point atomics is C++20 but spotty in shipped libstdc++).
inline void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// A monotonically increasing event count. Updates are one relaxed
/// fetch_add; reads are one relaxed load.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  /// Counters are monotonic; resetting is reserved for the registry's
  /// ResetValues (test isolation and bench warm-up epochs).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// A last-written-value metric (queue depths, model sizes, configuration).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { AtomicAddDouble(value_, delta); }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// A fixed-boundary histogram for latency and size distributions.
///
/// Bucket i < boundaries.size() counts values in (boundaries[i-1],
/// boundaries[i]] (the first bucket is unbounded below); one overflow bucket
/// counts values above the last boundary. Record() is two relaxed atomic
/// updates plus a binary search over the boundaries. Quantiles are
/// interpolated within the containing bucket, so they are exact to within
/// one bucket width — size the boundaries to the precision the metric needs.
class Histogram {
 public:
  /// `count` boundaries at start, start*factor, start*factor^2, ...
  /// The standard latency layout is ExponentialBoundaries(16, 2, 26):
  /// 16ns .. ~0.5s. Pre: start > 0, factor > 1, count >= 1.
  static std::vector<double> ExponentialBoundaries(double start, double factor,
                                                   size_t count);

  /// `count` boundaries at start, start+step, ... Pre: step > 0, count >= 1.
  static std::vector<double> LinearBoundaries(double start, double step,
                                              size_t count);

  void Record(double value);

  /// Total recorded values (sums the buckets; intended for snapshots and
  /// tests, not per-event use).
  uint64_t Count() const;

  /// Sum of recorded values.
  double Sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Interpolated q-quantile of the recorded values (q in [0, 1]); exact to
  /// within one bucket width. Returns 0 when empty; values in the overflow
  /// bucket clamp to the last boundary.
  double Quantile(double q) const;

  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Count in bucket `i`. Pre: i <= boundaries().size() (the last index is
  /// the overflow bucket).
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  /// Pre: boundaries non-empty and strictly increasing.
  explicit Histogram(std::vector<double> boundaries);
  void Reset();

  std::vector<double> boundaries_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // boundaries_.size()+1
  std::atomic<double> sum_{0.0};
};

/// What a metric is; used by snapshots and the collision check.
enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time reading of one metric, for exporters.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;  // kCounter
  double gauge_value = 0.0;    // kGauge
  // kHistogram:
  uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double hist_p50 = 0.0;
  double hist_p95 = 0.0;
  double hist_p99 = 0.0;
  /// Bucket layout in ascending boundary order (buckets has one extra
  /// trailing overflow entry), so exporters emit buckets in a stable order
  /// and same-seed artifacts diff cleanly.
  std::vector<double> hist_boundaries;
  std::vector<uint64_t> hist_buckets;
};

/// Registry of metrics by dotted name. Registration is idempotent: asking
/// for an existing name of the same kind returns the same object (so
/// translation units can independently name-register the metric they feed),
/// while re-registering a name as a different kind is a programming error
/// (SENSORD_CHECK). Returned pointers are stable for the registry's
/// lifetime; metrics are never unregistered.
///
/// MetricsRegistry::Global() is the process-wide instance every shipped
/// instrumentation site uses; separate instances exist for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  /// Registers (or finds) a counter. Pre: `name` is not another kind.
  Counter* GetCounter(const std::string& name);

  /// Registers (or finds) a gauge. Pre: `name` is not another kind.
  Gauge* GetGauge(const std::string& name);

  /// Registers (or finds) a histogram. On first registration the boundaries
  /// must be non-empty and strictly increasing; later calls return the
  /// existing histogram and ignore `boundaries`. Pre: `name` is not another
  /// kind.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> boundaries);

  /// Number of registered metrics.
  size_t size() const;

  /// Reads every metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes every metric's value without invalidating registered pointers.
  /// For test isolation and bench warm-up epochs only: counters are
  /// conceptually monotonic.
  void ResetValues();

  /// Zeroes the *global* registry — the canonical way a test isolates
  /// itself from counters earlier tests bled into Global(). Prefer the
  /// ScopedMetricsReset RAII below, which also re-zeroes on scope exit so
  /// the test leaves no residue for its successors either.
  static void ResetForTest() { Global().ResetValues(); }

 private:
  // Rejects (SENSORD_CHECK) `name` registered under a different kind.
  void CheckKindCollision(const std::string& name, MetricKind kind) const
      REQUIRES(mu_);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

/// The standard latency histogram layout: exponential 16ns .. ~0.5s.
std::vector<double> LatencyBoundariesNs();

/// The standard size histogram layout: exponential 1 .. 32768.
std::vector<double> SizeBoundaries();

/// The standard virtual-time duration layout: exponential 0.125s .. ~4096s.
/// Used by recovery metrics (e.g. recovery.time_to_recover_s) whose values
/// are simulated seconds, not wall-clock nanoseconds.
std::vector<double> DurationBoundariesS();

/// The detection-latency layout: exponential 0.1ms .. ~840s of *virtual*
/// time. Sized for the detection.latency_s.level<N> histograms (DESIGN.md
/// §11): one hop costs ~1ms, so sub-second chains need sub-millisecond
/// resolution, while retransmit-delayed escalations reach tens of seconds.
std::vector<double> DetectionLatencyBoundariesS();

/// Zeroes the global registry on construction AND destruction: the test
/// body observes only its own increments, and the next test inherits a
/// clean slate regardless of how this one exits.
class ScopedMetricsReset {
 public:
  ScopedMetricsReset() { MetricsRegistry::ResetForTest(); }
  ~ScopedMetricsReset() { MetricsRegistry::ResetForTest(); }

  ScopedMetricsReset(const ScopedMetricsReset&) = delete;
  ScopedMetricsReset& operator=(const ScopedMetricsReset&) = delete;
};

}  // namespace sensord::obs

#endif  // SENSORD_OBS_METRICS_H_
