// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Per-node flight recorder (DESIGN.md §11): a fixed-capacity ring buffer of
// each node's most recent activity — readings, sends, deliveries, drops,
// acks, checkpoints, restarts, quarantine transitions — dumped as
// deterministic JSONL when something goes wrong (crash, rejoin, quarantine)
// so the black box of the failing node survives the failure.
//
// Cost contract (the BM_ObsDisabledFlightRecorder micro-benchmark holds
// this): disabled — the default — Record() is exactly one relaxed atomic
// load, no locks, no allocation. Enabled, a record is a mutex acquisition
// and one POD slot write; the ring allocates once per node at its first
// record and never again.
//
// Determinism: events are stamped with event-queue virtual time and dumps
// are ordered oldest-first by ring position, so two same-seed runs dump
// byte-identical JSONL (the determinism suite asserts this; the wall clock
// is never read — tools/lint/sensord_lint.py enforces it).

#ifndef SENSORD_OBS_FLIGHT_RECORDER_H_
#define SENSORD_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace sensord::obs {

/// What happened. Kinds are stable wire names (FlightEventKindName) in the
/// dump JSONL; append new kinds at the end.
enum class FlightEventKind : uint8_t {
  kReading = 0,     ///< sensor reading ingested (value = first coordinate)
  kSend,            ///< transmission attempt (a = peer, b = message kind)
  kDeliver,         ///< data message delivered (a = peer, b = message kind)
  kDrop,            ///< transmission lost (a = peer, b = message kind)
  kAck,             ///< transport ack received (a = peer, b = acked seq)
  kCheckpoint,      ///< volatile state checkpointed (value = bytes)
  kRestart,         ///< amnesia restart completed (a = restored, b = epoch)
  kQuarantine,      ///< stuck-sensor quarantine began (value = reading)
  kRejoin,          ///< rejoin announce sent (a = recovered flag)
};

/// Short stable identifier of `kind` ("reading", "send", ...).
const char* FlightEventKindName(FlightEventKind kind);

/// One ring slot. POD: recording never allocates.
struct FlightEvent {
  double vt = 0.0;
  FlightEventKind kind = FlightEventKind::kReading;
  int64_t a = 0;
  int64_t b = 0;
  double value = 0.0;
};

namespace internal {
/// The process-wide enable gate; exposed so the inline Record() fast path
/// compiles to a single relaxed load. Not part of the public API.
extern std::atomic<bool> g_flight_enabled;
}  // namespace internal

/// Process-wide recorder: per-node rings behind one mutex (the simulator is
/// single-threaded; the mutex guards against observer threads reading a
/// snapshot mid-run, same model as the trace sink).
class FlightRecorder {
 public:
  /// True while recording is enabled. One relaxed atomic load.
  static bool Enabled() {
    return internal::g_flight_enabled.load(std::memory_order_relaxed);
  }

  /// Enables recording with `capacity_per_node` ring slots per node.
  /// Existing rings are cleared and re-sized. Pre: capacity >= 1.
  static void Enable(size_t capacity_per_node = 64);

  /// Disables recording and discards every ring.
  static void Disable();

  /// Opens (or truncates) `path` as the JSONL dump sink. Dumps with no sink
  /// open are dropped. Returns IoError if the file cannot be opened.
  static Status OpenDumpSink(const std::string& path);

  /// Flushes and closes the dump sink.
  static void CloseDumpSink();

  /// Records one event into `node`'s ring. Disabled: one relaxed load.
  static void Record(int64_t node, FlightEventKind kind, double vt,
                     int64_t a = 0, int64_t b = 0, double value = 0.0) {
    if (!Enabled()) return;
    RecordSlow(node, kind, vt, a, b, value);
  }

  /// Dumps `node`'s ring to the sink as JSONL — one header line
  /// ({"flight":reason,...}) followed by one line per buffered event,
  /// oldest first — then clears the ring (each dump covers the window since
  /// the previous one). No-op when disabled or the node has no events.
  static void Dump(int64_t node, const char* reason, double vt);

  /// Dumps every node's ring (ascending node id), e.g. at shutdown.
  static void DumpAll(const char* reason);

  /// Buffered (not yet dumped) events of `node`; test hook.
  static size_t BufferedEventsForTest(int64_t node);

 private:
  static void RecordSlow(int64_t node, FlightEventKind kind, double vt,
                         int64_t a, int64_t b, double value);
};

}  // namespace sensord::obs

#endif  // SENSORD_OBS_FLIGHT_RECORDER_H_
