#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace sensord::obs {
namespace {

std::atomic<bool> g_timing_enabled{false};

// Sink state: the atomic flag is the hot-path check; the mutex serializes
// open/close/write so records never interleave.
std::atomic<bool> g_sink_enabled{false};
std::mutex g_sink_mu;
FILE* g_sink_file = nullptr;  // guarded by g_sink_mu

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

Status OpenTraceSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink_file != nullptr) {
    std::fclose(g_sink_file);
    g_sink_file = nullptr;
    g_sink_enabled.store(false, std::memory_order_release);
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace sink: " + path);
  }
  g_sink_file = f;
  g_sink_enabled.store(true, std::memory_order_release);
  return Status::Ok();
}

void CloseTraceSink() {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink_enabled.store(false, std::memory_order_release);
  if (g_sink_file != nullptr) {
    std::fclose(g_sink_file);
    g_sink_file = nullptr;
  }
}

bool TraceSinkEnabled() {
  return g_sink_enabled.load(std::memory_order_relaxed);
}

namespace internal {

void WriteTraceEvent(const char* name, int64_t node, double virtual_time,
                     uint64_t begin_ns, uint64_t end_ns) {
  char line[256];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"name\":\"%s\",\"node\":%lld,\"vt\":%.9g,\"begin_ns\":%llu,"
      "\"end_ns\":%llu}\n",
      name, static_cast<long long>(node), virtual_time,
      static_cast<unsigned long long>(begin_ns),
      static_cast<unsigned long long>(end_ns));
  // A span name long enough to overflow the buffer would truncate to invalid
  // JSON; drop the record instead (names are short literals by contract).
  if (len <= 0 || len >= static_cast<int>(sizeof(line))) return;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_sink_file == nullptr) return;  // sink closed between check and write
  std::fwrite(line, 1, static_cast<size_t>(len), g_sink_file);
}

}  // namespace internal
}  // namespace sensord::obs
