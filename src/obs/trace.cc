#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "obs/flight_recorder.h"
#include "util/staging.h"
#include "util/thread_annotations.h"

namespace sensord::obs {
namespace {

std::atomic<bool> g_timing_enabled{false};

// Hot-path flags are atomics; everything that must change together (the
// sink file and the injected virtual clock) lives behind one mutex so
// records never interleave and a span can never read a clock whose owner
// was destroyed mid-write.
std::atomic<bool> g_sink_enabled{false};
std::atomic<int> g_clock_mode{static_cast<int>(TraceClockMode::kVirtual)};

struct SinkState {
  std::mutex mu;
  FILE* file GUARDED_BY(mu) = nullptr;
  TraceVirtualClockFn clock_fn GUARDED_BY(mu) = nullptr;
  void* clock_ctx GUARDED_BY(mu) = nullptr;
};

SinkState& State() {
  // Leaked: spans in static destructors must still find live state.
  static SinkState* state = new SinkState();
  return *state;
}

// Virtual seconds → integer nanoseconds, the JSONL stamp unit. Clamped at
// zero: spans before the simulation starts stamp 0, never wrap.
uint64_t VirtualTimeToNs(double vt) {
  if (!(vt > 0.0)) return 0;
  return static_cast<uint64_t>(std::llround(vt * 1e9));
}

}  // namespace

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceClockMode(TraceClockMode mode) {
  g_clock_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

TraceClockMode GetTraceClockMode() {
  return static_cast<TraceClockMode>(
      g_clock_mode.load(std::memory_order_relaxed));
}

void SetTraceVirtualClock(TraceVirtualClockFn fn, void* ctx) {
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.clock_fn = fn;
  state.clock_ctx = fn == nullptr ? nullptr : ctx;
}

void ClearTraceVirtualClock(void* ctx) {
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.clock_ctx == ctx) {
    state.clock_fn = nullptr;
    state.clock_ctx = nullptr;
  }
}

Status OpenTraceSink(const std::string& path) {
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
    g_sink_enabled.store(false, std::memory_order_release);
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace sink: " + path);
  }
  state.file = f;
  g_sink_enabled.store(true, std::memory_order_release);
  return Status::Ok();
}

void CloseTraceSink() {
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  g_sink_enabled.store(false, std::memory_order_release);
  if (state.file != nullptr) {
    std::fclose(state.file);
    state.file = nullptr;
  }
}

bool TraceSinkEnabled() {
  return g_sink_enabled.load(std::memory_order_relaxed);
}

namespace {

// Appends one fully formatted JSONL line to the sink, dropping it if the
// sink closed between the enabled check and the write (the TraceSpan
// straddle contract) or if the formatter overflowed its buffer.
void AppendSinkLine(const char* line, int len, int cap) {
  if (len <= 0 || len >= cap) return;
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.file == nullptr) return;
  std::fwrite(line, 1, static_cast<size_t>(len), state.file);
}

}  // namespace

void EmitCausalSpan(const char* name, int64_t node, double virtual_time,
                    uint64_t trace_id, uint64_t span_id,
                    uint64_t parent_span) {
  if (!TraceSinkEnabled()) return;
  // Sink lines are an ordered stream; under the parallel engine an emission
  // from a worker thread is staged and replayed in event order
  // (util/staging.h — replay re-enters with no log current). `name` is a
  // string literal by contract, safe to capture.
  if (OpLog* log = OpLog::Current()) {
    log->Push([name, node, virtual_time, trace_id, span_id, parent_span]() {
      EmitCausalSpan(name, node, virtual_time, trace_id, span_id,
                     parent_span);
    });
    return;
  }
  char line[320];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"name\":\"%s\",\"node\":%lld,\"vt\":%.9g,\"trace\":%llu,"
      "\"span\":%llu,\"parent\":%llu}\n",
      name, static_cast<long long>(node), virtual_time,
      static_cast<unsigned long long>(trace_id),
      static_cast<unsigned long long>(span_id),
      static_cast<unsigned long long>(parent_span));
  AppendSinkLine(line, len, static_cast<int>(sizeof(line)));
}

void EmitDecisionRecord(const DecisionRecord& record) {
  if (!TraceSinkEnabled()) return;
  // See EmitCausalSpan; record.detector is a short literal by contract.
  if (OpLog* log = OpLog::Current()) {
    log->Push([record]() { EmitDecisionRecord(record); });
    return;
  }
  char line[448];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"decision\":\"%s\",\"node\":%lld,\"level\":%d,\"vt\":%.9g,"
      "\"trace\":%llu,\"span\":%llu,\"estimate\":%.9g,\"threshold\":%.9g,"
      "\"model_version\":%llu,\"staleness_s\":%.9g,\"degraded\":%d,"
      "\"latency_s\":%.9g}\n",
      record.detector, static_cast<long long>(record.node), record.level,
      record.virtual_time, static_cast<unsigned long long>(record.trace_id),
      static_cast<unsigned long long>(record.span_id), record.estimate,
      record.threshold, static_cast<unsigned long long>(record.model_version),
      record.staleness_s, record.degraded ? 1 : 0, record.latency_s);
  AppendSinkLine(line, len, static_cast<int>(sizeof(line)));
}

bool InitTracingFromEnv() {
  bool any = false;
  if (const char* path = std::getenv("SENSORD_TRACE_JSONL");
      path != nullptr && *path != '\0') {
    if (OpenTraceSink(path).ok()) any = true;
  }
  if (const char* path = std::getenv("SENSORD_FLIGHT_JSONL");
      path != nullptr && *path != '\0') {
    if (FlightRecorder::OpenDumpSink(path).ok()) {
      FlightRecorder::Enable();
      any = true;
    }
  }
  return any;
}

void ShutdownTracingFromEnv() {
  if (FlightRecorder::Enabled()) {
    FlightRecorder::DumpAll("shutdown");
    FlightRecorder::Disable();
  }
  FlightRecorder::CloseDumpSink();
  CloseTraceSink();
}

namespace internal {

uint64_t SpanNowNs(double fallback_virtual_time) {
  if (GetTraceClockMode() == TraceClockMode::kWall) {
    return MonotonicNowNs();
  }
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.clock_fn != nullptr) {
    return VirtualTimeToNs(state.clock_fn(state.clock_ctx));
  }
  return VirtualTimeToNs(fallback_virtual_time);
}

void WriteTraceEvent(const char* name, int64_t node, double virtual_time,
                     uint64_t begin_ns, uint64_t end_ns) {
  // See EmitCausalSpan: staged under the parallel engine so span records
  // land in the sink in event order, not worker-completion order.
  if (OpLog* log = OpLog::Current()) {
    log->Push([name, node, virtual_time, begin_ns, end_ns]() {
      WriteTraceEvent(name, node, virtual_time, begin_ns, end_ns);
    });
    return;
  }
  char line[256];
  const int len = std::snprintf(
      line, sizeof(line),
      "{\"name\":\"%s\",\"node\":%lld,\"vt\":%.9g,\"begin_ns\":%llu,"
      "\"end_ns\":%llu}\n",
      name, static_cast<long long>(node), virtual_time,
      static_cast<unsigned long long>(begin_ns),
      static_cast<unsigned long long>(end_ns));
  // A span name long enough to overflow the buffer would truncate to invalid
  // JSON; drop the record instead (names are short literals by contract).
  if (len <= 0 || len >= static_cast<int>(sizeof(line))) return;
  SinkState& state = State();
  const std::lock_guard<std::mutex> lock(state.mu);
  if (state.file == nullptr) return;  // sink closed between check and write
  std::fwrite(line, 1, static_cast<size_t>(len), state.file);
}

}  // namespace internal
}  // namespace sensord::obs
