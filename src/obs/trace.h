// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Scoped latency capture and span tracing.
//
// Two independent switches, both off by default so the library's hot paths
// pay only one relaxed atomic load per instrumentation point:
//
//  * Latency timing (SetTimingEnabled): ScopedTimer reads the monotonic
//    clock around its scope and records the duration, in nanoseconds, into
//    an obs::Histogram. Disabled, a ScopedTimer is one atomic load — no
//    clock reads, no allocation.
//  * Span tracing (OpenTraceSink): TraceSpan appends one JSONL record per
//    scope — name, node id, event-queue virtual time, begin/end timestamps
//    in nanoseconds — to the sink file. Disabled, a TraceSpan is one atomic
//    load — no clock reads, no allocation (the micro-benchmark
//    BM_ObsDisabledTraceSpan holds this to zero allocations per event).
//
// Span timestamps are VIRTUAL by default: begin_ns/end_ns derive from the
// simulator's event-queue clock (SetTraceVirtualClock; the Simulator
// installs itself on construction), falling back to the virtual time the
// span was constructed with. Two same-seed runs therefore emit
// byte-identical traces — the determinism property the soak and golden
// suites rely on, and which tools/lint/sensord_lint.py enforces repo-wide.
// Host wall-clock stamps (the steady clock) are an explicit opt-in via
// SetTraceClockMode(TraceClockMode::kWall) for offline profiling of real
// elapsed time; such traces are not reproducible and must never feed golden
// files.

#ifndef SENSORD_OBS_TRACE_H_
#define SENSORD_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace sensord::obs {

/// Monotonic host clock reading in nanoseconds (the one wall-clock source
/// in sensord; see tools/lint/determinism_allowlist.txt). Used by
/// ScopedTimer latency capture and by TraceClockMode::kWall spans only.
uint64_t MonotonicNowNs();

/// True when ScopedTimer should capture latencies. Default: false.
bool TimingEnabled();

/// Globally enables/disables ScopedTimer latency capture.
void SetTimingEnabled(bool enabled);

/// RAII latency capture: records the scope's duration in nanoseconds into
/// `hist` when timing is enabled (and `hist` non-null); otherwise a no-op.
/// Latencies are real host time by design — they measure the hardware, not
/// the simulation — and are aggregated into histograms, never into
/// deterministic outputs.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(TimingEnabled() ? hist : nullptr),
        begin_ns_(hist_ != nullptr ? MonotonicNowNs() : 0) {}

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<double>(MonotonicNowNs() - begin_ns_));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t begin_ns_;
};

/// What TraceSpan stamps begin_ns/end_ns from.
enum class TraceClockMode {
  /// Event-queue virtual time, scaled to integer nanoseconds. Deterministic:
  /// same seed, same trace bytes. The default.
  kVirtual,
  /// Host steady clock. Opt-in for offline profiling; not reproducible.
  kWall,
};

/// Sets the span timestamp source. Default: TraceClockMode::kVirtual.
void SetTraceClockMode(TraceClockMode mode);
TraceClockMode GetTraceClockMode();

/// A callback yielding the current event-queue virtual time in seconds.
using TraceVirtualClockFn = double (*)(void* ctx);

/// Installs the process-wide virtual clock consulted by kVirtual spans at
/// begin and end (so a span that straddles event-queue progress shows its
/// virtual extent). The Simulator installs itself on construction; the most
/// recently constructed simulator wins, which matches "one simulation per
/// process" usage. Pass fn=nullptr to uninstall unconditionally.
void SetTraceVirtualClock(TraceVirtualClockFn fn, void* ctx);

/// Uninstalls the virtual clock only if `ctx` matches the installed one —
/// a destroyed simulator must not yank a newer simulator's clock.
void ClearTraceVirtualClock(void* ctx);

/// Opens (or truncates) `path` as the process-wide JSONL trace sink and
/// enables span tracing. Returns IoError if the file cannot be opened.
Status OpenTraceSink(const std::string& path);

/// Flushes and closes the sink; span tracing is disabled again.
void CloseTraceSink();

/// True while a sink is open.
bool TraceSinkEnabled();

/// Appends one *causal* span record to the sink — a span carrying the
/// trace/span/parent ids of DESIGN.md §11 in addition to the usual
/// name/node/vt fields, so tools/trace/trace_report.py can join spans into
/// per-decision chains. Instantaneous (begin == end == the current span
/// clock). One relaxed atomic load and nothing else when no sink is open.
/// `name` must be a short identifier without '"' or '\'.
void EmitCausalSpan(const char* name, int64_t node, double virtual_time,
                    uint64_t trace_id, uint64_t span_id, uint64_t parent_span);

/// The provenance of one detection decision, mirrored from OutlierEvent
/// (core/outlier_observer.h) into the trace sink so reports can explain
/// every decision without the binary's observer hooks.
struct DecisionRecord {
  const char* detector = "";  ///< "d3" | "mgdd" (short literal)
  int64_t node = -1;
  int level = 1;
  double virtual_time = 0.0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;    ///< the deciding span (chain walk starts here)
  double estimate = 0.0;   ///< N(p,r) or MDEF value at decision time
  double threshold = 0.0;  ///< the configured bound it was compared against
  uint64_t model_version = 0;  ///< observations behind the deciding model
  double staleness_s = 0.0;    ///< age of the stalest supporting input
  bool degraded = false;
  double latency_s = 0.0;  ///< ingest → this decision, virtual seconds
};

/// Appends one decision record to the sink. Same cost contract as
/// EmitCausalSpan when the sink is closed.
void EmitDecisionRecord(const DecisionRecord& record);

/// Opens trace sinks named by the environment:
///   SENSORD_TRACE_JSONL=<path>   — the causal span sink (OpenTraceSink)
///   SENSORD_FLIGHT_JSONL=<path>  — enables the flight recorder and opens
///                                  its dump sink (obs/flight_recorder.h)
/// Returns true if either sink was opened. Bench harnesses and examples
/// call this once at startup; ShutdownTracingFromEnv() flushes and closes
/// both (dumping every flight ring first, reason "shutdown").
bool InitTracingFromEnv();
void ShutdownTracingFromEnv();

namespace internal {
/// Current span timestamp in nanoseconds under the active clock mode:
/// kWall → MonotonicNowNs(); kVirtual → the installed virtual clock, or
/// `fallback_virtual_time` (seconds) when none is installed.
uint64_t SpanNowNs(double fallback_virtual_time);

/// Appends one span record to the sink (drops it if the sink closed in the
/// meantime). `name` must be a short identifier without '"' or '\'.
void WriteTraceEvent(const char* name, int64_t node, double virtual_time,
                     uint64_t begin_ns, uint64_t end_ns);
}  // namespace internal

/// Sentinel node id for spans outside any simulated node.
inline constexpr int64_t kTraceNoNode = -1;

/// RAII span: emits one JSONL record covering its lifetime when the sink is
/// open at construction. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  TraceSpan(const char* name, int64_t node_id, double virtual_time)
      : name_(name),
        node_(node_id),
        virtual_time_(virtual_time),
        active_(TraceSinkEnabled()),
        begin_ns_(active_ ? internal::SpanNowNs(virtual_time) : 0) {}

  ~TraceSpan() {
    if (active_) {
      internal::WriteTraceEvent(name_, node_, virtual_time_, begin_ns_,
                                internal::SpanNowNs(virtual_time_));
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t node_;
  double virtual_time_;
  bool active_;
  uint64_t begin_ns_;
};

}  // namespace sensord::obs

#endif  // SENSORD_OBS_TRACE_H_
