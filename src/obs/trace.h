// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Scoped latency capture and span tracing.
//
// Two independent switches, both off by default so the library's hot paths
// pay only one relaxed atomic load per instrumentation point:
//
//  * Latency timing (SetTimingEnabled): ScopedTimer reads the monotonic
//    clock around its scope and records the duration, in nanoseconds, into
//    an obs::Histogram. Disabled, a ScopedTimer is one atomic load — no
//    clock reads, no allocation.
//  * Span tracing (OpenTraceSink): TraceSpan appends one JSONL record per
//    scope — name, node id, event-queue virtual time, begin/end monotonic
//    nanoseconds — to the sink file. Disabled, a TraceSpan is one atomic
//    load — no clock reads, no allocation (the micro-benchmark
//    BM_ObsDisabledTraceSpan holds this to zero allocations per event).
//
// Virtual time is the simulator's SimTime at span construction; it lets a
// trace of a discrete-event run be ordered by simulated causality rather
// than by host wall time (the event queue may burn through hours of
// simulated seconds per wall second).

#ifndef SENSORD_OBS_TRACE_H_
#define SENSORD_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace sensord::obs {

/// Monotonic clock reading in nanoseconds (steady_clock).
uint64_t MonotonicNowNs();

/// True when ScopedTimer should capture latencies. Default: false.
bool TimingEnabled();

/// Globally enables/disables ScopedTimer latency capture.
void SetTimingEnabled(bool enabled);

/// RAII latency capture: records the scope's duration in nanoseconds into
/// `hist` when timing is enabled (and `hist` non-null); otherwise a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(TimingEnabled() ? hist : nullptr),
        begin_ns_(hist_ != nullptr ? MonotonicNowNs() : 0) {}

  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Record(static_cast<double>(MonotonicNowNs() - begin_ns_));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t begin_ns_;
};

/// Opens (or truncates) `path` as the process-wide JSONL trace sink and
/// enables span tracing. Returns IoError if the file cannot be opened.
Status OpenTraceSink(const std::string& path);

/// Flushes and closes the sink; span tracing is disabled again.
void CloseTraceSink();

/// True while a sink is open.
bool TraceSinkEnabled();

namespace internal {
/// Appends one span record to the sink (drops it if the sink closed in the
/// meantime). `name` must be a short identifier without '"' or '\'.
void WriteTraceEvent(const char* name, int64_t node, double virtual_time,
                     uint64_t begin_ns, uint64_t end_ns);
}  // namespace internal

/// Sentinel node id for spans outside any simulated node.
inline constexpr int64_t kTraceNoNode = -1;

/// RAII span: emits one JSONL record covering its lifetime when the sink is
/// open at construction. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  TraceSpan(const char* name, int64_t node_id, double virtual_time)
      : name_(name),
        node_(node_id),
        virtual_time_(virtual_time),
        begin_ns_(TraceSinkEnabled() ? MonotonicNowNs() : 0) {}

  ~TraceSpan() {
    if (begin_ns_ != 0) {
      internal::WriteTraceEvent(name_, node_, virtual_time_, begin_ns_,
                                MonotonicNowNs());
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t node_;
  double virtual_time_;
  uint64_t begin_ns_;
};

}  // namespace sensord::obs

#endif  // SENSORD_OBS_TRACE_H_
