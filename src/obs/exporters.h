// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Exporters over MetricsRegistry snapshots:
//
//  * PrintMetricsTable — the human-readable table the examples and bench
//    binaries print at exit (counters, gauges, then histograms with
//    count/mean/p50/p95/p99).
//  * MetricsToJson — one JSON object ({"counters":…,"gauges":…,
//    "histograms":…}) for dashboards and scripts.
//  * WriteBenchJson — the machine-readable per-run perf record
//    (BENCH_<name>.json): bench name, scalar results, and the full metrics
//    snapshot, so every bench run leaves an artifact CI can diff. See
//    scripts/bench.sh.

#ifndef SENSORD_OBS_EXPORTERS_H_
#define SENSORD_OBS_EXPORTERS_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace sensord::obs {

/// Scalar results a bench run reports alongside the metrics snapshot.
using BenchResults = std::vector<std::pair<std::string, double>>;

/// Run-environment metadata recorded in the perf record (thread count,
/// quick-mode flag, …) — string-valued, distinct from measured results.
using BenchMetadata = std::vector<std::pair<std::string, std::string>>;

/// Prints every registered metric as an aligned table. Histograms show
/// count, mean and interpolated p50/p95/p99 (see Histogram::Quantile).
void PrintMetricsTable(const MetricsRegistry& registry, std::FILE* out);

/// Serializes the registry to one JSON object.
std::string MetricsToJson(const MetricsRegistry& registry);

/// Writes a BENCH_*.json perf record: {"schema":"sensord.bench.v1",
/// "bench":name,"meta":{…},"results":{…},"metrics":{…}}. The "meta" object
/// is omitted when `metadata` is empty. Result and metadata keys are
/// emitted in sorted order (independent of harness collection order) and
/// histogram buckets ascending, so same-configuration runs produce
/// diffable documents. Returns IoError on failure.
Status WriteBenchJson(const std::string& path, const std::string& bench_name,
                      const BenchResults& results,
                      const MetricsRegistry& registry,
                      const BenchMetadata& metadata = {});

}  // namespace sensord::obs

#endif  // SENSORD_OBS_EXPORTERS_H_
