// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Deterministic causal-trace identifiers (DESIGN.md §11).
//
// A *trace* is the causal tree of one detection decision: the leaf reading
// that started it, every message hop it rode (including transport
// retransmits — the stored Message carries the ids), and the spans emitted
// at each tier. Ids must be reproducible — two same-seed runs emit
// byte-identical trace JSONL — so they are pure hashes of simulation-domain
// quantities (node id, reading sequence number, hierarchy level), never
// wall-clock or entropy reads (tools/lint/sensord_lint.py enforces this
// repo-wide).
//
// Derivation scheme:
//   trace id  = Mix(leaf id, reading seq)         one per flagged reading
//   trace id  = Mix(root id, version | kUpdate)   one per global-model push
//   span id   = Mix(trace id, node id, salt)      one per hop/evaluation
//
// Mix is the splitmix64 finalizer — cheap, stateless, and well distributed;
// collisions across a simulation's lifetime are negligible (ids are 64-bit)
// and would only merge two chains in a report, never corrupt the run.

#ifndef SENSORD_OBS_TRACE_CONTEXT_H_
#define SENSORD_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace sensord::obs {

/// splitmix64 finalizer: a stateless 64-bit mixer.
constexpr uint64_t MixTraceBits(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Domain tags keep reading-rooted and update-rooted traces from colliding
/// even when a node id and a sequence number happen to coincide.
inline constexpr uint64_t kTraceDomainReading = 0x52EAD117ULL;
inline constexpr uint64_t kTraceDomainUpdate = 0x0BDA7E05ULL;

/// Detector tags fold into reading-rooted trace ids so one process running
/// both detectors over the same node ids and sequence numbers (two
/// Simulators sharing one sink, e.g. examples/trace_outliers) derives
/// disjoint traces. Both sides of a message derive with the same tag, so
/// the pre-tracing re-derivation fallback stays exact.
inline constexpr uint64_t kTraceDetectorD3 = 0;
inline constexpr uint64_t kTraceDetectorMgdd = 0x4D47ULL << 32;

/// Trace id of the causal tree rooted at reading `seq` of leaf `node`,
/// flagged by the detector named with `detector_tag`. Never zero (zero
/// means "no trace context").
constexpr uint64_t DeriveReadingTraceId(uint64_t node, uint64_t seq,
                                        uint64_t detector_tag = 0) {
  const uint64_t id = MixTraceBits(
      MixTraceBits(kTraceDomainReading ^ detector_tag ^ (node << 1)) ^ seq);
  return id == 0 ? 1 : id;
}

/// Trace id of the causal tree rooted at global-model update `version`
/// originated by `node` (the MGDD root). Never zero.
constexpr uint64_t DeriveUpdateTraceId(uint64_t node, uint64_t version) {
  const uint64_t id =
      MixTraceBits(MixTraceBits(kTraceDomainUpdate ^ (node << 1)) ^ version);
  return id == 0 ? 1 : id;
}

/// Span id of one hop/evaluation inside `trace_id` at `node`; `salt`
/// disambiguates multiple spans of the same node in one trace (hierarchy
/// level, relay depth). Never zero.
constexpr uint64_t DeriveSpanId(uint64_t trace_id, uint64_t node,
                                uint64_t salt) {
  const uint64_t id =
      MixTraceBits(trace_id ^ MixTraceBits((node << 20) ^ salt));
  return id == 0 ? 1 : id;
}

/// The causal context a message carries across hops (mirrored in
/// net/message.h as two raw fields so net/ stays independent of obs/).
/// trace_id == 0 means "not part of any trace" — the zero-initialized
/// default of every Message.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  constexpr bool valid() const { return trace_id != 0; }
};

}  // namespace sensord::obs

#endif  // SENSORD_OBS_TRACE_CONTEXT_H_
