#include "obs/metrics.h"

#include <algorithm>

#include "util/check.h"
#include "util/staging.h"

namespace sensord::obs {

std::vector<double> Histogram::ExponentialBoundaries(double start,
                                                     double factor,
                                                     size_t count) {
  SENSORD_CHECK_GT(start, 0.0);
  SENSORD_CHECK_GT(factor, 1.0);
  SENSORD_CHECK_GE(count, 1u);
  std::vector<double> out;
  out.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

std::vector<double> Histogram::LinearBoundaries(double start, double step,
                                                size_t count) {
  SENSORD_CHECK_GT(step, 0.0);
  SENSORD_CHECK_GE(count, 1u);
  std::vector<double> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(start + static_cast<double>(i) * step);
  }
  return out;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)),
      buckets_(new std::atomic<uint64_t>[boundaries_.size() + 1]) {
  SENSORD_CHECK(!boundaries_.empty());
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    SENSORD_CHECK_LT(boundaries_[i - 1], boundaries_[i]);
  }
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(double value) {
  // Histogram sums are floating-point, so the accumulation order is
  // observable in exports; under the parallel engine a record made on a
  // worker thread is staged and replayed in event order (util/staging.h —
  // replay re-enters with no log current).
  if (OpLog* log = OpLog::Current()) {
    log->Push([this, value]() { Record(value); });
    return;
  }
  // First boundary >= value; values above the last boundary land in the
  // overflow bucket at index boundaries_.size().
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(boundaries_.begin(), boundaries_.end(), value) -
      boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Quantile(double q) const {
  SENSORD_DCHECK_GE(q, 0.0);
  SENSORD_DCHECK_LE(q, 1.0);
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  // Rank of the requested quantile, 1-based.
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    const double in_bucket =
        static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i == boundaries_.size()) return boundaries_.back();  // overflow
      const double lo = i == 0 ? 0.0 : boundaries_[i - 1];
      const double hi = boundaries_[i];
      const double frac =
          std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cumulative += in_bucket;
  }
  return boundaries_.back();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumented call sites cache metric pointers in
  // function-local statics, which must outlive every other static
  // destructor.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::CheckKindCollision(const std::string& name,
                                         MetricKind kind) const {
  SENSORD_CHECK((kind == MetricKind::kCounter || counters_.count(name) == 0) &&
                "metric name already registered as a counter");
  SENSORD_CHECK((kind == MetricKind::kGauge || gauges_.count(name) == 0) &&
                "metric name already registered as a gauge");
  SENSORD_CHECK(
      (kind == MetricKind::kHistogram || histograms_.count(name) == 0) &&
      "metric name already registered as a histogram");
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKindCollision(name, MetricKind::kCounter);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKindCollision(name, MetricKind::kGauge);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> boundaries) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckKindCollision(name, MetricKind::kHistogram);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(std::move(boundaries)));
  return slot.get();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.counter_value = counter->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.gauge_value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.hist_count = hist->Count();
    s.hist_sum = hist->Sum();
    s.hist_p50 = hist->Quantile(0.50);
    s.hist_p95 = hist->Quantile(0.95);
    s.hist_p99 = hist->Quantile(0.99);
    s.hist_boundaries = hist->boundaries();
    s.hist_buckets.reserve(s.hist_boundaries.size() + 1);
    for (size_t i = 0; i <= s.hist_boundaries.size(); ++i) {
      s.hist_buckets.push_back(hist->BucketCount(i));
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

std::vector<double> LatencyBoundariesNs() {
  return Histogram::ExponentialBoundaries(16.0, 2.0, 26);
}

std::vector<double> SizeBoundaries() {
  return Histogram::ExponentialBoundaries(1.0, 2.0, 16);
}

std::vector<double> DurationBoundariesS() {
  return Histogram::ExponentialBoundaries(0.125, 2.0, 16);
}

std::vector<double> DetectionLatencyBoundariesS() {
  return Histogram::ExponentialBoundaries(1e-4, 2.0, 24);
}

}  // namespace sensord::obs
