#include "obs/exporters.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sensord::obs {
namespace {

// Doubles rendered for JSON: finite values via %.17g round-trip; non-finite
// values (never expected from the metrics layer) degrade to 0 so the
// document stays parseable.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Metric names are dotted identifiers by convention; escape the two
// characters that could break the document anyway.
std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendJsonSection(std::string& out, const char* section,
                       const std::vector<MetricSnapshot>& snapshot,
                       MetricKind kind) {
  out += JsonString(section);
  out += ":{";
  bool first = true;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != kind) continue;
    if (!first) out += ",";
    first = false;
    out += JsonString(m.name);
    out += ":";
    switch (kind) {
      case MetricKind::kCounter:
        out += std::to_string(m.counter_value);
        break;
      case MetricKind::kGauge:
        out += JsonNumber(m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        const double mean =
            m.hist_count == 0
                ? 0.0
                : m.hist_sum / static_cast<double>(m.hist_count);
        out += "{\"count\":" + std::to_string(m.hist_count) +
               ",\"sum\":" + JsonNumber(m.hist_sum) +
               ",\"mean\":" + JsonNumber(mean) +
               ",\"p50\":" + JsonNumber(m.hist_p50) +
               ",\"p95\":" + JsonNumber(m.hist_p95) +
               ",\"p99\":" + JsonNumber(m.hist_p99);
        // Buckets in ascending boundary order (snapshot order), trailing
        // overflow bucket last, so same-seed artifacts diff byte-for-byte.
        out += ",\"boundaries\":[";
        for (size_t i = 0; i < m.hist_boundaries.size(); ++i) {
          if (i != 0) out += ",";
          out += JsonNumber(m.hist_boundaries[i]);
        }
        out += "],\"buckets\":[";
        for (size_t i = 0; i < m.hist_buckets.size(); ++i) {
          if (i != 0) out += ",";
          out += std::to_string(m.hist_buckets[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}";
}

}  // namespace

void PrintMetricsTable(const MetricsRegistry& registry, std::FILE* out) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::fprintf(out, "\n--- metrics (%zu registered) %s\n", snapshot.size(),
               "-------------------------------------------------");
  bool any_scalar = false;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind == MetricKind::kCounter) {
      std::fprintf(out, "  %-48s %14" PRIu64 "\n", m.name.c_str(),
                   m.counter_value);
      any_scalar = true;
    } else if (m.kind == MetricKind::kGauge) {
      std::fprintf(out, "  %-48s %14.6g\n", m.name.c_str(), m.gauge_value);
      any_scalar = true;
    }
  }
  bool any_hist = false;
  for (const MetricSnapshot& m : snapshot) {
    if (m.kind != MetricKind::kHistogram) continue;
    if (!any_hist) {
      if (any_scalar) std::fprintf(out, "\n");
      std::fprintf(out, "  %-40s %10s %10s %10s %10s %10s\n", "histogram",
                   "count", "mean", "p50", "p95", "p99");
      any_hist = true;
    }
    const double mean =
        m.hist_count == 0 ? 0.0
                          : m.hist_sum / static_cast<double>(m.hist_count);
    std::fprintf(out, "  %-40s %10" PRIu64 " %10.4g %10.4g %10.4g %10.4g\n",
                 m.name.c_str(), m.hist_count, mean, m.hist_p50, m.hist_p95,
                 m.hist_p99);
  }
  if (snapshot.empty()) std::fprintf(out, "  (none)\n");
  std::fprintf(out, "---%s\n",
               "--------------------------------------------------------"
               "----------");
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  std::string out = "{";
  AppendJsonSection(out, "counters", snapshot, MetricKind::kCounter);
  out += ",";
  AppendJsonSection(out, "gauges", snapshot, MetricKind::kGauge);
  out += ",";
  AppendJsonSection(out, "histograms", snapshot, MetricKind::kHistogram);
  out += "}";
  return out;
}

Status WriteBenchJson(const std::string& path, const std::string& bench_name,
                      const BenchResults& results,
                      const MetricsRegistry& registry,
                      const BenchMetadata& metadata) {
  std::string doc = "{\"schema\":\"sensord.bench.v1\",\"bench\":";
  doc += JsonString(bench_name);
  if (!metadata.empty()) {
    doc += ",\"meta\":{";
    BenchMetadata sorted_meta = metadata;
    std::stable_sort(sorted_meta.begin(), sorted_meta.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    bool first_meta = true;
    for (const auto& [key, value] : sorted_meta) {
      if (!first_meta) doc += ",";
      first_meta = false;
      doc += JsonString(key);
      doc += ":";
      doc += JsonString(value);
    }
    doc += "}";
  }
  doc += ",\"results\":{";
  // Result keys print sorted regardless of the order the harness collected
  // them, so two runs of the same bench emit diff-stable documents.
  BenchResults sorted_results = results;
  std::stable_sort(sorted_results.begin(), sorted_results.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  bool first = true;
  for (const auto& [key, value] : sorted_results) {
    if (!first) doc += ",";
    first = false;
    doc += JsonString(key);
    doc += ":";
    doc += JsonNumber(value);
  }
  doc += "},\"metrics\":";
  doc += MetricsToJson(registry);
  doc += "}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open bench record for writing: " + path);
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != doc.size() || !close_ok) {
    return Status::IoError("short write to bench record: " + path);
  }
  return Status::Ok();
}

}  // namespace sensord::obs
