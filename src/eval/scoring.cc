#include "eval/scoring.h"

#include <cstdio>

namespace sensord {

void PrecisionRecall::Record(bool truth, bool flagged) {
  if (truth && flagged) {
    ++tp_;
  } else if (!truth && flagged) {
    ++fp_;
  } else if (truth && !flagged) {
    ++fn_;
  } else {
    ++tn_;
  }
}

double PrecisionRecall::Precision() const {
  const uint64_t denom = tp_ + fp_;
  return denom == 0 ? 1.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double PrecisionRecall::Recall() const {
  const uint64_t denom = tp_ + fn_;
  return denom == 0 ? 1.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double PrecisionRecall::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

void PrecisionRecall::Merge(const PrecisionRecall& other) {
  tp_ += other.tp_;
  fp_ += other.fp_;
  fn_ += other.fn_;
  tn_ += other.tn_;
}

std::string PrecisionRecall::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "P=%5.1f%% R=%5.1f%% (tp=%llu fp=%llu fn=%llu)",
                100.0 * Precision(), 100.0 * Recall(),
                static_cast<unsigned long long>(tp_),
                static_cast<unsigned long long>(fp_),
                static_cast<unsigned long long>(fn_));
  return buf;
}

}  // namespace sensord
