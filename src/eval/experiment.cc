#include "eval/experiment.h"

#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "baseline/centralized.h"
#include "core/d3.h"
#include "core/density_model.h"
#include "core/distance_outlier.h"
#include "core/mdef.h"
#include "core/mgdd.h"
#include "data/engine_trace.h"
#include "data/environmental_trace.h"
#include "data/shift_trace.h"
#include "data/synthetic.h"
#include "data/stream_source.h"
#include "eval/ground_truth.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "stats/divergence.h"
#include "stats/histogram.h"
#include "util/rng.h"

#include "util/check.h"

namespace sensord {
namespace {

// Collects detection events keyed by (detecting node, source leaf, source
// sequence number) so the scorer can ask "did node X flag leaf L's reading
// number S?" after the round's messages have drained.
class RecordingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    keys_.insert({event.node, event.source_leaf, event.source_seq});
  }

  bool WasFlagged(NodeId node, NodeId leaf, uint64_t seq) const {
    return keys_.count({node, leaf, seq}) > 0;
  }

  void Clear() { keys_.clear(); }

 private:
  std::set<std::tuple<NodeId, NodeId, uint64_t>> keys_;
};

std::unique_ptr<StreamSource> MakeStream(WorkloadKind kind, size_t dimensions,
                                         Rng rng) {
  switch (kind) {
    case WorkloadKind::kSyntheticMixture: {
      SyntheticOptions opts;
      opts.dimensions = dimensions;
      return std::make_unique<SyntheticMixtureStream>(opts, rng);
    }
    case WorkloadKind::kEngine:
      return std::make_unique<EngineTraceGenerator>(rng);
    case WorkloadKind::kEnvironmental:
      return std::make_unique<EnvironmentalTraceGenerator>(rng);
    case WorkloadKind::kGappedBimodal: {
      GappedBimodalOptions opts;
      opts.dimensions = dimensions;
      return std::make_unique<GappedBimodalStream>(opts, rng);
    }
  }
  return nullptr;
}

Status ValidateAccuracyConfig(const AccuracyConfig& cfg) {
  if (cfg.num_leaves == 0 || cfg.fanout < 2) {
    return Status::InvalidArgument("need num_leaves >= 1 and fanout >= 2");
  }
  if (cfg.workload == WorkloadKind::kEngine && cfg.dimensions != 1) {
    return Status::InvalidArgument("engine workload is 1-dimensional");
  }
  if (cfg.workload == WorkloadKind::kEnvironmental && cfg.dimensions != 2) {
    return Status::InvalidArgument("environmental workload is 2-dimensional");
  }
  if (cfg.sample_size == 0 || cfg.sample_size > cfg.window_size) {
    return Status::InvalidArgument("need 0 < sample_size <= window_size");
  }
  if (cfg.sample_fraction <= 0.0 || cfg.sample_fraction > 1.0) {
    return Status::InvalidArgument("need sample fraction f in (0, 1]");
  }
  if (cfg.score_subsample == 0) {
    return Status::InvalidArgument("score_subsample must be >= 1");
  }
  if (cfg.link_loss < 0.0 || cfg.link_loss >= 1.0) {
    return Status::InvalidArgument("need link loss in [0, 1)");
  }
  if (!cfg.run_d3 && !cfg.run_mgdd) {
    return Status::InvalidArgument("nothing to run");
  }
  return Status::Ok();
}

// Pre-computed truth of one reading, captured at its arrival instant.
struct PendingScore {
  int leaf_slot = 0;
  std::vector<bool> d3_truth_by_ancestor;  // aligned with ancestor chain
  bool mgdd_truth = false;
};

// Offline histogram state (the paper's comparison method): per hierarchy
// node, an equi-depth histogram over the node's exact pooled window,
// rebuilt every histogram_rebuild_interval rounds.
struct HistogramState {
  std::vector<std::optional<EquiDepthHistogram>> by_slot;
  std::vector<double> pool_size;
  std::vector<std::vector<int>> descendant_leaves;  // per slot
};

void RebuildHistograms(const AccuracyConfig& cfg,
                       const GroundTruthTracker& tracker,
                       HistogramState* state) {
  const HierarchyLayout& layout = tracker.layout();
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    std::vector<Point> pool;
    for (int leaf : state->descendant_leaves[slot]) {
      const SlidingWindow& w = tracker.LeafWindow(leaf);
      for (size_t i = 0; i < w.size(); ++i) pool.push_back(w.At(i));
    }
    state->pool_size[slot] = static_cast<double>(pool.size());
    if (pool.empty()) continue;
    auto built = EquiDepthHistogram::Build(pool, cfg.sample_size);
    SENSORD_CHECK_OK(built);
    state->by_slot[slot].emplace(std::move(built).value());
  }
}

}  // namespace

StatusOr<AccuracyResult> RunAccuracyExperiment(const AccuracyConfig& cfg) {
  SENSORD_RETURN_IF_ERROR(ValidateAccuracyConfig(cfg));

  auto layout_or = BuildGridHierarchy(cfg.num_leaves, cfg.fanout);
  if (!layout_or.ok()) return layout_or.status();
  const HierarchyLayout& layout = *layout_or;
  const int num_levels = layout.NumLevels();

  Rng master(cfg.seed);

  // Per-leaf workload streams ("each sensor sees a different set of data").
  std::vector<std::unique_ptr<StreamSource>> streams;
  std::vector<int> leaf_slots;
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    if (layout.nodes[slot].level == 1) {
      leaf_slots.push_back(static_cast<int>(slot));
    }
  }
  streams.reserve(leaf_slots.size());
  for (size_t i = 0; i < leaf_slots.size(); ++i) {
    streams.push_back(MakeStream(cfg.workload, cfg.dimensions,
                                 master.Split()));
  }

  // Exact ground truth over all pooled windows.
  GroundTruthOptions gt_opts;
  gt_opts.dimensions = cfg.dimensions;
  gt_opts.leaf_window = cfg.window_size;
  gt_opts.mdef_cell_side =
      cfg.run_mgdd ? 2.0 * cfg.mdef.counting_radius : 0.0;
  GroundTruthTracker tracker(layout, gt_opts);

  // Shared model configuration.
  DensityModelConfig leaf_model;
  leaf_model.dimensions = cfg.dimensions;
  leaf_model.window_size = cfg.window_size;
  leaf_model.sample_size = cfg.sample_size;
  leaf_model.epsilon = cfg.epsilon;
  leaf_model.robust_bandwidth = cfg.robust_bandwidth;

  // Per-slot subtree shape, so leader models speak for the exact population
  // below them even in unbalanced trees.
  std::vector<size_t> descendant_leaves(layout.nodes.size(), 0);
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    if (layout.nodes[slot].level != 1) continue;
    int cur = static_cast<int>(slot);
    while (cur >= 0) {
      ++descendant_leaves[static_cast<size_t>(cur)];
      cur = layout.nodes[static_cast<size_t>(cur)].parent_slot;
    }
  }
  auto leader_model = [&](int slot) {
    const HierarchyNodeSpec& spec = layout.nodes[static_cast<size_t>(slot)];
    return LeaderModelConfigFor(leaf_model, spec.child_slots.size(),
                                descendant_leaves[static_cast<size_t>(slot)],
                                cfg.sample_fraction);
  };

  // ------------------------------------------------- kernel simulations --
  const bool kernel = cfg.method == EstimatorMethod::kKernel;
  const bool use_d3_sim = kernel && cfg.run_d3;
  const bool use_mgdd_sim = kernel && cfg.run_mgdd;

  RecordingObserver d3_recorder, mgdd_recorder;
  std::unique_ptr<Simulator> d3_sim, mgdd_sim;
  std::vector<NodeId> d3_ids, mgdd_ids;

  SimulatorOptions sim_opts;
  sim_opts.drop_probability = cfg.link_loss;
  sim_opts.transport = cfg.transport;

  if (use_d3_sim) {
    d3_sim = std::make_unique<Simulator>(sim_opts);
    Rng node_rng = master.Split();
    d3_ids = d3_sim->Instantiate(
        layout, [&](int slot, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          D3Options opts;
          opts.outlier = cfg.d3_outlier;
          opts.sample_fraction = cfg.sample_fraction;
          opts.staleness_threshold = cfg.staleness_threshold;
          if (spec.level == 1) {
            opts.model = leaf_model;
            opts.min_observations = cfg.sample_size;
            return std::make_unique<D3LeafNode>(opts, node_rng.Split(),
                                                &d3_recorder);
          }
          opts.model = leader_model(slot);
          opts.min_observations = cfg.sample_size / 2;
          return std::make_unique<D3ParentNode>(opts, node_rng.Split(),
                                                &d3_recorder);
        });
  }

  if (use_mgdd_sim) {
    SimulatorOptions mgdd_sim_opts = sim_opts;
    mgdd_sim_opts.loss_seed = sim_opts.loss_seed + 1;
    mgdd_sim = std::make_unique<Simulator>(mgdd_sim_opts);
    Rng node_rng = master.Split();
    mgdd_ids = mgdd_sim->Instantiate(
        layout, [&](int slot, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          MgddOptions opts;
          opts.mdef = cfg.mdef;
          opts.sample_fraction = cfg.sample_fraction;
          opts.update_mode = cfg.mgdd_update_mode;
          opts.min_observations = cfg.sample_size;
          opts.staleness_threshold = cfg.staleness_threshold;
          if (spec.level == 1) {
            opts.model = leaf_model;
            return std::make_unique<MgddLeafNode>(opts, node_rng.Split(),
                                                  &mgdd_recorder);
          }
          opts.model = leader_model(slot);
          return std::make_unique<MgddInternalNode>(opts, node_rng.Split());
        });
  }

  // ------------------------------------------------ histogram emulation --
  HistogramState hist;
  if (!kernel) {
    hist.by_slot.resize(layout.nodes.size());
    hist.pool_size.assign(layout.nodes.size(), 0.0);
    hist.descendant_leaves.resize(layout.nodes.size());
    for (int leaf : leaf_slots) {
      int cur = leaf;
      while (cur >= 0) {
        hist.descendant_leaves[static_cast<size_t>(cur)].push_back(leaf);
        cur = layout.nodes[static_cast<size_t>(cur)].parent_slot;
      }
    }
  }

  // Ancestor chains (leaf slot -> slots from leaf to root).
  std::map<int, std::vector<int>> ancestors;
  for (int leaf : leaf_slots) {
    std::vector<int> chain;
    int cur = leaf;
    while (cur >= 0) {
      chain.push_back(cur);
      cur = layout.nodes[static_cast<size_t>(cur)].parent_slot;
    }
    ancestors[leaf] = std::move(chain);
  }

  AccuracyResult result;
  result.d3_by_level.resize(static_cast<size_t>(num_levels));

  const size_t total_rounds = cfg.warmup_rounds + cfg.measured_rounds;
  const int root_slot = tracker.RootSlot();
  std::vector<PendingScore> pending;
  std::vector<Point> round_points(leaf_slots.size());

  for (size_t round = 0; round < total_rounds; ++round) {
    const bool score_round = round >= cfg.warmup_rounds &&
                             (round - cfg.warmup_rounds) %
                                     cfg.score_subsample ==
                                 0;
    pending.clear();

    if (!kernel && round % cfg.histogram_rebuild_interval == 0 &&
        round + 1 >= cfg.window_size / 2) {
      RebuildHistograms(cfg, tracker, &hist);
    }

    for (size_t i = 0; i < leaf_slots.size(); ++i) {
      const int leaf = leaf_slots[i];
      const Point p = streams[i]->Next();
      round_points[i] = p;
      tracker.AddLeafReading(leaf, p);

      if (score_round) {
        PendingScore ps;
        ps.leaf_slot = leaf;
        if (cfg.run_d3) {
          for (int a : ancestors[leaf]) {
            ps.d3_truth_by_ancestor.push_back(
                tracker.IsTrueDistanceOutlier(a, p, cfg.d3_outlier));
          }
        }
        if (cfg.run_mgdd) {
          ps.mgdd_truth = tracker.TrueMdef(root_slot, p, cfg.mdef).is_outlier;
        }
        pending.push_back(std::move(ps));
      }

      if (use_d3_sim) {
        d3_sim->DeliverReading(d3_ids[static_cast<size_t>(leaf)], p);
      }
      if (use_mgdd_sim) {
        mgdd_sim->DeliverReading(mgdd_ids[static_cast<size_t>(leaf)], p);
      }
    }

    // Drain this round's messages (hop latency 1 ms, <= levels hops).
    const SimTime end_of_round = static_cast<SimTime>(round) + 0.5;
    if (use_d3_sim) d3_sim->RunUntil(end_of_round);
    if (use_mgdd_sim) mgdd_sim->RunUntil(end_of_round);

    if (!score_round) continue;

    // Resolve: compare detections (or histogram decisions) against truth.
    const uint64_t seq = round + 1;  // each leaf has seen exactly this many
    size_t pending_idx = 0;
    for (size_t i = 0; i < leaf_slots.size(); ++i) {
      const int leaf = leaf_slots[i];
      const PendingScore& ps = pending[pending_idx++];
      SENSORD_CHECK_EQ(ps.leaf_slot, leaf);
      const Point& p = round_points[i];

      if (cfg.run_d3) {
        bool still_flagged = true;  // histogram escalation gate
        const auto& chain = ancestors[leaf];
        for (size_t k = 0; k < chain.size(); ++k) {
          const int a = chain[k];
          const int lvl = layout.nodes[static_cast<size_t>(a)].level;
          bool flagged;
          if (kernel) {
            flagged = d3_recorder.WasFlagged(
                d3_ids[static_cast<size_t>(a)],
                d3_ids[static_cast<size_t>(leaf)], seq);
          } else {
            const auto& h = hist.by_slot[static_cast<size_t>(a)];
            flagged = still_flagged && h.has_value() &&
                      IsDistanceOutlier(
                          *h, hist.pool_size[static_cast<size_t>(a)], p,
                          cfg.d3_outlier);
            still_flagged = flagged;
          }
          result.d3_by_level[static_cast<size_t>(lvl - 1)].Record(
              ps.d3_truth_by_ancestor[k], flagged);
        }
      }

      if (cfg.run_mgdd) {
        bool flagged;
        if (kernel) {
          flagged = mgdd_recorder.WasFlagged(
              mgdd_ids[static_cast<size_t>(leaf)],
              mgdd_ids[static_cast<size_t>(leaf)], seq);
        } else {
          const auto& h = hist.by_slot[static_cast<size_t>(root_slot)];
          flagged =
              h.has_value() && ComputeMdef(*h, p, cfg.mdef).is_outlier;
        }
        result.mgdd.Record(ps.mgdd_truth, flagged);
      }
    }
    d3_recorder.Clear();
    mgdd_recorder.Clear();
  }

  if (use_d3_sim) result.d3_messages = d3_sim->stats().TotalMessages();
  if (use_mgdd_sim) result.mgdd_messages = mgdd_sim->stats().TotalMessages();
  return result;
}

StatusOr<AccuracyResult> RunAccuracyExperimentAveraged(
    const AccuracyConfig& config, size_t runs) {
  if (runs == 0) {
    return Status::InvalidArgument("need at least one run");
  }
  AccuracyResult merged;
  for (size_t r = 0; r < runs; ++r) {
    AccuracyConfig cfg = config;
    cfg.seed = config.seed + r;
    auto one = RunAccuracyExperiment(cfg);
    if (!one.ok()) return one.status();
    if (merged.d3_by_level.empty()) {
      merged.d3_by_level.resize(one->d3_by_level.size());
    }
    for (size_t i = 0; i < one->d3_by_level.size(); ++i) {
      merged.d3_by_level[i].Merge(one->d3_by_level[i]);
    }
    merged.mgdd.Merge(one->mgdd);
    merged.d3_messages += one->d3_messages;
    merged.mgdd_messages += one->mgdd_messages;
  }
  return merged;
}

std::vector<EstimationAccuracyPoint> RunEstimationAccuracy(
    const EstimationAccuracyConfig& cfg) {
  Rng master(cfg.seed);

  DensityModelConfig leaf_cfg;
  leaf_cfg.dimensions = 1;
  leaf_cfg.window_size = cfg.window_size;
  leaf_cfg.sample_size = cfg.sample_size;
  leaf_cfg.epsilon = cfg.epsilon;

  // The observed leaf plus (fanout - 1) siblings feeding the same parent.
  std::vector<ShiftingGaussianStream> streams;
  std::vector<DensityModel> leaves;
  ShiftTraceOptions trace_opts;
  trace_opts.phase_length = cfg.phase_length;
  for (size_t i = 0; i < cfg.fanout; ++i) {
    streams.emplace_back(trace_opts, master.Split());
    leaves.emplace_back(leaf_cfg, master.Split());
  }

  // One parent model per evaluated sample fraction f. A parent sees about
  // fanout * f * |R| propagated values per logical window.
  std::vector<DensityModel> parents;
  std::vector<Rng> parent_rngs;
  for (double f : cfg.parent_fractions) {
    DensityModelConfig parent_cfg = leaf_cfg;
    const double arrivals = static_cast<double>(cfg.fanout) * f *
                            static_cast<double>(cfg.sample_size);
    parent_cfg.window_size = std::max<size_t>(
        cfg.sample_size, static_cast<size_t>(arrivals));
    parents.emplace_back(parent_cfg, master.Split());
    parent_rngs.push_back(master.Split());
  }

  std::vector<EstimationAccuracyPoint> series;
  for (uint64_t t = 0; t < cfg.total_rounds; ++t) {
    for (size_t i = 0; i < cfg.fanout; ++i) {
      const Point p = streams[i].Next();
      const bool inserted = leaves[i].Observe(p);
      if (!inserted) continue;
      for (size_t k = 0; k < parents.size(); ++k) {
        if (parent_rngs[k].Bernoulli(cfg.parent_fractions[k])) {
          parents[k].Observe(p);
        }
      }
    }

    if ((t + 1) % cfg.eval_every != 0) continue;
    const AnalyticDistribution truth = streams[0].TrueDistributionAt(t);
    EstimationAccuracyPoint point;
    point.t = t + 1;
    auto leaf_js =
        JsDivergenceOnGrid(leaves[0].Estimator(), truth, cfg.js_grid_cells);
    SENSORD_CHECK_OK(leaf_js);
    point.leaf_js = *leaf_js;
    for (DensityModel& parent : parents) {
      if (!parent.Ready()) {
        point.parent_js.push_back(1.0);
        continue;
      }
      auto js = JsDivergenceOnGrid(parent.Estimator(), truth,
                                   cfg.js_grid_cells);
      point.parent_js.push_back(js.ok() ? *js : 1.0);
    }
    series.push_back(std::move(point));
  }
  return series;
}

StatusOr<MessageScalingResult> RunMessageScaling(
    const MessageScalingConfig& cfg) {
  auto layout_or = BuildGridHierarchy(cfg.num_leaves, cfg.fanout);
  if (!layout_or.ok()) return layout_or.status();
  const HierarchyLayout& layout = *layout_or;

  MessageScalingResult result;
  result.num_nodes = layout.NumNodes();

  Rng master(cfg.seed);

  DensityModelConfig leaf_model;
  leaf_model.dimensions = cfg.dimensions;
  leaf_model.window_size = cfg.window_size;
  leaf_model.sample_size = cfg.sample_size;
  leaf_model.epsilon = cfg.epsilon;
  leaf_model.prewarm_steady_state = true;

  std::vector<size_t> descendant_leaves(layout.nodes.size(), 0);
  for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
    if (layout.nodes[slot].level != 1) continue;
    int cur = static_cast<int>(slot);
    while (cur >= 0) {
      ++descendant_leaves[static_cast<size_t>(cur)];
      cur = layout.nodes[static_cast<size_t>(cur)].parent_slot;
    }
  }
  auto leader_model = [&](int slot) {
    const HierarchyNodeSpec& spec = layout.nodes[static_cast<size_t>(slot)];
    DensityModelConfig m = LeaderModelConfigFor(
        leaf_model, spec.child_slots.size(),
        descendant_leaves[static_cast<size_t>(slot)], cfg.sample_fraction);
    m.prewarm_steady_state = true;
    return m;
  };

  auto max_node_energy = [](const Simulator& sim) {
    double max_e = 0.0;
    for (size_t i = 0; i < sim.NumNodes(); ++i) {
      max_e = std::max(max_e, sim.EnergyConsumed(static_cast<NodeId>(i)));
    }
    return max_e;
  };

  auto schedule_readings = [&](Simulator& sim, const std::vector<NodeId>& ids,
                               Rng* rng) {
    for (size_t slot = 0; slot < layout.nodes.size(); ++slot) {
      if (layout.nodes[slot].level != 1) continue;
      auto stream = std::make_shared<SyntheticMixtureStream>(
          SyntheticOptions{}, rng->Split());
      sim.SchedulePeriodicReadings(ids[slot], /*start=*/0.0, /*period=*/1.0,
                                   [stream]() { return stream->Next(); });
    }
  };

  // --- D3: count sample-propagation traffic (the paper excludes the rare
  //     outlier-report messages from this comparison). Detection itself is
  //     disabled via min_observations to keep the horizon long.
  {
    Simulator sim;
    Rng rng = master.Split();
    std::vector<NodeId> ids = sim.Instantiate(
        layout, [&](int slot, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          D3Options opts;
          opts.sample_fraction = cfg.sample_fraction;
          opts.min_observations = UINT64_MAX;  // traffic-only run
          if (spec.level == 1) {
            opts.model = leaf_model;
            return std::make_unique<D3LeafNode>(opts, rng.Split(), nullptr);
          }
          opts.model = leader_model(slot);
          return std::make_unique<D3ParentNode>(opts, rng.Split(), nullptr);
        });
    Rng stream_rng = master.Split();
    schedule_readings(sim, ids, &stream_rng);
    sim.RunUntil(cfg.duration_seconds);
    result.d3_messages_per_second =
        static_cast<double>(sim.stats().MessagesOfKind(kMsgSampleValue)) /
        cfg.duration_seconds;
    result.d3_max_node_energy_per_second =
        max_node_energy(sim) / cfg.duration_seconds;
  }

  // --- MGDD: sample propagation plus global-model dissemination.
  {
    Simulator sim;
    Rng rng = master.Split();
    std::vector<NodeId> ids = sim.Instantiate(
        layout, [&](int slot, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          MgddOptions opts;
          opts.sample_fraction = cfg.sample_fraction;
          opts.min_observations = UINT64_MAX;  // traffic-only run
          if (spec.level == 1) {
            opts.model = leaf_model;
            return std::make_unique<MgddLeafNode>(opts, rng.Split(),
                                                  nullptr);
          }
          opts.model = leader_model(slot);
          return std::make_unique<MgddInternalNode>(opts, rng.Split());
        });
    Rng stream_rng = master.Split();
    schedule_readings(sim, ids, &stream_rng);
    sim.RunUntil(cfg.duration_seconds);
    result.mgdd_messages_per_second =
        static_cast<double>(
            sim.stats().MessagesOfKind(kMsgSampleValue) +
            sim.stats().MessagesOfKind(kMsgGlobalModelUpdate)) /
        cfg.duration_seconds;
    result.mgdd_max_node_energy_per_second =
        max_node_energy(sim) / cfg.duration_seconds;
  }

  // --- Centralized: every reading travels to the root.
  {
    Simulator sim;
    std::vector<NodeId> ids = sim.Instantiate(
        layout, [&](int, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<CentralizedLeafNode>();
          }
          return std::make_unique<CentralizedRelayNode>(cfg.window_size,
                                                        cfg.dimensions);
        });
    Rng stream_rng = master.Split();
    schedule_readings(sim, ids, &stream_rng);
    sim.RunUntil(cfg.duration_seconds);
    result.centralized_messages_per_second =
        static_cast<double>(sim.stats().MessagesOfKind(kMsgRawReading)) /
        cfg.duration_seconds;
    result.centralized_max_node_energy_per_second =
        max_node_energy(sim) / cfg.duration_seconds;
  }

  return result;
}

}  // namespace sensord
