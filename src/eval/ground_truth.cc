#include "eval/ground_truth.h"

#include <cmath>

#include "util/check.h"

namespace sensord {

GroundTruthTracker::GroundTruthTracker(const HierarchyLayout& layout,
                                       const GroundTruthOptions& options)
    : layout_(layout), options_(options) {
  const size_t n = layout_.nodes.size();
  ancestors_.resize(n);
  leaf_windows_.resize(n);
  counters_.resize(n);
  aligned_.resize(n);

  if (options_.mdef_cell_side > 0.0) {
    aligned_cells_per_dim_ = static_cast<size_t>(
        std::ceil(1.0 / options_.mdef_cell_side));
  }

  for (size_t slot = 0; slot < n; ++slot) {
    counters_[slot] = MakeBoxCounter(options_.dimensions);
    if (layout_.nodes[slot].parent_slot < 0) {
      root_slot_ = static_cast<int>(slot);
    }
    if (layout_.nodes[slot].level == 1) {
      leaf_windows_[slot] = std::make_unique<SlidingWindow>(
          options_.leaf_window, options_.dimensions);
      // Ancestor chain, leaf first.
      int cur = static_cast<int>(slot);
      while (cur >= 0) {
        ancestors_[slot].push_back(cur);
        cur = layout_.nodes[static_cast<size_t>(cur)].parent_slot;
      }
    }
    if (aligned_cells_per_dim_ > 0) {
      size_t cells = 1;
      for (size_t d = 0; d < options_.dimensions; ++d) {
        cells *= aligned_cells_per_dim_;
      }
      aligned_[slot].counts.assign(cells, 0);
    }
  }
  SENSORD_CHECK_GE(root_slot_, 0);
}

size_t GroundTruthTracker::AlignedCellOf(const Point& p) const {
  size_t idx = 0;
  for (size_t d = 0; d < options_.dimensions; ++d) {
    size_t c = static_cast<size_t>(
        Clamp(p[d], 0.0, 1.0) / options_.mdef_cell_side);
    c = std::min(c, aligned_cells_per_dim_ - 1);
    idx = idx * aligned_cells_per_dim_ + c;
  }
  return idx;
}

void GroundTruthTracker::AlignedUpdate(int slot, const Point& p, int delta) {
  if (aligned_cells_per_dim_ == 0) return;
  auto& counts = aligned_[slot].counts;
  const size_t cell = AlignedCellOf(p);
  SENSORD_DCHECK(delta > 0 || counts[cell] > 0);
  counts[cell] = static_cast<uint32_t>(
      static_cast<int64_t>(counts[cell]) + delta);
}

void GroundTruthTracker::AddLeafReading(int leaf_slot, const Point& p) {
  SENSORD_CHECK(leaf_slot >= 0 &&
                static_cast<size_t>(leaf_slot) < layout_.nodes.size());
  SlidingWindow* window = leaf_windows_[leaf_slot].get();
  SENSORD_CHECK(window != nullptr && "readings must target leaf slots");

  // Capture the value about to be evicted before it is overwritten.
  Point evicted;
  const bool evicts = window->full();
  if (evicts) evicted = window->At(0);
  SENSORD_CHECK_OK(window->Add(p));

  for (int slot : ancestors_[leaf_slot]) {
    counters_[slot]->Add(p);
    AlignedUpdate(slot, p, +1);
    if (evicts) {
      counters_[slot]->Remove(evicted);
      AlignedUpdate(slot, evicted, -1);
    }
  }
}

double GroundTruthTracker::NeighborCount(int slot, const Point& p,
                                         double radius) const {
  return counters_[slot]->CountBall(p, radius);
}

bool GroundTruthTracker::IsTrueDistanceOutlier(
    int slot, const Point& p, const DistanceOutlierConfig& config) const {
  return NeighborCount(slot, p, config.radius) < config.neighbor_threshold;
}

MdefResult GroundTruthTracker::TrueMdef(int slot, const Point& p,
                                        const MdefConfig& config) const {
  SENSORD_CHECK(aligned_cells_per_dim_ > 0 &&
                "construct the tracker with mdef_cell_side to query MDEF truth");
  SENSORD_CHECK(ApproxEqual(options_.mdef_cell_side,
                            2.0 * config.counting_radius) &&
                "tracker cell side must match the queried counting radius");

  const double side = options_.mdef_cell_side;
  const double r = config.sampling_radius;
  const auto& counts = aligned_[slot].counts;

  // Accumulate power sums of the cell counts whose centres lie within the
  // sampling ball — the same cell selection rule as core/mdef.cc.
  double sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
  size_t cells = 0;
  const long per_dim = static_cast<long>(aligned_cells_per_dim_);

  auto dim_range = [&](size_t d, long* first, long* last) {
    *first = std::max(0L, static_cast<long>(std::floor((p[d] - r) / side)));
    *last = std::min(per_dim - 1,
                     static_cast<long>(std::floor((p[d] + r) / side)));
  };
  auto center_ok = [&](size_t d, long j) {
    const double center = (static_cast<double>(j) + 0.5) * side;
    return std::fabs(center - p[d]) <= r;
  };
  auto accumulate = [&](double s) {
    sum1 += s;
    sum2 += s * s;
    sum3 += s * s * s;
    ++cells;
  };

  if (options_.dimensions == 1) {
    long first, last;
    dim_range(0, &first, &last);
    for (long j = first; j <= last; ++j) {
      if (!center_ok(0, j)) continue;
      accumulate(static_cast<double>(counts[static_cast<size_t>(j)]));
    }
  } else {
    SENSORD_CHECK(options_.dimensions == 2 && "MDEF truth supports d <= 2");
    long fx, lx, fy, ly;
    dim_range(0, &fx, &lx);
    dim_range(1, &fy, &ly);
    for (long jx = fx; jx <= lx; ++jx) {
      if (!center_ok(0, jx)) continue;
      for (long jy = fy; jy <= ly; ++jy) {
        if (!center_ok(1, jy)) continue;
        const size_t idx = static_cast<size_t>(jx) * aligned_cells_per_dim_ +
                           static_cast<size_t>(jy);
        accumulate(static_cast<double>(counts[idx]));
      }
    }
  }

  const double counting =
      counters_[slot]->CountBall(p, config.counting_radius);
  return MdefFromMasses(counting, sum1, sum2, sum3, cells, config);
}

}  // namespace sensord
