// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Incremental ground truth for the accuracy experiments.
//
// The paper scores its detectors against offline algorithms run "for each
// instance of the sliding window" (Section 10): BruteForce-D for distance
// outliers and BruteForce-M (aLOCI box counts) for MDEF outliers, at every
// hierarchy level — a leader's pool being the union of the leaf windows
// below it. Recomputing those from scratch at every reading would be
// O(d|W|^2) per arrival; this tracker maintains, per hierarchy node, exact
// box-count structures over the node's pooled window and answers the same
// questions incrementally:
//
//  * distance truth  — one exact ball count (eval/box_counter.h),
//  * MDEF truth      — dense counts on the 2*alpha*r-aligned cell grid
//                      (O(1) updates) plus one exact ball count, fed into
//                      the same MdefFromMasses formula the detectors use.
//
// Equivalence with the brute-force baselines is asserted by tests.

#ifndef SENSORD_EVAL_GROUND_TRUTH_H_
#define SENSORD_EVAL_GROUND_TRUTH_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/mdef.h"
#include "eval/box_counter.h"
#include "net/hierarchy.h"
#include "stream/sliding_window.h"
#include "util/math_utils.h"

namespace sensord {

/// Configuration of the tracker.
struct GroundTruthOptions {
  size_t dimensions = 1;
  /// Per-leaf window length |W|.
  size_t leaf_window = 10000;
  /// Enables MDEF truth: the aligned cell side, 2 * counting_radius of the
  /// MdefConfig the truth will be queried with. 0 disables MDEF tracking.
  double mdef_cell_side = 0.0;
};

/// Exact pooled-window statistics for every node of a hierarchy.
class GroundTruthTracker {
 public:
  GroundTruthTracker(const HierarchyLayout& layout,
                     const GroundTruthOptions& options);

  /// Feeds a reading sensed by the leaf at `leaf_slot`; updates the leaf's
  /// window and the pooled structures of all its ancestors.
  /// Pre: leaf_slot is a level-1 slot; p.size() == dimensions.
  void AddLeafReading(int leaf_slot, const Point& p);

  /// Exact count of pool values of node `slot` within L-infinity distance
  /// `radius` of p (including p itself if it is in the pool).
  double NeighborCount(int slot, const Point& p, double radius) const;

  /// BruteForce-D verdict at node `slot`'s pool.
  bool IsTrueDistanceOutlier(int slot, const Point& p,
                             const DistanceOutlierConfig& config) const;

  /// BruteForce-M (aLOCI) verdict at node `slot`'s pool. Pre: the tracker
  /// was constructed with mdef_cell_side == 2 * config.counting_radius.
  MdefResult TrueMdef(int slot, const Point& p,
                      const MdefConfig& config) const;

  /// Current number of values in node `slot`'s pool.
  double PoolSize(int slot) const { return counters_[slot]->Total(); }

  /// The exact retained window of a leaf. Pre: leaf_slot is a level-1 slot.
  const SlidingWindow& LeafWindow(int leaf_slot) const {
    return *leaf_windows_[leaf_slot];
  }

  /// Slot of the hierarchy root.
  int RootSlot() const { return root_slot_; }

  const HierarchyLayout& layout() const { return layout_; }

 private:
  // Dense counts over the mdef grid of one node.
  struct AlignedGrid {
    std::vector<uint32_t> counts;  // row-major, cells_per_dim^d
  };

  size_t AlignedCellOf(const Point& p) const;
  void AlignedUpdate(int slot, const Point& p, int delta);

  HierarchyLayout layout_;
  GroundTruthOptions options_;
  int root_slot_ = -1;

  std::vector<std::vector<int>> ancestors_;  // per leaf slot, incl. itself
  std::vector<std::unique_ptr<SlidingWindow>> leaf_windows_;  // per slot
  std::vector<std::unique_ptr<BoxCounter>> counters_;         // per slot
  std::vector<AlignedGrid> aligned_;                          // per slot
  size_t aligned_cells_per_dim_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_EVAL_GROUND_TRUTH_H_
