#include "eval/box_counter.h"

#include <algorithm>

#include "util/check.h"

namespace sensord {

double BoxCounter::CountBall(const Point& p, double r) const {
  Point lo(p), hi(p);
  for (size_t i = 0; i < p.size(); ++i) {
    lo[i] -= r;
    hi[i] += r;
  }
  return CountBox(lo, hi);
}

std::unique_ptr<BoxCounter> MakeBoxCounter(size_t dimensions) {
  SENSORD_CHECK_GE(dimensions, 1u);
  if (dimensions == 1) return std::make_unique<BoxCounter1d>();
  if (dimensions == 2) return std::make_unique<BoxCounter2d>();
  return std::make_unique<ScanBoxCounter>(dimensions);
}

// ---------------------------------------------------------------- 1-d ----

BoxCounter1d::BoxCounter1d() : fenwick_(kBins + 1, 0), bins_(kBins) {}

size_t BoxCounter1d::BinOf(double x) const {
  const double clamped = Clamp(x, 0.0, 1.0);
  size_t bin = static_cast<size_t>(clamped * static_cast<double>(kBins));
  return std::min(bin, kBins - 1);
}

uint64_t BoxCounter1d::Prefix(size_t bin) const {
  // Fenwick over 1-based indices; `bin` is 0-based inclusive.
  uint64_t sum = 0;
  for (size_t i = bin + 1; i > 0; i -= i & (~i + 1)) sum += fenwick_[i];
  return sum;
}

void BoxCounter1d::Update(size_t bin, int64_t delta) {
  for (size_t i = bin + 1; i <= kBins; i += i & (~i + 1)) {
    fenwick_[i] = static_cast<uint64_t>(static_cast<int64_t>(fenwick_[i]) +
                                        delta);
  }
}

void BoxCounter1d::Add(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), 1u);
  const size_t bin = BinOf(p[0]);
  bins_[bin].push_back(p[0]);
  Update(bin, +1);
  ++total_;
}

void BoxCounter1d::Remove(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), 1u);
  const size_t bin = BinOf(p[0]);
  auto& v = bins_[bin];
  const auto it = std::find(v.begin(), v.end(), p[0]);
  SENSORD_CHECK(it != v.end() && "removing a value that was never added");
  *it = v.back();
  v.pop_back();
  Update(bin, -1);
  --total_;
}

double BoxCounter1d::CountBox(const Point& lo, const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), 1u);
  SENSORD_DCHECK_EQ(hi.size(), 1u);
  if (lo[0] > hi[0]) return 0.0;
  if (hi[0] < 0.0 || lo[0] > 1.0) return 0.0;
  const size_t b_lo = BinOf(lo[0]);
  const size_t b_hi = BinOf(hi[0]);

  auto scan = [&](size_t bin) {
    uint64_t n = 0;
    for (double x : bins_[bin]) {
      if (x >= lo[0] && x <= hi[0]) ++n;
    }
    return n;
  };

  if (b_lo == b_hi) return static_cast<double>(scan(b_lo));
  uint64_t count = scan(b_lo) + scan(b_hi);
  if (b_hi > b_lo + 1) {
    count += Prefix(b_hi - 1) - Prefix(b_lo);
  }
  return static_cast<double>(count);
}

// ---------------------------------------------------------------- 2-d ----

BoxCounter2d::BoxCounter2d(size_t cells_per_dim)
    : grid_(cells_per_dim),
      counts_(cells_per_dim * cells_per_dim, 0),
      points_(cells_per_dim * cells_per_dim) {
  SENSORD_CHECK_GE(grid_, 2u);
}

size_t BoxCounter2d::CellIndex(double x) const {
  const double clamped = Clamp(x, 0.0, 1.0);
  size_t c = static_cast<size_t>(clamped * static_cast<double>(grid_));
  return std::min(c, grid_ - 1);
}

void BoxCounter2d::Add(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), 2u);
  const size_t cell = Flat(CellIndex(p[0]), CellIndex(p[1]));
  points_[cell].push_back(p);
  ++counts_[cell];
  ++total_;
}

void BoxCounter2d::Remove(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), 2u);
  const size_t cell = Flat(CellIndex(p[0]), CellIndex(p[1]));
  auto& v = points_[cell];
  const auto it = std::find(v.begin(), v.end(), p);
  SENSORD_CHECK(it != v.end() && "removing a point that was never added");
  *it = std::move(v.back());
  v.pop_back();
  --counts_[cell];
  --total_;
}

double BoxCounter2d::CountBox(const Point& lo, const Point& hi) const {
  SENSORD_DCHECK_EQ(lo.size(), 2u);
  SENSORD_DCHECK_EQ(hi.size(), 2u);
  if (lo[0] > hi[0] || lo[1] > hi[1]) return 0.0;
  if (hi[0] < 0.0 || hi[1] < 0.0 || lo[0] > 1.0 || lo[1] > 1.0) return 0.0;
  const size_t cx0 = CellIndex(lo[0]), cx1 = CellIndex(hi[0]);
  const size_t cy0 = CellIndex(lo[1]), cy1 = CellIndex(hi[1]);

  uint64_t count = 0;
  for (size_t cx = cx0; cx <= cx1; ++cx) {
    const bool x_interior = cx > cx0 && cx < cx1;
    for (size_t cy = cy0; cy <= cy1; ++cy) {
      const bool interior = x_interior && cy > cy0 && cy < cy1;
      const size_t cell = Flat(cx, cy);
      if (interior) {
        // Cell fully inside the closed box: take the count wholesale.
        count += counts_[cell];
        continue;
      }
      for (const Point& p : points_[cell]) {
        if (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] &&
            p[1] <= hi[1]) {
          ++count;
        }
      }
    }
  }
  return static_cast<double>(count);
}

// ------------------------------------------------------------- scan ------

ScanBoxCounter::ScanBoxCounter(size_t dimensions) : dimensions_(dimensions) {}

void ScanBoxCounter::Add(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), dimensions_);
  points_.push_back(p);
}

void ScanBoxCounter::Remove(const Point& p) {
  const auto it = std::find(points_.begin(), points_.end(), p);
  SENSORD_CHECK(it != points_.end() && "removing a point that was never added");
  *it = std::move(points_.back());
  points_.pop_back();
}

double ScanBoxCounter::CountBox(const Point& lo, const Point& hi) const {
  uint64_t count = 0;
  for (const Point& p : points_) {
    bool inside = true;
    for (size_t i = 0; i < dimensions_ && inside; ++i) {
      inside = p[i] >= lo[i] && p[i] <= hi[i];
    }
    if (inside) ++count;
  }
  return static_cast<double>(count);
}

}  // namespace sensord
