// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Exact dynamic box-count structures for ground-truth computation.
//
// The evaluation harness must answer, for every arriving reading and at
// every hierarchy level, "how many values of the current pooled window lie
// in this box?" — exactly, because these answers define the true outliers
// the detectors are scored against. A naive scan is O(|pool|) per query and
// far too slow at 10^5-value pools; these structures make queries cheap:
//
//  * BoxCounter1d — a Fenwick (binary indexed) tree over fine value bins
//    counts interior bins in O(log B); the two boundary bins keep their raw
//    values and are scanned exactly. Add/Remove O(log B); queries exact.
//  * BoxCounter2d — a uniform grid; interior cells are summed from per-cell
//    counts, perimeter cells scan their stored points exactly.
//
// Equivalence with the O(|W|) scan is asserted by property tests against
// baseline/brute_force_d.h.

#ifndef SENSORD_EVAL_BOX_COUNTER_H_
#define SENSORD_EVAL_BOX_COUNTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/math_utils.h"

namespace sensord {

/// Interface: a multiset of points in [0,1]^d supporting exact counting of
/// closed axis-aligned boxes.
class BoxCounter {
 public:
  virtual ~BoxCounter() = default;

  virtual size_t dimensions() const = 0;

  /// Inserts a point (duplicates allowed).
  virtual void Add(const Point& p) = 0;

  /// Removes one instance of a previously added point.
  /// Pre: the point is present.
  virtual void Remove(const Point& p) = 0;

  /// Number of stored points in the closed box [lo, hi].
  virtual double CountBox(const Point& lo, const Point& hi) const = 0;

  /// Total stored points.
  virtual double Total() const = 0;

  /// Count in the closed L-infinity ball of radius r around p.
  double CountBall(const Point& p, double r) const;
};

/// Creates the dimension-appropriate counter. Supported: d == 1 and d == 2
/// (the paper's experimental range); higher d falls back to a linear-scan
/// counter, correct but O(n) per query.
std::unique_ptr<BoxCounter> MakeBoxCounter(size_t dimensions);

/// 1-d: Fenwick tree over 2^16 bins + exact per-bin value lists.
class BoxCounter1d : public BoxCounter {
 public:
  BoxCounter1d();

  size_t dimensions() const override { return 1; }
  void Add(const Point& p) override;
  void Remove(const Point& p) override;
  double CountBox(const Point& lo, const Point& hi) const override;
  double Total() const override { return static_cast<double>(total_); }

 private:
  static constexpr size_t kBins = 1u << 16;

  size_t BinOf(double x) const;
  // Fenwick prefix sum of bins [0, bin].
  uint64_t Prefix(size_t bin) const;
  void Update(size_t bin, int64_t delta);

  std::vector<uint64_t> fenwick_;          // 1-based Fenwick array
  std::vector<std::vector<double>> bins_;  // raw values per bin
  uint64_t total_ = 0;
};

/// 2-d: uniform grid with per-cell counts and point lists.
class BoxCounter2d : public BoxCounter {
 public:
  /// `cells_per_dim` controls the query/update trade-off (default 512).
  explicit BoxCounter2d(size_t cells_per_dim = 512);

  size_t dimensions() const override { return 2; }
  void Add(const Point& p) override;
  void Remove(const Point& p) override;
  double CountBox(const Point& lo, const Point& hi) const override;
  double Total() const override { return static_cast<double>(total_); }

 private:
  size_t CellIndex(double x) const;
  size_t Flat(size_t cx, size_t cy) const { return cx * grid_ + cy; }

  size_t grid_;
  std::vector<uint32_t> counts_;                    // per cell
  std::vector<std::vector<Point>> points_;          // per cell
  uint64_t total_ = 0;
};

/// Any dimensionality: linear scan. Correct but O(n) per query; used only
/// beyond the experimental d <= 2 range and in tests as a reference.
class ScanBoxCounter : public BoxCounter {
 public:
  explicit ScanBoxCounter(size_t dimensions);

  size_t dimensions() const override { return dimensions_; }
  void Add(const Point& p) override;
  void Remove(const Point& p) override;
  double CountBox(const Point& lo, const Point& hi) const override;
  double Total() const override { return static_cast<double>(points_.size()); }

 private:
  size_t dimensions_;
  std::vector<Point> points_;
};

}  // namespace sensord

#endif  // SENSORD_EVAL_BOX_COUNTER_H_
