// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Reusable drivers for the paper's experiments (Section 10). Each bench
// binary configures one of these and formats the result like the paper's
// figure; keeping the drivers in the library also lets integration tests
// assert the headline claims (e.g. "precision and recall above 90% at the
// default parameters") on scaled-down instances.
//
//  * RunAccuracyExperiment    — Figures 7, 8, 9, 10: drive a hierarchy of
//    sensors over a workload, score D3 per level and MGDD at the leaves
//    against exact ground truth, with the kernel method (full message-level
//    simulation) or the offline histogram comparison method.
//  * RunEstimationAccuracy    — Figure 6: JS divergence between the kernel
//    estimate and the true (shifting) distribution over time, at a leaf and
//    at a parent for several sample fractions f.
//  * RunMessageScaling        — Figure 11: steady-state messages/second of
//    D3, MGDD and the centralized approach vs network size.

#ifndef SENSORD_EVAL_EXPERIMENT_H_
#define SENSORD_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/config.h"
#include "core/mgdd.h"
#include "eval/scoring.h"
#include "util/status.h"

namespace sensord {

/// Which workload drives the sensors.
enum class WorkloadKind {
  kSyntheticMixture,  ///< 3-Gaussian mixture + uniform noise (Section 10)
  kEngine,            ///< surrogate engine trace (1-d)
  kEnvironmental,     ///< surrogate (pressure, dew-point) trace (2-d)
  kGappedBimodal,     ///< dense bands + rare gap readings (MDEF showcase)
};

/// Which estimator the detectors use.
enum class EstimatorMethod {
  kKernel,     ///< the paper's approach: chain sample + KDE, full simulation
  kHistogram,  ///< offline equi-depth histograms over exact pooled windows
};

/// Configuration of an accuracy experiment. Defaults are the paper's
/// Section 10.2 setup scaled to the 1-d synthetic workload.
struct AccuracyConfig {
  size_t num_leaves = 32;
  size_t fanout = 4;
  size_t dimensions = 1;
  WorkloadKind workload = WorkloadKind::kSyntheticMixture;
  EstimatorMethod method = EstimatorMethod::kKernel;

  size_t window_size = 10000;  ///< |W|
  size_t sample_size = 500;    ///< |R| (kernel) or |B| (histogram)
  double epsilon = 0.2;
  double sample_fraction = 0.5;  ///< f

  bool run_d3 = true;
  bool run_mgdd = true;
  DistanceOutlierConfig d3_outlier;  ///< default (45, 0.01)
  MdefConfig mdef;                   ///< default r=0.08, ar=0.01, k_sigma=3
  GlobalUpdateMode mgdd_update_mode = GlobalUpdateMode::kEveryChange;

  /// Rounds (one reading per sensor each) before scoring starts, and the
  /// number of scored rounds.
  size_t warmup_rounds = 10000;
  size_t measured_rounds = 2000;

  /// Histogram method: rounds between histogram rebuilds (the offline
  /// recomputation cadence).
  size_t histogram_rebuild_interval = 200;

  /// Score only every k-th reading (k >= 1). Sub-sampling keeps expensive
  /// configurations tractable without biasing precision/recall.
  size_t score_subsample = 1;

  /// Lossy-radio model: probability that any transmitted message is lost
  /// (kernel method only; 0 = reliable links, the paper's setting). Used by
  /// the robustness ablation.
  double link_loss = 0.0;

  /// Ack/retransmit transport under the loss above (kernel method only).
  /// transport.reliable = true makes the detectors see (almost) the
  /// loss-free message stream at a measurable retransmission cost — the
  /// knob the soak tests and the packet-loss ablation flip.
  TransportOptions transport;

  /// Staleness horizon (virtual seconds) after which D3 parents and MGDD
  /// leaves mark themselves degraded (see D3Options/MgddOptions). The
  /// default (+inf) disables degradation tracking, matching the paper's
  /// fault-free setting.
  double staleness_threshold = std::numeric_limits<double>::infinity();

  /// Bandwidth selection for all density models: false = the paper's
  /// Scott's rule; true = the robust IQR-tempered variant (see
  /// DensityModelConfig::robust_bandwidth).
  bool robust_bandwidth = false;

  uint64_t seed = 1;
};

/// Result of one accuracy run.
struct AccuracyResult {
  /// D3 precision/recall per hierarchy level; index 0 = level 1 (leaves).
  std::vector<PrecisionRecall> d3_by_level;
  /// MGDD precision/recall (leaf detection against the global model).
  PrecisionRecall mgdd;
  /// Total messages sent during the run (per algorithm's simulation).
  uint64_t d3_messages = 0;
  uint64_t mgdd_messages = 0;
};

/// Runs one accuracy experiment. Returns InvalidArgument on inconsistent
/// configuration (e.g. environmental workload with dimensions != 2).
StatusOr<AccuracyResult> RunAccuracyExperiment(const AccuracyConfig& config);

/// Averages `runs` accuracy runs with seeds seed, seed+1, ... (the paper
/// averages 12 runs per configuration).
StatusOr<AccuracyResult> RunAccuracyExperimentAveraged(
    const AccuracyConfig& config, size_t runs);

/// Configuration of the Figure 6 estimation-accuracy experiment.
struct EstimationAccuracyConfig {
  size_t window_size = 10240;
  size_t sample_size = 1024;
  double epsilon = 0.2;
  size_t fanout = 4;  ///< children feeding the parent sensor
  /// Parent sample fractions to evaluate (paper: 0.5 and 0.75).
  std::vector<double> parent_fractions = {0.5, 0.75};
  uint64_t phase_length = 4096;  ///< readings between distribution shifts
  uint64_t total_rounds = 12288;
  uint64_t eval_every = 256;    ///< readings between JS evaluations
  size_t js_grid_cells = 128;   ///< grid resolution of the JS computation
  uint64_t seed = 1;
};

/// One evaluation point of the Figure 6 series.
struct EstimationAccuracyPoint {
  uint64_t t = 0;          ///< reading index
  double leaf_js = 0.0;    ///< JS(leaf estimate, true distribution)
  std::vector<double> parent_js;  ///< one per configured parent fraction
};

std::vector<EstimationAccuracyPoint> RunEstimationAccuracy(
    const EstimationAccuracyConfig& config);

/// Configuration of the Figure 11 message-scaling experiment.
struct MessageScalingConfig {
  size_t num_leaves = 48;
  size_t fanout = 4;
  size_t dimensions = 1;
  size_t window_size = 10240;
  size_t sample_size = 1024;
  double epsilon = 0.2;
  double sample_fraction = 0.25;  ///< f (paper's Figure 11 value)
  double duration_seconds = 600.0;  ///< measured horizon, 1 reading/s/sensor
  uint64_t seed = 1;
};

/// Steady-state message rates of the three approaches, plus the radio
/// energy of the hottest node (the bottleneck that determines network
/// lifetime; see SimulatorOptions' energy model).
struct MessageScalingResult {
  size_t num_nodes = 0;  ///< total nodes in the hierarchy
  double d3_messages_per_second = 0.0;
  double mgdd_messages_per_second = 0.0;
  double centralized_messages_per_second = 0.0;
  double d3_max_node_energy_per_second = 0.0;
  double mgdd_max_node_energy_per_second = 0.0;
  double centralized_max_node_energy_per_second = 0.0;
};

StatusOr<MessageScalingResult> RunMessageScaling(
    const MessageScalingConfig& config);

}  // namespace sensord

#endif  // SENSORD_EVAL_EXPERIMENT_H_
