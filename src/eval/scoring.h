// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Precision / recall accounting (Section 10, Measures of Interest):
// "Precision represents the fraction of the values reported by our
// algorithm as outliers that are true outliers. Recall represents the
// fraction of the true outliers that our algorithm identified correctly."

#ifndef SENSORD_EVAL_SCORING_H_
#define SENSORD_EVAL_SCORING_H_

#include <cstdint>
#include <string>

namespace sensord {

/// Counts classification outcomes and derives precision/recall.
class PrecisionRecall {
 public:
  /// Records one decision: `truth` per the offline algorithm, `flagged` per
  /// the detector under evaluation.
  void Record(bool truth, bool flagged);

  uint64_t true_positives() const { return tp_; }
  uint64_t false_positives() const { return fp_; }
  uint64_t false_negatives() const { return fn_; }
  uint64_t true_negatives() const { return tn_; }
  uint64_t total() const { return tp_ + fp_ + fn_ + tn_; }

  /// TP / (TP + FP); 1.0 when nothing was flagged (vacuous precision).
  double Precision() const;

  /// TP / (TP + FN); 1.0 when there were no true outliers (vacuous recall).
  double Recall() const;

  /// Harmonic mean of precision and recall; 0 if either is 0.
  double F1() const;

  /// Merges another accumulator into this one (for averaging runs).
  void Merge(const PrecisionRecall& other);

  /// "P=94.1% R=92.3% (tp=.. fp=.. fn=..)" — for bench output.
  std::string ToString() const;

 private:
  uint64_t tp_ = 0;
  uint64_t fp_ = 0;
  uint64_t fn_ = 0;
  uint64_t tn_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_EVAL_SCORING_H_
