// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// A count-based sliding window over a stream of d-dimensional points.
//
// The paper's problem statement (Section 3) fixes the unit of analysis: "the
// outlying values within a sliding window W that holds the last |W| values of
// S". The approximate machinery (chain sample + variance sketch) never
// materializes the window; this container exists for the exact baselines
// (BruteForce-D / BruteForce-M), for ground-truth scoring, and for tests.

#ifndef SENSORD_STREAM_SLIDING_WINDOW_H_
#define SENSORD_STREAM_SLIDING_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Fixed-capacity ring buffer holding the most recent `capacity` points.
///
/// Indices are logical: index 0 is the oldest retained point, size()-1 the
/// newest. Each point also carries the global stream position at which it
/// arrived (`ArrivalTime`), which the evaluation layer uses to align window
/// instances across sensors.
class SlidingWindow {
 public:
  /// Creates a window retaining the last `capacity` points of a
  /// `dimensions`-dimensional stream.
  /// Pre: capacity > 0, dimensions > 0.
  SlidingWindow(size_t capacity, size_t dimensions);

  /// Appends a point, evicting the oldest if full.
  /// Returns InvalidArgument if the point's dimensionality mismatches.
  Status Add(const Point& p);

  /// Number of points currently retained (<= capacity).
  size_t size() const { return size_; }

  /// Maximum number of retained points (the |W| of the paper).
  size_t capacity() const { return capacity_; }

  /// Stream dimensionality d.
  size_t dimensions() const { return dimensions_; }

  /// True once `capacity` points have been observed.
  bool full() const { return size_ == capacity_; }

  /// Total points ever observed (not just retained).
  uint64_t total_seen() const { return total_seen_; }

  /// The i-th oldest retained point. Pre: i < size().
  const Point& At(size_t i) const;

  /// Global stream position (0-based) of the i-th oldest retained point.
  /// Pre: i < size().
  uint64_t ArrivalTime(size_t i) const;

  /// Copies the retained points, oldest first.
  std::vector<Point> Snapshot() const;

  /// Copies one coordinate of every retained point, oldest first.
  /// Pre: dim < dimensions().
  std::vector<double> Coordinate(size_t dim) const;

  /// Discards all retained points (total_seen is preserved).
  void Clear();

 private:
  size_t capacity_;
  size_t dimensions_;
  std::vector<Point> ring_;
  size_t head_ = 0;  // position of the oldest element in ring_
  size_t size_ = 0;
  uint64_t total_seen_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_STREAM_SLIDING_WINDOW_H_
