#include "stream/chain_sample.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sensord {
namespace {

// Cached metric handles (see obs/metrics.h): the registry lookup runs once
// per process; per-event cost is one relaxed atomic increment.
struct ChainSampleMetrics {
  obs::Counter* adds;          // stream elements observed
  obs::Counter* restarts;      // chains restarted at a fresh element
  obs::Counter* replacements;  // queued replacement arrivals appended
  obs::Counter* expirations;   // active elements promoted out on expiry
  obs::Histogram* add_ns;      // window-advance latency (timing-gated)
};

const ChainSampleMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const ChainSampleMetrics m{
      registry.GetCounter("stream.chain_sample.adds"),
      registry.GetCounter("stream.chain_sample.restarts"),
      registry.GetCounter("stream.chain_sample.replacements"),
      registry.GetCounter("stream.chain_sample.expirations"),
      registry.GetHistogram("stream.chain_sample.add_ns",
                            obs::LatencyBoundariesNs())};
  return m;
}

}  // namespace

uint32_t ChainSample::AllocRow() {
  if (row_free_ != kNilRow) {
    const uint32_t r = row_free_;
    row_free_ = row_next_[r];
    return r;
  }
  const uint32_t r = static_cast<uint32_t>(row_index_.size());
  row_index_.emplace_back();
  row_next_.emplace_back();
  row_coords_.resize(row_coords_.size() + dims_);
  return r;
}

void ChainSample::ChainPushBack(Chain* chain, uint64_t index,
                                const Point& value) {
  SENSORD_DCHECK_EQ(value.size(), dims_);
  const uint32_t r = AllocRow();
  row_index_[r] = index;
  std::copy(value.begin(), value.end(),
            row_coords_.begin() + static_cast<size_t>(r) * dims_);
  row_next_[r] = kNilRow;
  if (chain->Empty()) {
    chain->head = r;
  } else {
    row_next_[chain->tail] = r;
  }
  chain->tail = r;
  ++chain->size;
}

void ChainSample::ChainPopFront(Chain* chain) {
  SENSORD_DCHECK(!chain->Empty());
  const uint32_t r = chain->head;
  chain->head = row_next_[r];
  --chain->size;
  if (chain->Empty()) chain->tail = kNilRow;
  FreeRow(r);
}

ChainSample::PendingIndex::PendingIndex(size_t min_slots) {
  size_t size = 64;
  while (size < min_slots) size <<= 1;
  heads.assign(size, kNil);
  tails.assign(size, kNil);
  mask = static_cast<uint32_t>(size - 1);
}

void ChainSample::PendingIndex::Register(uint64_t key, uint32_t chain_idx,
                                         bool expiry) {
  uint32_t e;
  if (free_head != kNil) {
    e = free_head;
    free_head = pool[e].next;
  } else {
    e = static_cast<uint32_t>(pool.size());
    pool.emplace_back();
  }
  pool[e] = Entry{key, expiry ? (chain_idx | kExpiryBit) : chain_idx, kNil};
  const uint32_t slot = static_cast<uint32_t>(key) & mask;
  if (heads[slot] == kNil) {
    heads[slot] = e;
  } else {
    pool[tails[slot]].next = e;
  }
  tails[slot] = e;
}

void ChainSample::PendingIndex::ConsumeBoth(
    uint64_t key, std::vector<uint32_t>* replacements,
    std::vector<uint32_t>* expiries) {
  replacements->clear();
  expiries->clear();
  const uint32_t slot = static_cast<uint32_t>(key) & mask;
  uint32_t* link = &heads[slot];
  uint32_t last_kept = kNil;
  while (*link != kNil) {
    Entry& entry = pool[*link];
    if (entry.key == key) {
      if ((entry.link & kExpiryBit) != 0) {
        expiries->push_back(entry.link & ~kExpiryBit);
      } else {
        replacements->push_back(entry.link);
      }
      const uint32_t dead = *link;
      *link = entry.next;
      pool[dead].next = free_head;
      free_head = dead;
    } else {
      last_kept = *link;
      link = &entry.next;
    }
  }
  tails[slot] = last_kept;
}

void ChainSample::PendingIndex::Clear() {
  heads.assign(heads.size(), kNil);
  tails.assign(tails.size(), kNil);
  pool.clear();
  free_head = kNil;
}

ChainSample::ChainSample(size_t sample_size, size_t window_size, Rng rng)
    : window_size_(window_size),
      chains_(sample_size),
      rng_(rng),
      pending_(4 * sample_size) {
  SENSORD_CHECK_GT(sample_size, 0u);
  SENSORD_CHECK_GT(window_size, 0u);
}

void ChainSample::PrewarmToSteadyState() {
  SENSORD_CHECK(!seeded_ && "prewarm must precede the first Add()");
  now_ = window_size_;
}

void ChainSample::DrawReplacement(uint32_t chain_idx, uint64_t index) {
  // The replacement is drawn uniformly from the W indices following `index`;
  // it arrives no later than the active element expires, so a warmed-up
  // chain is never empty.
  const uint64_t r = index + 1 + rng_.UniformUint64(window_size_);
  chains_[chain_idx].next_replacement_index = r;
  pending_.Register(r, chain_idx, /*expiry=*/false);
}

void ChainSample::RegisterExpiry(uint32_t chain_idx) {
  const Chain& chain = chains_[chain_idx];
  SENSORD_DCHECK(!chain.Empty());
  pending_.Register(FrontIndex(chain) + window_size_, chain_idx,
                    /*expiry=*/true);
}

void ChainSample::RestartChain(uint32_t chain_idx, uint64_t index,
                               const Point& value) {
  Metrics().restarts->Increment();
  ++version_;
  Chain& chain = chains_[chain_idx];
  // Orphaned index registrations are skipped lazily. The head row, if any,
  // is overwritten in place rather than freed and re-allocated: restarts
  // are by far the most frequent chain mutation, and most chains hold only
  // their active element when one hits.
  if (chain.Empty()) {
    ChainPushBack(&chain, index, value);
  } else {
    SENSORD_DCHECK_EQ(value.size(), dims_);
    for (uint32_t r = row_next_[chain.head]; r != kNilRow;) {
      const uint32_t next = row_next_[r];
      FreeRow(r);
      r = next;
    }
    const uint32_t head = chain.head;
    row_index_[head] = index;
    std::copy(value.begin(), value.end(),
              row_coords_.begin() + static_cast<size_t>(head) * dims_);
    row_next_[head] = kNilRow;
    chain.tail = head;
    chain.size = 1;
  }
  RegisterExpiry(chain_idx);
  DrawReplacement(chain_idx, index);
}

uint64_t ChainSample::GeometricSkip(double p) {
  // Number of Bernoulli(p) failures before the next success.
  SENSORD_DCHECK_GT(p, 0.0);
  SENSORD_DCHECK_LE(p, 1.0);
  if (p >= 1.0) return 0;
  double u = rng_.UniformDouble();
  if (u <= 0.0) u = 1e-300;  // UniformDouble is in [0,1); guard underflow
  return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

bool ChainSample::Add(const Point& value) {
  const obs::ScopedTimer timer(Metrics().add_ns);
  Metrics().adds->Increment();
  const uint64_t i = now_;  // 0-based arrival index of this element
  ++now_;

  if (!seeded_) {
    // The first element ever observed seeds every chain; it also fixes the
    // stream's dimensionality, which sizes the row pool's coordinate stride.
    dims_ = value.size();
    for (uint32_t c = 0; c < chains_.size(); ++c) RestartChain(c, i, value);
    seeded_ = true;
    return true;
  }

  // Detach this arrival's registrations of both kinds in one lookup; the
  // re-registrations below (always for keys > i) cannot perturb the
  // detached lists.
  pending_.ConsumeBoth(i, &scratch_replacements_, &scratch_expiries_);

  // 1. Chains whose pending replacement is this element: append it and draw
  //    the next replacement.
  for (const uint32_t c : scratch_replacements_) {
    Chain& chain = chains_[c];
    if (chain.next_replacement_index != i) continue;  // stale (restarted)
    ChainPushBack(&chain, i, value);
    Metrics().replacements->Increment();
    DrawReplacement(c, i);
  }

  // 2. Chains whose active element expires now: promote the next entry.
  for (const uint32_t c : scratch_expiries_) {
    Chain& chain = chains_[c];
    if (chain.Empty() || FrontIndex(chain) + window_size_ != i) {
      continue;  // stale (restarted since registration)
    }
    ChainPopFront(&chain);
    SENSORD_CHECK(!chain.Empty() &&
                  "chain invariant: replacement arrives before expiry");
    Metrics().expirations->Increment();
    ++version_;  // the chain's active element changed
    RegisterExpiry(c);
  }

  // 3. Restart each chain at this element independently with probability
  //    1/min(i+1, W) — how fresh observations enter the sample uniformly.
  //    Geometric skipping touches only the chains that restart.
  const uint64_t denom = std::min<uint64_t>(i + 1, window_size_);
  const double p_select = 1.0 / static_cast<double>(denom);
  bool entered_sample = false;
  uint64_t c = GeometricSkip(p_select);
  while (c < chains_.size()) {
    RestartChain(static_cast<uint32_t>(c), i, value);
    entered_sample = true;
    c += 1 + GeometricSkip(p_select);
  }
  return entered_sample;
}

PointView ChainSample::ActiveElement(size_t i) const {
  SENSORD_DCHECK_LT(i, chains_.size());
  SENSORD_DCHECK(!chains_[i].Empty());
  return PointView(FrontCoords(chains_[i]), dims_);
}

std::vector<Point> ChainSample::Snapshot() const {
  std::vector<Point> out;
  out.reserve(chains_.size());
  for (const Chain& chain : chains_) {
    if (!chain.Empty()) {
      const double* coords = FrontCoords(chain);
      out.emplace_back(coords, coords + dims_);
    }
  }
  return out;
}

void ChainSample::SnapshotTo(FlatPoints* out) const {
  out->Reset(seeded_ ? dims_ : 0);
  if (!seeded_) return;
  out->Reserve(chains_.size());
  for (const Chain& chain : chains_) {
    if (chain.Empty()) continue;
    const double* coords = FrontCoords(chain);
    std::copy(coords, coords + dims_, out->AppendRow());
  }
}

size_t ChainSample::StoredElements() const {
  size_t n = 0;
  for (const Chain& chain : chains_) n += chain.size;
  return n;
}

void ChainSample::PendingIndex::Serialize(SnapshotWriter* writer,
                                          bool expiry) const {
  // Gather this kind's (key, chain) pairs slot by slot. Within one slot the
  // list holds a key's registrations in insertion order (tail appends), so a
  // stable sort by key yields every bucket with its insertion order intact.
  std::vector<std::pair<uint64_t, uint32_t>> entries;
  for (const uint32_t head : heads) {
    for (uint32_t e = head; e != kNil; e = pool[e].next) {
      if (((pool[e].link & kExpiryBit) != 0) != expiry) continue;
      entries.emplace_back(pool[e].key, pool[e].link & ~kExpiryBit);
    }
  }
  std::stable_sort(
      entries.begin(), entries.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  uint32_t buckets = 0;
  for (size_t n = 0; n < entries.size(); ++n) {
    if (n == 0 || entries[n].first != entries[n - 1].first) ++buckets;
  }
  writer->PutU32(buckets);
  for (size_t n = 0; n < entries.size();) {
    const uint64_t key = entries[n].first;
    size_t end = n;
    while (end < entries.size() && entries[end].first == key) ++end;
    writer->PutU64(key);
    writer->PutU32(static_cast<uint32_t>(end - n));
    for (; n < end; ++n) writer->PutU32(entries[n].second);
  }
}

bool ChainSample::PendingIndex::RestoreFrom(SnapshotReader* reader,
                                            uint32_t chain_count,
                                            bool expiry) {
  const uint32_t buckets = reader->TakeU32();
  for (uint32_t b = 0; b < buckets; ++b) {
    const uint64_t key = reader->TakeU64();
    const uint32_t size = reader->TakeU32();
    if (!reader->ok()) return false;
    for (uint32_t e = 0; e < size; ++e) {
      const uint32_t c = reader->TakeU32();
      if (c >= chain_count) return false;
      Register(key, c, expiry);  // tail append keeps the bucket order
    }
  }
  return reader->ok();
}

void ChainSample::Serialize(SnapshotWriter* writer) const {
  writer->PutU64(window_size_);
  writer->PutU64(now_);
  writer->PutU64(version_);
  writer->PutBool(seeded_);
  writer->PutRng(rng_);
  writer->PutU32(static_cast<uint32_t>(chains_.size()));
  for (const Chain& chain : chains_) {
    writer->PutU64(chain.next_replacement_index);
    writer->PutU32(chain.size);
    // Each pool row is written in PutPoint's exact wire format (u32
    // dimension prefix + coordinates), so snapshots stay byte-identical to
    // the per-entry Point era.
    for (uint32_t r = chain.head; r != kNilRow; r = row_next_[r]) {
      writer->PutU64(row_index_[r]);
      writer->PutU32(static_cast<uint32_t>(dims_));
      const double* coords =
          row_coords_.data() + static_cast<size_t>(r) * dims_;
      for (size_t k = 0; k < dims_; ++k) writer->PutDouble(coords[k]);
    }
  }
  // The pending indexes must be written verbatim, not re-derived from the
  // chain state: when several chains wait on the same arrival index, the
  // bucket's vector order decides which chain draws its next replacement
  // first, and that assignment must survive a restore for the continuation
  // to be bit-identical. Keys are emitted sorted so the encoding is
  // deterministic; stale registrations are kept — a live sampler skips them
  // lazily without touching the rng.
  pending_.Serialize(writer, /*expiry=*/false);
  pending_.Serialize(writer, /*expiry=*/true);
}

bool ChainSample::Restore(SnapshotReader* reader) {
  const uint64_t window_size = reader->TakeU64();
  const uint64_t now = reader->TakeU64();
  const uint64_t version = reader->TakeU64();
  const bool seeded = reader->TakeBool();
  Rng rng = reader->TakeRng();
  const uint32_t chain_count = reader->TakeU32();
  if (!reader->ok() || window_size != window_size_ ||
      chain_count != chains_.size()) {
    return false;
  }
  now_ = now;
  version_ = version;
  seeded_ = seeded;
  rng_ = rng;
  // Reset the row pool wholesale; the stride re-derives from the first
  // restored point (every point must agree, or the payload is rejected).
  row_index_.clear();
  row_coords_.clear();
  row_next_.clear();
  row_free_ = kNilRow;
  dims_ = 0;
  bool dims_known = false;
  for (uint32_t c = 0; c < chain_count; ++c) {
    Chain& chain = chains_[c];
    chain = Chain{};
    chain.next_replacement_index = reader->TakeU64();
    const uint32_t entry_count = reader->TakeU32();
    for (uint32_t e = 0; e < entry_count; ++e) {
      const uint64_t index = reader->TakeU64();
      const Point value = reader->TakePoint();
      if (!reader->ok()) return false;
      if (!dims_known) {
        dims_ = value.size();
        dims_known = true;
      }
      if (value.size() != dims_) return false;
      ChainPushBack(&chain, index, value);
    }
    if (seeded_ && chain.Empty()) return false;
  }
  pending_.Clear();
  if (!pending_.RestoreFrom(reader, chain_count, /*expiry=*/false) ||
      !pending_.RestoreFrom(reader, chain_count, /*expiry=*/true)) {
    return false;
  }
  return reader->ok();
}

size_t ChainSample::MemoryBytes(size_t dimensions,
                                size_t bytes_per_number) const {
  // Each stored entry keeps d coordinates plus one index; each chain keeps
  // one pending replacement index.
  const size_t numbers =
      StoredElements() * (dimensions + 1) + chains_.size();
  return numbers * bytes_per_number;
}

}  // namespace sensord
