#include "stream/chain_sample.h"

#include <algorithm>
#include <cmath>

#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace sensord {
namespace {

// Cached metric handles (see obs/metrics.h): the registry lookup runs once
// per process; per-event cost is one relaxed atomic increment.
struct ChainSampleMetrics {
  obs::Counter* adds;          // stream elements observed
  obs::Counter* restarts;      // chains restarted at a fresh element
  obs::Counter* replacements;  // queued replacement arrivals appended
  obs::Counter* expirations;   // active elements promoted out on expiry
  obs::Histogram* add_ns;      // window-advance latency (timing-gated)
};

const ChainSampleMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const ChainSampleMetrics m{
      registry.GetCounter("stream.chain_sample.adds"),
      registry.GetCounter("stream.chain_sample.restarts"),
      registry.GetCounter("stream.chain_sample.replacements"),
      registry.GetCounter("stream.chain_sample.expirations"),
      registry.GetHistogram("stream.chain_sample.add_ns",
                            obs::LatencyBoundariesNs())};
  return m;
}

using PendingMap = std::unordered_map<uint64_t, std::vector<uint32_t>>;

void SerializePendingMap(SnapshotWriter* writer, const PendingMap& map) {
  std::vector<uint64_t> keys;
  keys.reserve(map.size());
  for (const auto& [key, chains] : map) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  writer->PutU32(static_cast<uint32_t>(keys.size()));
  for (uint64_t key : keys) {
    const std::vector<uint32_t>& chains = map.at(key);
    writer->PutU64(key);
    writer->PutU32(static_cast<uint32_t>(chains.size()));
    for (uint32_t c : chains) writer->PutU32(c);
  }
}

bool RestorePendingMap(SnapshotReader* reader, uint32_t chain_count,
                       PendingMap* map) {
  map->clear();
  const uint32_t buckets = reader->TakeU32();
  for (uint32_t b = 0; b < buckets; ++b) {
    const uint64_t key = reader->TakeU64();
    const uint32_t size = reader->TakeU32();
    if (!reader->ok()) return false;
    std::vector<uint32_t>& chains = (*map)[key];
    chains.reserve(size);
    for (uint32_t e = 0; e < size; ++e) {
      const uint32_t c = reader->TakeU32();
      if (c >= chain_count) return false;
      chains.push_back(c);
    }
  }
  return reader->ok();
}

}  // namespace

ChainSample::ChainSample(size_t sample_size, size_t window_size, Rng rng)
    : window_size_(window_size), chains_(sample_size), rng_(rng) {
  SENSORD_CHECK_GT(sample_size, 0u);
  SENSORD_CHECK_GT(window_size, 0u);
}

void ChainSample::PrewarmToSteadyState() {
  SENSORD_CHECK(!seeded_ && "prewarm must precede the first Add()");
  now_ = window_size_;
}

void ChainSample::DrawReplacement(uint32_t chain_idx, uint64_t index) {
  // The replacement is drawn uniformly from the W indices following `index`;
  // it arrives no later than the active element expires, so a warmed-up
  // chain is never empty.
  const uint64_t r = index + 1 + rng_.UniformUint64(window_size_);
  chains_[chain_idx].next_replacement_index = r;
  pending_replacement_[r].push_back(chain_idx);
}

void ChainSample::RegisterExpiry(uint32_t chain_idx) {
  const Chain& chain = chains_[chain_idx];
  SENSORD_DCHECK(!chain.entries.empty());
  pending_expiry_[chain.entries.front().index + window_size_].push_back(
      chain_idx);
}

void ChainSample::RestartChain(uint32_t chain_idx, uint64_t index,
                               const Point& value) {
  Metrics().restarts->Increment();
  ++version_;
  Chain& chain = chains_[chain_idx];
  chain.entries.clear();  // orphaned map registrations are skipped lazily
  chain.entries.push_back({index, value});
  RegisterExpiry(chain_idx);
  DrawReplacement(chain_idx, index);
}

uint64_t ChainSample::GeometricSkip(double p) {
  // Number of Bernoulli(p) failures before the next success.
  SENSORD_DCHECK_GT(p, 0.0);
  SENSORD_DCHECK_LE(p, 1.0);
  if (p >= 1.0) return 0;
  double u = rng_.UniformDouble();
  if (u <= 0.0) u = 1e-300;  // UniformDouble is in [0,1); guard underflow
  return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

bool ChainSample::Add(const Point& value) {
  const obs::ScopedTimer timer(Metrics().add_ns);
  Metrics().adds->Increment();
  const uint64_t i = now_;  // 0-based arrival index of this element
  ++now_;

  if (!seeded_) {
    // The first element ever observed seeds every chain.
    for (uint32_t c = 0; c < chains_.size(); ++c) RestartChain(c, i, value);
    seeded_ = true;
    return true;
  }

  // 1. Chains whose pending replacement is this element: append it and draw
  //    the next replacement.
  if (const auto it = pending_replacement_.find(i);
      it != pending_replacement_.end()) {
    for (uint32_t c : it->second) {
      Chain& chain = chains_[c];
      if (chain.next_replacement_index != i) continue;  // stale (restarted)
      chain.entries.push_back({i, value});
      Metrics().replacements->Increment();
      DrawReplacement(c, i);
    }
    pending_replacement_.erase(it);
  }

  // 2. Chains whose active element expires now: promote the next entry.
  if (const auto it = pending_expiry_.find(i); it != pending_expiry_.end()) {
    for (uint32_t c : it->second) {
      Chain& chain = chains_[c];
      if (chain.entries.empty() ||
          chain.entries.front().index + window_size_ != i) {
        continue;  // stale (restarted since registration)
      }
      chain.entries.pop_front();
      SENSORD_CHECK(!chain.entries.empty() &&
                    "chain invariant: replacement arrives before expiry");
      Metrics().expirations->Increment();
      ++version_;  // the chain's active element changed
      RegisterExpiry(c);
    }
    pending_expiry_.erase(it);
  }

  // 3. Restart each chain at this element independently with probability
  //    1/min(i+1, W) — how fresh observations enter the sample uniformly.
  //    Geometric skipping touches only the chains that restart.
  const uint64_t denom = std::min<uint64_t>(i + 1, window_size_);
  const double p_select = 1.0 / static_cast<double>(denom);
  bool entered_sample = false;
  uint64_t c = GeometricSkip(p_select);
  while (c < chains_.size()) {
    RestartChain(static_cast<uint32_t>(c), i, value);
    entered_sample = true;
    c += 1 + GeometricSkip(p_select);
  }
  return entered_sample;
}

const Point& ChainSample::ActiveElement(size_t i) const {
  SENSORD_DCHECK_LT(i, chains_.size());
  SENSORD_DCHECK(!chains_[i].entries.empty());
  return chains_[i].entries.front().value;
}

std::vector<Point> ChainSample::Snapshot() const {
  std::vector<Point> out;
  out.reserve(chains_.size());
  for (const Chain& chain : chains_) {
    if (!chain.entries.empty()) out.push_back(chain.entries.front().value);
  }
  return out;
}

size_t ChainSample::StoredElements() const {
  size_t n = 0;
  for (const Chain& chain : chains_) n += chain.entries.size();
  return n;
}

void ChainSample::Serialize(SnapshotWriter* writer) const {
  writer->PutU64(window_size_);
  writer->PutU64(now_);
  writer->PutU64(version_);
  writer->PutBool(seeded_);
  writer->PutRng(rng_);
  writer->PutU32(static_cast<uint32_t>(chains_.size()));
  for (const Chain& chain : chains_) {
    writer->PutU64(chain.next_replacement_index);
    writer->PutU32(static_cast<uint32_t>(chain.entries.size()));
    for (const ChainEntry& entry : chain.entries) {
      writer->PutU64(entry.index);
      writer->PutPoint(entry.value);
    }
  }
  // The pending maps must be written verbatim, not re-derived from the chain
  // state: when several chains wait on the same arrival index, the bucket's
  // vector order decides which chain draws its next replacement first, and
  // that assignment must survive a restore for the continuation to be
  // bit-identical. Keys are emitted sorted so the encoding is deterministic
  // (bucket lookup is by key, so map iteration order itself is behaviour-
  // neutral); stale registrations are kept — a live sampler skips them
  // lazily without touching the rng.
  SerializePendingMap(writer, pending_replacement_);
  SerializePendingMap(writer, pending_expiry_);
}

bool ChainSample::Restore(SnapshotReader* reader) {
  const uint64_t window_size = reader->TakeU64();
  const uint64_t now = reader->TakeU64();
  const uint64_t version = reader->TakeU64();
  const bool seeded = reader->TakeBool();
  Rng rng = reader->TakeRng();
  const uint32_t chain_count = reader->TakeU32();
  if (!reader->ok() || window_size != window_size_ ||
      chain_count != chains_.size()) {
    return false;
  }
  now_ = now;
  version_ = version;
  seeded_ = seeded;
  rng_ = rng;
  pending_replacement_.clear();
  pending_expiry_.clear();
  for (uint32_t c = 0; c < chain_count; ++c) {
    Chain& chain = chains_[c];
    chain.entries.clear();
    chain.next_replacement_index = reader->TakeU64();
    const uint32_t entry_count = reader->TakeU32();
    for (uint32_t e = 0; e < entry_count; ++e) {
      ChainEntry entry;
      entry.index = reader->TakeU64();
      entry.value = reader->TakePoint();
      chain.entries.push_back(std::move(entry));
    }
    if (!reader->ok()) return false;
    if (seeded_ && chain.entries.empty()) return false;
  }
  if (!RestorePendingMap(reader, chain_count, &pending_replacement_) ||
      !RestorePendingMap(reader, chain_count, &pending_expiry_)) {
    return false;
  }
  return reader->ok();
}

size_t ChainSample::MemoryBytes(size_t dimensions,
                                size_t bytes_per_number) const {
  // Each stored entry keeps d coordinates plus one index; each chain keeps
  // one pending replacement index.
  const size_t numbers =
      StoredElements() * (dimensions + 1) + chains_.size();
  return numbers * bytes_per_number;
}

}  // namespace sensord
