// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Chain sampling: a uniform random sample over a count-based sliding window.
//
// This is the "chain-sample" component the paper lists in its prototype
// (Section 10, Implementation), following Babcock, Datar and Motwani,
// "Sampling From a Moving Window Over Streaming Data", SODA 2002. A sample of
// expected size |R| is maintained as |R| independent chains; each chain holds
// one *active* element that is uniformly distributed over the current window,
// plus the already-arrived future replacements that will take over when the
// active element expires. Expected memory per chain is O(1), so the whole
// sample costs O(d|R|) — the bound quoted in the paper's Theorem 1.
//
// Per-arrival cost is O(1 + changes) amortized, not O(|R|): the sampler
// indexes chains by the arrival positions they are waiting for (pending
// replacements and front expiries), and decides the Bernoulli(1/min(i+1,W))
// chain restarts by geometric skipping, so only the chains that actually
// change are touched. This is what lets the Figure 11 experiment simulate
// thousands of sensors.
//
// The Add() return value reports whether the new observation entered the
// sample: this is exactly the "if (S(i) included in R^w)" event of the D3 and
// MGDD pseudo-code (Figure 4), which gates probabilistic propagation of the
// observation to the parent node.

#ifndef SENSORD_STREAM_CHAIN_SAMPLE_H_
#define SENSORD_STREAM_CHAIN_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_points.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {

class SnapshotReader;
class SnapshotWriter;

/// Uniform random sample (with replacement across chains) of the last
/// `window_size` stream elements, maintained in one pass.
class ChainSample {
 public:
  /// Creates a sample of `sample_size` chains over a window of
  /// `window_size` elements.
  /// Pre: sample_size > 0, window_size > 0.
  ChainSample(size_t sample_size, size_t window_size, Rng rng);

  /// Feeds the next stream element. Returns true iff the element became the
  /// active element of at least one chain (i.e. it "entered the sample").
  bool Add(const Point& value);

  /// Number of chains (the |R| of the paper).
  size_t sample_size() const { return chains_.size(); }

  /// Window length |W|.
  size_t window_size() const { return window_size_; }

  /// Total elements observed so far (plus the prewarm offset, if any).
  uint64_t total_seen() const { return now_; }

  /// True once the first element has been observed (the chains hold an
  /// active sample from then on).
  bool seeded() const { return seeded_; }

  /// Jumps the arrival clock to one full window, so that subsequent
  /// insertions happen at the steady-state probability 1/|W| instead of the
  /// elevated early-stream rate. Used by long-horizon message-cost
  /// experiments that measure steady-state traffic without simulating a
  /// full warm-up window first. Call before the first Add().
  void PrewarmToSteadyState();

  /// Monotone counter that increments whenever the *active* sample (the set
  /// returned by Snapshot) changes. Lets consumers cache derived structures
  /// (e.g. a kernel estimator) and rebuild only on change.
  uint64_t version() const { return version_; }

  /// A view of the current active element of chain `i`, valid until the
  /// next non-const call. Only meaningful once at least one element has
  /// been observed. Pre: i < sample_size().
  PointView ActiveElement(size_t i) const;

  /// Copies the current sample (one active element per chain).
  /// Empty before the first Add().
  std::vector<Point> Snapshot() const;

  /// Snapshot() into a caller-provided flat buffer, same chain-index order.
  /// `out` is Reset() to the stream's dimensionality and refilled; a warm
  /// buffer (capacity from a previous snapshot of the same sample) is
  /// refilled with zero heap allocations — the estimator-rebuild fast path
  /// (DESIGN.md §13). Empty (dimensions 0) before the first Add().
  void SnapshotTo(FlatPoints* out) const;

  /// Total stored elements across all chains (active + queued replacements).
  /// Expected O(sample_size); used by the memory-footprint experiment.
  size_t StoredElements() const;

  /// Approximate memory footprint of the stored sample in bytes, under the
  /// paper's Section 10.3 convention of `bytes_per_number` bytes per numeric
  /// value (the paper assumes a 16-bit architecture, i.e. 2).
  size_t MemoryBytes(size_t dimensions, size_t bytes_per_number) const;

  /// Appends the complete sampler state (clock, rng, every chain with its
  /// queued replacements, and the pending-arrival maps with their bucket
  /// orders intact) to `writer`, for checkpoint/restore (core/snapshot.h).
  void Serialize(SnapshotWriter* writer) const;

  /// Overwrites this sampler with state previously written by Serialize().
  /// Returns false (leaving the sampler unspecified but safe to destroy or
  /// re-Restore) if the reader fails or the saved shape does not match this
  /// sampler's sample_size/window_size configuration. No rng draws occur
  /// and the pending buckets keep their recorded order, so a restored
  /// sampler continues the stream bit-for-bit.
  bool Restore(SnapshotReader* reader);

 private:
  static constexpr uint32_t kNilRow = ~uint32_t{0};

  // One chain: a FIFO of rows in the sampler-wide pool below; the head row
  // is the active sample element, later rows are replacements that have
  // already arrived, ordered by index. A chain owns no storage of its own —
  // it is three integers plus the pending-replacement index — so
  // constructing or tearing down a sampler costs O(1) allocations total
  // instead of one heap block per stored Point (the flat-memory layout of
  // DESIGN.md §13 applied to the stream store).
  struct Chain {
    uint32_t head = kNilRow;  // pool row of the active element
    uint32_t tail = kNilRow;  // pool row of the newest replacement
    uint32_t size = 0;
    uint64_t next_replacement_index = 0;  // index that extends the chain

    bool Empty() const { return size == 0; }
  };

  // Sampler-wide row pool: row r stores one element — its arrival position
  // in row_index_[r], its coordinates in
  // row_coords_[r * dims_, (r + 1) * dims_), and its FIFO successor in
  // row_next_ (which also threads the free list). Rows are recycled, so
  // after warm-up the pool performs zero heap allocations per stream
  // element.
  uint32_t AllocRow();
  void FreeRow(uint32_t row) {
    row_next_[row] = row_free_;
    row_free_ = row;
  }
  void ChainPushBack(Chain* chain, uint64_t index, const Point& value);
  void ChainPopFront(Chain* chain);
  uint64_t FrontIndex(const Chain& chain) const {
    return row_index_[chain.head];
  }
  const double* FrontCoords(const Chain& chain) const {
    return row_coords_.data() + static_cast<size_t>(chain.head) * dims_;
  }

  // Arrival index -> chains waiting for that index, for both registration
  // kinds (pending replacements and front expiries) in one structure so each
  // Add() resolves both with a single lookup. A compact chained hash ring:
  // `heads[key & mask]` starts a pool-backed singly linked list of
  // (key, chain, kind) registrations in insertion order; different keys may
  // share a slot. Per-key-and-kind insertion order — which decides which
  // chain draws its next replacement first, exactly like the unordered_map
  // bucket order this replaces — is the list order restricted to that key
  // and kind. Every arrival index is visited by Add() exactly once, which
  // consumes (and recycles) its entries; entries may be stale after a chain
  // restart — consumers re-validate against the chain state. Live + stale
  // entries number O(|R|), so the ring is sized to the sample, not the
  // window: construction and steady-state churn touch a few KB instead of
  // O(|W|) slots.
  struct PendingIndex {
    static constexpr uint32_t kNil = ~uint32_t{0};
    static constexpr uint32_t kExpiryBit = uint32_t{1} << 31;
    struct Entry {
      uint64_t key;
      uint32_t link;  // chain index, with kExpiryBit set for expiry entries
      uint32_t next;  // next entry in the same slot's list, kNil at tail
    };
    std::vector<uint32_t> heads;  // slot -> first entry, kNil when empty
    std::vector<uint32_t> tails;  // slot -> last entry (O(1) tail append)
    std::vector<Entry> pool;
    uint32_t free_head = kNil;  // free list threaded through pool[].next
    uint32_t mask = 0;          // heads.size() - 1 (power of two)

    explicit PendingIndex(size_t min_slots);
    void Register(uint64_t key, uint32_t chain_idx, bool expiry);
    // Moves every entry matching `key` into `replacements` / `expiries` by
    // kind (each in insertion order), unlinking and recycling them. Both
    // outputs are cleared first.
    void ConsumeBoth(uint64_t key, std::vector<uint32_t>* replacements,
                     std::vector<uint32_t>* expiries);
    void Clear();
    // One kind's buckets in the historical unordered_map wire format: bucket
    // count, then (key, chain list) per bucket with keys sorted ascending
    // and per-key insertion order verbatim.
    void Serialize(SnapshotWriter* writer, bool expiry) const;
    bool RestoreFrom(SnapshotReader* reader, uint32_t chain_count,
                     bool expiry);
  };

  // Restarts chain `c` at the element (index, value): the new element
  // becomes the active sample member, queued replacements are discarded,
  // and the chain's expiry and replacement are re-registered.
  void RestartChain(uint32_t chain_idx, uint64_t index, const Point& value);

  // Draws and registers the pending replacement index of chain `chain_idx`
  // following the element at `index`.
  void DrawReplacement(uint32_t chain_idx, uint64_t index);

  // Registers chain `chain_idx`'s current front for expiry.
  void RegisterExpiry(uint32_t chain_idx);

  // Expected O(1) skip count of a run of Bernoulli(p) failures.
  uint64_t GeometricSkip(double p);

  size_t window_size_;
  std::vector<Chain> chains_;
  size_t dims_ = 0;  // coordinate stride; fixed by the first Add()/Restore()
  std::vector<uint64_t> row_index_;  // pool: arrival position per row
  std::vector<double> row_coords_;   // pool: row-major coordinates
  std::vector<uint32_t> row_next_;   // pool: FIFO successor / free-list link
  uint32_t row_free_ = kNilRow;      // head of the recycled-row free list
  Rng rng_;
  uint64_t now_ = 0;      // number of elements observed
  uint64_t version_ = 0;  // bumped when the active sample changes
  bool seeded_ = false;

  PendingIndex pending_;
  std::vector<uint32_t> scratch_replacements_;  // reused ConsumeBoth() output
  std::vector<uint32_t> scratch_expiries_;      // reused ConsumeBoth() output
};

}  // namespace sensord

#endif  // SENSORD_STREAM_CHAIN_SAMPLE_H_
