#include "stream/variance_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/snapshot.h"
#include "util/check.h"

#include "util/math_utils.h"

namespace sensord {

VarianceSketch::VarianceSketch(size_t window_size, double epsilon)
    : window_size_(window_size), epsilon_(epsilon) {
  SENSORD_CHECK_GT(window_size_, 0u);
  SENSORD_CHECK_GT(epsilon_, 0.0);
  SENSORD_CHECK_LE(epsilon_, 1.0);
  k_ = 9.0 / (epsilon_ * epsilon_);
  // One bucket "level" per doubling of the window plus the slack factor of
  // buckets the invariant tolerates per level.
  const size_t levels = static_cast<size_t>(Log2Ceil(window_size_)) + 2;
  max_buckets_ = static_cast<size_t>(std::ceil(k_ + 1.0)) * levels;
}

VarianceSketch::Bucket VarianceSketch::Combine(const Bucket& a,
                                               const Bucket& b) {
  Bucket out;
  out.first = std::min(a.first, b.first);
  out.last = std::max(a.last, b.last);
  out.n = a.n + b.n;
  out.mean = (a.n * a.mean + b.n * b.mean) / out.n;
  const double delta = a.mean - b.mean;
  out.var = a.var + b.var + (a.n * b.n / out.n) * delta * delta;
  return out;
}

VarianceSketch::Bucket VarianceSketch::PrefixCombined(size_t j) const {
  Bucket acc{0, 0, 0.0, 0.0, 0.0};
  bool any = false;
  const size_t last = buckets_.size() - 1;
  for (size_t i = 0; i < j; ++i) {
    const Bucket& b = buckets_[last - i];  // newest first
    acc = any ? Combine(acc, b) : b;
    any = true;
  }
  return acc;
}

void VarianceSketch::Add(double x) {
  const uint64_t t = now_;
  ++now_;

  buckets_.push_back(Bucket{t, t, 1.0, x, 0.0});

  // Expire buckets whose newest element left the window (t - W, t].
  while (head_ < buckets_.size() &&
         buckets_[head_].last + window_size_ <= t) {
    ++head_;
  }
  // Reclaim the dead prefix once it is long enough that the memmove of the
  // live buckets (at most max_buckets_) amortizes to O(1) per expiry.
  if (head_ >= 1024) {
    buckets_.erase(buckets_.begin(),
                   buckets_.begin() + static_cast<ptrdiff_t>(head_));
    head_ = 0;
  }

  // The merge scan costs O(buckets); running it every kCompactInterval
  // insertions amortizes that to O(buckets / interval) per element. Between
  // scans at most kCompactInterval extra singleton buckets exist, which
  // only *improves* estimates; the hard cap below still bounds memory
  // deterministically.
  if (++since_compact_ >= kCompactInterval || NumBuckets() >= max_buckets_) {
    since_compact_ = 0;
    Compact();
  }
}

void VarianceSketch::Compact() {
  // Merge rule: collapse the adjacent pair (j, j+1) — j newer — whenever the
  // merged bucket's internal variance stays within a 1/k fraction of the
  // combined variance of everything more recent than the pair. One pass,
  // newest to oldest, with the prefix maintained incrementally. After a
  // merge the scan stays on the merged bucket with the prefix unchanged;
  // that visits the same pairs, in the same order, with the same prefixes,
  // as restarting the whole scan would (re-scanned earlier pairs are
  // unchanged and were already rejected; the pair just above the merge
  // point only got a larger merged variance, so it stays rejected).
  if (NumBuckets() >= 3) {
    Bucket prefix = Newest();
    size_t p = buckets_.size() - 2;  // physical index of the pair's newer half
    while (p > head_) {
      const Bucket merged = Combine(buckets_[p], buckets_[p - 1]);
      if (k_ * merged.var <= prefix.var) {
        buckets_[p - 1] = merged;
        buckets_.erase(buckets_.begin() + static_cast<ptrdiff_t>(p));
        --p;  // continue at the merged bucket; prefix is unchanged
      } else {
        prefix = Combine(prefix, buckets_[p]);
        --p;
      }
    }
  }

  // Hard cap: if the invariant alone left too many buckets (possible only
  // transiently), merge at the old end where the error budget lives.
  while (NumBuckets() > max_buckets_) {
    buckets_[head_ + 1] = Combine(buckets_[head_ + 1], buckets_[head_]);
    ++head_;
  }
}

double VarianceSketch::Variance() const {
  if (NumBuckets() == 0) return 0.0;
  if (NumBuckets() == 1) {
    const Bucket& b = Oldest();
    const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
    if (b.first >= window_start) {
      return b.n > 0 ? b.var / b.n : 0.0;
    }
    // Single, partially expired bucket: assume half survives with the same
    // internal spread.
    return b.n > 0 ? (b.var / 2.0) / std::max(1.0, b.n / 2.0) : 0.0;
  }

  const Bucket suffix = PrefixCombined(NumBuckets() - 1);
  const Bucket& oldest = Oldest();
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;

  Bucket total;
  if (oldest.first >= window_start) {
    // Oldest bucket is fully inside the window: the combination is exact.
    total = Combine(suffix, oldest);
  } else {
    // Partially expired oldest bucket (the BDMO estimate): assume half of
    // its elements survive, carrying half its internal variance and its
    // mean. The maintenance invariant bounds the error of this guess.
    Bucket half = oldest;
    half.n = std::max(1.0, oldest.n / 2.0);
    half.var = oldest.var / 2.0;
    total = Combine(suffix, half);
  }
  return total.n > 0 ? total.var / total.n : 0.0;
}

double VarianceSketch::StdDev() const { return std::sqrt(Variance()); }

double VarianceSketch::Mean() const {
  if (NumBuckets() == 0) return 0.0;
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
  if (NumBuckets() == 1) return Oldest().mean;
  const Bucket suffix = PrefixCombined(NumBuckets() - 1);
  Bucket oldest = Oldest();
  if (oldest.first < window_start) {
    oldest.n = std::max(1.0, oldest.n / 2.0);
    oldest.var /= 2.0;
  }
  return Combine(suffix, oldest).mean;
}

double VarianceSketch::Count() const {
  if (NumBuckets() == 0) return 0.0;
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
  double n = 0.0;
  const size_t last = buckets_.size() - 1;
  for (size_t i = 0; i + 1 < NumBuckets(); ++i) n += buckets_[last - i].n;
  const Bucket& oldest = Oldest();
  n += oldest.first >= window_start ? oldest.n : std::max(1.0, oldest.n / 2.0);
  return n;
}

void VarianceSketch::Serialize(SnapshotWriter* writer) const {
  writer->PutU64(window_size_);
  writer->PutDouble(epsilon_);
  writer->PutU64(now_);
  writer->PutU64(since_compact_);
  writer->PutU32(static_cast<uint32_t>(NumBuckets()));
  for (size_t i = buckets_.size(); i > head_; --i) {  // newest first
    const Bucket& b = buckets_[i - 1];
    writer->PutU64(b.first);
    writer->PutU64(b.last);
    writer->PutDouble(b.n);
    writer->PutDouble(b.mean);
    writer->PutDouble(b.var);
  }
}

bool VarianceSketch::Restore(SnapshotReader* reader) {
  const uint64_t window_size = reader->TakeU64();
  const double epsilon = reader->TakeDouble();
  const uint64_t now = reader->TakeU64();
  const uint64_t since_compact = reader->TakeU64();
  const uint32_t bucket_count = reader->TakeU32();
  if (!reader->ok() || window_size != window_size_ || epsilon != epsilon_) {
    return false;
  }
  now_ = now;
  since_compact_ = since_compact;
  buckets_.clear();
  head_ = 0;
  buckets_.resize(bucket_count);
  for (uint32_t i = 0; i < bucket_count; ++i) {
    // The wire order is newest first; storage is oldest first.
    Bucket& b = buckets_[bucket_count - 1 - i];
    b.first = reader->TakeU64();
    b.last = reader->TakeU64();
    b.n = reader->TakeDouble();
    b.mean = reader->TakeDouble();
    b.var = reader->TakeDouble();
  }
  return reader->ok();
}

size_t VarianceSketch::MemoryBytes(size_t bytes_per_number) const {
  return NumBuckets() * 5 * bytes_per_number;
}

size_t VarianceSketch::TheoreticalBoundBytes(size_t bytes_per_number) const {
  return max_buckets_ * 5 * bytes_per_number;
}

}  // namespace sensord
