#include "stream/variance_sketch.h"

#include <algorithm>
#include <cmath>

#include "core/snapshot.h"
#include "util/check.h"

#include "util/math_utils.h"

namespace sensord {

VarianceSketch::VarianceSketch(size_t window_size, double epsilon)
    : window_size_(window_size), epsilon_(epsilon) {
  SENSORD_CHECK_GT(window_size_, 0u);
  SENSORD_CHECK_GT(epsilon_, 0.0);
  SENSORD_CHECK_LE(epsilon_, 1.0);
  k_ = 9.0 / (epsilon_ * epsilon_);
  // One bucket "level" per doubling of the window plus the slack factor of
  // buckets the invariant tolerates per level.
  const size_t levels = static_cast<size_t>(Log2Ceil(window_size_)) + 2;
  max_buckets_ = static_cast<size_t>(std::ceil(k_ + 1.0)) * levels;
}

VarianceSketch::Bucket VarianceSketch::Combine(const Bucket& a,
                                               const Bucket& b) {
  Bucket out;
  out.first = std::min(a.first, b.first);
  out.last = std::max(a.last, b.last);
  out.n = a.n + b.n;
  out.mean = (a.n * a.mean + b.n * b.mean) / out.n;
  const double delta = a.mean - b.mean;
  out.var = a.var + b.var + (a.n * b.n / out.n) * delta * delta;
  return out;
}

VarianceSketch::Bucket VarianceSketch::PrefixCombined(size_t j) const {
  Bucket acc{0, 0, 0.0, 0.0, 0.0};
  bool any = false;
  for (size_t i = 0; i < j; ++i) {
    acc = any ? Combine(acc, buckets_[i]) : buckets_[i];
    any = true;
  }
  return acc;
}

void VarianceSketch::Add(double x) {
  const uint64_t t = now_;
  ++now_;

  buckets_.push_front(Bucket{t, t, 1.0, x, 0.0});

  // Expire buckets whose newest element left the window (t - W, t].
  while (!buckets_.empty() && buckets_.back().last + window_size_ <= t) {
    buckets_.pop_back();
  }

  // The merge scan costs O(buckets); running it every kCompactInterval
  // insertions amortizes that to O(buckets / interval) per element. Between
  // scans at most kCompactInterval extra singleton buckets exist, which
  // only *improves* estimates; the hard cap below still bounds memory
  // deterministically.
  if (++since_compact_ >= kCompactInterval ||
      buckets_.size() >= max_buckets_) {
    since_compact_ = 0;
    Compact();
  }
}

void VarianceSketch::Compact() {
  // Merge rule: collapse the adjacent pair (j, j+1) — j newer — whenever the
  // merged bucket's internal variance stays within a 1/k fraction of the
  // combined variance of everything more recent than the pair. Scanning from
  // the old end first compacts stale history aggressively.
  bool changed = true;
  while (changed) {
    changed = false;
    if (buckets_.size() < 3) break;
    // Maintain the running prefix (newest-side) combination incrementally.
    Bucket prefix = buckets_[0];
    std::deque<Bucket>::size_type j = 1;
    for (; j + 1 < buckets_.size(); ++j) {
      const Bucket merged = Combine(buckets_[j], buckets_[j + 1]);
      if (k_ * merged.var <= prefix.var) {
        buckets_[j] = merged;
        buckets_.erase(buckets_.begin() +
                       static_cast<std::deque<Bucket>::difference_type>(j + 1));
        changed = true;
        break;
      }
      prefix = Combine(prefix, buckets_[j]);
    }
  }

  // Hard cap: if the invariant alone left too many buckets (possible only
  // transiently), merge at the old end where the error budget lives.
  while (buckets_.size() > max_buckets_) {
    const size_t m = buckets_.size();
    buckets_[m - 2] = Combine(buckets_[m - 2], buckets_[m - 1]);
    buckets_.pop_back();
  }
}

double VarianceSketch::Variance() const {
  if (buckets_.empty()) return 0.0;
  if (buckets_.size() == 1) {
    const Bucket& b = buckets_[0];
    const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
    if (b.first >= window_start) {
      return b.n > 0 ? b.var / b.n : 0.0;
    }
    // Single, partially expired bucket: assume half survives with the same
    // internal spread.
    return b.n > 0 ? (b.var / 2.0) / std::max(1.0, b.n / 2.0) : 0.0;
  }

  const Bucket suffix = PrefixCombined(buckets_.size() - 1);
  const Bucket& oldest = buckets_.back();
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;

  Bucket total;
  if (oldest.first >= window_start) {
    // Oldest bucket is fully inside the window: the combination is exact.
    total = Combine(suffix, oldest);
  } else {
    // Partially expired oldest bucket (the BDMO estimate): assume half of
    // its elements survive, carrying half its internal variance and its
    // mean. The maintenance invariant bounds the error of this guess.
    Bucket half = oldest;
    half.n = std::max(1.0, oldest.n / 2.0);
    half.var = oldest.var / 2.0;
    total = Combine(suffix, half);
  }
  return total.n > 0 ? total.var / total.n : 0.0;
}

double VarianceSketch::StdDev() const { return std::sqrt(Variance()); }

double VarianceSketch::Mean() const {
  if (buckets_.empty()) return 0.0;
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
  if (buckets_.size() == 1) return buckets_[0].mean;
  const Bucket suffix = PrefixCombined(buckets_.size() - 1);
  Bucket oldest = buckets_.back();
  if (oldest.first < window_start) {
    oldest.n = std::max(1.0, oldest.n / 2.0);
    oldest.var /= 2.0;
  }
  return Combine(suffix, oldest).mean;
}

double VarianceSketch::Count() const {
  if (buckets_.empty()) return 0.0;
  const uint64_t window_start = now_ >= window_size_ ? now_ - window_size_ : 0;
  double n = 0.0;
  for (size_t i = 0; i + 1 < buckets_.size(); ++i) n += buckets_[i].n;
  const Bucket& oldest = buckets_.back();
  n += oldest.first >= window_start ? oldest.n : std::max(1.0, oldest.n / 2.0);
  return n;
}

void VarianceSketch::Serialize(SnapshotWriter* writer) const {
  writer->PutU64(window_size_);
  writer->PutDouble(epsilon_);
  writer->PutU64(now_);
  writer->PutU64(since_compact_);
  writer->PutU32(static_cast<uint32_t>(buckets_.size()));
  for (const Bucket& b : buckets_) {
    writer->PutU64(b.first);
    writer->PutU64(b.last);
    writer->PutDouble(b.n);
    writer->PutDouble(b.mean);
    writer->PutDouble(b.var);
  }
}

bool VarianceSketch::Restore(SnapshotReader* reader) {
  const uint64_t window_size = reader->TakeU64();
  const double epsilon = reader->TakeDouble();
  const uint64_t now = reader->TakeU64();
  const uint64_t since_compact = reader->TakeU64();
  const uint32_t bucket_count = reader->TakeU32();
  if (!reader->ok() || window_size != window_size_ || epsilon != epsilon_) {
    return false;
  }
  now_ = now;
  since_compact_ = since_compact;
  buckets_.clear();
  for (uint32_t i = 0; i < bucket_count; ++i) {
    Bucket b;
    b.first = reader->TakeU64();
    b.last = reader->TakeU64();
    b.n = reader->TakeDouble();
    b.mean = reader->TakeDouble();
    b.var = reader->TakeDouble();
    buckets_.push_back(b);
  }
  return reader->ok();
}

size_t VarianceSketch::MemoryBytes(size_t bytes_per_number) const {
  return buckets_.size() * 5 * bytes_per_number;
}

size_t VarianceSketch::TheoreticalBoundBytes(size_t bytes_per_number) const {
  return max_buckets_ * 5 * bytes_per_number;
}

}  // namespace sensord
