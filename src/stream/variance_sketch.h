// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// epsilon-approximate variance over a count-based sliding window.
//
// This is the "variance estimator" of the paper's prototype (Section 10,
// Implementation), following Babcock, Datar, Motwani and O'Callaghan,
// "Maintaining Variance and k-Medians over Data Stream Windows", PODS 2003.
// The stream is summarized by a short list of buckets, each holding the
// count, mean and internal variance of a contiguous run of elements. Bucket
// maintenance keeps every non-newest bucket's internal variance at most an
// eps^2/9 fraction of the combined variance of all more recent elements, so
// the only uncertain term at query time — the partially expired oldest
// bucket — contributes at most an eps relative error.
//
// Memory is O((1/eps^2) log |W|) buckets — the second term of the paper's
// Theorem 1 memory bound O(d(|R| + (1/eps^2) log |W|)). The class also
// exposes its exact footprint and the theoretical bound so the Section 10.3
// memory experiment can compare the two (the paper reports the actual
// footprint 55-65% below the bound).

#ifndef SENSORD_STREAM_VARIANCE_SKETCH_H_
#define SENSORD_STREAM_VARIANCE_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sensord {

class SnapshotReader;
class SnapshotWriter;

/// Streaming sketch answering windowed variance / standard deviation /
/// mean queries with bounded relative error, in one pass and sublinear
/// memory. Values are arbitrary doubles; sensord feeds it one coordinate of
/// the (normalized) observation stream per instance.
class VarianceSketch {
 public:
  /// Sketches the last `window_size` values with variance relative error at
  /// most `epsilon`.
  /// Pre: window_size > 0, 0 < epsilon <= 1.
  VarianceSketch(size_t window_size, double epsilon);

  /// Feeds the next stream value.
  void Add(double x);

  /// Estimated variance of the current window (population variance, i.e.
  /// the mean squared deviation). Returns 0 before the first element.
  double Variance() const;

  /// Estimated standard deviation: sqrt(Variance()).
  double StdDev() const;

  /// Estimated mean of the current window.
  double Mean() const;

  /// Estimated number of elements in the window (exact once warmed up
  /// except for the partially expired oldest bucket).
  double Count() const;

  /// Total values observed so far.
  uint64_t total_seen() const { return now_; }

  size_t window_size() const { return window_size_; }
  double epsilon() const { return epsilon_; }

  /// Current number of buckets.
  size_t NumBuckets() const { return buckets_.size() - head_; }

  /// Worst-case bucket count implied by the maintenance invariant (the
  /// O((9/eps^2) log |W|) bound). NumBuckets() never exceeds this: the
  /// sketch force-merges its oldest buckets if the invariant alone has not
  /// compacted enough, which only spends error budget the analysis already
  /// accounts for.
  size_t TheoreticalBoundBuckets() const { return max_buckets_; }

  /// Footprint of the stored buckets, counting 5 numbers per bucket
  /// (first/last timestamps, count, mean, variance) at `bytes_per_number`
  /// bytes each (paper convention: 2, a 16-bit architecture).
  size_t MemoryBytes(size_t bytes_per_number) const;

  /// The footprint corresponding to TheoreticalBoundBuckets().
  size_t TheoreticalBoundBytes(size_t bytes_per_number) const;

  /// Appends the complete sketch state (clock, compaction phase, buckets
  /// newest-first) to `writer`, for checkpoint/restore (core/snapshot.h).
  void Serialize(SnapshotWriter* writer) const;

  /// Overwrites this sketch with state previously written by Serialize().
  /// Returns false if the reader fails or the saved window_size/epsilon do
  /// not match this sketch's configuration.
  bool Restore(SnapshotReader* reader);

 private:
  struct Bucket {
    uint64_t first;  // arrival index of the oldest element in the bucket
    uint64_t last;   // arrival index of the newest element in the bucket
    double n;        // element count
    double mean;     // mean of the bucket's elements
    double var;      // sum of squared deviations from `mean` (the paper's V)
  };

  // Statistics of B_i union B_j (the paper's combination rule).
  static Bucket Combine(const Bucket& a, const Bucket& b);

  // Applies the merge rule until the invariant holds, then enforces the hard
  // bucket cap.
  void Compact();

  // Combined statistics of the `j` newest buckets (acc order newest first,
  // matching the merge-rule prefix the compaction invariant refers to).
  Bucket PrefixCombined(size_t j) const;

  // Oldest live bucket / newest live bucket.
  const Bucket& Oldest() const { return buckets_[head_]; }
  const Bucket& Newest() const { return buckets_.back(); }

  // Insertions between merge scans (amortizes maintenance cost; see Add).
  static constexpr uint64_t kCompactInterval = 8;

  size_t window_size_;
  double epsilon_;
  double k_;  // 9 / epsilon^2, the merge-rule slack factor
  size_t max_buckets_;
  // Live buckets are buckets_[head_ .. buckets_.size()), ordered OLDEST
  // first: expiring the oldest bucket is head_ += 1 and appending the newest
  // is push_back, both O(1); the dead prefix is reclaimed periodically.
  std::vector<Bucket> buckets_;
  size_t head_ = 0;
  uint64_t now_ = 0;  // arrival index of the next element
  uint64_t since_compact_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_STREAM_VARIANCE_SKETCH_H_
