#include "stream/sliding_window.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace sensord {
namespace {

struct SlidingWindowMetrics {
  obs::Counter* adds;
  obs::Counter* evictions;
};

const SlidingWindowMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const SlidingWindowMetrics m{
      registry.GetCounter("stream.sliding_window.adds"),
      registry.GetCounter("stream.sliding_window.evictions")};
  return m;
}

}  // namespace

SlidingWindow::SlidingWindow(size_t capacity, size_t dimensions)
    : capacity_(capacity), dimensions_(dimensions) {
  SENSORD_CHECK_GT(capacity_, 0u);
  SENSORD_CHECK_GT(dimensions_, 0u);
  ring_.resize(capacity_);
}

Status SlidingWindow::Add(const Point& p) {
  if (p.size() != dimensions_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  Metrics().adds->Increment();
  const size_t slot = (head_ + size_) % capacity_;
  if (size_ == capacity_) {
    Metrics().evictions->Increment();
    ring_[head_] = p;
    head_ = (head_ + 1) % capacity_;
  } else {
    ring_[slot] = p;
    ++size_;
  }
  ++total_seen_;
  return Status::Ok();
}

const Point& SlidingWindow::At(size_t i) const {
  SENSORD_DCHECK_LT(i, size_);
  return ring_[(head_ + i) % capacity_];
}

uint64_t SlidingWindow::ArrivalTime(size_t i) const {
  SENSORD_DCHECK_LT(i, size_);
  return total_seen_ - size_ + i;
}

std::vector<Point> SlidingWindow::Snapshot() const {
  std::vector<Point> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
  return out;
}

std::vector<double> SlidingWindow::Coordinate(size_t dim) const {
  SENSORD_DCHECK_LT(dim, dimensions_);
  std::vector<double> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i)[dim]);
  return out;
}

void SlidingWindow::Clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace sensord
