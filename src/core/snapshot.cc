#include "core/snapshot.h"

#include <string>

namespace sensord {
namespace {

// Frame layout (all little-endian):
//   [0..3]   magic 'S' 'N' 'S' 'D'
//   [4..7]   format version (kFormatVersion)
//   [8..11]  payload version (component-defined)
//   [12..15] payload length in bytes
//   [16..]   payload
//   [tail]   FNV-1a(64) over bytes [0 .. 16+length)
constexpr uint8_t kMagic[4] = {'S', 'N', 'S', 'D'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderSize = 16;
constexpr size_t kChecksumSize = 8;

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

void WriteU32At(std::vector<uint8_t>* bytes, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*bytes)[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

}  // namespace

uint64_t SnapshotChecksum(const uint8_t* bytes, size_t size) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::vector<uint8_t> SnapshotWriter::Finish(uint32_t payload_version) && {
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderSize + bytes_.size() + kChecksumSize);
  frame.assign(kMagic, kMagic + 4);
  frame.resize(kHeaderSize, 0);
  WriteU32At(&frame, 4, kFormatVersion);
  WriteU32At(&frame, 8, payload_version);
  WriteU32At(&frame, 12, static_cast<uint32_t>(bytes_.size()));
  frame.insert(frame.end(), bytes_.begin(), bytes_.end());
  const uint64_t checksum = SnapshotChecksum(frame.data(), frame.size());
  for (int i = 0; i < 8; ++i) {
    frame.push_back(static_cast<uint8_t>(checksum >> (8 * i)));
  }
  return frame;
}

StatusOr<SnapshotReader> SnapshotReader::Open(
    const std::vector<uint8_t>& snapshot, uint32_t expected_payload_version) {
  if (snapshot.size() < kHeaderSize + kChecksumSize) {
    return Status::InvalidArgument("snapshot truncated: " +
                                   std::to_string(snapshot.size()) + " bytes");
  }
  const uint8_t* p = snapshot.data();
  if (std::memcmp(p, kMagic, 4) != 0) {
    return Status::InvalidArgument("snapshot magic mismatch");
  }
  const uint32_t format = ReadU32(p + 4);
  if (format != kFormatVersion) {
    return Status::InvalidArgument("snapshot format version " +
                                   std::to_string(format) + ", expected " +
                                   std::to_string(kFormatVersion));
  }
  const uint32_t payload_version = ReadU32(p + 8);
  if (payload_version != expected_payload_version) {
    return Status::InvalidArgument(
        "snapshot payload version " + std::to_string(payload_version) +
        ", expected " + std::to_string(expected_payload_version));
  }
  const uint32_t length = ReadU32(p + 12);
  if (snapshot.size() != kHeaderSize + length + kChecksumSize) {
    return Status::InvalidArgument(
        "snapshot length field " + std::to_string(length) +
        " inconsistent with frame size " + std::to_string(snapshot.size()));
  }
  const uint64_t expected = ReadU64(p + kHeaderSize + length);
  const uint64_t actual = SnapshotChecksum(p, kHeaderSize + length);
  if (expected != actual) {
    return Status::InvalidArgument("snapshot checksum mismatch");
  }
  return SnapshotReader(p, kHeaderSize, kHeaderSize + length);
}

}  // namespace sensord
