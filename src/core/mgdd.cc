#include "core/mgdd.h"

#include <cmath>
#include <memory>
#include <utility>

#include "core/detection_telemetry.h"
#include "core/snapshot.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "stats/divergence.h"

#include "util/check.h"
#include "util/staging.h"

namespace sensord {
namespace {

// Global updates are fanned out to every child; share one immutable payload
// across all copies of the message.
using SharedUpdate = std::shared_ptr<const GlobalModelUpdatePayload>;

struct MgddMetrics {
  obs::Counter* mdef_evaluations;     // leaf MDEF tests vs the global model
  obs::Counter* leaf_flags;           // MDEF outliers raised
  obs::Counter* leaf_propagations;    // f-gated sample values sent upward
  obs::Counter* internal_propagations;
  obs::Counter* updates_originated;   // root model pushes
  obs::Counter* updates_suppressed;   // kOnModelChange pushes skipped (JS)
  obs::Counter* updates_applied;      // replica updates applied at leaves
  obs::Histogram* update_slots;       // slot-diff size per originated push
};

const MgddMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const MgddMetrics m{
      registry.GetCounter("core.mgdd.leaf.mdef_evaluations"),
      registry.GetCounter("core.mgdd.leaf.flags"),
      registry.GetCounter("core.mgdd.leaf.propagations"),
      registry.GetCounter("core.mgdd.internal.propagations"),
      registry.GetCounter("core.mgdd.root.updates_originated"),
      registry.GetCounter("core.mgdd.root.updates_suppressed"),
      registry.GetCounter("core.mgdd.leaf.updates_applied"),
      registry.GetHistogram("core.mgdd.root.update_slots",
                            obs::SizeBoundaries())};
  return m;
}

// Shared with d3.cc by name: degraded-state entries of any detector.
obs::Counter* DegradedWindowsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("core.degraded_windows");
  return counter;
}

// Rejoin-protocol telemetry, shared with d3.cc by name.
struct RejoinMetrics {
  obs::Counter* announces;
  obs::Counter* resyncs;
  obs::Histogram* ttr_s;
};

const RejoinMetrics& Rejoin() {
  auto& registry = obs::MetricsRegistry::Global();
  static const RejoinMetrics m{
      registry.GetCounter("recovery.rejoin_announces"),
      registry.GetCounter("recovery.rejoin_resyncs"),
      registry.GetHistogram("recovery.time_to_recover_s",
                            obs::DurationBoundariesS())};
  return m;
}

// Snapshot payload versions (core/snapshot.h frame field) of the MGDD node
// checkpoints. Bump on layout change.
constexpr uint32_t kMgddLeafSnapshotVersion = 3;
constexpr uint32_t kMgddInternalSnapshotVersion = 4;

}  // namespace

MgddLeafNode::MgddLeafNode(const MgddOptions& options, Rng rng,
                           OutlierObserver* observer)
    : options_(options),
      boot_rng_(rng),
      local_model_(options.model, rng.Split()),
      rng_(rng),
      validator_(options.ingest),
      stuck_(options.ingest.stuck_run_threshold),
      observer_(observer) {
  // Register the counter up front so core.degraded_windows shows up (as 0)
  // in metric dumps of healthy runs too.
  (void)DegradedWindowsCounter();
}

void MgddLeafNode::OnReading(const Point& value) {
  // Ingest validation firewall, as in D3: drop poisoned readings before
  // the local model — and the upward sample stream — can absorb them.
  if (validator_.Check(value) != IngestVerdict::kAccept) return;
  const bool was_quarantined = stuck_.quarantined();
  if (stuck_.ShouldQuarantine(value)) {
    if (!was_quarantined) {
      // Quarantine onset: record the transition and dump the black box so
      // the readings that led into the stuck run survive for analysis.
      obs::FlightRecorder::Record(id(), obs::FlightEventKind::kQuarantine,
                                  sim()->Now(), 0, 0,
                                  value.empty() ? 0.0 : value[0]);
      obs::FlightRecorder::Dump(id(), "quarantine", sim()->Now());
    }
    return;
  }

  // Figure 4, MGDD LeafProcess: update the local model, test the value
  // against the *global* estimator, propagate sample insertions upward.
  const bool inserted = local_model_.Observe(value);
  if (recovering_) MaybeFinishRecovery();

  if (HasGlobalModel() &&
      local_model_.total_seen() >= options_.min_observations) {
    // Detection keeps running on a stale replica — degraded, not dead.
    if (degraded() && !degraded_state_) {
      DegradedWindowsCounter()->Increment();
      degraded_state_ = true;
    }
    Metrics().mdef_evaluations->Increment();
    const MdefResult result =
        ComputeMdef(GlobalEstimator(), value, options_.mdef);
    if (result.is_outlier) {
      Metrics().leaf_flags->Increment();
      const SimTime now = sim()->Now();
      const uint64_t seq = local_model_.total_seen();
      // MGDD decides at the leaf, so the reading's causal chain is one span
      // deep; the global-model staleness and replica version in the
      // provenance tie it to the update chain that armed the detector.
      const uint64_t trace =
          obs::DeriveReadingTraceId(id(), seq, obs::kTraceDetectorMgdd);
      const uint64_t span = obs::DeriveSpanId(trace, id(), /*salt=*/level());
      obs::EmitCausalSpan("mgdd.leaf.flag", id(), now, trace, span,
                          /*parent_span=*/0);
      DetectionLatencyHist(level())->Record(0.0);
      const double threshold = options_.mdef.k_sigma * result.sigma_mdef;
      const double staleness = now - last_update_time_;
      obs::DecisionRecord decision;
      decision.detector = "mgdd";
      decision.node = id();
      decision.level = level();
      decision.virtual_time = now;
      decision.trace_id = trace;
      decision.span_id = span;
      decision.estimate = result.mdef;
      decision.threshold = threshold;
      decision.model_version = replica_version_;
      decision.staleness_s = staleness;
      decision.degraded = degraded_state_;
      obs::EmitDecisionRecord(decision);
      if (observer_ != nullptr) {
        OutlierEvent event{DetectorKind::kMgdd, id(),
                           level(),             value,
                           now,                 id(),
                           seq};
        event.degraded = degraded_state_;
        event.provenance = OutlierProvenance{
            result.mdef, threshold, replica_version_, staleness, trace};
        // Observer callbacks append to user-owned history in detection
        // order; staged under the parallel engine (util/staging.h).
        RunOrStage(
            [obs = observer_, event]() { obs->OnOutlierDetected(event); });
      }
    }
  }

  if (inserted && parent() != kNoNode &&
      rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().leaf_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = MakeSampleValue(value);
    sim()->Send(std::move(msg));
  }
}

void MgddLeafNode::HandleMessage(const Message& msg) {
  if (msg.kind != kMsgGlobalModelUpdate) return;
  const auto& update = std::any_cast<const SharedUpdate&>(msg.payload);
  if (msg.trace_id != 0) {
    // Terminal hop of the update chain rooted at mgdd.originate_update.
    obs::EmitCausalSpan(
        "mgdd.apply_update", id(), sim()->Now(), msg.trace_id,
        obs::DeriveSpanId(msg.trace_id, id(), /*salt=*/level()),
        msg.trace_parent_span);
  }
  if (global_sample_.empty()) {
    global_sample_.resize(options_.model.sample_size);
    slot_valid_.assign(options_.model.sample_size, false);
  }
  for (const GlobalSlotUpdate& u : update->updates) {
    if (u.slot >= global_sample_.size()) continue;  // malformed; ignore
    global_sample_[u.slot] = u.value;
    slot_valid_[u.slot] = true;
  }
  global_stddevs_ = update->stddevs;
  ++updates_received_;
  ++replica_version_;
  last_update_time_ = sim()->Now();
  degraded_state_ = false;  // a fresh replica heals the degradation
  Metrics().updates_applied->Increment();
  if (recovering_) MaybeFinishRecovery();
}

std::vector<uint8_t> MgddLeafNode::SaveState() const {
  SnapshotWriter writer;
  local_model_.Serialize(&writer);
  writer.PutRng(rng_);
  // Global-model replica. Slot points are written even when invalid (they
  // are then empty), so slot count alone fixes the layout.
  writer.PutU32(static_cast<uint32_t>(global_sample_.size()));
  for (size_t i = 0; i < global_sample_.size(); ++i) {
    writer.PutBool(slot_valid_[i]);
    writer.PutPoint(global_sample_[i]);
  }
  writer.PutDoubles(global_stddevs_);
  writer.PutU64(replica_version_);
  writer.PutU64(updates_received_);
  writer.PutDouble(last_update_time_);
  return std::move(writer).Finish(kMgddLeafSnapshotVersion);
}

bool MgddLeafNode::RestoreState(const std::vector<uint8_t>& bytes) {
  auto reader = SnapshotReader::Open(bytes, kMgddLeafSnapshotVersion);
  if (!reader.ok()) return false;
  SnapshotReader& r = reader.value();
  if (!local_model_.Restore(&r)) return false;
  rng_ = r.TakeRng();
  const uint32_t slots = r.TakeU32();
  global_sample_.clear();
  slot_valid_.clear();
  for (uint32_t i = 0; i < slots && r.ok(); ++i) {
    slot_valid_.push_back(r.TakeBool());
    global_sample_.push_back(r.TakePoint());
  }
  global_stddevs_ = r.TakeDoubles();
  replica_version_ = r.TakeU64();
  updates_received_ = r.TakeU64();
  last_update_time_ = r.TakeDouble();
  if (!r.ok()) return false;
  cached_global_.reset();
  cached_version_ = 0;
  return true;
}

void MgddLeafNode::ResetVolatileState() {
  // Replay construction exactly (see D3LeafNode::ResetVolatileState).
  Rng boot = boot_rng_;
  local_model_ = DensityModel(options_.model, boot.Split());
  rng_ = boot;
  validator_ = IngestValidator(options_.ingest);
  stuck_ = StuckSensorDetector(options_.ingest.stuck_run_threshold);
  global_sample_.clear();
  slot_valid_.clear();
  global_stddevs_.clear();
  updates_received_ = 0;
  replica_version_ = 0;
  last_update_time_ = 0.0;
  degraded_state_ = false;
  cached_global_.reset();
  cached_version_ = 0;
  recovering_ = false;
  restart_time_ = 0.0;
}

void MgddLeafNode::OnRestart(bool restored_from_checkpoint,
                             uint32_t incarnation) {
  (void)incarnation;
  recovering_ = true;
  restart_time_ = sim()->Now();
  SendAnnounce(restored_from_checkpoint, /*recovered=*/false);
  MaybeFinishRecovery();
}

void MgddLeafNode::SendAnnounce(bool restored_from_checkpoint,
                                bool recovered) {
  if (parent() == kNoNode) return;
  Rejoin().announces->Increment();
  RejoinAnnouncePayload ann;
  ann.incarnation = sim()->Incarnation(id());
  ann.restored_seen = local_model_.total_seen();
  ann.from_checkpoint = restored_from_checkpoint;
  ann.recovered = recovered;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRejoinAnnounce;
  msg.size_numbers = ann.SizeNumbers();
  msg.payload = ann;
  sim()->Send(std::move(msg));
}

void MgddLeafNode::MaybeFinishRecovery() {
  if (!recovering_) return;
  // Capable again = warm local model AND a global replica to test against.
  if (!HasGlobalModel()) return;
  if (local_model_.total_seen() < options_.min_observations) return;
  recovering_ = false;
  Rejoin().ttr_s->Record(sim()->Now() - restart_time_);
  SendAnnounce(/*restored_from_checkpoint=*/false, /*recovered=*/true);
}

bool MgddLeafNode::degraded() const {
  if (!HasGlobalModel()) return false;
  if (!std::isfinite(options_.staleness_threshold)) return false;
  return sim()->Now() - last_update_time_ > options_.staleness_threshold;
}

const KernelDensityEstimator& MgddLeafNode::GlobalEstimator() const {
  SENSORD_CHECK(HasGlobalModel());
  if (!cached_global_.has_value() || cached_version_ != replica_version_) {
    std::vector<Point> sample;
    sample.reserve(global_sample_.size());
    for (size_t i = 0; i < global_sample_.size(); ++i) {
      if (slot_valid_[i]) sample.push_back(global_sample_[i]);
    }
    auto built = KernelDensityEstimator::CreateWithScottBandwidths(
        std::move(sample), global_stddevs_);
    SENSORD_CHECK_OK(built.status());
    cached_global_.emplace(std::move(built).value());
    cached_version_ = replica_version_;
  }
  return *cached_global_;
}

MgddInternalNode::MgddInternalNode(const MgddOptions& options, Rng rng)
    : options_(options), boot_rng_(rng), model_(options.model, rng.Split()),
      rng_(rng) {}

void MgddInternalNode::HandleMessage(const Message& msg) {
  switch (msg.kind) {
    case kMsgSampleValue: {
      const auto& payload =
          *std::any_cast<const SharedSampleValue&>(msg.payload);
      HandleSampleValue(payload.value);
      break;
    }
    case kMsgGlobalModelUpdate: {
      // An update flowing down: relay to all children, continuing the
      // update's causal chain (this relay becomes the children's parent
      // span).
      const auto& update = std::any_cast<const SharedUpdate&>(msg.payload);
      obs::TraceContext ctx{msg.trace_id, msg.trace_parent_span};
      if (ctx.valid()) {
        const uint64_t span =
            obs::DeriveSpanId(ctx.trace_id, id(), /*salt=*/level());
        obs::EmitCausalSpan("mgdd.relay_update", id(), sim()->Now(),
                            ctx.trace_id, span, ctx.parent_span);
        ctx.parent_span = span;
      }
      BroadcastToChildren(*update, ctx);
      break;
    }
    case kMsgRejoinAnnounce:
      HandleRejoinAnnounce(msg);
      break;
    default:
      break;
  }
}

void MgddInternalNode::HandleRejoinAnnounce(const Message& msg) {
  const auto& ann = std::any_cast<const RejoinAnnouncePayload&>(msg.payload);
  // Recovered-notices are D3 parent bookkeeping; MGDD has nothing to clear.
  if (ann.recovered) return;
  if (!is_root()) {
    // Relay upward so the root hears about rejoins anywhere in its subtree.
    Message up = msg;
    up.from = id();
    up.to = parent();
    sim()->Send(std::move(up));
    return;
  }
  // The rejoined node (or the leaves below it) lost its replica; push a
  // full snapshot so every slot is refreshed. Broadcast rather than route:
  // replicas elsewhere just apply an idempotent refresh.
  BroadcastFullSnapshot();
}

void MgddInternalNode::HandleSampleValue(const Point& value) {
  const bool inserted = model_.Observe(value);
  if (is_root()) {
    // The root replicates its sample downward; any active-sample change —
    // an insertion or an expiry promotion — must reach the replicas.
    if (model_.sample().version() != last_sample_version_) {
      last_sample_version_ = model_.sample().version();
      MaybeOriginateUpdate();
    }
    return;
  }
  if (inserted && rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().internal_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = MakeSampleValue(value);
    sim()->Send(std::move(msg));
  }
}

void MgddInternalNode::MaybeOriginateUpdate() {
  const std::vector<Point> snapshot = model_.sample().Snapshot();
  GlobalModelUpdatePayload payload;
  payload.stddevs = model_.BandwidthSpreads();

  if (options_.update_mode == GlobalUpdateMode::kEveryChange) {
    // Diff the replicated slots against what was last broadcast.
    if (last_broadcast_sample_.size() != snapshot.size()) {
      last_broadcast_sample_.assign(snapshot.size(), Point{});
    }
    for (size_t i = 0; i < snapshot.size(); ++i) {
      if (last_broadcast_sample_[i] != snapshot[i]) {
        payload.updates.push_back(
            GlobalSlotUpdate{static_cast<uint32_t>(i), snapshot[i]});
        last_broadcast_sample_[i] = snapshot[i];
      }
    }
    if (payload.updates.empty()) return;
  } else {
    // kOnModelChange: push a full snapshot only if the model drifted.
    if (last_pushed_estimator_.has_value()) {
      auto js = JsDivergenceOnGrid(model_.Estimator(),
                                   *last_pushed_estimator_,
                                   options_.js_grid_cells);
      SENSORD_CHECK_OK(js.status());
      if (*js <= options_.push_js_threshold) {
        Metrics().updates_suppressed->Increment();
        return;
      }
    }
    for (size_t i = 0; i < snapshot.size(); ++i) {
      payload.updates.push_back(
          GlobalSlotUpdate{static_cast<uint32_t>(i), snapshot[i]});
    }
    last_pushed_estimator_ = model_.Estimator();
  }

  payload.version = ++update_version_;
  ++updates_originated_;
  Metrics().updates_originated->Increment();
  Metrics().update_slots->Record(static_cast<double>(payload.updates.size()));
  BroadcastToChildren(payload, OriginateUpdateContext(payload.version));
}

// Roots an update's causal chain: the trace id is a pure function of
// (root, version), the originate span its root. Returns the context the
// broadcast stamps onto every child copy.
obs::TraceContext MgddInternalNode::OriginateUpdateContext(uint64_t version) {
  const uint64_t trace = obs::DeriveUpdateTraceId(id(), version);
  const uint64_t span = obs::DeriveSpanId(trace, id(), /*salt=*/level());
  obs::EmitCausalSpan("mgdd.originate_update", id(), sim()->Now(), trace,
                      span, /*parent_span=*/0);
  return obs::TraceContext{trace, span};
}

void MgddInternalNode::BroadcastFullSnapshot() {
  if (!model_.Ready()) return;  // nothing to push yet
  Rejoin().resyncs->Increment();
  const std::vector<Point> snapshot = model_.sample().Snapshot();
  GlobalModelUpdatePayload payload;
  payload.stddevs = model_.BandwidthSpreads();
  for (size_t i = 0; i < snapshot.size(); ++i) {
    payload.updates.push_back(
        GlobalSlotUpdate{static_cast<uint32_t>(i), snapshot[i]});
  }
  // Keep the diff baseline in step with what the replicas now hold.
  last_broadcast_sample_ = snapshot;
  payload.version = ++update_version_;
  ++updates_originated_;
  Metrics().updates_originated->Increment();
  Metrics().update_slots->Record(static_cast<double>(payload.updates.size()));
  BroadcastToChildren(payload, OriginateUpdateContext(payload.version));
}

std::vector<uint8_t> MgddInternalNode::SaveState() const {
  SnapshotWriter writer;
  model_.Serialize(&writer);
  writer.PutRng(rng_);
  writer.PutU64(update_version_);
  return std::move(writer).Finish(kMgddInternalSnapshotVersion);
}

bool MgddInternalNode::RestoreState(const std::vector<uint8_t>& bytes) {
  auto reader = SnapshotReader::Open(bytes, kMgddInternalSnapshotVersion);
  if (!reader.ok()) return false;
  SnapshotReader& r = reader.value();
  if (!model_.Restore(&r)) return false;
  rng_ = r.TakeRng();
  update_version_ = r.TakeU64();
  if (!r.ok()) return false;
  // The checkpoint predates the crash, so the replicas below may hold newer
  // slots than this model does. An empty diff baseline (and no last-pushed
  // estimator) forces the next originated update to cover every slot.
  last_broadcast_sample_.clear();
  last_pushed_estimator_.reset();
  last_sample_version_ = model_.sample().version();
  return true;
}

void MgddInternalNode::ResetVolatileState() {
  Rng boot = boot_rng_;
  model_ = DensityModel(options_.model, boot.Split());
  rng_ = boot;
  last_broadcast_sample_.clear();
  last_pushed_estimator_.reset();
  update_version_ = 0;
  updates_originated_ = 0;
  last_sample_version_ = 0;
}

void MgddInternalNode::OnRestart(bool restored_from_checkpoint,
                                 uint32_t incarnation) {
  (void)incarnation;
  if (is_root()) {
    // A freshly restored root re-pushes its sample so every replica is
    // known-consistent with the new incarnation's model.
    BroadcastFullSnapshot();
    return;
  }
  // Announce upward: the root answers any rejoin with a full snapshot,
  // which this node relays down — healing its own subtree's replicas.
  Rejoin().announces->Increment();
  RejoinAnnouncePayload ann;
  ann.incarnation = sim()->Incarnation(id());
  ann.restored_seen = model_.total_seen();
  ann.from_checkpoint = restored_from_checkpoint;
  ann.recovered = false;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRejoinAnnounce;
  msg.size_numbers = ann.SizeNumbers();
  msg.payload = ann;
  sim()->Send(std::move(msg));
}

void MgddInternalNode::BroadcastToChildren(
    const GlobalModelUpdatePayload& payload, const obs::TraceContext& ctx) {
  if (children().empty()) return;
  const auto shared = std::make_shared<const GlobalModelUpdatePayload>(payload);
  const size_t size = payload.SizeNumbers(options_.model.dimensions);
  for (NodeId child : children()) {
    Message msg;
    msg.from = id();
    msg.to = child;
    msg.kind = kMsgGlobalModelUpdate;
    msg.size_numbers = size;
    msg.payload = SharedUpdate(shared);
    msg.trace_id = ctx.trace_id;
    msg.trace_parent_span = ctx.parent_span;
    sim()->Send(std::move(msg));
  }
}

}  // namespace sensord
