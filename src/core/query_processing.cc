#include "core/query_processing.h"

#include <utility>

#include "core/protocol.h"
#include "core/range_query.h"

#include "util/check.h"

namespace sensord {

QueryPartialPayload AnswerFromModel(const DensityModel& model,
                                    const AggregateQuery& query) {
  QueryPartialPayload part;
  part.query_id = query.id;
  part.leaves = 1;
  if (!model.Ready()) return part;

  part.window_total = model.WindowCount();
  const RangeQueryEngine engine(&model.Estimator(), part.window_total);
  part.count = engine.Count(query.lo, query.hi);
  if (query.kind == AggregateQuery::Kind::kAverage && part.count > 0.0) {
    auto avg = engine.Average(query.average_dim, query.lo, query.hi);
    part.weighted_sum = avg.ok() ? *avg * part.count : 0.0;
  }
  return part;
}

QueryAnswer FinalizeAnswer(const AggregateQuery& query,
                           const QueryPartialPayload& accumulated) {
  QueryAnswer answer;
  answer.id = query.id;
  answer.support_count = accumulated.count;
  answer.leaves_reporting = accumulated.leaves;
  switch (query.kind) {
    case AggregateQuery::Kind::kCount:
      answer.value = accumulated.count;
      break;
    case AggregateQuery::Kind::kFraction:
      answer.value = accumulated.window_total > 0.0
                         ? accumulated.count / accumulated.window_total
                         : 0.0;
      break;
    case AggregateQuery::Kind::kAverage:
      answer.value = accumulated.count > 0.0
                         ? accumulated.weighted_sum / accumulated.count
                         : 0.0;
      break;
  }
  return answer;
}

QuerySensorNode::QuerySensorNode(const DensityModelConfig& config, Rng rng)
    : model_(config, rng) {}

void QuerySensorNode::OnReading(const Point& value) {
  model_.Observe(value);
}

void QuerySensorNode::HandleMessage(const Message& msg) {
  if (msg.kind != kMsgQueryRequest) return;
  const auto& request =
      std::any_cast<const QueryRequestPayload&>(msg.payload);
  const QueryPartialPayload part = AnswerFromModel(model_, request.query);

  Message reply;
  reply.from = id();
  reply.to = msg.from;
  reply.kind = kMsgQueryResponse;
  reply.size_numbers = 5;  // id + count + weighted_sum + total + leaves
  reply.payload = part;
  sim()->Send(std::move(reply));
}

QueryAggregatorNode::QueryAggregatorNode(double response_deadline)
    : response_deadline_(response_deadline) {
  SENSORD_CHECK_GT(response_deadline_, 0.0);
}

void QueryAggregatorNode::InjectQuery(const AggregateQuery& query,
                                      QueryCallback callback) {
  SENSORD_CHECK(sim() != nullptr);
  Disseminate(query, /*local_origin=*/true, std::move(callback));
}

void QueryAggregatorNode::Disseminate(const AggregateQuery& query,
                                      bool local_origin,
                                      QueryCallback callback) {
  PendingQuery pending;
  pending.query = query;
  pending.accumulated.query_id = query.id;
  pending.awaiting = static_cast<uint32_t>(children().size());
  pending.local_origin = local_origin;
  pending.callback = std::move(callback);
  const auto [it, inserted] = pending_.emplace(query.id, std::move(pending));
  SENSORD_CHECK(inserted && "duplicate in-flight query id");
  (void)it;

  for (NodeId child : children()) {
    Message msg;
    msg.from = id();
    msg.to = child;
    msg.kind = kMsgQueryRequest;
    msg.size_numbers = 2 * query.lo.size() + 3;  // box + id/kind/dim
    msg.payload = QueryRequestPayload{query};
    sim()->Send(std::move(msg));
  }

  if (children().empty()) {
    // Degenerate aggregator with no subtree: resolve immediately.
    Resolve(query.id);
    return;
  }
  sim()->ScheduleAfter(response_deadline_, [this, query_id = query.id]() {
    Resolve(query_id);
  });
}

void QueryAggregatorNode::Accumulate(PendingQuery* pending,
                                     const QueryPartialPayload& part) {
  pending->accumulated.count += part.count;
  pending->accumulated.weighted_sum += part.weighted_sum;
  pending->accumulated.window_total += part.window_total;
  pending->accumulated.leaves += part.leaves;
}

void QueryAggregatorNode::Resolve(uint32_t query_id) {
  const auto it = pending_.find(query_id);
  if (it == pending_.end() || it->second.resolved) return;
  PendingQuery& pending = it->second;
  pending.resolved = true;

  if (pending.local_origin) {
    if (pending.callback) {
      pending.callback(FinalizeAnswer(pending.query, pending.accumulated));
    }
  } else if (parent() != kNoNode) {
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgQueryResponse;
    msg.size_numbers = 5;
    msg.payload = pending.accumulated;
    sim()->Send(std::move(msg));
  }
  pending_.erase(it);
}

void QueryAggregatorNode::HandleMessage(const Message& msg) {
  switch (msg.kind) {
    case kMsgQueryRequest: {
      const auto& request =
          std::any_cast<const QueryRequestPayload&>(msg.payload);
      Disseminate(request.query, /*local_origin=*/false, nullptr);
      break;
    }
    case kMsgQueryResponse: {
      const auto& part =
          std::any_cast<const QueryPartialPayload&>(msg.payload);
      const auto it = pending_.find(part.query_id);
      if (it == pending_.end() || it->second.resolved) break;  // late reply
      Accumulate(&it->second, part);
      if (--it->second.awaiting == 0) Resolve(part.query_id);
      break;
    }
    default:
      break;
  }
}

}  // namespace sensord
