#include "core/faulty_sensor.h"

#include "obs/metrics.h"
#include "stats/divergence.h"

#include "util/check.h"

namespace sensord {
namespace {

obs::Counter* StuckRejectedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("ingest.rejected.stuck");
  return counter;
}

}  // namespace

StatusOr<std::vector<FaultVerdict>> DetectFaultySensors(
    const std::vector<const DistributionEstimator*>& children,
    const FaultySensorConfig& config) {
  if (children.size() < 3) {
    return Status::InvalidArgument(
        "fault attribution requires at least 3 child models");
  }
  const size_t d = children[0]->dimensions();
  for (const DistributionEstimator* c : children) {
    if (c == nullptr) {
      return Status::InvalidArgument("null child model");
    }
    if (c->dimensions() != d) {
      return Status::InvalidArgument("child model dimensionality mismatch");
    }
  }

  // Discretize every child once; peer averages are then cheap grid sums.
  std::vector<std::vector<double>> grids;
  grids.reserve(children.size());
  for (const DistributionEstimator* c : children) {
    grids.push_back(DiscretizeOnGrid(*c, config.grid_cells));
  }
  const size_t cells = grids[0].size();

  std::vector<FaultVerdict> verdicts;
  verdicts.reserve(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    std::vector<double> peers(cells, 0.0);
    for (size_t j = 0; j < children.size(); ++j) {
      if (j == i) continue;
      for (size_t c = 0; c < cells; ++c) peers[c] += grids[j][c];
    }
    FaultVerdict v;
    v.child_index = i;
    v.js_to_peers = JsDivergence(grids[i], peers);
    v.flagged = v.js_to_peers > config.js_threshold;
    verdicts.push_back(v);
  }
  return verdicts;
}

StuckSensorDetector::StuckSensorDetector(uint64_t run_threshold)
    : run_threshold_(run_threshold) {}

bool StuckSensorDetector::ShouldQuarantine(const Point& reading) {
  if (run_threshold_ == 0) return false;
  if (run_length_ > 0 && reading == last_) {
    ++run_length_;
  } else {
    last_ = reading;
    run_length_ = 1;
    quarantined_ = false;
  }
  if (run_length_ > run_threshold_) {
    quarantined_ = true;
    ++rejected_;
    StuckRejectedCounter()->Increment();
    return true;
  }
  return false;
}

OutlierRateMonitor::OutlierRateMonitor(double window_seconds)
    : window_seconds_(window_seconds) {
  SENSORD_CHECK_GT(window_seconds_, 0.0);
}

void OutlierRateMonitor::RecordOutlier(double t) {
  SENSORD_DCHECK(events_.empty() || events_.back() <= t);
  events_.push_back(t);
}

void OutlierRateMonitor::Expire(double t) const {
  while (!events_.empty() && events_.front() <= t - window_seconds_) {
    events_.pop_front();
  }
}

size_t OutlierRateMonitor::CountAt(double t) const {
  Expire(t);
  size_t n = 0;
  for (double e : events_) {
    if (e <= t) ++n;
  }
  return n;
}

}  // namespace sensord
