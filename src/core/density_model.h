// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The per-node online density model — the paper's core data structure.
//
// Section 5: each sensor summarizes the sliding window of its stream with
// (i) a chain sample R of the window and (ii) an epsilon-approximate
// standard deviation per dimension, and materializes a kernel density
// estimator (Epanechnikov kernels over R, Scott's-rule bandwidths from the
// approximate sigmas) whenever a query needs one. Total memory is the
// paper's Theorem 1 bound, O(d(|R| + (1/eps^2) log |W|)).
//
// The same class serves leaves and leaders: a leader's model consumes the
// thinned stream of sample values its children propagate (Section 5.1) and
// is configured with the *logical* population it speaks for, so that
// N(p, r) estimates refer to the union of the leaf windows below it.

#ifndef SENSORD_CORE_DENSITY_MODEL_H_
#define SENSORD_CORE_DENSITY_MODEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.h"
#include "stats/kde.h"
#include "stream/chain_sample.h"
#include "stream/variance_sketch.h"
#include "util/flat_points.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {

class SnapshotReader;
class SnapshotWriter;

/// Online, bounded-memory approximation of the sliding-window distribution
/// of a d-dimensional stream.
class DensityModel {
 public:
  /// Pre: config.dimensions >= 1, config.sample_size >= 1,
  /// config.window_size >= 1, 0 < config.epsilon <= 1.
  DensityModel(const DensityModelConfig& config, Rng rng);

  /// Feeds the next observation. Returns true iff the observation entered
  /// the sample — the event that triggers probabilistic propagation to the
  /// parent in D3 and MGDD (Figure 4, "if (S(i) included in R)").
  /// Pre: p.size() == config().dimensions.
  bool Observe(const Point& p);

  /// True once the model can answer queries (at least one observation).
  bool Ready() const { return sample_.seeded(); }

  /// The current kernel estimator, rebuilt lazily when the sample changed
  /// or the cached estimator aged past config.max_estimator_age.
  /// Pre: Ready().
  const KernelDensityEstimator& Estimator() const;

  /// The population count the model's neighbourhood estimates refer to:
  /// config.logical_window_count scaled by warm-up progress, or
  /// min(total_seen, window_size) if no logical count was configured.
  double WindowCount() const;

  /// Estimated per-dimension standard deviations of the window.
  std::vector<double> StdDevs() const;

  /// The per-dimension spreads fed to Scott's rule: StdDevs(), tempered by
  /// the sample IQR when config.robust_bandwidth is set. This is what the
  /// model's own Estimator() uses, and what MGDD broadcasts as sigma^g so
  /// replica bandwidths match the root's.
  std::vector<double> BandwidthSpreads() const;

  /// Estimated per-dimension means of the window.
  std::vector<double> Means() const;

  /// Total observations fed so far.
  uint64_t total_seen() const { return sample_.total_seen(); }

  const DensityModelConfig& config() const { return config_; }
  const ChainSample& sample() const { return sample_; }
  const VarianceSketch& variance_sketch(size_t dim) const {
    return sketches_[dim];
  }

  /// Memory footprint of the retained state (sample + variance sketches)
  /// under the paper's bytes-per-number accounting (Section 10.3).
  size_t MemoryBytes(size_t bytes_per_number) const;

  /// The Theorem 1 upper bound for the same accounting.
  size_t TheoreticalBoundBytes(size_t bytes_per_number) const;

  /// Appends the model's full online state — chain sample and per-dimension
  /// variance sketches — to `writer`, for checkpoint/restore
  /// (core/snapshot.h). The cached estimator is derived state and is not
  /// written; a restored model rebuilds it on first query.
  void Serialize(SnapshotWriter* writer) const;

  /// Overwrites this model with state previously written by Serialize() on
  /// a model with the same configuration. Returns false (model unspecified,
  /// safe to destroy or reassign) on reader failure or config mismatch.
  bool Restore(SnapshotReader* reader);

 private:
  // BandwidthSpreads() over an already-exported flat snapshot of the sample
  // (the rebuild path computes the snapshot once and reuses it here).
  std::vector<double> SpreadsFrom(const FlatPoints& snapshot) const;

  DensityModelConfig config_;
  ChainSample sample_;
  std::vector<VarianceSketch> sketches_;

  // Lazily rebuilt estimator cache (see ChainSample::version).
  mutable std::optional<KernelDensityEstimator> cached_;
  mutable uint64_t cached_sample_version_ = 0;
  mutable uint64_t cached_at_count_ = 0;

  // Warm buffers for the rebuild path (DESIGN.md §13): the sample is
  // exported into rebuild_scratch_, handed to the new estimator, and the
  // displaced estimator's buffer is stolen back as the next scratch — two
  // heap blocks ping-pong forever, so a steady-state rebuild performs zero
  // per-point allocations. coord_scratch_ serves the robust-bandwidth IQR
  // the same way. mutable for the same reason as cached_: rebuilds happen
  // inside const queries, and a DensityModel is single-owner state (the
  // parallel engine runs handlers of distinct nodes, never one model from
  // two threads — DESIGN.md §12).
  mutable FlatPoints rebuild_scratch_;
  mutable std::vector<double> coord_scratch_;
};

}  // namespace sensord

#endif  // SENSORD_CORE_DENSITY_MODEL_H_
