// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// D3 — Distributed Deviation Detection (Section 7, Figure 4).
//
// Leaves maintain a density model of their own sliding window, flag each
// arriving value whose estimated neighbourhood count N(p, r) falls below the
// threshold, and escalate flagged values to their leader. Leaders maintain a
// density model over the *propagated sample* of their subtree and re-check
// only the values their children flagged — justified by the paper's
// Theorem 3 (a parent's outlier set is contained in the union of its
// children's outlier sets), which is what makes D3 cheap: parents never see
// non-outlying raw data.
//
// Sample propagation (Section 5.1): a value that enters a node's sample is
// forwarded to the parent with probability f; the parent treats arriving
// values as its own input stream, inserts them into its sample, and forwards
// its own insertions upward with probability f again.

#ifndef SENSORD_CORE_D3_H_
#define SENSORD_CORE_D3_H_

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "core/config.h"
#include "core/density_model.h"
#include "core/faulty_sensor.h"
#include "core/outlier_observer.h"
#include "core/protocol.h"
#include "data/validate.h"
#include "net/network.h"
#include "net/node.h"
#include "util/rng.h"

namespace sensord {

/// Parameters of a D3 deployment.
struct D3Options {
  /// Leaf model parameters (the paper's |W|, |R|, epsilon).
  DensityModelConfig model;

  /// The (D, r) criterion.
  DistanceOutlierConfig outlier;

  /// Sample propagation probability f (paper default 0.5).
  double sample_fraction = 0.5;

  /// Observations a node must absorb before it starts flagging values —
  /// fresh models produce meaningless neighbourhood counts. Experiments use
  /// one full window.
  uint64_t min_observations = 1000;

  /// Graceful degradation: a parent that has heard nothing from some child
  /// for longer than this many simulated seconds considers its model stale
  /// and marks itself (and the events it still emits) degraded. Crossing
  /// into the degraded state bumps `core.degraded_windows`. Infinity
  /// disables the check (the paper assumes reliable links and live nodes).
  double staleness_threshold = std::numeric_limits<double>::infinity();

  /// Ingest validation firewall applied to every leaf reading before the
  /// model sees it (data/validate.h). The default policy accepts all finite
  /// readings and never quarantines, so clean streams are unaffected.
  IngestPolicy ingest;
};

/// Computes the DensityModelConfig for a leader node with `num_children`
/// direct children and `descendant_leaves` leaf sensors in its subtree,
/// under leaf config `leaf` and propagation probability f.
///
/// Arrivals: over one logical window, each child inserts about |R| values
/// into its own sample and forwards each with probability f, so a leader
/// sees about num_children * f * |R| arrivals per window — that is its
/// arrival-count window. Population: the leader answers for the union of
/// the leaf windows below it, |W| * descendant_leaves.
DensityModelConfig LeaderModelConfigFor(const DensityModelConfig& leaf,
                                        size_t num_children,
                                        size_t descendant_leaves,
                                        double sample_fraction);

/// Convenience for a perfectly balanced tree: a leader at 1-based level
/// `level` (level >= 2) with `fanout` children per node has fanout direct
/// children and fanout^(level-1) descendant leaves.
DensityModelConfig LeaderModelConfig(const DensityModelConfig& leaf,
                                     size_t fanout, double sample_fraction,
                                     int level);

/// A leaf sensor running D3's LeafProcess.
class D3LeafNode : public Node {
 public:
  /// `observer` may be null (events are then only escalated, not reported
  /// locally); it must outlive the node.
  D3LeafNode(const D3Options& options, Rng rng, OutlierObserver* observer);

  void OnReading(const Point& value) override;
  void HandleMessage(const Message& msg) override;

  // Crash recovery (DESIGN.md §10): the checkpoint is the model plus the
  // propagation rng; ResetVolatileState rewinds both to their boot state.
  std::vector<uint8_t> SaveState() const override;
  bool RestoreState(const std::vector<uint8_t>& bytes) override;
  void ResetVolatileState() override;
  void OnRestart(bool restored_from_checkpoint, uint32_t incarnation) override;

  const DensityModel& model() const { return model_; }
  const D3Options& options() const { return options_; }
  const IngestValidator& validator() const { return validator_; }

  /// True between an amnesia restart and the model regaining capability
  /// (total_seen back above min_observations).
  bool recovering() const { return recovering_; }

 private:
  // Announces rejoin/recovery to the parent.
  void SendAnnounce(bool restored_from_checkpoint, bool recovered);
  // Closes the recovery window once the model is capable again.
  void MaybeFinishRecovery();

  D3Options options_;
  Rng boot_rng_;  // construction-time rng, replayed by ResetVolatileState
  DensityModel model_;
  Rng rng_;
  IngestValidator validator_;
  StuckSensorDetector stuck_;
  OutlierObserver* observer_;

  bool recovering_ = false;
  bool warm_started_ = false;  // consumed a rejoin resync this incarnation
  SimTime restart_time_ = 0.0;
};

/// A leader node running D3's ParentProcess at any tier above the leaves.
class D3ParentNode : public Node {
 public:
  /// `options.model` should come from LeaderModelConfig for this node's
  /// level. `observer` may be null; it must outlive the node.
  D3ParentNode(const D3Options& options, Rng rng, OutlierObserver* observer);

  void OnStart() override;
  void HandleMessage(const Message& msg) override;

  // Crash recovery: same checkpoint shape as the leaf (model + rng); the
  // silence clocks and recovering-children set are rebuilt, not restored.
  std::vector<uint8_t> SaveState() const override;
  bool RestoreState(const std::vector<uint8_t>& bytes) override;
  void ResetVolatileState() override;
  void OnRestart(bool restored_from_checkpoint, uint32_t incarnation) override;

  const DensityModel& model() const { return model_; }
  const D3Options& options() const { return options_; }

  /// True if some child has been silent past options().staleness_threshold
  /// as of the current simulation time, or some child is mid-recovery from
  /// an amnesia restart (announced rejoin, not yet reported capable).
  bool degraded() const;

 private:
  void HandleSampleValue(const Point& value);
  void HandleOutlierReport(const Message& incoming,
                           const OutlierReportPayload& report);
  void HandleRejoinAnnounce(NodeId child, const RejoinAnnouncePayload& ann);
  void HandleRejoinResync(const RejoinResyncPayload& resync);
  bool ComputeDegraded(SimTime now) const;
  void SendAnnounce(bool restored_from_checkpoint, bool recovered);
  void MaybeFinishRecovery();

  D3Options options_;
  Rng boot_rng_;  // construction-time rng, replayed by ResetVolatileState
  DensityModel model_;
  Rng rng_;
  OutlierObserver* observer_;

  // Last time each direct child was heard from (any message kind).
  std::map<NodeId, SimTime> last_heard_;
  // Children that announced an amnesia rejoin and have not yet reported
  // recovery; the node stays degraded while this is non-empty.
  std::set<NodeId> recovering_children_;
  bool degraded_state_ = false;

  bool recovering_ = false;
  bool warm_started_ = false;
  SimTime restart_time_ = 0.0;
};

}  // namespace sensord

#endif  // SENSORD_CORE_D3_H_
