// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Shared detection telemetry (DESIGN.md §11): the per-tier decision-latency
// histograms both detectors feed. Latency is *virtual* time from the
// originating leaf's ingest (OutlierReportPayload::ingest_time) to the
// decision that consumed the report, so the histograms answer "how long did
// the hierarchy take to confirm this reading" per tier.

#ifndef SENSORD_CORE_DETECTION_TELEMETRY_H_
#define SENSORD_CORE_DETECTION_TELEMETRY_H_

#include <cstdio>

#include "obs/metrics.h"

namespace sensord {

/// The detection.latency_s.level<N> histogram for hierarchy tier `level`,
/// cached per level so the hot path never formats a metric name. Tiers
/// above 8 (deeper than any shipped experiment) share the last histogram.
inline obs::Histogram* DetectionLatencyHist(int level) {
  constexpr int kMaxLevel = 8;
  // Inline: one shared static array across every including TU.
  static obs::Histogram* hists[kMaxLevel + 1] = {};
  const int idx = level < 1 ? 1 : (level > kMaxLevel ? kMaxLevel : level);
  if (hists[idx] == nullptr) {
    char name[40];
    std::snprintf(name, sizeof(name), "detection.latency_s.level%d", idx);
    hists[idx] = obs::MetricsRegistry::Global().GetHistogram(
        name, obs::DetectionLatencyBoundariesS());
  }
  return hists[idx];
}

}  // namespace sensord

#endif  // SENSORD_CORE_DETECTION_TELEMETRY_H_
