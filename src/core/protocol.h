// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Wire protocol of the D3 and MGDD algorithms: message kinds and payloads.
// Payload sizes (Message::size_numbers) follow the paper's accounting — the
// numeric values a real radio would carry, at 2 bytes per number on the
// assumed 16-bit architecture.

#ifndef SENSORD_CORE_PROTOCOL_H_
#define SENSORD_CORE_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/message.h"
#include "util/math_utils.h"

namespace sensord {

/// Message kinds used by the shipped algorithms (values < 100 are reserved;
/// see net/message.h).
enum ProtocolKind : MessageKind {
  /// A value that entered a node's sample, propagated upward w.p. f
  /// (D3 lines 14-15 / 30, MGDD lines 13-14 / 20-21).
  kMsgSampleValue = 1,
  /// A value a node flagged as an outlier, escalated to its parent
  /// (D3 lines 19, 27).
  kMsgOutlierReport = 2,
  /// A global-model update flowing down the hierarchy (MGDD lines 22-23).
  kMsgGlobalModelUpdate = 3,
  /// A raw reading shipped upward by the centralized baseline.
  kMsgRawReading = 4,
  /// An aggregate query disseminated down the tree (Section 9 / TAG-style
  /// in-network query processing; see core/query_processing.h).
  kMsgQueryRequest = 5,
  /// A partial aggregate flowing back up toward the query's origin.
  kMsgQueryResponse = 6,
  /// A restarted node announcing its new incarnation to its parent, and —
  /// once its model is back to capability — reporting recovery complete
  /// (DESIGN.md §10, rejoin protocol).
  kMsgRejoinAnnounce = 7,
  /// The parent's answer to a rejoin: a summary of its model (sample
  /// snapshot + bandwidth spreads) the child warm-starts from.
  kMsgRejoinResync = 8,
};

/// Payload of kMsgSampleValue and kMsgRawReading.
struct SampleValuePayload {
  Point value;
};

/// How SampleValuePayload travels inside Message::payload. Sample messages
/// are copied at every stage of delivery — the transport retains a
/// retransmit copy, each per-hop delivery closure captures the message, and
/// relays forward it — while the payload itself is immutable once sent, so
/// it is carried by shared_ptr and every Message copy stays O(1) regardless
/// of dimensionality.
using SharedSampleValue = std::shared_ptr<const SampleValuePayload>;

/// Wraps a point for sending as kMsgSampleValue / kMsgRawReading.
inline SharedSampleValue MakeSampleValue(Point value) {
  return std::make_shared<const SampleValuePayload>(
      SampleValuePayload{std::move(value)});
}

/// Payload of kMsgOutlierReport.
struct OutlierReportPayload {
  Point value;
  /// Hierarchy level at which the value was first flagged.
  int origin_level = 1;
  /// Provenance of the reading: the leaf that sensed it and that leaf's
  /// reading counter — a source timestamp, as real deployments attach. Lets
  /// upper levels (and the evaluation harness) identify the observation.
  NodeId source_leaf = kNoNode;
  uint64_t source_seq = 0;
  /// Virtual time the originating leaf ingested the reading. Upper levels
  /// subtract it from their decision time to feed the per-tier
  /// detection.latency_s histograms (DESIGN.md §11). A timestamp the real
  /// protocol already pays for via source_seq, so not charged again to
  /// size_numbers.
  double ingest_time = 0.0;
};

/// One slot change of the replicated global sample.
struct GlobalSlotUpdate {
  uint32_t slot = 0;
  Point value;
};

/// Payload of kMsgRejoinAnnounce.
struct RejoinAnnouncePayload {
  /// The announcing node's new transport incarnation epoch.
  uint32_t incarnation = 0;
  /// Observations the node's restored model had already seen (0 for a cold
  /// restart) — tells the parent how degraded the child is.
  uint64_t restored_seen = 0;
  /// True if the restart restored a checkpoint.
  bool from_checkpoint = false;
  /// False on the initial announce; true on the follow-up announce sent
  /// once the node's model is capable again (closes the parent's
  /// degraded window for this child).
  bool recovered = false;

  /// Numbers on the wire: incarnation, seen count, and the two flags packed
  /// into one number.
  size_t SizeNumbers() const { return 3; }
};

/// Payload of kMsgRejoinResync.
struct RejoinResyncPayload {
  /// The parent model's current sample snapshot.
  std::vector<Point> sample;
  /// The parent's bandwidth spreads (see DensityModel::BandwidthSpreads).
  std::vector<double> spreads;
  /// Observations behind the parent's model, for context.
  uint64_t parent_seen = 0;

  /// Numbers on the wire: d coordinates per sample point + d spreads + the
  /// seen counter.
  size_t SizeNumbers(size_t dimensions) const {
    return sample.size() * dimensions + spreads.size() + 1;
  }
};

/// Payload of kMsgGlobalModelUpdate: the slots of the root's sample that
/// changed (all slots for a full push), plus the root's current standard
/// deviations for bandwidth selection at the leaves.
struct GlobalModelUpdatePayload {
  std::vector<GlobalSlotUpdate> updates;
  std::vector<double> stddevs;
  uint64_t version = 0;

  /// Numbers on the wire: (slot + d coordinates) per update + d sigmas + the
  /// version tag.
  size_t SizeNumbers(size_t dimensions) const {
    return updates.size() * (1 + dimensions) + stddevs.size() + 1;
  }
};

}  // namespace sensord

#endif  // SENSORD_CORE_PROTOCOL_H_
