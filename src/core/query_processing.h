// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// In-network approximate query processing (Section 9, made distributed).
//
// "One category of problems is to provide approximate answers to range
// queries with both spatial and temporal constraints ... the sensors can
// estimate the density model for the observations ... and answer the
// queries based on the estimated model."
//
// The flow is TAG-style (the system the paper built its simulator on):
// a query is injected at any aggregator, disseminated down the tree, each
// leaf answers *from its local density model* — no raw data moves — and
// partial aggregates are combined hop by hop on the way back up. Spatial
// selection falls out of the tree: inject at the leader of the region of
// interest. Each aggregator waits for its children up to a deadline, so a
// lossy radio degrades an answer's support count instead of wedging it.

#ifndef SENSORD_CORE_QUERY_PROCESSING_H_
#define SENSORD_CORE_QUERY_PROCESSING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/config.h"
#include "core/density_model.h"
#include "net/network.h"
#include "net/node.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {

/// An aggregate over the window values inside an axis-aligned box.
struct AggregateQuery {
  enum class Kind {
    kCount,     ///< estimated number of window values in the box
    kFraction,  ///< that count over the total pooled window size
    kAverage,   ///< estimated mean of coordinate `average_dim` in the box
  };

  uint32_t id = 0;
  Kind kind = Kind::kCount;
  Point lo, hi;
  size_t average_dim = 0;
};

/// A resolved query.
struct QueryAnswer {
  uint32_t id = 0;
  double value = 0.0;        ///< the requested aggregate
  double support_count = 0;  ///< estimated values inside the box
  uint32_t leaves_reporting = 0;  ///< leaves whose answers arrived in time
};

/// Invoked at the injection node when a query resolves.
using QueryCallback = std::function<void(const QueryAnswer&)>;

/// Partial aggregate carried by kMsgQueryResponse.
struct QueryPartialPayload {
  uint32_t query_id = 0;
  double count = 0.0;         ///< estimated in-box values in this subtree
  double weighted_sum = 0.0;  ///< sum of (avg * count) for kAverage
  double window_total = 0.0;  ///< pooled window size of this subtree
  uint32_t leaves = 0;        ///< leaves that contributed
};

/// Payload of kMsgQueryRequest.
struct QueryRequestPayload {
  AggregateQuery query;
};

/// A leaf sensor that maintains a density model of its own stream and
/// answers queries from it.
class QuerySensorNode : public Node {
 public:
  QuerySensorNode(const DensityModelConfig& config, Rng rng);

  void OnReading(const Point& value) override;
  void HandleMessage(const Message& msg) override;

  const DensityModel& model() const { return model_; }

 private:
  DensityModel model_;
};

/// An interior node that disseminates queries down and combines partial
/// answers up. The node where a query is injected resolves it and invokes
/// the callback.
class QueryAggregatorNode : public Node {
 public:
  /// `response_deadline`: how long to wait for children (seconds) before
  /// resolving with whatever partials arrived.
  explicit QueryAggregatorNode(double response_deadline = 1.0);

  /// Starts a query from this node over its subtree. `callback` fires when
  /// the query resolves (after all children answered or the deadline
  /// passed). Pre: node is registered with a simulator.
  void InjectQuery(const AggregateQuery& query, QueryCallback callback);

  void HandleMessage(const Message& msg) override;

 private:
  struct PendingQuery {
    AggregateQuery query;
    QueryPartialPayload accumulated;
    uint32_t awaiting = 0;      // children yet to answer
    bool local_origin = false;  // resolve here (vs forward up)
    QueryCallback callback;
    bool resolved = false;
  };

  void Disseminate(const AggregateQuery& query, bool local_origin,
                   QueryCallback callback);
  void Accumulate(PendingQuery* pending, const QueryPartialPayload& part);
  void Resolve(uint32_t query_id);

  double response_deadline_;
  std::map<uint32_t, PendingQuery> pending_;
};

/// Computes a leaf's partial answer from its model — exposed for tests.
QueryPartialPayload AnswerFromModel(const DensityModel& model,
                                    const AggregateQuery& query);

/// Folds a resolved accumulation into the final answer — exposed for tests.
QueryAnswer FinalizeAnswer(const AggregateQuery& query,
                           const QueryPartialPayload& accumulated);

}  // namespace sensord

#endif  // SENSORD_CORE_QUERY_PROCESSING_H_
