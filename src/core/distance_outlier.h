// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Distance-based (D, r) outlier test on top of a distribution estimate
// (Section 7, Figure 4 procedure IsOutlier).

#ifndef SENSORD_CORE_DISTANCE_OUTLIER_H_
#define SENSORD_CORE_DISTANCE_OUTLIER_H_

#include "core/config.h"
#include "stats/estimator.h"
#include "util/math_utils.h"

namespace sensord {

/// Estimated number of window values within L-infinity distance
/// config.radius of p — the paper's N(p, r) (Eq. 4) — given the window
/// population the estimator speaks for.
double EstimateNeighborCount(const DistributionEstimator& model,
                             double window_count, const Point& p,
                             const DistanceOutlierConfig& config);

/// The IsOutlier predicate: true iff N(p, r) < config.neighbor_threshold.
bool IsDistanceOutlier(const DistributionEstimator& model,
                       double window_count, const Point& p,
                       const DistanceOutlierConfig& config);

}  // namespace sensord

#endif  // SENSORD_CORE_DISTANCE_OUTLIER_H_
