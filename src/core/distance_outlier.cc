#include "core/distance_outlier.h"

namespace sensord {

double EstimateNeighborCount(const DistributionEstimator& model,
                             double window_count, const Point& p,
                             const DistanceOutlierConfig& config) {
  return model.NeighborCount(p, config.radius, window_count);
}

bool IsDistanceOutlier(const DistributionEstimator& model,
                       double window_count, const Point& p,
                       const DistanceOutlierConfig& config) {
  return EstimateNeighborCount(model, window_count, p, config) <
         config.neighbor_threshold;
}

}  // namespace sensord
