#include "core/mdef.h"

#include <cmath>
#include <vector>

#include "stats/kde.h"

#include "util/check.h"

namespace sensord {
namespace {

// Enumerates, recursively over dimensions, every cell of the 2*alpha*r grid
// whose centre lies in the L-infinity ball B(p, r). Cells are collected
// rather than queried one by one, so the whole scan goes to the estimator
// as a single BoxProbabilityBatch call — one sample sweep for the KDE
// instead of one per cell.
struct CellScan {
  const DistributionEstimator& model;
  const Point& p;
  double cell_side;
  double sampling_radius;
  size_t cells_per_dim;

  std::vector<Point> box_lo, box_hi;  // in enumeration order

  Point lo, hi;

  explicit CellScan(const DistributionEstimator& m, const Point& point,
                    const MdefConfig& config)
      : model(m),
        p(point),
        cell_side(2.0 * config.counting_radius),
        sampling_radius(config.sampling_radius),
        cells_per_dim(static_cast<size_t>(std::ceil(1.0 / cell_side))),
        lo(m.dimensions()),
        hi(m.dimensions()) {}

  void Recurse(size_t dim) {
    if (dim == model.dimensions()) {
      box_lo.push_back(lo);
      box_hi.push_back(hi);
      return;
    }
    // Cells j cover [j*side, (j+1)*side); keep those whose centre is within
    // the sampling radius of p in this dimension.
    const long first = static_cast<long>(
        std::floor((p[dim] - sampling_radius) / cell_side));
    const long last = static_cast<long>(
        std::floor((p[dim] + sampling_radius) / cell_side));
    for (long j = std::max(0L, first);
         j <= last && j < static_cast<long>(cells_per_dim); ++j) {
      const double a = static_cast<double>(j) * cell_side;
      const double center = a + 0.5 * cell_side;
      if (std::fabs(center - p[dim]) > sampling_radius) continue;
      lo[dim] = a;
      hi[dim] = a + cell_side;
      Recurse(dim + 1);
    }
  }
};

}  // namespace

MdefResult MdefFromMasses(double counting_mass, double sum1, double sum2,
                          double sum3, size_t cells,
                          const MdefConfig& config) {
  MdefResult r;
  r.counting_mass = counting_mass;
  r.cells_considered = cells;

  if (sum1 < config.min_neighborhood_mass) {
    // An (essentially) empty sampling neighbourhood: no local statistics to
    // deviate from. The paper's framework never flags such values; they
    // would be caught by the distance-based criterion instead.
    return r;
  }

  r.avg_mass = sum2 / sum1;
  const double second_moment = sum3 / sum1;
  const double var = second_moment - r.avg_mass * r.avg_mass;
  r.sigma_mass = var > 0.0 ? std::sqrt(var) : 0.0;

  if (r.avg_mass <= 0.0) return r;
  r.mdef = 1.0 - r.counting_mass / r.avg_mass;
  r.sigma_mdef = r.sigma_mass / r.avg_mass;
  r.is_outlier = r.mdef > config.k_sigma * r.sigma_mdef;
  return r;
}

MdefResult ComputeMdef(const DistributionEstimator& model, const Point& p,
                       const MdefConfig& config) {
  SENSORD_DCHECK_EQ(p.size(), model.dimensions());
  SENSORD_CHECK_GT(config.counting_radius, 0.0);
  SENSORD_CHECK_LE(config.counting_radius, config.sampling_radius);
  SENSORD_CHECK_LT(config.sampling_radius, 1.0);

  const double counting_mass =
      model.BallProbability(p, config.counting_radius);
  CellScan scan(model, p, config);
  scan.Recurse(0);
  std::vector<double> masses;
  model.BoxProbabilityBatch(scan.box_lo, scan.box_hi, &masses);
  // Moments accumulate in cell enumeration order, exactly as the per-cell
  // scan summed them.
  double sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
  for (const double s : masses) {
    sum1 += s;
    sum2 += s * s;
    sum3 += s * s * s;
  }
  return MdefFromMasses(counting_mass, sum1, sum2, sum3, masses.size(),
                        config);
}

MdefResult ComputeMdef(const KernelDensityEstimator& kde, const Point& p,
                       const MdefConfig& config) {
  const size_t d = kde.dimensions();
  if (d == 1) {
    // The generic path already runs in O(log|R| + |R'|) per cell in 1-d.
    return ComputeMdef(static_cast<const DistributionEstimator&>(kde), p,
                       config);
  }
  SENSORD_DCHECK_EQ(p.size(), d);
  SENSORD_CHECK_GT(config.counting_radius, 0.0);
  SENSORD_CHECK_LE(config.counting_radius, config.sampling_radius);

  const double side = 2.0 * config.counting_radius;
  const double r = config.sampling_radius;
  const size_t cells_per_dim = static_cast<size_t>(std::ceil(1.0 / side));

  // Per-dimension list of cell intervals whose centres are within r of p —
  // the same selection rule as the generic CellScan, which factors over
  // dimensions for the L-infinity ball.
  std::vector<std::vector<double>> cell_lo(d);
  for (size_t dim = 0; dim < d; ++dim) {
    const long first = static_cast<long>(std::floor((p[dim] - r) / side));
    const long last = static_cast<long>(std::floor((p[dim] + r) / side));
    for (long j = std::max(0L, first);
         j <= last && j < static_cast<long>(cells_per_dim); ++j) {
      const double a = static_cast<double>(j) * side;
      if (std::fabs(a + 0.5 * side - p[dim]) > r) continue;
      cell_lo[dim].push_back(a);
    }
  }
  size_t total_cells = 1;
  for (size_t dim = 0; dim < d; ++dim) total_cells *= cell_lo[dim].size();
  if (total_cells == 0) {
    return MdefFromMasses(
        kde.BallProbability(p, config.counting_radius), 0.0, 0.0, 0.0, 0,
        config);
  }

  const std::vector<double> bandwidths = kde.bandwidths();
  std::vector<EpanechnikovKernel> kernels;
  kernels.reserve(d);
  for (double b : bandwidths) kernels.emplace_back(b);
  std::vector<double> cell_mass(total_cells, 0.0);
  std::vector<std::vector<double>> per_dim(d);

  // Restrict the sweep to the canonical rows whose kernel support can reach
  // the scanned cells on the KDE's primary axis; the rows skipped are
  // exactly ones the per-dimension reject below would discard, so cell_mass
  // accumulates bit-identically to a full sample sweep.
  const size_t axis = kde.primary_axis();
  const auto [row_begin, row_end] = kde.CandidateRows(
      cell_lo[axis].front(), cell_lo[axis].back() + side);
  const FlatPoints& sample = kde.sample();
  for (size_t row = row_begin; row < row_end; ++row) {
    const double* t = sample.Row(row);
    // Cheap reject: kernel support vs the bounding box of the listed cells.
    bool overlaps = true;
    for (size_t dim = 0; dim < d && overlaps; ++dim) {
      const double lo = cell_lo[dim].front();
      const double hi = cell_lo[dim].back() + side;
      overlaps = t[dim] + bandwidths[dim] > lo &&
                 t[dim] - bandwidths[dim] < hi;
    }
    if (!overlaps) continue;

    for (size_t dim = 0; dim < d; ++dim) {
      auto& masses = per_dim[dim];
      masses.assign(cell_lo[dim].size(), 0.0);
      for (size_t j = 0; j < cell_lo[dim].size(); ++j) {
        masses[j] = kernels[dim].MassInInterval(t[dim], cell_lo[dim][j],
                                                cell_lo[dim][j] + side);
      }
    }
    // Outer product accumulation (row-major over dimensions).
    for (size_t c = 0; c < total_cells; ++c) {
      double m = 1.0;
      size_t rest = c;
      for (size_t dim = d; dim-- > 0 && m > 0.0;) {
        m *= per_dim[dim][rest % cell_lo[dim].size()];
        rest /= cell_lo[dim].size();
      }
      cell_mass[c] += m;
    }
  }

  const double inv_n = 1.0 / static_cast<double>(kde.sample_size());
  double sum1 = 0.0, sum2 = 0.0, sum3 = 0.0;
  for (double m : cell_mass) {
    const double s = m * inv_n;
    sum1 += s;
    sum2 += s * s;
    sum3 += s * s * s;
  }
  return MdefFromMasses(kde.BallProbability(p, config.counting_radius), sum1,
                        sum2, sum3, total_cells, config);
}

bool IsMdefOutlier(const DistributionEstimator& model, const Point& p,
                   const MdefConfig& config) {
  return ComputeMdef(model, p, config).is_outlier;
}

}  // namespace sensord
