#include "core/density_model.h"

#include <algorithm>

#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/bandwidth.h"

#include "util/check.h"

namespace sensord {
namespace {

struct DensityModelMetrics {
  obs::Counter* observes;
  obs::Counter* estimator_rebuilds;
  obs::Counter* estimator_cache_hits;
  obs::Histogram* observe_ns;  // window-advance latency (timing-gated)
  obs::Histogram* rebuild_ns;  // estimator materialization (timing-gated)
};

const DensityModelMetrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const DensityModelMetrics m{
      registry.GetCounter("core.density_model.observes"),
      registry.GetCounter("core.density_model.estimator_rebuilds"),
      registry.GetCounter("core.density_model.estimator_cache_hits"),
      registry.GetHistogram("core.density_model.observe_ns",
                            obs::LatencyBoundariesNs()),
      registry.GetHistogram("core.density_model.rebuild_ns",
                            obs::LatencyBoundariesNs())};
  return m;
}

}  // namespace

DensityModel::DensityModel(const DensityModelConfig& config, Rng rng)
    : config_(config),
      sample_(config.sample_size, config.window_size, rng) {
  SENSORD_CHECK_GE(config_.dimensions, 1u);
  if (config_.prewarm_steady_state) sample_.PrewarmToSteadyState();
  sketches_.reserve(config_.dimensions);
  for (size_t i = 0; i < config_.dimensions; ++i) {
    sketches_.emplace_back(config_.window_size, config_.epsilon);
  }
}

bool DensityModel::Observe(const Point& p) {
  SENSORD_DCHECK_EQ(p.size(), config_.dimensions);
  const obs::ScopedTimer timer(Metrics().observe_ns);
  Metrics().observes->Increment();
  for (size_t i = 0; i < config_.dimensions; ++i) sketches_[i].Add(p[i]);
  return sample_.Add(p);
}

const KernelDensityEstimator& DensityModel::Estimator() const {
  SENSORD_CHECK(Ready());
  const uint64_t version = sample_.version();
  const uint64_t seen = sample_.total_seen();
  const bool stale = !cached_.has_value() ||
                     cached_sample_version_ != version ||
                     seen - cached_at_count_ >= config_.max_estimator_age;
  if (stale) {
    const obs::ScopedTimer timer(Metrics().rebuild_ns);
    Metrics().estimator_rebuilds->Increment();
    // Zero per-point-allocation rebuild (DESIGN.md §13): export the sample
    // into the warm scratch buffer, compute the spreads from it, move the
    // buffer into the new estimator, then steal the displaced estimator's
    // buffer back as the next rebuild's scratch. After the second rebuild
    // the two flat buffers just ping-pong; only O(d) vectors (spreads,
    // bandwidths, kernels) are allocated per rebuild.
    sample_.SnapshotTo(&rebuild_scratch_);
    const std::vector<double> spreads = SpreadsFrom(rebuild_scratch_);
    auto built = KernelDensityEstimator::CreateWithScottBandwidths(
        std::move(rebuild_scratch_), spreads);
    SENSORD_CHECK_OK(built.status());  // inputs are valid by construction
    if (cached_.has_value()) {
      rebuild_scratch_ = std::move(*cached_).ReleaseSampleStorage();
    }
    cached_.emplace(std::move(built).value());
    cached_sample_version_ = version;
    cached_at_count_ = seen;
  } else {
    Metrics().estimator_cache_hits->Increment();
  }
  return *cached_;
}

double DensityModel::WindowCount() const {
  const double seen = static_cast<double>(sample_.total_seen());
  const double window = static_cast<double>(config_.window_size);
  if (config_.logical_window_count > 0.0) {
    // Scale the logical population by warm-up progress so early estimates
    // do not claim a pool that has not accumulated yet.
    const double progress = std::min(1.0, seen / window);
    return config_.logical_window_count * progress;
  }
  return std::min(seen, window);
}

std::vector<double> DensityModel::StdDevs() const {
  std::vector<double> out;
  out.reserve(sketches_.size());
  for (const VarianceSketch& s : sketches_) out.push_back(s.StdDev());
  return out;
}

std::vector<double> DensityModel::BandwidthSpreads() const {
  if (!config_.robust_bandwidth || !sample_.seeded()) return StdDevs();
  sample_.SnapshotTo(&rebuild_scratch_);
  return SpreadsFrom(rebuild_scratch_);
}

std::vector<double> DensityModel::SpreadsFrom(
    const FlatPoints& snapshot) const {
  std::vector<double> spreads = StdDevs();
  if (!config_.robust_bandwidth || snapshot.empty()) return spreads;
  // Silverman's robust variant: temper each sigma with the sample IQR so
  // rare excursions do not inflate the bandwidth of the bulk. One warm
  // coordinate buffer serves every dimension (QuantileSorted interpolates
  // exactly like Quantile, so the spreads are unchanged bit for bit).
  for (size_t dim = 0; dim < spreads.size(); ++dim) {
    coord_scratch_.clear();
    for (size_t row = 0; row < snapshot.size(); ++row) {
      coord_scratch_.push_back(snapshot.At(row, dim));
    }
    std::sort(coord_scratch_.begin(), coord_scratch_.end());
    const double iqr = QuantileSorted(coord_scratch_, 0.75) -
                       QuantileSorted(coord_scratch_, 0.25);
    spreads[dim] = RobustSpread(spreads[dim], iqr);
  }
  return spreads;
}

std::vector<double> DensityModel::Means() const {
  std::vector<double> out;
  out.reserve(sketches_.size());
  for (const VarianceSketch& s : sketches_) out.push_back(s.Mean());
  return out;
}

void DensityModel::Serialize(SnapshotWriter* writer) const {
  writer->PutU32(static_cast<uint32_t>(config_.dimensions));
  sample_.Serialize(writer);
  for (const VarianceSketch& s : sketches_) s.Serialize(writer);
}

bool DensityModel::Restore(SnapshotReader* reader) {
  const uint32_t dimensions = reader->TakeU32();
  if (!reader->ok() || dimensions != config_.dimensions) return false;
  if (!sample_.Restore(reader)) return false;
  for (VarianceSketch& s : sketches_) {
    if (!s.Restore(reader)) return false;
  }
  cached_.reset();
  cached_sample_version_ = 0;
  cached_at_count_ = 0;
  return true;
}

size_t DensityModel::MemoryBytes(size_t bytes_per_number) const {
  size_t bytes = sample_.MemoryBytes(config_.dimensions, bytes_per_number);
  for (const VarianceSketch& s : sketches_) {
    bytes += s.MemoryBytes(bytes_per_number);
  }
  return bytes;
}

size_t DensityModel::TheoreticalBoundBytes(size_t bytes_per_number) const {
  // Theorem 1: O(d(|R| + (1/eps^2) log |W|)). The sample term charges d+1
  // numbers per chain entry with the expected O(1) entries per chain taken
  // as the worst-case 2 (active + one queued replacement), matching how the
  // paper's 10KB example charges |R| directly.
  const size_t sample_numbers =
      2 * config_.sample_size * (config_.dimensions + 1) +
      config_.sample_size;
  size_t bytes = sample_numbers * bytes_per_number;
  for (const VarianceSketch& s : sketches_) {
    bytes += s.TheoreticalBoundBytes(bytes_per_number);
  }
  return bytes;
}

}  // namespace sensord
