// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Configuration structs shared by the detection algorithms. Defaults are the
// paper's experimental defaults (Section 10.2): |W| = 10000, |R| = 0.05|W|,
// f = 0.5, (45, 0.01) distance outliers, MDEF r = 0.08, alpha*r = 0.01,
// k_sigma = 3.

#ifndef SENSORD_CORE_CONFIG_H_
#define SENSORD_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace sensord {

/// Parameters of a per-node density model (chain sample + variance sketch +
/// kernel estimator).
struct DensityModelConfig {
  /// Data dimensionality d.
  size_t dimensions = 1;

  /// Arrival-count window |W| of the sample and variance sketch: the number
  /// of *locally observed* values the model summarizes. For a leaf sensor
  /// this is the paper's |W|; for a leader it is the expected number of
  /// propagated sample values corresponding to one logical window (see
  /// LeaderArrivalWindow in d3.h).
  size_t window_size = 10000;

  /// Sample size |R| (number of kernels). Paper default: 0.05 |W|.
  size_t sample_size = 500;

  /// Relative error budget of the windowed variance sketch.
  double epsilon = 0.2;

  /// The population |W_p| the model's neighbourhood counts refer to. A leaf
  /// speaks for its own window (leave 0 = use min(total_seen, window_size));
  /// a leader at level k speaks for the union of the leaf windows below it,
  /// |W_p| = |W| * fanout^(k-1), even though it only *receives* a thinned
  /// sample of that pool.
  double logical_window_count = 0.0;

  /// The cached kernel estimator is rebuilt whenever the sample changes, and
  /// at the latest after this many observations (so drifting standard
  /// deviations keep feeding Scott's rule).
  uint64_t max_estimator_age = 256;

  /// Starts the chain sample at steady-state insertion probability 1/|W|
  /// instead of the elevated early-stream rate. Used by long-horizon
  /// message-cost experiments (Figure 11) that measure stationary traffic.
  bool prewarm_steady_state = false;

  /// Bandwidth selection: false (default) = the paper's Scott's rule from
  /// the sketch standard deviation; true = Silverman's robust variant
  /// min(sigma, sample-IQR/1.349) per dimension, which keeps spiky
  /// distributions (e.g. a machine idling at one operating point) from
  /// being over-smoothed. An extension beyond the paper; see the
  /// ablation_estimators bench.
  bool robust_bandwidth = false;
};

/// The paper's (D, r) distance-based outlier criterion [Knorr & Ng]: a value
/// p is an outlier if fewer than `neighbor_threshold` of the window's values
/// lie within L-infinity distance `radius` of p (Section 7; the experiments
/// look for (45, 0.01)-outliers on synthetic data).
struct DistanceOutlierConfig {
  double radius = 0.01;
  double neighbor_threshold = 45.0;
};

/// The MDEF / aLOCI criterion [Papadimitriou et al.] (Sections 3 and 8):
/// p is an outlier if MDEF(p, r, alpha) > k_sigma * sigma_MDEF(p, r, alpha).
struct MdefConfig {
  /// Sampling neighbourhood radius r: how far around p the "local" density
  /// statistics are collected.
  double sampling_radius = 0.08;

  /// Counting neighbourhood radius alpha*r: the scale at which each value's
  /// own neighbour count is measured. The domain is tiled into cells of side
  /// 2*alpha*r (Figure 3).
  double counting_radius = 0.01;

  /// Significance cut-off k_sigma (paper: 3).
  double k_sigma = 3.0;

  /// Guard: if the sampling neighbourhood holds less probability mass than
  /// this, the statistics are meaningless and p is not flagged.
  double min_neighborhood_mass = 1e-9;
};

}  // namespace sensord

#endif  // SENSORD_CORE_CONFIG_H_
