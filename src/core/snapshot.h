// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Versioned, checksummed snapshots of volatile node state.
//
// The crash-recovery subsystem (DESIGN.md §10) persists each node's model
// state to the simulator's per-node "flash" on a virtual-time checkpoint
// cadence, so an amnesia restart resumes from the last checkpoint instead
// of a cold model. Shylendra et al. ("Low Power Unsupervised Anomaly
// Detection by Non-Parametric Modeling of Sensor Statistics") make the case
// that exactly this state — a bounded sample plus a few sketch scalars — is
// small enough to persist cheaply on a mote.
//
// The encoding is deliberately primitive: little-endian fixed-width fields
// appended in the order the owning component's Serialize() writes them, so a
// snapshot is decodable only by the matching Restore() at the matching
// payload version. What makes it safe is the frame added by Finish() and
// verified by Open():
//
//   magic 'SNSD' | format version | payload version | payload length
//   | payload bytes | FNV-1a(64) over everything before the checksum
//
// A snapshot that fails magic, version, length or checksum validation is
// rejected as a whole (Open returns an error) and the node falls back to a
// cold restart — a torn flash write must never half-restore a model.
//
// Determinism note: Serialize() implementations must never iterate an
// unordered container into the writer (sensord_lint's determinism-unordered
// rule treats Put*/Serialize as sinks). Components whose bookkeeping lives
// in hash maps (e.g. ChainSample's pending indices) serialize their ordered
// ground truth and rebuild the maps in Restore().
//
// The writer/reader accessors are header-inline so that the components
// being serialized (stream/, stats/) can use them without linking against
// sensord_core; only the framing (Finish/Open), which the node-level
// SaveState/RestoreState implementations in core/ call, lives in
// snapshot.cc.

#ifndef SENSORD_CORE_SNAPSHOT_H_
#define SENSORD_CORE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/math_utils.h"
#include "util/rng.h"
#include "util/status.h"

namespace sensord {

/// Appends fixed-width little-endian fields to a byte buffer; Finish()
/// frames the payload with magic, versions, length and checksum.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;

  void PutU8(uint8_t v) { bytes_.push_back(v); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutPoint(const Point& p) {
    PutU32(static_cast<uint32_t>(p.size()));
    for (double c : p) PutDouble(c);
  }

  void PutDoubles(const std::vector<double>& v) {
    PutU32(static_cast<uint32_t>(v.size()));
    for (double x : v) PutDouble(x);
  }

  void PutRng(const Rng& rng) {
    const Rng::State state = rng.SaveState();
    for (uint64_t word : state.s) PutU64(word);
    PutBool(state.has_cached_gaussian);
    PutDouble(state.cached_gaussian);
  }

  /// Payload bytes written so far (pre-framing), for size accounting.
  size_t size() const { return bytes_.size(); }

  /// Frames the payload and returns the complete snapshot. The writer is
  /// consumed. `payload_version` identifies the owning component's layout;
  /// Open() rejects a mismatch.
  std::vector<uint8_t> Finish(uint32_t payload_version) &&;

 private:
  std::vector<uint8_t> bytes_;
};

/// Reads fields in the order they were written. Construction via Open()
/// validates the frame (magic, versions, length, checksum); after that a
/// read past the payload end trips the reader into the failed state (reads
/// return zero values) rather than touching out-of-bounds memory — callers
/// check ok() once after the last Take.
class SnapshotReader {
 public:
  /// Validates `snapshot`'s frame and positions the reader at the start of
  /// the payload. Returns InvalidArgument on any mismatch (truncated frame,
  /// bad magic, unknown format version, payload version != expected, length
  /// inconsistency, checksum failure).
  static StatusOr<SnapshotReader> Open(const std::vector<uint8_t>& snapshot,
                                       uint32_t expected_payload_version);

  uint8_t TakeU8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }

  uint32_t TakeU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  uint64_t TakeU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    }
    return v;
  }

  bool TakeBool() { return TakeU8() != 0; }

  double TakeDouble() {
    const uint64_t bits = TakeU64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Point TakePoint() {
    const uint32_t n = TakeU32();
    if (!Need(static_cast<size_t>(n) * 8)) return {};
    Point p;
    p.reserve(n);
    for (uint32_t i = 0; i < n; ++i) p.push_back(TakeDouble());
    return p;
  }

  std::vector<double> TakeDoubles() {
    const uint32_t n = TakeU32();
    if (!Need(static_cast<size_t>(n) * 8)) return {};
    std::vector<double> v;
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i) v.push_back(TakeDouble());
    return v;
  }

  Rng TakeRng() {
    Rng::State state;
    for (uint64_t& word : state.s) word = TakeU64();
    state.has_cached_gaussian = TakeBool();
    state.cached_gaussian = TakeDouble();
    Rng rng;
    rng.LoadState(state);
    return rng;
  }

  /// True iff no read overran the payload so far.
  bool ok() const { return ok_; }

  /// True once every payload byte has been consumed (and ok()).
  bool AtEnd() const { return ok_ && pos_ == end_; }

 private:
  SnapshotReader(const uint8_t* data, size_t pos, size_t end)
      : data_(data), pos_(pos), end_(end) {}

  bool Need(size_t n) {
    if (!ok_ || end_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;  // not owned; the snapshot outlives the reader
  size_t pos_;
  size_t end_;
  bool ok_ = true;
};

/// FNV-1a (64-bit) over `bytes` — the snapshot frame checksum. Exposed for
/// tests that corrupt frames deliberately.
uint64_t SnapshotChecksum(const uint8_t* bytes, size_t size);

}  // namespace sensord

#endif  // SENSORD_CORE_SNAPSHOT_H_
