// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Faulty-sensor detection (Section 9): "a parent sensor can compute the
// difference between the estimator models received from its children, to
// determine if any of them is faulty", plus region-level warnings of the
// form "warn if the number of outliers in a region exceeds T over the most
// recent window W".

#ifndef SENSORD_CORE_FAULTY_SENSOR_H_
#define SENSORD_CORE_FAULTY_SENSOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "stats/estimator.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Parameters of the model-divergence fault check.
struct FaultySensorConfig {
  /// Grid resolution for the JS computation (per dimension).
  size_t grid_cells = 64;
  /// A child whose JS divergence (bits) from its peers' average model
  /// exceeds this is flagged. One broken sensor among k children shifts a
  /// healthy child's divergence by roughly the broken sensor's 1/(k-1)
  /// weight in the peer average (~0.2 bits at k = 4), while the broken
  /// child itself diverges by ~1 bit; the default separates the two.
  double js_threshold = 0.35;
};

/// One child's verdict.
struct FaultVerdict {
  size_t child_index = 0;
  double js_to_peers = 0.0;  ///< JS divergence to the average of the others
  bool flagged = false;
};

/// Compares every child model with the average of its peers' models (the
/// child itself excluded, so one broken sensor cannot mask itself) and
/// flags divergent children.
/// Returns InvalidArgument if fewer than 3 children are given (with 2 the
/// comparison is symmetric and cannot attribute blame) or dimensionalities
/// differ.
StatusOr<std::vector<FaultVerdict>> DetectFaultySensors(
    const std::vector<const DistributionEstimator*>& children,
    const FaultySensorConfig& config);

/// Stuck-at transducer quarantine, the history-bearing half of the ingest
/// validation firewall (data/validate.h): a run of identical readings
/// longer than the threshold quarantines the stream until it moves again.
/// A constant reading is *legitimate* in small doses — hence quarantine
/// lives here with the other model-level fault judgements, keyed on run
/// length, rather than in the stateless value checks.
class StuckSensorDetector {
 public:
  /// Quarantine after `run_threshold` consecutive identical readings
  /// (i.e. the threshold-plus-first repeat is the first one rejected).
  /// 0 disables the detector entirely: ShouldQuarantine is always false.
  explicit StuckSensorDetector(uint64_t run_threshold);

  /// Feeds the next reading; true iff it should be dropped as stuck.
  /// Counts quarantined readings into the ingest.rejected.stuck metric.
  bool ShouldQuarantine(const Point& reading);

  /// True while the stream is quarantined (the last reading was dropped).
  bool quarantined() const { return quarantined_; }

  /// Readings dropped so far.
  uint64_t rejected() const { return rejected_; }

 private:
  uint64_t run_threshold_;
  Point last_;
  uint64_t run_length_ = 0;
  bool quarantined_ = false;
  uint64_t rejected_ = 0;
};

/// Sliding-time-window counter of outlier events in a region, for queries
/// like "warn if more than T outliers in the last W seconds".
class OutlierRateMonitor {
 public:
  /// Pre: window_seconds > 0.
  explicit OutlierRateMonitor(double window_seconds);

  /// Records an outlier event at time `t` (non-decreasing across calls).
  void RecordOutlier(double t);

  /// Number of recorded events in (t - window, t].
  size_t CountAt(double t) const;

  /// True iff CountAt(t) > threshold.
  bool ExceedsThreshold(double t, size_t threshold) const {
    return CountAt(t) > threshold;
  }

 private:
  // Drops events that have slid out of the window ending at `t`.
  void Expire(double t) const;

  double window_seconds_;
  mutable std::deque<double> events_;
};

}  // namespace sensord

#endif  // SENSORD_CORE_FAULTY_SENSOR_H_
