#include "core/range_query.h"

#include <vector>

#include "util/check.h"


namespace sensord {

RangeQueryEngine::RangeQueryEngine(const DistributionEstimator* estimator,
                                   double window_count)
    : estimator_(estimator), window_count_(window_count) {
  SENSORD_CHECK(estimator_ != nullptr);
  SENSORD_CHECK_GE(window_count_, 0.0);
}

double RangeQueryEngine::Selectivity(const Point& lo, const Point& hi) const {
  return estimator_->BoxProbability(lo, hi);
}

double RangeQueryEngine::Count(const Point& lo, const Point& hi) const {
  return Selectivity(lo, hi) * window_count_;
}

StatusOr<double> RangeQueryEngine::Average(size_t dim, const Point& lo,
                                           const Point& hi,
                                           size_t slices) const {
  SENSORD_CHECK_LT(dim, estimator_->dimensions());
  SENSORD_CHECK_GE(slices, 1u);
  const double width = (hi[dim] - lo[dim]) / static_cast<double>(slices);
  if (width <= 0.0) {
    return Status::InvalidArgument("degenerate query box");
  }
  // All slices go to the estimator as one batch: a single pruned sweep of
  // the union box's candidate rows for the KDE instead of one per slice.
  std::vector<Point> slice_lo(slices, lo), slice_hi(slices, hi);
  for (size_t s = 0; s < slices; ++s) {
    slice_lo[s][dim] = lo[dim] + static_cast<double>(s) * width;
    slice_hi[s][dim] = slice_lo[s][dim] + width;
  }
  std::vector<double> masses;
  estimator_->BoxProbabilityBatch(slice_lo, slice_hi, &masses);
  double mass_total = 0.0;
  double weighted = 0.0;
  for (size_t s = 0; s < slices; ++s) {
    mass_total += masses[s];
    weighted += masses[s] * (slice_lo[s][dim] + 0.5 * width);
  }
  if (mass_total <= 1e-12) {
    return Status::NotFound("query box holds no probability mass");
  }
  return weighted / mass_total;
}

TemporalModelStore::TemporalModelStore(size_t capacity)
    : capacity_(capacity) {
  SENSORD_CHECK_GE(capacity_, 1u);
}

void TemporalModelStore::AddSnapshot(double t,
                                     KernelDensityEstimator estimator,
                                     double window_count) {
  SENSORD_DCHECK(snapshots_.empty() || snapshots_.back().time <= t);
  snapshots_.push_back(Snapshot{t, std::move(estimator), window_count});
  while (snapshots_.size() > capacity_) snapshots_.pop_front();
}

StatusOr<double> TemporalModelStore::SelectivityOver(double t1, double t2,
                                                     const Point& lo,
                                                     const Point& hi) const {
  double sum = 0.0;
  size_t n = 0;
  for (const Snapshot& s : snapshots_) {
    if (s.time < t1 || s.time > t2) continue;
    sum += s.estimator.BoxProbability(lo, hi);
    ++n;
  }
  if (n == 0) {
    return Status::NotFound("no model snapshot in the requested interval");
  }
  return sum / static_cast<double>(n);
}

StatusOr<double> TemporalModelStore::AverageOver(double t1, double t2,
                                                 size_t dim, const Point& lo,
                                                 const Point& hi,
                                                 size_t slices) const {
  double mass_total = 0.0;
  double weighted = 0.0;
  size_t n = 0;
  for (const Snapshot& s : snapshots_) {
    if (s.time < t1 || s.time > t2) continue;
    ++n;
    RangeQueryEngine engine(&s.estimator, s.window_count);
    const double mass = s.estimator.BoxProbability(lo, hi);
    if (mass <= 1e-12) continue;
    auto avg = engine.Average(dim, lo, hi, slices);
    if (!avg.ok()) continue;
    mass_total += mass * s.window_count;
    weighted += *avg * mass * s.window_count;
  }
  if (n == 0) {
    return Status::NotFound("no model snapshot in the requested interval");
  }
  if (mass_total <= 1e-12) {
    return Status::NotFound("query box empty throughout the interval");
  }
  return weighted / mass_total;
}

}  // namespace sensord
