// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The MDEF (Multi-Granularity Deviation Factor) outlier test over a
// distribution estimate — the isMDEFOutlier() of the paper's Figure 4,
// following the aLOCI construction of Papadimitriou et al. that the paper
// adopts (Sections 3 and 8, Figure 3).
//
// The domain is tiled into cells of side 2*alpha*r. For a value p:
//   * its counting-neighbourhood mass  n(p, ar)    = ball query around p,
//   * for every cell j whose centre lies within the sampling ball B(p, r),
//     the cell mass s_j = box query over the cell,
//   * the object-weighted average count  n_hat = sum s_j^2 / sum s_j,
//   * the object-weighted deviation      sigma = sqrt(sum s_j^3 / sum s_j
//                                                      - n_hat^2),
//   * MDEF = 1 - n(p, ar) / n_hat,   sigma_MDEF = sigma / n_hat,
// and p is flagged iff MDEF > k_sigma * sigma_MDEF (Eq. 9).
//
// All quantities are ratios of masses, so the same code serves kernel
// estimators (probability mass) and the exact empirical distribution used
// by the BruteForce-M baseline (fractional counts) — by construction the
// two agree whenever the kernel estimate is accurate.

#ifndef SENSORD_CORE_MDEF_H_
#define SENSORD_CORE_MDEF_H_

#include "core/config.h"
#include "stats/estimator.h"
#include "util/math_utils.h"

namespace sensord {

/// Full diagnostics of one MDEF evaluation.
struct MdefResult {
  double counting_mass = 0.0;  ///< n(p, alpha*r), as probability mass
  double avg_mass = 0.0;       ///< n_hat, object-weighted average cell mass
  double sigma_mass = 0.0;     ///< object-weighted std-dev of cell mass
  double mdef = 0.0;           ///< 1 - counting_mass / avg_mass
  double sigma_mdef = 0.0;     ///< sigma_mass / avg_mass
  bool is_outlier = false;     ///< mdef > k_sigma * sigma_mdef
  size_t cells_considered = 0;
};

/// Assembles the MDEF statistics from raw mass moments: `counting_mass` is
/// n(p, alpha*r) and sum1/sum2/sum3 are the first three power sums of the
/// cell masses s_j over the sampling neighbourhood. Shared by the online
/// estimator path, the brute-force baseline and the evaluation harness so
/// that all three apply the identical criterion.
MdefResult MdefFromMasses(double counting_mass, double sum1, double sum2,
                          double sum3, size_t cells, const MdefConfig& config);

/// Evaluates the MDEF criterion for value p against `model`.
/// Pre: p.size() == model.dimensions(); config radii in (0, 1),
/// counting_radius <= sampling_radius.
MdefResult ComputeMdef(const DistributionEstimator& model, const Point& p,
                       const MdefConfig& config);

/// Fast path for kernel estimators: exploits the product-kernel structure —
/// each kernel's mass over a grid cell factors into per-dimension interval
/// masses, so the whole cell grid costs O(|R| * (sum_d cells_d + prod_d
/// cells_d)) instead of O(|R| * d * prod_d cells_d) box queries. Identical
/// statistics to the generic overload up to floating-point association.
MdefResult ComputeMdef(const class KernelDensityEstimator& kde,
                       const Point& p, const MdefConfig& config);

/// Shorthand for ComputeMdef(...).is_outlier.
bool IsMdefOutlier(const DistributionEstimator& model, const Point& p,
                   const MdefConfig& config);

}  // namespace sensord

#endif  // SENSORD_CORE_MDEF_H_
