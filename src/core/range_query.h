// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Online approximate query processing over density models (Section 9):
// "What is the average temperature in region (X, Y) during the time interval
// [t1, t2]?" — answered from estimator models instead of raw data.
//
// RangeQueryEngine answers selectivity / count / conditional-average queries
// against one estimator snapshot; TemporalModelStore retains timestamped
// snapshots so queries can constrain time as well.

#ifndef SENSORD_CORE_RANGE_QUERY_H_
#define SENSORD_CORE_RANGE_QUERY_H_

#include <deque>
#include <optional>

#include "stats/estimator.h"
#include "stats/kde.h"
#include "util/math_utils.h"
#include "util/status.h"

namespace sensord {

/// Answers box queries against a distribution estimate of a window.
/// The engine does not own the estimator; it must outlive the engine.
class RangeQueryEngine {
 public:
  /// `window_count` is the population the estimator speaks for (used to
  /// turn fractions into counts). Pre: window_count >= 0.
  RangeQueryEngine(const DistributionEstimator* estimator,
                   double window_count);

  /// Fraction of the window inside [lo, hi].
  /// Pre: component-wise lo <= hi, dimensionalities match.
  double Selectivity(const Point& lo, const Point& hi) const;

  /// Estimated number of window values inside [lo, hi].
  double Count(const Point& lo, const Point& hi) const;

  /// Estimated average of coordinate `dim` over the window values inside
  /// [lo, hi], computed by slicing the box along `dim` into `slices` strips
  /// and weighting strip centres by strip mass. Returns NotFound if the box
  /// holds (essentially) no mass.
  /// Pre: dim < dimensions, slices >= 1.
  StatusOr<double> Average(size_t dim, const Point& lo, const Point& hi,
                           size_t slices = 64) const;

 private:
  const DistributionEstimator* estimator_;
  double window_count_;
};

/// A bounded history of timestamped model snapshots, enabling queries with
/// temporal predicates: the answer aggregates over every snapshot whose
/// timestamp falls in [t1, t2].
class TemporalModelStore {
 public:
  /// Keeps at most `capacity` snapshots; older ones are evicted.
  /// Pre: capacity >= 1.
  explicit TemporalModelStore(size_t capacity);

  /// Records a snapshot taken at time `t` describing `window_count` values.
  /// Pre: timestamps are non-decreasing across calls.
  void AddSnapshot(double t, KernelDensityEstimator estimator,
                   double window_count);

  size_t size() const { return snapshots_.size(); }

  /// Average selectivity of [lo, hi] across snapshots in [t1, t2].
  /// Returns NotFound if no snapshot falls in the interval.
  StatusOr<double> SelectivityOver(double t1, double t2, const Point& lo,
                                   const Point& hi) const;

  /// Average of coordinate `dim` over values in [lo, hi], aggregated across
  /// snapshots in [t1, t2] weighted by per-snapshot box mass.
  /// Returns NotFound if no snapshot falls in the interval or the box is
  /// empty throughout.
  StatusOr<double> AverageOver(double t1, double t2, size_t dim,
                               const Point& lo, const Point& hi,
                               size_t slices = 64) const;

 private:
  struct Snapshot {
    double time;
    KernelDensityEstimator estimator;
    double window_count;
  };

  size_t capacity_;
  std::deque<Snapshot> snapshots_;
};

}  // namespace sensord

#endif  // SENSORD_CORE_RANGE_QUERY_H_
