// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// The reporting hook: detection algorithms call an OutlierObserver whenever
// they flag a value. Applications attach alerting or actuation; the
// evaluation harness attaches precision/recall scoring against brute-force
// ground truth.

#ifndef SENSORD_CORE_OUTLIER_OBSERVER_H_
#define SENSORD_CORE_OUTLIER_OBSERVER_H_

#include <cstdint>

#include "net/event_queue.h"
#include "net/message.h"
#include "util/math_utils.h"

namespace sensord {

/// Which detector produced an event.
enum class DetectorKind {
  kD3,    ///< distance-based, distributed (Section 7)
  kMgdd,  ///< MDEF-based, leaf detection against the global model (Section 8)
};

/// Why the detector decided what it decided (DESIGN.md §11). Attached to
/// every OutlierEvent so alerting and post-hoc analysis can reconstruct the
/// decision without replaying the run: the statistic that crossed the
/// threshold, the model state behind it, and the causal trace the decision
/// belongs to (joinable against the span JSONL of obs/trace.h).
struct OutlierProvenance {
  /// The decision statistic: D3's neighbor-count estimate N(p, r), or
  /// MGDD's MDEF value.
  double estimate = 0.0;
  /// The configured bound the estimate was compared against.
  double threshold = 0.0;
  /// Observations behind the deciding model (leaf model for leaf decisions,
  /// the global model's version tag for MGDD leaf checks).
  uint64_t model_version = 0;
  /// Age of the stalest supporting input in virtual seconds: for a D3
  /// leader, the longest child silence; for an MGDD leaf, the global
  /// model's age. 0 when the deciding model is the node's own, updated
  /// this instant.
  double staleness_s = 0.0;
  /// Trace id of the causal chain this decision belongs to; 0 when the
  /// originating message carried no context.
  uint64_t trace_id = 0;
};

/// One flagged value.
struct OutlierEvent {
  DetectorKind detector = DetectorKind::kD3;
  NodeId node = kNoNode;  ///< node that flagged the value
  int level = 1;          ///< hierarchy level of that node
  Point value;            ///< the flagged observation
  SimTime time = 0.0;     ///< simulation time of the detection
  NodeId source_leaf = kNoNode;  ///< leaf that sensed the value
  uint64_t source_seq = 0;       ///< that leaf's reading counter

  /// True if the detecting node considered its own inputs stale at detection
  /// time (a child silent, or a global model past its staleness threshold) —
  /// the event is best-effort, not backed by fresh data. See the
  /// staleness_threshold knobs in D3Options / MgddOptions.
  bool degraded = false;

  /// Decision provenance (estimate, threshold, model version, trace id).
  OutlierProvenance provenance = {};
};

/// Receives detection events. Implementations must tolerate being called
/// from within message handling (i.e., synchronously inside the event loop).
class OutlierObserver {
 public:
  virtual ~OutlierObserver() = default;
  virtual void OnOutlierDetected(const OutlierEvent& event) = 0;
};

}  // namespace sensord

#endif  // SENSORD_CORE_OUTLIER_OBSERVER_H_
