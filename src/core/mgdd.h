// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// MGDD — Multi Granular Deviation Detection (Section 8, Figure 4).
//
// MDEF-based outliers are non-decomposable (the paper's observation that
// Theorem 3 does not hold for them), so detection happens only at the leaf
// sensors — but against a *global* density model describing the whole
// region. The global model lives at the root: sample values propagate up
// with probability f per hop (as in D3), and whenever the root's sample
// changes, the change is pushed back down through the intermediate leaders
// to every leaf ("updates of R^g and sigma^g to all the children").
//
// Two update policies (Section 8.1):
//  * kEveryChange   — each root sample insertion is broadcast immediately;
//    the per-observation message cost is the (f*l)^n of the paper.
//  * kOnModelChange — the root pushes a full snapshot only when the JS
//    divergence between the current model and the last-pushed model exceeds
//    a threshold; leaves see fewer updates when the distribution is
//    stationary (the paper's communication optimization).
//
// Replica consistency: the root replicates its sample as a fixed array of
// |R^g| slots (slot i = chain i's active element) and broadcasts slot
// diffs, so every leaf holds an exact copy of the root's current sample.

#ifndef SENSORD_CORE_MGDD_H_
#define SENSORD_CORE_MGDD_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/density_model.h"
#include "core/faulty_sensor.h"
#include "core/mdef.h"
#include "core/outlier_observer.h"
#include "core/protocol.h"
#include "data/validate.h"
#include "obs/trace_context.h"
#include "net/network.h"
#include "net/node.h"
#include "stats/kde.h"
#include "util/rng.h"

namespace sensord {

/// When the root pushes global-model updates downward.
enum class GlobalUpdateMode {
  kEveryChange,   ///< push slot diffs on every root sample change
  kOnModelChange  ///< push a full snapshot when JS(current, last) > threshold
};

/// Parameters of an MGDD deployment.
struct MgddOptions {
  /// Local model at each node (leaves summarize their own stream; leaders —
  /// including the root — summarize the propagated sample stream). The
  /// root's model is the global model.
  DensityModelConfig model;

  /// The MDEF criterion evaluated at the leaves.
  MdefConfig mdef;

  /// Upward sample propagation probability f.
  double sample_fraction = 0.5;

  GlobalUpdateMode update_mode = GlobalUpdateMode::kEveryChange;

  /// kOnModelChange: push when JS divergence (bits) exceeds this.
  double push_js_threshold = 0.02;

  /// kOnModelChange: grid resolution for the JS computation.
  size_t js_grid_cells = 64;

  /// Observations a leaf must absorb before flagging values.
  uint64_t min_observations = 1000;

  /// Graceful degradation: a leaf whose global-model replica has not been
  /// refreshed for longer than this many simulated seconds keeps detecting
  /// but marks itself (and its events) degraded — MDEF against a stale
  /// global model is best-effort. Crossing into the degraded state bumps
  /// `core.degraded_windows`. Infinity disables the check.
  double staleness_threshold = std::numeric_limits<double>::infinity();

  /// Ingest validation firewall applied to every leaf reading before the
  /// local model sees it (data/validate.h). Defaults accept all finite
  /// readings, so clean streams are unaffected.
  IngestPolicy ingest;
};

/// A leaf sensor running MGDD's LeafProcess: maintains its local model,
/// holds a replica of the global sample, and evaluates the MDEF criterion
/// for every arriving value against the global model.
class MgddLeafNode : public Node {
 public:
  MgddLeafNode(const MgddOptions& options, Rng rng, OutlierObserver* observer);

  void OnReading(const Point& value) override;
  void HandleMessage(const Message& msg) override;

  // Crash recovery (DESIGN.md §10): the checkpoint holds the local model,
  // the propagation rng, and the global-model replica; a restarted leaf
  // announces its rejoin upward so the root refreshes the replica.
  std::vector<uint8_t> SaveState() const override;
  bool RestoreState(const std::vector<uint8_t>& bytes) override;
  void ResetVolatileState() override;
  void OnRestart(bool restored_from_checkpoint, uint32_t incarnation) override;

  const DensityModel& local_model() const { return local_model_; }

  /// True between an amnesia restart and the leaf being capable again
  /// (local model warm and a global replica in hand).
  bool recovering() const { return recovering_; }

  /// True once at least one global update has been received.
  bool HasGlobalModel() const { return !global_sample_.empty(); }

  /// The replica's current estimator. Pre: HasGlobalModel().
  const KernelDensityEstimator& GlobalEstimator() const;

  /// Number of global updates applied (for experiments).
  uint64_t global_updates_received() const { return updates_received_; }

  /// True if the replica is older than options.staleness_threshold as of
  /// the current simulation time (always false before the first update —
  /// there is no replica to be stale yet; MDEF is simply off).
  bool degraded() const;

 private:
  // Announces rejoin/recovery to the parent.
  void SendAnnounce(bool restored_from_checkpoint, bool recovered);
  // Closes the recovery window once the leaf is capable again.
  void MaybeFinishRecovery();

  MgddOptions options_;
  Rng boot_rng_;  // construction-time rng, replayed by ResetVolatileState
  DensityModel local_model_;
  Rng rng_;
  IngestValidator validator_;
  StuckSensorDetector stuck_;
  OutlierObserver* observer_;

  bool recovering_ = false;
  SimTime restart_time_ = 0.0;

  // Replica of the root's sample and sigmas.
  std::vector<Point> global_sample_;  // indexed by slot; may be sparse early
  std::vector<bool> slot_valid_;
  std::vector<double> global_stddevs_;
  uint64_t updates_received_ = 0;
  uint64_t replica_version_ = 0;
  SimTime last_update_time_ = 0.0;
  bool degraded_state_ = false;

  mutable std::optional<KernelDensityEstimator> cached_global_;
  mutable uint64_t cached_version_ = 0;
};

/// A leader node running MGDD's BlackProcess: relays sample values upward
/// (gated on insertion into its own sample, probability f), relays global
/// updates downward, and — if it is the root — originates global updates.
class MgddInternalNode : public Node {
 public:
  MgddInternalNode(const MgddOptions& options, Rng rng);

  void HandleMessage(const Message& msg) override;

  // Crash recovery: the checkpoint is the model, the rng, and the broadcast
  // version counter. A rejoin announce arriving from below makes the root
  // re-broadcast a full snapshot so the rejoined subtree's replicas heal.
  std::vector<uint8_t> SaveState() const override;
  bool RestoreState(const std::vector<uint8_t>& bytes) override;
  void ResetVolatileState() override;
  void OnRestart(bool restored_from_checkpoint, uint32_t incarnation) override;

  const DensityModel& model() const { return model_; }

  /// Number of global updates this node originated (root only).
  uint64_t updates_originated() const { return updates_originated_; }

 private:
  void HandleSampleValue(const Point& value);
  void HandleRejoinAnnounce(const Message& msg);
  void MaybeOriginateUpdate();
  // Pushes every slot of the current sample to the children (root only).
  void BroadcastFullSnapshot();
  // Roots a new update chain (emits the originate span) and returns the
  // trace context the broadcast stamps onto every child copy.
  obs::TraceContext OriginateUpdateContext(uint64_t version);
  void BroadcastToChildren(const GlobalModelUpdatePayload& payload,
                           const obs::TraceContext& ctx);

  MgddOptions options_;
  Rng boot_rng_;  // construction-time rng, replayed by ResetVolatileState
  DensityModel model_;
  Rng rng_;

  // Root bookkeeping: the sample as last broadcast, slot by slot.
  std::vector<Point> last_broadcast_sample_;
  std::optional<KernelDensityEstimator> last_pushed_estimator_;
  uint64_t update_version_ = 0;
  uint64_t updates_originated_ = 0;
  uint64_t last_sample_version_ = 0;
};

}  // namespace sensord

#endif  // SENSORD_CORE_MGDD_H_
