#include "core/d3.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/detection_telemetry.h"
#include "core/distance_outlier.h"
#include "core/protocol.h"
#include "core/snapshot.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

#include "util/check.h"
#include "util/staging.h"

namespace sensord {
namespace {

struct D3Metrics {
  obs::Counter* leaf_flags;            // values flagged at the leaves
  obs::Counter* leaf_propagations;     // f-gated sample values sent upward
  obs::Counter* parent_propagations;   // ditto, from intermediate leaders
  obs::Counter* parent_sample_arrivals;  // absorbed without an outlier test:
                                         // the re-checks Theorem 3 saves
  obs::Counter* parent_rechecks;       // child-flagged values re-evaluated
  obs::Counter* parent_confirms;       // re-checks that upheld the flag
};

const D3Metrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const D3Metrics m{
      registry.GetCounter("core.d3.leaf.flags"),
      registry.GetCounter("core.d3.leaf.propagations"),
      registry.GetCounter("core.d3.parent.propagations"),
      registry.GetCounter("core.d3.parent.sample_arrivals"),
      registry.GetCounter("core.d3.parent.rechecks"),
      registry.GetCounter("core.d3.parent.confirms")};
  return m;
}

// Shared with mgdd.cc by name: degraded-state entries of any detector.
obs::Counter* DegradedWindowsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("core.degraded_windows");
  return counter;
}

// Rejoin-protocol telemetry, shared with mgdd.cc by name.
struct RejoinMetrics {
  obs::Counter* announces;  // rejoin/recovered announces sent upward
  obs::Counter* resyncs;    // model resync summaries sent to children
  obs::Histogram* ttr_s;    // restart -> capability, virtual seconds
};

const RejoinMetrics& Rejoin() {
  auto& registry = obs::MetricsRegistry::Global();
  static const RejoinMetrics m{
      registry.GetCounter("recovery.rejoin_announces"),
      registry.GetCounter("recovery.rejoin_resyncs"),
      registry.GetHistogram("recovery.time_to_recover_s",
                            obs::DurationBoundariesS())};
  return m;
}

// Snapshot payload versions (core/snapshot.h frame field) of the D3 node
// checkpoints. Bump on layout change.
constexpr uint32_t kD3LeafSnapshotVersion = 1;
constexpr uint32_t kD3ParentSnapshotVersion = 2;

}  // namespace

DensityModelConfig LeaderModelConfigFor(const DensityModelConfig& leaf,
                                        size_t num_children,
                                        size_t descendant_leaves,
                                        double sample_fraction) {
  SENSORD_CHECK_GE(num_children, 1u);
  SENSORD_CHECK_GE(descendant_leaves, num_children);
  DensityModelConfig cfg = leaf;
  const double arrivals = static_cast<double>(num_children) *
                          sample_fraction *
                          static_cast<double>(leaf.sample_size);
  cfg.window_size = std::max<size_t>(
      leaf.sample_size, static_cast<size_t>(std::llround(arrivals)));
  cfg.logical_window_count = static_cast<double>(leaf.window_size) *
                             static_cast<double>(descendant_leaves);
  return cfg;
}

DensityModelConfig LeaderModelConfig(const DensityModelConfig& leaf,
                                     size_t fanout, double sample_fraction,
                                     int level) {
  SENSORD_CHECK_GE(level, 2);
  SENSORD_CHECK_GE(fanout, 2u);
  const size_t descendant_leaves = static_cast<size_t>(
      std::llround(std::pow(static_cast<double>(fanout), level - 1)));
  return LeaderModelConfigFor(leaf, fanout, descendant_leaves,
                              sample_fraction);
}

D3LeafNode::D3LeafNode(const D3Options& options, Rng rng,
                       OutlierObserver* observer)
    : options_(options), boot_rng_(rng), model_(options.model, rng.Split()),
      rng_(rng), validator_(options.ingest),
      stuck_(options.ingest.stuck_run_threshold), observer_(observer) {}

void D3LeafNode::OnReading(const Point& value) {
  // Ingest validation firewall: a NaN from a dying transducer would poison
  // the chain sample for a full window, so bad values are dropped before
  // the model ever sees them.
  if (validator_.Check(value) != IngestVerdict::kAccept) return;
  const bool was_quarantined = stuck_.quarantined();
  if (stuck_.ShouldQuarantine(value)) {
    if (!was_quarantined) {
      // Quarantine onset: record the transition and dump the black box so
      // the readings that led into the stuck run survive for analysis.
      obs::FlightRecorder::Record(id(), obs::FlightEventKind::kQuarantine,
                                  sim()->Now(), 0, 0,
                                  value.empty() ? 0.0 : value[0]);
      obs::FlightRecorder::Dump(id(), "quarantine", sim()->Now());
    }
    return;
  }

  // Figure 4, LeafProcess: update the model first, then test the value.
  const bool inserted = model_.Observe(value);
  if (recovering_) MaybeFinishRecovery();

  if (inserted && parent() != kNoNode &&
      rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().leaf_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = MakeSampleValue(value);
    sim()->Send(std::move(msg));
  }

  if (model_.total_seen() < options_.min_observations) return;
  const double estimate = EstimateNeighborCount(
      model_.Estimator(), model_.WindowCount(), value, options_.outlier);
  if (estimate >= options_.outlier.neighbor_threshold) return;  // not outlying
  Metrics().leaf_flags->Increment();
  const SimTime now = sim()->Now();
  const uint64_t seq = model_.total_seen();
  // Root of this reading's causal chain (DESIGN.md §11): the trace id is a
  // pure function of (leaf, seq), so every retransmitted or re-derived hop
  // joins the same chain and same-seed runs emit identical ids.
  const uint64_t trace =
      obs::DeriveReadingTraceId(id(), seq, obs::kTraceDetectorD3);
  const uint64_t span = obs::DeriveSpanId(trace, id(), /*salt=*/level());
  obs::EmitCausalSpan("d3.leaf.flag", id(), now, trace, span,
                      /*parent_span=*/0);
  DetectionLatencyHist(level())->Record(0.0);
  obs::DecisionRecord decision;
  decision.detector = "d3";
  decision.node = id();
  decision.level = level();
  decision.virtual_time = now;
  decision.trace_id = trace;
  decision.span_id = span;
  decision.estimate = estimate;
  decision.threshold = options_.outlier.neighbor_threshold;
  decision.model_version = seq;
  obs::EmitDecisionRecord(decision);
  if (observer_ != nullptr) {
    OutlierEvent event{DetectorKind::kD3, id(), level(), value, now, id(),
                       seq};
    event.provenance = OutlierProvenance{
        estimate, options_.outlier.neighbor_threshold, seq,
        /*staleness_s=*/0.0, trace};
    // Observer callbacks append to user-owned history in detection order;
    // staged under the parallel engine (util/staging.h).
    RunOrStage([obs = observer_, event]() { obs->OnOutlierDetected(event); });
  }
  if (parent() != kNoNode) {
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgOutlierReport;
    msg.size_numbers = value.size() + 2;
    OutlierReportPayload report{value, level(), id(), seq};
    report.ingest_time = now;
    msg.payload = report;
    msg.trace_id = trace;
    msg.trace_parent_span = span;
    sim()->Send(std::move(msg));
  }
}

void D3LeafNode::HandleMessage(const Message& msg) {
  // Leaves receive nothing in D3 except a post-restart model resync from
  // the parent; tolerate stray traffic.
  if (msg.kind != kMsgRejoinResync) return;
  if (!recovering_ || warm_started_) return;  // late/duplicate resync
  const auto& resync = std::any_cast<const RejoinResyncPayload&>(msg.payload);
  warm_started_ = true;
  for (const Point& p : resync.sample) model_.Observe(p);
  MaybeFinishRecovery();
}

std::vector<uint8_t> D3LeafNode::SaveState() const {
  SnapshotWriter writer;
  model_.Serialize(&writer);
  writer.PutRng(rng_);
  return std::move(writer).Finish(kD3LeafSnapshotVersion);
}

bool D3LeafNode::RestoreState(const std::vector<uint8_t>& bytes) {
  auto reader = SnapshotReader::Open(bytes, kD3LeafSnapshotVersion);
  if (!reader.ok()) return false;
  if (!model_.Restore(&reader.value())) return false;
  rng_ = reader.value().TakeRng();
  return reader.value().ok();
}

void D3LeafNode::ResetVolatileState() {
  // Replay construction exactly: split off the model rng from a copy of the
  // boot rng so the cold-started node draws the same random stream as a
  // freshly built one (bit-identical replay depends on this).
  Rng boot = boot_rng_;
  model_ = DensityModel(options_.model, boot.Split());
  rng_ = boot;
  validator_ = IngestValidator(options_.ingest);
  stuck_ = StuckSensorDetector(options_.ingest.stuck_run_threshold);
  recovering_ = false;
  warm_started_ = false;
  restart_time_ = 0.0;
}

void D3LeafNode::OnRestart(bool restored_from_checkpoint,
                           uint32_t incarnation) {
  (void)incarnation;  // transport stamps outgoing messages itself
  recovering_ = true;
  warm_started_ = false;
  restart_time_ = sim()->Now();
  SendAnnounce(restored_from_checkpoint, /*recovered=*/false);
  // A checkpoint restore may come back already capable.
  MaybeFinishRecovery();
}

void D3LeafNode::SendAnnounce(bool restored_from_checkpoint, bool recovered) {
  if (parent() == kNoNode) return;
  Rejoin().announces->Increment();
  RejoinAnnouncePayload ann;
  ann.incarnation = sim()->Incarnation(id());
  ann.restored_seen = model_.total_seen();
  ann.from_checkpoint = restored_from_checkpoint;
  ann.recovered = recovered;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRejoinAnnounce;
  msg.size_numbers = ann.SizeNumbers();
  msg.payload = ann;
  sim()->Send(std::move(msg));
}

void D3LeafNode::MaybeFinishRecovery() {
  if (!recovering_) return;
  if (model_.total_seen() < options_.min_observations) return;
  recovering_ = false;
  Rejoin().ttr_s->Record(sim()->Now() - restart_time_);
  SendAnnounce(/*restored_from_checkpoint=*/false, /*recovered=*/true);
}

D3ParentNode::D3ParentNode(const D3Options& options, Rng rng,
                           OutlierObserver* observer)
    : options_(options), boot_rng_(rng), model_(options.model, rng.Split()),
      rng_(rng), observer_(observer) {
  // Register the counter up front so core.degraded_windows shows up (as 0)
  // in metric dumps of healthy runs too.
  (void)DegradedWindowsCounter();
}

void D3ParentNode::OnStart() {
  // Children start "fresh" at wiring time; silence is measured from here.
  for (NodeId child : children()) last_heard_[child] = sim()->Now();
}

bool D3ParentNode::ComputeDegraded(SimTime now) const {
  // A child mid-recovery is a hole in the model regardless of how chatty
  // it is, so it degrades the parent just like a silent one.
  if (!recovering_children_.empty()) return true;
  if (!std::isfinite(options_.staleness_threshold)) return false;
  for (const auto& [child, heard] : last_heard_) {
    if (now - heard > options_.staleness_threshold) return true;
  }
  return false;
}

bool D3ParentNode::degraded() const { return ComputeDegraded(sim()->Now()); }

void D3ParentNode::HandleMessage(const Message& msg) {
  // Degradation bookkeeping: staleness is only observable when an event
  // fires, so each arriving message first settles whether a silent child
  // pushed the node into the degraded state since the last one.
  const SimTime now = sim()->Now();
  if (ComputeDegraded(now) && !degraded_state_) {
    DegradedWindowsCounter()->Increment();
    degraded_state_ = true;
  }
  const auto heard = last_heard_.find(msg.from);
  if (heard != last_heard_.end()) heard->second = now;
  degraded_state_ = ComputeDegraded(now);

  switch (msg.kind) {
    case kMsgSampleValue: {
      const auto& payload =
          *std::any_cast<const SharedSampleValue&>(msg.payload);
      HandleSampleValue(payload.value);
      break;
    }
    case kMsgOutlierReport: {
      const auto& payload =
          std::any_cast<const OutlierReportPayload&>(msg.payload);
      HandleOutlierReport(msg, payload);
      break;
    }
    case kMsgRejoinAnnounce: {
      const auto& payload =
          std::any_cast<const RejoinAnnouncePayload&>(msg.payload);
      HandleRejoinAnnounce(msg.from, payload);
      // The announce itself can open or close the recovering-children
      // degradation window; settle it with the usual rising-edge count.
      const bool now_degraded = ComputeDegraded(now);
      if (now_degraded && !degraded_state_) {
        DegradedWindowsCounter()->Increment();
      }
      degraded_state_ = now_degraded;
      break;
    }
    case kMsgRejoinResync: {
      const auto& payload =
          std::any_cast<const RejoinResyncPayload&>(msg.payload);
      HandleRejoinResync(payload);
      break;
    }
    default:
      break;  // not ours
  }
}

void D3ParentNode::HandleRejoinAnnounce(NodeId child,
                                        const RejoinAnnouncePayload& ann) {
  (void)ann.incarnation;  // dedup is the transport's job; this is telemetry
  if (ann.recovered) {
    recovering_children_.erase(child);
    return;
  }
  if (ann.restored_seen < options_.min_observations) {
    recovering_children_.insert(child);
  }
  // Resync only a cold-started child: one restored from its own checkpoint
  // already holds a model at least as fresh as anything we could send.
  if (ann.from_checkpoint || !model_.Ready()) return;
  Rejoin().resyncs->Increment();
  RejoinResyncPayload resync;
  resync.sample = model_.sample().Snapshot();
  resync.spreads = model_.BandwidthSpreads();
  resync.parent_seen = model_.total_seen();
  Message msg;
  msg.from = id();
  msg.to = child;
  msg.kind = kMsgRejoinResync;
  msg.size_numbers = resync.SizeNumbers(options_.model.dimensions);
  msg.payload = std::move(resync);
  sim()->Send(std::move(msg));
}

void D3ParentNode::HandleRejoinResync(const RejoinResyncPayload& resync) {
  if (!recovering_ || warm_started_) return;  // late/duplicate resync
  warm_started_ = true;
  // Absorbed like ordinary sample arrivals, but never re-propagated upward:
  // the grandparent already holds this data from before the crash.
  for (const Point& p : resync.sample) model_.Observe(p);
  MaybeFinishRecovery();
}

std::vector<uint8_t> D3ParentNode::SaveState() const {
  SnapshotWriter writer;
  model_.Serialize(&writer);
  writer.PutRng(rng_);
  return std::move(writer).Finish(kD3ParentSnapshotVersion);
}

bool D3ParentNode::RestoreState(const std::vector<uint8_t>& bytes) {
  auto reader = SnapshotReader::Open(bytes, kD3ParentSnapshotVersion);
  if (!reader.ok()) return false;
  if (!model_.Restore(&reader.value())) return false;
  rng_ = reader.value().TakeRng();
  return reader.value().ok();
}

void D3ParentNode::ResetVolatileState() {
  Rng boot = boot_rng_;
  model_ = DensityModel(options_.model, boot.Split());
  rng_ = boot;
  last_heard_.clear();
  recovering_children_.clear();
  degraded_state_ = false;
  recovering_ = false;
  warm_started_ = false;
  restart_time_ = 0.0;
}

void D3ParentNode::OnRestart(bool restored_from_checkpoint,
                             uint32_t incarnation) {
  (void)incarnation;
  // The silence clocks restart from the moment of rejoin, exactly as they
  // do at OnStart: a child is not "stale" for time the parent slept through.
  for (NodeId child : children()) last_heard_[child] = sim()->Now();
  recovering_ = true;
  warm_started_ = false;
  restart_time_ = sim()->Now();
  SendAnnounce(restored_from_checkpoint, /*recovered=*/false);
  MaybeFinishRecovery();
}

void D3ParentNode::SendAnnounce(bool restored_from_checkpoint,
                                bool recovered) {
  if (parent() == kNoNode) return;  // the root rejoins nobody
  Rejoin().announces->Increment();
  RejoinAnnouncePayload ann;
  ann.incarnation = sim()->Incarnation(id());
  ann.restored_seen = model_.total_seen();
  ann.from_checkpoint = restored_from_checkpoint;
  ann.recovered = recovered;
  Message msg;
  msg.from = id();
  msg.to = parent();
  msg.kind = kMsgRejoinAnnounce;
  msg.size_numbers = ann.SizeNumbers();
  msg.payload = ann;
  sim()->Send(std::move(msg));
}

void D3ParentNode::MaybeFinishRecovery() {
  if (!recovering_) return;
  if (model_.total_seen() < options_.min_observations) return;
  recovering_ = false;
  SendAnnounce(/*restored_from_checkpoint=*/false, /*recovered=*/true);
}

void D3ParentNode::HandleSampleValue(const Point& value) {
  // Figure 4, ParentProcess lines 28-30. The value feeds the model but is
  // never outlier-tested here — exactly the work Theorem 3 saves a parent.
  Metrics().parent_sample_arrivals->Increment();
  const bool inserted = model_.Observe(value);
  if (recovering_) MaybeFinishRecovery();
  if (inserted && parent() != kNoNode &&
      rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().parent_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = MakeSampleValue(value);
    sim()->Send(std::move(msg));
  }
}

void D3ParentNode::HandleOutlierReport(const Message& incoming,
                                       const OutlierReportPayload& report) {
  // Figure 4, ParentProcess lines 23-27: re-check the child's outlier
  // against this level's model; escalate only if it is still an outlier.
  if (!model_.Ready() || model_.total_seen() < options_.min_observations) {
    return;
  }
  Metrics().parent_rechecks->Increment();
  const SimTime now = sim()->Now();
  // Continue the reading's causal chain. A report from a pre-tracing sender
  // carries no context; re-derive the trace from the payload provenance so
  // the chain still joins (the ids are pure functions of (leaf, seq)).
  const uint64_t trace =
      incoming.trace_id != 0
          ? incoming.trace_id
          : obs::DeriveReadingTraceId(report.source_leaf,
                                       report.source_seq, obs::kTraceDetectorD3);
  const uint64_t span = obs::DeriveSpanId(trace, id(), /*salt=*/level());
  obs::EmitCausalSpan("d3.parent.recheck", id(), now, trace, span,
                      incoming.trace_parent_span);
  const double estimate = EstimateNeighborCount(
      model_.Estimator(), model_.WindowCount(), report.value, options_.outlier);
  if (estimate >= options_.outlier.neighbor_threshold) return;  // refuted
  Metrics().parent_confirms->Increment();
  const double latency = report.ingest_time > 0.0 && now >= report.ingest_time
                             ? now - report.ingest_time
                             : 0.0;
  // The stalest child's silence: how out-of-date the worst slice of this
  // node's model was when it confirmed the flag.
  double staleness = 0.0;
  for (const auto& [child, heard] : last_heard_) {
    staleness = std::max(staleness, now - heard);
  }
  DetectionLatencyHist(level())->Record(latency);
  obs::DecisionRecord decision;
  decision.detector = "d3";
  decision.node = id();
  decision.level = level();
  decision.virtual_time = now;
  decision.trace_id = trace;
  decision.span_id = span;
  decision.estimate = estimate;
  decision.threshold = options_.outlier.neighbor_threshold;
  decision.model_version = model_.total_seen();
  decision.staleness_s = staleness;
  decision.degraded = degraded_state_;
  decision.latency_s = latency;
  obs::EmitDecisionRecord(decision);
  if (observer_ != nullptr) {
    OutlierEvent event{DetectorKind::kD3,  id(),
                       level(),            report.value,
                       now,                report.source_leaf,
                       report.source_seq};
    event.degraded = degraded_state_;
    event.provenance = OutlierProvenance{
        estimate, options_.outlier.neighbor_threshold, model_.total_seen(),
        staleness, trace};
    // Observer callbacks append to user-owned history in detection order;
    // staged under the parallel engine (util/staging.h).
    RunOrStage([obs = observer_, event]() { obs->OnOutlierDetected(event); });
  }
  if (parent() != kNoNode) {
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgOutlierReport;
    msg.size_numbers = report.value.size() + 2;
    msg.payload = report;
    msg.trace_id = trace;
    msg.trace_parent_span = span;
    sim()->Send(std::move(msg));
  }
}

}  // namespace sensord
