#include "core/d3.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/distance_outlier.h"
#include "core/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#include "util/check.h"

namespace sensord {
namespace {

struct D3Metrics {
  obs::Counter* leaf_flags;            // values flagged at the leaves
  obs::Counter* leaf_propagations;     // f-gated sample values sent upward
  obs::Counter* parent_propagations;   // ditto, from intermediate leaders
  obs::Counter* parent_sample_arrivals;  // absorbed without an outlier test:
                                         // the re-checks Theorem 3 saves
  obs::Counter* parent_rechecks;       // child-flagged values re-evaluated
  obs::Counter* parent_confirms;       // re-checks that upheld the flag
};

const D3Metrics& Metrics() {
  auto& registry = obs::MetricsRegistry::Global();
  static const D3Metrics m{
      registry.GetCounter("core.d3.leaf.flags"),
      registry.GetCounter("core.d3.leaf.propagations"),
      registry.GetCounter("core.d3.parent.propagations"),
      registry.GetCounter("core.d3.parent.sample_arrivals"),
      registry.GetCounter("core.d3.parent.rechecks"),
      registry.GetCounter("core.d3.parent.confirms")};
  return m;
}

// Shared with mgdd.cc by name: degraded-state entries of any detector.
obs::Counter* DegradedWindowsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter("core.degraded_windows");
  return counter;
}

}  // namespace

DensityModelConfig LeaderModelConfigFor(const DensityModelConfig& leaf,
                                        size_t num_children,
                                        size_t descendant_leaves,
                                        double sample_fraction) {
  SENSORD_CHECK_GE(num_children, 1u);
  SENSORD_CHECK_GE(descendant_leaves, num_children);
  DensityModelConfig cfg = leaf;
  const double arrivals = static_cast<double>(num_children) *
                          sample_fraction *
                          static_cast<double>(leaf.sample_size);
  cfg.window_size = std::max<size_t>(
      leaf.sample_size, static_cast<size_t>(std::llround(arrivals)));
  cfg.logical_window_count = static_cast<double>(leaf.window_size) *
                             static_cast<double>(descendant_leaves);
  return cfg;
}

DensityModelConfig LeaderModelConfig(const DensityModelConfig& leaf,
                                     size_t fanout, double sample_fraction,
                                     int level) {
  SENSORD_CHECK_GE(level, 2);
  SENSORD_CHECK_GE(fanout, 2u);
  const size_t descendant_leaves = static_cast<size_t>(
      std::llround(std::pow(static_cast<double>(fanout), level - 1)));
  return LeaderModelConfigFor(leaf, fanout, descendant_leaves,
                              sample_fraction);
}

D3LeafNode::D3LeafNode(const D3Options& options, Rng rng,
                       OutlierObserver* observer)
    : options_(options), model_(options.model, rng.Split()), rng_(rng),
      observer_(observer) {}

void D3LeafNode::OnReading(const Point& value) {
  // Figure 4, LeafProcess: update the model first, then test the value.
  const bool inserted = model_.Observe(value);

  if (inserted && parent() != kNoNode &&
      rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().leaf_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = SampleValuePayload{value};
    sim()->Send(std::move(msg));
  }

  if (model_.total_seen() < options_.min_observations) return;
  if (!IsDistanceOutlier(model_.Estimator(), model_.WindowCount(), value,
                         options_.outlier)) {
    return;
  }
  Metrics().leaf_flags->Increment();
  const uint64_t seq = model_.total_seen();
  if (observer_ != nullptr) {
    observer_->OnOutlierDetected(OutlierEvent{
        DetectorKind::kD3, id(), level(), value, sim()->Now(), id(), seq});
  }
  if (parent() != kNoNode) {
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgOutlierReport;
    msg.size_numbers = value.size() + 2;
    msg.payload = OutlierReportPayload{value, level(), id(), seq};
    sim()->Send(std::move(msg));
  }
}

void D3LeafNode::HandleMessage(const Message& msg) {
  // Leaves receive nothing in D3; tolerate stray traffic.
  (void)msg;
}

D3ParentNode::D3ParentNode(const D3Options& options, Rng rng,
                           OutlierObserver* observer)
    : options_(options), model_(options.model, rng.Split()), rng_(rng),
      observer_(observer) {
  // Register the counter up front so core.degraded_windows shows up (as 0)
  // in metric dumps of healthy runs too.
  (void)DegradedWindowsCounter();
}

void D3ParentNode::OnStart() {
  // Children start "fresh" at wiring time; silence is measured from here.
  for (NodeId child : children()) last_heard_[child] = sim()->Now();
}

bool D3ParentNode::ComputeDegraded(SimTime now) const {
  if (!std::isfinite(options_.staleness_threshold)) return false;
  for (const auto& [child, heard] : last_heard_) {
    if (now - heard > options_.staleness_threshold) return true;
  }
  return false;
}

bool D3ParentNode::degraded() const { return ComputeDegraded(sim()->Now()); }

void D3ParentNode::HandleMessage(const Message& msg) {
  // Degradation bookkeeping: staleness is only observable when an event
  // fires, so each arriving message first settles whether a silent child
  // pushed the node into the degraded state since the last one.
  const SimTime now = sim()->Now();
  if (ComputeDegraded(now) && !degraded_state_) {
    DegradedWindowsCounter()->Increment();
    degraded_state_ = true;
  }
  const auto heard = last_heard_.find(msg.from);
  if (heard != last_heard_.end()) heard->second = now;
  degraded_state_ = ComputeDegraded(now);

  switch (msg.kind) {
    case kMsgSampleValue: {
      const auto& payload = std::any_cast<const SampleValuePayload&>(msg.payload);
      HandleSampleValue(payload.value);
      break;
    }
    case kMsgOutlierReport: {
      const auto& payload =
          std::any_cast<const OutlierReportPayload&>(msg.payload);
      HandleOutlierReport(payload);
      break;
    }
    default:
      break;  // not ours
  }
}

void D3ParentNode::HandleSampleValue(const Point& value) {
  // Figure 4, ParentProcess lines 28-30. The value feeds the model but is
  // never outlier-tested here — exactly the work Theorem 3 saves a parent.
  Metrics().parent_sample_arrivals->Increment();
  const bool inserted = model_.Observe(value);
  if (inserted && parent() != kNoNode &&
      rng_.Bernoulli(options_.sample_fraction)) {
    Metrics().parent_propagations->Increment();
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgSampleValue;
    msg.size_numbers = value.size();
    msg.payload = SampleValuePayload{value};
    sim()->Send(std::move(msg));
  }
}

void D3ParentNode::HandleOutlierReport(const OutlierReportPayload& report) {
  // Figure 4, ParentProcess lines 23-27: re-check the child's outlier
  // against this level's model; escalate only if it is still an outlier.
  if (!model_.Ready() || model_.total_seen() < options_.min_observations) {
    return;
  }
  Metrics().parent_rechecks->Increment();
  const obs::TraceSpan span("d3.parent.recheck", static_cast<int64_t>(id()),
                            sim()->Now());
  if (!IsDistanceOutlier(model_.Estimator(), model_.WindowCount(),
                         report.value, options_.outlier)) {
    return;
  }
  Metrics().parent_confirms->Increment();
  if (observer_ != nullptr) {
    OutlierEvent event{DetectorKind::kD3,  id(),
                       level(),            report.value,
                       sim()->Now(),       report.source_leaf,
                       report.source_seq};
    event.degraded = degraded_state_;
    observer_->OnOutlierDetected(event);
  }
  if (parent() != kNoNode) {
    Message msg;
    msg.from = id();
    msg.to = parent();
    msg.kind = kMsgOutlierReport;
    msg.size_numbers = report.value.size() + 2;
    msg.payload = report;
    sim()->Send(std::move(msg));
  }
}

}  // namespace sensord
