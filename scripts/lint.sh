#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the sensord sources.
#
# Usage: scripts/lint.sh [path ...]
#   With no arguments lints src tests bench examples (the full tree, now
#   that the PR 1 lint debt is paid); pass explicit roots to narrow the
#   sweep. Exits nonzero on any violation (WarningsAsErrors: '*' in
#   .clang-tidy).
#
# Project-specific invariants (determinism, thread-safety annotations,
# header hygiene, test pairing) are NOT here — they live in
# tools/lint/sensord_lint.py, which runs even without a clang toolchain.
#
# clang-tidy needs a compilation database; we configure the `release`
# CMake preset (CMAKE_EXPORT_COMPILE_COMMANDS is always on) and point
# clang-tidy at its build directory.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-}"
if [[ -n "${CLANG_TIDY}" ]] && ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "lint.sh: CLANG_TIDY='${CLANG_TIDY}' is not an executable" >&2
  exit 2
fi
if [[ -z "${CLANG_TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CLANG_TIDY}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping lint (install" \
       "clang-tidy or set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 0
fi

BUILD_DIR=build/release
cmake --preset release >/dev/null

roots=("$@")
if [[ ${#roots[@]} -eq 0 ]]; then
  roots=(src tests bench examples)
fi

# lint_fixtures are deliberately-broken inputs for sensord_lint's own test
# suite, not part of any build target: clang-tidy must not see them.
mapfile -t files < <(find "${roots[@]}" -name '*.cc' \
                          -not -path '*/lint_fixtures/*' | sort)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "lint.sh: no sources found under: ${roots[*]}" >&2
  exit 1
fi

echo "lint.sh: ${CLANG_TIDY} over ${#files[@]} files (${roots[*]})"
status=0
"${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${files[@]}" || status=$?
if [[ ${status} -ne 0 ]]; then
  echo "lint.sh: clang-tidy reported violations (exit ${status})" >&2
  exit "${status}"
fi
echo "lint.sh: clean"
