#!/usr/bin/env bash
# Regenerates tests/golden/e2e_outliers.txt from the current build.
#
# Run after an INTENTIONAL behaviour change (detector logic, transport,
# fault scheduling, RNG consumption), review the diff, and commit the new
# golden together with the change that caused it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)" --target golden_e2e_test

SENSORD_REGEN_GOLDEN=1 \
  "$BUILD_DIR"/tests/golden_e2e_test \
  --gtest_filter='GoldenE2eTest.DetectionHistoryMatchesGolden'

echo "--- regenerated tests/golden/e2e_outliers.txt ---"
git diff --stat -- tests/golden/e2e_outliers.txt || true
