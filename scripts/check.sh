#!/usr/bin/env bash
# Builds the asan-ubsan preset (Debug: every SENSORD_DCHECK active) and runs
# the full ctest suite under AddressSanitizer + UndefinedBehaviorSanitizer.
# Exits nonzero on any build failure, test failure, or sanitizer report.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

# halt_on_error turns every sanitizer finding into a test failure; leak
# detection is on so fixture teardown bugs surface too. abort_on_error=0
# keeps UBSan's exit path (exitcode 1) instead of a core dump.
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1:detect_stack_use_after_return=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"
ctest --test-dir build/asan-ubsan --output-on-failure -j "${JOBS}" "$@"
echo "check.sh: asan-ubsan suite clean"
