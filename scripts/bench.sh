#!/usr/bin/env bash
# Builds the release preset and runs the benchmark suite with machine-readable
# output:
#   - bench/micro_benchmarks via google-benchmark's JSON reporter
#     -> $OUT_DIR/BENCH_micro.json
#   - one figure harness (fig11_message_scaling, the paper's headline
#     messages-per-second experiment) through the RunTelemetry JSON writer
#     -> $OUT_DIR/BENCH_fig11_message_scaling.json
#   - the packet-loss ablation (ack/retransmit transport on/off), whose
#     metrics table carries the transport + degradation counters
#     (net.retries, net.timeouts, net.dup_suppressed, net.abandoned,
#     core.degraded_windows) -> $OUT_DIR/BENCH_ablation_packet_loss.json
#   - the crash-recovery ablation (level-2 recall and time-to-recover vs
#     checkpoint interval under amnesia crashes; recovery.* counters)
#     -> $OUT_DIR/BENCH_ablation_crash_recovery.json
#   - a seeded trace_outliers run with the causal-trace and flight-recorder
#     sinks enabled -> $OUT_DIR/TRACE_demo.jsonl + FLIGHT_demo.jsonl,
#     validated and summarized by tools/trace/trace_report.py
#
# SENSORD_QUICK=1 (default here) keeps the run CI-sized; set SENSORD_QUICK=0
# for paper-scale numbers. SENSORD_THREADS selects the simulator's
# deterministic parallel engine (DESIGN.md §12) and is recorded in every
# BENCH_*.json "meta" section. OUT_DIR defaults to the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
OUT_DIR="${OUT_DIR:-.}"
mkdir -p "${OUT_DIR}"
export SENSORD_QUICK="${SENSORD_QUICK:-1}"
export SENSORD_THREADS="${SENSORD_THREADS:-1}"
echo "bench.sh: SENSORD_QUICK=${SENSORD_QUICK} SENSORD_THREADS=${SENSORD_THREADS}"

cmake --preset release
cmake --build --preset release -j "${JOBS}" \
    --target micro_benchmarks fig11_message_scaling ablation_packet_loss \
            ablation_crash_recovery trace_outliers

echo "=== bench.sh [1/5] micro_benchmarks -> ${OUT_DIR}/BENCH_micro.json ==="
# Filter to a quick, representative subset in quick mode; everything else
# still runs when SENSORD_QUICK=0.
FILTER=""
if [ "${SENSORD_QUICK}" != "0" ]; then
  FILTER="--benchmark_filter=(BM_Obs.*|BM_ChainSampleAdd/128|BM_KdeBoxQuery1d/128|BM_KdeBoxQueryPruned2d/512|BM_KdeBoxQueryPruned3d/512|BM_DensityModelRebuild/512)"
  export BENCHMARK_MIN_TIME="${BENCHMARK_MIN_TIME:-0.05}"
fi
build/release/bench/micro_benchmarks ${FILTER} \
    ${BENCHMARK_MIN_TIME:+--benchmark_min_time="${BENCHMARK_MIN_TIME}"} \
    --benchmark_out="${OUT_DIR}/BENCH_micro.json" \
    --benchmark_out_format=json

echo "=== bench.sh [2/5] fig11_message_scaling ==="
SENSORD_BENCH_JSON="${OUT_DIR}/" build/release/bench/fig11_message_scaling

echo "=== bench.sh [3/5] ablation_packet_loss (transport counters) ==="
SENSORD_BENCH_JSON="${OUT_DIR}/" build/release/bench/ablation_packet_loss

echo "=== bench.sh [4/5] ablation_crash_recovery (recovery counters) ==="
SENSORD_BENCH_JSON="${OUT_DIR}/" build/release/bench/ablation_crash_recovery

echo "=== bench.sh [5/5] causal trace + flight recorder artifacts ==="
# The seeded trace_outliers demo (D3 + MGDD hierarchies with observers)
# emits per-decision causal chains; the report joins them and the validator
# gates on malformed lines and orphan spans.
SENSORD_TRACE_JSONL="${OUT_DIR}/TRACE_demo.jsonl" \
SENSORD_FLIGHT_JSONL="${OUT_DIR}/FLIGHT_demo.jsonl" \
    build/release/examples/trace_outliers > /dev/null
python3 tools/trace/trace_report.py "${OUT_DIR}/TRACE_demo.jsonl" \
    --flight "${OUT_DIR}/FLIGHT_demo.jsonl" --validate
python3 tools/trace/trace_report.py "${OUT_DIR}/TRACE_demo.jsonl" \
    --flight "${OUT_DIR}/FLIGHT_demo.jsonl" --max-chains 5

python3 - "$OUT_DIR/BENCH_micro.json" \
    "$OUT_DIR/BENCH_fig11_message_scaling.json" \
    "$OUT_DIR/BENCH_ablation_packet_loss.json" \
    "$OUT_DIR/BENCH_ablation_crash_recovery.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    with open(path) as f:
        json.load(f)
    print(f"bench.sh: {path} is valid JSON")
EOF

echo "bench.sh: done"
