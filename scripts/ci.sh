#!/usr/bin/env bash
# The one-command tier-1 + sanitizer gate:
#   1. Release preset: build + full ctest suite (what ships).
#   2. ASan/UBSan preset: build + full ctest suite (what catches UB/leaks),
#      via scripts/check.sh.
#   3. clang-tidy over src/ via scripts/lint.sh (skipped with a notice if
#      clang-tidy is not installed).
#   4. Quick bench run via scripts/bench.sh — proves the bench harnesses run
#      and leave valid BENCH_*.json artifacts.
# Exits nonzero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== ci.sh [1/4] release build + ctest ==="
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --test-dir build/release --output-on-failure -j "${JOBS}"

echo "=== ci.sh [2/4] asan-ubsan build + ctest ==="
scripts/check.sh

echo "=== ci.sh [3/4] clang-tidy ==="
scripts/lint.sh

echo "=== ci.sh [4/4] quick bench + BENCH_*.json ==="
SENSORD_QUICK=1 scripts/bench.sh

echo "ci.sh: all gates green"
