#!/usr/bin/env bash
# The one-command tier-1 + sanitizer + invariant gate:
#   1. lint-invariants (blocking): tools/lint/sensord_lint.py over the
#      release preset's compile_commands.json — determinism rules (no wall
#      clock / ambient entropy / unordered-iteration-to-sink), thread-safety
#      annotation completeness, src/-wide source/test pairing (the PR 3
#      net/+core/ gate, generalized; exemptions in
#      tools/lint/test_pairing.map), and header self-containment.
#      Suppressions only via tools/lint/baseline.txt (empty by policy).
#      When a clang toolchain is present the same step also builds the
#      library with -Wthread-safety promoted to errors
#      (SENSORD_THREAD_SAFETY=ON). Configure-only: reuses the release
#      preset's compilation database, no extra full build.
#   2. Release preset: build + full ctest suite (what ships).
#   3. ASan/UBSan preset: build + ctest minus the soak label (soak sweeps
#      are long under ASan; they get their own sanitizer pass in step 4),
#      via scripts/check.sh.
#   4. TSan preset: build + the soak-labelled suite at SENSORD_THREADS=8,
#      so the staged parallel engine's worker pool runs under the race
#      detector. The soak tests drive the full simulator (transport
#      retries, fault schedules, crash windows, amnesia checkpoint/restore)
#      for thousands of virtual seconds — the highest-value place to look
#      for data races. sim_parallel_test rides along in the same pass: it
#      exercises the worker pool, the OpLog staging layer, and the
#      1/2/8-thread byte-identity matrix directly.
#      SENSORD_SOAK_SEEDS widens the crash-recovery seed sweep (default 4;
#      nightly runs export a larger value).
#   5. Thread-parity gate: the deterministic parallel engine promises
#      byte-identical artifacts at any worker count (DESIGN.md §12). The
#      golden e2e scenario must match the committed golden at both
#      SENSORD_THREADS=1 and =8, the seeded trace_outliers demo's
#      stdout + causal-trace + flight-recorder JSONL are diffed
#      byte-for-byte between a 1-thread and an 8-thread run, and the
#      golden is regenerated at both thread counts and diffed against
#      itself and the committed file.
#   6. clang-tidy over src tests bench examples via scripts/lint.sh
#      (skipped with a notice if clang-tidy is not installed).
#   7. Quick bench run via scripts/bench.sh — proves the bench harnesses run
#      and leave valid BENCH_*.json artifacts, plus the causal-trace /
#      flight-recorder JSONL pair, re-validated here with
#      tools/trace/trace_report.py --validate (strict: malformed lines,
#      orphan spans and span-less decisions are fatal).
# Exits nonzero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== ci.sh [1/7] lint-invariants (sensord_lint + thread-safety) ==="
cmake --preset release >/dev/null   # refresh compile_commands.json only
python3 tools/lint/sensord_lint.py \
    --compdb build/release/compile_commands.json
CLANGXX="${CLANGXX:-}"
if [[ -z "${CLANGXX}" ]]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANGXX="${candidate}"
      break
    fi
  done
fi
if [[ -n "${CLANGXX}" ]]; then
  echo "lint-invariants: ${CLANGXX} -Wthread-safety build (errors fatal)"
  cmake -B build/thread-safety -S . \
        -DCMAKE_CXX_COMPILER="${CLANGXX}" \
        -DCMAKE_BUILD_TYPE=Release \
        -DSENSORD_THREAD_SAFETY=ON \
        -DSENSORD_BUILD_TESTS=OFF -DSENSORD_BUILD_BENCHMARKS=OFF \
        -DSENSORD_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build build/thread-safety -j "${JOBS}"
else
  echo "lint-invariants: no clang++ on PATH; -Wthread-safety build skipped" \
       "(the sensord_lint thread-annotation rule above still gates" \
       "annotation completeness)" >&2
fi

echo "=== ci.sh [2/7] release build + ctest ==="
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --test-dir build/release --output-on-failure -j "${JOBS}"

echo "=== ci.sh [3/7] asan-ubsan build + ctest (minus soak) ==="
scripts/check.sh -LE soak

echo "=== ci.sh [4/7] tsan build + soak suite at 8 threads ==="
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
export SENSORD_SOAK_SEEDS="${SENSORD_SOAK_SEEDS:-4}"
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
# SENSORD_THREADS=8 routes every simulator the soak seeds construct through
# the staged parallel engine, putting the worker handoff and merge path in
# front of TSan; the tests' assertions are unchanged because the engine is
# output-identical at any worker count.
SENSORD_THREADS=8 ctest --test-dir build/tsan --output-on-failure \
    -j "${JOBS}" -L soak
SENSORD_THREADS=8 ctest --test-dir build/tsan --output-on-failure \
    -R '^(SimParallelTest|WorkerPoolTest|OpLogTest)\.'

echo "=== ci.sh [5/7] thread-parity gate (SENSORD_THREADS=1 vs 8) ==="
# Gate (a): the golden e2e scenario must reproduce the committed golden
# byte-for-byte at both thread counts — a divergence names the first
# differing line.
SENSORD_THREADS=1 build/release/tests/golden_e2e_test >/dev/null
SENSORD_THREADS=8 build/release/tests/golden_e2e_test >/dev/null
# Gate (b): direct 1-vs-8 diff of a full artifact set (stdout, causal
# trace, flight recorder) from the seeded trace_outliers demo.
PARITY_DIR="$(mktemp -d)"
trap 'rm -rf "${PARITY_DIR}"' EXIT
for n in 1 8; do
  SENSORD_THREADS="${n}" \
  SENSORD_TRACE_JSONL="${PARITY_DIR}/trace_${n}.jsonl" \
  SENSORD_FLIGHT_JSONL="${PARITY_DIR}/flight_${n}.jsonl" \
      build/release/examples/trace_outliers > "${PARITY_DIR}/stdout_${n}.txt"
done
diff -u "${PARITY_DIR}/stdout_1.txt" "${PARITY_DIR}/stdout_8.txt"
diff -u "${PARITY_DIR}/trace_1.jsonl" "${PARITY_DIR}/trace_8.jsonl"
diff -u "${PARITY_DIR}/flight_1.jsonl" "${PARITY_DIR}/flight_8.jsonl"
# Gate (c): regenerate the golden itself at both thread counts and diff the
# regenerated artifacts against each other and against the committed file —
# catches a parity break that gates (a)/(b) would miss if the committed
# golden were stale. The committed file is restored afterwards (and by the
# trap on failure).
GOLDEN="tests/golden/e2e_outliers.txt"
cp "${GOLDEN}" "${PARITY_DIR}/golden_committed.txt"
trap 'cp -f "${PARITY_DIR}/golden_committed.txt" tests/golden/e2e_outliers.txt; rm -rf "${PARITY_DIR}"' EXIT
for n in 1 8; do
  SENSORD_THREADS="${n}" SENSORD_REGEN_GOLDEN=1 \
      build/release/tests/golden_e2e_test \
      --gtest_filter='GoldenE2eTest.DetectionHistoryMatchesGolden' >/dev/null
  cp "${GOLDEN}" "${PARITY_DIR}/golden_regen_${n}.txt"
  cp -f "${PARITY_DIR}/golden_committed.txt" "${GOLDEN}"
done
diff -u "${PARITY_DIR}/golden_regen_1.txt" "${PARITY_DIR}/golden_regen_8.txt"
diff -u "${PARITY_DIR}/golden_committed.txt" "${PARITY_DIR}/golden_regen_1.txt"
echo "thread-parity: golden + trace + flight artifacts identical at 1 and 8 threads"

echo "=== ci.sh [6/7] clang-tidy ==="
scripts/lint.sh

echo "=== ci.sh [7/7] quick bench + BENCH_*.json + trace validation ==="
SENSORD_QUICK=1 scripts/bench.sh
# bench.sh already validates its own artifacts; gate on them here explicitly
# so a future bench.sh refactor cannot silently drop the check.
python3 tools/trace/trace_report.py TRACE_demo.jsonl \
    --flight FLIGHT_demo.jsonl --validate

echo "ci.sh: all gates green"
