#!/usr/bin/env bash
# The one-command tier-1 + sanitizer gate:
#   1. Test-pairing gate: every src/net/ and src/core/ translation unit must
#      have a matching tests/<name>_test.cc. Cheap, runs first.
#   2. Release preset: build + full ctest suite (what ships).
#   3. ASan/UBSan preset: build + ctest minus the soak label (soak sweeps
#      are long under ASan; they get their own sanitizer pass in step 4),
#      via scripts/check.sh.
#   4. TSan preset: build + the soak-labelled suite. The soak tests drive
#      the full simulator (transport retries, fault schedules, crash
#      windows) for thousands of virtual seconds — the highest-value place
#      to look for data races.
#   5. clang-tidy over src/ via scripts/lint.sh (skipped with a notice if
#      clang-tidy is not installed).
#   6. Quick bench run via scripts/bench.sh — proves the bench harnesses run
#      and leave valid BENCH_*.json artifacts.
# Exits nonzero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "=== ci.sh [1/6] source/test pairing gate ==="
missing=0
for src in src/net/*.cc src/core/*.cc; do
  base="$(basename "${src}" .cc)"
  if [ ! -f "tests/${base}_test.cc" ]; then
    echo "ci.sh: ${src} has no tests/${base}_test.cc" >&2
    missing=1
  fi
done
if [ "${missing}" -ne 0 ]; then
  echo "ci.sh: every net/ and core/ source needs a matching unit test" >&2
  exit 1
fi
echo "pairing gate: every net/ and core/ source has a test"

echo "=== ci.sh [2/6] release build + ctest ==="
cmake --preset release
cmake --build --preset release -j "${JOBS}"
ctest --test-dir build/release --output-on-failure -j "${JOBS}"

echo "=== ci.sh [3/6] asan-ubsan build + ctest (minus soak) ==="
scripts/check.sh -LE soak

echo "=== ci.sh [4/6] tsan build + soak suite ==="
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
ctest --test-dir build/tsan --output-on-failure -j "${JOBS}" -L soak

echo "=== ci.sh [5/6] clang-tidy ==="
scripts/lint.sh

echo "=== ci.sh [6/6] quick bench + BENCH_*.json ==="
SENSORD_QUICK=1 scripts/bench.sh

echo "ci.sh: all gates green"
