#include "util/logging.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(prev);
}

TEST(LoggingTest, MacroCompilesAndStreams) {
  const LogLevel prev = GetLogLevel();
  // Silence output for the test run, then exercise every level.
  SetLogLevel(LogLevel::kError);
  SENSORD_LOG(Debug) << "debug " << 1;
  SENSORD_LOG(Info) << "info " << 2.5;
  SENSORD_LOG(Warning) << "warning " << "text";
  SetLogLevel(prev);
}

TEST(LoggingTest, TagAndNodePrefixAppearInOutput) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  std::string captured;
  SetLogSinkForTest(&captured);
  SENSORD_LOG(Info).Tag("d3").Node(7) << "recheck complete";
  SetLogSinkForTest(nullptr);
  SetLogLevel(prev);
  EXPECT_NE(captured.find("[d3] "), std::string::npos) << captured;
  EXPECT_NE(captured.find("[node 7] "), std::string::npos) << captured;
  EXPECT_NE(captured.find("recheck complete"), std::string::npos) << captured;
  // Prefix order: level/file header, then tag, then node, then the message.
  EXPECT_LT(captured.find("[INFO"), captured.find("[d3] "));
  EXPECT_LT(captured.find("[d3] "), captured.find("[node 7] "));
  EXPECT_LT(captured.find("[node 7] "), captured.find("recheck complete"));
}

TEST(LoggingTest, TagAndNodeAreNoOpsWhenDisabled) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  std::string captured;
  SetLogSinkForTest(&captured);
  SENSORD_LOG(Debug).Tag("mgdd").Node(3) << "should not appear";
  SetLogSinkForTest(nullptr);
  SetLogLevel(prev);
  EXPECT_TRUE(captured.empty()) << captured;
}

TEST(LoggingTest, DisabledLevelSkipsFormatting) {
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 42;
  };
  // The stream argument is still evaluated (stream semantics), but the
  // message must not be emitted; this guards the enabled_ plumbing.
  SENSORD_LOG(Debug) << count();
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace sensord
