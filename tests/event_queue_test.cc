#include "net/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_DOUBLE_EQ(q.Now(), 0.0);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(5.0, [&] {
    q.ScheduleAfter(2.0, [&] { fired_at = q.Now(); });
  });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 7.0);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.ScheduleAt(t, [&fired, t] { fired.push_back(t); });
  }
  const uint64_t n = q.RunUntil(2.5);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(q.Now(), 2.5);  // clock advances to the horizon
  EXPECT_EQ(q.Size(), 2u);
}

TEST(EventQueueTest, RunUntilIncludesExactHorizon) {
  EventQueue q;
  bool fired = false;
  q.ScheduleAt(2.0, [&] { fired = true; });
  q.RunUntil(2.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&]() {
    ++count;
    if (count < 5) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 4.0);
}

TEST(EventQueueTest, RunOneFiresEarliest) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(2.0, [&] { fired = 2; });
  q.ScheduleAt(1.0, [&] { fired = 1; });
  q.RunOne();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace sensord
