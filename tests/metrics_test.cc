#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace sensord::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  EXPECT_EQ(g->value(), 0.0);
  g->Set(2.5);
  EXPECT_EQ(g->value(), 2.5);
  g->Add(-1.0);
  EXPECT_EQ(g->value(), 1.5);
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("sub.obj.metric");
  Counter* b = registry.GetCounter("sub.obj.metric");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("sub.obj.hist", {1.0, 2.0});
  // Later registrations ignore the (different) boundaries.
  Histogram* h2 = registry.GetHistogram("sub.obj.hist", {5.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->boundaries().size(), 2u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryDeathTest, KindCollisionIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry registry;
  registry.GetCounter("collide.name");
  EXPECT_DEATH(registry.GetGauge("collide.name"),
               "already registered as a counter");
  EXPECT_DEATH(registry.GetHistogram("collide.name", {1.0}),
               "already registered as a counter");
}

TEST(HistogramTest, ExponentialBoundariesLayout) {
  const std::vector<double> b = Histogram::ExponentialBoundaries(16, 2, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 16.0);
  EXPECT_EQ(b[1], 32.0);
  EXPECT_EQ(b[2], 64.0);
  EXPECT_EQ(b[3], 128.0);
}

TEST(HistogramTest, LinearBoundariesLayout) {
  const std::vector<double> b = Histogram::LinearBoundaries(1, 0.5, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 1.0);
  EXPECT_EQ(b[1], 1.5);
  EXPECT_EQ(b[2], 2.0);
}

TEST(HistogramTest, RecordFillsBucketsAndOverflow) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Record(0.5);    // bucket 0: (-inf, 1]
  h->Record(1.0);    // bucket 0 (boundary is inclusive)
  h->Record(5.0);    // bucket 1: (1, 10]
  h->Record(50.0);   // bucket 2: (10, 100]
  h->Record(500.0);  // overflow
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 556.5);
  EXPECT_EQ(h->BucketCount(0), 2u);
  EXPECT_EQ(h->BucketCount(1), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(3), 1u);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.empty", {1.0, 2.0});
  EXPECT_EQ(h->Quantile(0.5), 0.0);
}

TEST(HistogramTest, OverflowQuantileClampsToLastBoundary) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.clamp", {1.0, 2.0});
  h->Record(1e9);
  EXPECT_EQ(h->Quantile(0.99), 2.0);
}

// The acceptance contract: interpolated p50/p95/p99 agree with the exact
// quantiles of the recorded data to within one bucket width.
TEST(HistogramTest, QuantilesWithinOneBucketOfExact) {
  MetricsRegistry registry;
  // Unit-width buckets covering [0, 1000].
  Histogram* h = registry.GetHistogram(
      "test.quantiles", Histogram::LinearBoundaries(1.0, 1.0, 1000));
  const double kBucketWidth = 1.0;

  // A skewed deterministic distribution: x^2 spacing pushes mass low while
  // stretching the tail, which is what latency data looks like.
  std::vector<double> values;
  values.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    const double x = static_cast<double>(i) / 2000.0;
    values.push_back(1000.0 * x * x);
  }
  for (double v : values) h->Record(v);
  std::sort(values.begin(), values.end());

  for (double q : {0.50, 0.95, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size()))) - 1;
    const double exact = values[rank];
    const double estimated = h->Quantile(q);
    EXPECT_NEAR(estimated, exact, kBucketWidth)
        << "q=" << q << " exact=" << exact << " estimated=" << estimated;
  }
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist_concurrent",
                                       Histogram::LinearBoundaries(1, 1, 8));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<double>(t) + 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(h->BucketCount(static_cast<size_t>(t)),
              static_cast<uint64_t>(kPerThread));
  }
}

TEST(SnapshotTest, SortedByNameWithCorrectValues) {
  MetricsRegistry registry;
  registry.GetCounter("b.counter")->Increment(7);
  registry.GetGauge("a.gauge")->Set(3.5);
  Histogram* h = registry.GetHistogram("c.hist", {10.0, 20.0});
  h->Record(5.0);
  h->Record(15.0);

  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].gauge_value, 3.5);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[1].counter_value, 7u);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].hist_count, 2u);
  EXPECT_DOUBLE_EQ(snap[2].hist_sum, 20.0);
}

TEST(RegistryTest, ResetValuesZeroesWithoutInvalidatingPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("r.counter");
  Gauge* g = registry.GetGauge("r.gauge");
  Histogram* h = registry.GetHistogram("r.hist", {1.0});
  c->Increment(5);
  g->Set(5.0);
  h->Record(0.5);
  registry.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0.0);
  // Same pointers still registered.
  EXPECT_EQ(registry.GetCounter("r.counter"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(RegistryTest, ResetForTestClearsTheGlobalRegistry) {
  Counter* c = MetricsRegistry::Global().GetCounter("g.reset.counter");
  c->Increment(9);
  MetricsRegistry::ResetForTest();
  EXPECT_EQ(c->value(), 0u);
  // Still the same registration: pointers survive the reset.
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("g.reset.counter"), c);
}

TEST(RegistryTest, ScopedMetricsResetRestoresACleanSlate) {
  Counter* c = MetricsRegistry::Global().GetCounter("g.scoped.counter");
  {
    const ScopedMetricsReset scoped_reset;
    EXPECT_EQ(c->value(), 0u);  // entry reset cleared any prior value
    c->Increment(4);
    EXPECT_EQ(c->value(), 4u);
  }
  EXPECT_EQ(c->value(), 0u);  // exit reset cleaned up after the scope
}

TEST(SnapshotTest, HistogramSnapshotCarriesBoundariesAndBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("s.hist", {10.0, 20.0});
  h->Record(5.0);
  h->Record(15.0);
  h->Record(15.5);
  h->Record(100.0);  // overflow
  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].hist_boundaries, (std::vector<double>{10.0, 20.0}));
  // One bucket per boundary plus the trailing overflow bucket.
  EXPECT_EQ(snap[0].hist_buckets, (std::vector<uint64_t>{1, 2, 1}));
}

TEST(StandardBoundariesTest, DetectionLatencyLayoutIsUsable) {
  const std::vector<double> b = DetectionLatencyBoundariesS();
  ASSERT_EQ(b.size(), 24u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-4);  // sub-millisecond decisions resolve
  EXPECT_GE(b.back(), 100.0);         // multi-minute staleness still lands
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(StandardBoundariesTest, LatencyAndSizeLayoutsAreUsable) {
  const std::vector<double> lat = LatencyBoundariesNs();
  ASSERT_FALSE(lat.empty());
  EXPECT_EQ(lat.front(), 16.0);
  EXPECT_GE(lat.back(), 1e8);  // covers at least 100ms
  const std::vector<double> size = SizeBoundaries();
  ASSERT_FALSE(size.empty());
  EXPECT_EQ(size.front(), 1.0);
  EXPECT_GE(size.back(), 16384.0);
  EXPECT_TRUE(std::is_sorted(lat.begin(), lat.end()));
  EXPECT_TRUE(std::is_sorted(size.begin(), size.end()));
}

}  // namespace
}  // namespace sensord::obs
