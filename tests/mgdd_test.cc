#include "core/mgdd.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/d3.h"  // LeaderModelConfig
#include "core/protocol.h"
#include "stats/bandwidth.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "util/rng.h"

namespace sensord {
namespace {

class CollectingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

MgddOptions TestOptions() {
  MgddOptions opts;
  opts.model.dimensions = 1;
  opts.model.window_size = 500;
  opts.model.sample_size = 100;
  opts.mdef.sampling_radius = 0.08;
  opts.mdef.counting_radius = 0.01;
  opts.mdef.k_sigma = 3.0;
  opts.sample_fraction = 0.5;
  opts.min_observations = 200;
  return opts;
}

struct MgddFixture {
  explicit MgddFixture(const MgddOptions& opts, size_t leaves = 4,
                       size_t fanout = 2, uint64_t seed = 1)
      : layout(*BuildGridHierarchy(leaves, fanout)), rng(seed) {
    ids = sim.Instantiate(
        layout, [&](int, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<MgddLeafNode>(opts, rng.Split(),
                                                  &observer);
          }
          MgddOptions internal = opts;
          internal.model = LeaderModelConfig(
              opts.model, fanout, opts.sample_fraction, spec.level);
          return std::make_unique<MgddInternalNode>(internal, rng.Split());
        });
    num_leaves = leaves;
  }

  // Delivers one round of readings (one per leaf) and flushes messages.
  void Round(const std::vector<Point>& readings) {
    for (size_t i = 0; i < num_leaves; ++i) {
      sim.DeliverReading(ids[i], readings[i]);
    }
    t += 1.0;
    sim.RunUntil(t);
  }

  HierarchyLayout layout;
  Simulator sim;
  CollectingObserver observer;
  Rng rng;
  std::vector<NodeId> ids;
  size_t num_leaves;
  double t = 0.0;
};

TEST(MgddTest, GlobalModelPropagatesToLeaves) {
  MgddFixture fx(TestOptions());
  Rng values(2);
  for (int round = 0; round < 1500; ++round) {
    std::vector<Point> readings;
    for (size_t i = 0; i < fx.num_leaves; ++i) {
      readings.push_back({Clamp(values.Gaussian(0.4, 0.02), 0.0, 1.0)});
    }
    fx.Round(readings);
  }
  EXPECT_GT(fx.sim.stats().MessagesOfKind(kMsgGlobalModelUpdate), 0u);
  for (size_t i = 0; i < fx.num_leaves; ++i) {
    const auto& leaf = static_cast<const MgddLeafNode&>(fx.sim.node(fx.ids[i]));
    EXPECT_TRUE(leaf.HasGlobalModel()) << "leaf " << i;
    EXPECT_GT(leaf.global_updates_received(), 0u);
  }
}

TEST(MgddTest, ReplicaMatchesRootSample) {
  // With kEveryChange updates, after the messages drain, each leaf's global
  // estimator must be built from exactly the root's current sample.
  MgddFixture fx(TestOptions());
  Rng values(3);
  for (int round = 0; round < 1200; ++round) {
    std::vector<Point> readings;
    for (size_t i = 0; i < fx.num_leaves; ++i) {
      readings.push_back({values.UniformDouble(0.3, 0.5)});
    }
    fx.Round(readings);
  }
  const auto& root = static_cast<const MgddInternalNode&>(
      fx.sim.node(fx.ids.back()));
  std::vector<Point> root_sample = root.model().sample().Snapshot();
  std::sort(root_sample.begin(), root_sample.end());

  const auto& leaf = static_cast<const MgddLeafNode&>(fx.sim.node(fx.ids[0]));
  ASSERT_TRUE(leaf.HasGlobalModel());
  std::vector<Point> replica = leaf.GlobalEstimator().sample().ToPoints();
  std::sort(replica.begin(), replica.end());
  EXPECT_EQ(replica, root_sample);
}

TEST(MgddTest, DetectsDeviationAgainstGlobalModel) {
  // Bimodal data with an empty gap: a value inside the gap has a near-empty
  // counting neighbourhood while its sampling neighbourhood is dense and
  // homogeneous — the textbook MDEF outlier (high MDEF, small sigma_MDEF).
  // Scott's-rule bandwidths over bimodal data are wide and partially smear
  // the gap, so the deviation threshold is set below the paper's k_sigma=3
  // default (see EXPERIMENTS.md on MDEF sensitivity under smoothing).
  MgddOptions opts = TestOptions();
  opts.mdef.k_sigma = 0.5;
  MgddFixture fx(opts);
  Rng values(4);
  for (int round = 0; round < 1500; ++round) {
    std::vector<Point> readings;
    for (size_t i = 0; i < fx.num_leaves; ++i) {
      readings.push_back({values.Bernoulli(0.5)
                              ? values.UniformDouble(0.30, 0.42)
                              : values.UniformDouble(0.50, 0.62)});
    }
    fx.Round(readings);
  }
  fx.observer.events.clear();

  std::vector<Point> readings(fx.num_leaves, Point{0.38});
  readings[0] = {0.46};  // dead centre of the gap
  fx.Round(readings);

  bool flagged = false;
  for (const auto& e : fx.observer.events) {
    if (e.detector == DetectorKind::kMgdd && e.value[0] == 0.46) {
      flagged = true;
      EXPECT_EQ(e.level, 1);  // MGDD detects only at leaves
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(MgddTest, OnlyLeavesDetect) {
  MgddFixture fx(TestOptions());
  Rng values(5);
  for (int round = 0; round < 1500; ++round) {
    std::vector<Point> readings;
    for (size_t i = 0; i < fx.num_leaves; ++i) {
      readings.push_back(
          {values.Bernoulli(0.01)
               ? values.UniformDouble(0.6, 1.0)  // occasional deviations
               : values.UniformDouble(0.30, 0.45)});
    }
    fx.Round(readings);
  }
  for (const auto& e : fx.observer.events) {
    EXPECT_EQ(e.level, 1);
    EXPECT_EQ(e.detector, DetectorKind::kMgdd);
  }
}

TEST(MgddTest, OnModelChangeModeSendsFewerUpdates) {
  MgddOptions every = TestOptions();
  every.update_mode = GlobalUpdateMode::kEveryChange;
  MgddOptions lazy = TestOptions();
  lazy.update_mode = GlobalUpdateMode::kOnModelChange;
  lazy.push_js_threshold = 0.05;

  uint64_t every_updates = 0, lazy_updates = 0;
  for (int which = 0; which < 2; ++which) {
    MgddFixture fx(which == 0 ? every : lazy, 4, 2, 42);
    Rng values(6);
    // Stationary distribution: the lazy mode should push rarely.
    for (int round = 0; round < 1200; ++round) {
      std::vector<Point> readings;
      for (size_t i = 0; i < fx.num_leaves; ++i) {
        readings.push_back({values.UniformDouble(0.3, 0.5)});
      }
      fx.Round(readings);
    }
    const uint64_t updates =
        fx.sim.stats().MessagesOfKind(kMsgGlobalModelUpdate);
    (which == 0 ? every_updates : lazy_updates) = updates;
  }
  EXPECT_GT(every_updates, 0u);
  EXPECT_LT(lazy_updates, every_updates / 2)
      << "stationary stream should suppress most model pushes";
}

TEST(MgddTest, RobustBandwidthsPropagateToReplicas) {
  // With robust_bandwidth set, the root broadcasts IQR-tempered spreads,
  // and the leaf replica's bandwidths must match what the root's own
  // estimator would use.
  MgddOptions opts = TestOptions();
  opts.model.robust_bandwidth = true;
  MgddFixture fx(opts);
  Rng values(20);
  for (int round = 0; round < 1200; ++round) {
    std::vector<Point> readings;
    for (size_t i = 0; i < fx.num_leaves; ++i) {
      // Spiky: tight bulk + rare excursions, where robust != plain sigma.
      const double v = values.Bernoulli(0.05)
                           ? values.UniformDouble(0.7, 0.9)
                           : values.Gaussian(0.4, 0.005);
      readings.push_back({Clamp(v, 0.0, 1.0)});
    }
    fx.Round(readings);
  }
  const auto& root = static_cast<const MgddInternalNode&>(
      fx.sim.node(fx.ids.back()));
  const auto& leaf = static_cast<const MgddLeafNode&>(fx.sim.node(fx.ids[0]));
  ASSERT_TRUE(leaf.HasGlobalModel());

  const auto root_spreads = root.model().BandwidthSpreads();
  const auto root_sigmas = root.model().StdDevs();
  // The robust spread must actually differ on this workload ...
  EXPECT_LT(root_spreads[0], 0.8 * root_sigmas[0]);
  // ... and the replica's bandwidth must be derived from it, not from the
  // plain sigma.
  const double replica_bw = leaf.GlobalEstimator().bandwidths()[0];
  const double expected_bw = ScottBandwidth(
      root_spreads[0], leaf.GlobalEstimator().sample_size(), 1);
  EXPECT_NEAR(replica_bw, expected_bw, 0.25 * expected_bw);
}

TEST(MgddTest, NoDetectionWithoutGlobalModel) {
  // A leaf with no parent (single-node hierarchy) never receives a global
  // model and therefore never flags.
  auto opts = TestOptions();
  MgddFixture fx(opts, 1, 2);
  Rng values(7);
  for (int round = 0; round < 1000; ++round) {
    fx.Round({{values.UniformDouble(0.3, 0.5)}});
  }
  fx.Round({{0.95}});
  EXPECT_TRUE(fx.observer.events.empty());
}

}  // namespace
}  // namespace sensord
