#include "data/shift_trace.h"

#include <gtest/gtest.h>

#include "stats/moments.h"

namespace sensord {
namespace {

TEST(ShiftTraceTest, PhaseAlternatesEveryPhaseLength) {
  ShiftTraceOptions opts;
  opts.phase_length = 100;
  ShiftingGaussianStream s(opts, Rng(1));
  EXPECT_TRUE(s.IsPhaseA(0));
  EXPECT_TRUE(s.IsPhaseA(99));
  EXPECT_FALSE(s.IsPhaseA(100));
  EXPECT_FALSE(s.IsPhaseA(199));
  EXPECT_TRUE(s.IsPhaseA(200));
}

TEST(ShiftTraceTest, MeansMatchPhases) {
  ShiftTraceOptions opts;
  opts.phase_length = 5000;
  ShiftingGaussianStream s(opts, Rng(2));
  MomentsAccumulator phase_a, phase_b;
  for (int i = 0; i < 10000; ++i) {
    const double v = s.Next()[0];
    (i < 5000 ? phase_a : phase_b).Add(v);
  }
  EXPECT_NEAR(phase_a.mean(), 0.3, 0.01);
  EXPECT_NEAR(phase_b.mean(), 0.5, 0.01);
  EXPECT_NEAR(phase_a.StdDev(), 0.05, 0.01);
}

TEST(ShiftTraceTest, TrueDistributionTracksPhase) {
  ShiftTraceOptions opts;
  opts.phase_length = 10;
  ShiftingGaussianStream s(opts, Rng(3));
  const auto early = s.TrueDistributionAt(5);
  const auto late = s.TrueDistributionAt(15);
  EXPECT_GT(early.Pdf({0.3}), early.Pdf({0.5}));
  EXPECT_GT(late.Pdf({0.5}), late.Pdf({0.3}));
}

TEST(ShiftTraceTest, PositionAdvances) {
  ShiftingGaussianStream s(ShiftTraceOptions{}, Rng(4));
  EXPECT_EQ(s.position(), 0u);
  s.Next();
  s.Next();
  EXPECT_EQ(s.position(), 2u);
}

TEST(ShiftTraceTest, ValuesClampedToUnit) {
  ShiftTraceOptions opts;
  opts.mean_a = 0.02;
  opts.stddev = 0.2;
  ShiftingGaussianStream s(opts, Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const double v = s.Next()[0];
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

}  // namespace
}  // namespace sensord
