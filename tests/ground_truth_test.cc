#include "eval/ground_truth.h"

#include <gtest/gtest.h>

#include "baseline/brute_force_d.h"
#include "baseline/brute_force_m.h"
#include "util/rng.h"

namespace sensord {
namespace {

GroundTruthOptions Options1d(size_t window, double counting_radius) {
  GroundTruthOptions opts;
  opts.dimensions = 1;
  opts.leaf_window = window;
  opts.mdef_cell_side = 2.0 * counting_radius;
  return opts;
}

TEST(GroundTruthTest, LeafPoolMatchesLeafWindow) {
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  GroundTruthTracker tracker(*layout, Options1d(5, 0.01));
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    tracker.AddLeafReading(0, {rng.UniformDouble()});
  }
  EXPECT_DOUBLE_EQ(tracker.PoolSize(0), 5.0);  // capped at the window
  EXPECT_EQ(tracker.LeafWindow(0).size(), 5u);
}

TEST(GroundTruthTest, ParentPoolIsUnionOfChildren) {
  auto layout = BuildGridHierarchy(2, 2);  // slots 0,1 leaves; 2 root
  ASSERT_TRUE(layout.ok());
  GroundTruthTracker tracker(*layout, Options1d(10, 0.01));
  tracker.AddLeafReading(0, {0.2});
  tracker.AddLeafReading(1, {0.8});
  EXPECT_DOUBLE_EQ(tracker.PoolSize(0), 1.0);
  EXPECT_DOUBLE_EQ(tracker.PoolSize(1), 1.0);
  EXPECT_DOUBLE_EQ(tracker.PoolSize(2), 2.0);
  EXPECT_DOUBLE_EQ(tracker.NeighborCount(2, {0.2}, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(tracker.NeighborCount(2, {0.8}, 0.01), 1.0);
}

TEST(GroundTruthTest, EvictionRemovesFromAllAncestors) {
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  GroundTruthTracker tracker(*layout, Options1d(3, 0.01));
  tracker.AddLeafReading(0, {0.1});
  tracker.AddLeafReading(0, {0.2});
  tracker.AddLeafReading(0, {0.3});
  tracker.AddLeafReading(0, {0.4});  // evicts 0.1 everywhere
  EXPECT_DOUBLE_EQ(tracker.NeighborCount(0, {0.1}, 0.001), 0.0);
  EXPECT_DOUBLE_EQ(tracker.NeighborCount(2, {0.1}, 0.001), 0.0);
  EXPECT_DOUBLE_EQ(tracker.PoolSize(2), 3.0);
}

TEST(GroundTruthTest, DistanceTruthMatchesBruteForce) {
  auto layout = BuildGridHierarchy(4, 4);
  ASSERT_TRUE(layout.ok());
  const size_t window = 200;
  GroundTruthTracker tracker(*layout, Options1d(window, 0.01));

  DistanceOutlierConfig cfg;
  cfg.radius = 0.013;  // deliberately not bin-aligned
  cfg.neighbor_threshold = 8.0;

  Rng rng(2);
  std::vector<std::vector<Point>> leaf_history(4);
  const int root = tracker.RootSlot();

  for (int round = 0; round < 600; ++round) {
    for (int leaf = 0; leaf < 4; ++leaf) {
      const Point p{rng.Bernoulli(0.9) ? rng.UniformDouble(0.3, 0.45)
                                       : rng.UniformDouble()};
      tracker.AddLeafReading(leaf, p);
      leaf_history[leaf].push_back(p);
      if (leaf_history[leaf].size() > window) {
        leaf_history[leaf].erase(leaf_history[leaf].begin());
      }

      // Verify the leaf pool and the root pool against brute force.
      EXPECT_EQ(tracker.IsTrueDistanceOutlier(leaf, p, cfg),
                BruteForceIsDistanceOutlier(leaf_history[leaf], p, cfg));
      if (round % 50 == 0) {
        std::vector<Point> pooled;
        for (const auto& h : leaf_history) {
          pooled.insert(pooled.end(), h.begin(), h.end());
        }
        EXPECT_DOUBLE_EQ(tracker.NeighborCount(root, p, cfg.radius),
                         BruteForceNeighborCount(pooled, p, cfg));
      }
    }
  }
}

TEST(GroundTruthTest, MdefTruthMatchesBruteForce1d) {
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  MdefConfig cfg;
  cfg.sampling_radius = 0.08;
  cfg.counting_radius = 0.01;
  const size_t window = 400;
  GroundTruthTracker tracker(*layout, Options1d(window, cfg.counting_radius));

  Rng rng(3);
  std::vector<Point> pooled;
  const int root = tracker.RootSlot();
  for (int round = 0; round < 400; ++round) {
    for (int leaf = 0; leaf < 2; ++leaf) {
      const Point p{rng.UniformDouble(0.3, 0.5)};
      tracker.AddLeafReading(leaf, p);
      pooled.push_back(p);
    }
  }
  // Nothing evicted yet (400 < window): pooled is the exact root pool.
  Rng qrng(4);
  for (int i = 0; i < 100; ++i) {
    const Point q{qrng.UniformDouble(0.25, 0.6)};
    const auto truth = tracker.TrueMdef(root, q, cfg);
    const auto brute = BruteForceMdef(pooled, q, cfg);
    // Same formula over the same counts; empirical masses are fractions of
    // the pool, the tracker works on raw counts — scale-invariant up to
    // floating-point cancellation in the sigma term (hence the 1e-6 slack).
    EXPECT_NEAR(truth.mdef, brute.mdef, 1e-9) << "q=" << q[0];
    EXPECT_NEAR(truth.sigma_mdef, brute.sigma_mdef, 1e-6);
    EXPECT_EQ(truth.is_outlier, brute.is_outlier);
  }
}

TEST(GroundTruthTest, MdefTruthMatchesBruteForce2d) {
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  MdefConfig cfg;
  cfg.sampling_radius = 0.08;
  cfg.counting_radius = 0.01;
  GroundTruthOptions opts;
  opts.dimensions = 2;
  opts.leaf_window = 2000;
  opts.mdef_cell_side = 2.0 * cfg.counting_radius;
  GroundTruthTracker tracker(*layout, opts);

  Rng rng(5);
  std::vector<Point> pooled;
  for (int i = 0; i < 800; ++i) {
    for (int leaf = 0; leaf < 2; ++leaf) {
      const Point p{rng.UniformDouble(0.3, 0.45),
                    rng.UniformDouble(0.3, 0.45)};
      tracker.AddLeafReading(leaf, p);
      pooled.push_back(p);
    }
  }
  const int root = tracker.RootSlot();
  Rng qrng(6);
  for (int i = 0; i < 30; ++i) {
    const Point q{qrng.UniformDouble(0.28, 0.5),
                  qrng.UniformDouble(0.28, 0.5)};
    const auto truth = tracker.TrueMdef(root, q, cfg);
    const auto brute = BruteForceMdef(pooled, q, cfg);
    EXPECT_NEAR(truth.mdef, brute.mdef, 1e-8);
    EXPECT_EQ(truth.is_outlier, brute.is_outlier);
  }
}

TEST(GroundTruthTest, PlantedOutlierDetectedAtRightLevels) {
  // A value common at leaf 0's sibling but absent elsewhere: outlier for
  // leaf 0, not an outlier for the pool that contains the sibling.
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  GroundTruthTracker tracker(*layout, Options1d(1000, 0.01));
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    tracker.AddLeafReading(0, {rng.UniformDouble(0.30, 0.34)});
    tracker.AddLeafReading(1, {rng.UniformDouble(0.60, 0.64)});
  }
  DistanceOutlierConfig cfg;
  cfg.radius = 0.02;
  cfg.neighbor_threshold = 20.0;
  const Point q{0.62};
  EXPECT_TRUE(tracker.IsTrueDistanceOutlier(0, q, cfg));
  EXPECT_FALSE(tracker.IsTrueDistanceOutlier(1, q, cfg));
  EXPECT_FALSE(tracker.IsTrueDistanceOutlier(tracker.RootSlot(), q, cfg));
}

}  // namespace
}  // namespace sensord
