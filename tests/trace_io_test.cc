#include "data/trace_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace sensord {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string Path(const char* name) {
    return testing::TempDir() + "/sensord_" + name;
  }
};

TEST_F(TraceIoTest, RoundTrip1d) {
  const std::string path = Path("roundtrip1d.csv");
  const std::vector<Point> trace{{0.1}, {0.25}, {0.9}};
  ASSERT_TRUE(WriteTraceCsv(path, trace).ok());
  auto read = ReadTraceCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*read)[i][0], trace[i][0], 1e-9);
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, RoundTrip2d) {
  const std::string path = Path("roundtrip2d.csv");
  const std::vector<Point> trace{{0.1, 0.2}, {0.3, 0.4}};
  ASSERT_TRUE(WriteTraceCsv(path, trace).ok());
  auto read = ReadTraceCsv(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_NEAR((*read)[1][1], 0.4, 1e-9);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReadMissingFileFails) {
  auto read = ReadTraceCsv("/nonexistent/path/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), Status::Code::kIoError);
}

TEST_F(TraceIoTest, CommentsAndBlankLinesIgnored) {
  const std::string path = Path("comments.csv");
  {
    std::ofstream out(path);
    out << "# header comment\n\n0.5\n# inline comment\n0.6\n\n";
  }
  auto read = ReadTraceCsv(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 2u);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, InconsistentArityFails) {
  const std::string path = Path("badarity.csv");
  {
    std::ofstream out(path);
    out << "0.1,0.2\n0.3\n";
  }
  EXPECT_FALSE(ReadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, GarbageNumberFails) {
  const std::string path = Path("garbage.csv");
  {
    std::ofstream out(path);
    out << "0.1\nhello\n";
  }
  EXPECT_FALSE(ReadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, EmptyTraceFails) {
  const std::string path = Path("empty.csv");
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_FALSE(ReadTraceCsv(path).ok());
  std::remove(path.c_str());
}

TEST(ReplayStreamTest, RejectsEmpty) {
  EXPECT_FALSE(ReplayStream::Create({}).ok());
}

TEST(ReplayStreamTest, WrapsAround) {
  auto s = ReplayStream::Create({{1.0}, {2.0}});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->Next()[0], 1.0);
  EXPECT_DOUBLE_EQ(s->Next()[0], 2.0);
  EXPECT_DOUBLE_EQ(s->Next()[0], 1.0);
}

TEST(ReplayStreamTest, NoWrapHoldsLast) {
  auto s = ReplayStream::Create({{1.0}, {2.0}}, /*wrap=*/false);
  ASSERT_TRUE(s.ok());
  s->Next();
  s->Next();
  EXPECT_DOUBLE_EQ(s->Next()[0], 2.0);
  EXPECT_DOUBLE_EQ(s->Next()[0], 2.0);
}

TEST(ReplayStreamTest, DimensionsFromTrace) {
  auto s = ReplayStream::Create({{1.0, 2.0, 3.0}});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->dimensions(), 3u);
}

}  // namespace
}  // namespace sensord
