#include "util/flat_points.h"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sensord {
namespace {

TEST(FlatPointsTest, DefaultConstructedIsEmptyWithZeroDims) {
  FlatPoints fp;
  EXPECT_TRUE(fp.empty());
  EXPECT_EQ(fp.size(), 0u);
  EXPECT_EQ(fp.dimensions(), 0u);
}

TEST(FlatPointsTest, FromPointsRoundTripsThroughToPoints) {
  const std::vector<Point> pts = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
  const FlatPoints fp = FlatPoints::FromPoints(pts);
  EXPECT_EQ(fp.dimensions(), 2u);
  EXPECT_EQ(fp.size(), 3u);
  EXPECT_EQ(fp.ToPoints(), pts);
}

TEST(FlatPointsTest, FromEmptyVectorHasZeroDimensions) {
  const FlatPoints fp = FlatPoints::FromPoints({});
  EXPECT_TRUE(fp.empty());
  EXPECT_EQ(fp.dimensions(), 0u);
}

TEST(FlatPointsTest, RowMajorLayoutIsContiguous) {
  FlatPoints fp(3);
  fp.Append({1.0, 2.0, 3.0});
  fp.Append({4.0, 5.0, 6.0});
  ASSERT_EQ(fp.data().size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(fp.data()[i], static_cast<double>(i + 1));
  }
  EXPECT_EQ(fp.At(1, 2), 6.0);
  EXPECT_EQ(fp.Row(1)[0], 4.0);
}

TEST(FlatPointsTest, AppendRowReturnsWritableStorage) {
  FlatPoints fp(2);
  double* row = fp.AppendRow();
  row[0] = 7.0;
  row[1] = 8.0;
  EXPECT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp.At(0, 0), 7.0);
  EXPECT_EQ(fp.At(0, 1), 8.0);
}

TEST(FlatPointsTest, ResetKeepsCapacityAndClearsRows) {
  FlatPoints fp(2);
  fp.Reserve(64);
  for (int i = 0; i < 64; ++i) {
    fp.Append({static_cast<double>(i), 0.0});
  }
  const double* storage = fp.data().data();
  fp.Reset(2);
  EXPECT_TRUE(fp.empty());
  for (int i = 0; i < 64; ++i) {
    fp.Append({0.0, static_cast<double>(i)});
  }
  EXPECT_EQ(fp.data().data(), storage) << "Reset() must keep capacity";
}

TEST(FlatPointsTest, ResetCanChangeStride) {
  FlatPoints fp(2);
  fp.Append({0.1, 0.2});
  fp.Reset(3);
  EXPECT_EQ(fp.dimensions(), 3u);
  EXPECT_EQ(fp.size(), 0u);
  fp.Append({1.0, 2.0, 3.0});
  EXPECT_EQ(fp.size(), 1u);
}

TEST(FlatPointsTest, PointViewReadsRowWithoutCopy) {
  FlatPoints fp(2);
  fp.Append({0.25, 0.75});
  const PointView v = fp.View(0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 0.25);
  EXPECT_EQ(v[1], 0.75);
  EXPECT_EQ(v.data(), fp.Row(0));
  EXPECT_EQ(v.ToPoint(), (Point{0.25, 0.75}));
  double sum = 0.0;
  for (double c : v) sum += c;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(FlatPointsTest, SwapRowsExchangesAllCoordinates) {
  FlatPoints fp(2);
  fp.Append({1.0, 2.0});
  fp.Append({3.0, 4.0});
  fp.SwapRows(0, 1);
  EXPECT_EQ(fp.ToPoint(0), (Point{3.0, 4.0}));
  EXPECT_EQ(fp.ToPoint(1), (Point{1.0, 2.0}));
}

TEST(FlatPointsTest, SortRowsOrdersByComparator) {
  Rng rng(1);
  FlatPoints fp(2);
  for (int i = 0; i < 257; ++i) {
    fp.Append({rng.UniformDouble(), rng.UniformDouble()});
  }
  fp.SortRows([&fp](size_t a, size_t b) {
    return fp.At(a, 0) < fp.At(b, 0);
  });
  for (size_t row = 1; row < fp.size(); ++row) {
    EXPECT_LE(fp.At(row - 1, 0), fp.At(row, 0));
  }
}

TEST(FlatPointsTest, SortRowsIsDeterministicAcrossInputPermutations) {
  // With a comparator whose ties are fully interchangeable (identical
  // rows), any input permutation must sort to the same buffer.
  Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    const double v = static_cast<double>(rng.UniformUint64(10));
    pts.push_back({v, v * 2.0});
  }
  auto sorted = [](std::vector<Point> p) {
    FlatPoints fp = FlatPoints::FromPoints(p);
    fp.SortRows([&fp](size_t a, size_t b) {
      if (fp.At(a, 0) != fp.At(b, 0)) return fp.At(a, 0) < fp.At(b, 0);
      return fp.At(a, 1) < fp.At(b, 1);
    });
    return fp;
  };
  const FlatPoints reference = sorted(pts);
  Rng shuffler(3);
  for (int trial = 0; trial < 10; ++trial) {
    for (size_t i = pts.size(); i > 1; --i) {
      std::swap(pts[i - 1], pts[shuffler.UniformUint64(i)]);
    }
    EXPECT_EQ(sorted(pts), reference) << "trial " << trial;
  }
}

TEST(FlatPointsTest, SortRowsHandlesDegenerateSizes) {
  FlatPoints empty(2);
  empty.SortRows([](size_t, size_t) { return false; });
  EXPECT_TRUE(empty.empty());

  FlatPoints one(2);
  one.Append({0.5, 0.5});
  one.SortRows([](size_t, size_t) { return false; });
  EXPECT_EQ(one.ToPoint(0), (Point{0.5, 0.5}));
}

TEST(FlatPointsTest, EqualityComparesStrideAndCoordinates) {
  FlatPoints a(2), b(2);
  a.Append({0.1, 0.2});
  b.Append({0.1, 0.2});
  EXPECT_EQ(a, b);
  b.Append({0.3, 0.4});
  EXPECT_NE(a, b);
  // Same flat buffer, different stride: not equal.
  FlatPoints c(1);
  c.Append({0.1});
  c.Append({0.2});
  EXPECT_NE(a, c);
}

TEST(FlatPointsTest, MutableDataAllowsInPlaceSortOf1d) {
  FlatPoints fp(1);
  for (double v : {0.9, 0.1, 0.5, 0.3}) fp.Append({v});
  std::sort(fp.mutable_data()->begin(), fp.mutable_data()->end());
  EXPECT_EQ(fp.ToPoints(),
            (std::vector<Point>{{0.1}, {0.3}, {0.5}, {0.9}}));
}

}  // namespace
}  // namespace sensord
