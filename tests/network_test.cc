#include "net/network.h"

#include <vector>

#include <gtest/gtest.h>

namespace sensord {
namespace {

// Test node: records everything it receives and can echo to a target.
class ProbeNode : public Node {
 public:
  void HandleMessage(const Message& msg) override {
    received.push_back(msg);
  }
  void OnReading(const Point& value) override { readings.push_back(value); }
  void OnStart() override { started = true; }

  std::vector<Message> received;
  std::vector<Point> readings;
  bool started = false;
};

TEST(SimulatorTest, AddNodeAssignsDenseIds) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(sim.NumNodes(), 2u);
}

TEST(SimulatorTest, SendDeliversAfterLatency) {
  SimulatorOptions opts;
  opts.hop_latency = 0.25;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());

  Message msg;
  msg.from = a;
  msg.to = b;
  msg.kind = 42;
  msg.size_numbers = 3;
  sim.Send(std::move(msg));

  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  EXPECT_TRUE(receiver.received.empty());
  sim.RunUntil(0.2);
  EXPECT_TRUE(receiver.received.empty());  // still in flight
  sim.RunUntil(0.3);
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].kind, 42);
  EXPECT_EQ(receiver.received[0].from, a);
}

TEST(SimulatorTest, StatsCountMessagesAndBytes) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    msg.kind = 7;
    msg.size_numbers = 2;
    sim.Send(std::move(msg));
  }
  EXPECT_EQ(sim.stats().TotalMessages(), 5u);
  EXPECT_EQ(sim.stats().MessagesOfKind(7), 5u);
  EXPECT_EQ(sim.stats().MessagesOfKind(8), 0u);
  EXPECT_EQ(sim.stats().TotalNumbers(), 10u);
  EXPECT_EQ(sim.stats().TotalBytes(2), 20u);
  EXPECT_DOUBLE_EQ(sim.stats().MessagesPerSecond(5.0), 1.0);
}

TEST(SimulatorTest, StatsReset) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  sim.stats().Reset();
  EXPECT_EQ(sim.stats().TotalMessages(), 0u);
}

TEST(SimulatorTest, InstantiateWiresHierarchy) {
  auto layout = BuildGridHierarchy(4, 2);
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  const auto ids = sim.Instantiate(
      *layout, [](int, const HierarchyNodeSpec&) {
        return std::make_unique<ProbeNode>();
      });
  ASSERT_EQ(ids.size(), 7u);  // 4 + 2 + 1

  int leaves = 0, roots = 0;
  for (NodeId id : ids) {
    const Node& n = sim.node(id);
    if (n.is_leaf()) {
      ++leaves;
      EXPECT_NE(n.parent(), kNoNode);
      EXPECT_TRUE(n.children().empty());
    }
    if (n.is_root()) {
      ++roots;
      EXPECT_EQ(n.level(), 3);
    }
    EXPECT_TRUE(static_cast<const ProbeNode&>(n).started);
  }
  EXPECT_EQ(leaves, 4);
  EXPECT_EQ(roots, 1);

  // Parent of leaf 0 lists leaf 0 among its children.
  const Node& leaf0 = sim.node(ids[0]);
  const Node& parent = sim.node(leaf0.parent());
  bool found = false;
  for (NodeId c : parent.children()) found |= (c == ids[0]);
  EXPECT_TRUE(found);
}

TEST(SimulatorTest, DeliverReadingIsImmediateAndFree) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.DeliverReading(a, {0.5});
  auto& node = static_cast<ProbeNode&>(sim.node(a));
  ASSERT_EQ(node.readings.size(), 1u);
  EXPECT_DOUBLE_EQ(node.readings[0][0], 0.5);
  EXPECT_EQ(sim.stats().TotalMessages(), 0u);  // sensing is not a message
}

TEST(SimulatorTest, PeriodicReadingsRespectHorizon) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  int produced = 0;
  sim.SchedulePeriodicReadings(a, 0.0, 1.0, [&]() {
    ++produced;
    return Point{0.1};
  });
  sim.RunUntil(10.0);
  auto& node = static_cast<ProbeNode&>(sim.node(a));
  EXPECT_EQ(node.readings.size(), 11u);  // t = 0..10 inclusive
  EXPECT_EQ(produced, 11);
}

TEST(SimulatorTest, PeriodicReadingsResumeAcrossRunUntilCalls) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.SchedulePeriodicReadings(a, 0.5, 1.0, []() { return Point{0.2}; });
  sim.RunUntil(2.0);
  auto& node = static_cast<ProbeNode&>(sim.node(a));
  EXPECT_EQ(node.readings.size(), 2u);  // 0.5, 1.5
  sim.RunUntil(4.0);
  EXPECT_EQ(node.readings.size(), 4u);  // + 2.5, 3.5
}

TEST(SimulatorTest, PacketLossDropsButCounts) {
  SimulatorOptions opts;
  opts.drop_probability = 0.5;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  }
  sim.RunUntil(1.0);
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  // All sends are charged (the radio spent the energy) ...
  EXPECT_EQ(sim.stats().TotalMessages(), static_cast<uint64_t>(sent));
  // ... but about half never arrive.
  EXPECT_EQ(receiver.received.size() + sim.MessagesDropped(),
            static_cast<uint64_t>(sent));
  EXPECT_NEAR(static_cast<double>(sim.MessagesDropped()) / sent, 0.5, 0.05);
  // One source of truth: the simulator's convenience accessor and the stats
  // collector must agree on every path that records a drop.
  EXPECT_EQ(sim.MessagesDropped(), sim.stats().MessagesDropped());
}

TEST(SimulatorTest, EnergyAccounting) {
  SimulatorOptions opts;
  opts.tx_cost_per_message = 1.0;
  opts.tx_cost_per_number = 0.1;
  opts.rx_cost_per_message = 0.5;
  opts.rx_cost_per_number = 0.05;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  Message msg;
  msg.from = a;
  msg.to = b;
  msg.size_numbers = 4;
  sim.Send(std::move(msg));
  sim.RunUntil(1.0);
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(a), 1.0 + 0.4);  // tx
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(b), 0.5 + 0.2);  // rx
  EXPECT_DOUBLE_EQ(sim.TotalEnergyConsumed(), 2.1);
}

TEST(SimulatorTest, DroppedMessageStillChargesSender) {
  SimulatorOptions opts;
  opts.drop_probability = 1.0 - 1e-12;  // effectively always dropped
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  for (int i = 0; i < 10; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  }
  sim.RunUntil(1.0);
  EXPECT_GT(sim.EnergyConsumed(a), 9.0);   // every tx was paid for
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(b), 0.0);  // nothing arrived
}

TEST(SimulatorTest, ReliableLinksDropNothing) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  for (int i = 0; i < 100; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  }
  sim.RunUntil(1.0);
  EXPECT_EQ(sim.MessagesDropped(), 0u);
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 100u);
}

TEST(SimulatorTest, ZeroLatencyStillUsesEventQueue) {
  SimulatorOptions opts;
  opts.hop_latency = 0.0;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  EXPECT_TRUE(receiver.received.empty());  // not synchronous
  sim.RunUntil(0.0);
  EXPECT_EQ(receiver.received.size(), 1u);
}

}  // namespace
}  // namespace sensord
