// Soak suite (ctest label: soak): many-seed fault-injection sweeps over the
// full D3/MGDD message-level simulation.
//
//  * Recovery: with a 20% lossy radio, the ack/retransmit transport must
//    recover >= 95% of the loss-free D3 outlier set (and >= 90% for MGDD),
//    while plain datagrams demonstrably do not — the end-to-end argument
//    for carrying a reliability layer in a sensor network simulator.
//  * Invariants: across seeds x loss rates, with crashes and partitions
//    injected, the paper's Theorem 3 containment (every parent detection is
//    backed by a leaf detection of the same reading) must hold, the event
//    queue must drain, and drop accounting must stay consistent.
//  * Determinism: identical (seed, schedule) => identical event history.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/d3.h"
#include "core/mgdd.h"
#include "net/fault_schedule.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {
namespace {

// (level, node, source_leaf, source_seq) of one detection.
using EventKey = std::tuple<int, NodeId, NodeId, uint64_t>;

class RecordingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

// One reading per (round, leaf), identical across every run of a sweep so
// that only the radio differs between configurations. Injected anomalies
// (every 5th round, two leaves) land in [anomaly_lo, anomaly_hi] — the
// "true" outliers the recovery ratio tracks. D3 wants them far from the
// band (near-zero neighbour count); MDEF wants them just past the band,
// where the sampling neighbourhood still sees the band's mass (points in
// empty space are guarded off by min_neighborhood_mass).
std::vector<std::vector<Point>> MakeReadings(uint64_t seed, int rounds,
                                             int leaves, double anomaly_lo,
                                             double anomaly_hi) {
  Rng rng(seed);
  std::vector<std::vector<Point>> readings(
      static_cast<size_t>(rounds),
      std::vector<Point>(static_cast<size_t>(leaves)));
  for (int round = 0; round < rounds; ++round) {
    for (int leaf = 0; leaf < leaves; ++leaf) {
      readings[round][leaf] = {Clamp(rng.Gaussian(0.4, 0.01), 0.0, 1.0)};
    }
    if (round % 5 == 0) {
      const int which = round / 5;
      readings[round][which % leaves] = {
          rng.UniformDouble(anomaly_lo, anomaly_hi)};
      readings[round][(which + leaves / 2) % leaves] = {
          rng.UniformDouble(anomaly_lo, anomaly_hi)};
    }
  }
  return readings;
}

D3Options SoakD3() {
  D3Options opts;
  opts.model.window_size = 500;
  opts.model.sample_size = 100;
  opts.outlier.radius = 0.02;
  opts.outlier.neighbor_threshold = 10.0;
  opts.min_observations = 200;
  return opts;
}

MgddOptions SoakMgdd() {
  MgddOptions opts;
  opts.model.window_size = 400;
  opts.model.sample_size = 64;
  opts.min_observations = 200;
  // Scott's-rule bandwidths over bimodal data partially smear the gap, so
  // the deviation threshold sits below the paper's default (the same
  // regime as MgddTest.DetectsDeviationAgainstGlobalModel).
  opts.mdef.k_sigma = 0.5;
  return opts;
}

// MGDD workload: two dense uniform bands with an empty gap; anomalies are
// rare gap readings — the canonical local-density (MDEF) outlier.
std::vector<std::vector<Point>> MakeBimodalReadings(uint64_t seed, int rounds,
                                                    int leaves) {
  Rng rng(seed);
  std::vector<std::vector<Point>> readings(
      static_cast<size_t>(rounds),
      std::vector<Point>(static_cast<size_t>(leaves)));
  for (int round = 0; round < rounds; ++round) {
    for (int leaf = 0; leaf < leaves; ++leaf) {
      readings[round][leaf] = {rng.Bernoulli(0.5)
                                   ? rng.UniformDouble(0.30, 0.42)
                                   : rng.UniformDouble(0.50, 0.62)};
    }
    if (round % 5 == 0) {
      const int which = round / 5;
      readings[round][which % leaves] = {rng.UniformDouble(0.44, 0.48)};
      readings[round][(which + leaves / 2) % leaves] = {
          rng.UniformDouble(0.44, 0.48)};
    }
  }
  return readings;
}

struct RunResult {
  std::vector<OutlierEvent> events;
  uint64_t retries = 0;
  uint64_t abandoned = 0;
  uint64_t dropped = 0;
  size_t pending_events = 0;
};

enum class Detector { kD3, kMgdd };

RunResult RunDetector(Detector detector,
                      const std::vector<std::vector<Point>>& readings,
                      size_t fanout, uint64_t seed, double loss,
                      bool reliable,
                      const std::function<void(Simulator&)>& inject = {},
                      double checkpoint_interval = 0.0) {
  const size_t leaves = readings.empty() ? 0 : readings[0].size();
  SimulatorOptions sim_opts;
  sim_opts.drop_probability = loss;
  sim_opts.loss_seed = seed * 7919 + 17;
  sim_opts.fault_seed = seed * 104729 + 5;
  sim_opts.recovery.checkpoint_interval = checkpoint_interval;
  sim_opts.transport.reliable = reliable;
  sim_opts.transport.ack_timeout = 0.05;
  sim_opts.transport.backoff_factor = 2.0;
  sim_opts.transport.max_retries = 4;
  Simulator sim(sim_opts);

  RecordingObserver observer;
  Rng node_rng(seed * 1000 + 7);
  auto layout = BuildGridHierarchy(leaves, fanout);
  std::vector<NodeId> ids;
  if (detector == Detector::kD3) {
    ids = sim.Instantiate(
        *layout,
        [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<D3LeafNode>(SoakD3(), node_rng.Split(),
                                                &observer);
          }
          D3Options opts = SoakD3();
          opts.model =
              LeaderModelConfig(SoakD3().model, fanout, 0.5, spec.level);
          opts.min_observations = 50;
          return std::make_unique<D3ParentNode>(opts, node_rng.Split(),
                                                &observer);
        });
  } else {
    ids = sim.Instantiate(
        *layout,
        [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<MgddLeafNode>(SoakMgdd(), node_rng.Split(),
                                                  &observer);
          }
          MgddOptions opts = SoakMgdd();
          opts.model =
              LeaderModelConfig(SoakMgdd().model, fanout, 0.5, spec.level);
          return std::make_unique<MgddInternalNode>(opts, node_rng.Split());
        });
  }
  if (inject) inject(sim);

  double t = 0.0;
  for (const auto& round : readings) {
    for (size_t leaf = 0; leaf < leaves; ++leaf) {
      sim.DeliverReading(ids[leaf], round[leaf]);
    }
    t += 1.0;
    sim.RunUntil(t);
  }
  sim.RunAll();  // drain retransmission tails

  RunResult result;
  result.events = std::move(observer.events);
  result.retries = sim.transport().retries();
  result.abandoned = sim.transport().abandoned();
  result.dropped = sim.MessagesDropped();
  result.pending_events = sim.PendingEvents();
  EXPECT_EQ(sim.MessagesDropped(), sim.stats().MessagesDropped());
  return result;
}

// Readings (source_leaf, source_seq) of injected anomalies (value inside
// [lo, hi], a range the background never produces) that were detected at
// level >= min_level. Keying on the reading — not on which parent node or
// level reported it — makes the recovery ratio about whether the outlier
// survived the radio at all, not about borderline per-node confirmations
// that flip with retransmission-induced timing drift.
std::set<std::pair<NodeId, uint64_t>> AnomalyKeys(
    const std::vector<OutlierEvent>& events, int min_level, double lo,
    double hi) {
  std::set<std::pair<NodeId, uint64_t>> keys;
  for (const OutlierEvent& e : events) {
    if (e.level < min_level || e.value.empty()) continue;
    if (e.value[0] < lo || e.value[0] > hi) continue;
    keys.insert({e.source_leaf, e.source_seq});
  }
  return keys;
}

TEST(SimSoakTest, RetriesRecoverTheLossFreeOutlierSet) {
  const int kRounds = 600;
  const int kLeaves = 16;
  const size_t kFanout = 4;
  const double kLoss = 0.2;

  size_t d3_base_total = 0, d3_on_hits = 0, d3_off_hits = 0;
  size_t mgdd_base_total = 0, mgdd_on_hits = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    // D3: far extremes (near-zero neighbour count), scored on escalations
    // (level >= 2) — the events that need the radio.
    const auto d3_readings =
        MakeReadings(seed, kRounds, kLeaves, 0.60, 1.0);
    const auto base = AnomalyKeys(
        RunDetector(Detector::kD3, d3_readings, kFanout, seed, 0.0, false)
            .events,
        /*min_level=*/2, 0.55, 1.0);
    const auto lossy_on = AnomalyKeys(
        RunDetector(Detector::kD3, d3_readings, kFanout, seed, kLoss, true)
            .events,
        2, 0.55, 1.0);
    const auto lossy_off = AnomalyKeys(
        RunDetector(Detector::kD3, d3_readings, kFanout, seed, kLoss, false)
            .events,
        2, 0.55, 1.0);
    ASSERT_GT(base.size(), 50u) << "baseline must detect the anomalies";
    d3_base_total += base.size();
    for (const auto& key : base) {
      d3_on_hits += lossy_on.count(key);
      d3_off_hits += lossy_off.count(key);
    }

    // MGDD: bimodal bands with gap anomalies (MDEF's local-density
    // regime). Detection happens at the leaves; what the radio carries is
    // the global model, so score all detection events.
    const auto mgdd_readings =
        MakeBimodalReadings(seed + 100, kRounds, kLeaves);
    const auto mgdd_base = AnomalyKeys(
        RunDetector(Detector::kMgdd, mgdd_readings, kFanout, seed, 0.0, false)
            .events,
        /*min_level=*/1, 0.43, 0.49);
    const auto mgdd_on = AnomalyKeys(
        RunDetector(Detector::kMgdd, mgdd_readings, kFanout, seed, kLoss, true)
            .events,
        1, 0.43, 0.49);
    ASSERT_GT(mgdd_base.size(), 50u);
    mgdd_base_total += mgdd_base.size();
    for (const auto& key : mgdd_base) mgdd_on_hits += mgdd_on.count(key);
  }

  const double d3_on = static_cast<double>(d3_on_hits) /
                       static_cast<double>(d3_base_total);
  const double d3_off = static_cast<double>(d3_off_hits) /
                        static_cast<double>(d3_base_total);
  const double mgdd_on = static_cast<double>(mgdd_on_hits) /
                         static_cast<double>(mgdd_base_total);
  RecordProperty("d3_recovery_with_retries", std::to_string(d3_on));
  RecordProperty("d3_recovery_without_retries", std::to_string(d3_off));
  RecordProperty("mgdd_recovery_with_retries", std::to_string(mgdd_on));

  // The acceptance bar: retries restore >= 95% of the loss-free D3 set;
  // plain datagrams lose escalations at roughly the per-hop loss rate.
  EXPECT_GE(d3_on, 0.95) << "retries must recover the loss-free outlier set";
  EXPECT_LE(d3_off, 0.90) << "without retries 20% loss must visibly hurt";
  EXPECT_LT(d3_off, d3_on);
  EXPECT_GE(mgdd_on, 0.90);
}

TEST(SimSoakTest, InvariantsHoldAcrossSeedsAndFaults) {
  // 20 seeds x 3 loss rates, with a mid-run leaf crash and a partition of
  // one subtree, reliable transport on.
  const int kRounds = 250;
  const int kLeaves = 4;
  const size_t kFanout = 2;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (double loss : {0.0, 0.1, 0.3}) {
      const auto readings = MakeReadings(seed, kRounds, kLeaves, 0.60, 1.0);
      const RunResult run = RunDetector(
          Detector::kD3, readings, kFanout, seed, loss, /*reliable=*/true,
          [](Simulator& sim) {
            sim.faults().CrashNode(0, 80.0, 120.0);
            sim.faults().Partition({2, 3}, 150.0, 180.0);
          });

      // The queue drained: no stuck retransmission timers or lost wakeups.
      EXPECT_EQ(run.pending_events, 0u) << "seed " << seed << " loss " << loss;

      // Theorem 3 containment: every escalated detection is backed by a
      // leaf detection of the very same reading.
      std::set<std::pair<NodeId, uint64_t>> leaf_detections;
      for (const OutlierEvent& e : run.events) {
        if (e.level == 1) leaf_detections.insert({e.source_leaf, e.source_seq});
      }
      for (const OutlierEvent& e : run.events) {
        if (e.level < 2) continue;
        EXPECT_TRUE(leaf_detections.count({e.source_leaf, e.source_seq}))
            << "parent " << e.node << " detected a reading no leaf flagged "
            << "(seed " << seed << ", loss " << loss << ")";
      }

      // Under loss the transport actually worked for its living.
      if (loss > 0.0) {
        EXPECT_GT(run.retries, 0u);
      }
    }
  }
}

std::string EventHistory(const std::vector<OutlierEvent>& events) {
  std::string out;
  for (const OutlierEvent& e : events) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "t=%.9f det=%d node=%u level=%d leaf=%u seq=%llu deg=%d\n",
                  e.time, static_cast<int>(e.detector), e.node, e.level,
                  e.source_leaf,
                  static_cast<unsigned long long>(e.source_seq),
                  e.degraded ? 1 : 0);
    out += line;
  }
  return out;
}

// Seed sweep width for the crash-recovery soak; scripts/ci.sh widens it via
// SENSORD_SOAK_SEEDS for the nightly run.
uint64_t SoakSeedCount() {
  if (const char* env = std::getenv("SENSORD_SOAK_SEEDS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<uint64_t>(n);
  }
  return 4;
}

// Anomaly keys for crash runs. A crashed leaf misses every reading of its
// down window, so its post-restart seq counter runs behind the loss-free
// baseline and (leaf, seq) keys stop matching. The injected readings are
// deterministic and anomaly values are continuous draws (unique within a
// run with probability 1), so (leaf, value) identifies the same reading
// across fault schedules.
std::set<std::pair<NodeId, double>> AnomalyValueKeys(
    const std::vector<OutlierEvent>& events, int min_level, double lo,
    double hi) {
  std::set<std::pair<NodeId, double>> keys;
  for (const OutlierEvent& e : events) {
    if (e.level < min_level || e.value.empty()) continue;
    if (e.value[0] < lo || e.value[0] > hi) continue;
    keys.insert({e.source_leaf, e.value[0]});
  }
  return keys;
}

// Two leaves each lose their entire volatile state mid-run (amnesia crash)
// while the 20% lossy radio keeps running. With periodic checkpoints the
// restarted leaves resume from near-current models and the detected outlier
// set stays close to the loss-free baseline; with checkpointing off they
// cold-start and must re-learn min_observations readings, which measurably
// costs detections. Crashes land after the first checkpoints exist so that
// time-to-recover reflects the restore path, not initial warm-up.
TEST(SimSoakTest, AmnesiaCrashRecoverySoak) {
  const int kRounds = 600;
  const int kLeaves = 16;
  const size_t kFanout = 4;
  const double kLoss = 0.2;
  const double kCheckpointInterval = 50.0;
  const auto inject = [](Simulator& sim) {
    sim.faults().CrashNode(1, 250.0, 270.0, CrashKind::kAmnesia);
    sim.faults().CrashNode(9, 380.0, 400.0, CrashKind::kAmnesia);
  };

  auto& registry = obs::MetricsRegistry::Global();
  registry.ResetValues();

  // Phase 1: loss-free baselines and checkpointed crash runs. The TTR
  // histogram is read before any cold-start run pollutes it.
  size_t base_total = 0, ckpt_hits = 0;
  std::vector<std::set<std::pair<NodeId, double>>> base_keys;
  for (uint64_t seed = 1; seed <= SoakSeedCount(); ++seed) {
    const auto readings = MakeReadings(seed, kRounds, kLeaves, 0.60, 1.0);
    base_keys.push_back(AnomalyValueKeys(
        RunDetector(Detector::kD3, readings, kFanout, seed, 0.0, false)
            .events,
        /*min_level=*/2, 0.55, 1.0));
    ASSERT_GT(base_keys.back().size(), 50u);
    const auto ckpt = AnomalyValueKeys(
        RunDetector(Detector::kD3, readings, kFanout, seed, kLoss,
                    /*reliable=*/true, inject, kCheckpointInterval)
            .events,
        2, 0.55, 1.0);
    base_total += base_keys.back().size();
    for (const auto& key : base_keys.back()) ckpt_hits += ckpt.count(key);
  }
  EXPECT_GT(registry.GetCounter("recovery.restored_from_checkpoint")->value(),
            0u);
  EXPECT_EQ(registry.GetCounter("recovery.cold_restarts")->value(), 0u)
      << "with warm checkpoints every restart must restore";
  const double ttr_p95 =
      registry
          .GetHistogram("recovery.time_to_recover_s",
                        obs::DurationBoundariesS())
          ->Quantile(0.95);
  RecordProperty("ttr_p95_s", std::to_string(ttr_p95));
  EXPECT_LT(ttr_p95, 2.0 * kCheckpointInterval);

  // Phase 2: same crashes, checkpointing off — the counterfactual.
  size_t cold_hits = 0;
  for (uint64_t seed = 1; seed <= SoakSeedCount(); ++seed) {
    const auto readings = MakeReadings(seed, kRounds, kLeaves, 0.60, 1.0);
    const auto cold = AnomalyValueKeys(
        RunDetector(Detector::kD3, readings, kFanout, seed, kLoss,
                    /*reliable=*/true, inject, /*checkpoint_interval=*/0.0)
            .events,
        2, 0.55, 1.0);
    for (const auto& key : base_keys[seed - 1]) cold_hits += cold.count(key);
  }
  EXPECT_GT(registry.GetCounter("recovery.cold_restarts")->value(), 0u);

  const double ckpt_recall =
      static_cast<double>(ckpt_hits) / static_cast<double>(base_total);
  const double cold_recall =
      static_cast<double>(cold_hits) / static_cast<double>(base_total);
  RecordProperty("ckpt_recall", std::to_string(ckpt_recall));
  RecordProperty("cold_recall", std::to_string(cold_recall));
  EXPECT_GE(ckpt_recall, 0.90)
      << "checkpointed leaves must rejoin without losing the outlier set";
  EXPECT_LT(cold_recall, ckpt_recall)
      << "cold restarts must measurably cost detections";
}

TEST(SimSoakTest, AmnesiaRecoveryReplaysIdentically) {
  const int kRounds = 400;
  const int kLeaves = 8;
  const auto readings = MakeReadings(5, kRounds, kLeaves, 0.60, 1.0);
  const auto inject = [](Simulator& sim) {
    sim.faults().CrashNode(2, 150.0, 170.0, CrashKind::kAmnesia);
    sim.faults().CrashNode(6, 260.0, 280.0, CrashKind::kAmnesia);
  };
  const RunResult a =
      RunDetector(Detector::kD3, readings, 4, /*seed=*/5, 0.15,
                  /*reliable=*/true, inject, /*checkpoint_interval=*/40.0);
  const RunResult b =
      RunDetector(Detector::kD3, readings, 4, /*seed=*/5, 0.15,
                  /*reliable=*/true, inject, /*checkpoint_interval=*/40.0);
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(EventHistory(a.events), EventHistory(b.events))
      << "amnesia crash + checkpoint restore must replay bit-identically";
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.retries, b.retries);
}

TEST(SimSoakTest, SameSeedReplaysIdenticalEventHistory) {
  const int kRounds = 300;
  const int kLeaves = 8;
  for (uint64_t seed : {3u, 11u}) {
    const auto readings = MakeReadings(seed, kRounds, kLeaves, 0.60, 1.0);
    const auto inject = [](Simulator& sim) {
      LinkFault flaky;
      flaky.drop_probability = 0.15;
      flaky.duplicate_probability = 0.05;
      flaky.jitter_max = 0.01;
      sim.faults().SetDefaultLinkFault(flaky);
      sim.faults().CrashNode(1, 100.0, 130.0);
    };
    const RunResult a = RunDetector(Detector::kD3, readings, 4, seed, 0.1,
                                    /*reliable=*/true, inject);
    const RunResult b = RunDetector(Detector::kD3, readings, 4, seed, 0.1,
                                    /*reliable=*/true, inject);
    ASSERT_FALSE(a.events.empty());
    EXPECT_EQ(EventHistory(a.events), EventHistory(b.events))
        << "seed " << seed << " must replay bit-identically";
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.retries, b.retries);
  }
}

}  // namespace
}  // namespace sensord
