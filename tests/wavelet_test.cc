#include "stats/wavelet.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "stats/divergence.h"
#include "stats/empirical.h"
#include "util/rng.h"

namespace sensord {
namespace {

std::vector<Point> GaussianData(Rng* rng, size_t n, double mean, double sd) {
  std::vector<Point> out;
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Clamp(rng->Gaussian(mean, sd), 0.0, 1.0)});
  }
  return out;
}

TEST(WaveletTest, RejectsBadInput) {
  EXPECT_FALSE(WaveletSynopsis::Build({}, 8).ok());
  EXPECT_FALSE(WaveletSynopsis::Build({{0.5}}, 0).ok());
  EXPECT_FALSE(WaveletSynopsis::Build({{0.5, 0.5}}, 8).ok());
  EXPECT_FALSE(WaveletSynopsis::Build({{0.5}}, 8, 0).ok());
  EXPECT_FALSE(WaveletSynopsis::Build({{0.5}}, 8, 21).ok());
}

TEST(WaveletTest, TotalMassIsOne) {
  Rng rng(1);
  auto w = WaveletSynopsis::Build(GaussianData(&rng, 2000, 0.4, 0.08), 64);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR(w->BoxProbability({-1.0}, {2.0}), 1.0, 1e-9);
  EXPECT_NEAR(w->BoxProbability({0.0}, {1.0}), 1.0, 1e-9);
}

TEST(WaveletTest, FullCoefficientSetIsExactOnGrid) {
  // With every coefficient kept, the synopsis is the exact equi-width
  // histogram of the data at the grid resolution.
  Rng rng(2);
  const auto data = GaussianData(&rng, 3000, 0.5, 0.1);
  auto w = WaveletSynopsis::Build(data, 1u << 8, /*levels=*/8);
  ASSERT_TRUE(w.ok());
  // Compare mass on grid-aligned intervals against the exact empirical.
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  for (int b = 0; b < 16; ++b) {
    const double lo = b / 16.0, hi = (b + 1) / 16.0;
    // Half-open alignment: shrink the top to avoid boundary-point
    // double-count differences.
    EXPECT_NEAR(w->BoxProbability({lo}, {hi}),
                e->BoxProbability({lo}, {hi - 1e-12}), 0.01)
        << "bucket " << b;
  }
}

TEST(WaveletTest, CoefficientBudgetRespected) {
  Rng rng(3);
  const auto data = GaussianData(&rng, 2000, 0.4, 0.08);
  for (size_t budget : {4u, 16u, 64u}) {
    auto w = WaveletSynopsis::Build(data, budget);
    ASSERT_TRUE(w.ok());
    EXPECT_LE(w->NumCoefficients(), budget);
    EXPECT_EQ(w->MemoryBytes(2), w->NumCoefficients() * 4);
  }
}

TEST(WaveletTest, AccuracyImprovesWithBudget) {
  SyntheticMixtureStream stream(SyntheticOptions{}, Rng(4));
  std::vector<Point> data = stream.Take(20000);
  auto truth = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(truth.ok());
  double prev = 1.0;
  for (size_t budget : {8u, 32u, 256u}) {
    auto w = WaveletSynopsis::Build(data, budget);
    ASSERT_TRUE(w.ok());
    auto js = JsDivergenceOnGrid(*w, *truth, 64);
    ASSERT_TRUE(js.ok());
    EXPECT_LE(*js, prev + 0.01) << "budget " << budget;
    prev = *js;
  }
  EXPECT_LT(prev, 0.05);
}

TEST(WaveletTest, PdfPiecewiseUniform) {
  Rng rng(5);
  auto w = WaveletSynopsis::Build(GaussianData(&rng, 5000, 0.5, 0.05), 128);
  ASSERT_TRUE(w.ok());
  EXPECT_GT(w->Pdf({0.5}), w->Pdf({0.3}));
  EXPECT_DOUBLE_EQ(w->Pdf({-0.1}), 0.0);
  EXPECT_DOUBLE_EQ(w->Pdf({1.1}), 0.0);
}

TEST(WaveletTest, NonNegativeEverywhere) {
  // Aggressive truncation must not leak negative masses.
  Rng rng(6);
  auto w = WaveletSynopsis::Build(GaussianData(&rng, 1000, 0.2, 0.02), 3);
  ASSERT_TRUE(w.ok());
  Rng q(7);
  for (int i = 0; i < 200; ++i) {
    double a = q.UniformDouble(), b = q.UniformDouble();
    if (a > b) std::swap(a, b);
    EXPECT_GE(w->BoxProbability({a}, {b}), 0.0);
  }
}

TEST(WaveletTest, FractionalCellCoverage) {
  // A single point mass in one cell: querying half the cell returns half
  // its mass under the piecewise-uniform model.
  std::vector<Point> data(100, Point{0.5001});
  auto w = WaveletSynopsis::Build(data, 1u << 6, /*levels=*/6);
  ASSERT_TRUE(w.ok());
  const double cell = 1.0 / 64.0;
  const size_t idx = static_cast<size_t>(0.5001 / cell);
  const double lo = static_cast<double>(idx) * cell;
  EXPECT_NEAR(w->BoxProbability({lo}, {lo + cell / 2}), 0.5, 1e-9);
}

}  // namespace
}  // namespace sensord
