// Golden end-to-end regression: one fixed seeded D3 + MGDD scenario with
// loss, faults, and the reliable transport, whose complete detection
// history and traffic counters are committed at tests/golden/e2e_outliers.txt.
// Any change to detector logic, transport behaviour, fault scheduling, RNG
// consumption, or event ordering shows up as a diff here — intentional
// changes regenerate via scripts/regen_golden.sh (or SENSORD_REGEN_GOLDEN=1).
//
// The golden file records integer identities and counters only (node ids,
// levels, sequence numbers, message tallies) — no floating-point text — so
// it is stable across build types and optimization levels.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/d3.h"
#include "core/mgdd.h"
#include "net/fault_schedule.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {
namespace {

constexpr char kGoldenRelPath[] = "/tests/golden/e2e_outliers.txt";

class RecordingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

void AppendEvents(const char* tag, const std::vector<OutlierEvent>& events,
                  std::string* out) {
  for (const OutlierEvent& e : events) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "%s node=%u level=%d leaf=%u seq=%llu deg=%d\n", tag,
                  e.node, e.level, e.source_leaf,
                  static_cast<unsigned long long>(e.source_seq),
                  e.degraded ? 1 : 0);
    *out += line;
  }
}

void AppendCounters(const char* tag, const Simulator& sim, std::string* out) {
  char line[256];
  std::snprintf(line, sizeof(line),
                "%s messages=%llu dropped=%llu retries=%llu timeouts=%llu "
                "dup_suppressed=%llu abandoned=%llu acks=%llu\n",
                tag,
                static_cast<unsigned long long>(sim.stats().TotalMessages()),
                static_cast<unsigned long long>(sim.MessagesDropped()),
                static_cast<unsigned long long>(sim.transport().retries()),
                static_cast<unsigned long long>(sim.transport().timeouts()),
                static_cast<unsigned long long>(
                    sim.transport().dup_suppressed()),
                static_cast<unsigned long long>(sim.transport().abandoned()),
                static_cast<unsigned long long>(sim.transport().acks_sent()));
  *out += line;
}

// The scenario: 8 leaves / fanout 2 (three levels), 400 rounds of a tight
// Gaussian band with injected extremes, 10% uniform loss + a flaky default
// link fault, one leaf crash, one subtree partition, reliable transport.
std::string RunScenario() {
  const int kRounds = 400;
  const int kLeaves = 8;

  // Per-detector workloads, matching the regimes the soak suite validates:
  // D3 gets a tight Gaussian band with wide far extremes (distance
  // outliers); MGDD gets two uniform bands with rare gap readings (MDEF
  // local-density outliers).
  Rng d3_rng(20260806);
  std::vector<std::vector<Point>> d3_readings(
      kRounds, std::vector<Point>(kLeaves));
  for (int round = 0; round < kRounds; ++round) {
    for (int leaf = 0; leaf < kLeaves; ++leaf) {
      d3_readings[round][leaf] = {Clamp(d3_rng.Gaussian(0.4, 0.01), 0.0, 1.0)};
    }
    if (round % 7 == 0) {
      d3_readings[round][(round / 7) % kLeaves] = {
          d3_rng.UniformDouble(0.6, 1.0)};
    }
  }
  Rng mgdd_rng(20060915);
  std::vector<std::vector<Point>> mgdd_readings(
      kRounds, std::vector<Point>(kLeaves));
  for (int round = 0; round < kRounds; ++round) {
    for (int leaf = 0; leaf < kLeaves; ++leaf) {
      mgdd_readings[round][leaf] = {mgdd_rng.Bernoulli(0.5)
                                        ? mgdd_rng.UniformDouble(0.30, 0.42)
                                        : mgdd_rng.UniformDouble(0.50, 0.62)};
    }
    if (round % 7 == 0) {
      mgdd_readings[round][(round / 7) % kLeaves] = {
          mgdd_rng.UniformDouble(0.44, 0.48)};
    }
  }

  std::string out = "# sensord golden e2e history; regenerate with "
                    "scripts/regen_golden.sh\n";

  for (const bool run_d3 : {true, false}) {
    SimulatorOptions sim_opts;
    sim_opts.drop_probability = 0.1;
    sim_opts.loss_seed = 0xD0;
    sim_opts.fault_seed = 0xFA;
    sim_opts.transport.reliable = true;
    sim_opts.transport.ack_timeout = 0.05;
    sim_opts.transport.max_retries = 4;
    Simulator sim(sim_opts);
    LinkFault flaky;
    flaky.drop_probability = 0.05;
    flaky.duplicate_probability = 0.02;
    sim.faults().SetDefaultLinkFault(flaky);
    sim.faults().CrashNode(2, 120.0, 160.0);
    sim.faults().Partition({4, 5}, 220.0, 260.0);

    RecordingObserver observer;
    Rng node_rng(99);
    auto layout = BuildGridHierarchy(kLeaves, 2);
    std::vector<NodeId> ids;
    if (run_d3) {
      D3Options leaf_opts;
      leaf_opts.model.window_size = 500;
      leaf_opts.model.sample_size = 100;
      leaf_opts.outlier.radius = 0.02;
      leaf_opts.outlier.neighbor_threshold = 10.0;
      leaf_opts.min_observations = 200;
      leaf_opts.staleness_threshold = 30.0;
      ids = sim.Instantiate(
          *layout,
          [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
            if (spec.level == 1) {
              return std::make_unique<D3LeafNode>(leaf_opts, node_rng.Split(),
                                                  &observer);
            }
            D3Options opts = leaf_opts;
            opts.model =
                LeaderModelConfig(leaf_opts.model, 2, 0.5, spec.level);
            opts.min_observations = 50;
            return std::make_unique<D3ParentNode>(opts, node_rng.Split(),
                                                  &observer);
          });
    } else {
      MgddOptions leaf_opts;
      leaf_opts.model.window_size = 400;
      leaf_opts.model.sample_size = 64;
      leaf_opts.min_observations = 200;
      leaf_opts.staleness_threshold = 30.0;
      // Scott's-rule bandwidths partially smear the bimodal gap; same
      // regime as MgddTest.DetectsDeviationAgainstGlobalModel.
      leaf_opts.mdef.k_sigma = 0.5;
      ids = sim.Instantiate(
          *layout,
          [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
            if (spec.level == 1) {
              return std::make_unique<MgddLeafNode>(
                  leaf_opts, node_rng.Split(), &observer);
            }
            MgddOptions opts = leaf_opts;
            opts.model =
                LeaderModelConfig(leaf_opts.model, 2, 0.5, spec.level);
            return std::make_unique<MgddInternalNode>(opts, node_rng.Split());
          });
    }

    double t = 0.0;
    for (const auto& round : run_d3 ? d3_readings : mgdd_readings) {
      for (int leaf = 0; leaf < kLeaves; ++leaf) {
        sim.DeliverReading(ids[static_cast<size_t>(leaf)],
                           round[static_cast<size_t>(leaf)]);
      }
      t += 1.0;
      sim.RunUntil(t);
    }
    sim.RunAll();

    const char* tag = run_d3 ? "d3" : "mgdd";
    AppendEvents(tag, observer.events, &out);
    AppendCounters(run_d3 ? "d3.counters" : "mgdd.counters", sim, &out);
  }
  return out;
}

TEST(GoldenE2eTest, DetectionHistoryMatchesGolden) {
  const std::string golden_path =
      std::string(SENSORD_SOURCE_DIR) + kGoldenRelPath;
  const std::string actual = RunScenario();

  if (std::getenv("SENSORD_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << actual;
    GTEST_SKIP() << "golden file regenerated at " << golden_path;
  }

  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << golden_path
      << " — run scripts/regen_golden.sh and commit the result";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string expected = buffer.str();

  // Compare line by line for a readable first-divergence message.
  std::istringstream exp_stream(expected), act_stream(actual);
  std::string exp_line, act_line;
  size_t line_no = 0;
  while (std::getline(exp_stream, exp_line)) {
    ++line_no;
    ASSERT_TRUE(std::getline(act_stream, act_line))
        << "output ends early at golden line " << line_no << ": " << exp_line;
    ASSERT_EQ(act_line, exp_line) << "first divergence at line " << line_no;
  }
  EXPECT_FALSE(std::getline(act_stream, act_line))
      << "output has extra lines beyond the golden file: " << act_line;
}

// The scenario itself must be reproducible within one build before a
// committed golden can be meaningful across builds.
TEST(GoldenE2eTest, ScenarioIsDeterministicInProcess) {
  EXPECT_EQ(RunScenario(), RunScenario());
}

}  // namespace
}  // namespace sensord
