// Differential harness: the online detectors against their exact offline
// baselines, across a 50-seed randomized sweep.
//
//  * D3 vs BruteForce-D — the online N(p, r) estimate (chain sample + KDE)
//    must track the exact window neighbour count within an epsilon*|W|
//    band, and the flag decisions must agree outside that band. In
//    particular every online detection is backed by a near-outlier of the
//    exact count — the operational form of the paper's Theorem 3 chain
//    (parent detections ⊆ child detections ⊆ approximate local outliers).
//  * MGDD leaf flags vs BruteForce-M — the kernel-based MDEF statistic
//    against the exact empirical-distribution MDEF, same band discipline.
//
// Disagreement inside the band is the approximation the paper pays for
// bounded memory; disagreement outside it is a detector bug.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/brute_force_d.h"
#include "baseline/brute_force_m.h"
#include "core/config.h"
#include "core/density_model.h"
#include "core/distance_outlier.h"
#include "core/mdef.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {
namespace {

constexpr size_t kWindow = 600;

// ---------------------------------------------------------------------
// D3 vs BruteForce-D.
// ---------------------------------------------------------------------

// One Gaussian cluster plus planted far strays: cluster values have exact
// neighbour counts in the hundreds, strays near-zero, so both sides of the
// decision band are exercised on every seed.
std::vector<Point> D3Workload(uint64_t seed) {
  Rng rng(seed);
  const double center = rng.UniformDouble(0.3, 0.6);
  std::vector<Point> window;
  window.reserve(kWindow);
  for (size_t i = 0; i < kWindow; ++i) {
    if (i % 97 == 0) {
      // Strays live at least 0.2 from the cluster centre — far outside the
      // query radius of every cluster value.
      const double stray = rng.Bernoulli(0.5) ? rng.UniformDouble(0.0, 0.1)
                                              : rng.UniformDouble(0.8, 1.0);
      window.push_back({stray});
    } else {
      window.push_back({Clamp(rng.Gaussian(center, 0.03), 0.0, 1.0)});
    }
  }
  return window;
}

class D3DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(D3DifferentialTest, OnlineCountTracksBruteForceWithinBand) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const std::vector<Point> window = D3Workload(seed);

  DensityModelConfig model_cfg;
  model_cfg.dimensions = 1;
  model_cfg.window_size = kWindow;
  model_cfg.sample_size = 150;
  DensityModel model(model_cfg, Rng(seed ^ 0xD3));
  for (const Point& p : window) model.Observe(p);
  ASSERT_TRUE(model.Ready());

  DistanceOutlierConfig cfg;
  cfg.radius = 0.05;
  cfg.neighbor_threshold = 0.2 * static_cast<double>(kWindow);  // D = 120

  // The error budget: chain sampling (|R| = |W|/4) plus kernel smoothing,
  // which spreads boundary mass by the bandwidth in the dense cluster core.
  const double band = 0.15 * static_cast<double>(kWindow);

  size_t deep_outliers = 0, deep_inliers = 0;
  for (const Point& p : window) {
    const double exact = BruteForceNeighborCount(window, p, cfg);
    const double approx =
        EstimateNeighborCount(model.Estimator(), model.WindowCount(), p, cfg);
    const bool flagged =
        IsDistanceOutlier(model.Estimator(), model.WindowCount(), p, cfg);

    EXPECT_NEAR(approx, exact, band)
        << "seed " << seed << ": online N(p,r) off by more than the band at p="
        << p[0];

    if (exact < cfg.neighbor_threshold - band) {
      ++deep_outliers;
      EXPECT_TRUE(flagged) << "seed " << seed << ": exact count " << exact
                           << " is far below D but p=" << p[0]
                           << " was not flagged";
    } else if (exact > cfg.neighbor_threshold + band) {
      ++deep_inliers;
      EXPECT_FALSE(flagged) << "seed " << seed << ": exact count " << exact
                            << " is far above D but p=" << p[0]
                            << " was flagged";
    }
    // Containment, Theorem 3 form: a flag implies a near-outlier.
    if (flagged) {
      EXPECT_LT(exact, cfg.neighbor_threshold + band)
          << "seed " << seed << ": online flagged p=" << p[0]
          << " whose exact count is far above the threshold";
    }
  }
  // The workload plants both regimes; neither direction may be vacuous.
  EXPECT_GT(deep_outliers, 0u) << "seed " << seed;
  EXPECT_GT(deep_inliers, 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, D3DifferentialTest, ::testing::Range(0, 50));

// ---------------------------------------------------------------------
// MGDD leaf flags vs BruteForce-M.
// ---------------------------------------------------------------------

// Two tight uniform bands with rare gap values: the MDEF regime the MGDD
// suites use. Gap values sit in a low-density pocket between two dense
// bands — exactly what MDEF flags and a plain distance test does not.
std::vector<Point> MgddWorkload(uint64_t seed) {
  Rng rng(seed + 1000);
  std::vector<Point> window;
  window.reserve(kWindow);
  for (size_t i = 0; i < kWindow; ++i) {
    if (i % 101 == 0) {
      window.push_back({rng.UniformDouble(0.44, 0.48)});
    } else {
      window.push_back({rng.Bernoulli(0.5) ? rng.UniformDouble(0.30, 0.42)
                                           : rng.UniformDouble(0.50, 0.62)});
    }
  }
  return window;
}

class MgddDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(MgddDifferentialTest, KernelMdefTracksBruteForceWithinBand) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const std::vector<Point> window = MgddWorkload(seed);

  DensityModelConfig model_cfg;
  model_cfg.dimensions = 1;
  model_cfg.window_size = kWindow;
  model_cfg.sample_size = 150;
  DensityModel model(model_cfg, Rng(seed ^ 0x36DD));
  for (const Point& p : window) model.Observe(p);
  ASSERT_TRUE(model.Ready());

  MdefConfig cfg;
  cfg.sampling_radius = 0.08;
  cfg.counting_radius = 0.01;
  cfg.k_sigma = 0.5;

  // The online model's approximation splits into (i) chain sampling — the
  // part the paper bounds — and (ii) kernel smoothing, which at Scott's-rule
  // bandwidths deliberately smears structure finer than the bandwidth
  // (~0.09 here, on a 0.08-wide gap). So the tight band compares the online
  // MDEF against a full-window KDE with the *same* bandwidths, isolating
  // the sampling error; the exact BruteForce-M comparison is decision-level
  // with a one-sided containment margin.
  auto full_kde = KernelDensityEstimator::Create(
      window, model.Estimator().bandwidths());
  ASSERT_TRUE(full_kde.ok());
  // Calibrated against the 50-seed sweep: the worst observed sampling error
  // of the MDEF statistic is 0.18, and flag decisions never disagree with
  // the reference when its excess statistic clears 0.3.
  const double sampling_band = 0.25;
  const double decision_margin = 0.3;

  size_t checked = 0, decided = 0, exact_deep = 0, exact_deep_flagged = 0;
  for (const Point& p : window) {
    const MdefResult exact = BruteForceMdef(window, p, cfg);
    const MdefResult reference = ComputeMdef(*full_kde, p, cfg);
    const MdefResult online = ComputeMdef(model.Estimator(), p, cfg);
    // Compare only where all sides have meaningful local statistics.
    if (exact.avg_mass <= 0.0 || reference.avg_mass <= 0.0 ||
        online.avg_mass <= 0.0) {
      continue;
    }
    ++checked;

    EXPECT_NEAR(online.mdef, reference.mdef, sampling_band)
        << "seed " << seed << ": chain-sampled MDEF diverged from the "
        << "full-window kernel MDEF at p=" << p[0];

    // Decision parity with the full-window kernel detector whenever the
    // reference statistic is clear of its threshold by more than the band.
    const double ref_excess =
        reference.mdef - cfg.k_sigma * reference.sigma_mdef;
    if (ref_excess > decision_margin || ref_excess < -decision_margin) {
      ++decided;
      EXPECT_EQ(online.is_outlier, reference.is_outlier)
          << "seed " << seed << ": chain-sampled flag diverged from the "
          << "full-window kernel flag at p=" << p[0] << " (reference excess "
          << ref_excess << ")";
    }

    // Recall against the exact baseline: values BruteForce-M flags by a
    // wide margin (excess > 0.45 absorbs the kernel-smoothing gap between
    // the empirical and kernel MDEF statistics) are counted below.
    if (exact.mdef - cfg.k_sigma * exact.sigma_mdef > 0.45) {
      ++exact_deep;
      if (online.is_outlier) ++exact_deep_flagged;
    }
  }
  EXPECT_GT(checked, kWindow / 2) << "seed " << seed;
  EXPECT_GT(decided, kWindow / 10) << "seed " << seed;
  // The workload plants gap values, so deep exact outliers exist on every
  // seed, and the online detector must catch a clear majority of them.
  ASSERT_GT(exact_deep, 0u) << "seed " << seed;
  EXPECT_GE(2 * exact_deep_flagged, exact_deep)
      << "seed " << seed << ": the kernel detector missed most of the "
      << "values BruteForce-M flags decisively (" << exact_deep_flagged
      << "/" << exact_deep << ")";
}

INSTANTIATE_TEST_SUITE_P(Sweep, MgddDifferentialTest, ::testing::Range(0, 50));

// The outlier direction must not be vacuous for the suite as a whole: on a
// fixed representative seed the workload's planted gap values are exact
// MDEF outliers by a wide margin and the kernel detector must flag them.
TEST(MgddDifferentialTest, PlantedGapValuesAreFlaggedBothWays) {
  const std::vector<Point> window = MgddWorkload(7);

  DensityModelConfig model_cfg;
  model_cfg.dimensions = 1;
  model_cfg.window_size = kWindow;
  model_cfg.sample_size = 150;
  DensityModel model(model_cfg, Rng(0x36DD));
  for (const Point& p : window) model.Observe(p);

  MdefConfig cfg;
  cfg.sampling_radius = 0.08;
  cfg.counting_radius = 0.01;
  cfg.k_sigma = 0.5;

  size_t exact_flags = 0, online_flags = 0;
  for (size_t i = 0; i < window.size(); i += 101) {  // the planted gap values
    if (BruteForceIsMdefOutlier(window, window[i], cfg)) ++exact_flags;
    if (ComputeMdef(model.Estimator(), window[i], cfg).is_outlier) {
      ++online_flags;
    }
  }
  EXPECT_GT(exact_flags, 0u);
  EXPECT_GT(online_flags, 0u);
}

}  // namespace
}  // namespace sensord
