#include "data/analytic.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(AnalyticTest, RejectsEmptyMarginals) {
  EXPECT_FALSE(AnalyticDistribution::Create({}).ok());
  EXPECT_FALSE(AnalyticDistribution::Create({{}}).ok());
}

TEST(AnalyticTest, RejectsBadComponents) {
  EXPECT_FALSE(AnalyticDistribution::Create(
                   {{MixtureComponent::MakeGaussian(0.0, 0.5, 0.1)}})
                   .ok());
  EXPECT_FALSE(AnalyticDistribution::Create(
                   {{MixtureComponent::MakeGaussian(1.0, 0.5, 0.0)}})
                   .ok());
  EXPECT_FALSE(AnalyticDistribution::Create(
                   {{MixtureComponent::MakeUniform(1.0, 0.7, 0.7)}})
                   .ok());
}

TEST(AnalyticTest, GaussianTotalMassIsOne) {
  const auto g = AnalyticDistribution::Gaussian1d(0.5, 0.1);
  EXPECT_NEAR(g.BoxProbability({0.0}, {1.0}), 1.0, 1e-9);
  EXPECT_NEAR(g.BoxProbability({-5.0}, {5.0}), 1.0, 1e-9);
}

TEST(AnalyticTest, GaussianSymmetry) {
  const auto g = AnalyticDistribution::Gaussian1d(0.5, 0.1);
  EXPECT_NEAR(g.BoxProbability({0.0}, {0.5}), 0.5, 1e-9);
  EXPECT_NEAR(g.BoxProbability({0.4}, {0.5}), g.BoxProbability({0.5}, {0.6}),
              1e-9);
}

TEST(AnalyticTest, GaussianPdfPeaksAtMean) {
  const auto g = AnalyticDistribution::Gaussian1d(0.4, 0.05);
  EXPECT_GT(g.Pdf({0.4}), g.Pdf({0.45}));
  EXPECT_GT(g.Pdf({0.45}), g.Pdf({0.5}));
  EXPECT_DOUBLE_EQ(g.Pdf({-0.1}), 0.0);
  EXPECT_DOUBLE_EQ(g.Pdf({1.1}), 0.0);
}

TEST(AnalyticTest, TruncationRenormalizes) {
  // A Gaussian centred at 0 loses half its raw mass to truncation; the
  // renormalized distribution must still integrate to 1 over [0,1].
  auto g = AnalyticDistribution::Create(
      {{MixtureComponent::MakeGaussian(1.0, 0.0, 0.1)}});
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->BoxProbability({0.0}, {1.0}), 1.0, 1e-9);
}

TEST(AnalyticTest, UniformComponent) {
  auto u = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.2, 0.6)}});
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(u->BoxProbability({0.2}, {0.4}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(u->BoxProbability({0.7}, {0.9}), 0.0);
  EXPECT_NEAR(u->Pdf({0.3}), 2.5, 1e-12);
}

TEST(AnalyticTest, MixtureWeightsRespected) {
  // 75% at 0.2, 25% uniform noise in [0.5, 1].
  auto m = AnalyticDistribution::Create(
      {{MixtureComponent::MakeGaussian(0.75, 0.2, 0.01),
        MixtureComponent::MakeUniform(0.25, 0.5, 1.0)}});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->BoxProbability({0.1}, {0.3}), 0.75, 1e-6);
  EXPECT_NEAR(m->BoxProbability({0.5}, {1.0}), 0.25, 1e-6);
}

TEST(AnalyticTest, ProductStructure2d) {
  auto p = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.0, 1.0)},
       {MixtureComponent::MakeGaussian(1.0, 0.5, 0.05)}});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->dimensions(), 2u);
  // Marginal factorization: P(box) = P_x * P_y.
  const double px = 0.3;
  const double py = p->BoxProbability({0.0, 0.45}, {1.0, 0.55});
  EXPECT_NEAR(p->BoxProbability({0.2, 0.45}, {0.5, 0.55}), px * py, 1e-9);
}

TEST(AnalyticTest, PdfFactorizes) {
  auto p = AnalyticDistribution::Create(
      {{MixtureComponent::MakeGaussian(1.0, 0.5, 0.1)},
       {MixtureComponent::MakeGaussian(1.0, 0.5, 0.1)}});
  ASSERT_TRUE(p.ok());
  const auto g = AnalyticDistribution::Gaussian1d(0.5, 0.1);
  EXPECT_NEAR(p->Pdf({0.4, 0.6}), g.Pdf({0.4}) * g.Pdf({0.6}), 1e-9);
}

}  // namespace
}  // namespace sensord
