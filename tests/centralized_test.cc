#include "baseline/centralized.h"

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "net/hierarchy.h"

namespace sensord {
namespace {

TEST(CentralizedTest, EveryReadingReachesRoot) {
  auto layout = BuildGridHierarchy(4, 2);  // 4 + 2 + 1 nodes
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) return std::make_unique<CentralizedLeafNode>();
        return std::make_unique<CentralizedRelayNode>(100, 1);
      });

  for (int round = 0; round < 10; ++round) {
    for (size_t leaf = 0; leaf < 4; ++leaf) {
      sim.DeliverReading(ids[leaf], {0.5});
    }
  }
  sim.RunUntil(1.0);

  const auto& root =
      static_cast<const CentralizedRelayNode&>(sim.node(ids.back()));
  EXPECT_EQ(root.window().total_seen(), 40u);
  // Messages: each reading crosses 2 hops (leaf->mid, mid->root).
  EXPECT_EQ(sim.stats().MessagesOfKind(kMsgRawReading), 80u);
}

TEST(CentralizedTest, RelayKeepsOwnWindowEmpty) {
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) return std::make_unique<CentralizedLeafNode>();
        return std::make_unique<CentralizedRelayNode>(10, 1);
      });
  sim.DeliverReading(ids[0], {0.3});
  sim.RunUntil(1.0);
  // Two-level tree: ids.back() is the root and absorbs the reading.
  const auto& root =
      static_cast<const CentralizedRelayNode&>(sim.node(ids.back()));
  EXPECT_EQ(root.window().size(), 1u);
}

TEST(CentralizedTest, SingleNodeNetworkSendsNothing) {
  auto layout = BuildGridHierarchy(1, 2);
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec&) {
        return std::make_unique<CentralizedLeafNode>();
      });
  sim.DeliverReading(ids[0], {0.5});
  sim.RunUntil(1.0);
  EXPECT_EQ(sim.stats().TotalMessages(), 0u);
}

TEST(CentralizedTest, MessageCountScalesWithDepth) {
  // 16 leaves, fanout 2: depth 5 tree; each reading crosses (level-1) hops.
  auto layout = BuildGridHierarchy(16, 2);
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) return std::make_unique<CentralizedLeafNode>();
        return std::make_unique<CentralizedRelayNode>(10, 1);
      });
  for (size_t leaf = 0; leaf < 16; ++leaf) {
    sim.DeliverReading(ids[leaf], {0.5});
  }
  sim.RunUntil(1.0);
  // Every leaf is 4 hops from the root: 16 * 4 = 64 messages.
  EXPECT_EQ(sim.stats().MessagesOfKind(kMsgRawReading), 64u);
}

}  // namespace
}  // namespace sensord
