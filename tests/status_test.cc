#include "util/status.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    Status::Code code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), Status::Code::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), Status::Code::kNotFound, "NotFound"},
      {Status::OutOfRange("c"), Status::Code::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("d"), Status::Code::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::IoError("e"), Status::Code::kIoError, "IoError"},
      {Status::Internal("f"), Status::Code::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos)
        << c.status.ToString();
    EXPECT_NE(c.status.ToString().find(c.status.message()),
              std::string::npos);
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, ImplicitConversionFromValueAndStatus) {
  auto make = [](bool ok) -> StatusOr<double> {
    if (ok) return 1.5;
    return Status::InvalidArgument("nope");
  };
  EXPECT_TRUE(make(true).ok());
  EXPECT_FALSE(make(false).ok());
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("boom") : Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    SENSORD_RETURN_IF_ERROR(inner(fail));
    return Status::Ok();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace sensord
