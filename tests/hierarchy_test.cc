#include "net/hierarchy.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(HierarchyTest, RejectsZeroLeaves) {
  EXPECT_FALSE(BuildGridHierarchy(0, 4).ok());
}

TEST(HierarchyTest, RejectsFanoutBelowTwo) {
  EXPECT_FALSE(BuildGridHierarchy(8, 1).ok());
}

TEST(HierarchyTest, SingleLeafIsItsOwnRoot) {
  auto layout = BuildGridHierarchy(1, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->NumNodes(), 1u);
  EXPECT_EQ(layout->NumLevels(), 1);
  EXPECT_EQ(layout->nodes[0].parent_slot, -1);
}

TEST(HierarchyTest, PaperShape32LeavesFanout4) {
  // 32 -> 8 -> 2 -> 1: the four detection levels of Figures 7/9/10.
  auto layout = BuildGridHierarchy(32, 4);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->NumLevels(), 4);
  EXPECT_EQ(layout->slots_by_level[0].size(), 32u);
  EXPECT_EQ(layout->slots_by_level[1].size(), 8u);
  EXPECT_EQ(layout->slots_by_level[2].size(), 2u);
  EXPECT_EQ(layout->slots_by_level[3].size(), 1u);
  EXPECT_EQ(layout->NumNodes(), 43u);
  EXPECT_EQ(layout->NumLeaves(), 32u);
}

TEST(HierarchyTest, EveryNonRootHasAParent) {
  auto layout = BuildGridHierarchy(20, 3);
  ASSERT_TRUE(layout.ok());
  int roots = 0;
  for (const auto& node : layout->nodes) {
    if (node.parent_slot < 0) {
      ++roots;
    } else {
      ASSERT_LT(static_cast<size_t>(node.parent_slot),
                layout->nodes.size());
    }
  }
  EXPECT_EQ(roots, 1);
}

TEST(HierarchyTest, ParentChildLinksAreConsistent) {
  auto layout = BuildGridHierarchy(17, 4);
  ASSERT_TRUE(layout.ok());
  for (size_t slot = 0; slot < layout->nodes.size(); ++slot) {
    for (int child : layout->nodes[slot].child_slots) {
      EXPECT_EQ(layout->nodes[static_cast<size_t>(child)].parent_slot,
                static_cast<int>(slot));
    }
  }
}

TEST(HierarchyTest, FanoutBound) {
  auto layout = BuildGridHierarchy(100, 5);
  ASSERT_TRUE(layout.ok());
  for (const auto& node : layout->nodes) {
    EXPECT_LE(node.child_slots.size(), 5u);
  }
}

TEST(HierarchyTest, LevelsAscendFromLeaves) {
  auto layout = BuildGridHierarchy(16, 2);
  ASSERT_TRUE(layout.ok());
  for (const auto& node : layout->nodes) {
    if (node.parent_slot >= 0) {
      EXPECT_EQ(layout->nodes[static_cast<size_t>(node.parent_slot)].level,
                node.level + 1);
    }
  }
}

TEST(HierarchyTest, LeafPositionsInsideUnitPlane) {
  auto layout = BuildGridHierarchy(48, 4);
  ASSERT_TRUE(layout.ok());
  for (const auto& node : layout->nodes) {
    EXPECT_GE(node.position.x, 0.0);
    EXPECT_LE(node.position.x, 1.0);
    EXPECT_GE(node.position.y, 0.0);
    EXPECT_LE(node.position.y, 1.0);
  }
}

TEST(HierarchyTest, LeaderSitsAtChildCentroid) {
  auto layout = BuildGridHierarchy(4, 4);
  ASSERT_TRUE(layout.ok());
  ASSERT_EQ(layout->NumLevels(), 2);
  const auto& root = layout->nodes[layout->slots_by_level[1][0]];
  double cx = 0, cy = 0;
  for (int child : root.child_slots) {
    cx += layout->nodes[static_cast<size_t>(child)].position.x;
    cy += layout->nodes[static_cast<size_t>(child)].position.y;
  }
  EXPECT_NEAR(root.position.x, cx / 4.0, 1e-12);
  EXPECT_NEAR(root.position.y, cy / 4.0, 1e-12);
}

TEST(HierarchyTest, NonPowerLeafCounts) {
  for (size_t leaves : {3u, 7u, 13u, 33u, 100u}) {
    auto layout = BuildGridHierarchy(leaves, 4);
    ASSERT_TRUE(layout.ok()) << leaves;
    EXPECT_EQ(layout->NumLeaves(), leaves);
    EXPECT_EQ(layout->slots_by_level.back().size(), 1u);
  }
}

}  // namespace
}  // namespace sensord
