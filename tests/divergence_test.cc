#include "stats/divergence.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "data/analytic.h"
#include "stats/empirical.h"
#include "util/rng.h"

namespace sensord {
namespace {

TEST(KlDivergenceTest, IdenticalDistributionsAreZero) {
  const std::vector<double> p{0.25, 0.25, 0.5};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergenceTest, KnownValue) {
  // D({1/2,1/2} || {1/4,3/4}) = 0.5*log2(2) + 0.5*log2(2/3).
  const double expected = 0.5 * std::log2(2.0) + 0.5 * std::log2(2.0 / 3.0);
  EXPECT_NEAR(KlDivergence({0.5, 0.5}, {0.25, 0.75}), expected, 1e-12);
}

TEST(KlDivergenceTest, InfiniteWhenSupportMismatch) {
  // The exact failure mode the paper cites as disqualifying KL for kernel
  // models (Section 6).
  EXPECT_TRUE(std::isinf(KlDivergence({0.5, 0.5}, {1.0, 0.0})));
}

TEST(KlDivergenceTest, ZeroPEntriesContributeNothing) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), 1.0, 1e-12);
}

TEST(JsDivergenceTest, IdenticalIsZero) {
  EXPECT_NEAR(JsDivergence({0.3, 0.7}, {0.3, 0.7}), 0.0, 1e-12);
}

TEST(JsDivergenceTest, DisjointSupportIsOneBit) {
  EXPECT_NEAR(JsDivergence({1.0, 0.0}, {0.0, 1.0}), 1.0, 1e-12);
}

TEST(JsDivergenceTest, SymmetricAndBounded) {
  const std::vector<double> p{0.1, 0.2, 0.7}, q{0.5, 0.3, 0.2};
  const double js_pq = JsDivergence(p, q);
  const double js_qp = JsDivergence(q, p);
  EXPECT_NEAR(js_pq, js_qp, 1e-12);
  EXPECT_GE(js_pq, 0.0);
  EXPECT_LE(js_pq, 1.0);
}

TEST(JsDivergenceTest, FiniteDespiteZeros) {
  EXPECT_LT(JsDivergence({0.5, 0.5, 0.0}, {0.0, 0.5, 0.5}), 1.0);
  EXPECT_GT(JsDivergence({0.5, 0.5, 0.0}, {0.0, 0.5, 0.5}), 0.0);
}

TEST(JsDivergenceTest, NormalizesInputs) {
  // Unnormalized inputs with the same shape are still distance zero.
  EXPECT_NEAR(JsDivergence({2.0, 6.0}, {1.0, 3.0}), 0.0, 1e-12);
}

TEST(DiscretizeTest, UniformEstimatorGivesUniformGrid) {
  auto mixture = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.0, 1.0)}});
  ASSERT_TRUE(mixture.ok());
  const auto grid = DiscretizeOnGrid(*mixture, 10);
  ASSERT_EQ(grid.size(), 10u);
  for (double g : grid) EXPECT_NEAR(g, 0.1, 1e-9);
}

TEST(DiscretizeTest, TwoDimGridSize) {
  auto mixture = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.0, 1.0)},
       {MixtureComponent::MakeUniform(1.0, 0.0, 1.0)}});
  ASSERT_TRUE(mixture.ok());
  const auto grid = DiscretizeOnGrid(*mixture, 8);
  EXPECT_EQ(grid.size(), 64u);
  double sum = 0;
  for (double g : grid) sum += g;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(JsOnGridTest, DimensionMismatchRejected) {
  const auto a = AnalyticDistribution::Gaussian1d(0.5, 0.1);
  auto b = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.0, 1.0)},
       {MixtureComponent::MakeUniform(1.0, 0.0, 1.0)}});
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(JsDivergenceOnGrid(a, *b, 16).ok());
}

TEST(JsOnGridTest, ZeroCellsRejected) {
  const auto a = AnalyticDistribution::Gaussian1d(0.5, 0.1);
  EXPECT_FALSE(JsDivergenceOnGrid(a, a, 0).ok());
}

TEST(JsOnGridTest, SameDistributionIsZero) {
  const auto a = AnalyticDistribution::Gaussian1d(0.4, 0.07);
  auto js = JsDivergenceOnGrid(a, a, 64);
  ASSERT_TRUE(js.ok());
  EXPECT_NEAR(*js, 0.0, 1e-12);
}

TEST(JsOnGridTest, GrowsWithMeanSeparation) {
  const auto base = AnalyticDistribution::Gaussian1d(0.3, 0.05);
  double prev = -1.0;
  for (double mean : {0.32, 0.4, 0.5, 0.7}) {
    const auto other = AnalyticDistribution::Gaussian1d(mean, 0.05);
    auto js = JsDivergenceOnGrid(base, other, 128);
    ASSERT_TRUE(js.ok());
    EXPECT_GT(*js, prev);
    prev = *js;
  }
  EXPECT_GT(prev, 0.9);  // far-separated Gaussians approach 1 bit
}

TEST(JsOnGridTest, WorksAcrossEstimatorTypes) {
  // Empirical sample of a Gaussian vs the analytic Gaussian: small JS.
  Rng rng(1);
  std::vector<Point> data;
  for (int i = 0; i < 20000; ++i) {
    data.push_back({Clamp(rng.Gaussian(0.5, 0.05), 0.0, 1.0)});
  }
  auto empirical = EmpiricalDistribution::Create(std::move(data));
  ASSERT_TRUE(empirical.ok());
  const auto truth = AnalyticDistribution::Gaussian1d(0.5, 0.05);
  auto js = JsDivergenceOnGrid(*empirical, truth, 64);
  ASSERT_TRUE(js.ok());
  EXPECT_LT(*js, 0.01);
}

}  // namespace
}  // namespace sensord
