// End-to-end integration: the full pipeline from workload generation through
// the simulated hierarchy to detection and ground-truth scoring, plus the
// interplay of modules that unit tests exercise in isolation.

#include <set>

#include <gtest/gtest.h>

#include "baseline/brute_force_d.h"
#include "core/d3.h"
#include "core/distance_outlier.h"
#include "core/faulty_sensor.h"
#include "core/mgdd.h"
#include "core/range_query.h"
#include "data/engine_trace.h"
#include "data/synthetic.h"
#include "data/trace_io.h"
#include "eval/ground_truth.h"
#include "eval/scoring.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "stats/divergence.h"

namespace sensord {
namespace {

class CollectingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

TEST(IntegrationTest, D3PipelineAgainstGroundTruth) {
  // 4 leaves + root; engine-like workload with planted deviations; score
  // leaf-level D3 decisions against the exact tracker.
  const size_t kWindow = 1500, kSample = 200;
  auto layout = BuildGridHierarchy(4, 4);
  ASSERT_TRUE(layout.ok());

  GroundTruthOptions gt;
  gt.dimensions = 1;
  gt.leaf_window = kWindow;
  GroundTruthTracker tracker(*layout, gt);

  Simulator sim;
  CollectingObserver observer;
  Rng rng(1);
  D3Options opts;
  opts.model.window_size = kWindow;
  opts.model.sample_size = kSample;
  opts.outlier.radius = 0.01;
  opts.outlier.neighbor_threshold = 8.0;  // ~0.5% of |W|, the paper's ratio
  opts.min_observations = kSample;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) {
          return std::make_unique<D3LeafNode>(opts, rng.Split(), &observer);
        }
        D3Options parent = opts;
        parent.model = LeaderModelConfig(opts.model, 4, 0.5, spec.level);
        return std::make_unique<D3ParentNode>(parent, rng.Split(),
                                              &observer);
      });

  std::vector<std::unique_ptr<SyntheticMixtureStream>> streams;
  Rng seeds(2);
  for (int i = 0; i < 4; ++i) {
    streams.push_back(std::make_unique<SyntheticMixtureStream>(
        SyntheticOptions{}, seeds.Split()));
  }

  PrecisionRecall leaf_pr;
  double t = 0.0;
  const int warmup = 2000, total = 2600;
  for (int round = 0; round < total; ++round) {
    std::set<std::pair<NodeId, uint64_t>> flagged;
    std::vector<std::pair<int, Point>> arrivals;
    for (int leaf = 0; leaf < 4; ++leaf) {
      const Point p = streams[static_cast<size_t>(leaf)]->Next();
      tracker.AddLeafReading(leaf, p);
      arrivals.push_back({leaf, p});
      observer.events.clear();
      sim.DeliverReading(ids[static_cast<size_t>(leaf)], p);
      if (round >= warmup) {
        bool leaf_flag = false;
        for (const auto& e : observer.events) {
          leaf_flag |= (e.level == 1);
        }
        leaf_pr.Record(
            tracker.IsTrueDistanceOutlier(leaf, p, opts.outlier), leaf_flag);
      }
    }
    t += 1.0;
    sim.RunUntil(t);
  }

  EXPECT_GT(leaf_pr.total(), 0u);
  EXPECT_GT(leaf_pr.Precision(), 0.8) << leaf_pr.ToString();
  EXPECT_GT(leaf_pr.Recall(), 0.5) << leaf_pr.ToString();
  // There must be actual events in the run (planted noise exists).
  EXPECT_GT(leaf_pr.true_positives() + leaf_pr.false_negatives(), 0u);
}

TEST(IntegrationTest, FaultySensorDetectionFromLiveModels) {
  // Three healthy sensors + one broken sensor; build density models from
  // live streams and let the parent-level fault check identify the broken
  // one (Section 9 application).
  DensityModelConfig cfg;
  cfg.window_size = 1000;
  cfg.sample_size = 150;
  Rng rng(3);
  std::vector<DensityModel> models;
  for (int i = 0; i < 4; ++i) models.emplace_back(cfg, rng.Split());

  Rng values(4);
  for (int i = 0; i < 3000; ++i) {
    for (int s = 0; s < 3; ++s) {
      models[static_cast<size_t>(s)].Observe(
          {Clamp(values.Gaussian(0.4, 0.03), 0.0, 1.0)});
    }
    // The broken sensor is stuck near a wrong value.
    models[3].Observe({Clamp(values.Gaussian(0.75, 0.01), 0.0, 1.0)});
  }

  std::vector<const DistributionEstimator*> children;
  for (const auto& m : models) children.push_back(&m.Estimator());
  FaultySensorConfig fault_cfg;
  auto verdicts = DetectFaultySensors(children, fault_cfg);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_FALSE((*verdicts)[0].flagged);
  EXPECT_FALSE((*verdicts)[1].flagged);
  EXPECT_FALSE((*verdicts)[2].flagged);
  EXPECT_TRUE((*verdicts)[3].flagged);
}

TEST(IntegrationTest, RangeQueriesOverLiveModel) {
  DensityModelConfig cfg;
  cfg.window_size = 2000;
  cfg.sample_size = 300;
  DensityModel model(cfg, Rng(5));
  EngineTraceGenerator engine(Rng(6));
  std::vector<double> window_values;
  for (int i = 0; i < 2000; ++i) {
    const Point p = engine.Next();
    model.Observe(p);
    window_values.push_back(p[0]);
  }
  RangeQueryEngine engine_q(&model.Estimator(), model.WindowCount());

  // Count of healthy-range readings: compare against the exact window.
  size_t exact = 0;
  for (double v : window_values) exact += (v >= 0.40 && v <= 0.43);
  const double approx = engine_q.Count({0.40}, {0.43});
  EXPECT_NEAR(approx, static_cast<double>(exact),
              0.15 * static_cast<double>(window_values.size()));

  auto avg = engine_q.Average(0, {0.35}, {0.43});
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 0.418, 0.02);
}

TEST(IntegrationTest, TraceRoundTripDrivesDetector) {
  // Persist a generated trace, reload it, and drive a model from the replay
  // — the quickstart path for users with their own sensor logs.
  const std::string path = testing::TempDir() + "/sensord_integration.csv";
  EngineTraceOptions engine_opts;
  engine_opts.mean_healthy_duration = 600.0;  // guarantee a few failures
  EngineTraceGenerator gen(engine_opts, Rng(7));
  ASSERT_TRUE(WriteTraceCsv(path, gen.Take(3000)).ok());
  auto trace = ReadTraceCsv(path);
  ASSERT_TRUE(trace.ok());
  auto replay = ReplayStream::Create(std::move(trace).value());
  ASSERT_TRUE(replay.ok());

  DensityModelConfig cfg;
  cfg.window_size = 1000;
  cfg.sample_size = 150;
  DensityModel model(cfg, Rng(8));
  DistanceOutlierConfig outlier;
  outlier.radius = 0.01;
  outlier.neighbor_threshold = 10.0;

  int detections = 0;
  for (int i = 0; i < 3000; ++i) {
    const Point p = replay->Next();
    model.Observe(p);
    if (i > 500 && IsDistanceOutlier(model.Estimator(), model.WindowCount(),
                                     p, outlier)) {
      ++detections;
    }
  }
  // The engine trace contains failure excursions; some must be flagged,
  // and the healthy bulk must not be.
  EXPECT_GT(detections, 0);
  EXPECT_LT(detections, 600);
  std::remove(path.c_str());
}

TEST(IntegrationTest, MgddGlobalModelConvergesToPooledDistribution) {
  // Two leaves with disjoint distributions: the root's global model must
  // cover both modes, and each leaf's replica must agree with the root.
  auto layout = BuildGridHierarchy(2, 2);
  ASSERT_TRUE(layout.ok());
  Simulator sim;
  CollectingObserver observer;
  Rng rng(9);
  MgddOptions opts;
  opts.model.window_size = 800;
  opts.model.sample_size = 120;
  opts.min_observations = 200;
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) {
          return std::make_unique<MgddLeafNode>(opts, rng.Split(),
                                                &observer);
        }
        MgddOptions internal = opts;
        internal.model = LeaderModelConfig(opts.model, 2, 0.5, spec.level);
        return std::make_unique<MgddInternalNode>(internal, rng.Split());
      });

  Rng values(10);
  double t = 0.0;
  for (int round = 0; round < 2500; ++round) {
    sim.DeliverReading(ids[0],
                       {Clamp(values.Gaussian(0.3, 0.02), 0.0, 1.0)});
    sim.DeliverReading(ids[1],
                       {Clamp(values.Gaussian(0.6, 0.02), 0.0, 1.0)});
    t += 1.0;
    sim.RunUntil(t);
  }

  const auto& leaf = static_cast<const MgddLeafNode&>(sim.node(ids[0]));
  ASSERT_TRUE(leaf.HasGlobalModel());
  const auto& global = leaf.GlobalEstimator();
  // Both modes present with roughly equal mass.
  const double low = global.BoxProbability({0.2}, {0.4});
  const double high = global.BoxProbability({0.5}, {0.7});
  EXPECT_GT(low, 0.25);
  EXPECT_GT(high, 0.25);
  EXPECT_NEAR(low + high, 1.0, 0.15);
}

}  // namespace
}  // namespace sensord
