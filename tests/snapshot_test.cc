#include "core/snapshot.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/density_model.h"
#include "stats/kde.h"
#include "stream/chain_sample.h"
#include "stream/variance_sketch.h"
#include "util/rng.h"

namespace sensord {
namespace {

constexpr uint32_t kTestVersion = 7;

TEST(SnapshotFrameTest, FieldsRoundTripInOrder) {
  SnapshotWriter writer;
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutBool(true);
  writer.PutDouble(-1.5e-300);
  writer.PutPoint({0.25, 0.5, 0.75});
  writer.PutDoubles({1.0, 2.0});
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  SnapshotReader& r = reader.value();
  EXPECT_EQ(r.TakeU8(), 0xAB);
  EXPECT_EQ(r.TakeU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.TakeU64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.TakeBool());
  EXPECT_DOUBLE_EQ(r.TakeDouble(), -1.5e-300);
  EXPECT_EQ(r.TakePoint(), (Point{0.25, 0.5, 0.75}));
  EXPECT_EQ(r.TakeDoubles(), (std::vector<double>{1.0, 2.0}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SnapshotFrameTest, RngStateRoundTripContinuesBitIdentically) {
  Rng original(123);
  (void)original.Gaussian(0.0, 1.0);  // leave a cached spare in the state
  SnapshotWriter writer;
  writer.PutRng(original);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  Rng restored = reader.value().TakeRng();
  EXPECT_TRUE(reader.value().AtEnd());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.UniformUint64(1 << 30), restored.UniformUint64(1 << 30));
    EXPECT_DOUBLE_EQ(original.Gaussian(2.0, 3.0), restored.Gaussian(2.0, 3.0));
  }
}

std::vector<uint8_t> SmallSnapshot() {
  SnapshotWriter writer;
  writer.PutU64(42);
  return std::move(writer).Finish(kTestVersion);
}

TEST(SnapshotFrameTest, EveryCorruptedByteIsRejected) {
  const std::vector<uint8_t> good = SmallSnapshot();
  ASSERT_TRUE(SnapshotReader::Open(good, kTestVersion).ok());
  for (size_t i = 0; i < good.size(); ++i) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0x01;
    EXPECT_FALSE(SnapshotReader::Open(bad, kTestVersion).ok())
        << "flipped byte " << i << " must not validate";
  }
}

TEST(SnapshotFrameTest, TruncationAndVersionMismatchAreRejected) {
  const std::vector<uint8_t> good = SmallSnapshot();
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> cut(good.begin(), good.begin() + len);
    EXPECT_FALSE(SnapshotReader::Open(cut, kTestVersion).ok())
        << "prefix of " << len << " bytes must not validate";
  }
  EXPECT_FALSE(SnapshotReader::Open(good, kTestVersion + 1).ok());
  EXPECT_FALSE(SnapshotReader::Open({}, kTestVersion).ok());
}

TEST(SnapshotFrameTest, ReadPastPayloadEndFailsSafely) {
  const std::vector<uint8_t> bytes = SmallSnapshot();
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  SnapshotReader& r = reader.value();
  EXPECT_EQ(r.TakeU64(), 42u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.TakeU32(), 0u);  // overrun: zero value, failed state
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.TakeDouble(), 0.0);  // stays failed
  EXPECT_FALSE(r.AtEnd());
}

// --- Component round trips. The essential property throughout: a restored
// component continues the stream *bit-for-bit* like the original, because
// amnesia-crash replay determinism rests on it.

TEST(ChainSampleSnapshotTest, RestoredSamplerContinuesBitIdentically) {
  const size_t kSampleSize = 32, kWindow = 100;
  ChainSample original(kSampleSize, kWindow, Rng(7));
  for (int i = 0; i < 250; ++i) {
    original.Add({static_cast<double>(i)});
  }

  SnapshotWriter writer;
  original.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  ChainSample restored(kSampleSize, kWindow, Rng(999));  // seed irrelevant
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(restored.Restore(&reader.value()));
  EXPECT_TRUE(reader.value().AtEnd());

  EXPECT_EQ(restored.total_seen(), original.total_seen());
  EXPECT_EQ(restored.version(), original.version());
  EXPECT_EQ(restored.Snapshot(), original.Snapshot());
  for (int i = 250; i < 600; ++i) {
    const Point v{static_cast<double>(i)};
    ASSERT_EQ(original.Add(v), restored.Add(v)) << "diverged at element " << i;
    ASSERT_EQ(original.Snapshot(), restored.Snapshot())
        << "diverged at element " << i;
  }
}

TEST(ChainSampleSnapshotTest, ConfigMismatchIsRejected) {
  ChainSample original(16, 50, Rng(3));
  for (int i = 0; i < 80; ++i) original.Add({1.0 * i});
  SnapshotWriter writer;
  original.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  ChainSample wrong_window(16, 60, Rng(3));
  auto r1 = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(wrong_window.Restore(&r1.value()));

  ChainSample wrong_chains(17, 50, Rng(3));
  auto r2 = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(wrong_chains.Restore(&r2.value()));
}

// Chain sampling's contract is that every active element is uniform over
// the last |W| arrivals. A restore must not disturb that distribution: run
// the restored sampler well past the restore point and chi-square the
// active elements' arrival positions against uniform. With 256 independent
// chains over 8 bins the 99.9% critical value of chi2(7) is 24.3; a
// restore bug (e.g. re-drawn replacement indices biased toward the restore
// point) shifts whole chains into one bin and blows far past it.
TEST(ChainSampleSnapshotTest, RestoredInclusionProbabilityStaysUniform) {
  const size_t kSampleSize = 256, kWindow = 200;
  ChainSample sampler(kSampleSize, kWindow, Rng(11));
  for (int i = 0; i < 300; ++i) sampler.Add({static_cast<double>(i)});

  SnapshotWriter writer;
  sampler.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);
  ChainSample restored(kSampleSize, kWindow, Rng(12345));
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(restored.Restore(&reader.value()));

  // Continue two full windows past the restore, then bin the sample.
  const int kLast = 700;
  for (int i = 300; i < kLast; ++i) restored.Add({static_cast<double>(i)});
  const std::vector<Point> sample = restored.Snapshot();
  ASSERT_EQ(sample.size(), kSampleSize);

  const size_t kBins = 8;
  std::vector<double> counts(kBins, 0.0);
  for (const Point& p : sample) {
    const double age = (kLast - 1) - p[0];  // 0 = newest arrival
    ASSERT_GE(age, 0.0);
    ASSERT_LT(age, static_cast<double>(kWindow)) << "stale element survived";
    counts[static_cast<size_t>(age) * kBins / kWindow] += 1.0;
  }
  const double expected = static_cast<double>(kSampleSize) / kBins;
  double chi2 = 0.0;
  for (double c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 24.3) << "restored sample is not uniform over the window";
}

TEST(VarianceSketchSnapshotTest, RestoredSketchContinuesBitIdentically) {
  VarianceSketch original(128, 0.1);
  Rng rng(21);
  for (int i = 0; i < 500; ++i) original.Add(rng.Gaussian(5.0, 2.0));

  SnapshotWriter writer;
  original.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  VarianceSketch restored(128, 0.1);
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(restored.Restore(&reader.value()));
  EXPECT_TRUE(reader.value().AtEnd());

  EXPECT_EQ(restored.total_seen(), original.total_seen());
  EXPECT_EQ(restored.NumBuckets(), original.NumBuckets());
  EXPECT_DOUBLE_EQ(restored.Variance(), original.Variance());
  for (int i = 0; i < 300; ++i) {
    const double x = rng.Gaussian(5.0, 2.0);
    original.Add(x);
    restored.Add(x);
    ASSERT_DOUBLE_EQ(original.Variance(), restored.Variance());
    ASSERT_EQ(original.NumBuckets(), restored.NumBuckets());
  }

  // Mismatched geometry is rejected.
  VarianceSketch wrong(64, 0.1);
  auto r2 = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(wrong.Restore(&r2.value()));
}

TEST(KdeSnapshotTest, DeserializedEstimatorIsIdentical) {
  Rng rng(31);
  std::vector<Point> sample;
  for (int i = 0; i < 200; ++i) {
    sample.push_back({rng.Gaussian(0.5, 0.1), rng.Gaussian(0.3, 0.05)});
  }
  auto original = KernelDensityEstimator::CreateWithScottBandwidths(
      sample, {0.1, 0.05});
  ASSERT_TRUE(original.ok());

  SnapshotWriter writer;
  original.value().Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  auto restored = KernelDensityEstimator::Deserialize(&reader.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored.value().sample_size(), original.value().sample_size());
  EXPECT_EQ(restored.value().bandwidths(), original.value().bandwidths());
  for (double x = 0.1; x < 0.9; x += 0.17) {
    for (double y = 0.1; y < 0.9; y += 0.13) {
      ASSERT_DOUBLE_EQ(restored.value().Pdf({x, y}),
                       original.value().Pdf({x, y}));
    }
  }
}

TEST(KdeSnapshotTest, FlatLayoutRoundTripsToIdenticalEstimator) {
  Rng rng(77);
  std::vector<Point> sample;
  for (int i = 0; i < 150; ++i) {
    sample.push_back({rng.UniformDouble(), rng.Gaussian(0.4, 0.1),
                      rng.UniformDouble(0.2, 0.9)});
  }
  auto original =
      KernelDensityEstimator::Create(sample, {0.07, 0.04, 0.11});
  ASSERT_TRUE(original.ok());

  SnapshotWriter writer;
  original.value().Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  auto restored = KernelDensityEstimator::Deserialize(&reader.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  // The restored estimator is *identical*, not just equivalent: same
  // canonical row order in the flat buffer, same primary axis, same
  // bandwidths — hence bit-identical answers to any query.
  EXPECT_EQ(restored.value().sample(), original.value().sample());
  EXPECT_EQ(restored.value().primary_axis(), original.value().primary_axis());
  EXPECT_EQ(restored.value().bandwidths(), original.value().bandwidths());
  ASSERT_EQ(restored.value().BoxProbability({0.2, 0.3, 0.25},
                                            {0.6, 0.5, 0.8}),
            original.value().BoxProbability({0.2, 0.3, 0.25},
                                            {0.6, 0.5, 0.8}));
}

TEST(KdeSnapshotTest, PreFlatLayoutPayloadStillRestores) {
  // A payload written point-by-point in arbitrary (chain) order — the exact
  // bytes the vector<Point>-era Serialize() emitted. Deserialize must
  // accept it and re-canonicalize to the same estimator the same points
  // produce through Create().
  const std::vector<Point> chain_order{
      {0.9, 0.2}, {0.1, 0.8}, {0.5, 0.5}, {0.3, 0.1}};
  const std::vector<double> bandwidths{0.06, 0.09};
  SnapshotWriter writer;
  writer.PutDoubles(bandwidths);
  writer.PutU32(static_cast<uint32_t>(chain_order.size()));
  for (const Point& p : chain_order) writer.PutPoint(p);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  auto restored = KernelDensityEstimator::Deserialize(&reader.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  auto direct = KernelDensityEstimator::Create(chain_order, bandwidths);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(restored.value().sample(), direct.value().sample());
  EXPECT_EQ(restored.value().primary_axis(), direct.value().primary_axis());
  ASSERT_EQ(restored.value().Pdf({0.45, 0.45}),
            direct.value().Pdf({0.45, 0.45}));
}

TEST(KdeSnapshotTest, PointDimensionMismatchIsRejected) {
  SnapshotWriter writer;
  writer.PutDoubles({0.05, 0.05});              // two bandwidths...
  writer.PutU32(1);
  writer.PutPoint({0.5});                       // ...but a 1-d point
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  auto restored = KernelDensityEstimator::Deserialize(&reader.value());
  EXPECT_FALSE(restored.ok());
}

TEST(DensityModelSnapshotTest, RestoredModelContinuesBitIdentically) {
  DensityModelConfig config;
  config.dimensions = 1;
  config.window_size = 150;
  config.sample_size = 40;
  DensityModel original(config, Rng(41));
  Rng data(55);
  for (int i = 0; i < 400; ++i) {
    original.Observe({data.UniformDouble(0.0, 1.0)});
  }

  SnapshotWriter writer;
  original.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  DensityModel restored(config, Rng(4242));
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(restored.Restore(&reader.value()));
  EXPECT_TRUE(reader.value().AtEnd());

  EXPECT_EQ(restored.total_seen(), original.total_seen());
  EXPECT_EQ(restored.sample().Snapshot(), original.sample().Snapshot());
  EXPECT_EQ(restored.BandwidthSpreads(), original.BandwidthSpreads());
  for (int i = 0; i < 300; ++i) {
    const Point v{data.UniformDouble(0.0, 1.0)};
    ASSERT_EQ(original.Observe(v), restored.Observe(v))
        << "insertion decision diverged at " << i;
    ASSERT_EQ(original.sample().Snapshot(), restored.sample().Snapshot());
  }
  ASSERT_TRUE(original.Ready());
  EXPECT_DOUBLE_EQ(restored.Estimator().Pdf({0.5}),
                   original.Estimator().Pdf({0.5}));
}

TEST(DensityModelSnapshotTest, DimensionMismatchIsRejected) {
  DensityModelConfig config;
  config.dimensions = 2;
  config.window_size = 50;
  config.sample_size = 10;
  DensityModel original(config, Rng(1));
  for (int i = 0; i < 60; ++i) original.Observe({0.1 * (i % 10), 0.5});
  SnapshotWriter writer;
  original.Serialize(&writer);
  const std::vector<uint8_t> bytes = std::move(writer).Finish(kTestVersion);

  DensityModelConfig other = config;
  other.dimensions = 3;
  DensityModel wrong(other, Rng(1));
  auto reader = SnapshotReader::Open(bytes, kTestVersion);
  ASSERT_TRUE(reader.ok());
  EXPECT_FALSE(wrong.Restore(&reader.value()));
}

}  // namespace
}  // namespace sensord
