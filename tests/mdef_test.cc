#include "core/mdef.h"

#include <gtest/gtest.h>

#include "stats/empirical.h"
#include "stats/kde.h"
#include "util/rng.h"

namespace sensord {
namespace {

MdefConfig DefaultConfig() {
  MdefConfig cfg;
  cfg.sampling_radius = 0.08;
  cfg.counting_radius = 0.01;
  cfg.k_sigma = 3.0;
  return cfg;
}

std::vector<Point> UniformCluster(Rng* rng, size_t n, double lo, double hi) {
  std::vector<Point> out;
  for (size_t i = 0; i < n; ++i) out.push_back({rng->UniformDouble(lo, hi)});
  return out;
}

TEST(MdefTest, UniformRegionValueIsNotOutlier) {
  Rng rng(1);
  auto data = UniformCluster(&rng, 5000, 0.3, 0.5);
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  const auto r = ComputeMdef(*e, {0.4}, DefaultConfig());
  EXPECT_FALSE(r.is_outlier);
  // In a homogeneous region the value's count matches the local average.
  EXPECT_NEAR(r.mdef, 0.0, 0.5);
  EXPECT_GT(r.cells_considered, 0u);
}

TEST(MdefTest, IsolatedValueIsOutlier) {
  Rng rng(2);
  auto data = UniformCluster(&rng, 5000, 0.3, 0.4);
  data.push_back({0.46});  // sparse point, dense cluster inside its r-ball
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  const auto r = ComputeMdef(*e, {0.46}, DefaultConfig());
  EXPECT_TRUE(r.is_outlier);
  EXPECT_GT(r.mdef, 0.5);
}

TEST(MdefTest, EmptyNeighborhoodIsNotFlagged) {
  auto e = EmpiricalDistribution::Create({{0.1}});
  ASSERT_TRUE(e.ok());
  // Nothing within the sampling radius of 0.9.
  const auto r = ComputeMdef(*e, {0.9}, DefaultConfig());
  EXPECT_FALSE(r.is_outlier);
  EXPECT_DOUBLE_EQ(r.avg_mass, 0.0);
}

TEST(MdefTest, LocalDensityAdaptation) {
  // The MDEF advantage over (D, r)-outliers: a point that is "sparse" in
  // absolute terms but consistent with its locally sparse region must NOT
  // be flagged, while the same count inside a dense region must be flagged.
  Rng rng(3);
  std::vector<Point> data;
  // Dense region around 0.3 (5000 points), sparse region around 0.7 (50).
  for (const Point& p : UniformCluster(&rng, 5000, 0.25, 0.35)) {
    data.push_back(p);
  }
  for (const Point& p : UniformCluster(&rng, 50, 0.65, 0.75)) {
    data.push_back(p);
  }
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  const auto sparse_native = ComputeMdef(*e, {0.7}, DefaultConfig());
  EXPECT_FALSE(sparse_native.is_outlier)
      << "point consistent with its sparse region was flagged";
}

TEST(MdefTest, MdefFromMassesScaleInvariant) {
  MdefConfig cfg = DefaultConfig();
  const auto a = MdefFromMasses(0.001, 0.1, 0.004, 0.0002, 8, cfg);
  const auto b =
      MdefFromMasses(10.0, 1000.0, 400000.0, 200000000.0, 8, cfg);
  EXPECT_NEAR(a.mdef, b.mdef, 1e-9);
  EXPECT_NEAR(a.sigma_mdef, b.sigma_mdef, 1e-9);
  EXPECT_EQ(a.is_outlier, b.is_outlier);
}

TEST(MdefTest, KSigmaControlsCutoff) {
  Rng rng(4);
  auto data = UniformCluster(&rng, 2000, 0.3, 0.5);
  data.push_back({0.55});
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  MdefConfig strict = DefaultConfig();
  strict.k_sigma = 0.1;  // nearly everything deviates
  MdefConfig lax = DefaultConfig();
  lax.k_sigma = 1000.0;  // nothing deviates
  EXPECT_TRUE(ComputeMdef(*e, {0.55}, strict).is_outlier);
  EXPECT_FALSE(ComputeMdef(*e, {0.55}, lax).is_outlier);
}

TEST(MdefTest, KdeFastPathMatchesGenericIn2d) {
  Rng rng(5);
  std::vector<Point> sample;
  for (int i = 0; i < 300; ++i) {
    sample.push_back({Clamp(rng.Gaussian(0.4, 0.05), 0.0, 1.0),
                      Clamp(rng.Gaussian(0.4, 0.05), 0.0, 1.0)});
  }
  auto kde = KernelDensityEstimator::Create(sample, {0.02, 0.02});
  ASSERT_TRUE(kde.ok());
  MdefConfig cfg = DefaultConfig();
  Rng qrng(6);
  for (int i = 0; i < 50; ++i) {
    const Point q{qrng.UniformDouble(0.2, 0.6), qrng.UniformDouble(0.2, 0.6)};
    const auto fast = ComputeMdef(*kde, q, cfg);  // KDE overload
    const auto generic =
        ComputeMdef(static_cast<const DistributionEstimator&>(*kde), q, cfg);
    EXPECT_NEAR(fast.counting_mass, generic.counting_mass, 1e-9);
    EXPECT_NEAR(fast.avg_mass, generic.avg_mass, 1e-9);
    EXPECT_NEAR(fast.sigma_mass, generic.sigma_mass, 1e-9);
    EXPECT_EQ(fast.is_outlier, generic.is_outlier);
    EXPECT_EQ(fast.cells_considered, generic.cells_considered);
  }
}

TEST(MdefTest, KdeEstimateAgreesWithEmpiricalTruth) {
  // The kernel-based MDEF decision should usually match the exact one.
  Rng rng(7);
  std::vector<Point> window;
  for (int i = 0; i < 8000; ++i) {
    window.push_back({Clamp(rng.Gaussian(0.35, 0.04), 0.0, 1.0)});
  }
  auto e = EmpiricalDistribution::Create(window);
  ASSERT_TRUE(e.ok());
  // Build the KDE from a random subsample (as the online system would).
  std::vector<Point> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back(window[rng.UniformUint64(window.size())]);
  }
  auto kde =
      KernelDensityEstimator::CreateWithScottBandwidths(sample, {0.04});
  ASSERT_TRUE(kde.ok());

  const MdefConfig cfg = DefaultConfig();
  int agree = 0, total = 0;
  Rng qrng(8);
  for (int i = 0; i < 200; ++i) {
    const Point q{qrng.UniformDouble(0.2, 0.55)};
    const bool truth = ComputeMdef(*e, q, cfg).is_outlier;
    const bool est = ComputeMdef(*kde, q, cfg).is_outlier;
    agree += (truth == est);
    ++total;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.85);
}

TEST(MdefTest, CellsConsideredMatchesGeometry1d) {
  // r = 0.08, cell side 0.02: cells with centres in [p-r, p+r] -> 8 cells
  // for a centred p.
  Rng rng(9);
  auto e = EmpiricalDistribution::Create(UniformCluster(&rng, 100, 0.0, 1.0));
  ASSERT_TRUE(e.ok());
  const auto r = ComputeMdef(*e, {0.5}, DefaultConfig());
  EXPECT_GE(r.cells_considered, 7u);
  EXPECT_LE(r.cells_considered, 9u);
}

TEST(MdefTest, DomainEdgeClampsCells) {
  Rng rng(10);
  auto e = EmpiricalDistribution::Create(UniformCluster(&rng, 100, 0.0, 1.0));
  ASSERT_TRUE(e.ok());
  const auto r = ComputeMdef(*e, {0.01}, DefaultConfig());
  // Near the boundary only ~half the cells exist.
  EXPECT_LT(r.cells_considered, 7u);
  EXPECT_GT(r.cells_considered, 0u);
}

}  // namespace
}  // namespace sensord
