// Scaled-down versions of the paper's experiments, asserting the headline
// *shapes* (Section 10) rather than exact numbers: high precision/recall at
// sane parameters, JS distance small when stationary and spiking at shifts,
// and the D3 << MGDD << centralized message ordering.

#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

AccuracyConfig SmallAccuracyConfig() {
  AccuracyConfig cfg;
  cfg.num_leaves = 8;
  cfg.fanout = 4;
  cfg.dimensions = 1;
  cfg.window_size = 2000;
  cfg.sample_size = 200;
  cfg.warmup_rounds = 2200;
  cfg.measured_rounds = 600;
  cfg.d3_outlier.radius = 0.01;
  cfg.d3_outlier.neighbor_threshold = 10.0;  // scaled for |W| = 2000
  // k_sigma = 1 keeps a meaningful true-MDEF population on the synthetic
  // mixture under our strictly object-weighted aLOCI statistics (see
  // EXPERIMENTS.md); at k_sigma = 3 the workload has nearly no true MDEF
  // outliers and the scores are vacuous.
  cfg.mdef.k_sigma = 1.0;
  cfg.seed = 7;
  return cfg;
}

TEST(AccuracyExperimentTest, ValidatesConfig) {
  AccuracyConfig bad = SmallAccuracyConfig();
  bad.sample_size = 0;
  EXPECT_FALSE(RunAccuracyExperiment(bad).ok());

  bad = SmallAccuracyConfig();
  bad.workload = WorkloadKind::kEngine;
  bad.dimensions = 2;
  EXPECT_FALSE(RunAccuracyExperiment(bad).ok());

  bad = SmallAccuracyConfig();
  bad.run_d3 = bad.run_mgdd = false;
  EXPECT_FALSE(RunAccuracyExperiment(bad).ok());

  bad = SmallAccuracyConfig();
  bad.sample_fraction = 0.0;
  EXPECT_FALSE(RunAccuracyExperiment(bad).ok());

  bad = SmallAccuracyConfig();
  bad.link_loss = 1.0;
  EXPECT_FALSE(RunAccuracyExperiment(bad).ok());
}

TEST(AccuracyExperimentTest, LeafDetectionSurvivesPacketLoss) {
  // D3 leaf detection is purely local, so heavy packet loss must leave the
  // level-1 scores untouched (same seed, same workload, same decisions).
  AccuracyConfig cfg = SmallAccuracyConfig();
  cfg.run_mgdd = false;
  cfg.measured_rounds = 300;
  auto reliable = RunAccuracyExperiment(cfg);
  cfg.link_loss = 0.6;
  auto lossy = RunAccuracyExperiment(cfg);
  ASSERT_TRUE(reliable.ok());
  ASSERT_TRUE(lossy.ok());
  EXPECT_EQ(reliable->d3_by_level[0].true_positives(),
            lossy->d3_by_level[0].true_positives());
  EXPECT_EQ(reliable->d3_by_level[0].false_positives(),
            lossy->d3_by_level[0].false_positives());
}

TEST(AccuracyExperimentTest, KernelMethodAchievesHighAccuracy) {
  auto result = RunAccuracyExperiment(SmallAccuracyConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->d3_by_level.size(), 2u);

  const auto& leaf = result->d3_by_level[0];
  EXPECT_GT(leaf.total(), 0u);
  EXPECT_GT(leaf.true_positives() + leaf.false_negatives(), 10u)
      << "workload produced no true outliers to score";
  EXPECT_GT(leaf.Precision(), 0.8) << leaf.ToString();
  EXPECT_GT(leaf.Recall(), 0.4) << leaf.ToString();

  EXPECT_GT(result->mgdd.true_positives() + result->mgdd.false_negatives(),
            10u);
  EXPECT_GT(result->mgdd.Precision(), 0.8) << result->mgdd.ToString();
  EXPECT_GT(result->mgdd.Recall(), 0.35) << result->mgdd.ToString();
  EXPECT_GT(result->d3_messages, 0u);
  EXPECT_GT(result->mgdd_messages, 0u);
}

TEST(AccuracyExperimentTest, HistogramMethodRuns) {
  AccuracyConfig cfg = SmallAccuracyConfig();
  cfg.method = EstimatorMethod::kHistogram;
  cfg.run_mgdd = false;  // keep the test fast
  cfg.histogram_rebuild_interval = 100;
  auto result = RunAccuracyExperiment(cfg);
  ASSERT_TRUE(result.ok());
  const auto& leaf = result->d3_by_level[0];
  EXPECT_GT(leaf.total(), 0u);
  EXPECT_GT(leaf.Precision(), 0.5) << leaf.ToString();
  EXPECT_GT(leaf.Recall(), 0.5) << leaf.ToString();
  EXPECT_EQ(result->d3_messages, 0u);  // offline emulation: no simulator
}

TEST(AccuracyExperimentTest, AveragingMergesRuns) {
  AccuracyConfig cfg = SmallAccuracyConfig();
  cfg.run_mgdd = false;
  cfg.measured_rounds = 200;
  auto one = RunAccuracyExperiment(cfg);
  ASSERT_TRUE(one.ok());
  auto two = RunAccuracyExperimentAveraged(cfg, 2);
  ASSERT_TRUE(two.ok());
  EXPECT_GT(two->d3_by_level[0].total(), one->d3_by_level[0].total());
}

TEST(EstimationAccuracyTest, SmallWhenStationaryAndSpikesAtShift) {
  // Window (1024) shorter than the phase (4096), as in the paper's setup
  // (W = 10240 vs two 4096-phases): the estimate becomes stationary well
  // before each shift and recovers fully about one window after it.
  EstimationAccuracyConfig cfg;
  cfg.window_size = 1024;
  cfg.sample_size = 128;
  cfg.phase_length = 4096;
  cfg.total_rounds = 8192;
  cfg.eval_every = 128;
  cfg.parent_fractions = {0.5};
  const auto series = RunEstimationAccuracy(cfg);
  ASSERT_FALSE(series.empty());

  // Late in phase 1 (stationary, window warmed): distance should be small.
  double stationary = 1.0;
  double post_shift = 0.0;
  double recovered = 1.0;
  double parent_best = 1.0;
  for (const auto& pt : series) {
    ASSERT_EQ(pt.parent_js.size(), 1u);
    if (pt.t > 3000 && pt.t <= 4096) {
      stationary = std::min(stationary, pt.leaf_js);
      parent_best = std::min(parent_best, pt.parent_js[0]);
    }
    if (pt.t > 4096 && pt.t <= 4608) {
      post_shift = std::max(post_shift, pt.leaf_js);
    }
    // A full window past the shift and before the next one: recovered.
    if (pt.t > 4096 + 2048 && pt.t <= 8192) {
      recovered = std::min(recovered, pt.leaf_js);
    }
  }
  EXPECT_LT(stationary, 0.05);
  EXPECT_GT(post_shift, std::max(0.1, stationary * 3))
      << "distribution shift must show up as a JS spike";
  EXPECT_LT(recovered, 0.08);
  EXPECT_LT(parent_best, 0.15);
}

TEST(MessageScalingTest, OrderingMatchesFigure11) {
  MessageScalingConfig cfg;
  cfg.num_leaves = 64;
  cfg.window_size = 2048;
  cfg.sample_size = 256;
  cfg.duration_seconds = 300.0;
  auto result = RunMessageScaling(cfg);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->d3_messages_per_second, 0.0);
  EXPECT_LT(result->d3_messages_per_second,
            result->mgdd_messages_per_second);
  EXPECT_LT(result->mgdd_messages_per_second,
            result->centralized_messages_per_second);
  // The paper's headline: ~2 orders of magnitude between D3 and
  // centralized; assert at least one.
  EXPECT_GT(result->centralized_messages_per_second /
                result->d3_messages_per_second,
            10.0);
}

TEST(MessageScalingTest, EnergyHotspotUnderCentralization) {
  MessageScalingConfig cfg;
  cfg.num_leaves = 32;
  cfg.window_size = 1024;
  cfg.sample_size = 128;
  cfg.duration_seconds = 120.0;
  auto r = RunMessageScaling(cfg);
  ASSERT_TRUE(r.ok());
  // The centralized root relays every reading: its radio burns far more
  // than any node under D3's thinned sample propagation.
  EXPECT_GT(r->centralized_max_node_energy_per_second,
            10.0 * r->d3_max_node_energy_per_second);
  EXPECT_GT(r->d3_max_node_energy_per_second, 0.0);
}

TEST(MessageScalingTest, RatesGrowWithNetworkSize) {
  MessageScalingConfig small, large;
  small.num_leaves = 16;
  large.num_leaves = 64;
  small.window_size = large.window_size = 1024;
  small.sample_size = large.sample_size = 128;
  small.duration_seconds = large.duration_seconds = 120.0;
  auto rs = RunMessageScaling(small);
  auto rl = RunMessageScaling(large);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_GT(rl->centralized_messages_per_second,
            rs->centralized_messages_per_second);
  EXPECT_GT(rl->d3_messages_per_second, rs->d3_messages_per_second);
}

}  // namespace
}  // namespace sensord
