// End-to-end contract of the causal tracing layer (DESIGN.md §11): a seeded
// D3 + MGDD scenario with loss, duplication, an amnesia crash and the
// reliable transport, run with the trace and flight-recorder sinks open,
// must (a) emit byte-identical JSONL across two same-seed runs — trace ids
// survive retransmits, dedup and transport epochs — and (b) produce a
// complete leaf-to-root causal chain for every decision record, with no
// orphan spans anywhere in the artifact.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/d3.h"
#include "core/mgdd.h"
#include "net/fault_schedule.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "util/math_utils.h"
#include "util/rng.h"

namespace sensord {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class RecordingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

// Minimal JSONL field access for the fixed formats trace.cc emits.
bool HasKey(const std::string& line, const std::string& key) {
  return line.find("\"" + key + "\":") != std::string::npos;
}

uint64_t U64Field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in: " << line;
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// The golden-e2e scenario shape at half scale, with the sinks open: 4
// leaves / fanout 2, 10% uniform loss + a flaky duplicating default link,
// one amnesia crash with periodic checkpoints, reliable transport. Runs D3
// then MGDD against the same open sinks, so the artifacts interleave both
// detectors' chains.
void RunTracedScenario(const std::string& trace_path,
                       const std::string& flight_path,
                       std::vector<OutlierEvent>* events_out,
                       bool enable_sinks = true) {
  const int kRounds = 300;
  const int kLeaves = 4;

  if (enable_sinks) {
    ASSERT_TRUE(obs::OpenTraceSink(trace_path).ok());
    obs::FlightRecorder::Enable(/*capacity_per_node=*/32);
    ASSERT_TRUE(obs::FlightRecorder::OpenDumpSink(flight_path).ok());
  }

  for (const bool run_d3 : {true, false}) {
    SimulatorOptions sim_opts;
    sim_opts.drop_probability = 0.1;
    sim_opts.loss_seed = 0xD0;
    sim_opts.fault_seed = 0xFA;
    sim_opts.transport.reliable = true;
    sim_opts.transport.ack_timeout = 0.05;
    sim_opts.transport.max_retries = 4;
    sim_opts.recovery.checkpoint_interval = 25.0;
    Simulator sim(sim_opts);
    LinkFault flaky;
    flaky.drop_probability = 0.05;
    flaky.duplicate_probability = 0.02;
    sim.faults().SetDefaultLinkFault(flaky);
    sim.faults().CrashNode(2, 120.0, 160.0, CrashKind::kAmnesia);

    RecordingObserver observer;
    Rng node_rng(99);
    auto layout = BuildGridHierarchy(kLeaves, 2);
    std::vector<NodeId> ids;
    if (run_d3) {
      D3Options leaf_opts;
      leaf_opts.model.window_size = 500;
      leaf_opts.model.sample_size = 100;
      leaf_opts.outlier.radius = 0.02;
      leaf_opts.outlier.neighbor_threshold = 10.0;
      leaf_opts.min_observations = 200;
      leaf_opts.staleness_threshold = 30.0;
      ids = sim.Instantiate(
          *layout,
          [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
            if (spec.level == 1) {
              return std::make_unique<D3LeafNode>(leaf_opts, node_rng.Split(),
                                                  &observer);
            }
            D3Options opts = leaf_opts;
            opts.model =
                LeaderModelConfig(leaf_opts.model, 2, 0.5, spec.level);
            opts.min_observations = 50;
            return std::make_unique<D3ParentNode>(opts, node_rng.Split(),
                                                  &observer);
          });
    } else {
      MgddOptions leaf_opts;
      leaf_opts.model.window_size = 400;
      leaf_opts.model.sample_size = 64;
      leaf_opts.min_observations = 200;
      leaf_opts.staleness_threshold = 30.0;
      leaf_opts.mdef.k_sigma = 0.5;
      ids = sim.Instantiate(
          *layout,
          [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
            if (spec.level == 1) {
              return std::make_unique<MgddLeafNode>(
                  leaf_opts, node_rng.Split(), &observer);
            }
            MgddOptions opts = leaf_opts;
            opts.model =
                LeaderModelConfig(leaf_opts.model, 2, 0.5, spec.level);
            return std::make_unique<MgddInternalNode>(opts, node_rng.Split());
          });
    }

    Rng readings_rng(run_d3 ? 20260806 : 20060915);
    double t = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      for (int leaf = 0; leaf < kLeaves; ++leaf) {
        Point p;
        if (run_d3) {
          p = {Clamp(readings_rng.Gaussian(0.4, 0.01), 0.0, 1.0)};
          if (round % 7 == 0 && leaf == (round / 7) % kLeaves) {
            p = {readings_rng.UniformDouble(0.6, 1.0)};
          }
        } else {
          p = {readings_rng.Bernoulli(0.5)
                   ? readings_rng.UniformDouble(0.30, 0.42)
                   : readings_rng.UniformDouble(0.50, 0.62)};
          if (round % 7 == 0 && leaf == (round / 7) % kLeaves) {
            p = {readings_rng.UniformDouble(0.44, 0.48)};
          }
        }
        sim.DeliverReading(ids[static_cast<size_t>(leaf)], p);
      }
      t += 1.0;
      sim.RunUntil(t);
    }
    sim.RunAll();
    if (events_out != nullptr) {
      events_out->insert(events_out->end(), observer.events.begin(),
                         observer.events.end());
    }
  }

  if (enable_sinks) {
    obs::FlightRecorder::DumpAll("shutdown");
    obs::FlightRecorder::Disable();
    obs::FlightRecorder::CloseDumpSink();
    obs::CloseTraceSink();
  }
}

// (a) The determinism acceptance gate: same seed, byte-identical artifacts,
// even though the scenario exercises loss, duplication (transport dedup),
// retransmits, and an amnesia crash's transport-epoch bump.
TEST(CausalTraceTest, SameSeedRunsEmitByteIdenticalArtifacts) {
  const std::string trace_a = TempPath("causal_trace_a.jsonl");
  const std::string flight_a = TempPath("causal_flight_a.jsonl");
  const std::string trace_b = TempPath("causal_trace_b.jsonl");
  const std::string flight_b = TempPath("causal_flight_b.jsonl");

  RunTracedScenario(trace_a, flight_a, nullptr);
  RunTracedScenario(trace_b, flight_b, nullptr);

  const std::string trace_bytes = ReadFile(trace_a);
  ASSERT_FALSE(trace_bytes.empty());
  EXPECT_EQ(trace_bytes, ReadFile(trace_b));
  const std::string flight_bytes = ReadFile(flight_a);
  ASSERT_FALSE(flight_bytes.empty());
  EXPECT_EQ(flight_bytes, ReadFile(flight_b));
  // The crash fault must have produced at least the crash and rejoin dumps.
  EXPECT_NE(flight_bytes.find("\"flight\":\"crash\""), std::string::npos);
  EXPECT_NE(flight_bytes.find("\"flight\":\"rejoin\""), std::string::npos);

  std::remove(trace_a.c_str());
  std::remove(flight_a.c_str());
  std::remove(trace_b.c_str());
  std::remove(flight_b.c_str());
}

// (b) Chain completeness: every decision record's span walks parent links
// to a root span (parent 0) that exists in the artifact, and no causal span
// anywhere references a parent that was never emitted.
TEST(CausalTraceTest, EveryDecisionHasACompleteRootedChain) {
  const std::string trace_path = TempPath("causal_trace_chains.jsonl");
  const std::string flight_path = TempPath("causal_flight_chains.jsonl");
  std::vector<OutlierEvent> events;
  RunTracedScenario(trace_path, flight_path, &events);

  // Index causal spans: (trace, span) -> parent.
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> spans;
  std::vector<std::string> decisions;
  for (const std::string& line : ReadLines(trace_path)) {
    if (HasKey(line, "decision")) {
      decisions.push_back(line);
    } else if (HasKey(line, "parent")) {
      spans[{U64Field(line, "trace"), U64Field(line, "span")}] =
          U64Field(line, "parent");
    }
  }
  ASSERT_FALSE(spans.empty());
  ASSERT_FALSE(decisions.empty());

  // No orphans: every non-zero parent is an emitted span of the same trace.
  for (const auto& [key, parent] : spans) {
    if (parent == 0) continue;
    EXPECT_TRUE(spans.count({key.first, parent}))
        << "orphan span " << key.second << " of trace " << key.first
        << " references missing parent " << parent;
  }

  // Every decision's span exists and walks to a root within its trace.
  for (const std::string& line : decisions) {
    const uint64_t trace = U64Field(line, "trace");
    uint64_t cursor = U64Field(line, "span");
    ASSERT_TRUE(spans.count({trace, cursor})) << line;
    std::set<uint64_t> seen;
    size_t hops = 0;
    while (cursor != 0) {
      ASSERT_TRUE(seen.insert(cursor).second)
          << "parent cycle in trace " << trace;
      const auto it = spans.find({trace, cursor});
      ASSERT_NE(it, spans.end())
          << "chain of " << line << " breaks at span " << cursor;
      cursor = it->second;
      ++hops;
    }
    EXPECT_GE(hops, 1u);
  }

  // The observer-facing provenance carries the same ids: every outlier
  // event names a trace that exists in the artifact, with a real threshold.
  ASSERT_FALSE(events.empty());
  std::set<uint64_t> traces;
  for (const auto& [key, parent] : spans) traces.insert(key.first);
  for (const OutlierEvent& event : events) {
    EXPECT_NE(event.provenance.trace_id, 0u);
    EXPECT_TRUE(traces.count(event.provenance.trace_id))
        << "event trace " << event.provenance.trace_id
        << " has no spans in the artifact";
    EXPECT_GT(event.provenance.threshold, 0.0);
  }

  std::remove(trace_path.c_str());
  std::remove(flight_path.c_str());
}

// Tracing on vs. off must not change the detection history — tracing draws
// no randomness and schedules no competing events (the crash-dump hook
// consumes none), so the golden e2e history stays valid with the sinks open.
TEST(CausalTraceTest, TracingDoesNotPerturbTheDetectionHistory) {
  std::vector<OutlierEvent> with_tracing;
  const std::string trace_path = TempPath("causal_trace_onoff.jsonl");
  const std::string flight_path = TempPath("causal_flight_onoff.jsonl");
  RunTracedScenario(trace_path, flight_path, &with_tracing);
  std::remove(trace_path.c_str());
  std::remove(flight_path.c_str());

  // Same scenario with every sink left disabled end to end.
  ASSERT_FALSE(obs::TraceSinkEnabled());
  ASSERT_FALSE(obs::FlightRecorder::Enabled());
  std::vector<OutlierEvent> without_tracing;
  RunTracedScenario("", "", &without_tracing, /*enable_sinks=*/false);

  ASSERT_EQ(with_tracing.size(), without_tracing.size());
  for (size_t i = 0; i < with_tracing.size(); ++i) {
    EXPECT_EQ(with_tracing[i].node, without_tracing[i].node);
    EXPECT_EQ(with_tracing[i].level, without_tracing[i].level);
    EXPECT_EQ(with_tracing[i].source_leaf, without_tracing[i].source_leaf);
    EXPECT_EQ(with_tracing[i].source_seq, without_tracing[i].source_seq);
    // Provenance is populated either way: it rides the event, not the sink.
    EXPECT_EQ(with_tracing[i].provenance.trace_id,
              without_tracing[i].provenance.trace_id);
  }
}

}  // namespace
}  // namespace sensord
