#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sensord::obs {
namespace {

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("net.messages.total")->Increment(12);
    r->GetGauge("core.model.bytes")->Set(10240.0);
    Histogram* h =
        r->GetHistogram("stream.add_ns", Histogram::LinearBoundaries(1, 1, 4));
    h->Record(1.0);
    h->Record(2.0);
    h->Record(3.0);
    return r;
  }();
  return *registry;
}

TEST(PrintMetricsTableTest, ContainsEveryMetricAndQuantileColumns) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  PrintMetricsTable(PopulatedRegistry(), tmp);
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) out.append(buf, n);
  std::fclose(tmp);

  EXPECT_NE(out.find("net.messages.total"), std::string::npos) << out;
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("core.model.bytes"), std::string::npos);
  EXPECT_NE(out.find("stream.add_ns"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
}

TEST(MetricsToJsonTest, EmitsAllSectionsWithValues) {
  const std::string json = MetricsToJson(PopulatedRegistry());
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"net.messages.total\":12"), std::string::npos);
  EXPECT_NE(json.find("\"core.model.bytes\":10240"), std::string::npos);
  EXPECT_NE(json.find("\"stream.add_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  // Structurally balanced — a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(WriteBenchJsonTest, WritesSchemaResultsAndMetrics) {
  const std::string path = ::testing::TempDir() + "obs_bench_record.json";
  const BenchResults results = {{"events_per_sec", 1.5e6},
                                {"elapsed_sec", 2.0}};
  ASSERT_TRUE(
      WriteBenchJson(path, "micro", results, PopulatedRegistry()).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\":\"sensord.bench.v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bench\":\"micro\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"net.messages.total\":12"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJsonTest, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteBenchJson("/nonexistent-dir/out.json", "x", {},
                              PopulatedRegistry())
                   .ok());
}

}  // namespace
}  // namespace sensord::obs
