#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace sensord::obs {
namespace {

MetricsRegistry& PopulatedRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("net.messages.total")->Increment(12);
    r->GetGauge("core.model.bytes")->Set(10240.0);
    Histogram* h =
        r->GetHistogram("stream.add_ns", Histogram::LinearBoundaries(1, 1, 4));
    h->Record(1.0);
    h->Record(2.0);
    h->Record(3.0);
    return r;
  }();
  return *registry;
}

TEST(PrintMetricsTableTest, ContainsEveryMetricAndQuantileColumns) {
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  PrintMetricsTable(PopulatedRegistry(), tmp);
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), tmp)) > 0) out.append(buf, n);
  std::fclose(tmp);

  EXPECT_NE(out.find("net.messages.total"), std::string::npos) << out;
  EXPECT_NE(out.find("12"), std::string::npos);
  EXPECT_NE(out.find("core.model.bytes"), std::string::npos);
  EXPECT_NE(out.find("stream.add_ns"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
}

TEST(MetricsToJsonTest, EmitsAllSectionsWithValues) {
  const std::string json = MetricsToJson(PopulatedRegistry());
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"net.messages.total\":12"), std::string::npos);
  EXPECT_NE(json.find("\"core.model.bytes\":10240"), std::string::npos);
  EXPECT_NE(json.find("\"stream.add_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  // Structurally balanced — a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(WriteBenchJsonTest, WritesSchemaResultsAndMetrics) {
  const std::string path = ::testing::TempDir() + "obs_bench_record.json";
  const BenchResults results = {{"events_per_sec", 1.5e6},
                                {"elapsed_sec", 2.0}};
  ASSERT_TRUE(
      WriteBenchJson(path, "micro", results, PopulatedRegistry()).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  EXPECT_NE(json.find("\"schema\":\"sensord.bench.v1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"bench\":\"micro\""), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"net.messages.total\":12"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteBenchJsonTest, MetadataIsSortedAndOmittedWhenEmpty) {
  const std::string path = ::testing::TempDir() + "obs_bench_meta.json";
  const BenchMetadata metadata = {{"threads", "8"}, {"quick", "0"}};
  ASSERT_TRUE(WriteBenchJson(path, "meta", {}, PopulatedRegistry(), metadata)
                  .ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  // Keys sorted: quick before threads, the whole object before results.
  EXPECT_NE(json.find("\"meta\":{\"quick\":\"0\",\"threads\":\"8\"}"),
            std::string::npos)
      << json;
  std::remove(path.c_str());

  ASSERT_TRUE(WriteBenchJson(path, "meta", {}, PopulatedRegistry()).ok());
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_EQ(ss2.str().find("\"meta\":"), std::string::npos) << ss2.str();
  std::remove(path.c_str());
}

TEST(MetricsToJsonTest, HistogramsCarrySortedBoundariesAndBuckets) {
  const std::string json = MetricsToJson(PopulatedRegistry());
  // LinearBoundaries(1, 1, 4) -> [1,2,3,4]; records 1,2,3 land in the first
  // three buckets (right-inclusive), overflow bucket trails empty.
  const size_t pos = json.find("\"boundaries\":[1,2,3,4]");
  ASSERT_NE(pos, std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[1,1,1,0,0]"), std::string::npos) << json;
}

// Machine-diffable artifacts: two writes of the same registry are
// byte-identical, and results print sorted by key regardless of the order
// AddResult saw them.
TEST(WriteBenchJsonTest, OutputIsStableAndResultsAreSorted) {
  const std::string path_a = ::testing::TempDir() + "obs_bench_sorted_a.json";
  const std::string path_b = ::testing::TempDir() + "obs_bench_sorted_b.json";
  const BenchResults results = {{"zeta_metric", 3.0},
                                {"alpha_metric", 1.0},
                                {"mid_metric", 2.0}};
  ASSERT_TRUE(
      WriteBenchJson(path_a, "sorted", results, PopulatedRegistry()).ok());
  ASSERT_TRUE(
      WriteBenchJson(path_b, "sorted", results, PopulatedRegistry()).ok());
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string json = slurp(path_a);
  EXPECT_EQ(json, slurp(path_b));
  const size_t alpha = json.find("\"alpha_metric\"");
  const size_t mid = json.find("\"mid_metric\"");
  const size_t zeta = json.find("\"zeta_metric\"");
  ASSERT_NE(alpha, std::string::npos) << json;
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(WriteBenchJsonTest, FailsOnUnwritablePath) {
  EXPECT_FALSE(WriteBenchJson("/nonexistent-dir/out.json", "x", {},
                              PopulatedRegistry())
                   .ok());
}

}  // namespace
}  // namespace sensord::obs
