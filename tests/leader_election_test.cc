#include "net/leader_election.h"

#include <map>

#include <gtest/gtest.h>

namespace sensord {
namespace {

LeaderElectionConfig DefaultConfig() {
  LeaderElectionConfig cfg;
  cfg.initial_energy = 100.0;
  cfg.hysteresis = 0.05;
  return cfg;
}

TEST(LeaderElectionTest, RejectsBadInput) {
  EXPECT_FALSE(LeaderElection::Create({}, DefaultConfig()).ok());
  EXPECT_FALSE(LeaderElection::Create({{1, 2}, {}}, DefaultConfig()).ok());
  LeaderElectionConfig bad = DefaultConfig();
  bad.initial_energy = 0.0;
  EXPECT_FALSE(LeaderElection::Create({{1}}, bad).ok());
  bad = DefaultConfig();
  bad.hysteresis = -0.1;
  EXPECT_FALSE(LeaderElection::Create({{1}}, bad).ok());
}

TEST(LeaderElectionTest, FirstMemberLeadsInitially) {
  auto election =
      LeaderElection::Create({{3, 4, 5}, {7, 8}}, DefaultConfig());
  ASSERT_TRUE(election.ok());
  EXPECT_EQ(election->NumCells(), 2u);
  EXPECT_EQ(election->LeaderOf(0), 3u);
  EXPECT_EQ(election->LeaderOf(1), 7u);
}

TEST(LeaderElectionTest, DrainedLeaderIsReplaced) {
  auto election = LeaderElection::Create({{1, 2, 3}}, DefaultConfig());
  ASSERT_TRUE(election.ok());
  std::map<NodeId, double> consumed{{1, 50.0}, {2, 5.0}, {3, 10.0}};
  const auto changed =
      election->Rotate([&](NodeId n) { return consumed[n]; });
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(election->LeaderOf(0), 2u);  // most residual energy
  EXPECT_EQ(election->handoffs(), 1u);
}

TEST(LeaderElectionTest, HysteresisPreventsFlapping) {
  auto election = LeaderElection::Create({{1, 2}}, DefaultConfig());
  ASSERT_TRUE(election.ok());
  // Challenger marginally better: within the 5% band, no hand-off.
  std::map<NodeId, double> consumed{{1, 10.0}, {2, 9.0}};
  EXPECT_TRUE(election->Rotate([&](NodeId n) { return consumed[n]; })
                  .empty());
  EXPECT_EQ(election->LeaderOf(0), 1u);
  // Clearly better challenger: hand-off.
  consumed[1] = 30.0;
  EXPECT_EQ(election->Rotate([&](NodeId n) { return consumed[n]; }).size(),
            1u);
  EXPECT_EQ(election->LeaderOf(0), 2u);
}

TEST(LeaderElectionTest, RotationBalancesLoadOverTime) {
  // Simulate leadership costing energy: the leader pays 5 units per epoch,
  // members pay 1. Over many epochs every member should lead some of the
  // time and consumption should stay balanced.
  auto election = LeaderElection::Create({{0, 1, 2, 3}}, DefaultConfig());
  ASSERT_TRUE(election.ok());
  std::map<NodeId, double> consumed{{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::map<NodeId, int> epochs_led;
  for (int epoch = 0; epoch < 60; ++epoch) {
    const NodeId leader = election->LeaderOf(0);
    ++epochs_led[leader];
    for (auto& [node, used] : consumed) {
      used += node == leader ? 5.0 : 1.0;
    }
    election->Rotate([&](NodeId n) { return consumed[n]; });
  }
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_GT(epochs_led[n], 5) << "node " << n << " never rotated in";
  }
  double min_used = 1e9, max_used = 0;
  for (const auto& [node, used] : consumed) {
    min_used = std::min(min_used, used);
    max_used = std::max(max_used, used);
  }
  EXPECT_LT(max_used - min_used, 15.0) << "rotation failed to balance load";
}

TEST(LeaderElectionTest, MultipleCellsIndependent) {
  auto election =
      LeaderElection::Create({{1, 2}, {3, 4}}, DefaultConfig());
  ASSERT_TRUE(election.ok());
  std::map<NodeId, double> consumed{{1, 90.0}, {2, 0.0}, {3, 0.0}, {4, 0.0}};
  const auto changed =
      election->Rotate([&](NodeId n) { return consumed[n]; });
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], 0u);
  EXPECT_EQ(election->LeaderOf(0), 2u);
  EXPECT_EQ(election->LeaderOf(1), 3u);  // untouched
}

}  // namespace
}  // namespace sensord
