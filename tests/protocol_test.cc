#include "core/protocol.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(ProtocolTest, KindValuesAreStable) {
  // The wire protocol is part of the public contract; renumbering would
  // break mixed-version deployments.
  EXPECT_EQ(kMsgSampleValue, 1);
  EXPECT_EQ(kMsgOutlierReport, 2);
  EXPECT_EQ(kMsgGlobalModelUpdate, 3);
  EXPECT_EQ(kMsgRawReading, 4);
  EXPECT_EQ(kMsgQueryRequest, 5);
  EXPECT_EQ(kMsgQueryResponse, 6);
}

TEST(ProtocolTest, KindsBelowApplicationRange) {
  for (MessageKind k : {kMsgSampleValue, kMsgOutlierReport,
                        kMsgGlobalModelUpdate, kMsgRawReading,
                        kMsgQueryRequest, kMsgQueryResponse}) {
    EXPECT_LT(k, 100) << "reserved range per net/message.h";
  }
}

TEST(ProtocolTest, GlobalUpdateSizeAccounting) {
  GlobalModelUpdatePayload payload;
  payload.stddevs = {0.1, 0.2};
  payload.updates.push_back({0, {0.5, 0.5}});
  payload.updates.push_back({3, {0.1, 0.9}});
  // 2 updates x (slot + 2 coords) + 2 sigmas + version tag = 9 numbers.
  EXPECT_EQ(payload.SizeNumbers(2), 9u);
}

TEST(ProtocolTest, GlobalUpdateEmptyIsJustSigmasAndVersion) {
  GlobalModelUpdatePayload payload;
  payload.stddevs = {0.1};
  EXPECT_EQ(payload.SizeNumbers(1), 2u);
}

TEST(ProtocolTest, OutlierReportCarriesProvenance) {
  OutlierReportPayload report;
  report.value = {0.9};
  report.origin_level = 2;
  report.source_leaf = 7;
  report.source_seq = 1234;
  // Round-trip through the std::any a Message carries.
  Message msg;
  msg.payload = report;
  const auto& out = std::any_cast<const OutlierReportPayload&>(msg.payload);
  EXPECT_EQ(out.source_leaf, 7u);
  EXPECT_EQ(out.source_seq, 1234u);
  EXPECT_EQ(out.origin_level, 2);
}

}  // namespace
}  // namespace sensord
