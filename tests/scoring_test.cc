#include "eval/scoring.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(PrecisionRecallTest, EmptyIsVacuouslyPerfect) {
  PrecisionRecall pr;
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
  EXPECT_EQ(pr.total(), 0u);
}

TEST(PrecisionRecallTest, CountsEachOutcome) {
  PrecisionRecall pr;
  pr.Record(true, true);    // TP
  pr.Record(false, true);   // FP
  pr.Record(true, false);   // FN
  pr.Record(false, false);  // TN
  EXPECT_EQ(pr.true_positives(), 1u);
  EXPECT_EQ(pr.false_positives(), 1u);
  EXPECT_EQ(pr.false_negatives(), 1u);
  EXPECT_EQ(pr.true_negatives(), 1u);
  EXPECT_DOUBLE_EQ(pr.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.5);
}

TEST(PrecisionRecallTest, PerfectDetector) {
  PrecisionRecall pr;
  for (int i = 0; i < 10; ++i) pr.Record(true, true);
  for (int i = 0; i < 90; ++i) pr.Record(false, false);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(pr.F1(), 1.0);
}

TEST(PrecisionRecallTest, OverEagerDetectorLosesPrecision) {
  PrecisionRecall pr;
  for (int i = 0; i < 5; ++i) pr.Record(true, true);
  for (int i = 0; i < 15; ++i) pr.Record(false, true);
  EXPECT_DOUBLE_EQ(pr.Precision(), 0.25);
  EXPECT_DOUBLE_EQ(pr.Recall(), 1.0);
}

TEST(PrecisionRecallTest, BlindDetectorLosesRecall) {
  PrecisionRecall pr;
  for (int i = 0; i < 4; ++i) pr.Record(true, false);
  pr.Record(true, true);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.2);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
}

TEST(PrecisionRecallTest, F1HarmonicMean) {
  PrecisionRecall pr;
  pr.Record(true, true);
  pr.Record(false, true);  // P = 0.5
  // R = 1.0 -> F1 = 2*0.5*1/(1.5) = 2/3.
  EXPECT_NEAR(pr.F1(), 2.0 / 3.0, 1e-12);
}

TEST(PrecisionRecallTest, MergeAccumulates) {
  PrecisionRecall a, b;
  a.Record(true, true);
  b.Record(true, false);
  b.Record(false, true);
  a.Merge(b);
  EXPECT_EQ(a.true_positives(), 1u);
  EXPECT_EQ(a.false_negatives(), 1u);
  EXPECT_EQ(a.false_positives(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(PrecisionRecallTest, ToStringFormat) {
  PrecisionRecall pr;
  pr.Record(true, true);
  const std::string s = pr.ToString();
  EXPECT_NE(s.find("P=100.0%"), std::string::npos) << s;
  EXPECT_NE(s.find("tp=1"), std::string::npos) << s;
}

}  // namespace
}  // namespace sensord
