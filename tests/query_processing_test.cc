#include "core/query_processing.h"

#include <optional>

#include <gtest/gtest.h>

#include "core/protocol.h"
#include "net/hierarchy.h"
#include "util/rng.h"

namespace sensord {
namespace {

DensityModelConfig LeafConfig() {
  DensityModelConfig cfg;
  cfg.window_size = 1000;
  cfg.sample_size = 150;
  return cfg;
}

struct QueryFixture {
  explicit QueryFixture(size_t leaves, uint64_t seed = 1)
      : layout(*BuildGridHierarchy(leaves, 4)), rng(seed) {
    ids = sim.Instantiate(
        layout, [&](int, const HierarchyNodeSpec& spec)
                    -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<QuerySensorNode>(LeafConfig(),
                                                     rng.Split());
          }
          return std::make_unique<QueryAggregatorNode>();
        });
    num_leaves = leaves;
  }

  // Streams `rounds` readings into every leaf from `source(leaf)`.
  template <typename Fn>
  void Feed(size_t rounds, Fn source) {
    for (size_t r = 0; r < rounds; ++r) {
      for (size_t s = 0; s < num_leaves; ++s) {
        sim.DeliverReading(ids[s], source(s));
      }
    }
    sim.RunUntil(sim.Now() + 1.0);
  }

  QueryAggregatorNode& Root() {
    return static_cast<QueryAggregatorNode&>(sim.node(ids.back()));
  }

  // Runs a query to completion and returns the answer.
  QueryAnswer Ask(const AggregateQuery& query) {
    std::optional<QueryAnswer> out;
    Root().InjectQuery(query, [&](const QueryAnswer& a) { out = a; });
    sim.RunUntil(sim.Now() + 5.0);
    EXPECT_TRUE(out.has_value());
    return out.value_or(QueryAnswer{});
  }

  HierarchyLayout layout;
  Simulator sim;
  Rng rng;
  std::vector<NodeId> ids;
  size_t num_leaves = 0;
};

TEST(AnswerFromModelTest, UnwarmedModelAnswersZero) {
  DensityModel model(LeafConfig(), Rng(2));
  AggregateQuery q;
  q.lo = {0.0};
  q.hi = {1.0};
  const auto part = AnswerFromModel(model, q);
  EXPECT_DOUBLE_EQ(part.count, 0.0);
  EXPECT_EQ(part.leaves, 1u);
}

TEST(AnswerFromModelTest, CountMatchesModel) {
  DensityModel model(LeafConfig(), Rng(3));
  Rng values(4);
  for (int i = 0; i < 2000; ++i) {
    model.Observe({values.Gaussian(0.4, 0.02)});
  }
  AggregateQuery q;
  q.lo = {0.3};
  q.hi = {0.5};
  const auto part = AnswerFromModel(model, q);
  EXPECT_NEAR(part.count, 1000.0, 50.0);  // nearly all of the window
  EXPECT_DOUBLE_EQ(part.window_total, 1000.0);
}

TEST(FinalizeAnswerTest, Kinds) {
  AggregateQuery q;
  QueryPartialPayload acc;
  acc.count = 50.0;
  acc.window_total = 200.0;
  acc.weighted_sum = 50.0 * 0.42;
  acc.leaves = 4;

  q.kind = AggregateQuery::Kind::kCount;
  EXPECT_DOUBLE_EQ(FinalizeAnswer(q, acc).value, 50.0);
  q.kind = AggregateQuery::Kind::kFraction;
  EXPECT_DOUBLE_EQ(FinalizeAnswer(q, acc).value, 0.25);
  q.kind = AggregateQuery::Kind::kAverage;
  EXPECT_NEAR(FinalizeAnswer(q, acc).value, 0.42, 1e-12);
  EXPECT_EQ(FinalizeAnswer(q, acc).leaves_reporting, 4u);
}

TEST(QueryNetworkTest, CountAggregatesAcrossLeaves) {
  QueryFixture fx(8);
  Rng values(5);
  fx.Feed(1500, [&](size_t) {
    return Point{Clamp(values.Gaussian(0.4, 0.02), 0.0, 1.0)};
  });

  AggregateQuery q;
  q.id = 1;
  q.kind = AggregateQuery::Kind::kCount;
  q.lo = {0.3};
  q.hi = {0.5};
  const QueryAnswer a = fx.Ask(q);
  EXPECT_EQ(a.leaves_reporting, 8u);
  // 8 leaves x window 1000, essentially all mass inside the box.
  EXPECT_NEAR(a.value, 8000.0, 400.0);
}

TEST(QueryNetworkTest, FractionQuery) {
  QueryFixture fx(4);
  Rng values(6);
  // Half the leaves read near 0.2, half near 0.8.
  fx.Feed(1500, [&](size_t s) {
    const double mean = s < 2 ? 0.2 : 0.8;
    return Point{Clamp(values.Gaussian(mean, 0.02), 0.0, 1.0)};
  });
  AggregateQuery q;
  q.id = 2;
  q.kind = AggregateQuery::Kind::kFraction;
  q.lo = {0.0};
  q.hi = {0.5};
  const QueryAnswer a = fx.Ask(q);
  EXPECT_NEAR(a.value, 0.5, 0.05);
}

TEST(QueryNetworkTest, AverageQuery) {
  QueryFixture fx(4);
  Rng values(7);
  fx.Feed(1500, [&](size_t) {
    return Point{Clamp(values.Gaussian(0.6, 0.03), 0.0, 1.0)};
  });
  AggregateQuery q;
  q.id = 3;
  q.kind = AggregateQuery::Kind::kAverage;
  q.lo = {0.0};
  q.hi = {1.0};
  q.average_dim = 0;
  const QueryAnswer a = fx.Ask(q);
  EXPECT_NEAR(a.value, 0.6, 0.02);
}

TEST(QueryNetworkTest, RegionScopedQueryAtSubtreeLeader) {
  // Injecting at a level-2 leader answers for that cell only.
  QueryFixture fx(16);
  Rng values(8);
  fx.Feed(1500, [&](size_t s) {
    // Leaves 0-3 (the first cell) read high; everyone else low.
    const double mean = s < 4 ? 0.8 : 0.2;
    return Point{Clamp(values.Gaussian(mean, 0.02), 0.0, 1.0)};
  });

  // slots: 16 leaves then 4 level-2 leaders; leader of leaves 0-3 is the
  // first level-2 slot.
  const int leader_slot = fx.layout.slots_by_level[1][0];
  auto& leader = static_cast<QueryAggregatorNode&>(
      fx.sim.node(fx.ids[static_cast<size_t>(leader_slot)]));

  std::optional<QueryAnswer> out;
  AggregateQuery q;
  q.id = 4;
  q.kind = AggregateQuery::Kind::kAverage;
  q.lo = {0.0};
  q.hi = {1.0};
  leader.InjectQuery(q, [&](const QueryAnswer& a) { out = a; });
  fx.sim.RunUntil(fx.sim.Now() + 5.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->leaves_reporting, 4u);
  EXPECT_NEAR(out->value, 0.8, 0.03);  // only the high cell answered
}

TEST(QueryNetworkTest, DeadlineResolvesUnderPacketLoss) {
  // With a very lossy radio some partials vanish; the deadline must still
  // produce an answer with reduced support.
  auto layout = BuildGridHierarchy(8, 4);
  SimulatorOptions opts;
  opts.drop_probability = 0.4;
  Simulator sim(opts);
  Rng rng(9);
  const auto ids = sim.Instantiate(
      *layout, [&](int, const HierarchyNodeSpec& spec)
                   -> std::unique_ptr<Node> {
        if (spec.level == 1) {
          return std::make_unique<QuerySensorNode>(LeafConfig(),
                                                   rng.Split());
        }
        return std::make_unique<QueryAggregatorNode>(/*deadline=*/0.5);
      });
  Rng values(10);
  for (int r = 0; r < 1200; ++r) {
    for (size_t s = 0; s < 8; ++s) {
      sim.DeliverReading(ids[s], {values.Gaussian(0.5, 0.05)});
    }
  }
  auto& root = static_cast<QueryAggregatorNode&>(sim.node(ids.back()));
  std::optional<QueryAnswer> out;
  AggregateQuery q;
  q.id = 5;
  q.kind = AggregateQuery::Kind::kCount;
  q.lo = {0.0};
  q.hi = {1.0};
  root.InjectQuery(q, [&](const QueryAnswer& a) { out = a; });
  sim.RunUntil(sim.Now() + 5.0);
  ASSERT_TRUE(out.has_value());
  EXPECT_LE(out->leaves_reporting, 8u);
}

TEST(QueryNetworkTest, ChildlessAggregatorResolvesImmediately) {
  Simulator sim;
  const NodeId id = sim.AddNode(std::make_unique<QueryAggregatorNode>());
  auto& agg = static_cast<QueryAggregatorNode&>(sim.node(id));
  std::optional<QueryAnswer> out;
  AggregateQuery q;
  q.id = 99;
  q.lo = {0.0};
  q.hi = {1.0};
  agg.InjectQuery(q, [&](const QueryAnswer& a) { out = a; });
  ASSERT_TRUE(out.has_value());  // resolved synchronously: no subtree
  EXPECT_EQ(out->leaves_reporting, 0u);
  EXPECT_DOUBLE_EQ(out->value, 0.0);
}

TEST(QueryNetworkTest, ConcurrentQueriesKeepApart) {
  QueryFixture fx(4);
  Rng values(11);
  fx.Feed(1500, [&](size_t) {
    return Point{Clamp(values.Gaussian(0.3, 0.02), 0.0, 1.0)};
  });
  std::optional<QueryAnswer> a1, a2;
  AggregateQuery q1, q2;
  q1.id = 10;
  q1.kind = AggregateQuery::Kind::kCount;
  q1.lo = {0.2};
  q1.hi = {0.4};
  q2.id = 11;
  q2.kind = AggregateQuery::Kind::kCount;
  q2.lo = {0.6};
  q2.hi = {0.9};
  fx.Root().InjectQuery(q1, [&](const QueryAnswer& a) { a1 = a; });
  fx.Root().InjectQuery(q2, [&](const QueryAnswer& a) { a2 = a; });
  fx.sim.RunUntil(fx.sim.Now() + 5.0);
  ASSERT_TRUE(a1.has_value());
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a1->id, 10u);
  EXPECT_EQ(a2->id, 11u);
  EXPECT_GT(a1->value, 3000.0);  // essentially the whole pooled window
  EXPECT_NEAR(a2->value, 0.0, 50.0);  // empty region
}

}  // namespace
}  // namespace sensord
