#include "eval/box_counter.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace sensord {
namespace {

TEST(BoxCounterFactoryTest, PicksImplementationByDimension) {
  EXPECT_NE(dynamic_cast<BoxCounter1d*>(MakeBoxCounter(1).get()), nullptr);
  EXPECT_NE(dynamic_cast<BoxCounter2d*>(MakeBoxCounter(2).get()), nullptr);
  EXPECT_NE(dynamic_cast<ScanBoxCounter*>(MakeBoxCounter(3).get()), nullptr);
}

TEST(BoxCounter1dTest, AddRemoveCount) {
  BoxCounter1d c;
  c.Add({0.5});
  c.Add({0.5});
  c.Add({0.7});
  EXPECT_DOUBLE_EQ(c.Total(), 3.0);
  EXPECT_DOUBLE_EQ(c.CountBox({0.4}, {0.6}), 2.0);
  c.Remove({0.5});
  EXPECT_DOUBLE_EQ(c.CountBox({0.4}, {0.6}), 1.0);
  EXPECT_DOUBLE_EQ(c.Total(), 2.0);
}

TEST(BoxCounter1dTest, ClosedBoxBoundaries) {
  BoxCounter1d c;
  c.Add({0.3});
  EXPECT_DOUBLE_EQ(c.CountBox({0.3}, {0.3}), 1.0);
  EXPECT_DOUBLE_EQ(c.CountBox({0.3}, {0.4}), 1.0);
  EXPECT_DOUBLE_EQ(c.CountBox({0.2}, {0.3}), 1.0);
  EXPECT_DOUBLE_EQ(c.CountBox({0.30001}, {0.4}), 0.0);
}

TEST(BoxCounter1dTest, QueryBeyondDomainClamped) {
  BoxCounter1d c;
  c.Add({0.0});
  c.Add({1.0});
  EXPECT_DOUBLE_EQ(c.CountBox({-2.0}, {2.0}), 2.0);
  EXPECT_DOUBLE_EQ(c.CountBox({1.5}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(c.CountBox({0.5}, {0.2}), 0.0);  // inverted box
}

TEST(BoxCounter2dTest, AddRemoveCount) {
  BoxCounter2d c;
  c.Add({0.5, 0.5});
  c.Add({0.51, 0.52});
  c.Add({0.9, 0.9});
  EXPECT_DOUBLE_EQ(c.CountBox({0.45, 0.45}, {0.55, 0.55}), 2.0);
  c.Remove({0.51, 0.52});
  EXPECT_DOUBLE_EQ(c.CountBox({0.45, 0.45}, {0.55, 0.55}), 1.0);
}

TEST(BoxCounter2dTest, CountBall) {
  BoxCounter2d c;
  c.Add({0.5, 0.5});
  c.Add({0.56, 0.5});  // L-inf distance 0.06
  EXPECT_DOUBLE_EQ(c.CountBall({0.5, 0.5}, 0.06), 2.0);
  EXPECT_DOUBLE_EQ(c.CountBall({0.5, 0.5}, 0.05), 1.0);
}

// Property: the fast counters agree exactly with the linear-scan reference
// under random adds, removals and queries.
class BoxCounterEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BoxCounterEquivalenceTest, MatchesScanReference) {
  const size_t d = GetParam();
  auto fast = MakeBoxCounter(d);
  ScanBoxCounter reference(d);
  Rng rng(1234 + d);

  std::vector<Point> live;
  for (int step = 0; step < 4000; ++step) {
    const double action = rng.UniformDouble();
    if (action < 0.6 || live.empty()) {
      Point p(d);
      for (double& x : p) {
        // Mix of clustered and spread data, including exact duplicates.
        x = rng.Bernoulli(0.3) ? 0.25
                               : rng.UniformDouble();
      }
      fast->Add(p);
      reference.Add(p);
      live.push_back(p);
    } else if (action < 0.8) {
      const size_t idx = rng.UniformUint64(live.size());
      fast->Remove(live[idx]);
      reference.Remove(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    } else {
      Point lo(d), hi(d);
      for (size_t i = 0; i < d; ++i) {
        double a = rng.UniformDouble(-0.1, 1.1);
        double b = rng.UniformDouble(-0.1, 1.1);
        if (a > b) std::swap(a, b);
        lo[i] = a;
        hi[i] = b;
      }
      ASSERT_DOUBLE_EQ(fast->CountBox(lo, hi), reference.CountBox(lo, hi))
          << "step " << step;
    }
    ASSERT_DOUBLE_EQ(fast->Total(), reference.Total());
  }
}

INSTANTIATE_TEST_SUITE_P(Dimensions, BoxCounterEquivalenceTest,
                         ::testing::Values(1, 2));

TEST(BoxCounter2dTest, InteriorCellFastPathLargeBox) {
  BoxCounter2d c(32);  // coarse grid to force interior-cell summation
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) {
    pts.push_back({rng.UniformDouble(), rng.UniformDouble()});
    c.Add(pts.back());
  }
  const Point lo{0.2, 0.3}, hi{0.8, 0.9};
  size_t expected = 0;
  for (const Point& p : pts) {
    expected += (p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] &&
                 p[1] <= hi[1]);
  }
  EXPECT_DOUBLE_EQ(c.CountBox(lo, hi), static_cast<double>(expected));
}

TEST(ScanBoxCounterTest, HighDimensional) {
  ScanBoxCounter c(4);
  c.Add({0.1, 0.2, 0.3, 0.4});
  c.Add({0.5, 0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(
      c.CountBox({0.0, 0.0, 0.0, 0.0}, {0.3, 0.3, 0.4, 0.5}), 1.0);
}

}  // namespace
}  // namespace sensord
