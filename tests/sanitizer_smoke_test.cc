// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Sanitizer smoke test: drives the windowed-stream machinery hard across
// window boundaries so an ASan/UBSan build (scripts/check.sh) has dense
// allocation churn, container reuse, and index arithmetic to chew on.
// The assertions are deliberately light — the point is the traffic, plus
// the invariants the classes DCHECK internally along the way.

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/density_model.h"
#include "stream/chain_sample.h"
#include "stream/sliding_window.h"
#include "util/rng.h"

namespace sensord {
namespace {

TEST(SanitizerSmokeTest, ChainSampleChurnAcrossWindowBoundaries) {
  // Small windows force constant expiry/replacement churn: every chain
  // restarts, promotes, and discards entries many times per window.
  for (const size_t window : {3u, 7u, 64u}) {
    ChainSample sample(/*sample_size=*/16, window, Rng(0xC0FFEE ^ window));
    Rng data_rng(42);
    for (size_t i = 0; i < 20 * window; ++i) {
      (void)sample.Add({data_rng.UniformDouble(), data_rng.UniformDouble()});
      ASSERT_GE(sample.StoredElements(), sample.sample_size());
      for (size_t c = 0; c < sample.sample_size(); ++c) {
        const PointView active = sample.ActiveElement(c);
        ASSERT_EQ(active.size(), 2u);
      }
    }
    const std::vector<Point> snapshot = sample.Snapshot();
    EXPECT_EQ(snapshot.size(), sample.sample_size());
  }
}

TEST(SanitizerSmokeTest, ChainSamplePrewarmedSteadyStateChurn) {
  ChainSample sample(/*sample_size=*/8, /*window_size=*/32, Rng(7));
  sample.PrewarmToSteadyState();
  Rng data_rng(9);
  for (size_t i = 0; i < 2000; ++i) {
    (void)sample.Add({data_rng.UniformDouble()});
  }
  EXPECT_EQ(sample.Snapshot().size(), 8u);
}

TEST(SanitizerSmokeTest, SlidingWindowWrapsManyTimes) {
  SlidingWindow window(/*capacity=*/17, /*dimensions=*/3);
  Rng rng(1234);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(window
                    .Add({rng.UniformDouble(), rng.UniformDouble(),
                          rng.UniformDouble()})
                    .ok());
    // Touch every retained element each step: any ring-index slip becomes
    // an out-of-bounds read under ASan.
    for (size_t j = 0; j < window.size(); ++j) {
      ASSERT_EQ(window.At(j).size(), 3u);
      ASSERT_EQ(window.ArrivalTime(j), i + 1 - window.size() + j);
    }
    ASSERT_EQ(window.Coordinate(2).size(), window.size());
  }
  EXPECT_TRUE(window.full());
  window.Clear();
  EXPECT_EQ(window.size(), 0u);
  ASSERT_TRUE(window.Add({0.1, 0.2, 0.3}).ok());
  EXPECT_EQ(window.At(0).size(), 3u);
}

TEST(SanitizerSmokeTest, DensityModelObserveAndQueryChurn) {
  DensityModelConfig cfg;
  cfg.dimensions = 2;
  cfg.window_size = 50;
  cfg.sample_size = 10;
  cfg.max_estimator_age = 16;
  DensityModel model(cfg, Rng(0xFEED));
  Rng rng(5);
  for (size_t i = 0; i < 500; ++i) {
    (void)model.Observe({rng.UniformDouble(), rng.UniformDouble()});
    if (i % 7 == 0 && model.Ready()) {
      const KernelDensityEstimator& kde = model.Estimator();
      EXPECT_GE(kde.BoxProbability({0.0, 0.0}, {1.0, 1.0}), 0.0);
    }
  }
}

}  // namespace
}  // namespace sensord
