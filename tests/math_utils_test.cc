#include "util/math_utils.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(ClampTest, Basics) {
  EXPECT_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_EQ(Clamp(-0.5, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(1.5, 0.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(0.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(Clamp(1.0, 0.0, 1.0), 1.0);
}

TEST(ChebyshevDistanceTest, OneDimension) {
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0.2}, {0.7}), 0.5);
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0.7}, {0.2}), 0.5);
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0.3}, {0.3}), 0.0);
}

TEST(ChebyshevDistanceTest, TakesMaxCoordinate) {
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0.0, 0.0}, {0.3, 0.1}), 0.3);
  EXPECT_DOUBLE_EQ(ChebyshevDistance({0.0, 0.0}, {0.1, 0.3}), 0.3);
}

TEST(EuclideanDistanceTest, PythagoreanTriple) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0, 0.0}, {0.3, 0.4}), 0.5);
}

TEST(EuclideanDistanceTest, DominatesChebyshev) {
  const Point a{0.1, 0.9}, b{0.4, 0.2};
  EXPECT_GE(EuclideanDistance(a, b), ChebyshevDistance(a, b));
}

TEST(InUnitCubeTest, Boundaries) {
  EXPECT_TRUE(InUnitCube({0.0, 1.0}));
  EXPECT_TRUE(InUnitCube({0.5}));
  EXPECT_FALSE(InUnitCube({-0.001}));
  EXPECT_FALSE(InUnitCube({0.5, 1.001}));
}

TEST(ApproxEqualTest, Tolerance) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(ApproxEqual(1.0, 1.0001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.0001, 1e-3));
}

TEST(IntervalOverlapTest, Cases) {
  EXPECT_DOUBLE_EQ(IntervalOverlap(0.0, 1.0, 0.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0.0, 1.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0.0, 1.0, 0.2, 0.8), 0.6);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0.2, 0.8, 0.0, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(IntervalOverlap(0.0, 1.0, 1.0, 2.0), 0.0);
}

TEST(MedianTest, OddCount) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
}

TEST(MedianTest, EvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0}), 1.5);
}

TEST(MedianTest, Duplicates) {
  EXPECT_DOUBLE_EQ(Median({2.0, 2.0, 2.0, 9.0}), 2.0);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> v{0.0, 1.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25), 0.25);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.75), 0.75);
}

TEST(Log2CeilTest, PowersAndBetween) {
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(2), 1);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
  EXPECT_EQ(Log2Ceil(1024), 10);
  EXPECT_EQ(Log2Ceil(1025), 11);
}

}  // namespace
}  // namespace sensord
