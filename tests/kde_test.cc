#include "stats/kde.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/analytic.h"
#include "obs/metrics.h"
#include "stats/divergence.h"
#include "util/flat_points.h"
#include "util/rng.h"

namespace sensord {
namespace {

std::vector<Point> Sample1d(Rng* rng, size_t n, double mean, double sd) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Clamp(rng->Gaussian(mean, sd), 0.0, 1.0)});
  }
  return out;
}

TEST(KdeTest, CreateRejectsEmptySample) {
  auto kde = KernelDensityEstimator::Create(std::vector<Point>{}, {0.1});
  EXPECT_FALSE(kde.ok());
  EXPECT_EQ(kde.status().code(), Status::Code::kInvalidArgument);
  EXPECT_FALSE(KernelDensityEstimator::Create(FlatPoints(1), {0.1}).ok());
}

TEST(KdeTest, CreateRejectsDimensionMismatch) {
  auto kde = KernelDensityEstimator::Create({{0.5, 0.5}}, {0.1});
  EXPECT_FALSE(kde.ok());
}

TEST(KdeTest, CreateRejectsNonPositiveBandwidth) {
  EXPECT_FALSE(KernelDensityEstimator::Create({{0.5}}, {0.0}).ok());
  EXPECT_FALSE(KernelDensityEstimator::Create({{0.5}}, {-0.1}).ok());
}

TEST(KdeTest, TotalMassIsOneWhenAwayFromBoundary) {
  Rng rng(1);
  auto kde = KernelDensityEstimator::Create(Sample1d(&rng, 200, 0.5, 0.05),
                                            {0.02});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({-1.0}, {2.0}), 1.0, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.0}, {1.0}), 1.0, 1e-9);
}

TEST(KdeTest, SingleKernelBoxProbability) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({0.4}, {0.6}), 1.0, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.5}, {0.6}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(kde->BoxProbability({0.7}, {0.9}), 0.0);
}

TEST(KdeTest, PdfMatchesKernelShape) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Pdf({0.5}), 7.5, 1e-12);  // (3/4)/0.1
  EXPECT_DOUBLE_EQ(kde->Pdf({0.65}), 0.0);
}

TEST(KdeTest, OneDimFastPathMatchesDirectSum) {
  Rng rng(2);
  const auto sample = Sample1d(&rng, 300, 0.4, 0.1);
  const double bw = 0.03;
  auto kde = KernelDensityEstimator::Create(sample, {bw});
  ASSERT_TRUE(kde.ok());

  EpanechnikovKernel kernel(bw);
  Rng queries(3);
  for (int i = 0; i < 200; ++i) {
    double a = queries.UniformDouble();
    double b = queries.UniformDouble();
    if (a > b) std::swap(a, b);
    double direct = 0.0;
    for (const Point& t : sample) direct += kernel.MassInInterval(t[0], a, b);
    direct /= static_cast<double>(sample.size());
    EXPECT_NEAR(kde->BoxProbability({a}, {b}), direct, 1e-12);
  }
}

TEST(KdeTest, TwoDimBoxProbabilityIsProductForSingleKernel) {
  auto kde = KernelDensityEstimator::Create({{0.5, 0.5}}, {0.1, 0.2});
  ASSERT_TRUE(kde.ok());
  EpanechnikovKernel kx(0.1), ky(0.2);
  const double expected =
      kx.MassInInterval(0.5, 0.45, 0.6) * ky.MassInInterval(0.5, 0.4, 0.55);
  EXPECT_NEAR(kde->BoxProbability({0.45, 0.4}, {0.6, 0.55}), expected,
              1e-12);
}

TEST(KdeTest, ConvergesToTrueDistribution) {
  // JS divergence to the generating Gaussian must shrink as |R| grows.
  const AnalyticDistribution truth =
      AnalyticDistribution::Gaussian1d(0.4, 0.05);
  Rng rng(4);
  double prev_js = 1.0;
  for (size_t n : {50u, 500u, 5000u}) {
    auto sample = Sample1d(&rng, n, 0.4, 0.05);
    auto kde =
        KernelDensityEstimator::CreateWithScottBandwidths(sample, {0.05});
    ASSERT_TRUE(kde.ok());
    auto js = JsDivergenceOnGrid(*kde, truth, 128);
    ASSERT_TRUE(js.ok());
    EXPECT_LT(*js, prev_js + 0.005) << "n=" << n;
    prev_js = *js;
  }
  EXPECT_LT(prev_js, 0.01);  // large-sample estimate is close to truth
}

TEST(KdeTest, SampleSortedFor1d) {
  auto kde = KernelDensityEstimator::Create({{0.9}, {0.1}, {0.5}}, {0.05});
  ASSERT_TRUE(kde.ok());
  const FlatPoints& s = kde->sample();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.At(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(s.At(2, 0), 0.9);
  EXPECT_EQ(kde->primary_axis(), 0u);
}

TEST(KdeTest, PrimaryAxisMaximizesSpreadBandwidthRatio) {
  // Axis 1 spreads 0.8 against bandwidth 0.1 (ratio 8); axis 0 spreads 0.2
  // against 0.1 (ratio 2) — the canonical order must sort by axis 1.
  auto kde = KernelDensityEstimator::Create(
      {{0.4, 0.9}, {0.5, 0.1}, {0.3, 0.5}}, {0.1, 0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->primary_axis(), 1u);
  const FlatPoints& s = kde->sample();
  EXPECT_DOUBLE_EQ(s.At(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.At(2, 1), 0.9);
  // Rows travel whole: the axis-0 coordinates follow their axis-1 partner.
  EXPECT_DOUBLE_EQ(s.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(s.At(1, 0), 0.3);
  EXPECT_DOUBLE_EQ(s.At(2, 0), 0.4);
}

TEST(KdeTest, PrimaryAxisTieBreaksToSmallestIndex) {
  // Identical spread/bandwidth on both axes: axis 0 must win.
  auto kde = KernelDensityEstimator::Create(
      {{0.2, 0.2}, {0.8, 0.8}}, {0.1, 0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->primary_axis(), 0u);
}

TEST(KdeTest, CanonicalOrderBreaksTiesLexicographically) {
  // Equal primary-axis coordinates: the secondary coordinates decide.
  auto kde = KernelDensityEstimator::Create(
      {{0.5, 0.9, 0.5}, {0.5, 0.1, 0.5}, {0.1, 0.5, 0.5}}, {0.1, 0.3, 0.9});
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->primary_axis(), 0u);  // spread 0.4 / 0.1 beats the others
  const FlatPoints& s = kde->sample();
  EXPECT_DOUBLE_EQ(s.At(0, 0), 0.1);
  EXPECT_DOUBLE_EQ(s.At(1, 1), 0.1);  // {0.5, 0.1, .} before {0.5, 0.9, .}
  EXPECT_DOUBLE_EQ(s.At(2, 1), 0.9);
}

TEST(KdeTest, CandidateRowsCoverExactlyTheSupportWindow) {
  auto kde = KernelDensityEstimator::Create(
      {{0.1, 0.5}, {0.3, 0.5}, {0.5, 0.5}, {0.7, 0.5}, {0.9, 0.5}},
      {0.05, 0.5});
  ASSERT_TRUE(kde.ok());
  EXPECT_EQ(kde->primary_axis(), 0u);
  // [0.28, 0.52] ± 0.05 → rows with axis-0 coordinate in [0.23, 0.57].
  const auto [begin, end] = kde->CandidateRows(0.28, 0.52);
  EXPECT_EQ(begin, 1u);
  EXPECT_EQ(end, 3u);
  // A window left of every row is empty, at zero width.
  const auto [eb, ee] = kde->CandidateRows(0.0, 0.0);
  EXPECT_EQ(eb, ee);
}

TEST(KdeTest, NeighborCountScalesWithWindow) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  const double mass = kde->BallProbability({0.5}, 0.05);
  EXPECT_NEAR(kde->NeighborCount({0.5}, 0.05, 1000.0), mass * 1000.0, 1e-9);
}

TEST(KdeTest, ScottFactoryUsesPerDimensionStddev) {
  std::vector<Point> sample{{0.3, 0.3}, {0.5, 0.5}, {0.7, 0.7}};
  auto kde = KernelDensityEstimator::CreateWithScottBandwidths(
      sample, {0.05, 0.2});
  ASSERT_TRUE(kde.ok());
  const auto b = kde->bandwidths();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_LT(b[0], b[1]);
}

TEST(KdeTest, MemoryBytesAccounting) {
  auto kde = KernelDensityEstimator::Create({{0.1, 0.2}, {0.3, 0.4}},
                                            {0.1, 0.1});
  ASSERT_TRUE(kde.ok());
  // 2 points x 2 dims + 2 bandwidths = 6 numbers.
  EXPECT_EQ(kde->MemoryBytes(2), 12u);
}

TEST(KdeTest, PdfIntegratesToBoxProbability) {
  Rng rng(5);
  auto kde = KernelDensityEstimator::Create(Sample1d(&rng, 100, 0.5, 0.08),
                                            {0.04});
  ASSERT_TRUE(kde.ok());
  const double a = 0.42, b = 0.58;
  const int n = 20000;
  double riemann = 0.0;
  for (int i = 0; i < n; ++i) {
    riemann += kde->Pdf({a + (b - a) * (i + 0.5) / n});
  }
  riemann *= (b - a) / n;
  EXPECT_NEAR(riemann, kde->BoxProbability({a}, {b}), 1e-4);
}

TEST(KdeTest, DuplicatePointsAreWeighted) {
  auto kde = KernelDensityEstimator::Create({{0.3}, {0.3}, {0.3}, {0.9}},
                                            {0.05});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({0.25}, {0.35}), 0.75, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.85}, {0.95}), 0.25, 1e-12);
}

// Regression for the batch union-box seeding: the old seed of
// (lo=1, hi=0) assumed the [0,1]^d domain, so a batch of boxes entirely
// outside it widened the union to touch the domain and swept real kernel
// terms for an all-zero answer. With the ±infinity seeding the union is the
// boxes' true hull and the candidate range is empty.
TEST(KdeTest, BatchDoesNotAssumeUnitDomain) {
  std::vector<Point> sample;
  for (int i = 0; i < 50; ++i) {
    sample.push_back({0.04 + 0.0005 * i, 0.5});
  }
  auto kde = KernelDensityEstimator::Create(sample, {0.1, 0.1});
  ASSERT_TRUE(kde.ok());

  std::vector<Point> lo{{-0.6, 0.4}, {-0.58, 0.45}};
  std::vector<Point> hi{{-0.5, 0.5}, {-0.48, 0.55}};
  obs::Counter* swept = obs::MetricsRegistry::Global().GetCounter(
      "stats.kde.batch_swept_terms");
  const uint64_t swept_before = swept->value();
  std::vector<double> masses;
  kde->BoxProbabilityBatch(lo, hi, &masses);
  EXPECT_EQ(swept->value() - swept_before, 0u);
  ASSERT_EQ(masses.size(), 2u);
  for (size_t q = 0; q < masses.size(); ++q) {
    EXPECT_DOUBLE_EQ(masses[q], 0.0);
    EXPECT_DOUBLE_EQ(masses[q], kde->BoxProbability(lo[q], hi[q]));
  }
}

// The batched path's contract: identical values and identical per-query
// metrics as the per-query loop, box by box.
TEST(KdeTest, BatchMatchesPerQueryValuesAndMetrics) {
  Rng rng(21);
  std::vector<Point> sample;
  for (int i = 0; i < 400; ++i) {
    sample.push_back({Clamp(rng.Gaussian(0.4, 0.1), 0.0, 1.0),
                      Clamp(rng.Gaussian(0.6, 0.2), 0.0, 1.0)});
  }
  auto kde = KernelDensityEstimator::Create(sample, {0.05, 0.08});
  ASSERT_TRUE(kde.ok());

  std::vector<Point> lo, hi;
  for (int b = 0; b < 12; ++b) {
    const double cx = 0.1 + 0.06 * b, cy = 0.9 - 0.05 * b;
    lo.push_back({cx - 0.02, cy - 0.02});
    hi.push_back({cx + 0.02, cy + 0.02});
  }
  lo.push_back({0.5, 0.5});  // one inverted box rides along
  hi.push_back({0.4, 0.6});

  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* queries = registry.GetCounter("stats.kde.box_queries");
  obs::Histogram* terms =
      registry.GetHistogram("stats.kde.terms_per_query",
                            obs::SizeBoundaries());

  const uint64_t q0 = queries->value();
  const uint64_t c0 = terms->Count();
  const double s0 = terms->Sum();
  std::vector<double> batched;
  kde->BoxProbabilityBatch(lo, hi, &batched);
  const uint64_t batch_queries = queries->value() - q0;
  const uint64_t batch_records = terms->Count() - c0;
  const double batch_terms = terms->Sum() - s0;

  const uint64_t q1 = queries->value();
  const uint64_t c1 = terms->Count();
  const double s1 = terms->Sum();
  ASSERT_EQ(batched.size(), lo.size());
  for (size_t q = 0; q < lo.size(); ++q) {
    EXPECT_DOUBLE_EQ(batched[q], kde->BoxProbability(lo[q], hi[q])) << q;
  }
  EXPECT_EQ(batch_queries, queries->value() - q1);
  EXPECT_EQ(batch_records, terms->Count() - c1);
  EXPECT_DOUBLE_EQ(batch_terms, terms->Sum() - s1);
}

}  // namespace
}  // namespace sensord
