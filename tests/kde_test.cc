#include "stats/kde.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/analytic.h"
#include "stats/divergence.h"
#include "util/rng.h"

namespace sensord {
namespace {

std::vector<Point> Sample1d(Rng* rng, size_t n, double mean, double sd) {
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back({Clamp(rng->Gaussian(mean, sd), 0.0, 1.0)});
  }
  return out;
}

TEST(KdeTest, CreateRejectsEmptySample) {
  auto kde = KernelDensityEstimator::Create({}, {0.1});
  EXPECT_FALSE(kde.ok());
  EXPECT_EQ(kde.status().code(), Status::Code::kInvalidArgument);
}

TEST(KdeTest, CreateRejectsDimensionMismatch) {
  auto kde = KernelDensityEstimator::Create({{0.5, 0.5}}, {0.1});
  EXPECT_FALSE(kde.ok());
}

TEST(KdeTest, CreateRejectsNonPositiveBandwidth) {
  EXPECT_FALSE(KernelDensityEstimator::Create({{0.5}}, {0.0}).ok());
  EXPECT_FALSE(KernelDensityEstimator::Create({{0.5}}, {-0.1}).ok());
}

TEST(KdeTest, TotalMassIsOneWhenAwayFromBoundary) {
  Rng rng(1);
  auto kde = KernelDensityEstimator::Create(Sample1d(&rng, 200, 0.5, 0.05),
                                            {0.02});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({-1.0}, {2.0}), 1.0, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.0}, {1.0}), 1.0, 1e-9);
}

TEST(KdeTest, SingleKernelBoxProbability) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({0.4}, {0.6}), 1.0, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.5}, {0.6}), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(kde->BoxProbability({0.7}, {0.9}), 0.0);
}

TEST(KdeTest, PdfMatchesKernelShape) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Pdf({0.5}), 7.5, 1e-12);  // (3/4)/0.1
  EXPECT_DOUBLE_EQ(kde->Pdf({0.65}), 0.0);
}

TEST(KdeTest, OneDimFastPathMatchesDirectSum) {
  Rng rng(2);
  const auto sample = Sample1d(&rng, 300, 0.4, 0.1);
  const double bw = 0.03;
  auto kde = KernelDensityEstimator::Create(sample, {bw});
  ASSERT_TRUE(kde.ok());

  EpanechnikovKernel kernel(bw);
  Rng queries(3);
  for (int i = 0; i < 200; ++i) {
    double a = queries.UniformDouble();
    double b = queries.UniformDouble();
    if (a > b) std::swap(a, b);
    double direct = 0.0;
    for (const Point& t : sample) direct += kernel.MassInInterval(t[0], a, b);
    direct /= static_cast<double>(sample.size());
    EXPECT_NEAR(kde->BoxProbability({a}, {b}), direct, 1e-12);
  }
}

TEST(KdeTest, TwoDimBoxProbabilityIsProductForSingleKernel) {
  auto kde = KernelDensityEstimator::Create({{0.5, 0.5}}, {0.1, 0.2});
  ASSERT_TRUE(kde.ok());
  EpanechnikovKernel kx(0.1), ky(0.2);
  const double expected =
      kx.MassInInterval(0.5, 0.45, 0.6) * ky.MassInInterval(0.5, 0.4, 0.55);
  EXPECT_NEAR(kde->BoxProbability({0.45, 0.4}, {0.6, 0.55}), expected,
              1e-12);
}

TEST(KdeTest, ConvergesToTrueDistribution) {
  // JS divergence to the generating Gaussian must shrink as |R| grows.
  const AnalyticDistribution truth =
      AnalyticDistribution::Gaussian1d(0.4, 0.05);
  Rng rng(4);
  double prev_js = 1.0;
  for (size_t n : {50u, 500u, 5000u}) {
    auto sample = Sample1d(&rng, n, 0.4, 0.05);
    auto kde =
        KernelDensityEstimator::CreateWithScottBandwidths(sample, {0.05});
    ASSERT_TRUE(kde.ok());
    auto js = JsDivergenceOnGrid(*kde, truth, 128);
    ASSERT_TRUE(js.ok());
    EXPECT_LT(*js, prev_js + 0.005) << "n=" << n;
    prev_js = *js;
  }
  EXPECT_LT(prev_js, 0.01);  // large-sample estimate is close to truth
}

TEST(KdeTest, SampleSortedFor1d) {
  auto kde = KernelDensityEstimator::Create({{0.9}, {0.1}, {0.5}}, {0.05});
  ASSERT_TRUE(kde.ok());
  const auto& s = kde->sample();
  EXPECT_DOUBLE_EQ(s[0][0], 0.1);
  EXPECT_DOUBLE_EQ(s[1][0], 0.5);
  EXPECT_DOUBLE_EQ(s[2][0], 0.9);
}

TEST(KdeTest, NeighborCountScalesWithWindow) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.1});
  ASSERT_TRUE(kde.ok());
  const double mass = kde->BallProbability({0.5}, 0.05);
  EXPECT_NEAR(kde->NeighborCount({0.5}, 0.05, 1000.0), mass * 1000.0, 1e-9);
}

TEST(KdeTest, ScottFactoryUsesPerDimensionStddev) {
  std::vector<Point> sample{{0.3, 0.3}, {0.5, 0.5}, {0.7, 0.7}};
  auto kde = KernelDensityEstimator::CreateWithScottBandwidths(
      sample, {0.05, 0.2});
  ASSERT_TRUE(kde.ok());
  const auto b = kde->bandwidths();
  ASSERT_EQ(b.size(), 2u);
  EXPECT_LT(b[0], b[1]);
}

TEST(KdeTest, MemoryBytesAccounting) {
  auto kde = KernelDensityEstimator::Create({{0.1, 0.2}, {0.3, 0.4}},
                                            {0.1, 0.1});
  ASSERT_TRUE(kde.ok());
  // 2 points x 2 dims + 2 bandwidths = 6 numbers.
  EXPECT_EQ(kde->MemoryBytes(2), 12u);
}

TEST(KdeTest, PdfIntegratesToBoxProbability) {
  Rng rng(5);
  auto kde = KernelDensityEstimator::Create(Sample1d(&rng, 100, 0.5, 0.08),
                                            {0.04});
  ASSERT_TRUE(kde.ok());
  const double a = 0.42, b = 0.58;
  const int n = 20000;
  double riemann = 0.0;
  for (int i = 0; i < n; ++i) {
    riemann += kde->Pdf({a + (b - a) * (i + 0.5) / n});
  }
  riemann *= (b - a) / n;
  EXPECT_NEAR(riemann, kde->BoxProbability({a}, {b}), 1e-4);
}

TEST(KdeTest, DuplicatePointsAreWeighted) {
  auto kde = KernelDensityEstimator::Create({{0.3}, {0.3}, {0.3}, {0.9}},
                                            {0.05});
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->BoxProbability({0.25}, {0.35}), 0.75, 1e-12);
  EXPECT_NEAR(kde->BoxProbability({0.85}, {0.95}), 0.25, 1e-12);
}

}  // namespace
}  // namespace sensord
