#include "core/distance_outlier.h"

#include <gtest/gtest.h>

#include "stats/empirical.h"
#include "stats/kde.h"
#include "util/rng.h"

namespace sensord {
namespace {

TEST(DistanceOutlierTest, DenseValueIsNotOutlier) {
  // 100 points at 0.5, window of 100: N(0.5, r) = 100 >> threshold.
  std::vector<Point> data(100, Point{0.5});
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  DistanceOutlierConfig cfg;
  cfg.radius = 0.01;
  cfg.neighbor_threshold = 45;
  EXPECT_FALSE(IsDistanceOutlier(*e, 100.0, {0.5}, cfg));
  EXPECT_DOUBLE_EQ(EstimateNeighborCount(*e, 100.0, {0.5}, cfg), 100.0);
}

TEST(DistanceOutlierTest, IsolatedValueIsOutlier) {
  std::vector<Point> data(99, Point{0.3});
  data.push_back({0.9});
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  DistanceOutlierConfig cfg;
  cfg.radius = 0.01;
  cfg.neighbor_threshold = 45;
  EXPECT_TRUE(IsDistanceOutlier(*e, 100.0, {0.9}, cfg));
  EXPECT_FALSE(IsDistanceOutlier(*e, 100.0, {0.3}, cfg));
}

TEST(DistanceOutlierTest, ThresholdBoundaryIsStrict) {
  // Exactly `threshold` neighbors: N(p, r) == t is NOT an outlier (flag
  // only when N < t).
  std::vector<Point> data(45, Point{0.5});
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  DistanceOutlierConfig cfg;
  cfg.radius = 0.01;
  cfg.neighbor_threshold = 45;
  EXPECT_FALSE(IsDistanceOutlier(*e, 45.0, {0.5}, cfg));
  cfg.neighbor_threshold = 46;
  EXPECT_TRUE(IsDistanceOutlier(*e, 45.0, {0.5}, cfg));
}

TEST(DistanceOutlierTest, WindowCountScalesDecision) {
  auto kde = KernelDensityEstimator::Create({{0.5}}, {0.05});
  ASSERT_TRUE(kde.ok());
  DistanceOutlierConfig cfg;
  cfg.radius = 0.05;
  cfg.neighbor_threshold = 45;
  // Same mass; only the population differs.
  EXPECT_TRUE(IsDistanceOutlier(*kde, 40.0, {0.5}, cfg));
  EXPECT_FALSE(IsDistanceOutlier(*kde, 10000.0, {0.5}, cfg));
}

TEST(DistanceOutlierTest, RadiusGrowsNeighborhood) {
  Rng rng(1);
  std::vector<Point> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back({Clamp(rng.Gaussian(0.5, 0.1), 0.0, 1.0)});
  }
  auto e = EmpiricalDistribution::Create(data);
  ASSERT_TRUE(e.ok());
  DistanceOutlierConfig small{0.01, 0.0}, large{0.1, 0.0};
  EXPECT_LT(EstimateNeighborCount(*e, 1000.0, {0.5}, small),
            EstimateNeighborCount(*e, 1000.0, {0.5}, large));
}

TEST(DistanceOutlierTest, MultiDimensionalBoxSemantics) {
  // Point at L-infinity distance 0.05: inside radius 0.05 box, outside
  // radius 0.04.
  auto e = EmpiricalDistribution::Create({{0.5, 0.5}, {0.55, 0.52}});
  ASSERT_TRUE(e.ok());
  DistanceOutlierConfig cfg;
  cfg.neighbor_threshold = 2;
  cfg.radius = 0.05;
  EXPECT_FALSE(IsDistanceOutlier(*e, 2.0, {0.5, 0.5}, cfg));
  cfg.radius = 0.04;
  EXPECT_TRUE(IsDistanceOutlier(*e, 2.0, {0.5, 0.5}, cfg));
}

}  // namespace
}  // namespace sensord
