// Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
//
// Death tests for the SENSORD_CHECK / SENSORD_DCHECK invariant layer.
// CHECK macros must abort with a message naming the expression (and the
// operand values for the comparison forms) in every build type; DCHECK
// macros must behave identically in Debug and compile to nothing in
// Release (NDEBUG).

#include "util/check.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace sensord {
namespace {

TEST(CheckTest, PassingChecksAreSilent) {
  SENSORD_CHECK(true);
  SENSORD_CHECK_EQ(1, 1);
  SENSORD_CHECK_NE(1, 2);
  SENSORD_CHECK_LE(1, 1);
  SENSORD_CHECK_LT(1, 2);
  SENSORD_CHECK_GE(2, 2);
  SENSORD_CHECK_GT(2, 1);
  SENSORD_CHECK_OK(Status::Ok());
}

TEST(CheckDeathTest, CheckAbortsWithExpression) {
  EXPECT_DEATH(SENSORD_CHECK(1 + 1 == 3),
               "SENSORD_CHECK\\(1 \\+ 1 == 3\\) failed");
}

TEST(CheckDeathTest, CheckOpPrintsBothValues) {
  const int i = 7;
  const int n = 5;
  EXPECT_DEATH(SENSORD_CHECK_LT(i, n), "SENSORD_CHECK_LT\\(i, n\\) failed: 7 vs. 5");
  EXPECT_DEATH(SENSORD_CHECK_EQ(i, n), "failed: 7 vs. 5");
  EXPECT_DEATH(SENSORD_CHECK_GE(n, i), "failed: 5 vs. 7");
}

TEST(CheckDeathTest, CheckOpPrintsDoubleValues) {
  const double radius = -0.25;
  EXPECT_DEATH(SENSORD_CHECK_GT(radius, 0.0), "failed: -0.25 vs. 0");
}

TEST(CheckDeathTest, CheckOkPrintsStatus) {
  EXPECT_DEATH(SENSORD_CHECK_OK(Status::InvalidArgument("bad radius")),
               "SENSORD_CHECK_OK.*InvalidArgument: bad radius");
}

TEST(CheckDeathTest, CheckOkAcceptsStatusOr) {
  const StatusOr<int> ok_result(42);
  SENSORD_CHECK_OK(ok_result);  // must not die

  const StatusOr<int> bad_result(Status::OutOfRange("index 9 beyond window"));
  EXPECT_DEATH(SENSORD_CHECK_OK(bad_result), "OutOfRange: index 9 beyond window");
}

TEST(CheckDeathTest, FailureReportsFileAndLine) {
  EXPECT_DEATH(SENSORD_CHECK(false), "CHECK failure at .*check_test\\.cc:");
}

TEST(CheckTest, CheckEvaluatesOperandsExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  SENSORD_CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
  SENSORD_CHECK(bump() == 2);
  EXPECT_EQ(calls, 2);
}

#if SENSORD_DCHECK_IS_ON()

TEST(DcheckDeathTest, DcheckAbortsInDebug) {
  EXPECT_DEATH(SENSORD_DCHECK(false), "SENSORD_DCHECK|SENSORD_CHECK");
  EXPECT_DEATH(SENSORD_DCHECK_EQ(1, 2), "failed: 1 vs. 2");
  EXPECT_DEATH(SENSORD_DCHECK_OK(Status::Internal("boom")), "Internal: boom");
}

#else  // !SENSORD_DCHECK_IS_ON()

TEST(DcheckTest, DcheckCompilesOutInRelease) {
  // The conditions are false but must neither abort nor be evaluated.
  int evaluations = 0;
  const auto probe = [&evaluations] {
    ++evaluations;
    return false;
  };
  SENSORD_DCHECK(probe());
  SENSORD_DCHECK_EQ(evaluations, 12345);
  SENSORD_DCHECK_LT(2, 1);
  SENSORD_DCHECK_OK(Status::Internal("never inspected"));
  EXPECT_EQ(evaluations, 0);
}

#endif  // SENSORD_DCHECK_IS_ON()

}  // namespace
}  // namespace sensord
