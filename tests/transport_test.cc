#include "net/transport.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_schedule.h"
#include "net/network.h"

namespace sensord {
namespace {

class ProbeNode : public Node {
 public:
  void HandleMessage(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

Simulator MakeReliableSim(double ack_timeout = 0.05, int max_retries = 5,
                          double backoff = 2.0) {
  SimulatorOptions opts;
  opts.transport.reliable = true;
  opts.transport.ack_timeout = ack_timeout;
  opts.transport.max_retries = max_retries;
  opts.transport.backoff_factor = backoff;
  return Simulator(opts);
}

Message Msg(NodeId from, NodeId to, MessageKind kind = 42) {
  Message msg;
  msg.from = from;
  msg.to = to;
  msg.kind = kind;
  msg.size_numbers = 1;
  return msg;
}

TEST(TransportTest, CleanLinkDeliversOnceAndAcks) {
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.Send(Msg(a, b));
  sim.RunAll();

  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].transport_seq, 1u);
  EXPECT_EQ(sim.transport().retries(), 0u);
  EXPECT_EQ(sim.transport().acks_sent(), 1u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
  // Data + ack are both real traffic.
  EXPECT_EQ(sim.stats().TotalMessages(), 2u);
  EXPECT_EQ(sim.stats().MessagesOfKind(kMsgTransportAck), 1u);
  // The ack is infrastructure: it never reached the sending node's handler.
  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(a)).received.empty());
}

TEST(TransportTest, RetransmitsThroughForcedDrops) {
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 2);
  sim.Send(Msg(a, b));
  sim.RunAll();

  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);  // exactly once despite 2 losses
  EXPECT_EQ(sim.transport().timeouts(), 2u);
  EXPECT_EQ(sim.transport().retries(), 2u);
  EXPECT_EQ(sim.transport().abandoned(), 0u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
  EXPECT_EQ(sim.MessagesDropped(), 2u);
}

TEST(TransportTest, BackoffTimingOnVirtualTime) {
  // ack_timeout 1, backoff 2: attempts go out at t = 0, 1, 3, 7.
  Simulator sim = MakeReliableSim(/*ack_timeout=*/1.0, /*max_retries=*/5,
                                  /*backoff=*/2.0);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 3);
  sim.Send(Msg(a, b));

  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  sim.RunUntil(6.99);
  EXPECT_TRUE(receiver.received.empty());  // 4th attempt not out yet
  sim.RunUntil(7.01);  // 4th attempt at t=7 arrives after hop latency
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(sim.transport().retries(), 3u);
  sim.RunAll();
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
  EXPECT_EQ(receiver.received.size(), 1u);  // nothing further arrives
}

TEST(TransportTest, RetryBudgetExhaustionAbandons) {
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.05, /*max_retries=*/2);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 100);  // the link eats everything
  sim.Send(Msg(a, b));
  sim.RunAll();

  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
  EXPECT_EQ(sim.transport().abandoned(), 1u);
  EXPECT_EQ(sim.transport().retries(), 2u);  // 1 + max_retries transmissions
  EXPECT_EQ(sim.stats().TotalMessages(), 3u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);  // no zombie state
}

TEST(TransportTest, LostAckRetransmitsButDeliversOnce) {
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(b, a, 1);  // kill the first ack, not the data
  sim.Send(Msg(a, b));
  sim.RunAll();

  // Data arrived twice on the wire, the node saw it once, and the re-ack of
  // the suppressed duplicate settled the sender.
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(sim.transport().dup_suppressed(), 1u);
  EXPECT_EQ(sim.transport().acks_sent(), 2u);
  EXPECT_EQ(sim.transport().retries(), 1u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

TEST(TransportTest, RadioDuplicateIsSuppressed) {
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  LinkFault fault;
  fault.duplicate_probability = 1.0;
  sim.faults().SetLinkFault(a, b, fault);
  sim.Send(Msg(a, b));
  sim.RunAll();

  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 1u);
  EXPECT_EQ(sim.transport().dup_suppressed(), 1u);
}

TEST(TransportTest, SequenceNumbersAreMonotonePerLink) {
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId c = sim.AddNode(std::make_unique<ProbeNode>());
  for (int i = 0; i < 3; ++i) sim.Send(Msg(a, b));
  sim.Send(Msg(a, c));  // a different link numbers independently
  sim.RunAll();

  auto& rb = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(rb.received.size(), 3u);
  EXPECT_EQ(rb.received[0].transport_seq, 1u);
  EXPECT_EQ(rb.received[1].transport_seq, 2u);
  EXPECT_EQ(rb.received[2].transport_seq, 3u);
  auto& rc = static_cast<ProbeNode&>(sim.node(c));
  ASSERT_EQ(rc.received.size(), 1u);
  EXPECT_EQ(rc.received[0].transport_seq, 1u);
}

TEST(TransportTest, RetriesRideOutReceiverCrash) {
  // b is down for the first two delivery attempts and back up for the third.
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.2, /*max_retries=*/5,
                                  /*backoff=*/2.0);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(b, 0.0, 0.5);  // attempts at 0, 0.2 hit the crash
  sim.Send(Msg(a, b));
  sim.RunAll();

  ASSERT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 1u);
  EXPECT_EQ(sim.transport().retries(), 2u);
  EXPECT_EQ(sim.MessagesDropped(), 2u);  // the two crashed-receiver copies
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

TEST(TransportTest, SenderCrashAbandonsItsPendingMessages) {
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.1, /*max_retries=*/5);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 1);          // first attempt lost ...
  sim.faults().CrashNode(a, 0.05);         // ... then the sender dies
  sim.Send(Msg(a, b));
  sim.RunAll();

  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
  EXPECT_EQ(sim.transport().abandoned(), 1u);
  EXPECT_EQ(sim.transport().retries(), 0u);  // dead nodes don't retransmit
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

TEST(TransportTest, PartitionHealsAndDeliveryResumes) {
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.2, /*max_retries=*/8);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().Partition({a}, 0.0, 0.5);
  sim.Send(Msg(a, b));
  sim.RunAll();

  // Attempts at 0 and 0.2 die against the partition; 0.6 goes through.
  ASSERT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 1u);
  EXPECT_EQ(sim.transport().retries(), 2u);
  EXPECT_GT(sim.Now(), 0.5);
}

TEST(TransportTest, UnreliableModeBypassesTransportEntirely) {
  Simulator sim;  // default: transport off
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.Send(Msg(a, b));
  sim.RunAll();

  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].transport_seq, 0u);  // unstamped datagram
  EXPECT_EQ(sim.stats().MessagesOfKind(kMsgTransportAck), 0u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

// --- Incarnation epochs: correctness across amnesia restarts. ---

TEST(TransportTest, ReceiverAmnesiaRestartAcceptsInFlightRetransmit) {
  // b is amnesia-down for the first attempts; its restart wipes the link
  // dedup state, and the sender's retransmit (same epoch, same seq) must
  // still deliver exactly once and settle the pending entry.
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.2, /*max_retries=*/5,
                                  /*backoff=*/2.0);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(b, 0.0, 0.5, CrashKind::kAmnesia);
  sim.Send(Msg(a, b));
  sim.RunAll();

  EXPECT_EQ(sim.Incarnation(b), 1u);
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].transport_seq, 1u);
  EXPECT_EQ(receiver.received[0].transport_epoch, 0u);  // sender's epoch
  EXPECT_EQ(sim.transport().retries(), 2u);  // attempts at 0, 0.2, 0.6
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
  EXPECT_EQ(sim.transport().stale_epoch_dropped(), 0u);
}

TEST(TransportTest, SenderAmnesiaRestartReusedSeqIsNotMisDeduped) {
  // Regression: a restarted sender restarts its per-link seq counter at 1.
  // Without epochs the receiver's dedup set would silently eat the reused
  // seq; the bumped epoch must flush it instead.
  Simulator sim = MakeReliableSim();
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.Send(Msg(a, b, /*kind=*/42));  // delivered as (epoch 0, seq 1)
  sim.faults().CrashNode(a, 0.1, 0.2, CrashKind::kAmnesia);
  sim.ScheduleAt(0.3, [&sim, a, b] { sim.Send(Msg(a, b, /*kind=*/43)); });
  sim.RunAll();

  EXPECT_EQ(sim.Incarnation(a), 1u);
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 2u);
  EXPECT_EQ(receiver.received[0].kind, 42);
  EXPECT_EQ(receiver.received[1].kind, 43);
  // The second message reused seq 1 under the new epoch — and got through.
  EXPECT_EQ(receiver.received[1].transport_seq, 1u);
  EXPECT_EQ(receiver.received[1].transport_epoch, 1u);
  EXPECT_EQ(sim.transport().dup_suppressed(), 0u);
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

TEST(TransportTest, StaleEpochCopyIsDroppedWithoutAck) {
  // msg1's only physical copy is held back a full second by the reorder
  // fault; meanwhile its sender amnesia-restarts (flushing the pending
  // entry) and sends msg2 under epoch 1. When the stale epoch-0 copy
  // finally lands it must be dropped without an ack — acking it would
  // settle a new-incarnation pending entry carrying the same seq.
  Simulator sim = MakeReliableSim(/*ack_timeout=*/0.5, /*max_retries=*/3);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  LinkFault slow;
  slow.reorder_probability = 1.0;
  slow.reorder_delay = 1.0;
  sim.faults().SetLinkFault(a, b, slow);
  sim.Send(Msg(a, b, /*kind=*/42));  // epoch 0, seq 1; arrives ~t=1.001
  sim.faults().CrashNode(a, 0.1, 0.2, CrashKind::kAmnesia);
  sim.ScheduleAt(0.3, [&sim, a, b] {
    sim.faults().SetLinkFault(a, b, LinkFault{});  // link is fast again
    sim.Send(Msg(a, b, /*kind=*/43));              // epoch 1, seq 1
  });
  sim.RunAll();

  EXPECT_EQ(sim.transport().flushed_pending(), 1u);  // msg1 died with a
  auto& receiver = static_cast<ProbeNode&>(sim.node(b));
  ASSERT_EQ(receiver.received.size(), 1u);
  EXPECT_EQ(receiver.received[0].kind, 43);
  EXPECT_EQ(sim.transport().stale_epoch_dropped(), 1u);
  EXPECT_EQ(sim.transport().acks_sent(), 1u);  // only msg2 was acked
  EXPECT_EQ(sim.transport().PendingCount(), 0u);
}

// Records the exact physical delivery sequence of a simulation run.
std::vector<std::string> RunAndTapDeliveries(uint64_t fault_seed) {
  SimulatorOptions opts;
  opts.transport.reliable = true;
  opts.transport.ack_timeout = 0.05;
  opts.fault_seed = fault_seed;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId c = sim.AddNode(std::make_unique<ProbeNode>());

  LinkFault fault;
  fault.drop_probability = 0.3;
  fault.duplicate_probability = 0.2;
  fault.jitter_max = 0.02;
  sim.faults().SetDefaultLinkFault(fault);

  std::vector<std::string> log;
  sim.SetDeliveryTapForTest([&log, &sim](const Message& msg) {
    char line[128];
    std::snprintf(line, sizeof(line), "t=%.12f %u->%u kind=%u seq=%llu",
                  sim.Now(), msg.from, msg.to,
                  static_cast<unsigned>(msg.kind),
                  static_cast<unsigned long long>(msg.transport_seq));
    log.emplace_back(line);
  });

  for (int i = 0; i < 30; ++i) {
    sim.ScheduleAt(0.1 * i, [&sim, a, b, c, i] {
      sim.Send(Msg(a, b, /*kind=*/42));
      if (i % 3 == 0) sim.Send(Msg(b, c, /*kind=*/43));
    });
  }
  sim.RunAll();
  return log;
}

TEST(TransportTest, SameSeedYieldsByteIdenticalDeliveryOrder) {
  const std::vector<std::string> run1 = RunAndTapDeliveries(/*fault_seed=*/99);
  const std::vector<std::string> run2 = RunAndTapDeliveries(/*fault_seed=*/99);
  ASSERT_FALSE(run1.empty());
  EXPECT_EQ(run1, run2);

  // A different fault seed produces a different physical history.
  const std::vector<std::string> run3 = RunAndTapDeliveries(/*fault_seed=*/100);
  EXPECT_NE(run1, run3);
}

}  // namespace
}  // namespace sensord
