#include "stats/kernel.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(EpanechnikovKernelTest, PeakAtCenter) {
  EpanechnikovKernel k(1.0);
  EXPECT_DOUBLE_EQ(k.Value(0.0), 0.75);
  EpanechnikovKernel half(0.5);
  EXPECT_DOUBLE_EQ(half.Value(0.0), 1.5);
}

TEST(EpanechnikovKernelTest, ZeroOutsideSupport) {
  EpanechnikovKernel k(0.2);
  EXPECT_DOUBLE_EQ(k.Value(0.2), 0.0);
  EXPECT_DOUBLE_EQ(k.Value(-0.2), 0.0);
  EXPECT_DOUBLE_EQ(k.Value(0.5), 0.0);
}

TEST(EpanechnikovKernelTest, SymmetricInOffset) {
  EpanechnikovKernel k(0.3);
  for (double x : {0.05, 0.1, 0.2, 0.29}) {
    EXPECT_DOUBLE_EQ(k.Value(x), k.Value(-x));
  }
}

TEST(EpanechnikovKernelTest, IntegratesToOneOverSupport) {
  for (double b : {0.01, 0.1, 0.5, 1.0, 3.0}) {
    EpanechnikovKernel k(b);
    EXPECT_NEAR(k.IntegralOver(-b, b), 1.0, 1e-12) << "bandwidth " << b;
  }
}

TEST(EpanechnikovKernelTest, IntegralClipsOutsideSupport) {
  EpanechnikovKernel k(0.5);
  EXPECT_NEAR(k.IntegralOver(-10.0, 10.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(k.IntegralOver(0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(k.IntegralOver(-3.0, -0.5), 0.0);
}

TEST(EpanechnikovKernelTest, HalfMassOnEachSide) {
  EpanechnikovKernel k(0.7);
  EXPECT_NEAR(k.IntegralOver(-0.7, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(k.IntegralOver(0.0, 0.7), 0.5, 1e-12);
}

TEST(EpanechnikovKernelTest, IntegralMatchesNumericQuadrature) {
  EpanechnikovKernel k(0.3);
  const double a = -0.1, b = 0.25;
  // Midpoint rule with fine resolution.
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = a + (b - a) * (i + 0.5) / n;
    sum += k.Value(x);
  }
  sum *= (b - a) / n;
  EXPECT_NEAR(k.IntegralOver(a, b), sum, 1e-6);
}

TEST(EpanechnikovKernelTest, MassInIntervalShiftsWithCenter) {
  EpanechnikovKernel k(0.2);
  EXPECT_NEAR(k.MassInInterval(0.5, 0.3, 0.7), 1.0, 1e-12);
  EXPECT_NEAR(k.MassInInterval(0.5, 0.5, 0.7), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(k.MassInInterval(0.5, 0.8, 0.9), 0.0);
}

TEST(EpanechnikovKernelTest, IntegralMonotoneInUpperLimit) {
  EpanechnikovKernel k(1.0);
  double prev = 0.0;
  for (double u = -1.0; u <= 1.0; u += 0.05) {
    const double cur = k.IntegralOver(-1.0, u);
    EXPECT_GE(cur, prev - 1e-15);
    prev = cur;
  }
}

}  // namespace
}  // namespace sensord
