#!/usr/bin/env python3
# Copyright (c) the sensord authors. Licensed under the Apache License 2.0.
"""Fixture-driven tests for tools/lint/sensord_lint.py.

Each rule must fire exactly once on its fixture in tests/lint_fixtures/ and
stay silent on the clean fixtures — pinning both the detection and the
false-positive behavior. Run directly or via ctest (lint_tool_test).
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "sensord_lint.py")
FIXTURES = os.path.join("tests", "lint_fixtures")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "lint"))
import sensord_lint  # noqa: E402


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, "--root", REPO_ROOT, "--no-clang-query"]
        + list(args),
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def count_rule(output, rule):
    return output.count("[%s]" % rule)


class DeterminismClockRule(unittest.TestCase):
    def test_fires_exactly_once_on_fixture(self):
        code, out = run_lint("--rules", "determinism", "--scan",
                             os.path.join(FIXTURES, "clock_violation.cc"))
        self.assertEqual(code, 1, out)
        self.assertEqual(count_rule(out, "determinism-clock"), 1, out)
        self.assertIn("steady_clock", out)
        self.assertEqual(count_rule(out, "determinism-unordered"), 0, out)

    def test_flags_system_clock_added_to_core(self):
        # The acceptance scenario: a patch adds a wall-clock read to
        # src/core/. Simulated in a scratch file under a scratch root.
        with tempfile.TemporaryDirectory() as tmp:
            core = os.path.join(tmp, "src", "core")
            os.makedirs(core)
            with open(os.path.join(core, "patched.cc"), "w") as f:
                f.write("#include <chrono>\n"
                        "double Now() {\n"
                        "  return std::chrono::system_clock::now()"
                        ".time_since_epoch().count();\n"
                        "}\n")
            code, out = run_lint("--root", tmp, "--rules", "determinism")
            self.assertEqual(code, 1, out)
            self.assertEqual(count_rule(out, "determinism-clock"), 1, out)
            self.assertIn("system_clock", out)

    def test_allowlisted_sink_is_clean(self):
        # src/obs/trace.cc reads steady_clock but is the allowlisted sink.
        code, out = run_lint("--rules", "determinism", "--scan",
                             "src/obs/trace.cc")
        self.assertEqual(code, 0, out)


class DeterminismUnorderedRule(unittest.TestCase):
    def test_fires_exactly_thrice_on_fixture(self):
        code, out = run_lint("--rules", "determinism", "--scan",
                             os.path.join(FIXTURES, "unordered_violation.cc"))
        self.assertEqual(code, 1, out)
        self.assertEqual(count_rule(out, "determinism-unordered"), 3, out)
        self.assertIn("readings", out)
        self.assertIn("pending", out)
        self.assertIn("last_seen", out)
        self.assertEqual(count_rule(out, "determinism-clock"), 0, out)


class ThreadAnnotationRule(unittest.TestCase):
    def test_fires_exactly_once_on_fixture(self):
        code, out = run_lint("--rules", "thread", "--scan",
                             os.path.join(FIXTURES, "thread_violation.cc"))
        self.assertEqual(code, 1, out)
        self.assertEqual(count_rule(out, "thread-annotation"), 1, out)
        self.assertIn("pending_", out)

    def test_flags_unannotated_field_added_to_metrics_header(self):
        # The acceptance scenario: a guarded field lands in
        # src/obs/metrics.h without GUARDED_BY. Patch a copy.
        with tempfile.TemporaryDirectory() as tmp:
            obs = os.path.join(tmp, "src", "obs")
            os.makedirs(obs)
            original = os.path.join(REPO_ROOT, "src", "obs", "metrics.h")
            with open(original) as f:
                text = f.read()
            marker = "mutable std::mutex mu_;"
            self.assertIn(marker, text)
            text = text.replace(
                marker, marker + "\n  int unguarded_scratch_;")
            with open(os.path.join(obs, "metrics.h"), "w") as f:
                f.write(text)
            code, out = run_lint("--root", tmp, "--rules", "thread")
            self.assertEqual(code, 1, out)
            self.assertEqual(count_rule(out, "thread-annotation"), 1, out)
            self.assertIn("unguarded_scratch_", out)


class CleanFixture(unittest.TestCase):
    def test_no_rule_fires(self):
        code, out = run_lint("--rules", "determinism,thread", "--scan",
                             os.path.join(FIXTURES, "clean.cc"))
        self.assertEqual(code, 0, out)
        self.assertIn("clean", out)


class HeaderHygieneRule(unittest.TestCase):
    def test_violation_and_clean_headers(self):
        code, out = run_lint("--rules", "headers", "--scan",
                             os.path.join(FIXTURES, "header_violation.h"),
                             os.path.join(FIXTURES, "header_clean.h"))
        self.assertEqual(code, 1, out)
        self.assertEqual(count_rule(out, "header-hygiene"), 1, out)
        self.assertIn("header_violation.h", out)
        self.assertNotIn("header_clean.h:", out)


class TestPairingRule(unittest.TestCase):
    def _scratch_repo(self, tmp, with_test, with_map_line=None):
        os.makedirs(os.path.join(tmp, "src", "core"))
        os.makedirs(os.path.join(tmp, "tests"))
        os.makedirs(os.path.join(tmp, "tools", "lint"))
        with open(os.path.join(tmp, "src", "core", "widget.cc"), "w") as f:
            f.write("int w;\n")
        if with_test:
            with open(os.path.join(tmp, "tests", "widget_test.cc"),
                      "w") as f:
                f.write("int t;\n")
        if with_map_line:
            with open(os.path.join(tmp, "tools", "lint",
                                   "test_pairing.map"), "w") as f:
                f.write(with_map_line + "\n")

    def test_missing_test_fires(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._scratch_repo(tmp, with_test=False)
            code, out = run_lint("--root", tmp, "--rules", "pairing")
            self.assertEqual(code, 1, out)
            self.assertEqual(count_rule(out, "test-pairing"), 1, out)

    def test_paired_test_is_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._scratch_repo(tmp, with_test=True)
            code, out = run_lint("--root", tmp, "--rules", "pairing")
            self.assertEqual(code, 0, out)

    def test_exemption_line_suppresses(self):
        with tempfile.TemporaryDirectory() as tmp:
            self._scratch_repo(tmp, with_test=False,
                               with_map_line="src/core/widget.cc -")
            code, out = run_lint("--root", tmp, "--rules", "pairing")
            self.assertEqual(code, 0, out)

    def test_repo_pairing_is_clean(self):
        code, out = run_lint("--rules", "pairing")
        self.assertEqual(code, 0, out)


class Baseline(unittest.TestCase):
    def test_baseline_suppresses_and_stale_entries_fail(self):
        fixture = os.path.join(FIXTURES, "clock_violation.cc")
        with tempfile.NamedTemporaryFile("w", suffix=".txt",
                                         delete=False) as f:
            f.write("determinism-clock:%s:steady_clock\n" % fixture)
            baseline = f.name
        try:
            code, out = run_lint("--rules", "determinism", "--scan", fixture,
                                 "--baseline", baseline)
            self.assertEqual(code, 0, out)  # suppressed
            # Against the clean fixture the entry is stale: must fail.
            code, out = run_lint("--rules", "determinism", "--scan",
                                 os.path.join(FIXTURES, "clean.cc"),
                                 "--baseline", baseline)
            self.assertEqual(code, 1, out)
            self.assertIn("stale-baseline", out)
        finally:
            os.unlink(baseline)

    def test_committed_baseline_is_empty(self):
        entries = sensord_lint.load_list_file(
            os.path.join(REPO_ROOT, "tools", "lint", "baseline.txt"))
        self.assertEqual(entries, set(),
                         "tools/lint/baseline.txt must stay empty: fix "
                         "violations instead of baselining them")


class StripCommentsAndStrings(unittest.TestCase):
    def test_preserves_offsets_and_blanks_content(self):
        text = 'int a; // rand()\nconst char* s = "mt19937";\n/* time() */\n'
        code = sensord_lint.strip_comments_and_strings(text)
        self.assertEqual(len(code), len(text))
        self.assertEqual(code.count("\n"), text.count("\n"))
        for banned in ("rand", "mt19937", "time"):
            self.assertNotIn(banned, code)
        self.assertIn("int a;", code)


if __name__ == "__main__":
    unittest.main(verbosity=2)
