#include "data/normalize.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(NormalizerTest, FromRangesRejectsBadInput) {
  EXPECT_FALSE(Normalizer::FromRanges({}, {}).ok());
  EXPECT_FALSE(Normalizer::FromRanges({0.0}, {0.0, 1.0}).ok());
  EXPECT_FALSE(Normalizer::FromRanges({1.0}, {1.0}).ok());
  EXPECT_FALSE(Normalizer::FromRanges({2.0}, {1.0}).ok());
}

TEST(NormalizerTest, MapsRangeToUnit) {
  auto n = Normalizer::FromRanges({-10.0}, {10.0});
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(n->ToUnit({-10.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(n->ToUnit({10.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(n->ToUnit({0.0})[0], 0.5);
}

TEST(NormalizerTest, ClampsOutOfRange) {
  auto n = Normalizer::FromRanges({0.0}, {1.0});
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(n->ToUnit({-5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(n->ToUnit({5.0})[0], 1.0);
}

TEST(NormalizerTest, RoundTripInsideRange) {
  auto n = Normalizer::FromRanges({900.0, -40.0}, {1100.0, 60.0});
  ASSERT_TRUE(n.ok());
  const Point physical{1013.0, 12.5};
  const Point back = n->FromUnit(n->ToUnit(physical));
  EXPECT_NEAR(back[0], physical[0], 1e-9);
  EXPECT_NEAR(back[1], physical[1], 1e-9);
}

TEST(NormalizerTest, FitCoversDataWithMargin) {
  auto n = Normalizer::Fit({{10.0}, {20.0}, {15.0}}, 0.1);
  ASSERT_TRUE(n.ok());
  // Data extremes map strictly inside (0, 1) thanks to the margin.
  EXPECT_GT(n->ToUnit({10.0})[0], 0.0);
  EXPECT_LT(n->ToUnit({20.0})[0], 1.0);
}

TEST(NormalizerTest, FitRejectsEmptyAndInconsistent) {
  EXPECT_FALSE(Normalizer::Fit({}).ok());
  EXPECT_FALSE(Normalizer::Fit({{1.0}, {1.0, 2.0}}).ok());
}

TEST(NormalizerTest, FitHandlesConstantDimension) {
  auto n = Normalizer::Fit({{5.0}, {5.0}, {5.0}});
  ASSERT_TRUE(n.ok());
  const double u = n->ToUnit({5.0})[0];
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
}

TEST(NormalizerTest, ToUnitTrace) {
  auto n = Normalizer::FromRanges({0.0}, {10.0});
  ASSERT_TRUE(n.ok());
  const auto unit = n->ToUnitTrace({{2.0}, {5.0}});
  ASSERT_EQ(unit.size(), 2u);
  EXPECT_DOUBLE_EQ(unit[0][0], 0.2);
  EXPECT_DOUBLE_EQ(unit[1][0], 0.5);
}

}  // namespace
}  // namespace sensord
