#include "core/faulty_sensor.h"

#include <gtest/gtest.h>

#include "data/analytic.h"

namespace sensord {
namespace {

AnalyticDistribution Gaussian(double mean) {
  return AnalyticDistribution::Gaussian1d(mean, 0.05);
}

TEST(FaultySensorTest, RequiresThreeChildren) {
  const auto a = Gaussian(0.4), b = Gaussian(0.4);
  FaultySensorConfig cfg;
  EXPECT_FALSE(DetectFaultySensors({&a, &b}, cfg).ok());
}

TEST(FaultySensorTest, RejectsNullAndMismatchedChildren) {
  const auto a = Gaussian(0.4), b = Gaussian(0.4), c = Gaussian(0.4);
  FaultySensorConfig cfg;
  EXPECT_FALSE(DetectFaultySensors({&a, &b, nullptr}, cfg).ok());
  auto two_d = AnalyticDistribution::Create(
      {{MixtureComponent::MakeUniform(1.0, 0.0, 1.0)},
       {MixtureComponent::MakeUniform(1.0, 0.0, 1.0)}});
  ASSERT_TRUE(two_d.ok());
  EXPECT_FALSE(DetectFaultySensors({&a, &b, &*two_d}, cfg).ok());
}

TEST(FaultySensorTest, HealthyGroupHasNoFlags) {
  const auto a = Gaussian(0.40), b = Gaussian(0.41), c = Gaussian(0.39),
             d = Gaussian(0.40);
  FaultySensorConfig cfg;
  auto verdicts = DetectFaultySensors({&a, &b, &c, &d}, cfg);
  ASSERT_TRUE(verdicts.ok());
  for (const auto& v : *verdicts) {
    EXPECT_FALSE(v.flagged) << "child " << v.child_index;
  }
}

TEST(FaultySensorTest, DivergentChildIsFlagged) {
  const auto a = Gaussian(0.40), b = Gaussian(0.41), c = Gaussian(0.39);
  const auto broken = Gaussian(0.85);  // stuck reporting wrong values
  FaultySensorConfig cfg;
  auto verdicts = DetectFaultySensors({&a, &b, &broken, &c}, cfg);
  ASSERT_TRUE(verdicts.ok());
  ASSERT_EQ(verdicts->size(), 4u);
  EXPECT_TRUE((*verdicts)[2].flagged);
  EXPECT_FALSE((*verdicts)[0].flagged);
  EXPECT_FALSE((*verdicts)[1].flagged);
  EXPECT_FALSE((*verdicts)[3].flagged);
  // The broken child's divergence dominates everyone else's.
  for (size_t i : {0u, 1u, 3u}) {
    EXPECT_GT((*verdicts)[2].js_to_peers, (*verdicts)[i].js_to_peers);
  }
}

TEST(FaultySensorTest, ThresholdControlsSensitivity) {
  const auto a = Gaussian(0.40), b = Gaussian(0.41), c = Gaussian(0.39);
  const auto slightly_off = Gaussian(0.46);
  FaultySensorConfig strict;
  strict.js_threshold = 0.01;
  FaultySensorConfig lax;
  lax.js_threshold = 0.9;
  auto v1 = DetectFaultySensors({&a, &b, &c, &slightly_off}, strict);
  auto v2 = DetectFaultySensors({&a, &b, &c, &slightly_off}, lax);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_TRUE((*v1)[3].flagged);
  EXPECT_FALSE((*v2)[3].flagged);
}

TEST(OutlierRateMonitorTest, CountsWithinWindow) {
  OutlierRateMonitor mon(10.0);
  mon.RecordOutlier(1.0);
  mon.RecordOutlier(2.0);
  mon.RecordOutlier(5.0);
  EXPECT_EQ(mon.CountAt(5.0), 3u);
  EXPECT_EQ(mon.CountAt(11.5), 2u);  // the t=1 event slid out
  EXPECT_EQ(mon.CountAt(20.0), 0u);
}

TEST(OutlierRateMonitorTest, ThresholdQuery) {
  OutlierRateMonitor mon(60.0);
  for (int i = 0; i < 5; ++i) mon.RecordOutlier(10.0 + i);
  EXPECT_TRUE(mon.ExceedsThreshold(15.0, 4));
  EXPECT_FALSE(mon.ExceedsThreshold(15.0, 5));
}

TEST(OutlierRateMonitorTest, WindowBoundaryIsExclusive) {
  OutlierRateMonitor mon(10.0);
  mon.RecordOutlier(0.0);
  EXPECT_EQ(mon.CountAt(10.0), 0u);  // event at exactly t - window expired
  OutlierRateMonitor mon2(10.0);
  mon2.RecordOutlier(0.1);
  EXPECT_EQ(mon2.CountAt(10.0), 1u);
}

}  // namespace
}  // namespace sensord
