#!/usr/bin/env python3
"""Tests for tools/trace/trace_report.py.

Covers the two contracts the tool must hold:
  * report mode is forgiving — corrupt, truncated and alien lines (the
    flight recorder's output is most interesting when the process died
    mid-write) are counted and skipped, never fatal;
  * --validate is strict — malformed lines, orphan spans and span-less
    decisions exit nonzero with a diagnostic.

A seeded fuzz pass mutates a well-formed artifact (truncation, byte noise,
merged lines) and asserts report mode never raises. Run directly or via
ctest (trace_report_test).
"""

import contextlib
import io
import os
import random
import sys
import tempfile
import unittest

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools", "trace"))
import trace_report  # noqa: E402


def span(name, node, vt, trace, sid, parent):
    return ('{"name":"%s","node":%d,"vt":%g,"trace":%d,"span":%d,'
            '"parent":%d}' % (name, node, vt, trace, sid, parent))


def decision(node, level, vt, trace, sid):
    return ('{"decision":"d3","node":%d,"level":%d,"vt":%g,"trace":%d,'
            '"span":%d,"estimate":3.5,"threshold":10,"model_version":7,'
            '"staleness_s":0.5,"degraded":0,"latency_s":0.25}'
            % (node, level, vt, trace, sid))


WELL_FORMED_TRACE = [
    span("d3.leaf.flag", 2, 1.0, 900, 11, 0),
    span("d3.parent.recheck", 1, 1.5, 900, 12, 11),
    decision(1, 2, 1.5, 900, 12),
    span("mgdd.originate_update", 0, 2.0, 901, 21, 0),
    span("mgdd.apply_update", 3, 2.5, 901, 22, 21),
    '{"name":"plain.window","node":4,"vt":3,"begin_ns":0,"end_ns":10}',
]

WELL_FORMED_FLIGHT = [
    '{"flight":"crash","node":2,"vt":120,"events":2,"evicted":5}',
    '{"fr":"send","node":2,"vt":119,"a":1,"b":3,"value":0}',
    '{"fr":"drop","node":2,"vt":119.5,"a":1,"b":3,"value":0}',
]


def write_lines(path, lines):
    with open(path, "w") as f:
        f.write("\n".join(lines) + "\n")


def run_main(args):
    """Runs trace_report.main capturing stdout/stderr; returns (code, out)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        code = trace_report.main(args)
    return code, out.getvalue()


class TraceReportTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.trace = os.path.join(self.tmp.name, "trace.jsonl")
        self.flight = os.path.join(self.tmp.name, "flight.jsonl")
        write_lines(self.trace, WELL_FORMED_TRACE)
        write_lines(self.flight, WELL_FORMED_FLIGHT)

    def tearDown(self):
        self.tmp.cleanup()

    def test_validate_passes_on_well_formed_artifact(self):
        code, out = run_main([self.trace, "--flight", self.flight,
                              "--validate"])
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)
        self.assertIn("4 causal span(s)", out)

    def test_report_prints_chain_and_latency_table(self):
        code, out = run_main([self.trace, "--flight", self.flight])
        self.assertEqual(code, 0, out)
        self.assertIn("d3.leaf.flag@n2", out)
        self.assertIn("d3.parent.recheck@n1", out)
        self.assertIn("latency breakdown", out)
        self.assertIn("flight dump reason=crash", out)

    def test_validate_rejects_malformed_json(self):
        with open(self.trace, "a") as f:
            f.write('{"name":"torn", "nod\n')
        code, out = run_main([self.trace, "--validate"])
        self.assertEqual(code, 1, out)
        self.assertIn("malformed JSON", out)

    def test_validate_rejects_orphan_span(self):
        with open(self.trace, "a") as f:
            f.write(span("d3.parent.recheck", 0, 9.0, 900, 13, 999) + "\n")
        code, out = run_main([self.trace, "--validate"])
        self.assertEqual(code, 1, out)
        self.assertIn("orphan span", out)

    def test_validate_rejects_decision_without_span(self):
        with open(self.trace, "a") as f:
            f.write(decision(5, 3, 9.0, 900, 77) + "\n")
        code, out = run_main([self.trace, "--validate"])
        self.assertEqual(code, 1, out)
        self.assertIn("no emitted span", out)

    def test_validate_rejects_record_missing_required_key(self):
        with open(self.trace, "a") as f:
            # A causal span missing its "parent" key.
            f.write('{"name":"x","node":1,"vt":1,"trace":5,"span":6}\n')
        code, out = run_main([self.trace, "--validate"])
        self.assertEqual(code, 1, out)
        self.assertIn("missing", out)

    def test_report_skips_malformed_lines(self):
        corrupted = WELL_FORMED_TRACE + [
            '{"name":"torn", "nod',          # truncated mid-key
            "not json at all",
            '{"mystery":1}',                 # unknown shape
            '{"fr":"send","node":1}',        # flight event missing keys
        ]
        write_lines(self.trace, corrupted)
        code, out = run_main([self.trace])
        self.assertEqual(code, 0, out)
        self.assertIn("skipped 4 malformed line(s)", out)
        self.assertIn("d3.leaf.flag@n2", out)

    def test_report_survives_corrupt_flight_dump(self):
        # Simulate a process dying mid-dump: header torn off, stray events.
        write_lines(self.flight, [
            '{"fr":"send","node":2,"vt":1,"a":0,"b":0,"value":0}',
            '{"flight":"crash","node":2,"vt":2,"events":1,"evic',
            '{"fr":"ack","node":2,"vt":3,"a":1,"b":9,"value":0}',
        ])
        code, out = run_main([self.trace, "--flight", self.flight])
        self.assertEqual(code, 0, out)

    def test_missing_file_is_fatal_in_validate(self):
        code, out = run_main([os.path.join(self.tmp.name, "absent.jsonl"),
                              "--validate"])
        self.assertEqual(code, 1, out)

    def test_max_chains_truncates_deterministically(self):
        lines = list(WELL_FORMED_TRACE)
        for i in range(5):
            lines.append(span("d3.leaf.flag", 3, 4.0 + i, 910 + i, 31, 0))
            lines.append(decision(3, 1, 4.0 + i, 910 + i, 31))
        write_lines(self.trace, lines)
        code, out = run_main([self.trace, "--max-chains", "2"])
        self.assertEqual(code, 0, out)
        self.assertIn("4 more decision(s)", out)

    def test_fuzzed_artifacts_never_raise_in_report_mode(self):
        rng = random.Random(0x5EED)
        base = "\n".join(WELL_FORMED_TRACE * 4) + "\n"
        for trial in range(200):
            data = list(base)
            for _ in range(rng.randrange(1, 8)):
                mutation = rng.randrange(3)
                pos = rng.randrange(len(data))
                if mutation == 0:
                    data[pos] = chr(rng.randrange(32, 127))   # byte noise
                elif mutation == 1:
                    data[pos] = ""                            # deletion
                else:
                    data[pos] = rng.choice(["\n", "{", '"'])  # structure
            blob = "".join(data)
            if rng.randrange(2):
                blob = blob[:rng.randrange(len(blob))]        # truncation
            write_lines(self.trace, [blob])
            code, out = run_main([self.trace])
            self.assertEqual(code, 0,
                             "fuzz trial %d crashed:\n%s" % (trial, out))

    def test_validate_is_deterministic_on_the_same_input(self):
        _, first = run_main([self.trace, "--flight", self.flight])
        _, second = run_main([self.trace, "--flight", self.flight])
        self.assertEqual(first, second)


if __name__ == "__main__":
    unittest.main(verbosity=2)
