#include "stats/bandwidth.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(BandwidthTest, MatchesScottFormula1d) {
  // B = sqrt(5) * sigma * R^(-1/5) for d = 1.
  const double sigma = 0.05;
  const size_t n = 1000;
  const double expected = std::sqrt(5.0) * sigma * std::pow(1000.0, -0.2);
  EXPECT_NEAR(ScottBandwidth(sigma, n, 1), expected, 1e-12);
}

TEST(BandwidthTest, MatchesScottFormula2d) {
  const double sigma = 0.1;
  const size_t n = 500;
  const double expected =
      std::sqrt(5.0) * sigma * std::pow(500.0, -1.0 / 6.0);
  EXPECT_NEAR(ScottBandwidth(sigma, n, 2), expected, 1e-12);
}

TEST(BandwidthTest, ShrinksWithSampleSize) {
  EXPECT_GT(ScottBandwidth(0.1, 100, 1), ScottBandwidth(0.1, 10000, 1));
}

TEST(BandwidthTest, GrowsWithSpread) {
  EXPECT_GT(ScottBandwidth(0.2, 100, 1), ScottBandwidth(0.05, 100, 1));
}

TEST(BandwidthTest, HigherDimensionGivesWiderBandwidth) {
  // The exponent -1/(d+4) shrinks in magnitude with d.
  EXPECT_LT(ScottBandwidth(0.1, 1000, 1), ScottBandwidth(0.1, 1000, 4));
}

TEST(BandwidthTest, ZeroStdDevFloored) {
  EXPECT_EQ(ScottBandwidth(0.0, 100, 1), kMinBandwidth);
}

TEST(BandwidthTest, TinyStdDevFloored) {
  EXPECT_EQ(ScottBandwidth(1e-12, 100, 1), kMinBandwidth);
}

TEST(RobustSpreadTest, AgreesWithSigmaOnGaussianData) {
  // For Gaussian data IQR/1.349 == sigma, so min() is a no-op.
  EXPECT_NEAR(RobustSpread(0.05, 0.05 * 1.349), 0.05, 1e-12);
}

TEST(RobustSpreadTest, TempersSigmaOnSpikyData) {
  // Tight bulk (small IQR) + rare excursions (large sigma): robust wins.
  EXPECT_NEAR(RobustSpread(0.05, 0.006 * 1.349), 0.006, 1e-12);
}

TEST(RobustSpreadTest, DegenerateIqrFallsBackToSigma) {
  EXPECT_DOUBLE_EQ(RobustSpread(0.05, 0.0), 0.05);
}

TEST(RobustSpreadTest, NeverExceedsSigma) {
  for (double iqr : {0.0, 0.01, 0.1, 1.0}) {
    EXPECT_LE(RobustSpread(0.05, iqr), 0.05);
  }
}

TEST(BandwidthTest, VectorVersionPerDimension) {
  const auto b = ScottBandwidths({0.05, 0.1}, 400);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_NEAR(b[0], ScottBandwidth(0.05, 400, 2), 1e-15);
  EXPECT_NEAR(b[1], ScottBandwidth(0.1, 400, 2), 1e-15);
  EXPECT_LT(b[0], b[1]);
}

}  // namespace
}  // namespace sensord
