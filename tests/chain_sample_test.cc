#include "stream/chain_sample.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/flat_points.h"
#include "util/rng.h"

namespace sensord {
namespace {

TEST(ChainSampleTest, FirstElementSeedsAllChains) {
  ChainSample cs(5, 10, Rng(1));
  EXPECT_TRUE(cs.Add({0.7}));
  EXPECT_TRUE(cs.seeded());
  const auto snap = cs.Snapshot();
  ASSERT_EQ(snap.size(), 5u);
  for (const Point& p : snap) EXPECT_DOUBLE_EQ(p[0], 0.7);
}

TEST(ChainSampleTest, SnapshotEmptyBeforeFirstAdd) {
  ChainSample cs(4, 10, Rng(2));
  EXPECT_TRUE(cs.Snapshot().empty());
  EXPECT_FALSE(cs.seeded());
}

TEST(ChainSampleTest, ActiveElementsAlwaysFromCurrentWindow) {
  const size_t window = 50;
  ChainSample cs(8, window, Rng(3));
  std::vector<double> history;
  for (int i = 0; i < 2000; ++i) {
    const double v = static_cast<double>(i);
    history.push_back(v);
    cs.Add({v});
    // Every active element must be one of the last `window` values.
    for (size_t c = 0; c < cs.sample_size(); ++c) {
      const double active = cs.ActiveElement(c)[0];
      EXPECT_GE(active, std::max(0.0, v - static_cast<double>(window) + 1));
      EXPECT_LE(active, v);
    }
  }
}

TEST(ChainSampleTest, SampleIsUniformOverWindow) {
  // Feed values equal to (arrival index mod window); after warm-up each
  // residue should be sampled roughly uniformly across many snapshots.
  const size_t window = 20;
  ChainSample cs(10, window, Rng(4));
  std::map<int, int> hits;
  for (int i = 0; i < 20000; ++i) {
    cs.Add({static_cast<double>(i % window) / window});
    if (i > 1000) {
      for (size_t c = 0; c < cs.sample_size(); ++c) {
        ++hits[static_cast<int>(cs.ActiveElement(c)[0] * window + 0.5)];
      }
    }
  }
  double total = 0;
  for (const auto& [k, v] : hits) total += v;
  const double expected = total / static_cast<double>(window);
  for (const auto& [k, v] : hits) {
    EXPECT_NEAR(v, expected, expected * 0.15)
        << "residue " << k << " over/under-sampled";
  }
}

TEST(ChainSampleTest, InsertionRateMatchesTheory) {
  // In steady state a given chain restarts with probability 1/W per
  // arrival, so Add() returns true with P = 1 - (1 - 1/W)^R.
  const size_t window = 1000, sample = 100;
  ChainSample cs(sample, window, Rng(5));
  Rng values(6);
  int insertions = 0;
  const int warm = 2000, measured = 20000;
  for (int i = 0; i < warm + measured; ++i) {
    const bool in = cs.Add({values.UniformDouble()});
    if (i >= warm) insertions += in ? 1 : 0;
  }
  const double p_theory =
      1.0 - std::pow(1.0 - 1.0 / static_cast<double>(window), sample);
  const double p_measured = static_cast<double>(insertions) / measured;
  EXPECT_NEAR(p_measured, p_theory, 0.02);
}

TEST(ChainSampleTest, VersionAdvancesOnSampleChange) {
  ChainSample cs(4, 10, Rng(7));
  const uint64_t v0 = cs.version();
  cs.Add({0.1});
  EXPECT_GT(cs.version(), v0);  // seeding changes the active sample
}

TEST(ChainSampleTest, VersionStableWhenSampleUnchanged) {
  ChainSample cs(2, 1000, Rng(8));
  Rng values(9);
  cs.Add({0.5});
  uint64_t changes = 0, adds = 10000;
  uint64_t prev = cs.version();
  for (uint64_t i = 0; i < adds; ++i) {
    cs.Add({values.UniformDouble()});
    if (cs.version() != prev) ++changes;
    prev = cs.version();
  }
  // With W=1000 and 2 chains, the active set changes rarely (~2/1000 per
  // arrival for restarts plus ~2/1000 for expiries).
  EXPECT_LT(changes, adds / 50);
  EXPECT_GT(changes, 0u);
}

TEST(ChainSampleTest, StoredElementsStaysNearSampleSize) {
  const size_t sample = 50;
  ChainSample cs(sample, 500, Rng(10));
  Rng values(11);
  for (int i = 0; i < 5000; ++i) cs.Add({values.UniformDouble()});
  // Expected chain length is O(1); in practice well below 4 per chain.
  EXPECT_GE(cs.StoredElements(), sample);
  EXPECT_LE(cs.StoredElements(), sample * 6);
}

TEST(ChainSampleTest, MemoryBytesAccounting) {
  ChainSample cs(3, 10, Rng(12));
  cs.Add({0.1, 0.2});  // d = 2
  // 3 stored entries (one per chain) x (2 coords + 1 index) + 3 pending
  // replacement indices = 12 numbers.
  EXPECT_EQ(cs.MemoryBytes(2, 2), 12u * 2u);
}

TEST(ChainSampleTest, PrewarmStartsAtSteadyStateRate) {
  const size_t window = 1000, sample = 100;
  ChainSample cs(sample, window, Rng(13));
  cs.PrewarmToSteadyState();
  EXPECT_EQ(cs.total_seen(), window);
  Rng values(14);
  cs.Add({values.UniformDouble()});  // seeds
  int insertions = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    insertions += cs.Add({values.UniformDouble()}) ? 1 : 0;
  }
  const double p_theory =
      1.0 - std::pow(1.0 - 1.0 / static_cast<double>(window), sample);
  EXPECT_NEAR(static_cast<double>(insertions) / n, p_theory, 0.02);
}

TEST(ChainSampleTest, MultiDimensionalValuesSupported) {
  ChainSample cs(4, 20, Rng(15));
  Rng values(16);
  for (int i = 0; i < 500; ++i) {
    cs.Add({values.UniformDouble(), values.UniformDouble(),
            values.UniformDouble()});
  }
  for (const Point& p : cs.Snapshot()) EXPECT_EQ(p.size(), 3u);
}

TEST(ChainSampleTest, WindowOfOneAlwaysHoldsLatest) {
  ChainSample cs(3, 1, Rng(17));
  for (int i = 0; i < 100; ++i) {
    cs.Add({static_cast<double>(i)});
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(cs.ActiveElement(c)[0], static_cast<double>(i));
    }
  }
}

// Chi-squared goodness-of-fit on the inclusion probability: Babcock, Datar
// and Motwani's guarantee is that the active element of each chain is
// uniform over the *positions* of the current window, i.e. every age in
// [0, W) is equally likely. Feeding the arrival index as the value makes
// the age of each sampled element directly observable. Snapshots are taken
// 2W arrivals apart (past the expected chain lifetime) so consecutive
// observations are close to independent, and the statistic is pooled over
// chains and snapshots. With df = W - 1 = 15 the 99.9th percentile of a
// chi-squared distribution is 37.7; a correct sampler with this fixed seed
// sits far below it, while a sampler biased toward fresh or stale
// elements (the classic chain-sampling implementation bug) blows past it.
TEST(ChainSampleTest, InclusionProbabilityIsUniformChiSquared) {
  const size_t kWindow = 16;
  const size_t kSample = 8;
  const int kSnapshots = 400;
  ChainSample cs(kSample, kWindow, Rng(20060915));

  uint64_t arrivals = 0;
  const auto feed = [&](size_t n) {
    for (size_t i = 0; i < n; ++i) {
      cs.Add({static_cast<double>(arrivals)});
      ++arrivals;
    }
  };

  feed(5 * kWindow);  // warm-up: past the early-stream elevated rates

  std::vector<double> age_counts(kWindow, 0.0);
  for (int s = 0; s < kSnapshots; ++s) {
    feed(2 * kWindow);
    for (size_t c = 0; c < cs.sample_size(); ++c) {
      const double value = cs.ActiveElement(c)[0];
      const uint64_t age =
          (arrivals - 1) - static_cast<uint64_t>(value + 0.5);
      ASSERT_LT(age, kWindow) << "active element fell out of the window";
      age_counts[age] += 1.0;
    }
  }

  const double total = static_cast<double>(kSnapshots) * kSample;
  const double expected = total / static_cast<double>(kWindow);
  double chi2 = 0.0;
  for (double observed : age_counts) {
    const double diff = observed - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7) << "age distribution over the window is not uniform";

  // Guard against degenerate ways of passing chi-squared on aggregate: every
  // age must actually occur, and no age may dominate.
  for (size_t age = 0; age < kWindow; ++age) {
    EXPECT_GT(age_counts[age], 0.5 * expected) << "age " << age;
    EXPECT_LT(age_counts[age], 1.5 * expected) << "age " << age;
  }
}

TEST(ChainSampleTest, SnapshotToMatchesSnapshot) {
  ChainSample cs(16, 200, Rng(21));
  Rng values(22);
  FlatPoints flat;
  // Before the first Add the flat snapshot is empty with zero dimensions.
  cs.SnapshotTo(&flat);
  EXPECT_TRUE(flat.empty());
  EXPECT_EQ(flat.dimensions(), 0u);
  for (int i = 0; i < 3000; ++i) {
    cs.Add({values.UniformDouble(), values.UniformDouble()});
    if (i % 500 == 0) {
      cs.SnapshotTo(&flat);
      EXPECT_EQ(flat, FlatPoints::FromPoints(cs.Snapshot()));
    }
  }
  // A warm buffer is reused: repeated snapshots into the same FlatPoints
  // must not grow its backing storage.
  cs.SnapshotTo(&flat);
  const double* before = flat.data().data();
  cs.Add({0.5, 0.5});
  cs.SnapshotTo(&flat);
  EXPECT_EQ(flat.data().data(), before);
  EXPECT_EQ(flat, FlatPoints::FromPoints(cs.Snapshot()));
}

TEST(ChainSampleTest, DeterministicGivenSeed) {
  ChainSample a(5, 50, Rng(18)), b(5, 50, Rng(18));
  Rng va(19), vb(19);
  for (int i = 0; i < 1000; ++i) {
    const bool ia = a.Add({va.UniformDouble()});
    const bool ib = b.Add({vb.UniformDouble()});
    EXPECT_EQ(ia, ib);
  }
  const auto sa = a.Snapshot(), sb = b.Snapshot();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i][0], sb[i][0]);
  }
}

}  // namespace
}  // namespace sensord
