// sensord_lint fixture: NO rule may fire on this file. It exercises the
// idioms the rules must leave alone. Not compiled into any target.
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/rng.h"
#include "util/thread_annotations.h"

namespace sensord_lint_fixture {

// Seeded randomness through the sanctioned Rng: clean.
inline double SeededDraw(uint64_t seed) {
  sensord::Rng rng(seed);
  return rng.UniformDouble();
}

// Unordered containers used for keyed lookup (never iterated): clean.
inline double Lookup(const std::unordered_map<uint64_t, double>& cache,
                     uint64_t key) {
  const auto it = cache.find(key);
  return it == cache.end() ? 0.0 : it->second;
}

// Ordered iteration feeding output: clean (std::map iterates sorted).
struct Row {
  uint64_t id;
  double value;
};
inline std::vector<Row> Export(const std::map<uint64_t, double>& table) {
  std::vector<Row> out;
  for (const auto& [id, value] : table) out.push_back({id, value});
  return out;
}

// Fully annotated mutex-owning class: clean.
class AnnotatedCounter {
 public:
  void Add(uint64_t d) {
    const std::lock_guard<std::mutex> lock(mu_);
    total_ += d;
  }

 private:
  std::mutex mu_;
  uint64_t total_ GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> peeks_{0};
};

}  // namespace sensord_lint_fixture
