// sensord_lint fixture: the determinism-clock rule must fire EXACTLY ONCE
// on this file (the steady_clock token below), and no other rule may fire.
// Not compiled into any target; consumed by tests/lint_tool_test.py.
#include <chrono>
#include <cstdint>

namespace sensord_lint_fixture {

inline uint64_t ReadsTheWallClock() {
  // One banned token: steady_clock.
  const auto now = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(now.time_since_epoch().count());
}

// Mentions in comments must NOT fire: system_clock, std::rand(), mt19937.
// Nor in strings:
inline const char* kDoc = "call system_clock::now() at your peril";

// An identifier merely containing a banned name must not fire either.
inline int randomize_grand_total(int grand) { return grand + 1; }

// A bare identifier that is banned only in call position (no '(' follows)
// must not fire: this is a field named time, not a clock read.
struct Msg {
  int time = 0;
};
inline int UsesMember(const Msg& m) { return m.time; }

}  // namespace sensord_lint_fixture
