// sensord_lint fixture: the determinism-unordered rule must fire EXACTLY
// THREE times (the range-fors feeding Send, PutU64 and Record below); the
// same loop shapes that stay local must not fire. Not compiled into any
// target.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sensord_lint_fixture {

struct FakeNet {
  void Send(uint64_t id) { sent.push_back(id); }
  std::vector<uint64_t> sent;
};

struct Emitter {
  std::unordered_map<uint64_t, double> readings;
  std::unordered_set<std::string> names;

  // VIOLATION: hash-iteration order leaks into the message stream.
  void Broadcast(FakeNet& net) {
    for (const auto& [id, value] : readings) {
      if (value > 0.5) net.Send(id);
    }
  }

  // Clean: iteration feeds a commutative aggregate, no sink in the body.
  double Total() const {
    double sum = 0.0;
    for (const auto& [id, value] : readings) sum += value;
    return sum;
  }

  // Clean: collect-then-sort before anything order-sensitive happens.
  std::vector<uint64_t> SortedIds() const {
    std::vector<uint64_t> ids;
    for (const auto& [id, value] : readings) ids.push_back(id);
    // (callers sort; the loop body itself reaches no sink)
    return ids;
  }

  // Clean: an ordered container may feed a sink directly.
  void BroadcastOrdered(FakeNet& net, const std::vector<uint64_t>& ids) {
    for (uint64_t id : ids) net.Send(id);
  }
};

struct FakeSnapshotWriter {
  void PutU64(uint64_t v) { bytes.push_back(v); }
  std::vector<uint64_t> bytes;
};

struct Checkpointer {
  std::unordered_map<uint64_t, uint64_t> pending;

  // VIOLATION: hash-iteration order leaks into the checkpoint encoding,
  // so two runs of the same seed write different snapshot bytes.
  void Serialize(FakeSnapshotWriter& writer) const {
    for (const auto& [key, value] : pending) writer.PutU64(key);
  }

  // Clean: collect-then-sort before the writer sees anything.
  std::vector<uint64_t> SortedKeys() const {
    std::vector<uint64_t> keys;
    for (const auto& [key, value] : pending) keys.push_back(key);
    return keys;
  }
};

struct FakeFlightRecorder {
  void Record(uint64_t node, double vt) { slots.push_back(node + vt); }
  std::vector<double> slots;
};

struct CrashDumper {
  std::unordered_map<uint64_t, double> last_seen;

  // VIOLATION: hash-iteration order leaks into the flight-recorder ring,
  // so two same-seed runs dump their rings in different orders.
  void SnapshotToRing(FakeFlightRecorder& recorder) const {
    for (const auto& [node, vt] : last_seen) recorder.Record(node, vt);
  }
};

}  // namespace sensord_lint_fixture
