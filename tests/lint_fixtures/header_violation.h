// sensord_lint fixture: the header-hygiene rule must fail on this header —
// it uses std::vector and uint64_t without including <vector>/<cstdint>, so
// it only compiles when its includer happens to provide them.
// Not part of any build target.

#ifndef SENSORD_TESTS_LINT_FIXTURES_HEADER_VIOLATION_H_
#define SENSORD_TESTS_LINT_FIXTURES_HEADER_VIOLATION_H_

namespace sensord_lint_fixture {

struct NotSelfContained {
  std::vector<uint64_t> values;  // missing includes: fails standalone
};

}  // namespace sensord_lint_fixture

#endif  // SENSORD_TESTS_LINT_FIXTURES_HEADER_VIOLATION_H_
