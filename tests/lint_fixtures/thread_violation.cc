// sensord_lint fixture: the thread-annotation rule must fire EXACTLY ONCE
// (the unannotated `pending` field below). Not compiled into any target.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace sensord_lint_fixture {

class GuardedQueue {
 public:
  void Push(uint64_t v) {
    const std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(v);
    pending_ = items_.size();
  }

 private:
  std::mutex mu_;
  std::vector<uint64_t> items_ GUARDED_BY(mu_);  // annotated: clean
  uint64_t pending_ = 0;  // VIOLATION: guarded in practice, unannotated
  std::atomic<uint64_t> pushes_{0};  // atomic: exempt by policy
  const std::string name_ = "queue";  // const: exempt by policy
};

// No mutex member: nothing to annotate, rule must stay silent.
struct PlainAggregate {
  uint64_t count = 0;
  double sum = 0.0;
};

}  // namespace sensord_lint_fixture
