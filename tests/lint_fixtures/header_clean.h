// sensord_lint fixture: the header-hygiene rule must pass this header — it
// includes everything it uses and carries an include guard (the probe
// includes it twice). Not part of any build target.

#ifndef SENSORD_TESTS_LINT_FIXTURES_HEADER_CLEAN_H_
#define SENSORD_TESTS_LINT_FIXTURES_HEADER_CLEAN_H_

#include <cstdint>
#include <vector>

namespace sensord_lint_fixture {

struct SelfContained {
  std::vector<uint64_t> values;
};

}  // namespace sensord_lint_fixture

#endif  // SENSORD_TESTS_LINT_FIXTURES_HEADER_CLEAN_H_
