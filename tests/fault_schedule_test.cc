#include "net/fault_schedule.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"

namespace sensord {
namespace {

class ProbeNode : public Node {
 public:
  void HandleMessage(const Message& msg) override { received.push_back(msg); }
  void OnReading(const Point& value) override { readings.push_back(value); }

  std::vector<Message> received;
  std::vector<Point> readings;
};

TEST(FaultScheduleTest, DefaultScheduleIsTransparent) {
  FaultSchedule faults;
  EXPECT_TRUE(faults.IsNodeUp(0, 0.0));
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 100.0));
  for (int i = 0; i < 10; ++i) {
    const TransmissionPlan plan = faults.DecideTransmission(0, 1, 1.0);
    EXPECT_FALSE(plan.drop);
    ASSERT_EQ(plan.extra_delays.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.extra_delays[0], 0.0);
  }
  EXPECT_EQ(faults.drops(), 0u);
  EXPECT_EQ(faults.duplicates(), 0u);
}

TEST(FaultScheduleTest, ForcedDropsConsumeExactly) {
  FaultSchedule faults;
  faults.DropNext(0, 1, 2);
  EXPECT_TRUE(faults.DecideTransmission(0, 1, 0.0).drop);
  EXPECT_TRUE(faults.DecideTransmission(0, 1, 0.0).drop);
  EXPECT_FALSE(faults.DecideTransmission(0, 1, 0.0).drop);
  // Only the named directed link is affected.
  EXPECT_FALSE(faults.DecideTransmission(1, 0, 0.0).drop);
  EXPECT_EQ(faults.drops(), 2u);
}

TEST(FaultScheduleTest, CrashWindowTakesNodeDownThenRecovers) {
  FaultSchedule faults;
  faults.CrashNode(3, 1.0, 2.0);
  EXPECT_TRUE(faults.IsNodeUp(3, 0.5));
  EXPECT_TRUE(faults.IsNodeUp(3, 0.999));
  EXPECT_FALSE(faults.IsNodeUp(3, 1.0));  // [from, until)
  EXPECT_FALSE(faults.IsNodeUp(3, 1.5));
  EXPECT_TRUE(faults.IsNodeUp(3, 2.0));
  EXPECT_TRUE(faults.IsNodeUp(3, 100.0));
}

TEST(FaultScheduleTest, OpenEndedCrashNeverRecovers) {
  FaultSchedule faults;
  faults.CrashNode(1, 5.0);
  EXPECT_TRUE(faults.IsNodeUp(1, 4.9));
  EXPECT_FALSE(faults.IsNodeUp(1, 1e12));
}

TEST(FaultScheduleTest, CrashedNodeSeversItsLinksBothWays) {
  FaultSchedule faults;
  faults.CrashNode(2, 1.0, 2.0);
  EXPECT_FALSE(faults.IsLinkUp(2, 0, 1.5));
  EXPECT_FALSE(faults.IsLinkUp(0, 2, 1.5));
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 1.5));  // unrelated link stays up
  EXPECT_TRUE(faults.DecideTransmission(0, 2, 1.5).drop);
  EXPECT_FALSE(faults.DecideTransmission(0, 2, 2.5).drop);
}

TEST(FaultScheduleTest, PartitionSeversCrossLinksOnly) {
  FaultSchedule faults;
  faults.Partition({0, 1}, 10.0, 20.0);
  // Cross-partition links are down during the window ...
  EXPECT_FALSE(faults.IsLinkUp(0, 2, 15.0));
  EXPECT_FALSE(faults.IsLinkUp(2, 0, 15.0));
  // ... intra-group and outside-group links stay up ...
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 15.0));
  EXPECT_TRUE(faults.IsLinkUp(2, 3, 15.0));
  // ... and nodes themselves are not "down".
  EXPECT_TRUE(faults.IsNodeUp(0, 15.0));
  // The partition heals.
  EXPECT_TRUE(faults.IsLinkUp(0, 2, 20.0));
  EXPECT_TRUE(faults.IsLinkUp(0, 2, 9.9));
}

TEST(FaultScheduleTest, ProbabilisticDropMatchesRate) {
  FaultSchedule faults(/*seed=*/42);
  LinkFault fault;
  fault.drop_probability = 0.3;
  faults.SetLinkFault(0, 1, fault);
  const int trials = 5000;
  int dropped = 0;
  for (int i = 0; i < trials; ++i) {
    if (faults.DecideTransmission(0, 1, 0.0).drop) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.3, 0.03);
  EXPECT_EQ(faults.drops(), static_cast<uint64_t>(dropped));
  // The other direction uses the default (fault-free) model.
  EXPECT_FALSE(faults.DecideTransmission(1, 0, 0.0).drop);
}

TEST(FaultScheduleTest, DuplicatesYieldTwoCopies) {
  FaultSchedule faults;
  LinkFault fault;
  fault.duplicate_probability = 1.0;
  faults.SetDefaultLinkFault(fault);
  const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
  EXPECT_FALSE(plan.drop);
  EXPECT_EQ(plan.extra_delays.size(), 2u);
  EXPECT_EQ(faults.duplicates(), 1u);
}

TEST(FaultScheduleTest, JitterStaysWithinBound) {
  FaultSchedule faults(/*seed=*/7);
  LinkFault fault;
  fault.jitter_max = 0.1;
  faults.SetDefaultLinkFault(fault);
  bool saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
    ASSERT_EQ(plan.extra_delays.size(), 1u);
    EXPECT_GE(plan.extra_delays[0], 0.0);
    EXPECT_LT(plan.extra_delays[0], 0.1);
    saw_positive |= plan.extra_delays[0] > 0.0;
  }
  EXPECT_TRUE(saw_positive);
}

TEST(FaultScheduleTest, ReorderDelayAddsGuaranteedTail) {
  FaultSchedule faults;
  LinkFault fault;
  fault.reorder_probability = 1.0;
  fault.reorder_delay = 0.5;
  faults.SetDefaultLinkFault(fault);
  const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
  ASSERT_EQ(plan.extra_delays.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.extra_delays[0], 0.5);
}

TEST(FaultScheduleTest, SameSeedReplaysIdenticalDecisions) {
  LinkFault fault;
  fault.drop_probability = 0.4;
  fault.duplicate_probability = 0.2;
  fault.jitter_max = 0.05;

  FaultSchedule a(/*seed=*/123), b(/*seed=*/123);
  a.SetDefaultLinkFault(fault);
  b.SetDefaultLinkFault(fault);
  for (int i = 0; i < 500; ++i) {
    const TransmissionPlan pa = a.DecideTransmission(0, 1, 0.0);
    const TransmissionPlan pb = b.DecideTransmission(0, 1, 0.0);
    ASSERT_EQ(pa.drop, pb.drop);
    ASSERT_EQ(pa.extra_delays, pb.extra_delays);  // bit-identical doubles
  }

  // A different seed diverges somewhere in 500 decisions.
  FaultSchedule c(/*seed=*/124);
  c.SetDefaultLinkFault(fault);
  FaultSchedule d(/*seed=*/123);
  d.SetDefaultLinkFault(fault);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    const TransmissionPlan pc = c.DecideTransmission(0, 1, 0.0);
    const TransmissionPlan pd = d.DecideTransmission(0, 1, 0.0);
    diverged = pc.drop != pd.drop || pc.extra_delays != pd.extra_delays;
  }
  EXPECT_TRUE(diverged);
}

// --- Crash-kind and boundary semantics (DESIGN.md §10). ---

TEST(FaultScheduleTest, AmnesiaCrashSharesOmissionWindowSemantics) {
  // The crash *kind* changes what happens at restart, never whether the
  // node is down: the half-open [from, until) rule is kind-independent.
  FaultSchedule faults;
  faults.CrashNode(5, 1.0, 2.0, CrashKind::kAmnesia);
  EXPECT_TRUE(faults.IsNodeUp(5, 0.999));
  EXPECT_FALSE(faults.IsNodeUp(5, 1.0));
  EXPECT_FALSE(faults.IsNodeUp(5, 1.999));
  EXPECT_TRUE(faults.IsNodeUp(5, 2.0));
  EXPECT_FALSE(faults.IsLinkUp(5, 0, 1.5));
}

TEST(FaultScheduleTest, OverlappingCrashIntervalsUnionDown) {
  FaultSchedule faults;
  faults.CrashNode(4, 1.0, 3.0);
  faults.CrashNode(4, 2.0, 5.0, CrashKind::kAmnesia);
  EXPECT_TRUE(faults.IsNodeUp(4, 0.5));
  EXPECT_FALSE(faults.IsNodeUp(4, 1.0));
  EXPECT_FALSE(faults.IsNodeUp(4, 2.5));  // both intervals cover it
  EXPECT_FALSE(faults.IsNodeUp(4, 3.0));  // first ended, second still on
  EXPECT_FALSE(faults.IsNodeUp(4, 4.999));
  EXPECT_TRUE(faults.IsNodeUp(4, 5.0));
}

TEST(FaultScheduleTest, CrashListenerObservesEveryCrashSynchronously) {
  FaultSchedule faults;
  struct Seen {
    NodeId node;
    SimTime from, until;
    CrashKind kind;
  };
  std::vector<Seen> seen;
  faults.SetCrashListener([&seen](NodeId n, SimTime f, SimTime u,
                                  CrashKind k) {
    seen.push_back({n, f, u, k});
  });
  faults.CrashNode(1, 2.0, 3.0);
  faults.CrashNode(2, 4.0, FaultSchedule::kForever, CrashKind::kAmnesia);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].node, 1u);
  EXPECT_EQ(seen[0].kind, CrashKind::kOmission);
  EXPECT_EQ(seen[1].node, 2u);
  EXPECT_DOUBLE_EQ(seen[1].from, 4.0);
  EXPECT_EQ(seen[1].until, FaultSchedule::kForever);
  EXPECT_EQ(seen[1].kind, CrashKind::kAmnesia);
}

// --- Sensor data faults: corruption at the reading source. ---

TEST(FaultScheduleTest, StuckAtFreezesReadingsInsideItsWindow) {
  FaultSchedule faults;
  SensorFault fault;
  fault.kind = SensorDataFaultKind::kStuckAt;
  fault.from = 1.0;
  fault.until = 2.0;
  fault.value = 0.25;
  faults.AddSensorFault(7, fault);
  EXPECT_TRUE(faults.HasSensorFaults(7));
  EXPECT_FALSE(faults.HasSensorFaults(8));

  Point before{0.5, 0.6};
  EXPECT_FALSE(faults.PerturbReading(7, 0.999, &before));
  EXPECT_EQ(before, (Point{0.5, 0.6}));
  Point at_start{0.5, 0.6};
  EXPECT_TRUE(faults.PerturbReading(7, 1.0, &at_start));  // [from, until)
  EXPECT_EQ(at_start, (Point{0.25, 0.25}));
  Point at_end{0.5};
  EXPECT_FALSE(faults.PerturbReading(7, 2.0, &at_end));
  EXPECT_EQ(at_end, (Point{0.5}));
  // Other nodes are untouched.
  Point other{0.5};
  EXPECT_FALSE(faults.PerturbReading(8, 1.5, &other));
  EXPECT_EQ(faults.sensor_perturbations(), 1u);
}

TEST(FaultScheduleTest, SpikeAddsAndDropoutAlternatesNonFinite) {
  FaultSchedule faults;
  SensorFault spike;
  spike.kind = SensorDataFaultKind::kSpike;
  spike.value = 0.3;
  faults.AddSensorFault(1, spike);
  Point p{0.1, 0.2};
  EXPECT_TRUE(faults.PerturbReading(1, 0.0, &p));
  EXPECT_DOUBLE_EQ(p[0], 0.4);
  EXPECT_DOUBLE_EQ(p[1], 0.5);

  SensorFault dropout;
  dropout.kind = SensorDataFaultKind::kDropout;
  faults.AddSensorFault(2, dropout);
  Point q{0.5};
  EXPECT_TRUE(faults.PerturbReading(2, 0.0, &q));
  const bool first_nan = std::isnan(q[0]);
  EXPECT_TRUE(first_nan || std::isinf(q[0]));
  Point q2{0.5};
  EXPECT_TRUE(faults.PerturbReading(2, 0.0, &q2));
  // Both non-finite classes appear, deterministically alternating.
  EXPECT_NE(first_nan, std::isnan(q2[0]));
  EXPECT_TRUE(std::isnan(q2[0]) || std::isinf(q2[0]));
}

TEST(FaultScheduleTest, EarliestAddedActiveWindowWins) {
  FaultSchedule faults;
  SensorFault stuck;
  stuck.kind = SensorDataFaultKind::kStuckAt;
  stuck.value = 0.1;
  stuck.until = 10.0;
  SensorFault spike;
  spike.kind = SensorDataFaultKind::kSpike;
  spike.value = 100.0;
  faults.AddSensorFault(3, stuck);
  faults.AddSensorFault(3, spike);
  Point p{0.5};
  EXPECT_TRUE(faults.PerturbReading(3, 5.0, &p));
  EXPECT_EQ(p, (Point{0.1}));  // stuck-at, added first, applied
  // Once the first window closes, the second takes over.
  Point late{0.5};
  EXPECT_TRUE(faults.PerturbReading(3, 10.0, &late));
  EXPECT_DOUBLE_EQ(late[0], 100.5);
}

TEST(FaultScheduleTest, CertainSensorFaultConsumesNoRandomness) {
  // Two same-seed schedules, one of which also perturbs readings with a
  // probability-1 sensor fault: their transmission decision streams must
  // stay identical, proving the certain fault path never touches the rng.
  LinkFault flaky;
  flaky.drop_probability = 0.4;
  FaultSchedule plain(/*seed=*/9), faulted(/*seed=*/9);
  plain.SetDefaultLinkFault(flaky);
  faulted.SetDefaultLinkFault(flaky);
  SensorFault stuck;
  stuck.kind = SensorDataFaultKind::kStuckAt;
  stuck.value = 0.0;
  faulted.AddSensorFault(0, stuck);
  for (int i = 0; i < 200; ++i) {
    Point p{0.5};
    EXPECT_TRUE(faulted.PerturbReading(0, 1.0, &p));
    ASSERT_EQ(plain.DecideTransmission(0, 1, 0.0).drop,
              faulted.DecideTransmission(0, 1, 0.0).drop)
        << "diverged at decision " << i;
  }
}

TEST(FaultScheduleTest, ProbabilisticSensorFaultMatchesRate) {
  FaultSchedule faults(/*seed=*/17);
  SensorFault spike;
  spike.kind = SensorDataFaultKind::kSpike;
  spike.probability = 0.25;
  spike.value = 1.0;
  faults.AddSensorFault(0, spike);
  const int trials = 4000;
  int perturbed = 0;
  for (int i = 0; i < trials; ++i) {
    Point p{0.0};
    if (faults.PerturbReading(0, 0.0, &p)) ++perturbed;
  }
  EXPECT_NEAR(static_cast<double>(perturbed) / trials, 0.25, 0.03);
  EXPECT_EQ(faults.sensor_perturbations(),
            static_cast<uint64_t>(perturbed));
}

// --- Simulator integration: the schedule drives the radio and sensing. ---

TEST(FaultScheduleSimTest, CrashedSenderTransmitsNothing) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 0.0, 1.0);

  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  sim.RunUntil(2.0);

  // The send was suppressed before any accounting: no traffic, no energy,
  // not even a counted drop (the radio never keyed up).
  EXPECT_EQ(sim.stats().TotalMessages(), 0u);
  EXPECT_EQ(sim.MessagesDropped(), 0u);
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(a), 0.0);
  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
}

TEST(FaultScheduleSimTest, CrashedReceiverDropsInFlightMessage) {
  SimulatorOptions opts;
  opts.hop_latency = 0.1;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  // b dies while the message is in the air (sent at 1.0, arrives 1.1).
  sim.faults().CrashNode(b, 1.05, 2.0);

  sim.ScheduleAt(1.0, [&] {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  });
  sim.RunUntil(3.0);

  EXPECT_EQ(sim.stats().TotalMessages(), 1u);  // the tx happened
  EXPECT_EQ(sim.MessagesDropped(), 1u);        // the rx did not
  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(b), 0.0);  // dead radios draw nothing
}

TEST(FaultScheduleSimTest, CrashedNodeSensesNothingButScheduleSurvives) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 2.5, 5.5);
  sim.SchedulePeriodicReadings(a, 0.0, 1.0, [] { return Point{1.0}; });
  sim.RunUntil(8.0);
  // t = 0..8 is 9 ticks; t = 3, 4, 5 fall inside the crash window.
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(a)).readings.size(), 6u);
}

TEST(FaultScheduleSimTest, FaultDropsFeedTheUnifiedDropCounter) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 3);
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  }
  sim.RunUntil(1.0);
  EXPECT_EQ(sim.faults().drops(), 3u);
  EXPECT_EQ(sim.MessagesDropped(), 3u);
  EXPECT_EQ(sim.MessagesDropped(), sim.stats().MessagesDropped());
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 2u);
}

TEST(FaultScheduleSimTest, SensorFaultCorruptsDeliveredReadings) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  SensorFault stuck;
  stuck.kind = SensorDataFaultKind::kStuckAt;
  stuck.from = 2.0;
  stuck.until = 5.0;
  stuck.value = 0.9;
  sim.faults().AddSensorFault(a, stuck);
  sim.SchedulePeriodicReadings(a, 0.0, 1.0, [] { return Point{0.1}; });
  sim.RunUntil(7.0);

  // Ticks at t = 2, 3, 4 are frozen at the stuck value; the rest are clean.
  const auto& readings = static_cast<ProbeNode&>(sim.node(a)).readings;
  ASSERT_EQ(readings.size(), 8u);
  for (size_t i = 0; i < readings.size(); ++i) {
    const double expected = (i >= 2 && i < 5) ? 0.9 : 0.1;
    EXPECT_DOUBLE_EQ(readings[i][0], expected) << "tick " << i;
  }
}

TEST(FaultScheduleSimTest, AmnesiaRestartWaitsForOverlappingIntervals) {
  // Two overlapping amnesia windows: the restart scheduled at the first
  // window's end is a no-op (the second still covers it); only the restart
  // at the end of the union bumps the incarnation.
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 1.0, 2.0, CrashKind::kAmnesia);
  sim.faults().CrashNode(a, 1.5, 3.0, CrashKind::kAmnesia);
  sim.RunUntil(2.5);
  EXPECT_EQ(sim.Incarnation(a), 0u);  // first restart was swallowed
  sim.RunUntil(4.0);
  EXPECT_EQ(sim.Incarnation(a), 1u);
}

TEST(FaultScheduleSimTest, OmissionCrashDoesNotRestartOrBumpEpoch) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 1.0, 2.0);  // classic omission crash
  sim.RunUntil(3.0);
  EXPECT_EQ(sim.Incarnation(a), 0u);
}

TEST(FaultScheduleSimTest, RadioDuplicateDeliversTwiceWithoutTransport) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  LinkFault fault;
  fault.duplicate_probability = 1.0;
  sim.faults().SetLinkFault(a, b, fault);
  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  sim.RunUntil(1.0);
  // Raw datagrams have no dedup: the application sees both copies.
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 2u);
}

}  // namespace
}  // namespace sensord
