#include "net/fault_schedule.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"

namespace sensord {
namespace {

class ProbeNode : public Node {
 public:
  void HandleMessage(const Message& msg) override { received.push_back(msg); }
  void OnReading(const Point& value) override { readings.push_back(value); }

  std::vector<Message> received;
  std::vector<Point> readings;
};

TEST(FaultScheduleTest, DefaultScheduleIsTransparent) {
  FaultSchedule faults;
  EXPECT_TRUE(faults.IsNodeUp(0, 0.0));
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 100.0));
  for (int i = 0; i < 10; ++i) {
    const TransmissionPlan plan = faults.DecideTransmission(0, 1, 1.0);
    EXPECT_FALSE(plan.drop);
    ASSERT_EQ(plan.extra_delays.size(), 1u);
    EXPECT_DOUBLE_EQ(plan.extra_delays[0], 0.0);
  }
  EXPECT_EQ(faults.drops(), 0u);
  EXPECT_EQ(faults.duplicates(), 0u);
}

TEST(FaultScheduleTest, ForcedDropsConsumeExactly) {
  FaultSchedule faults;
  faults.DropNext(0, 1, 2);
  EXPECT_TRUE(faults.DecideTransmission(0, 1, 0.0).drop);
  EXPECT_TRUE(faults.DecideTransmission(0, 1, 0.0).drop);
  EXPECT_FALSE(faults.DecideTransmission(0, 1, 0.0).drop);
  // Only the named directed link is affected.
  EXPECT_FALSE(faults.DecideTransmission(1, 0, 0.0).drop);
  EXPECT_EQ(faults.drops(), 2u);
}

TEST(FaultScheduleTest, CrashWindowTakesNodeDownThenRecovers) {
  FaultSchedule faults;
  faults.CrashNode(3, 1.0, 2.0);
  EXPECT_TRUE(faults.IsNodeUp(3, 0.5));
  EXPECT_TRUE(faults.IsNodeUp(3, 0.999));
  EXPECT_FALSE(faults.IsNodeUp(3, 1.0));  // [from, until)
  EXPECT_FALSE(faults.IsNodeUp(3, 1.5));
  EXPECT_TRUE(faults.IsNodeUp(3, 2.0));
  EXPECT_TRUE(faults.IsNodeUp(3, 100.0));
}

TEST(FaultScheduleTest, OpenEndedCrashNeverRecovers) {
  FaultSchedule faults;
  faults.CrashNode(1, 5.0);
  EXPECT_TRUE(faults.IsNodeUp(1, 4.9));
  EXPECT_FALSE(faults.IsNodeUp(1, 1e12));
}

TEST(FaultScheduleTest, CrashedNodeSeversItsLinksBothWays) {
  FaultSchedule faults;
  faults.CrashNode(2, 1.0, 2.0);
  EXPECT_FALSE(faults.IsLinkUp(2, 0, 1.5));
  EXPECT_FALSE(faults.IsLinkUp(0, 2, 1.5));
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 1.5));  // unrelated link stays up
  EXPECT_TRUE(faults.DecideTransmission(0, 2, 1.5).drop);
  EXPECT_FALSE(faults.DecideTransmission(0, 2, 2.5).drop);
}

TEST(FaultScheduleTest, PartitionSeversCrossLinksOnly) {
  FaultSchedule faults;
  faults.Partition({0, 1}, 10.0, 20.0);
  // Cross-partition links are down during the window ...
  EXPECT_FALSE(faults.IsLinkUp(0, 2, 15.0));
  EXPECT_FALSE(faults.IsLinkUp(2, 0, 15.0));
  // ... intra-group and outside-group links stay up ...
  EXPECT_TRUE(faults.IsLinkUp(0, 1, 15.0));
  EXPECT_TRUE(faults.IsLinkUp(2, 3, 15.0));
  // ... and nodes themselves are not "down".
  EXPECT_TRUE(faults.IsNodeUp(0, 15.0));
  // The partition heals.
  EXPECT_TRUE(faults.IsLinkUp(0, 2, 20.0));
  EXPECT_TRUE(faults.IsLinkUp(0, 2, 9.9));
}

TEST(FaultScheduleTest, ProbabilisticDropMatchesRate) {
  FaultSchedule faults(/*seed=*/42);
  LinkFault fault;
  fault.drop_probability = 0.3;
  faults.SetLinkFault(0, 1, fault);
  const int trials = 5000;
  int dropped = 0;
  for (int i = 0; i < trials; ++i) {
    if (faults.DecideTransmission(0, 1, 0.0).drop) ++dropped;
  }
  EXPECT_NEAR(static_cast<double>(dropped) / trials, 0.3, 0.03);
  EXPECT_EQ(faults.drops(), static_cast<uint64_t>(dropped));
  // The other direction uses the default (fault-free) model.
  EXPECT_FALSE(faults.DecideTransmission(1, 0, 0.0).drop);
}

TEST(FaultScheduleTest, DuplicatesYieldTwoCopies) {
  FaultSchedule faults;
  LinkFault fault;
  fault.duplicate_probability = 1.0;
  faults.SetDefaultLinkFault(fault);
  const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
  EXPECT_FALSE(plan.drop);
  EXPECT_EQ(plan.extra_delays.size(), 2u);
  EXPECT_EQ(faults.duplicates(), 1u);
}

TEST(FaultScheduleTest, JitterStaysWithinBound) {
  FaultSchedule faults(/*seed=*/7);
  LinkFault fault;
  fault.jitter_max = 0.1;
  faults.SetDefaultLinkFault(fault);
  bool saw_positive = false;
  for (int i = 0; i < 200; ++i) {
    const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
    ASSERT_EQ(plan.extra_delays.size(), 1u);
    EXPECT_GE(plan.extra_delays[0], 0.0);
    EXPECT_LT(plan.extra_delays[0], 0.1);
    saw_positive |= plan.extra_delays[0] > 0.0;
  }
  EXPECT_TRUE(saw_positive);
}

TEST(FaultScheduleTest, ReorderDelayAddsGuaranteedTail) {
  FaultSchedule faults;
  LinkFault fault;
  fault.reorder_probability = 1.0;
  fault.reorder_delay = 0.5;
  faults.SetDefaultLinkFault(fault);
  const TransmissionPlan plan = faults.DecideTransmission(0, 1, 0.0);
  ASSERT_EQ(plan.extra_delays.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.extra_delays[0], 0.5);
}

TEST(FaultScheduleTest, SameSeedReplaysIdenticalDecisions) {
  LinkFault fault;
  fault.drop_probability = 0.4;
  fault.duplicate_probability = 0.2;
  fault.jitter_max = 0.05;

  FaultSchedule a(/*seed=*/123), b(/*seed=*/123);
  a.SetDefaultLinkFault(fault);
  b.SetDefaultLinkFault(fault);
  for (int i = 0; i < 500; ++i) {
    const TransmissionPlan pa = a.DecideTransmission(0, 1, 0.0);
    const TransmissionPlan pb = b.DecideTransmission(0, 1, 0.0);
    ASSERT_EQ(pa.drop, pb.drop);
    ASSERT_EQ(pa.extra_delays, pb.extra_delays);  // bit-identical doubles
  }

  // A different seed diverges somewhere in 500 decisions.
  FaultSchedule c(/*seed=*/124);
  c.SetDefaultLinkFault(fault);
  FaultSchedule d(/*seed=*/123);
  d.SetDefaultLinkFault(fault);
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) {
    const TransmissionPlan pc = c.DecideTransmission(0, 1, 0.0);
    const TransmissionPlan pd = d.DecideTransmission(0, 1, 0.0);
    diverged = pc.drop != pd.drop || pc.extra_delays != pd.extra_delays;
  }
  EXPECT_TRUE(diverged);
}

// --- Simulator integration: the schedule drives the radio and sensing. ---

TEST(FaultScheduleSimTest, CrashedSenderTransmitsNothing) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 0.0, 1.0);

  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  sim.RunUntil(2.0);

  // The send was suppressed before any accounting: no traffic, no energy,
  // not even a counted drop (the radio never keyed up).
  EXPECT_EQ(sim.stats().TotalMessages(), 0u);
  EXPECT_EQ(sim.MessagesDropped(), 0u);
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(a), 0.0);
  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
}

TEST(FaultScheduleSimTest, CrashedReceiverDropsInFlightMessage) {
  SimulatorOptions opts;
  opts.hop_latency = 0.1;
  Simulator sim(opts);
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  // b dies while the message is in the air (sent at 1.0, arrives 1.1).
  sim.faults().CrashNode(b, 1.05, 2.0);

  sim.ScheduleAt(1.0, [&] {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  });
  sim.RunUntil(3.0);

  EXPECT_EQ(sim.stats().TotalMessages(), 1u);  // the tx happened
  EXPECT_EQ(sim.MessagesDropped(), 1u);        // the rx did not
  EXPECT_TRUE(static_cast<ProbeNode&>(sim.node(b)).received.empty());
  EXPECT_DOUBLE_EQ(sim.EnergyConsumed(b), 0.0);  // dead radios draw nothing
}

TEST(FaultScheduleSimTest, CrashedNodeSensesNothingButScheduleSurvives) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().CrashNode(a, 2.5, 5.5);
  sim.SchedulePeriodicReadings(a, 0.0, 1.0, [] { return Point{1.0}; });
  sim.RunUntil(8.0);
  // t = 0..8 is 9 ticks; t = 3, 4, 5 fall inside the crash window.
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(a)).readings.size(), 6u);
}

TEST(FaultScheduleSimTest, FaultDropsFeedTheUnifiedDropCounter) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  sim.faults().DropNext(a, b, 3);
  for (int i = 0; i < 5; ++i) {
    Message msg;
    msg.from = a;
    msg.to = b;
    sim.Send(std::move(msg));
  }
  sim.RunUntil(1.0);
  EXPECT_EQ(sim.faults().drops(), 3u);
  EXPECT_EQ(sim.MessagesDropped(), 3u);
  EXPECT_EQ(sim.MessagesDropped(), sim.stats().MessagesDropped());
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 2u);
}

TEST(FaultScheduleSimTest, RadioDuplicateDeliversTwiceWithoutTransport) {
  Simulator sim;
  const NodeId a = sim.AddNode(std::make_unique<ProbeNode>());
  const NodeId b = sim.AddNode(std::make_unique<ProbeNode>());
  LinkFault fault;
  fault.duplicate_probability = 1.0;
  sim.faults().SetLinkFault(a, b, fault);
  Message msg;
  msg.from = a;
  msg.to = b;
  sim.Send(std::move(msg));
  sim.RunUntil(1.0);
  // Raw datagrams have no dedup: the application sees both copies.
  EXPECT_EQ(static_cast<ProbeNode&>(sim.node(b)).received.size(), 2u);
}

}  // namespace
}  // namespace sensord
