// Thread-parity harness for the deterministic parallel engine (DESIGN.md
// §12): one seeded D3 scenario with 20% loss, flaky links, a reliable
// transport, and an amnesia crash with checkpoint restore, run at 1, 2, and
// 8 worker threads. Every observable artifact — the outlier history
// (including floating-point provenance), traffic counters, per-node energy,
// the metrics JSON export, the causal-trace JSONL, and the flight-recorder
// dump JSONL — must be byte-identical across thread counts. Any scheduling
// or staging bug in the engine shows up here as a first-divergence diff.
//
// Also covers the SENSORD_THREADS knob resolution and the two engine
// building blocks in isolation (WorkerPool, OpLog).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/d3.h"
#include "net/fault_schedule.h"
#include "net/hierarchy.h"
#include "net/network.h"
#include "net/parallel.h"
#include "obs/exporters.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_utils.h"
#include "util/rng.h"
#include "util/staging.h"

namespace sensord {
namespace {

class RecordingObserver : public OutlierObserver {
 public:
  void OnOutlierDetected(const OutlierEvent& event) override {
    events.push_back(event);
  }
  std::vector<OutlierEvent> events;
};

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Everything a run can externalize. Unlike the golden e2e history this
// deliberately includes floating-point text (%.17g round-trips doubles
// exactly): parity is within one build, so the comparison must be exact —
// a reordered FP accumulation is precisely the class of bug to catch.
struct RunArtifacts {
  std::string events;    // outlier history incl. provenance
  std::string counters;  // transport + stats tallies
  std::string energy;    // per-node energy, full precision
  std::string metrics;   // MetricsToJson export
  std::string trace;     // causal-span/decision JSONL bytes
  std::string flight;    // flight-recorder dump JSONL bytes
};

// The scenario: 8 leaves / fanout 2 D3 hierarchy driven by periodic
// readings (exercising kReading batches), 20% uniform loss plus a flaky
// default link fault (kDeliver batches under retransmission pressure), and
// an amnesia crash of leaf 2 with checkpointing on (serial kOther events —
// checkpoint ticks, crash/restart — interleaved between batches).
RunArtifacts RunScenario(int threads, const std::string& label) {
  const int kRounds = 200;
  const int kLeaves = 8;

  Rng data_rng(20260808);
  std::vector<std::vector<Point>> readings(kRounds,
                                           std::vector<Point>(kLeaves));
  for (int round = 0; round < kRounds; ++round) {
    for (int leaf = 0; leaf < kLeaves; ++leaf) {
      readings[static_cast<size_t>(round)][static_cast<size_t>(leaf)] = {
          Clamp(data_rng.Gaussian(0.4, 0.01), 0.0, 1.0)};
    }
    if (round % 5 == 0) {
      readings[static_cast<size_t>(round)][(round / 5) % kLeaves] = {
          data_rng.UniformDouble(0.6, 1.0)};
    }
  }

  const std::string trace_path =
      ::testing::TempDir() + "sim_parallel_trace_" + label + ".jsonl";
  const std::string flight_path =
      ::testing::TempDir() + "sim_parallel_flight_" + label + ".jsonl";

  obs::ScopedMetricsReset metrics_reset;
  EXPECT_TRUE(obs::OpenTraceSink(trace_path).ok());
  EXPECT_TRUE(obs::FlightRecorder::OpenDumpSink(flight_path).ok());
  obs::FlightRecorder::Enable(32);

  RunArtifacts artifacts;
  {
    SimulatorOptions sim_opts;
    sim_opts.drop_probability = 0.2;
    sim_opts.loss_seed = 0xD0;
    sim_opts.fault_seed = 0xFA;
    sim_opts.transport.reliable = true;
    sim_opts.transport.ack_timeout = 0.05;
    sim_opts.transport.max_retries = 4;
    sim_opts.recovery.checkpoint_interval = 10.0;
    sim_opts.threads = threads;
    Simulator sim(sim_opts);
    EXPECT_EQ(sim.threads(), threads);

    LinkFault flaky;
    flaky.drop_probability = 0.05;
    flaky.duplicate_probability = 0.02;
    sim.faults().SetDefaultLinkFault(flaky);
    sim.faults().CrashNode(2, 60.0, 90.0, CrashKind::kAmnesia);

    RecordingObserver observer;
    Rng node_rng(99);
    auto layout = BuildGridHierarchy(kLeaves, 2);
    D3Options leaf_opts;
    leaf_opts.model.window_size = 400;
    leaf_opts.model.sample_size = 80;
    leaf_opts.outlier.radius = 0.02;
    leaf_opts.outlier.neighbor_threshold = 10.0;
    leaf_opts.min_observations = 100;
    leaf_opts.staleness_threshold = 30.0;
    std::vector<NodeId> ids = sim.Instantiate(
        *layout,
        [&](int, const HierarchyNodeSpec& spec) -> std::unique_ptr<Node> {
          if (spec.level == 1) {
            return std::make_unique<D3LeafNode>(leaf_opts, node_rng.Split(),
                                                &observer);
          }
          D3Options opts = leaf_opts;
          opts.model = LeaderModelConfig(leaf_opts.model, 2, 0.5, spec.level);
          opts.min_observations = 50;
          return std::make_unique<D3ParentNode>(opts, node_rng.Split(),
                                                &observer);
        });

    for (int leaf = 0; leaf < kLeaves; ++leaf) {
      const NodeId id = ids[static_cast<size_t>(leaf)];
      sim.SchedulePeriodicReadings(
          id, 1.0, 1.0, [&readings, leaf, i = size_t{0}]() mutable {
            return readings[i++ % readings.size()][static_cast<size_t>(leaf)];
          });
    }

    sim.RunUntil(static_cast<SimTime>(kRounds));
    sim.RunAll();

    for (const OutlierEvent& e : observer.events) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "node=%u level=%d leaf=%u seq=%llu deg=%d est=%.17g "
                    "thr=%.17g ver=%llu stale=%.17g trace=%llu\n",
                    e.node, e.level, e.source_leaf,
                    static_cast<unsigned long long>(e.source_seq),
                    e.degraded ? 1 : 0, e.provenance.estimate,
                    e.provenance.threshold,
                    static_cast<unsigned long long>(
                        e.provenance.model_version),
                    e.provenance.staleness_s,
                    static_cast<unsigned long long>(e.provenance.trace_id));
      artifacts.events += line;
    }
    {
      char line[256];
      std::snprintf(
          line, sizeof(line),
          "messages=%llu dropped=%llu retries=%llu timeouts=%llu "
          "dup_suppressed=%llu abandoned=%llu acks=%llu\n",
          static_cast<unsigned long long>(sim.stats().TotalMessages()),
          static_cast<unsigned long long>(sim.MessagesDropped()),
          static_cast<unsigned long long>(sim.transport().retries()),
          static_cast<unsigned long long>(sim.transport().timeouts()),
          static_cast<unsigned long long>(sim.transport().dup_suppressed()),
          static_cast<unsigned long long>(sim.transport().abandoned()),
          static_cast<unsigned long long>(sim.transport().acks_sent()));
      artifacts.counters = line;
    }
    for (const NodeId id : ids) {
      char line[64];
      std::snprintf(line, sizeof(line), "energy[%u]=%.17g\n", id,
                    sim.EnergyConsumed(id));
      artifacts.energy += line;
    }

    obs::FlightRecorder::DumpAll("end-of-run");
  }

  obs::FlightRecorder::Disable();
  obs::FlightRecorder::CloseDumpSink();
  obs::CloseTraceSink();

  artifacts.metrics = obs::MetricsToJson(obs::MetricsRegistry::Global());
  artifacts.trace = ReadFileBytes(trace_path);
  artifacts.flight = ReadFileBytes(flight_path);
  std::remove(trace_path.c_str());
  std::remove(flight_path.c_str());
  return artifacts;
}

// Line-by-line comparison so a divergence reports its first differing line
// instead of two multi-kilobyte blobs.
void ExpectSameArtifact(const char* what, const std::string& expected,
                        const std::string& actual) {
  if (expected == actual) return;
  std::istringstream exp_stream(expected), act_stream(actual);
  std::string exp_line, act_line;
  size_t line_no = 0;
  for (;;) {
    ++line_no;
    const bool has_exp = static_cast<bool>(std::getline(exp_stream, exp_line));
    const bool has_act = static_cast<bool>(std::getline(act_stream, act_line));
    if (!has_exp && !has_act) break;
    if (!has_exp) exp_line = "<end of serial output>";
    if (!has_act) act_line = "<end of parallel output>";
    ASSERT_EQ(act_line, exp_line)
        << what << ": first divergence at line " << line_no;
    if (!has_exp || !has_act) break;
  }
  // Same lines but different bytes (e.g. trailing newline): fall back to
  // the blob comparison for the failure record.
  EXPECT_EQ(actual, expected) << what << ": byte-level difference";
}

void ExpectSameRun(const char* tag, const RunArtifacts& serial,
                   const RunArtifacts& parallel) {
  SCOPED_TRACE(tag);
  ExpectSameArtifact("outlier history", serial.events, parallel.events);
  ExpectSameArtifact("traffic counters", serial.counters, parallel.counters);
  ExpectSameArtifact("per-node energy", serial.energy, parallel.energy);
  ExpectSameArtifact("metrics export", serial.metrics, parallel.metrics);
  ExpectSameArtifact("trace JSONL", serial.trace, parallel.trace);
  ExpectSameArtifact("flight dump JSONL", serial.flight, parallel.flight);
}

// The tentpole guarantee: under loss, retransmission, link faults, and an
// amnesia crash, N-thread runs are byte-identical to the 1-thread run on
// every artifact. The serial re-run first establishes the baseline is
// stable at all (otherwise parity against it is meaningless).
TEST(SimParallelTest, ThreadCountsProduceByteIdenticalRuns) {
  const RunArtifacts serial = RunScenario(1, "t1");
  const RunArtifacts serial_again = RunScenario(1, "t1b");
  ExpectSameRun("serial rerun", serial, serial_again);
  ASSERT_FALSE(serial.events.empty()) << "scenario detected no outliers";
  ASSERT_FALSE(serial.trace.empty()) << "scenario emitted no trace spans";
  ASSERT_FALSE(serial.flight.empty()) << "scenario dumped no flight records";

  const RunArtifacts two = RunScenario(2, "t2");
  ExpectSameRun("2 threads vs 1", serial, two);

  const RunArtifacts eight = RunScenario(8, "t8");
  ExpectSameRun("8 threads vs 1", serial, eight);
}

// SENSORD_THREADS resolution: explicit option wins, 0 defers to the
// environment, and an absent, garbage, or out-of-range environment value
// falls back to the serial engine rather than guessing.
TEST(SimParallelTest, ThreadKnobResolution) {
  SimulatorOptions opts;

  ASSERT_EQ(unsetenv("SENSORD_THREADS"), 0);
  opts.threads = 0;
  EXPECT_EQ(Simulator(opts).threads(), 1);
  opts.threads = 4;
  EXPECT_EQ(Simulator(opts).threads(), 4);

  ASSERT_EQ(setenv("SENSORD_THREADS", "8", 1), 0);
  opts.threads = 0;
  EXPECT_EQ(Simulator(opts).threads(), 8);
  opts.threads = 2;  // explicit option beats the environment
  EXPECT_EQ(Simulator(opts).threads(), 2);

  ASSERT_EQ(setenv("SENSORD_THREADS", "0", 1), 0);
  opts.threads = 0;
  EXPECT_EQ(Simulator(opts).threads(), 1);
  ASSERT_EQ(setenv("SENSORD_THREADS", "garbage", 1), 0);
  EXPECT_EQ(Simulator(opts).threads(), 1);
  ASSERT_EQ(setenv("SENSORD_THREADS", "100000", 1), 0);
  EXPECT_EQ(Simulator(opts).threads(), 1);

  ASSERT_EQ(unsetenv("SENSORD_THREADS"), 0);
}

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.Run(
      [&hits](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      kCount);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

// Back-to-back batches through one pool: the barrier must fully retire one
// batch (including workers that lost the claiming race) before the next
// resets the cursor, or items leak between batches.
TEST(WorkerPoolTest, BackToBackBatchesStayIsolated) {
  WorkerPool pool(8);
  std::atomic<uint64_t> sum{0};
  uint64_t expected = 0;
  for (int batch = 0; batch < 200; ++batch) {
    const size_t count = static_cast<size_t>(batch % 7);  // incl. empty
    const uint64_t base = static_cast<uint64_t>(batch) * 1000;
    for (size_t i = 0; i < count; ++i) expected += base + i;
    pool.Run(
        [&sum, base](size_t i) {
          sum.fetch_add(base + i, std::memory_order_relaxed);
        },
        count);
  }
  EXPECT_EQ(sum.load(std::memory_order_relaxed), expected);
}

TEST(OpLogTest, ReplayPreservesPushOrderAndClears) {
  OpLog log;
  EXPECT_TRUE(log.Empty());
  std::string order;
  log.Push([&order]() { order += 'a'; });
  log.Push([&order]() { order += 'b'; });
  log.Push([&order]() { order += 'c'; });
  EXPECT_EQ(log.Size(), 3u);
  EXPECT_EQ(order, "");  // staged, not run
  log.Replay();
  EXPECT_EQ(order, "abc");
  EXPECT_TRUE(log.Empty());  // replay consumes the log
}

TEST(OpLogTest, RunOrStageRespectsCurrentLog) {
  int runs = 0;
  EXPECT_EQ(OpLog::Current(), nullptr);
  RunOrStage([&runs]() { ++runs; });
  EXPECT_EQ(runs, 1);  // no log current: runs inline

  OpLog log;
  OpLog::SetCurrent(&log);
  RunOrStage([&runs]() { ++runs; });
  EXPECT_EQ(runs, 1);  // staged
  OpLog::SetCurrent(nullptr);
  log.Replay();
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace sensord
