#include "stream/sliding_window.h"

#include <gtest/gtest.h>

namespace sensord {
namespace {

TEST(SlidingWindowTest, StartsEmpty) {
  SlidingWindow w(4, 1);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.capacity(), 4u);
  EXPECT_EQ(w.dimensions(), 1u);
  EXPECT_FALSE(w.full());
  EXPECT_EQ(w.total_seen(), 0u);
}

TEST(SlidingWindowTest, FillsThenEvictsOldest) {
  SlidingWindow w(3, 1);
  for (double v : {1.0, 2.0, 3.0}) ASSERT_TRUE(w.Add({v}).ok());
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.At(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(w.At(2)[0], 3.0);

  ASSERT_TRUE(w.Add({4.0}).ok());
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.At(0)[0], 2.0);
  EXPECT_DOUBLE_EQ(w.At(2)[0], 4.0);
  EXPECT_EQ(w.total_seen(), 4u);
}

TEST(SlidingWindowTest, DimensionMismatchRejected) {
  SlidingWindow w(3, 2);
  EXPECT_FALSE(w.Add({1.0}).ok());
  EXPECT_EQ(w.Add({1.0}).code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(w.Add({1.0, 2.0}).ok());
}

TEST(SlidingWindowTest, ArrivalTimesTrackStreamPosition) {
  SlidingWindow w(2, 1);
  ASSERT_TRUE(w.Add({1.0}).ok());
  ASSERT_TRUE(w.Add({2.0}).ok());
  ASSERT_TRUE(w.Add({3.0}).ok());
  // Window holds readings 1 and 2 (0-based).
  EXPECT_EQ(w.ArrivalTime(0), 1u);
  EXPECT_EQ(w.ArrivalTime(1), 2u);
}

TEST(SlidingWindowTest, SnapshotOrderedOldestFirst) {
  SlidingWindow w(3, 1);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) ASSERT_TRUE(w.Add({v}).ok());
  const auto snap = w.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_DOUBLE_EQ(snap[0][0], 3.0);
  EXPECT_DOUBLE_EQ(snap[1][0], 4.0);
  EXPECT_DOUBLE_EQ(snap[2][0], 5.0);
}

TEST(SlidingWindowTest, CoordinateExtraction) {
  SlidingWindow w(3, 2);
  ASSERT_TRUE(w.Add({1.0, 10.0}).ok());
  ASSERT_TRUE(w.Add({2.0, 20.0}).ok());
  const auto ys = w.Coordinate(1);
  ASSERT_EQ(ys.size(), 2u);
  EXPECT_DOUBLE_EQ(ys[0], 10.0);
  EXPECT_DOUBLE_EQ(ys[1], 20.0);
}

TEST(SlidingWindowTest, ClearKeepsTotalSeen) {
  SlidingWindow w(3, 1);
  ASSERT_TRUE(w.Add({1.0}).ok());
  ASSERT_TRUE(w.Add({2.0}).ok());
  w.Clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.total_seen(), 2u);
  ASSERT_TRUE(w.Add({3.0}).ok());
  EXPECT_DOUBLE_EQ(w.At(0)[0], 3.0);
}

TEST(SlidingWindowTest, LongStreamWrapsCleanly) {
  SlidingWindow w(7, 1);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(w.Add({double(i)}).ok());
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_DOUBLE_EQ(w.At(i)[0], static_cast<double>(993 + i));
  }
}

}  // namespace
}  // namespace sensord
