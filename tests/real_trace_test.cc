// Validates that the surrogate "real" traces reproduce the statistical
// fingerprint the paper reports for the original datasets (Figure 5), which
// is the basis for substituting them (see DESIGN.md).

#include <gtest/gtest.h>

#include "data/engine_trace.h"
#include "data/environmental_trace.h"
#include "stats/moments.h"

namespace sensord {
namespace {

constexpr int kTraceLength = 50000;

SummaryStats EngineStats(uint64_t seed) {
  EngineTraceGenerator gen{Rng(seed)};
  std::vector<double> v;
  v.reserve(kTraceLength);
  for (int i = 0; i < kTraceLength; ++i) v.push_back(gen.Next()[0]);
  return Summarize(v);
}

TEST(EngineTraceTest, ValuesWithinDatasetRange) {
  EngineTraceGenerator gen(Rng(1));
  for (int i = 0; i < 20000; ++i) {
    const double v = gen.Next()[0];
    EXPECT_GE(v, 0.020);
    EXPECT_LE(v, 0.427);
  }
}

TEST(EngineTraceTest, MatchesFigure5Row) {
  // Paper: min 0.020 max 0.427 mean 0.410 median 0.419 stddev 0.053
  // skew -6.844. Bands allow for sampling variation across seeds.
  const auto s = EngineStats(2);
  EXPECT_NEAR(s.mean, 0.410, 0.012);
  EXPECT_NEAR(s.median, 0.419, 0.008);
  EXPECT_NEAR(s.stddev, 0.053, 0.02);
  EXPECT_LT(s.skew, -4.0);
  EXPECT_GT(s.skew, -10.0);
  EXPECT_LT(s.min, 0.08);
  EXPECT_GT(s.max, 0.41);
}

TEST(EngineTraceTest, StableAcrossSeeds) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    const auto s = EngineStats(seed);
    EXPECT_NEAR(s.mean, 0.410, 0.015) << "seed " << seed;
    EXPECT_LT(s.skew, -3.0) << "seed " << seed;
  }
}

TEST(EngineTraceTest, FailureEpisodesAreRareAndLabeled) {
  EngineTraceGenerator gen(Rng(6));
  int failure_readings = 0;
  for (int i = 0; i < kTraceLength; ++i) {
    gen.Next();
    failure_readings += gen.InFailureEpisode() ? 1 : 0;
  }
  const double rate = static_cast<double>(failure_readings) / kTraceLength;
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.10);
}

TEST(EngineTraceTest, SmoothBetweenConsecutiveReadings) {
  EngineTraceGenerator gen(Rng(7));
  double prev = gen.Next()[0];
  for (int i = 0; i < 20000; ++i) {
    const double cur = gen.Next()[0];
    EXPECT_LT(std::fabs(cur - prev), 0.08) << "jump at " << i;
    prev = cur;
  }
}

TEST(EnvironmentalTraceTest, ValuesWithinDatasetRanges) {
  EnvironmentalTraceGenerator gen(Rng(8));
  for (int i = 0; i < 20000; ++i) {
    const Point p = gen.Next();
    ASSERT_EQ(p.size(), 2u);
    EXPECT_GE(p[0], 0.422);
    EXPECT_LE(p[0], 0.848);
    EXPECT_GE(p[1], 0.113);
    EXPECT_LE(p[1], 0.282);
  }
}

TEST(EnvironmentalTraceTest, MatchesFigure5Rows) {
  // Pressure: mean 0.677 median 0.681 stddev 0.063 skew -0.399.
  // Dew-point: mean 0.213 median 0.212 stddev 0.027 skew -0.182.
  EnvironmentalTraceGenerator gen(Rng(9));
  std::vector<double> pressure, dewpoint;
  for (int i = 0; i < 35000; ++i) {
    const Point p = gen.Next();
    pressure.push_back(p[0]);
    dewpoint.push_back(p[1]);
  }
  const auto sp = Summarize(pressure);
  const auto sd = Summarize(dewpoint);
  EXPECT_NEAR(sp.mean, 0.677, 0.03);
  EXPECT_NEAR(sp.stddev, 0.063, 0.025);
  EXPECT_LT(sp.skew, 0.1);
  EXPECT_NEAR(sd.mean, 0.213, 0.02);
  EXPECT_NEAR(sd.stddev, 0.027, 0.015);
  EXPECT_LT(sd.skew, 0.25);
}

TEST(EnvironmentalTraceTest, CoordinatesAreCorrelated) {
  EnvironmentalTraceGenerator gen(Rng(10));
  std::vector<Point> data;
  for (int i = 0; i < 35000; ++i) data.push_back(gen.Next());
  double mx = 0, my = 0;
  for (const Point& p : data) {
    mx += p[0];
    my += p[1];
  }
  mx /= static_cast<double>(data.size());
  my /= static_cast<double>(data.size());
  double cov = 0, vx = 0, vy = 0;
  for (const Point& p : data) {
    cov += (p[0] - mx) * (p[1] - my);
    vx += (p[0] - mx) * (p[0] - mx);
    vy += (p[1] - my) * (p[1] - my);
  }
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_GT(std::fabs(corr), 0.15);  // shared weather forcing
}

TEST(EnvironmentalTraceTest, DifferentSeedsDifferentPhases) {
  EnvironmentalTraceGenerator a(Rng(11)), b(Rng(12));
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace sensord
